#!/usr/bin/env bash
# Observability smoke test: boot schemble-server with a quick-fit pipeline,
# drive a few predictions, scrape /v1/metrics and /v1/trace, and assert the
# exposition is non-empty and well-formed enough to be scraped.
set -euo pipefail

PORT="${PORT:-18080}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/schemble-server"
LOG="$(mktemp)"

cleanup() {
    [[ -n "${SRV_PID:-}" ]] && kill "${SRV_PID}" 2>/dev/null || true
    [[ -n "${SRV_PID:-}" ]] && wait "${SRV_PID}" 2>/dev/null || true
    rm -f "${LOG}"
    rm -rf "$(dirname "${BIN}")"
}
trap cleanup EXIT

go build -o "${BIN}" ./cmd/schemble-server

"${BIN}" -addr "${ADDR}" -quick -timescale 0.05 -trace-buffer 64 >"${LOG}" 2>&1 &
SRV_PID=$!

# Wait for liveness (quick fit takes a few seconds).
for i in $(seq 1 120); do
    if curl -fsS "http://${ADDR}/v1/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "${SRV_PID}" 2>/dev/null; then
        echo "server exited early:" >&2
        cat "${LOG}" >&2
        exit 1
    fi
    sleep 0.5
done
curl -fsS "http://${ADDR}/v1/healthz" >/dev/null

# Drive a few predictions so the counters and histograms are non-trivial.
# Sample IDs depend on the train/serve split, so sweep a range and require
# that some of them hit.
HITS=0
for id in $(seq 0 19); do
    if curl -fsS -X POST "http://${ADDR}/v1/predict" \
        -d "{\"sample_id\": ${id}, \"deadline_ms\": 500}" >/dev/null 2>&1; then
        HITS=$((HITS + 1))
    fi
done
[[ "${HITS}" -gt 0 ]] || { echo "no sample id in the serving pool answered" >&2; exit 1; }

METRICS="$(curl -fsS "http://${ADDR}/v1/metrics")"
echo "${METRICS}" | grep -q '^schemble_requests_total{outcome="served"} [0-9]' \
    || { echo "missing outcome counters:"; echo "${METRICS}"; exit 1; } >&2
echo "${METRICS}" | grep -q '^# TYPE schemble_request_latency_seconds histogram$' \
    || { echo "missing latency histogram:"; echo "${METRICS}"; exit 1; } >&2
echo "${METRICS}" | grep -q '^schemble_model_queue_depth{model=' \
    || { echo "missing per-model gauges:"; echo "${METRICS}"; exit 1; } >&2

TRACES="$(curl -fsS "http://${ADDR}/v1/trace?last=5")"
echo "${TRACES}" | grep -q '"enabled":true' \
    || { echo "tracing not enabled: ${TRACES}"; exit 1; } >&2
echo "${TRACES}" | grep -q '"outcome"' \
    || { echo "no traces recorded: ${TRACES}"; exit 1; } >&2

echo "obsv smoke: metrics + traces OK"
