package schemble

import (
	"context"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var (
	fwOnce sync.Once
	fw     *Framework
)

func framework(t *testing.T) *Framework {
	t.Helper()
	fwOnce.Do(func() {
		ds, models := TextMatchingBench(42)
		ds.Samples = ds.Samples[:2000] // keep the shared fixture quick
		fw = New(Config{Dataset: ds, Models: models, PredictorEpochs: 30, Seed: 42})
	})
	return fw
}

func TestBenchGenerators(t *testing.T) {
	tm, tmModels := TextMatchingBench(1)
	if len(tm.Samples) == 0 || len(tmModels) != 3 {
		t.Error("text matching bench malformed")
	}
	vc, vcModels := VehicleCountingBench(1)
	if len(vc.Samples) == 0 || len(vcModels) != 3 {
		t.Error("vehicle counting bench malformed")
	}
	ir, irModels := ImageRetrievalBench(1)
	if len(ir.Gallery) == 0 || len(irModels) != 2 {
		t.Error("image retrieval bench malformed")
	}
}

func TestPredictAndDifficulty(t *testing.T) {
	f := framework(t)
	s := f.ServingPool()[0]
	out := f.PredictFull(s)
	if len(out.Probs) != 2 {
		t.Fatalf("probs len %d", len(out.Probs))
	}
	d := f.Difficulty(s)
	if d < 0 || d > 1 {
		t.Errorf("difficulty %v out of range", d)
	}
	true_ := f.DiscrepancyScore(s)
	if true_ < 0 || true_ > 1 {
		t.Errorf("true score %v out of range", true_)
	}
	// Subset prediction works for any non-empty subset.
	sub := f.PredictSubset(s, Subset(1))
	if len(sub.Probs) != 2 {
		t.Error("subset prediction malformed")
	}
}

func TestRewardAndBestSubset(t *testing.T) {
	f := framework(t)
	full := Subset(7)
	if r := f.Reward(0.1, full); r < 0.99 {
		t.Errorf("full-ensemble reward %v, want ~1", r)
	}
	best := f.BestSubset(0.1, 0)
	if best == 0 {
		t.Fatal("empty best subset")
	}
	// With tolerance, the chosen subset can only shrink.
	tol := f.BestSubset(0.1, 0.05)
	if tol.Size() > best.Size() {
		t.Errorf("tolerant subset %v larger than exact best %v", tol, best)
	}
}

func TestSimulateBeatsOriginalUnderLoad(t *testing.T) {
	f := framework(t)
	tr := f.PoissonTrace(40, 800, 150*time.Millisecond, 9)
	sch, recs := f.Simulate(SimOptions{Trace: tr})
	orig, _ := f.SimulateOriginal(SimOptions{Trace: tr})
	if len(recs) != 800 {
		t.Fatalf("records %d", len(recs))
	}
	if sch.DMR >= orig.DMR {
		t.Errorf("Schemble DMR %v should beat Original %v", sch.DMR, orig.DMR)
	}
	if sch.Accuracy <= orig.Accuracy {
		t.Errorf("Schemble accuracy %v should beat Original %v", sch.Accuracy, orig.Accuracy)
	}
}

func TestOneDayTrace(t *testing.T) {
	f := framework(t)
	tr := f.OneDayTrace(100*time.Millisecond, 2, 3)
	if tr.N() == 0 {
		t.Fatal("empty one-day trace")
	}
}

func TestNewServerRoundTrip(t *testing.T) {
	f := framework(t)
	srv := f.NewServer(ServerOptions{TimeScale: 0.05})
	srv.Start(context.Background())
	defer srv.Stop()
	res := <-srv.Submit(f.ServingPool()[1], time.Second)
	if res.Missed {
		t.Error("uncontended request missed")
	}
}

func TestSummarizeReExport(t *testing.T) {
	s := Summarize([]Record{{Agreement: 1}})
	if s.N != 1 || s.Accuracy != 1 {
		t.Errorf("summary %+v", s)
	}
}

func TestSaveLoadFramework(t *testing.T) {
	f := framework(t)
	path := filepath.Join(t.TempDir(), "fw.gob")
	if err := f.Save(path); err != nil {
		t.Fatal(err)
	}
	ds, models := TextMatchingBench(42)
	ds.Samples = ds.Samples[:2000]
	restored, err := Load(Config{Dataset: ds, Models: models, Seed: 42}, path)
	if err != nil {
		t.Fatal(err)
	}
	s := f.ServingPool()[5]
	if restored.Difficulty(s) != f.Difficulty(s) {
		t.Error("restored framework predicts differently")
	}
	if _, err := Load(Config{Dataset: ds, Models: models, Seed: 43}, path); err == nil {
		t.Error("seed mismatch not rejected")
	}
}

func TestSubmitBeforeStartPanics(t *testing.T) {
	f := framework(t)
	srv := f.NewServer(ServerOptions{TimeScale: 0.1})
	defer func() {
		if recover() == nil {
			t.Error("Submit before Start did not panic")
		}
	}()
	srv.Submit(f.ServingPool()[0], time.Second)
}
