package schemble_test

import (
	"fmt"
	"time"

	"schemble"
)

// Example demonstrates the minimal workflow: fit a framework on a
// generated workload, estimate a query's difficulty, and serve a burst.
func Example() {
	ds, models := schemble.TextMatchingBench(42)
	ds.Samples = ds.Samples[:1200] // keep the example fast
	fw := schemble.New(schemble.Config{
		Dataset: ds, Models: models, PredictorEpochs: 20, Seed: 42,
	})

	q := fw.ServingPool()[0]
	score := fw.Difficulty(q)
	fmt.Printf("difficulty in [0,1]: %v\n", score >= 0 && score <= 1)

	tr := fw.PoissonTrace(40, 400, 150*time.Millisecond, 1)
	sch, _ := fw.Simulate(schemble.SimOptions{Trace: tr})
	orig, _ := fw.SimulateOriginal(schemble.SimOptions{Trace: tr})
	fmt.Printf("schemble beats original under load: %v\n",
		sch.DMR < orig.DMR && sch.Accuracy > orig.Accuracy)
	// Output:
	// difficulty in [0,1]: true
	// schemble beats original under load: true
}

// ExampleFramework_BestSubset shows subset selection from a difficulty
// estimate: easy queries get away with fewer models.
func ExampleFramework_BestSubset() {
	ds, models := schemble.TextMatchingBench(42)
	ds.Samples = ds.Samples[:1200]
	fw := schemble.New(schemble.Config{
		Dataset: ds, Models: models, PredictorEpochs: 20, Seed: 42,
	})
	easy := fw.BestSubset(0.05, 0.02) // cheapest within 2% of the best reward
	exact := fw.BestSubset(0.05, 0)   // the exact best
	fmt.Printf("tolerant subset no larger than exact: %v\n", easy.Size() <= exact.Size())
	fmt.Printf("rewards within tolerance: %v\n",
		fw.Reward(0.05, easy) >= 0.98*fw.Reward(0.05, exact))
	// Output:
	// tolerant subset no larger than exact: true
	// rewards within tolerance: true
}

// ExampleFramework_Simulate shows reading per-query records out of a
// simulation.
func ExampleFramework_Simulate() {
	ds, models := schemble.TextMatchingBench(42)
	ds.Samples = ds.Samples[:1200]
	fw := schemble.New(schemble.Config{
		Dataset: ds, Models: models, PredictorEpochs: 20, Seed: 42,
	})
	tr := fw.PoissonTrace(10, 50, 300*time.Millisecond, 2)
	summary, records := fw.Simulate(schemble.SimOptions{Trace: tr})
	fmt.Printf("records match trace: %v\n", len(records) == 50)
	fmt.Printf("summary counts all queries: %v\n", summary.N == 50)
	// Output:
	// records match trace: true
	// summary counts all queries: true
}
