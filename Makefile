# Development gates. `make check` is what CI runs: vet, build, and the
# full test suite under the race detector (the serving runtime's
# exactly-once guarantees are race-tested, so -race is not optional).

GO ?= go

.PHONY: check vet build test test-race bench

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
