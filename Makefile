# Development gates. `make check` is what CI runs: vet, build, and the
# full test suite under the race detector with shuffled test order (the
# serving runtime's exactly-once guarantees are race-tested, so -race is
# not optional; -shuffle=on catches inter-test state leaks). `make lint`
# layers the project's own invariants on top: schemble-vet (the custom
# analyzer suite in internal/analysis), a gofmt gate, and — where the
# binary is installed — govulncheck.

GO ?= go

.PHONY: check lint vet build test test-race chaos obsv bench

check: vet build test-race

# lint runs the schemble-vet analyzer suite (determinism, outcome
# taxonomy, float equality, test sleeps, context threading), fails on
# unformatted files, and runs govulncheck when available (the offline
# dev container does not ship it; CI installs it).
lint:
	$(GO) run ./cmd/schemble-vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

test-race:
	$(GO) test -race -shuffle=on ./...

# Fault-injection stress tests: every chaos/fault/drain scenario under the
# race detector with a tight timeout so a hung drain or leaked goroutine
# fails fast instead of stalling the suite.
chaos:
	$(GO) test -race -shuffle=on -timeout 120s \
		-run 'Chaos|Fault|Hedge|Breaker|Degraded|Panic|Drain' \
		./internal/serve/... ./internal/model/... ./internal/httpserve/...

# Observability smoke test: boot the real server binary with a quick-fit
# pipeline, drive traffic, and assert /v1/metrics and /v1/trace expose a
# non-empty, scrapeable picture of the run.
obsv:
	./scripts/obsv_smoke.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
