# Development gates. `make check` is what CI runs: vet, build, and the
# full test suite under the race detector with shuffled test order (the
# serving runtime's exactly-once guarantees are race-tested, so -race is
# not optional; -shuffle=on catches inter-test state leaks). `make lint`
# layers the project's own invariants on top: schemble-vet (the custom
# analyzer suite in internal/analysis), a gofmt gate, and — where the
# binary is installed — govulncheck.

GO ?= go

.PHONY: check lint vet build test test-race chaos obsv bench bench-json overload cache drift fuzz cover

check: vet build test-race

# lint runs the schemble-vet analyzer suite (determinism, outcome
# taxonomy, float equality, test sleeps, context threading, engine
# purity, Plan ownership, guarded-field lock discipline, atomic/plain
# access mixing), fails on unformatted files, and runs govulncheck when
# available (the offline dev container does not ship it; CI installs it).
lint:
	$(GO) run ./cmd/schemble-vet ./...
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping vulnerability scan"; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

test-race:
	$(GO) test -race -shuffle=on ./...

# Fault-injection stress tests: every chaos/fault/drain scenario under the
# race detector with a tight timeout so a hung drain or leaked goroutine
# fails fast instead of stalling the suite.
chaos:
	$(GO) test -race -shuffle=on -timeout 120s \
		-run 'Chaos|Fault|Hedge|Breaker|Degraded|Panic|Drain' \
		./internal/serve/... ./internal/model/... ./internal/httpserve/...

# Observability smoke test: boot the real server binary with a quick-fit
# pipeline, drive traffic, and assert /v1/metrics and /v1/trace expose a
# non-empty, scrapeable picture of the run.
obsv:
	./scripts/obsv_smoke.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# bench-json runs cmd/schemble-bench — the scheduler micro-benchmarks
# plus a high-arrival-rate serve soak — and writes the BENCH_dp.json
# perf-trajectory file the ROADMAP tracks. CI runs it as
#   make bench-json BENCH_FLAGS="-quick -baseline BENCH_dp.json"
# which shrinks the soak and fails on a >25% ns/decision regression
# against the committed baseline (the baseline is read before the file
# is rewritten).
BENCH_FLAGS ?=
bench-json:
	$(GO) run ./cmd/schemble-bench -out BENCH_dp.json $(BENCH_FLAGS)

# overload runs cmd/schemble-overload — the multi-class flash-crowd soak
# at 1x/2x/5x of bottleneck capacity — and writes the BENCH_overload.json
# robustness-trajectory file. The run itself gates on priority-ordered
# shedding and the gold class's 5x SLO floor; CI runs it as
#   make overload OVERLOAD_FLAGS="-quick -baseline BENCH_overload.json"
# which additionally fails on a gold-SLO regression against the committed
# baseline (read before the file is rewritten).
OVERLOAD_FLAGS ?=
overload:
	$(GO) run ./cmd/schemble-overload -out BENCH_overload.json $(OVERLOAD_FLAGS)

# cache runs cmd/schemble-cache — the Zipf-popularity result-cache soak at
# 2x bottleneck capacity, cache-off vs cache-on over the identical trace —
# and writes the BENCH_cache.json cache-trajectory file. The run itself
# gates on the hit-rate floor and on caching not costing deadlines; CI
# runs it as
#   make cache CACHE_FLAGS="-quick -baseline BENCH_cache.json"
# which additionally fails on a hit-rate regression against the committed
# baseline (read before the file is rewritten).
CACHE_FLAGS ?=
cache:
	$(GO) run ./cmd/schemble-cache -out BENCH_cache.json $(CACHE_FLAGS)

# drift runs cmd/schemble-drift — the drifting-workload soak (latency ramp
# plus difficulty shift over the identical seeded trace), frozen profiles
# vs online adaptation — and writes the BENCH_drift.json
# drift-resilience file. The run itself gates on adaptation strictly
# beating the frozen reference's deadline-miss rate; CI runs it as
#   make drift DRIFT_FLAGS="-quick -baseline BENCH_drift.json"
# which additionally fails on an adapt-on DMR regression against the
# committed baseline (read before the file is rewritten).
DRIFT_FLAGS ?=
drift:
	$(GO) run ./cmd/schemble-drift -out BENCH_drift.json $(DRIFT_FLAGS)

# Short coverage-guided fuzzing bursts over the scheduler and the HTTP
# surface, seeded from testdata/fuzz. FUZZTIME=5m for a deeper local run;
# new crashers land in testdata/fuzz/<target> and become regression
# seeds.
FUZZTIME ?= 20s
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzDPSchedule' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz 'FuzzHTTPPredict' -fuzztime $(FUZZTIME) ./internal/httpserve/
	$(GO) test -run '^$$' -fuzz 'FuzzSketch' -fuzztime $(FUZZTIME) ./internal/adapt/

# Coverage gate on the paper-critical packages: the scheduler (the paper's
# contribution), the serving runtime (where concurrency bugs hide), and
# the engine-agnostic control subsystems shared by sim and serve (qos
# admission, result cache, online adaptation). Thresholds are floors, not
# targets — raise them as coverage grows.
COVER_CORE_MIN ?= 90
COVER_SERVE_MIN ?= 85
COVER_QOS_MIN ?= 85
COVER_RCACHE_MIN ?= 85
COVER_ADAPT_MIN ?= 85
cover:
	$(GO) test -race -coverprofile=cover-core.out ./internal/core/
	$(GO) test -race -coverprofile=cover-serve.out ./internal/serve/
	$(GO) test -race -coverprofile=cover-qos.out ./internal/qos/
	$(GO) test -race -coverprofile=cover-rcache.out ./internal/rcache/
	$(GO) test -race -coverprofile=cover-adapt.out ./internal/adapt/
	@core=$$($(GO) tool cover -func=cover-core.out | awk '/^total:/ {print substr($$3, 1, length($$3)-1)}'); \
	serve=$$($(GO) tool cover -func=cover-serve.out | awk '/^total:/ {print substr($$3, 1, length($$3)-1)}'); \
	qos=$$($(GO) tool cover -func=cover-qos.out | awk '/^total:/ {print substr($$3, 1, length($$3)-1)}'); \
	rcache=$$($(GO) tool cover -func=cover-rcache.out | awk '/^total:/ {print substr($$3, 1, length($$3)-1)}'); \
	adapt=$$($(GO) tool cover -func=cover-adapt.out | awk '/^total:/ {print substr($$3, 1, length($$3)-1)}'); \
	echo "coverage: internal/core $$core% (floor $(COVER_CORE_MIN)%), internal/serve $$serve% (floor $(COVER_SERVE_MIN)%), internal/qos $$qos% (floor $(COVER_QOS_MIN)%), internal/rcache $$rcache% (floor $(COVER_RCACHE_MIN)%), internal/adapt $$adapt% (floor $(COVER_ADAPT_MIN)%)"; \
	awk -v c="$$core" -v s="$$serve" -v q="$$qos" -v r="$$rcache" -v a="$$adapt" \
		-v cm="$(COVER_CORE_MIN)" -v sm="$(COVER_SERVE_MIN)" -v qm="$(COVER_QOS_MIN)" -v rm="$(COVER_RCACHE_MIN)" -v am="$(COVER_ADAPT_MIN)" \
		'BEGIN { if (c+0 < cm+0 || s+0 < sm+0 || q+0 < qm+0 || r+0 < rm+0 || a+0 < am+0) { print "coverage below floor"; exit 1 } }'
