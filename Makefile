# Development gates. `make check` is what CI runs: vet, build, and the
# full test suite under the race detector with shuffled test order (the
# serving runtime's exactly-once guarantees are race-tested, so -race is
# not optional; -shuffle=on catches inter-test state leaks).

GO ?= go

.PHONY: check vet build test test-race chaos obsv bench

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

test-race:
	$(GO) test -race -shuffle=on ./...

# Fault-injection stress tests: every chaos/fault/drain scenario under the
# race detector with a tight timeout so a hung drain or leaked goroutine
# fails fast instead of stalling the suite.
chaos:
	$(GO) test -race -shuffle=on -timeout 120s \
		-run 'Chaos|Fault|Hedge|Breaker|Degraded|Panic|Drain' \
		./internal/serve/... ./internal/model/... ./internal/httpserve/...

# Observability smoke test: boot the real server binary with a quick-fit
# pipeline, drive traffic, and assert /v1/metrics and /v1/trace expose a
# non-empty, scrapeable picture of the run.
obsv:
	./scripts/obsv_smoke.sh

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
