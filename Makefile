# Development gates. `make check` is what CI runs: vet, build, and the
# full test suite under the race detector with shuffled test order (the
# serving runtime's exactly-once guarantees are race-tested, so -race is
# not optional; -shuffle=on catches inter-test state leaks).

GO ?= go

.PHONY: check vet build test test-race chaos bench

check: vet build test-race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

test-race:
	$(GO) test -race -shuffle=on ./...

# Fault-injection stress tests: every chaos/fault/drain scenario under the
# race detector with a tight timeout so a hung drain or leaked goroutine
# fails fast instead of stalling the suite.
chaos:
	$(GO) test -race -shuffle=on -timeout 120s \
		-run 'Chaos|Fault|Hedge|Breaker|Degraded|Panic|Drain' \
		./internal/serve/... ./internal/model/... ./internal/httpserve/...

bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...
