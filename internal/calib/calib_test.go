package calib

import (
	"math"
	"testing"

	"schemble/internal/mathx"
	"schemble/internal/rng"
)

// synthOverconfident builds a miscalibrated binary dataset: the model's true
// accuracy is governed by a latent logit, but reported probabilities are
// sharpened by overTemp < 1 (overconfidence).
func synthOverconfident(src *rng.Source, n int, overTemp float64) ([][]float64, []int) {
	probs := make([][]float64, n)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		logit := src.Normal(0, 1.2)
		pTrue := mathx.Sigmoid(logit)
		label := 0
		if src.Bool(pTrue) {
			label = 1
		}
		// Report a sharpened probability.
		sharp := mathx.Sigmoid(logit / overTemp)
		probs[i] = []float64{1 - sharp, sharp}
		labels[i] = label
	}
	return probs, labels
}

func TestApplyIdentity(t *testing.T) {
	s := Identity()
	p := []float64{0.3, 0.7}
	q := s.Apply(p)
	if q[0] != 0.3 || q[1] != 0.7 {
		t.Errorf("identity scaler changed probs: %v", q)
	}
	q[0] = 0 // must not alias
	if p[0] != 0.3 {
		t.Error("Apply aliased its input")
	}
}

func TestApplyHighTemperatureFlattens(t *testing.T) {
	s := &Scaler{T: 100}
	q := s.Apply([]float64{0.99, 0.01})
	if math.Abs(q[0]-0.5) > 0.05 {
		t.Errorf("high temperature should flatten: %v", q)
	}
	s = &Scaler{T: 0.1}
	q = s.Apply([]float64{0.6, 0.4})
	if q[0] < 0.95 {
		t.Errorf("low temperature should sharpen: %v", q)
	}
}

func TestApplyPreservesSimplex(t *testing.T) {
	src := rng.New(1)
	for _, temp := range []float64{0.3, 1, 2.7} {
		s := &Scaler{T: temp}
		for i := 0; i < 100; i++ {
			p := []float64{src.Float64() + 0.01, src.Float64() + 0.01, src.Float64() + 0.01}
			mathx.Normalize(p)
			q := s.Apply(p)
			var sum float64
			for _, v := range q {
				if v < 0 {
					t.Fatalf("negative prob %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("not a distribution, sum=%v", sum)
			}
		}
	}
}

func TestFitRecoversOverconfidence(t *testing.T) {
	src := rng.New(2)
	probs, labels := synthOverconfident(src, 5000, 0.4)
	s := Fit(probs, labels)
	// The data was sharpened with 1/0.4 = 2.5x logit scale, so the fitted
	// corrective temperature should be well above 1.
	if s.T < 1.5 {
		t.Errorf("fitted T = %v, want > 1.5 for overconfident model", s.T)
	}
	// NLL after calibration must not be worse than before.
	before := NLL(probs, labels, 1)
	after := NLL(probs, labels, s.T)
	if after > before+1e-9 {
		t.Errorf("calibration raised NLL: %v -> %v", before, after)
	}
}

func TestFitCalibratedDataNearOne(t *testing.T) {
	src := rng.New(3)
	probs, labels := synthOverconfident(src, 5000, 1.0)
	s := Fit(probs, labels)
	if s.T < 0.8 || s.T > 1.25 {
		t.Errorf("fitted T = %v on calibrated data, want ~1", s.T)
	}
}

func TestECEImprovesAfterScaling(t *testing.T) {
	src := rng.New(4)
	probs, labels := synthOverconfident(src, 8000, 0.4)
	before := ECE(probs, labels, 15)
	s := Fit(probs, labels)
	scaled := make([][]float64, len(probs))
	for i, p := range probs {
		scaled[i] = s.Apply(p)
	}
	after := ECE(scaled, labels, 15)
	if after >= before {
		t.Errorf("ECE did not improve: %v -> %v", before, after)
	}
}

func TestFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Fit(nil) did not panic")
		}
	}()
	Fit(nil, nil)
}
