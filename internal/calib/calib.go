// Package calib implements temperature scaling (Guo et al., ICML 2017), the
// post-hoc calibration step Schemble applies to base-model outputs before
// computing discrepancy scores. Deep models are systematically
// over-confident; dividing the logits by a temperature T > 1 fitted by
// minimizing validation NLL aligns confidence with correctness likelihood,
// which the paper requires so that divergences between heterogeneous models
// are comparable.
package calib

import (
	"math"

	"schemble/internal/mathx"
)

// Scaler holds a fitted temperature.
type Scaler struct {
	T float64
}

// Identity returns a no-op scaler (T = 1).
func Identity() *Scaler { return &Scaler{T: 1} }

// Apply returns probs rescaled through temperature T: softmax(log(p)/T).
// A fresh slice is returned; probs is unmodified.
func (s *Scaler) Apply(probs []float64) []float64 {
	//schemble:floateq-ok T is set verbatim, never computed; exactly 1 is the identity-scaler sentinel
	if s.T == 1 {
		cp := make([]float64, len(probs))
		copy(cp, probs)
		return cp
	}
	logits := make([]float64, len(probs))
	for i, p := range probs {
		logits[i] = math.Log(mathx.Clamp(p, mathx.Eps, 1)) / s.T
	}
	return mathx.Softmax(logits)
}

// NLL computes the mean negative log-likelihood of probability rows probs
// against integer labels under temperature t.
func NLL(probs [][]float64, labels []int, t float64) float64 {
	var total float64
	s := &Scaler{T: t}
	for i, p := range probs {
		q := s.Apply(p)
		total += -math.Log(mathx.Clamp(q[labels[i]], mathx.Eps, 1))
	}
	return total / float64(len(probs))
}

// Fit finds the temperature in [0.05, 20] minimizing NLL on the validation
// rows via golden-section search on log T. It panics when probs is empty or
// sizes mismatch.
func Fit(probs [][]float64, labels []int) *Scaler {
	if len(probs) == 0 || len(probs) != len(labels) {
		panic("calib: empty or mismatched calibration data")
	}
	// Golden-section search over log-temperature.
	lo, hi := math.Log(0.05), math.Log(20.0)
	const phi = 0.6180339887498949
	f := func(logT float64) float64 { return NLL(probs, labels, math.Exp(logT)) }
	a, b := lo, hi
	c := b - phi*(b-a)
	d := a + phi*(b-a)
	fc, fd := f(c), f(d)
	for i := 0; i < 60 && b-a > 1e-6; i++ {
		if fc < fd {
			b, d, fd = d, c, fc
			c = b - phi*(b-a)
			fc = f(c)
		} else {
			a, c, fc = c, d, fd
			d = a + phi*(b-a)
			fd = f(d)
		}
	}
	return &Scaler{T: math.Exp(0.5 * (a + b))}
}

// ECE computes the expected calibration error of probs against labels using
// equal-width confidence bins, the standard miscalibration diagnostic.
func ECE(probs [][]float64, labels []int, bins int) float64 {
	if bins <= 0 {
		bins = 10
	}
	type bucket struct {
		conf, acc float64
		n         int
	}
	bs := make([]bucket, bins)
	for i, p := range probs {
		pred := mathx.ArgMax(p)
		conf := p[pred]
		b := int(conf * float64(bins))
		if b >= bins {
			b = bins - 1
		}
		bs[b].conf += conf
		if pred == labels[i] {
			bs[b].acc++
		}
		bs[b].n++
	}
	var ece float64
	total := float64(len(probs))
	for _, b := range bs {
		if b.n == 0 {
			continue
		}
		n := float64(b.n)
		ece += n / total * math.Abs(b.acc/n-b.conf/n)
	}
	return ece
}
