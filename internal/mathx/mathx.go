// Package mathx provides the small numeric kernel shared by the rest of the
// repository: numerically stable softmax and divergences, summary statistics,
// and vector helpers. Everything operates on []float64 and allocates only when
// a result slice is returned.
package mathx

import (
	"math"
	"sort"
)

// Eps is the floor used when clamping probabilities before taking logs.
const Eps = 1e-12

// Softmax writes the softmax of logits into a new slice. It is numerically
// stable: the max logit is subtracted before exponentiation.
func Softmax(logits []float64) []float64 {
	out := make([]float64, len(logits))
	SoftmaxInto(out, logits)
	return out
}

// SoftmaxInto computes the softmax of logits into dst, which must have the
// same length as logits.
func SoftmaxInto(dst, logits []float64) {
	if len(dst) != len(logits) {
		panic("mathx: SoftmaxInto length mismatch")
	}
	if len(logits) == 0 {
		return
	}
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// LogSumExp returns log(sum(exp(x_i))) computed stably.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, v := range xs[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, v := range xs {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// Sigmoid returns 1/(1+exp(-x)) without overflow for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// clampProb clips p into [Eps, 1] so logs are finite.
func clampProb(p float64) float64 {
	if p < Eps {
		return Eps
	}
	return p
}

// KL returns the Kullback-Leibler divergence KL(p||q) in nats. Both arguments
// must be probability vectors of the same length. Zero entries are clamped.
func KL(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("mathx: KL length mismatch")
	}
	var d float64
	for i := range p {
		pi := clampProb(p[i])
		qi := clampProb(q[i])
		d += pi * math.Log(pi/qi)
	}
	if d < 0 { // tiny negatives from rounding
		return 0
	}
	return d
}

// SymKL returns the symmetric KL divergence (KL(p||q)+KL(q||p))/2, the
// measure used by the ensemble-agreement difficulty metric.
func SymKL(p, q []float64) float64 {
	return 0.5 * (KL(p, q) + KL(q, p))
}

// JS returns the Jensen-Shannon divergence between p and q in nats. It is
// symmetric and bounded by ln 2.
func JS(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("mathx: JS length mismatch")
	}
	m := make([]float64, len(p))
	for i := range p {
		m[i] = 0.5 * (p[i] + q[i])
	}
	return 0.5*KL(p, m) + 0.5*KL(q, m)
}

// Euclidean returns the L2 distance between two vectors.
func Euclidean(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Euclidean length mismatch")
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// CosineSim returns the cosine similarity of a and b, or 0 when either has
// zero norm.
func CosineSim(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ArgMax returns the index of the largest element; ties go to the lowest
// index. It panics on an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best := 0
	for i, v := range xs[1:] {
		if v > xs[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMin returns the index of the smallest element; ties go to the lowest
// index. It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("mathx: ArgMin of empty slice")
	}
	best := 0
	for i, v := range xs[1:] {
		if v < xs[best] {
			best = i + 1
		}
	}
	return best
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance, or 0 for fewer than two values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Pearson returns the Pearson correlation coefficient between xs and ys, or 0
// when either side has zero variance. The slices must have equal length.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("mathx: Pearson length mismatch")
	}
	if len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Normalize scales v in place so it sums to one. Vectors summing to zero are
// replaced by the uniform distribution.
func Normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x
	}
	if s == 0 {
		u := 1 / float64(len(v))
		for i := range v {
			v[i] = u
		}
		return
	}
	for i := range v {
		v[i] /= s
	}
}

// MinMax returns the smallest and largest elements of xs. It panics on an
// empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("mathx: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max
}

// AlmostEqual reports whether a and b agree within tol, absolutely for
// values near zero and relatively otherwise. It is the approved way to
// compare computed floating-point values — exact ==/!= on floats is
// rejected by the floateq analyzer outside this package — and treats two
// NaNs as equal so comparisons of sentinel results are stable.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true // fast path; also handles shared infinities
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}
