package mathx

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSoftmaxBasic(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	if len(p) != 3 {
		t.Fatalf("len = %d, want 3", len(p))
	}
	var sum float64
	for _, v := range p {
		if v <= 0 || v >= 1 {
			t.Errorf("softmax entry %v out of (0,1)", v)
		}
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Errorf("softmax sum = %v, want 1", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Errorf("softmax not monotone: %v", p)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1001, 1002})
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", p)
		}
	}
	q := Softmax([]float64{0, 1, 2})
	for i := range p {
		if !almostEqual(p[i], q[i], 1e-12) {
			t.Errorf("shift invariance violated at %d: %v vs %v", i, p[i], q[i])
		}
	}
}

func TestSoftmaxShiftInvarianceProperty(t *testing.T) {
	f := func(a, b, c, shift float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(shift) {
			return true
		}
		a, b, c = Clamp(a, -50, 50), Clamp(b, -50, 50), Clamp(c, -50, 50)
		shift = Clamp(shift, -50, 50)
		p := Softmax([]float64{a, b, c})
		q := Softmax([]float64{a + shift, b + shift, c + shift})
		for i := range p {
			if !almostEqual(p[i], q[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{math.Log(1), math.Log(2), math.Log(3)})
	if !almostEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v, want log 6", got)
	}
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("LogSumExp(nil) should be -Inf")
	}
	big := LogSumExp([]float64{1e4, 1e4})
	if math.IsInf(big, 0) || math.IsNaN(big) {
		t.Errorf("LogSumExp overflowed: %v", big)
	}
}

func TestSigmoid(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1000, 1},
		{-1000, 0},
	}
	for _, c := range cases {
		if got := Sigmoid(c.x); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Sigmoid(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	// Symmetry: sigma(-x) = 1 - sigma(x).
	for _, x := range []float64{0.3, 2.5, 7} {
		if !almostEqual(Sigmoid(-x), 1-Sigmoid(x), 1e-12) {
			t.Errorf("sigmoid symmetry violated at %v", x)
		}
	}
}

func randomDist(r *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = r.Float64() + 1e-6
	}
	Normalize(p)
	return p
}

func TestDivergenceProperties(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		p := randomDist(r, 4)
		q := randomDist(r, 4)
		if kl := KL(p, p); !almostEqual(kl, 0, 1e-9) {
			t.Fatalf("KL(p||p) = %v, want 0", kl)
		}
		if kl := KL(p, q); kl < 0 {
			t.Fatalf("KL(p||q) = %v < 0", kl)
		}
		js := JS(p, q)
		if js < 0 || js > math.Log(2)+1e-9 {
			t.Fatalf("JS out of [0, ln2]: %v", js)
		}
		if !almostEqual(js, JS(q, p), 1e-12) {
			t.Fatalf("JS not symmetric: %v vs %v", js, JS(q, p))
		}
		if !almostEqual(SymKL(p, q), SymKL(q, p), 1e-12) {
			t.Fatal("SymKL not symmetric")
		}
	}
}

func TestEuclideanAndDot(t *testing.T) {
	a := []float64{1, 2, 2}
	b := []float64{1, 0, 0}
	if got := Euclidean(a, b); !almostEqual(got, math.Sqrt(8), 1e-12) {
		t.Errorf("Euclidean = %v", got)
	}
	if got := Dot(a, b); got != 1 {
		t.Errorf("Dot = %v, want 1", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %v, want 5", got)
	}
}

func TestCosineSim(t *testing.T) {
	if got := CosineSim([]float64{1, 0}, []float64{2, 0}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("parallel cosine = %v", got)
	}
	if got := CosineSim([]float64{1, 0}, []float64{0, 3}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := CosineSim([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if i := ArgMax(xs); i != 5 {
		t.Errorf("ArgMax = %d, want 5", i)
	}
	if i := ArgMin(xs); i != 1 {
		t.Errorf("ArgMin = %d, want 1 (first of ties)", i)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	// xs must be untouched.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	if got := Pearson(xs, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	v := []float64{2, 2, 4}
	Normalize(v)
	want := []float64{0.25, 0.25, 0.5}
	for i := range v {
		if !almostEqual(v[i], want[i], 1e-12) {
			t.Errorf("Normalize[%d] = %v, want %v", i, v[i], want[i])
		}
	}
	z := []float64{0, 0}
	Normalize(z)
	if !almostEqual(z[0], 0.5, 1e-12) || !almostEqual(z[1], 0.5, 1e-12) {
		t.Errorf("Normalize zero vector = %v, want uniform", z)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestClampAndMinMax(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
	min, max := MinMax([]float64{3, -2, 8, 0})
	if min != -2 || max != 8 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("KL mismatch", func() { KL([]float64{1}, []float64{0.5, 0.5}) })
	mustPanic("ArgMax empty", func() { ArgMax(nil) })
	mustPanic("MinMax empty", func() { MinMax(nil) })
	mustPanic("Dot mismatch", func() { Dot([]float64{1}, []float64{1, 2}) })
}
