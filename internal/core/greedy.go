package core

import (
	"sort"
	"time"

	"schemble/internal/ensemble"
)

// Order selects the query processing order of the Greedy scheduler.
type Order int

// Greedy processing orders (Exp-4's baselines).
const (
	// EDF processes the earliest deadline first.
	EDF Order = iota
	// FIFO processes the earliest arrival first.
	FIFO
	// SJF processes the smallest estimated discrepancy score first
	// ("shortest job": easy queries need the least work).
	SJF
)

func (o Order) String() string {
	switch o {
	case EDF:
		return "edf"
	case FIFO:
		return "fifo"
	case SJF:
		return "sjf"
	default:
		return "order?"
	}
}

// Greedy schedules queries in a fixed order, assigning each the
// highest-reward subset that still meets its deadline given the commitments
// already made — ignoring the queries behind it, which is exactly the
// myopia the DP algorithm fixes.
//
// Like DP, a Greedy instance owns reusable scratch buffers: it must not
// be shared by concurrent Schedule calls, and the returned Plan's
// Assignments map is valid only until the next Schedule call on the same
// instance.
type Greedy struct {
	Order Order

	scr *greedyScratch
}

// greedyScratch holds Greedy's reusable per-instance buffers.
type greedyScratch struct {
	fl        flattenScratch
	sorter    greedySorter
	comp      []time.Duration
	bestAvail []time.Duration
	subsets   []ensemble.Subset
	subsetsM  int
	plan      map[int]ensemble.Subset
}

// greedySorter sorts a query index slice under one of the Greedy orders
// without the closure allocation of sort.Slice. The comparator is a
// total order whenever query IDs are unique.
type greedySorter struct {
	idx   []int
	qs    []QueryInfo
	order Order
}

func (g *greedySorter) Len() int      { return len(g.idx) }
func (g *greedySorter) Swap(i, j int) { g.idx[i], g.idx[j] = g.idx[j], g.idx[i] }
func (g *greedySorter) Less(i, j int) bool {
	qa, qb := g.qs[g.idx[i]], g.qs[g.idx[j]]
	switch g.order {
	case FIFO:
		if qa.Arrival != qb.Arrival {
			return qa.Arrival < qb.Arrival
		}
	case SJF:
		//schemble:floateq-ok deterministic tie-break: exact ties fall through to the next ordering key
		if qa.Score != qb.Score {
			return qa.Score < qb.Score
		}
	default: // EDF
		if qa.Deadline != qb.Deadline {
			return qa.Deadline < qb.Deadline
		}
	}
	return qa.ID < qb.ID
}

// Name implements Scheduler.
func (g *Greedy) Name() string { return "greedy+" + g.Order.String() }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	if g.scr == nil {
		g.scr = &greedyScratch{}
	}
	s := g.scr
	if s.plan == nil {
		s.plan = make(map[int]ensemble.Subset, 16)
	}
	clear(s.plan)
	plan := Plan{Assignments: s.plan}
	if len(queries) == 0 {
		return plan
	}
	idx := s.sorter.idx[:0]
	for i := range queries {
		idx = append(idx, i)
	}
	s.sorter.idx, s.sorter.qs, s.sorter.order = idx, queries, g.Order
	sort.Sort(&s.sorter)
	s.sorter.qs = nil
	idx = s.sorter.idx

	cur, lay := s.fl.flatten(now, avail)
	if cap(s.comp) < len(cur) {
		s.comp = make([]time.Duration, len(cur))
		s.bestAvail = make([]time.Duration, len(cur))
	} else {
		s.comp = s.comp[:len(cur)]
		s.bestAvail = s.bestAvail[:len(cur)]
	}
	if s.subsets == nil && avail.M() > 0 || s.subsetsM != avail.M() {
		s.subsets = ensemble.AllSubsets(avail.M())
		s.subsetsM = avail.M()
	}
	for _, qi := range idx {
		q := queries[qi]
		best := ensemble.Empty
		bestR := 0.0
		for _, sub := range s.subsets {
			done := lay.completion(cur, exec, sub, s.comp)
			if done > q.Deadline {
				continue
			}
			rw := r.Reward(q.Score, sub)
			//schemble:floateq-ok deterministic tie-break: an exact reward tie prefers the smaller subset
			if rw > bestR || (rw == bestR && best != ensemble.Empty && sub.Size() < best.Size()) {
				best, bestR = sub, rw
				copy(s.bestAvail, s.comp)
			}
		}
		plan.Assignments[q.ID] = best
		if best != ensemble.Empty {
			copy(cur, s.bestAvail)
			plan.TotalReward += bestR
		}
	}
	return plan
}

// Exhaustive finds the true optimal plan by trying every subset assignment
// over every query permutation-free EDF order (Theorem 1 licenses fixing
// the order). It is exponential in the number of queries and exists only to
// verify the DP's (1-epsilon) bound on small instances; MaxQueries guards
// against accidental blowups.
type Exhaustive struct {
	MaxQueries int // default 8
}

// Name implements Scheduler.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Schedule implements Scheduler.
func (e *Exhaustive) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	limit := e.MaxQueries
	if limit <= 0 {
		limit = 8
	}
	if len(queries) > limit {
		panic("core: Exhaustive over too many queries")
	}
	order := edfOrder(queries)
	base, lay := flatten(now, avail)
	options := append([]ensemble.Subset{ensemble.Empty}, ensemble.AllSubsets(avail.M())...)

	best := Plan{Assignments: map[int]ensemble.Subset{}}
	bestReward := -1.0
	assign := make([]ensemble.Subset, len(order))
	scratch := make([]time.Duration, len(base))

	var recurse func(i int, cur []time.Duration, reward float64)
	recurse = func(i int, cur []time.Duration, reward float64) {
		if i == len(order) {
			if reward > bestReward {
				bestReward = reward
				best.Assignments = make(map[int]ensemble.Subset, len(order))
				for j, qi := range order {
					best.Assignments[queries[qi].ID] = assign[j]
				}
				best.TotalReward = reward
			}
			return
		}
		q := queries[order[i]]
		for _, s := range options {
			if s == ensemble.Empty {
				assign[i] = s
				recurse(i+1, cur, reward)
				continue
			}
			done := lay.completion(cur, exec, s, scratch)
			if done > q.Deadline {
				continue
			}
			na := make([]time.Duration, len(base))
			copy(na, scratch)
			assign[i] = s
			recurse(i+1, na, reward+r.Reward(q.Score, s))
		}
	}
	recurse(0, base, 0)
	return best
}
