package core

import (
	"sort"
	"time"

	"schemble/internal/ensemble"
)

// Order selects the query processing order of the Greedy scheduler.
type Order int

// Greedy processing orders (Exp-4's baselines).
const (
	// EDF processes the earliest deadline first.
	EDF Order = iota
	// FIFO processes the earliest arrival first.
	FIFO
	// SJF processes the smallest estimated discrepancy score first
	// ("shortest job": easy queries need the least work).
	SJF
)

func (o Order) String() string {
	switch o {
	case EDF:
		return "edf"
	case FIFO:
		return "fifo"
	case SJF:
		return "sjf"
	default:
		return "order?"
	}
}

// Greedy schedules queries in a fixed order, assigning each the
// highest-reward subset that still meets its deadline given the commitments
// already made — ignoring the queries behind it, which is exactly the
// myopia the DP algorithm fixes.
type Greedy struct {
	Order Order
}

// Name implements Scheduler.
func (g *Greedy) Name() string { return "greedy+" + g.Order.String() }

// Schedule implements Scheduler.
func (g *Greedy) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	plan := Plan{Assignments: make(map[int]ensemble.Subset, len(queries))}
	if len(queries) == 0 {
		return plan
	}
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		qa, qb := queries[idx[a]], queries[idx[b]]
		switch g.Order {
		case FIFO:
			if qa.Arrival != qb.Arrival {
				return qa.Arrival < qb.Arrival
			}
		case SJF:
			//schemble:floateq-ok deterministic tie-break: exact ties fall through to the next ordering key
			if qa.Score != qb.Score {
				return qa.Score < qb.Score
			}
		default: // EDF
			if qa.Deadline != qb.Deadline {
				return qa.Deadline < qb.Deadline
			}
		}
		return qa.ID < qb.ID
	})

	cur, lay := flatten(now, avail)
	scratch := make([]time.Duration, len(cur))
	subsets := ensemble.AllSubsets(avail.M())
	for _, qi := range idx {
		q := queries[qi]
		best := ensemble.Empty
		bestR := 0.0
		var bestAvail []time.Duration
		for _, s := range subsets {
			done := lay.completion(cur, exec, s, scratch)
			if done > q.Deadline {
				continue
			}
			rw := r.Reward(q.Score, s)
			//schemble:floateq-ok deterministic tie-break: an exact reward tie prefers the smaller subset
			if rw > bestR || (rw == bestR && best != ensemble.Empty && s.Size() < best.Size()) {
				best, bestR = s, rw
				bestAvail = append(bestAvail[:0], scratch...)
			}
		}
		plan.Assignments[q.ID] = best
		if best != ensemble.Empty {
			copy(cur, bestAvail)
			plan.TotalReward += bestR
		}
	}
	return plan
}

// Exhaustive finds the true optimal plan by trying every subset assignment
// over every query permutation-free EDF order (Theorem 1 licenses fixing
// the order). It is exponential in the number of queries and exists only to
// verify the DP's (1-epsilon) bound on small instances; MaxQueries guards
// against accidental blowups.
type Exhaustive struct {
	MaxQueries int // default 8
}

// Name implements Scheduler.
func (e *Exhaustive) Name() string { return "exhaustive" }

// Schedule implements Scheduler.
func (e *Exhaustive) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	limit := e.MaxQueries
	if limit <= 0 {
		limit = 8
	}
	if len(queries) > limit {
		panic("core: Exhaustive over too many queries")
	}
	order := edfOrder(queries)
	base, lay := flatten(now, avail)
	options := append([]ensemble.Subset{ensemble.Empty}, ensemble.AllSubsets(avail.M())...)

	best := Plan{Assignments: map[int]ensemble.Subset{}}
	bestReward := -1.0
	assign := make([]ensemble.Subset, len(order))
	scratch := make([]time.Duration, len(base))

	var recurse func(i int, cur []time.Duration, reward float64)
	recurse = func(i int, cur []time.Duration, reward float64) {
		if i == len(order) {
			if reward > bestReward {
				bestReward = reward
				best.Assignments = make(map[int]ensemble.Subset, len(order))
				for j, qi := range order {
					best.Assignments[queries[qi].ID] = assign[j]
				}
				best.TotalReward = reward
			}
			return
		}
		q := queries[order[i]]
		for _, s := range options {
			if s == ensemble.Empty {
				assign[i] = s
				recurse(i+1, cur, reward)
				continue
			}
			done := lay.completion(cur, exec, s, scratch)
			if done > q.Deadline {
				continue
			}
			na := make([]time.Duration, len(base))
			copy(na, scratch)
			assign[i] = s
			recurse(i+1, na, reward+r.Reward(q.Score, s))
		}
	}
	recurse(0, base, 0)
	return best
}
