package core

import (
	"time"

	"schemble/internal/ensemble"
)

// Capacity is the scheduler's view of fleet availability once models run
// as replica pools: Capacity[k][r] is the absolute (virtual) time replica
// r of model k finishes the work already committed to it (values in the
// past mean "idle now"). A model with a single replica degenerates to the
// scalar busy-until the schedulers used before replica pools existed, and
// every scheduler in this package is bit-identical to its scalar
// predecessor in that case.
//
// Zero-replica convention: a model whose pool is empty (len(Capacity[k])
// == 0) is planned as a SINGLE IDLE replica — the same "missing means
// one" convention serve.Config.Replicas documents, so the simulator, the
// runtime and hand-built capacities agree. A caller that wants a model
// excluded from planning must instead push its slots past any feasible
// deadline, the way the serve runtime encodes open breakers and crash
// windows.
type Capacity [][]time.Duration

// SingleReplica lifts a per-model availability vector (one replica per
// model) into a Capacity.
func SingleReplica(avail []time.Duration) Capacity {
	c := make(Capacity, len(avail))
	for k, a := range avail {
		c[k] = []time.Duration{a}
	}
	return c
}

// M returns the number of models.
func (c Capacity) M() int { return len(c) }

// layout maps the flattened replica-slot vector back to models: model k
// owns slots[off[k]:off[k+1]], kept sorted ascending so slot off[k] is
// always the earliest-available replica (the root of that model's
// min-heap, stored flat so Pareto dominance stays a plain element-wise
// comparison).
type layout struct{ off []int }

func (l layout) m() int { return len(l.off) - 1 }

// flatten clamps every replica slot to now (a replica free in the past is
// free now), sorts each model's slots ascending, and concatenates the
// segments model-major. A model with no declared replicas gets one idle
// slot (the zero-replica convention documented on Capacity). With one
// replica per model the result is exactly the normalized per-model
// availability vector the schedulers consumed before pools.
//
// flatten allocates fresh buffers on every call; the scheduler hot paths
// use flattenScratch instead, which reuses its output buffers across
// calls.
func flatten(now time.Duration, c Capacity) ([]time.Duration, layout) {
	flat, off := flattenInto(nil, nil, now, c)
	return flat, layout{off: off}
}

// flattenScratch reuses flatten's output buffers across calls so a
// scheduler invoked per decision performs no allocations for capacity
// normalization. The returned slices are owned by the scratch and
// overwritten by the next call.
type flattenScratch struct {
	flat []time.Duration
	off  []int
}

func (fs *flattenScratch) flatten(now time.Duration, c Capacity) ([]time.Duration, layout) {
	fs.flat, fs.off = flattenInto(fs.flat[:0], fs.off[:0], now, c)
	return fs.flat, layout{off: fs.off}
}

// flattenInto is flatten's allocation-free core: it appends the clamped,
// per-model-sorted slot vector to flat and the segment offsets to off and
// returns both (grown as needed). Segments are sorted with an insertion
// sort — replica pools are small, and the sorted *values* are identical
// to any other ascending sort, so the flattened vector is bit-identical
// to the sort.Slice the allocating path used historically.
func flattenInto(flat []time.Duration, off []int, now time.Duration, c Capacity) ([]time.Duration, []int) {
	total := 0
	for _, slots := range c {
		off = append(off, total)
		n := len(slots)
		if n == 0 {
			n = 1
		}
		total += n
	}
	off = append(off, total)
	for k, slots := range c {
		if len(slots) == 0 {
			// Zero-replica convention: plan as one idle replica.
			flat = append(flat, now)
			continue
		}
		segStart := off[k]
		for _, a := range slots {
			if a < now {
				a = now
			}
			// Insertion sort: shift the sorted prefix right until a fits.
			i := len(flat)
			flat = append(flat, a)
			for i > segStart && flat[i-1] > a {
				flat[i] = flat[i-1]
				i--
			}
			flat[i] = a
		}
	}
	return flat, off
}

// completion computes when a query executing subset s would finish given
// the flattened slot vector avail: each chosen model runs the task on its
// earliest-available replica, whose new finish time is re-inserted in
// sorted position within the model's segment. dst (len(avail)) is
// overwritten with the resulting availability; the return value is the
// completion time, i.e. the latest finish among the chosen models.
func (l layout) completion(avail, exec []time.Duration, s ensemble.Subset, dst []time.Duration) time.Duration {
	copy(dst, avail)
	var done time.Duration
	for k := 0; k < l.m(); k++ {
		if !s.Contains(k) {
			continue
		}
		seg := dst[l.off[k]:l.off[k+1]]
		finish := seg[0] + exec[k]
		i := 0
		for i+1 < len(seg) && seg[i+1] < finish {
			seg[i] = seg[i+1]
			i++
		}
		seg[i] = finish
		if finish > done {
			done = finish
		}
	}
	return done
}
