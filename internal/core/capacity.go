package core

import (
	"sort"
	"time"

	"schemble/internal/ensemble"
)

// Capacity is the scheduler's view of fleet availability once models run
// as replica pools: Capacity[k][r] is the absolute (virtual) time replica
// r of model k finishes the work already committed to it (values in the
// past mean "idle now"). A model with a single replica degenerates to the
// scalar busy-until the schedulers used before replica pools existed, and
// every scheduler in this package is bit-identical to its scalar
// predecessor in that case.
type Capacity [][]time.Duration

// SingleReplica lifts a per-model availability vector (one replica per
// model) into a Capacity.
func SingleReplica(avail []time.Duration) Capacity {
	c := make(Capacity, len(avail))
	for k, a := range avail {
		c[k] = []time.Duration{a}
	}
	return c
}

// M returns the number of models.
func (c Capacity) M() int { return len(c) }

// layout maps the flattened replica-slot vector back to models: model k
// owns slots[off[k]:off[k+1]], kept sorted ascending so slot off[k] is
// always the earliest-available replica (the root of that model's
// min-heap, stored flat so Pareto dominance stays a plain element-wise
// comparison).
type layout struct{ off []int }

func (l layout) m() int { return len(l.off) - 1 }

// flatten clamps every replica slot to now (a replica free in the past is
// free now), sorts each model's slots ascending, and concatenates the
// segments model-major. A model with no declared replicas gets one idle
// slot. With one replica per model the result is exactly the normalized
// per-model availability vector the schedulers consumed before pools.
func flatten(now time.Duration, c Capacity) ([]time.Duration, layout) {
	off := make([]int, len(c)+1)
	total := 0
	for k, slots := range c {
		off[k] = total
		n := len(slots)
		if n == 0 {
			n = 1
		}
		total += n
	}
	off[len(c)] = total
	flat := make([]time.Duration, total)
	for k, slots := range c {
		seg := flat[off[k]:off[k+1]]
		if len(slots) == 0 {
			seg[0] = now
			continue
		}
		for i, a := range slots {
			if a < now {
				a = now
			}
			seg[i] = a
		}
		sort.Slice(seg, func(i, j int) bool { return seg[i] < seg[j] })
	}
	return flat, layout{off: off}
}

// completion computes when a query executing subset s would finish given
// the flattened slot vector avail: each chosen model runs the task on its
// earliest-available replica, whose new finish time is re-inserted in
// sorted position within the model's segment. dst (len(avail)) is
// overwritten with the resulting availability; the return value is the
// completion time, i.e. the latest finish among the chosen models.
func (l layout) completion(avail, exec []time.Duration, s ensemble.Subset, dst []time.Duration) time.Duration {
	copy(dst, avail)
	var done time.Duration
	for k := 0; k < l.m(); k++ {
		if !s.Contains(k) {
			continue
		}
		seg := dst[l.off[k]:l.off[k+1]]
		finish := seg[0] + exec[k]
		i := 0
		for i+1 < len(seg) && seg[i+1] < finish {
			seg[i] = seg[i+1]
			i++
		}
		seg[i] = finish
		if finish > done {
			done = finish
		}
	}
	return done
}
