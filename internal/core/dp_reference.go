package core

import (
	"time"

	"schemble/internal/ensemble"
)

// ReferenceDP is the historical, allocation-per-call implementation of
// the DP scheduler, preserved verbatim. It exists for two jobs:
//
//   - Differential oracle: dp_identity_test.go replays thousands of
//     seeded instances through DP and ReferenceDP and requires
//     bit-identical plans, which is what licenses every shortcut the
//     arena-based DP takes (frontier reuse, Pareto short-circuit,
//     entry recycling).
//   - Benchmark baseline: cmd/schemble-bench measures DP's speedup
//     against it, and BENCH_dp.json records the ratio.
//
// Do not use it in serving paths, and do not "fix" it: its value is
// being the frozen pre-arena semantics. That includes one historical
// wart the live DP repaired — a Rewarder returning a reward above 1.0
// makes ReferenceDP index past its level table and panic, whereas DP
// clamps into the top level (see TestDPOutOfRangeRewarder).
type ReferenceDP struct {
	// Fields mirror DP; see that type for documentation.
	Delta        float64
	MaxWindow    int
	DisablePrune bool
	MaxFrontier  int
	Vanilla      bool
}

// Name implements Scheduler.
func (d *ReferenceDP) Name() string { return "dp-reference" }

// refEntry is one Pareto-frontier member of the reference
// implementation: a freshly allocated availability vector, the exact
// cumulative reward, and the back-pointer chain reconstructing the plan.
type refEntry struct {
	avail  []time.Duration
	reward float64
	parent *refEntry
	choice ensemble.Subset
	qID    int
}

// Schedule implements Scheduler. The body is the pre-arena DP.Schedule,
// verbatim.
func (d *ReferenceDP) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	delta := d.Delta
	if delta <= 0 {
		delta = 0.01
	}
	window := d.MaxWindow
	if window <= 0 {
		window = 16
	}
	plan := Plan{Assignments: make(map[int]ensemble.Subset, len(queries))}
	if len(queries) == 0 {
		return plan
	}
	order := edfOrder(queries)
	if len(order) > window {
		order = order[:window]
	}
	base, lay := flatten(now, avail)
	subsets := ensemble.AllSubsets(avail.M())

	// frontier[level] holds the Pareto entries attaining quantized reward
	// level after the queries processed so far. Levels index a dense
	// slice (each query adds at most ceil(1/delta) levels), iterated in
	// ascending order, so the DP is fully deterministic.
	perQueryLevels := quantize(1, delta) + 1
	frontier := make([][]*refEntry, 1, 1+len(order)*perQueryLevels)
	frontier[0] = []*refEntry{{avail: base}}
	scratch := make([]time.Duration, len(base))

	maxFrontier := d.MaxFrontier
	if maxFrontier == 0 {
		maxFrontier = 12
	}
	// insert adds a candidate (avail in cand, exact reward rw) to the
	// frontier, allocating the availability vector only when the
	// candidate actually survives dominance checks and the beam limit.
	insert := func(front []*refEntry, cand []time.Duration, rw float64, parent *refEntry, choice ensemble.Subset, qID int) []*refEntry {
		if d.DisablePrune {
			if len(front) >= UnprunedCap {
				return front
			}
			na := make([]time.Duration, len(cand))
			copy(na, cand)
			return append(front, &refEntry{avail: na, reward: rw,
				parent: parent, choice: choice, qID: qID})
		}
		for _, f := range front {
			if (d.Vanilla || f.reward >= rw) && dominates(f.avail, cand) {
				return front
			}
		}
		out := front[:0]
		for _, f := range front {
			if !((d.Vanilla || rw >= f.reward) && dominates(cand, f.avail)) {
				out = append(out, f)
			}
		}
		na := make([]time.Duration, len(cand))
		copy(na, cand)
		out = append(out, &refEntry{avail: na, reward: rw,
			parent: parent, choice: choice, qID: qID})
		if maxFrontier > 0 && len(out) > maxFrontier {
			// Evict the worst entry under the betterRef ordering.
			worst := 0
			for i := 1; i < len(out); i++ {
				if betterRef(out[worst], out[i]) {
					worst = i
				}
			}
			out[worst] = out[len(out)-1]
			out = out[:len(out)-1]
		}
		return out
	}
	for _, qi := range order {
		q := queries[qi]
		next := make([][]*refEntry, len(frontier)+perQueryLevels)
		for level, entries := range frontier {
			for _, e := range entries {
				// Skip the query: same level, same availability.
				next[level] = insert(next[level], e.avail, e.reward, e, ensemble.Empty, q.ID)
				// Try every subset that meets the deadline.
				for _, s := range subsets {
					done := lay.completion(e.avail, exec, s, scratch)
					if done > q.Deadline {
						continue
					}
					rw := r.Reward(q.Score, s)
					lvl := level + quantize(rw, delta)
					next[lvl] = insert(next[lvl], scratch, e.reward+rw, e, s, q.ID)
				}
			}
		}
		frontier = next
	}

	// Visit the non-empty cell with the largest quantized reward; within
	// it prefer the highest exact reward, then the plan finishing earliest
	// overall (most room for future arrivals), then a lexicographic
	// tie-break for determinism.
	bestLevel := -1
	for level := len(frontier) - 1; level >= 0; level-- {
		if len(frontier[level]) > 0 {
			bestLevel = level
			break
		}
	}
	if bestLevel < 0 {
		return plan
	}
	entries := frontier[bestLevel]
	best := entries[0]
	for _, e := range entries[1:] {
		if d.Vanilla {
			if maxOf(e.avail) < maxOf(best.avail) {
				best = e
			}
			continue
		}
		if betterRef(e, best) {
			best = e
		}
	}
	for e := best; e != nil && e.parent != nil; e = e.parent {
		plan.Assignments[e.qID] = e.choice
	}
	plan.TotalReward = best.reward
	return plan
}

// betterRef orders candidates within the winning level: exact reward
// descending, overall finish ascending, then lexicographic availability.
func betterRef(a, b *refEntry) bool {
	//schemble:floateq-ok deterministic tie-break: exact ties fall through to the next ordering key
	if a.reward != b.reward {
		return a.reward > b.reward
	}
	am, bm := maxOf(a.avail), maxOf(b.avail)
	if am != bm {
		return am < bm
	}
	for k := range a.avail {
		if a.avail[k] != b.avail[k] {
			return a.avail[k] < b.avail[k]
		}
	}
	return false
}
