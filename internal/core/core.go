// Package core contains the paper's primary contribution: the query
// difficulty-dependent task scheduler. Given the queries waiting in the
// buffer — each with an arrival time, a deadline and a predicted
// discrepancy score — and the current availability of every base model, a
// scheduler picks a model subset for each query (possibly the empty set,
// i.e. reject/skip) such that chosen subsets complete before their
// deadlines and the total profiled reward is maximized.
//
// The flagship implementation is DP, the dynamic-programming algorithm of
// Alg. 1: queries are ordered earliest-deadline-first (optimal once subsets
// are fixed, Theorem 2), rewards are quantized in steps of delta, and each
// DP cell keeps a Pareto frontier of model-availability vectors with
// dominance pruning. Greedy+EDF/FIFO/SJF baselines and an exhaustive
// optimal scheduler (for testing the (1-epsilon) bound of Theorem 3) live
// alongside it.
package core

import (
	"sort"
	"time"

	"schemble/internal/ensemble"
)

// QueryInfo is the scheduler's view of one buffered query.
type QueryInfo struct {
	// ID identifies the query to the runtime.
	ID int
	// Arrival is the absolute (virtual) arrival time.
	Arrival time.Duration
	// Deadline is the absolute time by which the query must complete.
	Deadline time.Duration
	// Score is the predicted discrepancy score in [0,1].
	Score float64
}

// Rewarder maps a query's difficulty score and a candidate model subset to
// the expected accuracy reward. profiling.Profile implements it.
type Rewarder interface {
	Reward(score float64, s ensemble.Subset) float64
}

// Plan is a scheduler's decision: the subset assigned to each query (absent
// or Empty means skip) and the plan's total quantifiable reward. Queries
// are to be executed in EDF order (consistent query order, Theorem 1).
type Plan struct {
	Assignments map[int]ensemble.Subset
	TotalReward float64
}

// Subset returns the plan's assignment for query id (Empty when skipped).
func (p Plan) Subset(id int) ensemble.Subset { return p.Assignments[id] }

// Clone returns a copy of the plan whose Assignments map is owned by the
// caller. Plans returned by Schedule share their Assignments map with the
// scheduler's arena and are valid only until the next Schedule call on
// the same scheduler; Clone is the one sanctioned way to retain a plan
// past that point (the planown analyzer enforces this).
func (p Plan) Clone() Plan {
	out := Plan{TotalReward: p.TotalReward}
	if p.Assignments != nil {
		out.Assignments = make(map[int]ensemble.Subset, len(p.Assignments))
		//schemble:maporder-ok map-to-map copy: the result is independent of iteration order
		for id, s := range p.Assignments {
			out.Assignments[id] = s
		}
	}
	return out
}

// Scheduler solves the local scheduling subproblem at one instant.
type Scheduler interface {
	Name() string
	// Schedule plans subsets for queries. now is the current time;
	// avail[k][r] is the absolute time replica r of model k finishes its
	// in-flight work (values in the past mean "idle now"); exec[k] is the
	// expected execution time of one task on model k — the amortized
	// per-item cost when the runtime micro-batches.
	Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan
}

// ExecSource feeds the scheduler's per-model cost vector. The frozen
// profiling numbers are the static case (StaticExec); the online
// adaptation layer (internal/adapt) implements it with live quantile
// sketches. The contract is deliberately narrow so the cost model stays
// engine-agnostic: ExecInto overwrites exec[k] for every model k it
// knows about, must not allocate, and must tolerate being called before
// every planning round — the runtimes refresh their retained exec slice
// through it so the scheduler hot path itself stays at zero allocations
// per decision.
type ExecSource interface {
	ExecInto(exec []time.Duration)
}

// StaticExec is the frozen-profile ExecSource: it copies its own values
// into exec on every call.
type StaticExec []time.Duration

// ExecInto implements ExecSource.
func (s StaticExec) ExecInto(exec []time.Duration) {
	copy(exec, s)
}

// edfLess is the EDF ordering: deadline, then arrival, then ID. With
// unique IDs it is a total order, so any comparison sort produces the
// same permutation from it.
func edfLess(qa, qb QueryInfo) bool {
	if qa.Deadline != qb.Deadline {
		return qa.Deadline < qb.Deadline
	}
	if qa.Arrival != qb.Arrival {
		return qa.Arrival < qb.Arrival
	}
	return qa.ID < qb.ID
}

// edfOrder returns the indices of queries sorted by edfLess, allocating a
// fresh index slice. Hot paths use dpScratch.edfOrder, which reuses its
// slice and sorter.
func edfOrder(queries []QueryInfo) []int {
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return edfLess(queries[idx[a]], queries[idx[b]])
	})
	return idx
}
