package core

import (
	"testing"
	"time"

	"schemble/internal/ensemble"
)

// decodeFuzzInstance turns an arbitrary byte string into a bounded
// scheduling instance: 1–4 models with 1–3 replicas each, up to six
// queries. Bounds are harness-level (the fuzzer explores scheduler logic,
// not resource exhaustion); within them every byte value is legal, so the
// fuzzer is free to construct degenerate shapes — zero exec deltas,
// deadlines before now, duplicate availabilities, idle and saturated
// pools.
func decodeFuzzInstance(data []byte) (instance, bool) {
	const maxQueries = 6
	if len(data) < 2 {
		return instance{}, false
	}
	m := 1 + int(data[0]%4)
	inst := instance{
		now:  time.Duration(data[1]%64) * ms,
		m:    m,
		cap:  make(Capacity, m),
		exec: make([]time.Duration, m),
	}
	pos := 2
	for k := 0; k < m; k++ {
		if pos >= len(data) {
			return instance{}, false
		}
		slots := make([]time.Duration, 1+int(data[pos]%3))
		pos++
		for r := range slots {
			if pos >= len(data) {
				return instance{}, false
			}
			slots[r] = time.Duration(data[pos]%128) * ms
			pos++
		}
		inst.cap[k] = slots
		if pos >= len(data) {
			return instance{}, false
		}
		inst.exec[k] = time.Duration(1+int(data[pos]%100)) * ms
		pos++
	}
	for len(inst.queries) < maxQueries && pos+3 <= len(data) {
		arrival := time.Duration(data[pos]%100) * ms
		inst.queries = append(inst.queries, QueryInfo{
			ID:       len(inst.queries) + 1,
			Arrival:  arrival,
			Deadline: arrival + time.Duration(10+int(data[pos+1]))*ms,
			Score:    float64(data[pos+2]) / 255,
		})
		pos += 3
	}
	if len(inst.queries) == 0 {
		return instance{}, false
	}
	return inst, true
}

// FuzzDPSchedule drives the DP scheduler (and the greedy baseline on the
// same instance) over fuzzer-shaped instances and configuration knobs,
// asserting the invariants that must survive any input: no panic, plans
// replay feasibly in EDF order on replica capacity, TotalReward is the
// exact sum of the assignments' rewards, and every assignment refers to a
// real query with a subset inside the model universe.
func FuzzDPSchedule(f *testing.F) {
	f.Add([]byte("\x02\x10\x01\x05\x14\x01\x0a\x1e\x20\x40\x30\x10\x60\x55\x30\x21"), uint16(10), uint16(0), false, false)
	f.Add([]byte("\x02\x00\x02\x00\x10\x20\x32\x00\x50\x14\x01\x05\x06\x40\x00\x64\x80\x10\x20\xff"), uint16(1), uint16(2), true, false)
	f.Add([]byte("\x00\x3f\x02\x7f\x7f\x63\x63\x00\x01\x02\x63\xfe\xff"), uint16(100), uint16(16), false, true)
	f.Add([]byte("\x00\x01\x00\x05\x0a\x00\x32\x7f"), uint16(500), uint16(1), true, true)
	f.Fuzz(func(t *testing.T, data []byte, deltaRaw, windowRaw uint16, vanilla, noPrune bool) {
		inst, ok := decodeFuzzInstance(data)
		if !ok {
			t.Skip("undecodable instance")
		}
		// Delta below 0.001 makes the table size, not the algorithm, the
		// subject under test; clamp at the harness.
		delta := float64(1+deltaRaw%1000) / 1000
		d := &DP{
			Delta:        delta,
			MaxWindow:    int(windowRaw % 20),
			Vanilla:      vanilla,
			DisablePrune: noPrune,
		}
		r := rootRewarder{m: inst.m}
		plan := d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
		checkFuzzPlan(t, "dp", inst, plan, r)
		g := &Greedy{Order: Order(int(deltaRaw) % 3)}
		checkFuzzPlan(t, g.Name(), inst,
			g.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r), r)
	})
}

// checkFuzzPlan asserts the structural invariants of one plan against its
// instance.
func checkFuzzPlan(t *testing.T, tag string, inst instance, plan Plan, r Rewarder) {
	t.Helper()
	known := make(map[int]bool, len(inst.queries))
	for _, q := range inst.queries {
		known[q.ID] = true
	}
	universe := ensemble.Full(inst.m)
	for id, s := range plan.Assignments {
		if !known[id] {
			t.Fatalf("%s: assignment for unknown query %d", tag, id)
		}
		if s&^universe != ensemble.Empty {
			t.Fatalf("%s: query %d assigned models outside the %d-model universe: %v",
				tag, id, inst.m, s.Models())
		}
	}
	replayFeasible(t, tag, 0, inst, plan, r)
}
