package core

import (
	"reflect"
	"sort"
	"time"

	"schemble/internal/ensemble"
)

// This file implements the per-scheduler arena behind DP.Schedule. The
// arena turns the scheduler hot path into a ~zero-allocation loop by
// replacing the per-call frontier tables and per-entry availability
// copies with reusable storage owned by the scheduler instance:
//
//   - entries:  one flat slice of dpEntry; frontier membership and
//     back-pointers are int32 indices into it, so entries survive slice
//     growth (pointers into a growing slice would not).
//   - slab:     all availability vectors, stored as fixed-width regions
//     of one backing slice; dpEntry.off locates an entry's region.
//   - free:     recycled entry ids. An entry evicted or dominated while
//     its table is being built has no children yet (children are only
//     created in later steps), so its id and slab region are immediately
//     reusable.
//   - steps:    one frontier table per DP step, RETAINED between calls.
//     When consecutive Schedule calls see the same capacity, exec
//     vector, rewarder and config, and the EDF-ordered queue prefix is
//     unchanged, the tables for that prefix are reused verbatim and the
//     DP resumes from the first divergent query. Step table i+1 is a
//     pure function of table i, queries[order[i]], exec, the flattened
//     layout, the Rewarder and the DP config, so prefix reuse is
//     bit-identical to a from-scratch solve (ReferenceDP is the oracle;
//     see dp_identity_test.go).
//
// The arena also caches the flatten buffers, the EDF index sorter, the
// subset enumeration and the returned Assignments map. None of this is
// goroutine-safe: a DP instance must not be shared across concurrent
// Schedule calls (no caller does — see the DP doc comment).

// dpEntry is one Pareto-frontier member. Its availability vector lives
// in the arena slab at [off, off+w); fin caches the vector's maximum
// (the plan's overall finish time), the hottest comparison key.
type dpEntry struct {
	off    int32
	parent int32 // arena id of the predecessor entry; -1 for the root
	qID    int
	choice ensemble.Subset
	reward float64
	fin    time.Duration
}

// dpLevel is one quantized-reward cell: the ids of its frontier entries,
// in insertion order (order matters — eviction keeps the first minimal
// entry on ties, and extraction walks ids in order). worst caches the
// index (into ids) of the entry the beam eviction would discard, enabling
// the Pareto short-circuit; -1 means unknown, and any mutation resets it.
type dpLevel struct {
	ids   []int32
	worst int32
}

// dpTable is the frontier table after one DP step.
type dpTable struct{ levels []dpLevel }

// dpScratch is the reusable arena owned by one DP instance.
type dpScratch struct {
	fl     flattenScratch
	sorter edfSorter

	w       int       // width of every availability vector this generation
	entries []dpEntry // arena; ids are indices into this slice
	slab    []time.Duration
	free    []int32 // recycled entry ids
	steps   []dpTable
	nsteps  int // steps[:nsteps] hold valid tables

	comp     []time.Duration // completion() output buffer
	subsets  []ensemble.Subset
	subsetsM int
	plan     map[int]ensemble.Subset

	// Per-call resolved configuration, set by Schedule.
	delta    float64
	vanilla  bool
	noPrune  bool
	maxFront int

	// Fingerprint of the previous call, for incremental prefix reuse.
	pValid    bool
	pDelta    float64
	pVanilla  bool
	pNoPrune  bool
	pMaxFront int
	pRewarder Rewarder
	pExec     []time.Duration
	pOff      []int
	pBase     []time.Duration
	pOrder    []QueryInfo // the EDF-ordered window actually planned
}

// avail returns entry id's availability vector. The result aliases the
// slab and is invalidated by the next newEntry call; re-fetch per use.
func (s *dpScratch) avail(id int32) []time.Duration {
	off := s.entries[id].off
	return s.slab[off : off+int32(s.w)]
}

// planMap returns the reused Assignments map, emptied.
func (s *dpScratch) planMap() map[int]ensemble.Subset {
	if s.plan == nil {
		s.plan = make(map[int]ensemble.Subset, 16)
	}
	clear(s.plan)
	return s.plan
}

// allSubsets caches the non-empty subset enumeration for m models.
func (s *dpScratch) allSubsets(m int) []ensemble.Subset {
	if s.subsets == nil && m > 0 || s.subsetsM != m {
		s.subsets = ensemble.AllSubsets(m)
		s.subsetsM = m
	}
	return s.subsets
}

// resetArena discards all entries and tables and fixes the availability
// width for the new generation. Stale ids left inside retained step
// tables are harmless: prepTable truncates every level before use.
func (s *dpScratch) resetArena(w int) {
	s.w = w
	s.entries = s.entries[:0]
	s.slab = s.slab[:0]
	s.free = s.free[:0]
	s.nsteps = 0
	if cap(s.comp) < w {
		s.comp = make([]time.Duration, w)
	} else {
		s.comp = s.comp[:w]
	}
}

// ensureSteps grows the step-table slice to at least n tables.
func (s *dpScratch) ensureSteps(n int) {
	for len(s.steps) < n {
		s.steps = append(s.steps, dpTable{})
	}
}

// prepTable resets t to n empty levels, recycling the per-level id
// slices accumulated by earlier calls.
func (s *dpScratch) prepTable(t *dpTable, n int) {
	for cap(t.levels) < n {
		t.levels = append(t.levels[:cap(t.levels)], dpLevel{worst: -1})
	}
	t.levels = t.levels[:n]
	for i := range t.levels {
		t.levels[i].ids = t.levels[i].ids[:0]
		t.levels[i].worst = -1
	}
}

// invalidateFrom recycles the entries of steps[i:] and marks them
// invalid. Entries in the surviving prefix never reference freed ones:
// back-pointers only point to earlier steps.
func (s *dpScratch) invalidateFrom(i int) {
	if i >= s.nsteps {
		return
	}
	for j := i; j < s.nsteps; j++ {
		t := &s.steps[j]
		for l := range t.levels {
			s.free = append(s.free, t.levels[l].ids...)
			t.levels[l].ids = t.levels[l].ids[:0]
			t.levels[l].worst = -1
		}
	}
	s.nsteps = i
}

// newEntry allocates an arena entry holding a copy of cand, preferring
// the free list. cand may alias the slab (a parent's vector) or the
// completion buffer; regions never overlap, and append growth reads
// from the old backing array, so the copy is safe either way.
func (s *dpScratch) newEntry(cand []time.Duration, rw float64, fin time.Duration, parent int32, choice ensemble.Subset, qID int) int32 {
	var id int32
	if n := len(s.free); n > 0 {
		id = s.free[n-1]
		s.free = s.free[:n-1]
		off := s.entries[id].off
		copy(s.slab[off:off+int32(s.w)], cand)
	} else {
		id = int32(len(s.entries))
		s.entries = append(s.entries, dpEntry{off: int32(len(s.slab))})
		s.slab = append(s.slab, cand...)
	}
	e := &s.entries[id]
	e.parent = parent
	e.qID = qID
	e.choice = choice
	e.reward = rw
	e.fin = fin
	return id
}

// insert adds a candidate (availability vector cand, exact cumulative
// reward rw) to level lvl of table t. This is the tested method behind
// the DP recurrence — the operation sequence (first-dominator early
// return, in-place filter, append, worst-entry eviction) replicates the
// historical closure exactly, so plans stay bit-identical to
// ReferenceDP; dp_identity_test.go enforces that.
func (s *dpScratch) insert(t *dpTable, lvl int, cand []time.Duration, rw float64, parent int32, choice ensemble.Subset, qID int) {
	L := &t.levels[lvl]
	front := L.ids
	if s.noPrune {
		if len(front) >= UnprunedCap {
			return
		}
		L.ids = append(front, s.newEntry(cand, rw, maxOf(cand), parent, choice, qID))
		L.worst = -1
		return
	}
	cfin := maxOf(cand)
	if !s.vanilla && s.maxFront > 0 && len(front) == s.maxFront {
		// Pareto short-circuit: with a full beam, if the entry eviction
		// would discard is still strictly better than the candidate,
		// then by transitivity every entry is, so the candidate can
		// neither dominate anything (domination requires rw >= f.reward
		// and an everywhere-no-later vector, which would make f not
		// better) nor survive the eviction it would trigger. The whole
		// insert is a no-op; skipping it is bit-identical. Unsound
		// under Vanilla, where a lower-reward candidate can still evict
		// availability-dominated entries.
		if L.worst < 0 {
			w := 0
			for i := 1; i < len(front); i++ {
				if s.better(front[w], front[i]) {
					w = i
				}
			}
			L.worst = int32(w)
		}
		we := s.entries[front[L.worst]]
		if betterRaw(we.reward, we.fin, s.avail(front[L.worst]), rw, cfin, cand) {
			return
		}
	}
	for _, fid := range front {
		f := &s.entries[fid]
		if (s.vanilla || f.reward >= rw) && dominates(s.avail(fid), cand) {
			return
		}
	}
	out := front[:0]
	for _, fid := range front {
		f := &s.entries[fid]
		if !((s.vanilla || rw >= f.reward) && dominates(cand, s.avail(fid))) {
			out = append(out, fid)
		} else {
			s.free = append(s.free, fid)
		}
	}
	out = append(out, s.newEntry(cand, rw, cfin, parent, choice, qID))
	if s.maxFront > 0 && len(out) > s.maxFront {
		// Evict the worst entry under the betterRaw ordering.
		worst := 0
		for i := 1; i < len(out); i++ {
			if s.better(out[worst], out[i]) {
				worst = i
			}
		}
		s.free = append(s.free, out[worst])
		out[worst] = out[len(out)-1]
		out = out[:len(out)-1]
	}
	L.ids = out
	L.worst = -1
}

// better reports whether arena entry a beats b under the within-level
// ordering (exact reward descending, overall finish ascending, then
// lexicographic availability).
func (s *dpScratch) better(a, b int32) bool {
	ea, eb := &s.entries[a], &s.entries[b]
	return betterRaw(ea.reward, ea.fin, s.avail(a), eb.reward, eb.fin, s.avail(b))
}

// betterRaw is the within-level ordering over (reward, finish,
// availability) triples, shared by frontier eviction and extraction.
func betterRaw(ar float64, af time.Duration, aa []time.Duration, br float64, bf time.Duration, ba []time.Duration) bool {
	//schemble:floateq-ok deterministic tie-break: exact ties fall through to the next ordering key
	if ar != br {
		return ar > br
	}
	if af != bf {
		return af < bf
	}
	for k := range aa {
		if aa[k] != ba[k] {
			return aa[k] < ba[k]
		}
	}
	return false
}

// edfOrder fills the reused index slice with the EDF permutation of
// queries. The comparator is a total order whenever query IDs are unique
// (every runtime caller guarantees that), so the unstable sort.Sort
// yields the same permutation sort.Slice did.
func (s *dpScratch) edfOrder(queries []QueryInfo) []int {
	idx := s.sorter.idx[:0]
	for i := range queries {
		idx = append(idx, i)
	}
	s.sorter.idx, s.sorter.qs = idx, queries
	sort.Sort(&s.sorter)
	s.sorter.qs = nil
	return s.sorter.idx
}

// edfSorter sorts a query index slice EDF-first without the closure
// allocation of sort.Slice.
type edfSorter struct {
	idx []int
	qs  []QueryInfo
}

func (e *edfSorter) Len() int      { return len(e.idx) }
func (e *edfSorter) Swap(i, j int) { e.idx[i], e.idx[j] = e.idx[j], e.idx[i] }
func (e *edfSorter) Less(i, j int) bool {
	return edfLess(e.qs[e.idx[i]], e.qs[e.idx[j]])
}

// sameRewarder reports whether two Rewarders are the same value, the
// last leg of the reuse fingerprint. Dynamic types must match and be
// comparable before the interfaces are compared, so non-comparable
// implementations (closures over slices, say) never panic — they simply
// never fingerprint as equal.
func sameRewarder(a, b Rewarder) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}

func durEq(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func intEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
