package core

import (
	"time"

	"schemble/internal/ensemble"
)

// DP is the dynamic-programming scheduler of Alg. 1. Rewards are quantized
// in multiples of Delta; one dimension of the table indexes queries in EDF
// order, the other the quantized cumulative reward. Each cell holds the
// Pareto frontier of model-availability vectors reaching that reward (an
// entry is pruned when another entry in the same cell is no later on every
// model). By Theorem 3 the plan's reward is within (1-epsilon) of the local
// optimum for Delta = epsilon/N.
type DP struct {
	// Delta is the reward quantization step; the paper's sweet spot is
	// 0.01 (Exp-4/Exp-8). Defaults to 0.01.
	Delta float64
	// MaxWindow caps how many EDF-first queries one invocation plans
	// (bounding worst-case latency of the scheduler itself under bursts);
	// 0 means 16. Queries beyond the window are left unassigned and picked
	// up by the next invocation.
	MaxWindow int
	// DisablePrune turns dominance pruning off (the abl-prune ablation);
	// frontiers are then truncated at UnprunedCap entries per level to
	// keep the table finite.
	DisablePrune bool
	// MaxFrontier beam-limits each level's Pareto frontier: when more
	// non-dominated entries than this survive, the worst (lowest exact
	// reward, then latest finish) are evicted. Bounds worst-case planning
	// cost with negligible quality loss; 0 means 12, negative disables.
	MaxFrontier int
	// Vanilla disables this implementation's exact-reward refinement
	// inside quantized levels, recovering the paper's Alg. 1 precisely:
	// within a level only availability vectors matter, so coarse Delta
	// genuinely trades accuracy for speed (the Fig. 21 tradeoff). The
	// default (false) keeps the refinement, which makes coarse Delta
	// nearly lossless.
	Vanilla bool
}

// UnprunedCap bounds per-level frontier size when pruning is disabled.
const UnprunedCap = 64

// Name implements Scheduler.
func (d *DP) Name() string { return "dp" }

// dpEntry is one Pareto-frontier member: a flattened replica-slot
// availability vector (see flatten), the exact (unquantized) cumulative
// reward, and the back-pointer chain that reconstructs the plan.
type dpEntry struct {
	avail  []time.Duration
	reward float64
	parent *dpEntry
	choice ensemble.Subset
	qID    int
}

// dominates reports whether a is no later than b on every replica slot.
// Slots within a model's segment are kept sorted, so element-wise
// comparison of the order statistics is a sound dominance test.
func dominates(a, b []time.Duration) bool {
	for k := range a {
		if a[k] > b[k] {
			return false
		}
	}
	return true
}

// insertPareto adds e to the frontier, dropping dominated entries. Within a
// quantized reward level, entry f dominates e when f is no later on every
// model AND has no less exact reward — keeping both "cheaper" and "more
// accurate" ways to reach the level.
func insertPareto(front []*dpEntry, e *dpEntry) []*dpEntry {
	for _, f := range front {
		if f.reward >= e.reward && dominates(f.avail, e.avail) {
			return front // e is dominated; keep frontier as is
		}
	}
	out := front[:0]
	for _, f := range front {
		if !(e.reward >= f.reward && dominates(e.avail, f.avail)) {
			out = append(out, f)
		}
	}
	return append(out, e)
}

// quantize maps a reward to its level, robust to the binary representation
// of Delta (1.0/0.01 must be level 100, not 99).
func quantize(reward, delta float64) int {
	return int(reward/delta + 1e-9)
}

// Schedule implements Scheduler.
func (d *DP) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	delta := d.Delta
	if delta <= 0 {
		delta = 0.01
	}
	window := d.MaxWindow
	if window <= 0 {
		window = 16
	}
	plan := Plan{Assignments: make(map[int]ensemble.Subset, len(queries))}
	if len(queries) == 0 {
		return plan
	}
	order := edfOrder(queries)
	if len(order) > window {
		order = order[:window]
	}
	base, lay := flatten(now, avail)
	subsets := ensemble.AllSubsets(avail.M())

	// frontier[level] holds the Pareto entries attaining quantized reward
	// level after the queries processed so far. Levels index a dense
	// slice (each query adds at most ceil(1/delta) levels), iterated in
	// ascending order, so the DP is fully deterministic.
	perQueryLevels := quantize(1, delta) + 1
	frontier := make([][]*dpEntry, 1, 1+len(order)*perQueryLevels)
	frontier[0] = []*dpEntry{{avail: base}}
	scratch := make([]time.Duration, len(base))

	maxFrontier := d.MaxFrontier
	if maxFrontier == 0 {
		maxFrontier = 12
	}
	// insert adds a candidate (avail in cand, exact reward rw) to the
	// frontier, allocating the availability vector only when the
	// candidate actually survives dominance checks and the beam limit.
	insert := func(front []*dpEntry, cand []time.Duration, rw float64, parent *dpEntry, choice ensemble.Subset, qID int) []*dpEntry {
		if d.DisablePrune {
			if len(front) >= UnprunedCap {
				return front
			}
			na := make([]time.Duration, len(cand))
			copy(na, cand)
			return append(front, &dpEntry{avail: na, reward: rw,
				parent: parent, choice: choice, qID: qID})
		}
		for _, f := range front {
			if (d.Vanilla || f.reward >= rw) && dominates(f.avail, cand) {
				return front
			}
		}
		out := front[:0]
		for _, f := range front {
			if !((d.Vanilla || rw >= f.reward) && dominates(cand, f.avail)) {
				out = append(out, f)
			}
		}
		na := make([]time.Duration, len(cand))
		copy(na, cand)
		out = append(out, &dpEntry{avail: na, reward: rw,
			parent: parent, choice: choice, qID: qID})
		if maxFrontier > 0 && len(out) > maxFrontier {
			// Evict the worst entry under the betterEntry ordering.
			worst := 0
			for i := 1; i < len(out); i++ {
				if betterEntry(out[worst], out[i]) {
					worst = i
				}
			}
			out[worst] = out[len(out)-1]
			out = out[:len(out)-1]
		}
		return out
	}
	for _, qi := range order {
		q := queries[qi]
		next := make([][]*dpEntry, len(frontier)+perQueryLevels)
		for level, entries := range frontier {
			for _, e := range entries {
				// Skip the query: same level, same availability.
				next[level] = insert(next[level], e.avail, e.reward, e, ensemble.Empty, q.ID)
				// Try every subset that meets the deadline.
				for _, s := range subsets {
					done := lay.completion(e.avail, exec, s, scratch)
					if done > q.Deadline {
						continue
					}
					rw := r.Reward(q.Score, s)
					lvl := level + quantize(rw, delta)
					next[lvl] = insert(next[lvl], scratch, e.reward+rw, e, s, q.ID)
				}
			}
		}
		frontier = next
	}

	// Visit the non-empty cell with the largest quantized reward; within
	// it prefer the highest exact reward, then the plan finishing earliest
	// overall (most room for future arrivals), then a lexicographic
	// tie-break for determinism.
	bestLevel := -1
	for level := len(frontier) - 1; level >= 0; level-- {
		if len(frontier[level]) > 0 {
			bestLevel = level
			break
		}
	}
	if bestLevel < 0 {
		return plan
	}
	entries := frontier[bestLevel]
	best := entries[0]
	for _, e := range entries[1:] {
		if d.Vanilla {
			if maxOf(e.avail) < maxOf(best.avail) {
				best = e
			}
			continue
		}
		if betterEntry(e, best) {
			best = e
		}
	}
	for e := best; e != nil && e.parent != nil; e = e.parent {
		plan.Assignments[e.qID] = e.choice
	}
	plan.TotalReward = best.reward
	return plan
}

// betterEntry orders candidates within the winning level: exact reward
// descending, overall finish ascending, then lexicographic availability.
func betterEntry(a, b *dpEntry) bool {
	//schemble:floateq-ok deterministic tie-break: exact ties fall through to the next ordering key
	if a.reward != b.reward {
		return a.reward > b.reward
	}
	am, bm := maxOf(a.avail), maxOf(b.avail)
	if am != bm {
		return am < bm
	}
	for k := range a.avail {
		if a.avail[k] != b.avail[k] {
			return a.avail[k] < b.avail[k]
		}
	}
	return false
}

func maxOf(xs []time.Duration) time.Duration {
	mx := xs[0]
	for _, x := range xs[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}
