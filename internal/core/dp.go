package core

import (
	"time"

	"schemble/internal/ensemble"
)

// DP is the dynamic-programming scheduler of Alg. 1. Rewards are quantized
// in multiples of Delta; one dimension of the table indexes queries in EDF
// order, the other the quantized cumulative reward. Each cell holds the
// Pareto frontier of model-availability vectors reaching that reward (an
// entry is pruned when another entry in the same cell is no later on every
// model). By Theorem 3 the plan's reward is within (1-epsilon) of the local
// optimum for Delta = epsilon/N.
//
// A DP instance owns a reusable arena (see arena.go) so the steady-state
// Schedule path performs no allocations, and it reuses the frontier tables
// of the previous call when the inputs share an unchanged EDF prefix.
// Consequences:
//
//   - A DP instance must NOT be shared by concurrent Schedule calls.
//     Distinct instances are fully independent.
//   - The returned Plan's Assignments map is owned by the scheduler and
//     valid only until the next Schedule call on the same instance;
//     callers that retain plans must copy the map.
//   - The Rewarder must be a pure function of (score, subset): the
//     incremental path assumes the same Rewarder value yields the same
//     rewards it did on the previous call.
//
// Both paths — incremental and from-scratch — produce bit-identical plans
// to ReferenceDP, the retained pre-arena implementation
// (dp_identity_test.go pins this over thousands of seeded instances).
type DP struct {
	// Delta is the reward quantization step; the paper's sweet spot is
	// 0.01 (Exp-4/Exp-8). Defaults to 0.01.
	Delta float64
	// MaxWindow caps how many EDF-first queries one invocation plans
	// (bounding worst-case latency of the scheduler itself under bursts);
	// 0 means 16. Queries beyond the window are left unassigned and picked
	// up by the next invocation.
	MaxWindow int
	// DisablePrune turns dominance pruning off (the abl-prune ablation);
	// frontiers are then truncated at UnprunedCap entries per level to
	// keep the table finite.
	DisablePrune bool
	// MaxFrontier beam-limits each level's Pareto frontier: when more
	// non-dominated entries than this survive, the worst (lowest exact
	// reward, then latest finish) are evicted. Bounds worst-case planning
	// cost with negligible quality loss; 0 means 12, negative disables.
	MaxFrontier int
	// Vanilla disables this implementation's exact-reward refinement
	// inside quantized levels, recovering the paper's Alg. 1 precisely:
	// within a level only availability vectors matter, so coarse Delta
	// genuinely trades accuracy for speed (the Fig. 21 tradeoff). The
	// default (false) keeps the refinement, which makes coarse Delta
	// nearly lossless.
	Vanilla bool

	scr *dpScratch
}

// UnprunedCap bounds per-level frontier size when pruning is disabled.
const UnprunedCap = 64

// Name implements Scheduler.
func (d *DP) Name() string { return "dp" }

// dominates reports whether a is no later than b on every replica slot.
// Slots within a model's segment are kept sorted, so element-wise
// comparison of the order statistics is a sound dominance test.
func dominates(a, b []time.Duration) bool {
	for k := range a {
		if a[k] > b[k] {
			return false
		}
	}
	return true
}

// quantize maps a reward to its level, robust to the binary representation
// of Delta (1.0/0.01 must be level 100, not 99).
func quantize(reward, delta float64) int {
	return int(reward/delta + 1e-9)
}

// Schedule implements Scheduler.
func (d *DP) Schedule(now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	delta := d.Delta
	if delta <= 0 {
		delta = 0.01
	}
	window := d.MaxWindow
	if window <= 0 {
		window = 16
	}
	maxFront := d.MaxFrontier
	if maxFront == 0 {
		maxFront = 12
	}
	if d.scr == nil {
		d.scr = &dpScratch{}
	}
	s := d.scr
	s.delta, s.vanilla, s.noPrune, s.maxFront = delta, d.Vanilla, d.DisablePrune, maxFront

	plan := Plan{Assignments: s.planMap()}
	if len(queries) == 0 {
		return plan // previous arena state stays valid for the next call
	}
	order := s.edfOrder(queries)
	if len(order) > window {
		order = order[:window]
	}
	base, lay := s.fl.flatten(now, avail)
	subsets := s.allSubsets(avail.M())
	// Each query adds at most this many levels. Rewards above 1.0 clamp
	// into the top level (and negative rewards into level 0) rather than
	// indexing out of range; the exact reward is carried unclamped, so
	// extraction and TotalReward remain truthful.
	perQueryLevels := quantize(1, delta) + 1

	// Incremental reuse: when everything but the queue is unchanged, keep
	// the frontier tables of the longest shared EDF-ordered queue prefix
	// and re-solve only from the first divergent query.
	p := 0
	reuse := s.pValid && s.pVanilla == d.Vanilla && s.pNoPrune == d.DisablePrune &&
		s.pMaxFront == maxFront && sameRewarder(s.pRewarder, r) &&
		durEq(s.pExec, exec) && intEq(s.pOff, lay.off) && durEq(s.pBase, base)
	//schemble:floateq-ok reuse fingerprint: prefix reuse requires the exact same quantization step
	reuse = reuse && s.pDelta == delta
	s.pValid = false // invalid while rebuilding (a Rewarder may panic mid-solve)
	if reuse {
		max := len(order)
		if len(s.pOrder) < max {
			max = len(s.pOrder)
		}
		for p < max && queries[order[p]] == s.pOrder[p] {
			p++
		}
		s.invalidateFrom(p + 1)
	} else {
		s.resetArena(len(base))
		s.ensureSteps(1)
		t0 := &s.steps[0]
		s.prepTable(t0, 1)
		root := s.newEntry(base, 0, maxOf(base), -1, ensemble.Empty, 0)
		t0.levels[0].ids = append(t0.levels[0].ids, root)
		s.nsteps = 1
	}

	for i := p; i < len(order); i++ {
		q := queries[order[i]]
		s.ensureSteps(i + 2)
		// Take table pointers only after ensureSteps: growth moves steps.
		prev := &s.steps[i]
		next := &s.steps[i+1]
		s.prepTable(next, len(prev.levels)+perQueryLevels)
		for level := range prev.levels {
			for _, eid := range prev.levels[level].ids {
				// Copy the entry's fields: inserts below may grow the
				// entries slice and would invalidate a pointer.
				e := s.entries[eid]
				// Skip the query: same level, same availability.
				s.insert(next, level, s.avail(eid), e.reward, eid, ensemble.Empty, q.ID)
				// Try every subset that meets the deadline.
				for _, sub := range subsets {
					done := lay.completion(s.avail(eid), exec, sub, s.comp)
					if done > q.Deadline {
						continue
					}
					rw := r.Reward(q.Score, sub)
					lvl := quantize(rw, delta)
					if lvl >= perQueryLevels {
						lvl = perQueryLevels - 1
					} else if lvl < 0 {
						lvl = 0
					}
					s.insert(next, level+lvl, s.comp, e.reward+rw, eid, sub, q.ID)
				}
			}
		}
		s.nsteps = i + 2
	}

	// Visit the non-empty cell with the largest quantized reward; within
	// it prefer the highest exact reward, then the plan finishing earliest
	// overall (most room for future arrivals), then a lexicographic
	// tie-break for determinism.
	final := &s.steps[len(order)]
	bestLevel := -1
	for level := len(final.levels) - 1; level >= 0; level-- {
		if len(final.levels[level].ids) > 0 {
			bestLevel = level
			break
		}
	}
	if bestLevel < 0 {
		return plan
	}
	ids := final.levels[bestLevel].ids
	best := ids[0]
	for _, eid := range ids[1:] {
		if s.vanilla {
			if s.entries[eid].fin < s.entries[best].fin {
				best = eid
			}
			continue
		}
		if s.better(eid, best) {
			best = eid
		}
	}
	for id := best; s.entries[id].parent >= 0; id = s.entries[id].parent {
		plan.Assignments[s.entries[id].qID] = s.entries[id].choice
	}
	plan.TotalReward = s.entries[best].reward

	// Record the fingerprint for the next call's prefix reuse.
	s.pDelta, s.pVanilla, s.pNoPrune, s.pMaxFront = delta, d.Vanilla, d.DisablePrune, maxFront
	s.pRewarder = r
	s.pExec = append(s.pExec[:0], exec...)
	s.pOff = append(s.pOff[:0], lay.off...)
	s.pBase = append(s.pBase[:0], base...)
	s.pOrder = s.pOrder[:0]
	for _, qi := range order {
		s.pOrder = append(s.pOrder, queries[qi])
	}
	s.pValid = true
	return plan
}

func maxOf(xs []time.Duration) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	mx := xs[0]
	for _, x := range xs[1:] {
		if x > mx {
			mx = x
		}
	}
	return mx
}
