package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/rng"
)

// powRewarder is a synthetic utility satisfying diminishing marginal
// utility: U(score, s) = 1 - score^|s| (clamped to score in [0.05, 0.95]).
type powRewarder struct{}

func (powRewarder) Reward(score float64, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	if score < 0.05 {
		score = 0.05
	}
	if score > 0.95 {
		score = 0.95
	}
	u := 1.0
	for i := 0; i < s.Size(); i++ {
		u *= score
	}
	return 1 - u
}

const ms = time.Millisecond

// checkFeasible simulates the plan in EDF order and fails the test if any
// assigned query misses its deadline.
func checkFeasible(t *testing.T, plan Plan, now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration) {
	t.Helper()
	cur, lay := flatten(now, avail)
	scratch := make([]time.Duration, len(cur))
	for _, qi := range edfOrder(queries) {
		q := queries[qi]
		s := plan.Subset(q.ID)
		if s == ensemble.Empty {
			continue
		}
		done := lay.completion(cur, exec, s, scratch)
		if done > q.Deadline {
			t.Fatalf("query %d finishes at %v after deadline %v", q.ID, done, q.Deadline)
		}
		copy(cur, scratch)
	}
}

// rootRewarder satisfies the paper's Assumption 1 including the corollary
// U(s) >= |s|/m used in Theorem 3's proof: U = (|s|/m)^(0.3+0.6*score),
// which is monotone, concave in subset size, and decreasing in difficulty.
type rootRewarder struct{ m int }

func (r rootRewarder) Reward(score float64, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	frac := float64(s.Size()) / float64(r.m)
	return math.Pow(frac, 0.3+0.6*score)
}

func TestDPSingleEasyQueryGetsFullEnsemble(t *testing.T) {
	d := &DP{Delta: 0.001}
	queries := []QueryInfo{{ID: 1, Deadline: 200 * ms, Score: 0.1}}
	avail := []time.Duration{0, 0, 0}
	exec := []time.Duration{20 * ms, 80 * ms, 90 * ms}
	plan := d.Schedule(0, queries, SingleReplica(avail), exec, powRewarder{})
	if got := plan.Subset(1); got != ensemble.Full(3) {
		t.Errorf("uncontended query got %v, want full ensemble", got)
	}
	checkFeasible(t, plan, 0, queries, SingleReplica(avail), exec)
}

func TestDPRespectsDeadline(t *testing.T) {
	d := &DP{Delta: 0.01}
	// Only the fast model can make this deadline.
	queries := []QueryInfo{{ID: 1, Deadline: 30 * ms, Score: 0.2}}
	avail := []time.Duration{0, 0, 0}
	exec := []time.Duration{20 * ms, 80 * ms, 90 * ms}
	plan := d.Schedule(0, queries, SingleReplica(avail), exec, powRewarder{})
	if got := plan.Subset(1); got != ensemble.Single(0) {
		t.Errorf("tight deadline got %v, want {0}", got)
	}
}

func TestDPImpossibleDeadlineSkips(t *testing.T) {
	d := &DP{Delta: 0.01}
	queries := []QueryInfo{{ID: 1, Deadline: 5 * ms, Score: 0.2}}
	plan := d.Schedule(0, queries, SingleReplica([]time.Duration{0}), []time.Duration{20 * ms}, powRewarder{})
	if got := plan.Subset(1); got != ensemble.Empty {
		t.Errorf("infeasible query got %v, want skip", got)
	}
	if plan.TotalReward != 0 {
		t.Errorf("reward = %v, want 0", plan.TotalReward)
	}
}

func TestDPMotivatingExample(t *testing.T) {
	// The paper's intro example: two easy queries, three models. Running
	// the full ensemble on query 1 starves query 2; splitting the models
	// across the two queries serves both.
	d := &DP{Delta: 0.01}
	g := &Greedy{Order: EDF}
	queries := []QueryInfo{
		{ID: 1, Arrival: 0, Deadline: 150 * ms, Score: 0.1},
		{ID: 2, Arrival: 0, Deadline: 150 * ms, Score: 0.1},
	}
	avail := []time.Duration{0, 0, 0}
	exec := []time.Duration{100 * ms, 100 * ms, 100 * ms}

	dpPlan := d.Schedule(0, queries, SingleReplica(avail), exec, powRewarder{})
	gPlan := g.Schedule(0, queries, SingleReplica(avail), exec, powRewarder{})
	if dpPlan.TotalReward <= gPlan.TotalReward {
		t.Errorf("DP reward %v should beat greedy %v on the motivating example",
			dpPlan.TotalReward, gPlan.TotalReward)
	}
	if dpPlan.Subset(1) == ensemble.Empty || dpPlan.Subset(2) == ensemble.Empty {
		t.Errorf("DP should serve both queries: %v / %v", dpPlan.Subset(1), dpPlan.Subset(2))
	}
	checkFeasible(t, dpPlan, 0, queries, SingleReplica(avail), exec)
}

func TestDPNearOptimalOnRandomInstances(t *testing.T) {
	// Theorem 3: with delta = epsilon/(m*N) and a utility satisfying
	// Assumption 1 (hence OPT >= 1/m when anything is processed), the DP
	// is a (1-epsilon) approximation of the local optimum.
	exh := &Exhaustive{}
	const epsilon = 0.1
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(3) // 2..4 queries
		m := 2 + src.Intn(2) // 2..3 models
		queries := make([]QueryInfo, n)
		for i := range queries {
			queries[i] = QueryInfo{
				ID:       i + 1,
				Arrival:  time.Duration(src.Intn(50)) * ms,
				Deadline: time.Duration(60+src.Intn(250)) * ms,
				Score:    src.Float64(),
			}
		}
		avail := make([]time.Duration, m)
		exec := make([]time.Duration, m)
		for k := range exec {
			avail[k] = time.Duration(src.Intn(40)) * ms
			exec[k] = time.Duration(10+src.Intn(90)) * ms
		}
		r := rootRewarder{m: m}
		d := &DP{Delta: epsilon / float64(m*n)}
		dpPlan := d.Schedule(0, queries, SingleReplica(avail), exec, r)
		opt := exh.Schedule(0, queries, SingleReplica(avail), exec, r)
		return dpPlan.TotalReward >= (1-epsilon)*opt.TotalReward-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDPPlansAlwaysFeasible(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 1 + src.Intn(6)
		m := 2 + src.Intn(3)
		queries := make([]QueryInfo, n)
		for i := range queries {
			queries[i] = QueryInfo{
				ID:       i + 1,
				Arrival:  time.Duration(src.Intn(100)) * ms,
				Deadline: time.Duration(30+src.Intn(300)) * ms,
				Score:    src.Float64(),
			}
		}
		avail := make([]time.Duration, m)
		exec := make([]time.Duration, m)
		for k := range exec {
			avail[k] = time.Duration(src.Intn(60)) * ms
			exec[k] = time.Duration(10+src.Intn(80)) * ms
		}
		plan := (&DP{Delta: 0.01}).Schedule(10*ms, queries, SingleReplica(avail), exec, powRewarder{})
		cur, lay := flatten(10*ms, SingleReplica(avail))
		scratch := make([]time.Duration, len(cur))
		for _, qi := range edfOrder(queries) {
			q := queries[qi]
			s := plan.Subset(q.ID)
			if s == ensemble.Empty {
				continue
			}
			done := lay.completion(cur, exec, s, scratch)
			if done > q.Deadline {
				return false
			}
			copy(cur, scratch)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGreedyOrders(t *testing.T) {
	// Two queries where FIFO and EDF disagree: the later arrival has the
	// earlier deadline.
	queries := []QueryInfo{
		{ID: 1, Arrival: 0, Deadline: 300 * ms, Score: 0.5},
		{ID: 2, Arrival: 10 * ms, Deadline: 100 * ms, Score: 0.5},
	}
	avail := []time.Duration{0}
	exec := []time.Duration{70 * ms}

	edf := (&Greedy{Order: EDF}).Schedule(20*ms, queries, SingleReplica(avail), exec, powRewarder{})
	if edf.Subset(2) == ensemble.Empty {
		t.Error("EDF should serve the urgent query")
	}
	if edf.Subset(1) == ensemble.Empty {
		t.Error("EDF has room for both queries")
	}
	fifo := (&Greedy{Order: FIFO}).Schedule(20*ms, queries, SingleReplica(avail), exec, powRewarder{})
	if fifo.Subset(1) == ensemble.Empty {
		t.Error("FIFO should serve the first arrival")
	}
	if fifo.Subset(2) != ensemble.Empty {
		t.Error("FIFO serving query 1 first must starve the urgent query 2")
	}
	sjf := (&Greedy{Order: SJF})
	if sjf.Name() != "greedy+sjf" {
		t.Errorf("Name = %q", sjf.Name())
	}
}

func TestGreedySJFOrder(t *testing.T) {
	// SJF processes the lowest-score query first.
	queries := []QueryInfo{
		{ID: 1, Arrival: 0, Deadline: 100 * ms, Score: 0.9},
		{ID: 2, Arrival: 0, Deadline: 100 * ms, Score: 0.1},
	}
	avail := []time.Duration{0}
	exec := []time.Duration{80 * ms}
	plan := (&Greedy{Order: SJF}).Schedule(0, queries, SingleReplica(avail), exec, powRewarder{})
	if plan.Subset(2) == ensemble.Empty {
		t.Error("SJF should serve the easy query first")
	}
	if plan.Subset(1) != ensemble.Empty {
		t.Error("only one query fits; the hard one should be skipped")
	}
}

// TestParetoPruning exercises dpScratch.insert, the insertion method
// DP.Schedule actually runs (a long-dead standalone copy used to be
// tested instead).
func TestParetoPruning(t *testing.T) {
	a := []time.Duration{10, 10}
	b := []time.Duration{20, 20}
	c := []time.Duration{5, 30}
	newLevel := func(maxFront int, vanilla bool) (*dpScratch, *dpTable) {
		s := &dpScratch{maxFront: maxFront, vanilla: vanilla}
		s.resetArena(2)
		s.ensureSteps(1)
		tab := &s.steps[0]
		s.prepTable(tab, 1)
		return s, tab
	}
	avails := func(s *dpScratch, tab *dpTable) [][]time.Duration {
		var out [][]time.Duration
		for _, id := range tab.levels[0].ids {
			out = append(out, s.avail(id))
		}
		return out
	}

	s, tab := newLevel(-1, false)
	s.insert(tab, 0, b, 0.5, -1, ensemble.Empty, 0)
	s.insert(tab, 0, a, 0.5, -1, ensemble.Empty, 0) // a dominates b
	if got := avails(s, tab); len(got) != 1 || !dominates(got[0], a) || !dominates(a, got[0]) {
		t.Fatalf("dominated entry not pruned: %v", got)
	}
	if len(s.entries) != 1 {
		t.Fatalf("pruned entry not recycled for the survivor: %d arena entries", len(s.entries))
	}
	s.insert(tab, 0, c, 0.5, -1, ensemble.Empty, 0) // incomparable with a
	if got := len(tab.levels[0].ids); got != 2 {
		t.Fatalf("incomparable entry dropped: %d entries", got)
	}
	s.insert(tab, 0, b, 0.5, -1, ensemble.Empty, 0) // dominated by a
	if got := len(tab.levels[0].ids); got != 2 {
		t.Fatalf("dominated insert accepted: %d entries", got)
	}
	// Exact-reward refinement: b's vector is dominated by a's, but a
	// strictly higher exact reward keeps it as a "more accurate" way to
	// reach the level.
	s.insert(tab, 0, b, 0.9, -1, ensemble.Empty, 0)
	if got := len(tab.levels[0].ids); got != 3 {
		t.Fatalf("higher-reward dominated entry dropped: %d entries", got)
	}
	// ...and a lower exact reward does not.
	s.insert(tab, 0, a, 0.4, -1, ensemble.Empty, 0)
	if got := len(tab.levels[0].ids); got != 3 {
		t.Fatalf("lower-reward dominated insert accepted: %d entries", got)
	}

	// Vanilla ignores rewards: availability dominance alone prunes.
	s, tab = newLevel(-1, true)
	s.insert(tab, 0, b, 0.9, -1, ensemble.Empty, 0)
	s.insert(tab, 0, a, 0.1, -1, ensemble.Empty, 0)
	if got := avails(s, tab); len(got) != 1 || !dominates(got[0], a) {
		t.Fatalf("vanilla dominance must ignore rewards: %v", got)
	}

	// Beam eviction drops the worst (lowest-reward) incomparable entry.
	s, tab = newLevel(2, false)
	s.insert(tab, 0, []time.Duration{0, 30}, 0.9, -1, ensemble.Empty, 0)
	s.insert(tab, 0, []time.Duration{10, 20}, 0.5, -1, ensemble.Empty, 0)
	s.insert(tab, 0, []time.Duration{20, 10}, 0.7, -1, ensemble.Empty, 0)
	ids := tab.levels[0].ids
	if len(ids) != 2 {
		t.Fatalf("beam limit not enforced: %d entries", len(ids))
	}
	for _, id := range ids {
		if s.entries[id].reward == 0.5 {
			t.Fatal("beam eviction kept the worst entry")
		}
	}

	if !dominates(a, b) || dominates(b, a) || dominates(a, c) {
		t.Error("dominates() misbehaves")
	}
}

func TestEmptyQueryList(t *testing.T) {
	for _, s := range []Scheduler{&DP{}, &Greedy{Order: EDF}, &Exhaustive{}} {
		plan := s.Schedule(0, nil, SingleReplica([]time.Duration{0}), []time.Duration{10 * ms}, powRewarder{})
		if len(plan.Assignments) != 0 || plan.TotalReward != 0 {
			t.Errorf("%s: non-empty plan for no queries", s.Name())
		}
	}
}

func TestDPWindowCap(t *testing.T) {
	d := &DP{Delta: 0.05, MaxWindow: 2}
	queries := make([]QueryInfo, 5)
	for i := range queries {
		queries[i] = QueryInfo{ID: i + 1, Deadline: 500 * ms, Score: 0.3}
	}
	plan := d.Schedule(0, queries, SingleReplica([]time.Duration{0, 0}), []time.Duration{50 * ms, 50 * ms}, powRewarder{})
	assigned := 0
	for _, s := range plan.Assignments {
		if s != ensemble.Empty {
			assigned++
		}
	}
	if assigned > 2 {
		t.Errorf("window cap violated: %d assignments", assigned)
	}
}

func TestDPBusyModelsDelayStart(t *testing.T) {
	// Model 0 is busy until t=90; a 100ms deadline can only be met by
	// model 1.
	d := &DP{Delta: 0.01}
	queries := []QueryInfo{{ID: 1, Deadline: 100 * ms, Score: 0.3}}
	avail := []time.Duration{90 * ms, 0}
	exec := []time.Duration{20 * ms, 50 * ms}
	plan := d.Schedule(0, queries, SingleReplica(avail), exec, powRewarder{})
	if got := plan.Subset(1); got != ensemble.Single(1) {
		t.Errorf("got %v, want {1}", got)
	}
}

func TestEDFOrderIsStable(t *testing.T) {
	queries := []QueryInfo{
		{ID: 3, Deadline: 100 * ms, Arrival: 5 * ms},
		{ID: 1, Deadline: 100 * ms, Arrival: 5 * ms},
		{ID: 2, Deadline: 50 * ms},
	}
	order := edfOrder(queries)
	if queries[order[0]].ID != 2 {
		t.Error("earliest deadline not first")
	}
	if queries[order[1]].ID != 1 || queries[order[2]].ID != 3 {
		t.Error("ties not broken by ID")
	}
}

func TestExhaustiveGuard(t *testing.T) {
	e := &Exhaustive{MaxQueries: 2}
	queries := make([]QueryInfo, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic over MaxQueries")
		}
	}()
	e.Schedule(0, queries, SingleReplica([]time.Duration{0}), []time.Duration{ms}, powRewarder{})
}

func TestVanillaMatchesPaperTradeoff(t *testing.T) {
	// Vanilla Alg. 1 at coarse delta must pick strictly worse plans than
	// at fine delta on instances whose reward differences fall below the
	// coarse step; the refined (default) DP is immune.
	r := rootRewarder{m: 3}
	queries := []QueryInfo{
		{ID: 1, Deadline: 400 * ms, Score: 0.3},
		{ID: 2, Deadline: 400 * ms, Score: 0.3},
	}
	avail := []time.Duration{0, 0, 0}
	exec := []time.Duration{50 * ms, 60 * ms, 70 * ms}
	fine := (&DP{Delta: 0.001, Vanilla: true}).Schedule(0, queries, SingleReplica(avail), exec, r)
	coarse := (&DP{Delta: 0.25, Vanilla: true}).Schedule(0, queries, SingleReplica(avail), exec, r)
	refined := (&DP{Delta: 0.25}).Schedule(0, queries, SingleReplica(avail), exec, r)
	if coarse.TotalReward > fine.TotalReward+1e-9 {
		t.Errorf("coarse vanilla (%v) cannot beat fine vanilla (%v)", coarse.TotalReward, fine.TotalReward)
	}
	if refined.TotalReward < coarse.TotalReward-1e-9 {
		t.Errorf("refined coarse DP (%v) should not trail vanilla coarse (%v)",
			refined.TotalReward, coarse.TotalReward)
	}
}

// TestTheorems1And2EDFFeasibility property-checks Theorems 1+2: for any
// fixed task assignment, if SOME arbitrary per-model processing order
// meets every query's deadline, then the consistent EDF order also meets
// every deadline (Theorem 1 licenses restricting to consistent orders;
// Theorem 2 says EDF is the optimal consistent order when feasible).
func TestTheorems1And2EDFFeasibility(t *testing.T) {
	checked := 0
	f := func(seed uint64) bool {
		src := rng.New(seed)
		n := 2 + src.Intn(4)
		m := 2 + src.Intn(2)
		queries := make([]QueryInfo, n)
		for i := range queries {
			queries[i] = QueryInfo{
				ID:       i,
				Deadline: time.Duration(120+src.Intn(400)) * ms,
				Score:    src.Float64(),
			}
		}
		exec := make([]time.Duration, m)
		for k := range exec {
			exec[k] = time.Duration(20+src.Intn(60)) * ms
		}
		subsets := make([]ensemble.Subset, n)
		for i := range subsets {
			subsets[i] = ensemble.Subset(1 + src.Intn(int(ensemble.Full(m))))
		}
		completionsUnder := func(orderOf func(k int, tasks []int)) []time.Duration {
			done := make([]time.Duration, n)
			for k := 0; k < m; k++ {
				var tasks []int
				for i, sub := range subsets {
					if sub.Contains(k) {
						tasks = append(tasks, i)
					}
				}
				orderOf(k, tasks)
				var busy time.Duration
				for _, i := range tasks {
					busy += exec[k]
					if busy > done[i] {
						done[i] = busy
					}
				}
			}
			return done
		}
		meets := func(done []time.Duration) bool {
			for i, d := range done {
				if d > queries[i].Deadline {
					return false
				}
			}
			return true
		}
		arbitrary := completionsUnder(func(k int, tasks []int) {
			src.Shuffle(len(tasks), func(a, b int) { tasks[a], tasks[b] = tasks[b], tasks[a] })
		})
		if !meets(arbitrary) {
			return true // vacuous: no feasible witness
		}
		checked++
		order := edfOrder(queries)
		pos := make([]int, n)
		for p, qi := range order {
			pos[qi] = p
		}
		edf := completionsUnder(func(k int, tasks []int) {
			sort.Slice(tasks, func(a, b int) bool { return pos[tasks[a]] < pos[tasks[b]] })
		})
		return meets(edf)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	if checked < 20 {
		t.Errorf("only %d non-vacuous cases; weaken the instance generator", checked)
	}
}
