package core

import (
	"math"
	"testing"
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/rng"
)

// propertyCases is the number of deterministic seeded instances each
// property below is checked against. The generator is seed-indexed (not
// testing/quick), so a failure reproduces exactly by seed.
const propertyCases = 1000

// instance is one randomly generated scheduling subproblem, replica pools
// included.
type instance struct {
	now     time.Duration
	queries []QueryInfo
	cap     Capacity
	exec    []time.Duration
	m       int
}

// genInstance draws a small random instance: 2–3 models with 1–3 replicas
// each, 1–5 queries, availabilities and deadlines in the regime the
// serving runtime actually produces (some replicas idle, some backlogged,
// some deadlines tight enough to force skips).
func genInstance(seed uint64) instance {
	src := rng.New(seed)
	m := 2 + src.Intn(2)
	n := 1 + src.Intn(5)
	inst := instance{
		now:  time.Duration(src.Intn(20)) * ms,
		m:    m,
		cap:  make(Capacity, m),
		exec: make([]time.Duration, m),
	}
	for k := 0; k < m; k++ {
		slots := make([]time.Duration, 1+src.Intn(3))
		for r := range slots {
			slots[r] = time.Duration(src.Intn(60)) * ms
		}
		inst.cap[k] = slots
		inst.exec[k] = time.Duration(10+src.Intn(80)) * ms
	}
	inst.queries = make([]QueryInfo, n)
	for i := range inst.queries {
		inst.queries[i] = QueryInfo{
			ID:       i + 1,
			Arrival:  time.Duration(src.Intn(50)) * ms,
			Deadline: time.Duration(40+src.Intn(280)) * ms,
			Score:    src.Float64(),
		}
	}
	return inst
}

// replayFeasible re-simulates a plan in EDF order against the instance's
// replica capacity and reports whether every assigned query meets its
// deadline; it also cross-checks that the plan's claimed TotalReward is
// the exact sum of its assignments' rewards.
func replayFeasible(t *testing.T, tag string, seed uint64, inst instance, plan Plan, r Rewarder) {
	t.Helper()
	cur, lay := flatten(inst.now, inst.cap)
	scratch := make([]time.Duration, len(cur))
	sum := 0.0
	for _, qi := range edfOrder(inst.queries) {
		q := inst.queries[qi]
		s := plan.Subset(q.ID)
		if s == ensemble.Empty {
			continue
		}
		done := lay.completion(cur, inst.exec, s, scratch)
		if done > q.Deadline {
			t.Fatalf("seed %d %s: query %d finishes %v after deadline %v",
				seed, tag, q.ID, done, q.Deadline)
		}
		copy(cur, scratch)
		sum += r.Reward(q.Score, s)
	}
	if math.Abs(sum-plan.TotalReward) > 1e-9 {
		t.Fatalf("seed %d %s: TotalReward %v but assignments sum to %v",
			seed, tag, plan.TotalReward, sum)
	}
}

// propertySchedulers builds the scheduler set every instance is run
// through. The DP variant disables the beam limit so Theorem 3's
// approximation bound applies without heuristic slack.
func propertySchedulers(inst instance, epsilon float64) (*DP, []*Greedy) {
	n := len(inst.queries)
	d := &DP{Delta: epsilon / float64(inst.m*n), MaxFrontier: -1}
	gs := []*Greedy{{Order: EDF}, {Order: FIFO}, {Order: SJF}}
	return d, gs
}

// TestPropertyDPBeatsGreedy: the DP plan's reward is never worse than any
// greedy order's, up to Theorem 3's quantization loss — greedy is a
// feasible solution of the same subproblem, so (1-epsilon)-optimality of
// the DP lower-bounds it against every greedy order at once.
func TestPropertyDPBeatsGreedy(t *testing.T) {
	const epsilon = 0.05
	for seed := uint64(0); seed < propertyCases; seed++ {
		inst := genInstance(seed)
		r := rootRewarder{m: inst.m}
		d, gs := propertySchedulers(inst, epsilon)
		dp := d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
		for _, g := range gs {
			gp := g.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
			if dp.TotalReward < (1-epsilon)*gp.TotalReward-1e-9 {
				t.Fatalf("seed %d: dp reward %v < (1-eps) x %s reward %v",
					seed, dp.TotalReward, g.Name(), gp.TotalReward)
			}
		}
	}
}

// TestPropertyPlansFeasible: every scheduler's plan — DP, all greedy
// orders, and the exhaustive optimum — replays feasibly in EDF order on
// replica capacity, and reports its exact achieved reward.
func TestPropertyPlansFeasible(t *testing.T) {
	exh := &Exhaustive{}
	for seed := uint64(0); seed < propertyCases; seed++ {
		inst := genInstance(seed)
		r := rootRewarder{m: inst.m}
		d, gs := propertySchedulers(inst, 0.05)
		replayFeasible(t, "dp", seed, inst,
			d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r), r)
		for _, g := range gs {
			replayFeasible(t, g.Name(), seed, inst,
				g.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r), r)
		}
		replayFeasible(t, "exhaustive", seed, inst,
			exh.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r), r)
	}
}

// TestPropertyBlockedModelsExcluded: models whose every replica is pushed
// past any feasible deadline (how the runtime encodes open breakers and
// crash windows) never appear in any scheduler's assignments.
func TestPropertyBlockedModelsExcluded(t *testing.T) {
	for seed := uint64(0); seed < propertyCases; seed++ {
		inst := genInstance(seed)
		src := rng.New(seed ^ 0x9e3779b97f4a7c15)
		blocked := ensemble.Empty
		for k := 0; k < inst.m; k++ {
			if src.Bool(0.4) {
				blocked = blocked.With(k)
			}
		}
		if blocked == ensemble.Empty {
			blocked = ensemble.Single(src.Intn(inst.m))
		}
		for _, k := range blocked.Models() {
			for i := range inst.cap[k] {
				inst.cap[k][i] = inst.now + 10*time.Minute
			}
		}
		r := rootRewarder{m: inst.m}
		d, gs := propertySchedulers(inst, 0.05)
		check := func(tag string, plan Plan) {
			for _, q := range inst.queries {
				if s := plan.Subset(q.ID); s&blocked != ensemble.Empty {
					t.Fatalf("seed %d %s: query %d assigned blocked models %v",
						seed, tag, q.ID, (s & blocked).Models())
				}
			}
		}
		check("dp", d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r))
		for _, g := range gs {
			check(g.Name(), g.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r))
		}
	}
}

// addReplica returns a copy of cap with one extra replica, idle at now,
// appended to model k's pool.
func addReplica(c Capacity, k int, now time.Duration) Capacity {
	out := make(Capacity, len(c))
	for i, slots := range c {
		out[i] = append([]time.Duration(nil), slots...)
	}
	out[k] = append(out[k], now)
	return out
}

// TestPropertyReplicaMonotonicity: growing any model's pool by one idle
// replica never decreases achievable reward. The exhaustive optimum is
// strictly monotone (the old feasible set embeds in the new one); the DP
// is monotone up to its quantization loss.
func TestPropertyReplicaMonotonicity(t *testing.T) {
	const epsilon = 0.05
	exh := &Exhaustive{}
	for seed := uint64(0); seed < propertyCases; seed++ {
		inst := genInstance(seed)
		r := rootRewarder{m: inst.m}
		k := int(seed) % inst.m
		grown := addReplica(inst.cap, k, inst.now)

		baseReward := exh.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r).TotalReward
		more := exh.Schedule(inst.now, inst.queries, grown, inst.exec, r)
		if more.TotalReward < baseReward-1e-9 {
			t.Fatalf("seed %d: exhaustive reward dropped %v -> %v after adding a replica to model %d",
				seed, baseReward, more.TotalReward, k)
		}

		d, _ := propertySchedulers(inst, epsilon)
		dBaseReward := d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r).TotalReward
		dMore := d.Schedule(inst.now, inst.queries, grown, inst.exec, r)
		if dMore.TotalReward < (1-epsilon)*dBaseReward-1e-9 {
			t.Fatalf("seed %d: dp reward dropped %v -> %v (beyond quantization) after adding a replica to model %d",
				seed, dBaseReward, dMore.TotalReward, k)
		}
	}
}

// TestPropertySingleReplicaCapacityDegenerates: flatten/completion on a
// one-replica-per-model Capacity behave exactly like the scalar
// availability math the schedulers used before pools — the compatibility
// contract the serve runtime's bit-identical twin test leans on, checked
// here at the unit level.
func TestPropertySingleReplicaCapacityDegenerates(t *testing.T) {
	for seed := uint64(0); seed < propertyCases; seed++ {
		src := rng.New(seed)
		m := 1 + src.Intn(4)
		now := time.Duration(src.Intn(30)) * ms
		avail := make([]time.Duration, m)
		exec := make([]time.Duration, m)
		for k := range avail {
			avail[k] = time.Duration(src.Intn(80)) * ms
			exec[k] = time.Duration(5+src.Intn(60)) * ms
		}
		flat, lay := flatten(now, SingleReplica(avail))
		if len(flat) != m {
			t.Fatalf("seed %d: flat has %d slots for %d single-replica models", seed, len(flat), m)
		}
		for k, a := range avail {
			want := a
			if want < now {
				want = now
			}
			if flat[k] != want {
				t.Fatalf("seed %d: slot %d = %v, want clamp(%v)", seed, k, flat[k], a)
			}
		}
		var s ensemble.Subset
		for k := 0; k < m; k++ {
			if src.Bool(0.6) {
				s = s.With(k)
			}
		}
		if s == ensemble.Empty {
			s = ensemble.Single(src.Intn(m))
		}
		dst := make([]time.Duration, m)
		done := lay.completion(flat, exec, s, dst)
		var want time.Duration
		for k := 0; k < m; k++ {
			if !s.Contains(k) {
				if dst[k] != flat[k] {
					t.Fatalf("seed %d: untouched model %d moved %v -> %v", seed, k, flat[k], dst[k])
				}
				continue
			}
			fin := flat[k] + exec[k]
			if dst[k] != fin {
				t.Fatalf("seed %d: model %d finish %v, want %v", seed, k, dst[k], fin)
			}
			if fin > want {
				want = fin
			}
		}
		if done != want {
			t.Fatalf("seed %d: completion %v, want %v", seed, done, want)
		}
	}
}
