package core

import (
	"sort"
	"testing"
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/rng"
)

// This file pins the arena-based DP (and scratch-based Greedy) to the
// frozen pre-arena implementations: every shortcut the hot path takes —
// frontier prefix reuse, entry recycling, the Pareto short-circuit, the
// closure-free sorts — must leave the produced plans bit-identical.

// samePlan requires exact equality: bitwise TotalReward and identical
// Assignments maps (including explicit Empty entries).
func samePlan(t *testing.T, tag string, got, want Plan) {
	t.Helper()
	if got.TotalReward != want.TotalReward {
		t.Fatalf("%s: TotalReward %v != reference %v", tag, got.TotalReward, want.TotalReward)
	}
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("%s: %d assignments != reference %d (%v vs %v)",
			tag, len(got.Assignments), len(want.Assignments), got.Assignments, want.Assignments)
	}
	for id, s := range want.Assignments {
		gs, ok := got.Assignments[id]
		if !ok || gs != s {
			t.Fatalf("%s: query %d assigned %v, reference %v", tag, id, gs, s)
		}
	}
}

// dpIdentityConfigs are the configuration corners the identity property
// is checked under.
var dpIdentityConfigs = []struct {
	name string
	mk   func() (*DP, *ReferenceDP)
}{
	{"default", func() (*DP, *ReferenceDP) {
		return &DP{Delta: 0.01}, &ReferenceDP{Delta: 0.01}
	}},
	{"vanilla", func() (*DP, *ReferenceDP) {
		return &DP{Delta: 0.01, Vanilla: true}, &ReferenceDP{Delta: 0.01, Vanilla: true}
	}},
	{"noprune", func() (*DP, *ReferenceDP) {
		return &DP{Delta: 0.05, DisablePrune: true}, &ReferenceDP{Delta: 0.05, DisablePrune: true}
	}},
	{"unbounded-frontier", func() (*DP, *ReferenceDP) {
		return &DP{Delta: 0.02, MaxFrontier: -1}, &ReferenceDP{Delta: 0.02, MaxFrontier: -1}
	}},
	{"coarse", func() (*DP, *ReferenceDP) {
		return &DP{Delta: 0.25, MaxWindow: 8}, &ReferenceDP{Delta: 0.25, MaxWindow: 8}
	}},
	{"fine-tight-beam", func() (*DP, *ReferenceDP) {
		return &DP{Delta: 0.002, MaxFrontier: 3}, &ReferenceDP{Delta: 0.002, MaxFrontier: 3}
	}},
}

// TestDPBitIdenticalToReference replays the seeded property instances
// through the arena DP and the frozen reference under every
// configuration corner. One DP instance is reused across all seeds per
// configuration, so the arena-reset path between unrelated instances is
// exercised as hard as the solver itself.
func TestDPBitIdenticalToReference(t *testing.T) {
	for _, cfg := range dpIdentityConfigs {
		d, ref := cfg.mk()
		for seed := uint64(0); seed < propertyCases; seed++ {
			inst := genInstance(seed)
			r := rootRewarder{m: inst.m}
			got := d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
			want := ref.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
			samePlan(t, cfg.name+"/seed", got, want)
		}
	}
}

// TestDPIncrementalReuseIdentity drives a single DP instance through an
// evolving queue — repeats, tail arrivals, head departures, clock
// advances, capacity perturbations — and requires every decision to
// match a from-scratch reference solve. This is the property that
// licenses prefix reuse of the frontier tables.
func TestDPIncrementalReuseIdentity(t *testing.T) {
	const seeds = 300
	for seed := uint64(0); seed < seeds; seed++ {
		src := rng.New(seed ^ 0x5bf03635)
		inst := genInstance(seed)
		d := &DP{Delta: 0.01}
		ref := &ReferenceDP{Delta: 0.01}
		r := rootRewarder{m: inst.m}
		nextID := 1000
		for step := 0; step < 12; step++ {
			got := d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r).Clone()
			want := ref.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
			samePlan(t, "incremental", got, want)
			switch src.Intn(5) {
			case 0:
				// Identical repeat: the maximal-reuse path that decides
				// without rebuilding any table.
			case 1:
				// Tail arrival: extends the shared EDF prefix by one.
				var last time.Duration
				for _, q := range inst.queries {
					if q.Deadline > last {
						last = q.Deadline
					}
				}
				inst.queries = append(inst.queries, QueryInfo{
					ID:       nextID,
					Arrival:  inst.now,
					Deadline: last + time.Duration(1+src.Intn(40))*ms,
					Score:    src.Float64(),
				})
				nextID++
			case 2:
				// Head departure: invalidates every table.
				if len(inst.queries) > 1 {
					head := 0
					for i, q := range inst.queries {
						if edfLess(q, inst.queries[head]) {
							head = i
						}
					}
					inst.queries = append(inst.queries[:head], inst.queries[head+1:]...)
				}
			case 3:
				// Clock advance: changes the flattened base vector.
				inst.now += time.Duration(src.Intn(8)) * ms
			case 4:
				// Capacity perturbation: one replica picks up work.
				k := src.Intn(len(inst.cap))
				if len(inst.cap[k]) > 0 {
					inst.cap[k][src.Intn(len(inst.cap[k]))] += time.Duration(1+src.Intn(30)) * ms
				}
			}
		}
	}
}

// greedyReferenceSchedule is the pre-scratch Greedy.Schedule, kept
// verbatim as the oracle for the scratch-based rewrite.
func greedyReferenceSchedule(order Order, now time.Duration, queries []QueryInfo, avail Capacity, exec []time.Duration, r Rewarder) Plan {
	plan := Plan{Assignments: make(map[int]ensemble.Subset, len(queries))}
	if len(queries) == 0 {
		return plan
	}
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		qa, qb := queries[idx[a]], queries[idx[b]]
		switch order {
		case FIFO:
			if qa.Arrival != qb.Arrival {
				return qa.Arrival < qb.Arrival
			}
		case SJF:
			if qa.Score != qb.Score {
				return qa.Score < qb.Score
			}
		default: // EDF
			if qa.Deadline != qb.Deadline {
				return qa.Deadline < qb.Deadline
			}
		}
		return qa.ID < qb.ID
	})
	cur, lay := flatten(now, avail)
	scratch := make([]time.Duration, len(cur))
	subsets := ensemble.AllSubsets(avail.M())
	for _, qi := range idx {
		q := queries[qi]
		best := ensemble.Empty
		bestR := 0.0
		var bestAvail []time.Duration
		for _, s := range subsets {
			done := lay.completion(cur, exec, s, scratch)
			if done > q.Deadline {
				continue
			}
			rw := r.Reward(q.Score, s)
			if rw > bestR || (rw == bestR && best != ensemble.Empty && s.Size() < best.Size()) {
				best, bestR = s, rw
				bestAvail = append(bestAvail[:0], scratch...)
			}
		}
		plan.Assignments[q.ID] = best
		if best != ensemble.Empty {
			copy(cur, bestAvail)
			plan.TotalReward += bestR
		}
	}
	return plan
}

// TestGreedyBitIdenticalToReference pins the scratch-based Greedy to the
// frozen allocating implementation, one instance reused across seeds,
// all three orders.
func TestGreedyBitIdenticalToReference(t *testing.T) {
	for _, order := range []Order{EDF, FIFO, SJF} {
		g := &Greedy{Order: order}
		for seed := uint64(0); seed < propertyCases; seed++ {
			inst := genInstance(seed)
			r := rootRewarder{m: inst.m}
			got := g.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
			want := greedyReferenceSchedule(order, inst.now, inst.queries, inst.cap, inst.exec, r)
			samePlan(t, "greedy+"+order.String(), got, want)
		}
	}
}

// TestDPScheduleSteadyStateZeroAlloc is the tentpole's regression guard:
// after warmup, Schedule must not allocate — neither on the
// maximal-reuse path (identical consecutive inputs) nor when alternating
// between two instances that force full re-solves.
func TestDPScheduleSteadyStateZeroAlloc(t *testing.T) {
	instA := genInstance(7)
	instB := genInstance(8)
	for seed := uint64(9); instB.m != instA.m; seed++ {
		// The subset enumeration is cached per model count; alternate
		// between same-m instances so the cache is exercised, not thrashed.
		instB = genInstance(seed)
	}
	var rA Rewarder = rootRewarder{m: instA.m}
	var rB Rewarder = rootRewarder{m: instB.m}

	d := &DP{}
	for i := 0; i < 3; i++ {
		d.Schedule(instA.now, instA.queries, instA.cap, instA.exec, rA)
	}
	if n := testing.AllocsPerRun(200, func() {
		d.Schedule(instA.now, instA.queries, instA.cap, instA.exec, rA)
	}); n != 0 {
		t.Errorf("DP.Schedule steady state (full reuse): %v allocs/op, want 0", n)
	}

	d2 := &DP{}
	for i := 0; i < 3; i++ {
		d2.Schedule(instA.now, instA.queries, instA.cap, instA.exec, rA)
		d2.Schedule(instB.now, instB.queries, instB.cap, instB.exec, rB)
	}
	if n := testing.AllocsPerRun(200, func() {
		d2.Schedule(instA.now, instA.queries, instA.cap, instA.exec, rA)
		d2.Schedule(instB.now, instB.queries, instB.cap, instB.exec, rB)
	}); n != 0 {
		t.Errorf("DP.Schedule steady state (alternating re-solve): %v allocs/op, want 0", n)
	}

	g := &Greedy{Order: EDF}
	for i := 0; i < 3; i++ {
		g.Schedule(instA.now, instA.queries, instA.cap, instA.exec, rA)
		g.Schedule(instB.now, instB.queries, instB.cap, instB.exec, rB)
	}
	if n := testing.AllocsPerRun(200, func() {
		g.Schedule(instA.now, instA.queries, instA.cap, instA.exec, rA)
		g.Schedule(instB.now, instB.queries, instB.cap, instB.exec, rB)
	}); n != 0 {
		t.Errorf("Greedy.Schedule steady state: %v allocs/op, want 0", n)
	}

	// The runtimes refresh their retained exec slice through an ExecSource
	// before every planning round; the refresh + solve round trip must stay
	// allocation-free too (the adapt engine's ExecInto carries the same
	// contract and has its own zero-alloc test).
	var src ExecSource = StaticExec(instA.exec)
	exec := make([]time.Duration, len(instA.exec))
	d3 := &DP{}
	for i := 0; i < 3; i++ {
		src.ExecInto(exec)
		d3.Schedule(instA.now, instA.queries, instA.cap, exec, rA)
	}
	if n := testing.AllocsPerRun(200, func() {
		src.ExecInto(exec)
		d3.Schedule(instA.now, instA.queries, instA.cap, exec, rA)
	}); n != 0 {
		t.Errorf("ExecSource refresh + DP.Schedule steady state: %v allocs/op, want 0", n)
	}
}

// TestStaticExec pins the frozen-profile ExecSource semantics: a copy
// into the destination, truncated to the shorter of the two, leaving any
// extra destination entries untouched.
func TestStaticExec(t *testing.T) {
	src := StaticExec{time.Millisecond, 2 * time.Millisecond}
	exec := []time.Duration{9, 9, 9}
	src.ExecInto(exec)
	if exec[0] != time.Millisecond || exec[1] != 2*time.Millisecond {
		t.Fatalf("ExecInto wrote %v, want the source values", exec[:2])
	}
	if exec[2] != 9 {
		t.Fatalf("ExecInto touched exec[2] = %v, want untouched 9", exec[2])
	}
	src.ExecInto(exec[:1])
	if exec[0] != time.Millisecond {
		t.Fatal("short destination copy failed")
	}
}

// scaledRewarder returns rewards outside [0,1]: scale 2.5 exceeds the
// level table a reward ≤ 1 sizes, scale -0.5 goes negative.
type scaledRewarder struct {
	scale float64
	m     int
}

func (r scaledRewarder) Reward(score float64, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	return r.scale * float64(s.Size()) / float64(r.m)
}

// TestDPOutOfRangeRewarder is the regression test for the historical
// index-out-of-range panic: a Rewarder exceeding 1.0 indexed past the
// quantized level table (ReferenceDP preserves that panic; see its doc).
// DP clamps the quantized level while carrying the exact reward, so the
// plan stays feasible and TotalReward truthful.
func TestDPOutOfRangeRewarder(t *testing.T) {
	for _, scale := range []float64{2.5, -0.5} {
		for seed := uint64(0); seed < 50; seed++ {
			inst := genInstance(seed)
			r := scaledRewarder{scale: scale, m: inst.m}
			d := &DP{Delta: 0.01}
			plan := d.Schedule(inst.now, inst.queries, inst.cap, inst.exec, r)
			replayFeasible(t, "dp/out-of-range", seed, inst, plan, r)
			if scale < 0 && plan.TotalReward != 0 {
				t.Fatalf("seed %d: negative rewards must never beat skipping, got %v",
					seed, plan.TotalReward)
			}
			assigned := false
			for _, s := range plan.Assignments {
				assigned = assigned || s != ensemble.Empty
			}
			if scale > 0 && assigned && plan.TotalReward <= 0 {
				t.Fatalf("seed %d: out-of-range rewards still describe useful work, got %v",
					seed, plan.TotalReward)
			}
		}
	}
}

// TestZeroReplicaConvention pins the documented convention: a model with
// zero declared replicas is planned exactly as one idle replica — the
// "missing means one" rule serve.Config.Replicas uses.
func TestZeroReplicaConvention(t *testing.T) {
	now := 10 * ms
	zero := Capacity{{}, {15 * ms, 5 * ms}}
	one := Capacity{{now}, {15 * ms, 5 * ms}}

	fz, lz := flatten(now, zero)
	fo, lo := flatten(now, one)
	if !durEq(fz, fo) || !intEq(lz.off, lo.off) {
		t.Fatalf("flatten(zero-replica) = %v %v, want %v %v", fz, lz.off, fo, lo.off)
	}

	queries := []QueryInfo{
		{ID: 1, Arrival: now, Deadline: now + 60*ms, Score: 0.4},
		{ID: 2, Arrival: now, Deadline: now + 90*ms, Score: 0.8},
	}
	exec := []time.Duration{20 * ms, 30 * ms}
	r := rootRewarder{m: 2}
	for _, s := range []Scheduler{&DP{Delta: 0.01}, &Greedy{Order: EDF}} {
		got := s.Schedule(now, queries, zero, exec, r).Clone()
		want := s.Schedule(now, queries, one, exec, r)
		samePlan(t, s.Name()+"/zero-replica", got, want)
	}
}
