// Package testutil holds helpers shared by the repo's test suites. Its
// flagship is Poll, the approved replacement for bare time.Sleep in
// tests: the sleeptest analyzer rejects fixed sleeps in _test.go files
// because a sleep long enough to be reliable is slow and a short one is
// flaky under race-detector load, while a condition polled against a
// deadline is exactly as slow as the runtime actually is.
package testutil

import (
	"time"
)

// PollInterval is the default spacing between condition checks.
const PollInterval = 2 * time.Millisecond

// TB is the subset of testing.TB Poll needs, split out so this package
// stays importable from non-test helpers.
type TB interface {
	Helper()
	Fatalf(format string, args ...interface{})
}

// Poll calls cond until it returns true or the timeout elapses, and
// fails the test fatally on timeout. The condition is evaluated once
// before any wait, so an already-true condition costs nothing.
func Poll(t TB, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("condition %q not reached within %v", what, timeout)
			// Fatalf never returns under testing.T; the return guards
			// fakes whose Fatalf records and resumes.
			return
		}
		time.Sleep(PollInterval)
	}
}

// Wait polls like Poll but reports the outcome instead of failing, for
// conditions that are allowed to time out (e.g. goroutine-count
// settling, where the caller formats its own diagnostic).
func Wait(timeout time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(timeout)
	for {
		if cond() {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(PollInterval)
	}
}
