package testutil

import (
	"sync/atomic"
	"testing"
	"time"
)

type fakeTB struct {
	testing.TB
	failed string
}

func (f *fakeTB) Helper() {}
func (f *fakeTB) Fatalf(format string, args ...interface{}) {
	f.failed = format
}

func TestPollImmediateSuccess(t *testing.T) {
	var tb fakeTB
	calls := 0
	start := time.Now()
	Poll(&tb, time.Second, "immediate", func() bool { calls++; return true })
	if tb.failed != "" {
		t.Fatalf("Poll failed on an immediately-true condition")
	}
	if calls != 1 {
		t.Errorf("condition evaluated %d times, want 1", calls)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("immediate success took %v", elapsed)
	}
}

func TestPollEventualSuccess(t *testing.T) {
	var tb fakeTB
	var n atomic.Int32
	Poll(&tb, 5*time.Second, "third try", func() bool { return n.Add(1) >= 3 })
	if tb.failed != "" {
		t.Fatal("Poll failed on a condition that becomes true")
	}
	if got := n.Load(); got < 3 {
		t.Errorf("condition evaluated %d times, want >= 3", got)
	}
}

func TestPollTimeout(t *testing.T) {
	var tb fakeTB
	Poll(&tb, 5*time.Millisecond, "never", func() bool { return false })
	if tb.failed == "" {
		t.Fatal("Poll did not fail on timeout")
	}
}

func TestWait(t *testing.T) {
	if !Wait(time.Second, func() bool { return true }) {
		t.Error("Wait(true) = false")
	}
	if Wait(5*time.Millisecond, func() bool { return false }) {
		t.Error("Wait(false) = true")
	}
}
