// Package pipeline assembles a complete Schemble deployment from a dataset
// and a model zoo: it precomputes base and ensemble outputs, fits the
// discrepancy scorer (with temperature calibration), computes true
// difficulty scores on the training split, trains the two-headed predictor
// and its ensemble-agreement variant, profiles subset rewards per score
// bin, and trains the DES / Gating baselines. The resulting Artifacts feed
// the simulator and all experiments; everything is deterministic in the
// seed.
package pipeline

import (
	"time"

	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/model"
	"schemble/internal/policy"
	"schemble/internal/profiling"
)

// Config controls Build.
type Config struct {
	Dataset *dataset.Dataset
	Models  []model.Model
	// Aggregator defaults to ensemble.Average.
	Aggregator ensemble.Aggregator
	// TrainFrac/ValFrac split the dataset (defaults 0.5/0.1; the rest is
	// the serving pool traces draw from).
	TrainFrac, ValFrac float64
	// Bins is the profiling bin count (default 10).
	Bins int
	// PredictorEpochs defaults to 50.
	PredictorEpochs int
	// Calibrate applies temperature scaling inside the discrepancy scorer
	// (default on for classification; abl-calib switches it off via
	// DisableCalibration).
	DisableCalibration bool
	Seed               uint64
}

// Artifacts is a fully fitted deployment.
type Artifacts struct {
	Dataset  *dataset.Dataset
	Ensemble *ensemble.Ensemble
	Scorer   *ensemble.Scorer

	// Outs[sampleID][k] is model k's output on the sample; Refs[sampleID]
	// the full ensemble's.
	Outs [][]model.Output
	Refs []model.Output

	// DisScorer computes true discrepancy scores from full outputs.
	DisScorer *discrepancy.Scorer
	// TrueScores[sampleID] is the discrepancy score (Eq. 1).
	TrueScores []float64
	// EAScores[sampleID] is the rank-normalized ensemble-agreement score.
	EAScores []float64
	// PerModelAgree[sampleID][k] is the agreement of model k alone with
	// the full ensemble.
	PerModelAgree [][]float64

	// Predictor estimates discrepancy scores from features; EAPredictor
	// is its Schemble(ea) counterpart trained on agreement scores.
	Predictor   *discrepancy.Predictor
	EAPredictor *discrepancy.Predictor

	// Profile maps (score bin, subset) to expected agreement; EAProfile is
	// the profile over EA scores.
	Profile   *profiling.Profile
	EAProfile *profiling.Profile

	// Train/Val/Serve are the dataset splits; traces should draw from
	// Serve to keep the predictor honest.
	Train, Val, Serve []*dataset.Sample

	Seed uint64
}

// Build fits the full pipeline.
func Build(cfg Config) *Artifacts {
	if cfg.Dataset == nil || len(cfg.Models) == 0 {
		panic("pipeline: dataset and models required")
	}
	if cfg.Aggregator == nil {
		cfg.Aggregator = &ensemble.Average{}
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.5
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.ValFrac == 0 {
		cfg.ValFrac = 0.1
	}
	if cfg.Bins == 0 {
		cfg.Bins = 10
	}
	if cfg.PredictorEpochs == 0 {
		cfg.PredictorEpochs = 150
	}

	a := &Artifacts{Dataset: cfg.Dataset, Seed: cfg.Seed}
	a.Ensemble = ensemble.New(cfg.Dataset.Task, cfg.Models, cfg.Aggregator, nil)
	a.Scorer = ensemble.NewScorer(cfg.Dataset)
	a.Train, a.Val, a.Serve = cfg.Dataset.Split(cfg.TrainFrac, cfg.ValFrac, cfg.Seed)

	// Precompute all outputs once; models are deterministic so every
	// consumer observes identical predictions.
	n := len(cfg.Dataset.Samples)
	a.Outs = make([][]model.Output, n)
	a.Refs = make([]model.Output, n)
	for _, s := range cfg.Dataset.Samples {
		outs := a.Ensemble.Outputs(s)
		a.Outs[s.ID] = outs
		a.Refs[s.ID] = a.Ensemble.Predict(outs, a.Ensemble.FullSubset())
	}

	// Fit the discrepancy scorer on the training split.
	trainOuts := make([][]model.Output, len(a.Train))
	trainRefs := make([]model.Output, len(a.Train))
	for i, s := range a.Train {
		trainOuts[i] = a.Outs[s.ID]
		trainRefs[i] = a.Refs[s.ID]
	}
	a.DisScorer = discrepancy.Fit(discrepancy.FitConfig{
		Task:      cfg.Dataset.Task,
		Calibrate: !cfg.DisableCalibration,
	}, trainOuts, trainRefs)

	// True scores and per-model agreements for every sample.
	a.TrueScores = make([]float64, n)
	a.PerModelAgree = make([][]float64, n)
	rawEA := make([]float64, n)
	m := a.Ensemble.M()
	for _, s := range cfg.Dataset.Samples {
		id := s.ID
		a.TrueScores[id] = a.DisScorer.Score(a.Outs[id], a.Refs[id])
		rawEA[id] = discrepancy.EnsembleAgreement(cfg.Dataset.Task, a.Outs[id])
		agreeRow := make([]float64, m)
		for k := 0; k < m; k++ {
			agreeRow[k] = a.Scorer.Score(
				a.Ensemble.Predict(a.Outs[id], ensemble.Single(k)), a.Refs[id])
		}
		a.PerModelAgree[id] = agreeRow
	}
	// Rank-normalize EA scores into [0,1] using the training split's ECDF.
	trainEA := make([]float64, len(a.Train))
	for i, s := range a.Train {
		trainEA[i] = rawEA[s.ID]
	}
	eaECDF := discrepancy.NewECDF(trainEA)
	a.EAScores = make([]float64, n)
	for id := range a.EAScores {
		a.EAScores[id] = eaECDF.Value(rawEA[id])
	}

	// Profiles over the training split.
	agreeSubset := func(ids []int) func(i int, s ensemble.Subset) float64 {
		return func(i int, s ensemble.Subset) float64 {
			id := ids[i]
			return a.Scorer.Score(a.Ensemble.Predict(a.Outs[id], s), a.Refs[id])
		}
	}
	trainIDs := make([]int, len(a.Train))
	trainScores := make([]float64, len(a.Train))
	trainEAScores := make([]float64, len(a.Train))
	for i, s := range a.Train {
		trainIDs[i] = s.ID
		trainScores[i] = a.TrueScores[s.ID]
		trainEAScores[i] = a.EAScores[s.ID]
	}
	a.Profile = profiling.Build(profiling.Config{M: m, Bins: cfg.Bins},
		trainScores, agreeSubset(trainIDs))
	a.EAProfile = profiling.Build(profiling.Config{M: m, Bins: cfg.Bins},
		trainEAScores, agreeSubset(trainIDs))

	// Predictors.
	taskTargets := make([][]float64, len(a.Train))
	for i, s := range a.Train {
		taskTargets[i] = a.taskTarget(s)
	}
	pcfg := discrepancy.PredictorConfig{
		Task:    cfg.Dataset.Task,
		Classes: cfg.Dataset.Classes,
		Epochs:  cfg.PredictorEpochs,
		Seed:    cfg.Seed,
	}
	a.Predictor = discrepancy.TrainPredictor(pcfg, a.Train, trainScores, taskTargets)
	pcfg.Seed = cfg.Seed + 1
	a.EAPredictor = discrepancy.TrainPredictor(pcfg, a.Train, trainEAScores, taskTargets)
	return a
}

// taskTarget builds the task-head training target for one sample: the
// ensemble's one-hot prediction (classification), the normalized ensemble
// value (regression) or the EA score (retrieval — a cheap auxiliary
// difficulty signal, since the ranking itself has no fixed-width target).
func (a *Artifacts) taskTarget(s *dataset.Sample) []float64 {
	ref := a.Refs[s.ID]
	switch a.Dataset.Task {
	case dataset.Classification:
		t := make([]float64, a.Dataset.Classes)
		t[mathx.ArgMax(ref.Probs)] = 1
		return t
	case dataset.Regression:
		return []float64{ref.Value / 25}
	default:
		return []float64{a.EAScores[s.ID]}
	}
}

// PerModelAgreeRows returns the agreement rows for the given samples.
func (a *Artifacts) PerModelAgreeRows(samples []*dataset.Sample) [][]float64 {
	rows := make([][]float64, len(samples))
	for i, s := range samples {
		rows[i] = a.PerModelAgree[s.ID]
	}
	return rows
}

// SubsetAccuracy returns the mean agreement of subset s with the full
// ensemble over the training split (the static baseline's search oracle).
func (a *Artifacts) SubsetAccuracy(s ensemble.Subset) float64 {
	var sum float64
	for _, smp := range a.Train {
		sum += a.Scorer.Score(a.Ensemble.Predict(a.Outs[smp.ID], s), a.Refs[smp.ID])
	}
	return sum / float64(len(a.Train))
}

// StaticPlan runs the static baseline's offline search at the given target
// rate.
func (a *Artifacts) StaticPlan(targetRate float64) policy.StaticPlan {
	return policy.PlanStatic(policy.StaticConfig{TargetRate: targetRate},
		a.Ensemble.Models, a.SubsetAccuracy)
}

// TrainDES fits the DES baseline on the training split.
func (a *Artifacts) TrainDES() *policy.DES {
	return policy.TrainDES(policy.DESConfig{Seed: a.Seed},
		a.Train, a.PerModelAgreeRows(a.Train))
}

// TrainGating fits the gating baseline on the training split. Latencies
// are passed so deployment-style cost-aware thresholding applies.
func (a *Artifacts) TrainGating() *policy.Gating {
	lats := make([]float64, a.Ensemble.M())
	for k, m := range a.Ensemble.Models {
		lats[k] = m.MeanLatency().Seconds()
	}
	return policy.TrainGating(policy.GatingConfig{Seed: a.Seed, Latencies: lats},
		a.Train, a.PerModelAgreeRows(a.Train))
}

// OracleEstimator returns a score estimator that reads the true discrepancy
// scores (Schemble*(Oracle)).
func (a *Artifacts) OracleEstimator() *discrepancy.OraclePredictor {
	scores := make(map[int]float64, len(a.TrueScores))
	for id, s := range a.TrueScores {
		scores[id] = s
	}
	return &discrepancy.OraclePredictor{Scores: scores}
}

// MeanExec returns the mean inference latency per model type.
func (a *Artifacts) MeanExec() []time.Duration {
	out := make([]time.Duration, a.Ensemble.M())
	for k, md := range a.Ensemble.Models {
		out[k] = md.MeanLatency()
	}
	return out
}
