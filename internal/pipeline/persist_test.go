package pipeline

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/model"
)

func persistFixtureCfg() Config {
	return Config{
		Dataset: dataset.TextMatching(dataset.Config{N: 900, Seed: 77}),
		Models:  model.TextMatchingModels(77),
		Seed:    77, PredictorEpochs: 15,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := persistFixtureCfg()
	orig := Build(cfg)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Rebuild the dataset/models from the same seeds, then restore.
	cfg2 := persistFixtureCfg()
	restored, err := Load(cfg2, &buf)
	if err != nil {
		t.Fatal(err)
	}

	// Fitted state must survive exactly.
	for id := range orig.TrueScores {
		if orig.TrueScores[id] != restored.TrueScores[id] {
			t.Fatal("true scores differ after restore")
		}
	}
	for _, s := range orig.Serve[:100] {
		if math.Abs(orig.Predictor.Predict(s)-restored.Predictor.Predict(s)) > 1e-15 {
			t.Fatal("predictor outputs differ after restore")
		}
		if orig.DisScorer.Score(orig.Outs[s.ID], orig.Refs[s.ID]) !=
			restored.DisScorer.Score(restored.Outs[s.ID], restored.Refs[s.ID]) {
			t.Fatal("discrepancy scores differ after restore")
		}
	}
	for b := 0; b < orig.Profile.Bins; b++ {
		for _, sub := range ensemble.AllSubsets(orig.Ensemble.M()) {
			if orig.Profile.RewardBin(b, sub) != restored.Profile.RewardBin(b, sub) {
				t.Fatal("profile rewards differ after restore")
			}
		}
	}
	// Splits must be identical (deterministic in seed).
	if len(orig.Serve) != len(restored.Serve) || orig.Serve[0].ID != restored.Serve[0].ID {
		t.Fatal("splits differ after restore")
	}
}

func TestSaveLoadFile(t *testing.T) {
	cfg := persistFixtureCfg()
	orig := Build(cfg)
	path := filepath.Join(t.TempDir(), "pipeline.gob")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(persistFixtureCfg(), path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Predictor == nil || restored.Profile == nil {
		t.Fatal("restored pipeline incomplete")
	}
}

func TestLoadRejectsMismatch(t *testing.T) {
	cfg := persistFixtureCfg()
	orig := Build(cfg)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}

	wrongSeed := persistFixtureCfg()
	wrongSeed.Seed = 78
	if _, err := Load(wrongSeed, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("seed mismatch not rejected")
	}

	wrongDataset := persistFixtureCfg()
	wrongDataset.Dataset = dataset.VehicleCounting(dataset.Config{N: 900, Seed: 77})
	if _, err := Load(wrongDataset, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("dataset mismatch not rejected")
	}

	wrongSize := persistFixtureCfg()
	wrongSize.Dataset = dataset.TextMatching(dataset.Config{N: 500, Seed: 77})
	if _, err := Load(wrongSize, bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("size mismatch not rejected")
	}

	if _, err := Load(persistFixtureCfg(), bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage snapshot not rejected")
	}
}
