package pipeline

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"time"

	"schemble/internal/calib"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/profiling"
)

func durationOf(ns int64) time.Duration { return time.Duration(ns) }

// Fitting a pipeline costs minutes of profiling and predictor training; a
// deployment wants to fit once and restore at process start. Save/Load
// serialize the fitted state (scorer normalization, calibrators, reward
// profiles, predictor weights, per-sample artifacts) with encoding/gob.
// The dataset and models are reconstructed from their generator seeds, so
// a snapshot stays small and self-consistent: Load verifies the seed and
// re-derives everything deterministic, then overlays the fitted state.

// snapshotVersion guards against loading incompatible snapshots.
const snapshotVersion = 1

// snapshot is the serialized fitted state.
type snapshot struct {
	Version int
	Seed    uint64
	Task    int
	Name    string

	// Fitted state that is NOT derivable from the seed alone (training
	// involves the nn package's own RNG and iteration order, so we store
	// the results rather than re-deriving).
	Calibrators   []float64 // temperature per model (0 = none)
	NormSamples   [][]float64
	TrueScores    []float64
	EAScores      []float64
	ProfileGob    []byte
	EAProfileGob  []byte
	PredictorGob  []byte
	EAPredictGob  []byte
	PredCost      int64
	PredMem       int64
	EAPredCost    int64
	EAPredMem     int64
	PerModelAgree [][]float64
}

func init() {
	gob.Register(&profiling.Profile{})
}

// Save writes the fitted pipeline state to w.
func (a *Artifacts) Save(w io.Writer) error {
	snap := snapshot{
		Version:       snapshotVersion,
		Seed:          a.Seed,
		Task:          int(a.Dataset.Task),
		Name:          a.Dataset.Name,
		TrueScores:    a.TrueScores,
		EAScores:      a.EAScores,
		PerModelAgree: a.PerModelAgree,
	}
	// Calibrators and normalization samples.
	if a.DisScorer.Calibrators != nil {
		snap.Calibrators = make([]float64, len(a.DisScorer.Calibrators))
		for i, c := range a.DisScorer.Calibrators {
			if c != nil {
				snap.Calibrators[i] = c.T
			}
		}
	}
	snap.NormSamples = make([][]float64, len(a.DisScorer.Norms))
	for i, n := range a.DisScorer.Norms {
		snap.NormSamples[i] = n.Sample()
	}
	var err error
	if snap.ProfileGob, err = gobBytes(a.Profile); err != nil {
		return fmt.Errorf("pipeline: encode profile: %w", err)
	}
	if snap.EAProfileGob, err = gobBytes(a.EAProfile); err != nil {
		return fmt.Errorf("pipeline: encode ea profile: %w", err)
	}
	if snap.PredictorGob, err = a.Predictor.MarshalBinary(); err != nil {
		return fmt.Errorf("pipeline: encode predictor: %w", err)
	}
	if snap.EAPredictGob, err = a.EAPredictor.MarshalBinary(); err != nil {
		return fmt.Errorf("pipeline: encode ea predictor: %w", err)
	}
	snap.PredCost, snap.PredMem = int64(a.Predictor.InferCost), a.Predictor.MemoryBytes
	snap.EAPredCost, snap.EAPredMem = int64(a.EAPredictor.InferCost), a.EAPredictor.MemoryBytes
	return gob.NewEncoder(w).Encode(snap)
}

// SaveFile writes the snapshot to path.
func (a *Artifacts) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return a.Save(f)
}

// Load restores a fitted pipeline from r. cfg must describe the same
// dataset and models the snapshot was built from (same seeds); Load
// re-derives the deterministic parts (outputs, references, splits) and
// overlays the fitted state. It fails when the snapshot does not match.
func Load(cfg Config, r io.Reader) (*Artifacts, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("pipeline: decode snapshot: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("pipeline: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Seed != cfg.Seed {
		return nil, fmt.Errorf("pipeline: snapshot seed %d does not match config seed %d", snap.Seed, cfg.Seed)
	}
	if cfg.Dataset == nil || snap.Name != cfg.Dataset.Name {
		return nil, fmt.Errorf("pipeline: snapshot dataset %q does not match config", snap.Name)
	}
	// Rebuild the deterministic scaffolding without any training.
	rebuilt := buildScaffold(cfg)
	a := rebuilt
	if len(snap.TrueScores) != len(a.Dataset.Samples) {
		return nil, fmt.Errorf("pipeline: snapshot covers %d samples, dataset has %d",
			len(snap.TrueScores), len(a.Dataset.Samples))
	}
	// Overlay fitted state.
	a.TrueScores = snap.TrueScores
	a.EAScores = snap.EAScores
	a.PerModelAgree = snap.PerModelAgree
	a.DisScorer = &discrepancy.Scorer{Task: a.Dataset.Task}
	if snap.Calibrators != nil {
		a.DisScorer.Calibrators = make([]*calib.Scaler, len(snap.Calibrators))
		for i, t := range snap.Calibrators {
			//schemble:floateq-ok snapshot sentinel: temperature 0 round-trips verbatim through JSON and means no calibrator
			if t != 0 {
				a.DisScorer.Calibrators[i] = &calib.Scaler{T: t}
			}
		}
	}
	a.DisScorer.Norms = make([]*discrepancy.ECDF, len(snap.NormSamples))
	for i, s := range snap.NormSamples {
		a.DisScorer.Norms[i] = discrepancy.NewECDF(s)
	}
	if err := gobInto(snap.ProfileGob, &a.Profile); err != nil {
		return nil, fmt.Errorf("pipeline: decode profile: %w", err)
	}
	if err := gobInto(snap.EAProfileGob, &a.EAProfile); err != nil {
		return nil, fmt.Errorf("pipeline: decode ea profile: %w", err)
	}
	var err error
	if a.Predictor, err = discrepancy.RestorePredictor(snap.PredictorGob,
		durationOf(snap.PredCost), snap.PredMem); err != nil {
		return nil, fmt.Errorf("pipeline: restore predictor: %w", err)
	}
	if a.EAPredictor, err = discrepancy.RestorePredictor(snap.EAPredictGob,
		durationOf(snap.EAPredCost), snap.EAPredMem); err != nil {
		return nil, fmt.Errorf("pipeline: restore ea predictor: %w", err)
	}
	return a, nil
}

// LoadFile restores a snapshot from path.
func LoadFile(cfg Config, path string) (*Artifacts, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(cfg, f)
}

// buildScaffold reconstructs the deterministic (non-trained) artifacts:
// ensemble, outputs, references, splits.
func buildScaffold(cfg Config) *Artifacts {
	if cfg.Aggregator == nil {
		cfg.Aggregator = &ensemble.Average{}
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.TrainFrac == 0 {
		cfg.TrainFrac = 0.5
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.ValFrac == 0 {
		cfg.ValFrac = 0.1
	}
	a := &Artifacts{Dataset: cfg.Dataset, Seed: cfg.Seed}
	a.Ensemble = ensemble.New(cfg.Dataset.Task, cfg.Models, cfg.Aggregator, nil)
	a.Scorer = ensemble.NewScorer(cfg.Dataset)
	a.Train, a.Val, a.Serve = cfg.Dataset.Split(cfg.TrainFrac, cfg.ValFrac, cfg.Seed)
	n := len(cfg.Dataset.Samples)
	a.Outs = make([][]model.Output, n)
	a.Refs = make([]model.Output, n)
	for _, s := range cfg.Dataset.Samples {
		outs := a.Ensemble.Outputs(s)
		a.Outs[s.ID] = outs
		a.Refs[s.ID] = a.Ensemble.Predict(outs, a.Ensemble.FullSubset())
	}
	return a
}

func gobBytes(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobInto(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
