package pipeline

import (
	"sync"
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// shared fixture: building the pipeline is the expensive part, so tests
// share one Artifacts per task.
var (
	tmOnce sync.Once
	tmArt  *Artifacts
)

func tmArtifacts(t *testing.T) *Artifacts {
	t.Helper()
	tmOnce.Do(func() {
		ds := dataset.TextMatching(dataset.Config{N: 3000, Seed: 42})
		tmArt = Build(Config{
			Dataset: ds,
			Models:  model.TextMatchingModels(42),
			Seed:    42,
		})
	})
	return tmArt
}

func TestBuildProducesCompleteArtifacts(t *testing.T) {
	a := tmArtifacts(t)
	n := len(a.Dataset.Samples)
	if len(a.Outs) != n || len(a.Refs) != n || len(a.TrueScores) != n ||
		len(a.EAScores) != n || len(a.PerModelAgree) != n {
		t.Fatal("per-sample artifacts incomplete")
	}
	if a.Predictor == nil || a.EAPredictor == nil || a.Profile == nil || a.EAProfile == nil {
		t.Fatal("fitted components missing")
	}
	if len(a.Train)+len(a.Val)+len(a.Serve) != n {
		t.Fatal("splits do not partition the dataset")
	}
	for _, s := range a.TrueScores {
		if s < 0 || s > 1 {
			t.Fatalf("true score out of range: %v", s)
		}
	}
}

func TestPredictorGeneralizesToServePool(t *testing.T) {
	a := tmArtifacts(t)
	var pred, truth []float64
	for _, s := range a.Serve {
		pred = append(pred, a.Predictor.Predict(s))
		truth = append(truth, a.TrueScores[s.ID])
	}
	if r := mathx.Pearson(pred, truth); r < 0.45 {
		t.Errorf("serve-pool predictor correlation = %v, want >= 0.45", r)
	}
}

func TestProfileRewardsSaneOnServeScores(t *testing.T) {
	a := tmArtifacts(t)
	full := a.Ensemble.FullSubset()
	for _, s := range a.Serve[:200] {
		score := a.Predictor.Predict(s)
		r := a.Profile.Reward(score, full)
		if r < 0.99 {
			t.Fatalf("full subset reward = %v, want ~1", r)
		}
		single := a.Profile.Reward(score, ensemble.Single(0))
		if single < 0 || single > 1 {
			t.Fatalf("singleton reward out of range: %v", single)
		}
	}
}

func TestStaticPlanIsSensible(t *testing.T) {
	a := tmArtifacts(t)
	plan := a.StaticPlan(30)
	if plan.Subset == ensemble.Empty {
		t.Fatal("static plan chose nothing")
	}
	if plan.Throughput <= 0 {
		t.Fatal("static plan has zero throughput")
	}
	// Replica memory must fit the full-deployment budget.
	var used, budget int64
	for j, md := range a.Ensemble.Models {
		budget += md.Memory()
		used += int64(plan.Replicas[j]) * md.Memory()
	}
	if used > budget {
		t.Errorf("replica packing overflows budget: %d > %d", used, budget)
	}
	// Dropped models must have zero replicas.
	for j := range plan.Replicas {
		if !plan.Subset.Contains(j) && plan.Replicas[j] != 0 {
			t.Errorf("dropped model %d has replicas", j)
		}
	}
}

func TestDESAndGatingSelectNonEmpty(t *testing.T) {
	a := tmArtifacts(t)
	des := a.TrainDES()
	gate := a.TrainGating()
	for _, s := range a.Serve[:300] {
		if des.Select(s) == ensemble.Empty {
			t.Fatal("DES selected the empty subset")
		}
		if gate.Select(s) == ensemble.Empty {
			t.Fatal("gating selected the empty subset")
		}
	}
}

func TestGatingWeightsFavorStrongModels(t *testing.T) {
	a := tmArtifacts(t)
	gate := a.TrainGating()
	var mean [3]float64
	for _, s := range a.Serve[:500] {
		w := gate.Weights(s)
		for k := range mean {
			mean[k] += w[k]
		}
	}
	// bilstm (model 0) agrees with the ensemble least, so its mean gate
	// weight should be the lowest.
	if mean[0] >= mean[2] {
		t.Errorf("gate weights do not reflect model quality: %v", mean)
	}
}

func TestOracleEstimatorMatchesTrueScores(t *testing.T) {
	a := tmArtifacts(t)
	o := a.OracleEstimator()
	for _, s := range a.Serve[:100] {
		if o.Predict(s) != a.TrueScores[s.ID] {
			t.Fatal("oracle disagrees with true scores")
		}
	}
}

func TestMeanExec(t *testing.T) {
	a := tmArtifacts(t)
	exec := a.MeanExec()
	if len(exec) != 3 {
		t.Fatalf("exec len = %d", len(exec))
	}
	if exec[0] >= exec[2] {
		t.Error("bilstm should be faster than bert")
	}
}

func TestRegressionPipeline(t *testing.T) {
	ds := dataset.VehicleCounting(dataset.Config{N: 1200, Seed: 7})
	a := Build(Config{
		Dataset: ds, Models: model.VehicleCountingModels(7),
		PredictorEpochs: 20, Seed: 7,
	})
	var pred, truth []float64
	for _, s := range a.Serve {
		pred = append(pred, a.Predictor.Predict(s))
		truth = append(truth, a.TrueScores[s.ID])
	}
	if r := mathx.Pearson(pred, truth); r < 0.3 {
		t.Errorf("regression predictor correlation = %v", r)
	}
}
