package dataset

import (
	"math"
	"testing"

	"schemble/internal/mathx"
	"schemble/internal/rng"
)

func TestTextMatchingShape(t *testing.T) {
	ds := TextMatching(Config{N: 500, Seed: 1})
	if ds.Task != Classification || ds.Classes != 2 {
		t.Fatalf("wrong task metadata: %v %d", ds.Task, ds.Classes)
	}
	if len(ds.Samples) != 500 {
		t.Fatalf("N = %d", len(ds.Samples))
	}
	for _, s := range ds.Samples {
		if len(s.Features) != FeatureDim {
			t.Fatalf("feature dim = %d", len(s.Features))
		}
		if s.Difficulty < 0 || s.Difficulty > 1 {
			t.Fatalf("difficulty out of range: %v", s.Difficulty)
		}
		if s.Label != 0 && s.Label != 1 {
			t.Fatalf("label = %d", s.Label)
		}
	}
}

func TestDifficultyMassNearZero(t *testing.T) {
	// The default mixture must reproduce Fig. 4a: most samples easy.
	ds := TextMatching(Config{N: 5000, Seed: 2})
	low := 0
	for _, s := range ds.Samples {
		if s.Difficulty < 0.25 {
			low++
		}
	}
	if frac := float64(low) / 5000; frac < 0.5 {
		t.Errorf("only %.2f of samples have difficulty < 0.25; want most", frac)
	}
}

func TestFeaturesCarryDifficultySignal(t *testing.T) {
	ds := TextMatching(Config{N: 3000, Seed: 3})
	var f0, h []float64
	for _, s := range ds.Samples {
		f0 = append(f0, s.Features[0])
		h = append(h, s.Difficulty)
	}
	if r := mathx.Pearson(f0, h); r < 0.6 {
		t.Errorf("feature[0] vs difficulty correlation = %v, want >= 0.6", r)
	}
}

func TestVehicleCounting(t *testing.T) {
	ds := VehicleCounting(Config{N: 1000, Seed: 4})
	if ds.Task != Regression {
		t.Fatal("wrong task")
	}
	if ds.Cameras != 24 {
		t.Errorf("cameras = %d, want 24", ds.Cameras)
	}
	var easyCounts, hardCounts []float64
	for _, s := range ds.Samples {
		if s.Value < 0 {
			t.Fatalf("negative count %v", s.Value)
		}
		if s.CameraID < 0 || s.CameraID >= 24 {
			t.Fatalf("camera id %d", s.CameraID)
		}
		if s.Difficulty < 0.2 {
			easyCounts = append(easyCounts, s.Value)
		} else if s.Difficulty > 0.6 {
			hardCounts = append(hardCounts, s.Value)
		}
	}
	if mathx.Mean(hardCounts) <= mathx.Mean(easyCounts) {
		t.Error("hard frames should carry more vehicles on average")
	}
}

func TestImageRetrieval(t *testing.T) {
	ds := ImageRetrieval(RetrievalConfig{Config: Config{N: 200, Seed: 5}, GallerySize: 300, EmbDim: 8})
	if ds.Task != Retrieval {
		t.Fatal("wrong task")
	}
	if len(ds.Gallery) != 300 || ds.EmbDim != 8 {
		t.Fatalf("gallery %d dim %d", len(ds.Gallery), ds.EmbDim)
	}
	for _, g := range ds.Gallery {
		if math.Abs(mathx.Norm2(g)-1) > 1e-9 {
			t.Fatal("gallery embedding not unit norm")
		}
	}
	for _, s := range ds.Samples {
		if math.Abs(mathx.Norm2(s.Embedding)-1) > 1e-9 {
			t.Fatal("query embedding not unit norm")
		}
	}
}

func TestGenerationDeterminism(t *testing.T) {
	a := TextMatching(Config{N: 100, Seed: 6})
	b := TextMatching(Config{N: 100, Seed: 6})
	for i := range a.Samples {
		if a.Samples[i].Difficulty != b.Samples[i].Difficulty ||
			a.Samples[i].Label != b.Samples[i].Label {
			t.Fatal("generation not deterministic")
		}
	}
	c := TextMatching(Config{N: 100, Seed: 7})
	same := 0
	for i := range a.Samples {
		if a.Samples[i].Difficulty == c.Samples[i].Difficulty {
			same++
		}
	}
	if same == len(a.Samples) {
		t.Error("different seeds produced identical datasets")
	}
}

func TestDifficultySpecs(t *testing.T) {
	src := rng.New(8)
	normal := DifficultySpec{Kind: NormalDist, Mean: 0.5}
	var xs []float64
	for i := 0; i < 5000; i++ {
		v := normal.Sample(src)
		if v < 0 || v > 1 {
			t.Fatalf("normal difficulty out of range: %v", v)
		}
		xs = append(xs, v)
	}
	if m := mathx.Mean(xs); math.Abs(m-0.5) > 0.01 {
		t.Errorf("normal mean = %v", m)
	}
	if s := mathx.StdDev(xs); math.Abs(s-0.03) > 0.01 {
		t.Errorf("normal stddev = %v, want ~0.03 (paper setting)", s)
	}

	gamma := DifficultySpec{Kind: GammaDist, Mean: 0.3}
	xs = xs[:0]
	for i := 0; i < 5000; i++ {
		v := gamma.Sample(src)
		if v < 0 || v > 1 {
			t.Fatalf("gamma difficulty out of range: %v", v)
		}
		xs = append(xs, v)
	}
	if m := mathx.Mean(xs); math.Abs(m-0.3) > 0.05 {
		t.Errorf("gamma mean = %v, want ~0.3", m)
	}

	if c := (DifficultySpec{Kind: ConstantDist, Mean: 0.4}).Sample(src); c != 0.4 {
		t.Errorf("constant = %v", c)
	}
	u := (DifficultySpec{Kind: UniformDist}).Sample(src)
	if u < 0 || u > 1 {
		t.Errorf("uniform = %v", u)
	}
}

func TestSplit(t *testing.T) {
	ds := TextMatching(Config{N: 1000, Seed: 9})
	train, val, test := ds.Split(0.6, 0.2, 42)
	if len(train) != 600 || len(val) != 200 || len(test) != 200 {
		t.Fatalf("split sizes %d/%d/%d", len(train), len(val), len(test))
	}
	seen := map[int]bool{}
	for _, part := range [][]*Sample{train, val, test} {
		for _, s := range part {
			if seen[s.ID] {
				t.Fatalf("sample %d appears twice", s.ID)
			}
			seen[s.ID] = true
		}
	}
	if len(seen) != 1000 {
		t.Fatalf("split lost samples: %d", len(seen))
	}
	// Deterministic.
	train2, _, _ := ds.Split(0.6, 0.2, 42)
	if train[0].ID != train2[0].ID {
		t.Error("split not deterministic")
	}
}
