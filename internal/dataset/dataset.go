// Package dataset generates the three synthetic workloads used throughout
// the repository: text matching (binary classification, the bank Q&A
// stand-in), vehicle counting (regression over video frames), and image
// retrieval (embedding ranking against a gallery).
//
// Every sample carries a latent difficulty h in [0,1]. Difficulty is the
// hidden variable the whole paper revolves around: base-model correctness,
// inter-model disagreement and (noisily) the observable features all depend
// on it, so a trained predictor can estimate it while the serving system
// never observes it directly. The default difficulty distribution is a
// two-component Beta mixture placing most mass near zero, matching the
// empirical distribution in Fig. 4a; Exp-3's Normal/Gamma shifts are
// expressible through DifficultySpec.
package dataset

import (
	"fmt"

	"schemble/internal/mathx"
	"schemble/internal/rng"
)

// Task identifies the prediction task of a workload.
type Task int

// Supported tasks.
const (
	Classification Task = iota
	Regression
	Retrieval
)

func (t Task) String() string {
	switch t {
	case Classification:
		return "classification"
	case Regression:
		return "regression"
	case Retrieval:
		return "retrieval"
	default:
		return fmt.Sprintf("Task(%d)", int(t))
	}
}

// DifficultyKind selects the sampling distribution for latent difficulty.
type DifficultyKind int

// Difficulty distributions. MixtureBeta is the realistic default; the
// others reproduce the distribution-shift study (Exp-3).
const (
	MixtureBeta DifficultyKind = iota
	NormalDist
	GammaDist
	UniformDist
	ConstantDist
)

// DifficultySpec parameterizes difficulty sampling. Mean is used by
// NormalDist (with the paper's stddev 0.03), GammaDist (shape = Mean with
// the paper's scale 1, then rescaled into [0,1]) and ConstantDist.
type DifficultySpec struct {
	Kind   DifficultyKind
	Mean   float64
	StdDev float64 // NormalDist only; defaults to 0.03 (paper setting)
}

// Sample samples one difficulty value in [0,1].
func (d DifficultySpec) Sample(src *rng.Source) float64 {
	switch d.Kind {
	case MixtureBeta:
		// 72% easy mass near zero + 28% moderately hard: Fig. 4a shape.
		if src.Bool(0.72) {
			return src.Beta(1.2, 6.5)
		}
		return src.Beta(3.5, 2.2)
	case NormalDist:
		sd := d.StdDev
		//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
		if sd == 0 {
			sd = 0.03
		}
		return mathx.Clamp(src.Normal(d.Mean, sd), 0, 1)
	case GammaDist:
		shape := d.Mean
		if shape <= 0 {
			shape = 0.2
		}
		// Gamma(shape, scale=1) has mean = shape; the paper samples scores
		// directly so we rescale the (unbounded) draw into [0,1] with a
		// soft ceiling at 3x the mean.
		v := src.Gamma(shape*10, 0.1)
		return mathx.Clamp(v, 0, 1)
	case UniformDist:
		return src.Float64()
	case ConstantDist:
		return mathx.Clamp(d.Mean, 0, 1)
	default:
		panic("dataset: unknown difficulty kind")
	}
}

// FeatureDim is the dimensionality of observable sample features across all
// workloads. The first two coordinates are noisy transforms of the latent
// difficulty (so difficulty is learnable but not perfectly recoverable);
// the next two are task-informative; the rest is nuisance noise.
const FeatureDim = 12

// Sample is one query-able input item.
type Sample struct {
	ID         int
	Features   []float64
	Difficulty float64 // latent; generation/oracle use only

	Label int     // Classification: class in [0, Classes)
	Value float64 // Regression: ground-truth value

	Embedding []float64 // Retrieval: true query embedding (unit norm)
	CameraID  int       // VehicleCounting: source camera (deadline class)
}

// Dataset is a generated workload.
type Dataset struct {
	Name    string
	Task    Task
	Classes int // Classification only
	Samples []*Sample

	// Retrieval only.
	Gallery [][]float64
	EmbDim  int

	// Regression tolerance: a prediction within Tol of the reference value
	// counts as agreeing (the paper's "Acc" for vehicle counting).
	Tol float64

	// Cameras is the number of distinct vehicle-counting cameras.
	Cameras int
}

// Config controls generation.
type Config struct {
	N          int
	Seed       uint64
	Difficulty DifficultySpec
}

func (c *Config) fill(defaultN int) {
	if c.N <= 0 {
		c.N = defaultN
	}
}

// sampleFeatures builds the observable feature vector for difficulty h:
// noisy monotone transforms of h, task-informative coordinates, and noise.
func sampleFeatures(src *rng.Source, h float64, taskSignal float64) []float64 {
	f := make([]float64, FeatureDim)
	f[0] = h + src.Normal(0, 0.09)
	f[1] = h*h + src.Normal(0, 0.10)
	f[2] = taskSignal + src.Normal(0, 0.25)
	f[3] = taskSignal*h + src.Normal(0, 0.25)
	for i := 4; i < FeatureDim; i++ {
		f[i] = src.Normal(0, 1)
	}
	return f
}

// TextMatching generates the binary text-matching workload (the bank Q&A
// stand-in): label 1 means the two questions map to the same answer.
func TextMatching(cfg Config) *Dataset {
	cfg.fill(4000)
	src := rng.New(cfg.Seed ^ 0x7e47)
	ds := &Dataset{Name: "textmatching", Task: Classification, Classes: 2}
	for i := 0; i < cfg.N; i++ {
		h := cfg.Difficulty.Sample(src)
		signal := src.Normal(0, 1)
		label := 0
		if signal > 0 {
			label = 1
		}
		ds.Samples = append(ds.Samples, &Sample{
			ID:         i,
			Features:   sampleFeatures(src, h, signal),
			Difficulty: h,
			Label:      label,
		})
	}
	return ds
}

// VehicleCounting generates the regression workload: per-frame vehicle
// counts from 24 cameras. Harder frames (occlusion, clutter) carry larger
// counts and larger difficulty.
func VehicleCounting(cfg Config) *Dataset {
	cfg.fill(4000)
	src := rng.New(cfg.Seed ^ 0xbeef)
	const cameras = 24
	ds := &Dataset{Name: "vehiclecounting", Task: Regression, Tol: 1.0, Cameras: cameras}
	for i := 0; i < cfg.N; i++ {
		h := cfg.Difficulty.Sample(src)
		count := float64(src.Poisson(3 + 18*h))
		ds.Samples = append(ds.Samples, &Sample{
			ID:         i,
			Features:   sampleFeatures(src, h, count/20),
			Difficulty: h,
			Value:      count,
			CameraID:   src.Intn(cameras),
		})
	}
	return ds
}

// RetrievalConfig extends Config for the image-retrieval workload.
type RetrievalConfig struct {
	Config
	GallerySize int
	EmbDim      int
}

// ImageRetrieval generates the embedding-ranking workload: each query has a
// true embedding; models observe it through task- and difficulty-dependent
// noise and rank a shared gallery by cosine similarity.
func ImageRetrieval(cfg RetrievalConfig) *Dataset {
	cfg.fill(2000)
	if cfg.GallerySize <= 0 {
		cfg.GallerySize = 1500
	}
	if cfg.EmbDim <= 0 {
		cfg.EmbDim = 16
	}
	src := rng.New(cfg.Seed ^ 0x1a6e)
	ds := &Dataset{
		Name: "imageretrieval", Task: Retrieval,
		EmbDim: cfg.EmbDim,
	}
	unit := func() []float64 {
		v := make([]float64, cfg.EmbDim)
		for d := range v {
			v[d] = src.Normal(0, 1)
		}
		n := mathx.Norm2(v)
		for d := range v {
			v[d] /= n
		}
		return v
	}
	for g := 0; g < cfg.GallerySize; g++ {
		ds.Gallery = append(ds.Gallery, unit())
	}
	for i := 0; i < cfg.N; i++ {
		h := cfg.Difficulty.Sample(src)
		emb := unit()
		ds.Samples = append(ds.Samples, &Sample{
			ID:         i,
			Features:   sampleFeatures(src, h, emb[0]),
			Difficulty: h,
			Embedding:  emb,
		})
	}
	return ds
}

// Split partitions the dataset's samples into train/validation/test slices
// by the given fractions (which must sum to <= 1; the test split receives
// the remainder). The split is deterministic in seed and does not copy
// samples.
func (ds *Dataset) Split(trainFrac, valFrac float64, seed uint64) (train, val, test []*Sample) {
	src := rng.New(seed ^ 0xfade)
	perm := src.Perm(len(ds.Samples))
	nTrain := int(trainFrac * float64(len(perm)))
	nVal := int(valFrac * float64(len(perm)))
	for i, p := range perm {
		s := ds.Samples[p]
		switch {
		case i < nTrain:
			train = append(train, s)
		case i < nTrain+nVal:
			val = append(val, s)
		default:
			test = append(test, s)
		}
	}
	return train, val, test
}
