package obsv

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"schemble/internal/mathx"
	"schemble/internal/metrics"
	"schemble/internal/rng"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogramBounds([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	// Upper bounds are inclusive; the value just above a bound lands in the
	// next bucket, and anything past the last bound overflows.
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{-time.Second, 0}, // clamped
		{time.Millisecond, 0},
		{time.Millisecond + 1, 1},
		{10 * time.Millisecond, 1},
		{100 * time.Millisecond, 2},
		{100*time.Millisecond + 1, 3}, // overflow
		{time.Hour, 3},
	}
	for _, tc := range cases {
		h.Observe(tc.d)
	}
	s := h.Snapshot()
	want := []uint64{3, 2, 1, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != uint64(len(cases)) {
		t.Errorf("Count = %d, want %d", s.Count, len(cases))
	}
}

func TestHistogramDefaultGeometry(t *testing.T) {
	h := NewHistogram()
	if len(h.bounds) != defaultHistBuckets {
		t.Fatalf("bounds = %d, want %d", len(h.bounds), defaultHistBuckets)
	}
	if h.bounds[0] != defaultHistMin {
		t.Errorf("first bound = %v, want %v", h.bounds[0], defaultHistMin)
	}
	// Log-spaced: each bound ~1.5x the previous (modulo nanosecond
	// truncation), reaching past 100s.
	for i := 1; i < len(h.bounds); i++ {
		ratio := float64(h.bounds[i]) / float64(h.bounds[i-1])
		if math.Abs(ratio-defaultHistGrowth) > 1e-6 {
			t.Fatalf("bound %d ratio = %v", i, ratio)
		}
	}
	if last := h.bounds[len(h.bounds)-1]; last < 100*time.Second {
		t.Errorf("last bound %v does not cover realistic latencies", last)
	}
}

// TestHistogramQuantileVsPercentile checks quantile estimates against the
// exact mathx.Percentile on the same data. Histogram resolution is one
// bucket, and buckets grow 1.5x, so the estimate must be within a factor
// of 1.5 of the exact value (plus interpolation slack at the low end).
func TestHistogramQuantileVsPercentile(t *testing.T) {
	src := rng.New(42)
	h := NewHistogram()
	var xs []float64
	for i := 0; i < 5000; i++ {
		// Log-uniform latencies from ~200µs to ~2s, the serving range.
		d := time.Duration(float64(200*time.Microsecond) * math.Exp(src.Float64()*math.Log(1e4)))
		h.Observe(d)
		xs = append(xs, float64(d))
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.95, 0.99} {
		got := float64(s.Quantile(q))
		want := mathx.Percentile(xs, q*100)
		if got < want/defaultHistGrowth || got > want*defaultHistGrowth {
			t.Errorf("Quantile(%v) = %v, exact %v — off by more than one bucket",
				q, time.Duration(got), time.Duration(want))
		}
	}
	if s.Quantile(0) <= 0 || s.Quantile(1) < s.Quantile(0.5) {
		t.Errorf("degenerate quantiles: q0=%v q50=%v q100=%v",
			s.Quantile(0), s.Quantile(0.5), s.Quantile(1))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 101; i <= 200; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	whole := NewHistogram()
	for i := 1; i <= 200; i++ {
		whole.Observe(time.Duration(i) * time.Millisecond)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	w := whole.Snapshot()
	if m.Count != w.Count || m.Sum != w.Sum {
		t.Fatalf("merged count/sum %d/%v, want %d/%v", m.Count, m.Sum, w.Count, w.Sum)
	}
	for i := range m.Counts {
		if m.Counts[i] != w.Counts[i] {
			t.Errorf("bucket %d: merged %d, whole %d", i, m.Counts[i], w.Counts[i])
		}
	}
	if m.Quantile(0.5) != w.Quantile(0.5) {
		t.Errorf("merged p50 %v != whole p50 %v", m.Quantile(0.5), w.Quantile(0.5))
	}
	if m.Mean() != w.Mean() {
		t.Errorf("merged mean %v != whole mean %v", m.Mean(), w.Mean())
	}
}

func TestHistogramMergeGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("geometry mismatch did not panic")
		}
	}()
	a := NewHistogram().Snapshot()
	b := NewHistogramBounds([]time.Duration{time.Second}).Snapshot()
	a.Merge(b)
}

func TestHistogramEmpty(t *testing.T) {
	s := NewHistogram().Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Errorf("empty snapshot: %+v", s)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != workers*per {
		t.Errorf("Count = %d, want %d", s.Count, workers*per)
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 20; i++ {
		r.Append(DecisionTrace{ID: uint64(i)})
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	total, dropped := r.Counters()
	if total != 20 || dropped != 12 {
		t.Fatalf("counters = %d/%d, want 20/12", total, dropped)
	}
	// The ring keeps the 13..20 suffix in chronological order.
	last := r.Last(8)
	for i, tr := range last {
		if tr.ID != uint64(13+i) {
			t.Errorf("Last[%d].ID = %d, want %d", i, tr.ID, 13+i)
		}
	}
	// Partial reads return the newest traces.
	if got := r.Last(3); len(got) != 3 || got[0].ID != 18 || got[2].ID != 20 {
		t.Errorf("Last(3) = %+v", got)
	}
	// Asking for more than buffered returns what exists.
	if got := r.Last(100); len(got) != 8 {
		t.Errorf("Last(100) returned %d traces", len(got))
	}
	if got := r.Last(0); got != nil {
		t.Errorf("Last(0) = %v", got)
	}
}

func TestRingUnwrapped(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 5; i++ {
		r.Append(DecisionTrace{ID: uint64(i)})
	}
	total, dropped := r.Counters()
	if total != 5 || dropped != 0 {
		t.Fatalf("counters = %d/%d", total, dropped)
	}
	if got := r.Last(3); got[0].ID != 3 || got[2].ID != 5 {
		t.Errorf("Last(3) = %+v", got)
	}
}

func TestRingZeroCapacity(t *testing.T) {
	r := NewRing(0)
	r.Append(DecisionTrace{ID: 1})
	total, dropped := r.Counters()
	if total != 1 || dropped != 1 || r.Len() != 0 {
		t.Errorf("zero-cap ring: total=%d dropped=%d len=%d", total, dropped, r.Len())
	}
}

func TestObserverDisabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero config reports enabled")
	}
	o := NewObserver(Config{})
	if o != nil {
		t.Fatal("disabled config built an observer")
	}
	// Nil receiver is a safe no-op everywhere.
	o.Done(DecisionTrace{})
	if o.Last(5) != nil {
		t.Error("nil Last != nil")
	}
	if s := o.Snapshot(); s.TracesTotal != 0 || s.Latency != nil {
		t.Errorf("nil Snapshot = %+v", s)
	}
}

func TestObserverRecordsByOutcome(t *testing.T) {
	var sunk []DecisionTrace
	o := NewObserver(Config{TraceBuffer: 4, Sink: func(tr DecisionTrace) { sunk = append(sunk, tr) }})
	o.Done(DecisionTrace{ID: 1, Outcome: OutcomeServed, Latency: 10 * time.Millisecond})
	o.Done(DecisionTrace{ID: 2, Outcome: OutcomeDegraded, Latency: 20 * time.Millisecond})
	o.Done(DecisionTrace{ID: 3, Outcome: OutcomeMissed, Latency: 30 * time.Millisecond})
	o.Done(DecisionTrace{ID: 4, Outcome: OutcomeRejected, Latency: time.Millisecond})
	s := o.Snapshot()
	if s.TracesTotal != 4 || s.TracesDropped != 0 {
		t.Fatalf("traces = %d/%d", s.TracesTotal, s.TracesDropped)
	}
	//schemble:outcome-ok deliberately the three latency-tracked outcomes; the rejected case is asserted absent just below
	for _, outcome := range []string{OutcomeServed, OutcomeDegraded, OutcomeMissed} {
		if s.Latency[outcome].Count != 1 {
			t.Errorf("%s histogram count = %d", outcome, s.Latency[outcome].Count)
		}
	}
	// Rejections resolve instantly and are counter-only.
	if _, ok := s.Latency[OutcomeRejected]; ok {
		t.Error("rejected outcome should not have a latency histogram")
	}
	if len(sunk) != 4 || sunk[3].ID != 4 {
		t.Errorf("sink saw %d traces", len(sunk))
	}
	if got := o.Last(2); len(got) != 2 || got[0].ID != 3 || got[1].ID != 4 {
		t.Errorf("Last(2) = %+v", got)
	}
}

func TestDecisionTraceJSONRoundTrip(t *testing.T) {
	in := DecisionTrace{
		ID: 7, SampleID: 123, CameraID: 2, Score: 0.42,
		Queued: 100 * time.Millisecond, Scored: 101 * time.Millisecond,
		Committed: 102 * time.Millisecond, Resolved: 190 * time.Millisecond,
		Deadline: 300 * time.Millisecond, Latency: 90 * time.Millisecond,
		Subset:       []int{0, 2},
		Alternatives: []Alternative{{Subset: []int{0, 2}, Reward: 0.9}, {Subset: []int{1}, Reward: 0.5}},
		QueueDepths:  []int{1, 0, 3},
		BusyUntil:    []time.Duration{time.Millisecond, 0, 5 * time.Millisecond},
		Blocked:      []int{1},
		Retries:      1, Hedges: 2, Timeouts: 1,
		Outcome: OutcomeDegraded, Served: []int{0},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out DecisionTrace
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", out) != fmt.Sprintf("%+v", in) {
		t.Errorf("round trip mismatch:\n in %+v\nout %+v", in, out)
	}
}

func TestDecisionTraceRecord(t *testing.T) {
	tr := DecisionTrace{
		ID: 9, SampleID: 5, Queued: 10 * time.Millisecond,
		Resolved: 60 * time.Millisecond, Deadline: 100 * time.Millisecond,
		Outcome: OutcomeDegraded, Served: []int{0, 2},
	}
	rec := tr.Record()
	if rec.QueryID != 9 || rec.SampleID != 5 || rec.Missed || !rec.Degraded {
		t.Errorf("record = %+v", rec)
	}
	if rec.Latency() != 50*time.Millisecond {
		t.Errorf("latency = %v", rec.Latency())
	}
	if got := rec.Subset.Models(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("subset = %v", got)
	}
	rej := DecisionTrace{Outcome: OutcomeRejected}.Record()
	if !rej.Missed || !rej.Rejected || rej.Done != 0 {
		t.Errorf("rejected record = %+v", rej)
	}
	miss := DecisionTrace{Outcome: OutcomeMissed}.Record()
	if !miss.Missed || miss.Rejected {
		t.Errorf("missed record = %+v", miss)
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink, closeFn := NewJSONLSink(&buf)
	for i := 1; i <= 3; i++ {
		sink(DecisionTrace{
			ID: uint64(i), SampleID: i, Queued: time.Duration(i) * time.Millisecond,
			Resolved: time.Duration(i+5) * time.Millisecond,
			Deadline: 100 * time.Millisecond,
			Outcome:  OutcomeServed, Served: []int{0},
		})
	}
	dropped, err := closeFn()
	if err != nil || dropped != 0 {
		t.Fatalf("close: dropped=%d err=%v", dropped, err)
	}
	recs, err := metrics.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, r := range recs {
		if r.QueryID != i+1 || r.Missed {
			t.Errorf("record %d = %+v", i, r)
		}
	}
	// Sends after close are ignored, and a second close is idempotent.
	sink(DecisionTrace{ID: 99})
	if d, err := closeFn(); err != nil || d != 0 {
		t.Errorf("second close: %d %v", d, err)
	}
}
