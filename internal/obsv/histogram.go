// Package obsv is the request-level observability layer of the serving
// runtime: a lock-cheap fixed-bucket latency histogram (log-spaced
// buckets, percentile queries, mergeable snapshots) and per-request
// decision traces collected in a bounded drop-oldest ring buffer. The
// serving runtime records into an Observer on its hot path; HTTP handlers
// and sinks read snapshots. Everything is allocation-free on the record
// path and safe for concurrent use.
package obsv

import (
	"sort"
	"sync/atomic"
	"time"
)

// Default histogram geometry: log-spaced buckets from 100µs growing by
// 1.5x per bucket. 36 buckets reach ~145s before the overflow bucket, so
// both compressed-timescale tests and realistic serving latencies land in
// interpolatable buckets.
const (
	defaultHistBuckets = 36
	defaultHistGrowth  = 1.5
)

var defaultHistMin = 100 * time.Microsecond

// Histogram is a fixed-bucket latency histogram. Observe is lock-free
// (two atomic adds), so it can sit on the serving runtime's hot path;
// readers take consistent-enough Snapshots for monitoring. Buckets are
// immutable after construction.
type Histogram struct {
	// bounds[i] is bucket i's inclusive upper bound; counts has one extra
	// overflow bucket for observations above the last bound.
	bounds []time.Duration
	counts []atomic.Uint64
	sum    atomic.Int64 // total observed nanoseconds
}

// NewHistogram builds a histogram with the default log-spaced buckets.
func NewHistogram() *Histogram {
	bounds := make([]time.Duration, defaultHistBuckets)
	b := float64(defaultHistMin)
	for i := range bounds {
		bounds[i] = time.Duration(b)
		b *= defaultHistGrowth
	}
	return NewHistogramBounds(bounds)
}

// NewHistogramBounds builds a histogram over explicit ascending bucket
// upper bounds (plus an implicit overflow bucket).
func NewHistogramBounds(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		panic("obsv: histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// bucket returns the index of the bucket d falls into: the first bucket
// whose upper bound is >= d, or the overflow bucket.
func (h *Histogram) bucket(d time.Duration) int {
	return sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= d })
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[h.bucket(d)].Add(1)
	h.sum.Add(int64(d))
}

// Snapshot captures the histogram's current state. Count is derived from
// the bucket counts so the snapshot is internally consistent (the sum of
// Counts always equals Count) even while writers race the read.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable, safe to share
		Counts: make([]uint64, len(h.counts)),
		Sum:    time.Duration(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram: per-bucket
// counts over shared immutable bounds, plus the derived total count and
// the sum of observed durations.
type HistogramSnapshot struct {
	Bounds []time.Duration
	Counts []uint64 // len(Bounds)+1: the last entry is the overflow bucket
	Count  uint64
	Sum    time.Duration
}

// Merge returns a new snapshot combining s and o bucket-wise. Both must
// share the same bucket geometry (true for all default histograms).
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) != len(o.Bounds) {
		panic("obsv: merging histograms with different bucket geometry")
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			panic("obsv: merging histograms with different bucket geometry")
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Mean returns the mean observed latency (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates the q-th quantile (q in [0,1]) by linear
// interpolation inside the bucket the target rank falls into; resolution
// is therefore one bucket width. Returns 0 for an empty snapshot. Samples
// in the overflow bucket report the last finite bound.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	if target < 1 {
		target = 1
	}
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next < target {
			cum = next
			continue
		}
		if i == len(s.Counts)-1 {
			// Overflow bucket: no finite upper bound to interpolate to.
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := time.Duration(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		frac := (target - cum) / float64(c)
		return lo + time.Duration(frac*float64(hi-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}
