package obsv

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Config opts a serving runtime into request-level observability. The
// zero value disables every hook: no traces, no histograms, and a nil
// Observer, leaving the runtime's hot path untouched.
type Config struct {
	// TraceBuffer is the decision-trace ring capacity. > 0 enables
	// observability; each resolved request appends one trace, and once the
	// ring is full the oldest trace is dropped.
	TraceBuffer int
	// Sink, when non-nil, additionally receives every finalized trace. It
	// is called synchronously on the runtime's goroutines and must not
	// block; NewJSONLSink returns a buffered asynchronous file sink.
	Sink func(DecisionTrace)
}

// Enabled reports whether the config turns observability on.
func (c Config) Enabled() bool { return c.TraceBuffer > 0 || c.Sink != nil }

// Observer collects decision traces and per-outcome latency histograms
// for one serving runtime. All methods are safe for concurrent use; a nil
// Observer is a valid no-op receiver for Done, so the runtime can call it
// unconditionally.
type Observer struct {
	ring *Ring
	sink func(DecisionTrace)
	// lat[outcome] is the end-to-end latency histogram for that outcome
	// (virtual time, like Result.Latency). Rejections resolve in
	// microseconds and are tracked only as counters, not latencies.
	lat map[string]*Histogram
}

// NewObserver builds an observer, or returns nil when cfg is disabled.
func NewObserver(cfg Config) *Observer {
	if !cfg.Enabled() {
		return nil
	}
	return &Observer{
		ring: NewRing(cfg.TraceBuffer),
		sink: cfg.Sink,
		//schemble:outcome-ok rejections resolve in microseconds and are tracked as counters only, never as latencies
		lat: map[string]*Histogram{
			OutcomeServed:   NewHistogram(),
			OutcomeDegraded: NewHistogram(),
			OutcomeMissed:   NewHistogram(),
		},
	}
}

// Done records one finalized trace: ring append, latency observation, and
// sink delivery. Safe on a nil receiver.
func (o *Observer) Done(t DecisionTrace) {
	if o == nil {
		return
	}
	o.ring.Append(t)
	if h := o.lat[t.Outcome]; h != nil {
		h.Observe(t.Latency)
	}
	if o.sink != nil {
		o.sink(t)
	}
}

// Last returns up to n of the most recent decision traces in
// chronological order. Safe on a nil receiver (returns nil).
func (o *Observer) Last(n int) []DecisionTrace {
	if o == nil {
		return nil
	}
	return o.ring.Last(n)
}

// Snapshot is a point-in-time view of the observer for metrics export.
type Snapshot struct {
	// TracesTotal counts every trace ever recorded; TracesDropped counts
	// those no longer in the ring (overwritten). Both are exact.
	TracesTotal   uint64
	TracesDropped uint64
	// Latency maps outcome label -> latency histogram snapshot (served,
	// degraded, missed).
	Latency map[string]HistogramSnapshot
}

// Snapshot captures counters and histograms. Safe on a nil receiver
// (returns the zero Snapshot).
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	s := Snapshot{Latency: make(map[string]HistogramSnapshot, len(o.lat))}
	s.TracesTotal, s.TracesDropped = o.ring.Counters()
	for outcome, h := range o.lat {
		s.Latency[outcome] = h.Snapshot()
	}
	return s
}

// jsonlSinkDepth bounds the asynchronous sink's queue; when the writer
// goroutine falls behind, new traces are dropped rather than blocking the
// serving runtime.
const jsonlSinkDepth = 1024

// NewJSONLSink streams finalized traces to w as serving-log records, one
// JSON object per line — the metrics JSONL format cmd/schemble-analyze
// consumes. Writing happens on a dedicated goroutine behind a bounded
// queue, so the returned sink never blocks the caller; traces arriving
// while the queue is full are dropped. closeFn flushes and stops the
// writer (further sink calls are ignored) and reports how many traces
// were dropped.
func NewJSONLSink(w io.Writer) (sink func(DecisionTrace), closeFn func() (dropped uint64, err error)) {
	ch := make(chan DecisionTrace, jsonlSinkDepth)
	done := make(chan error, 1)
	var mu sync.Mutex
	var closed bool
	var dropped uint64

	go func() {
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		var firstErr error
		for t := range ch {
			if firstErr != nil {
				continue
			}
			if err := enc.Encode(t.Record()); err != nil {
				firstErr = err
			}
		}
		if err := bw.Flush(); firstErr == nil {
			firstErr = err
		}
		done <- firstErr
	}()

	sink = func(t DecisionTrace) {
		mu.Lock()
		defer mu.Unlock()
		if closed {
			return
		}
		select {
		case ch <- t:
		default:
			dropped++
		}
	}
	closeFn = func() (uint64, error) {
		mu.Lock()
		if closed {
			mu.Unlock()
			return dropped, nil
		}
		closed = true
		mu.Unlock()
		close(ch)
		err := <-done
		return dropped, err
	}
	return sink, closeFn
}

// virtual is a tiny helper shared by runtimes converting wall durations
// to virtual time: wall / scale.
func virtual(wall time.Duration, scale float64) time.Duration {
	return time.Duration(float64(wall) / scale)
}

var _ = virtual // referenced by serve; kept here for reuse across runtimes
