package obsv

import (
	"encoding/json"
	"sync"
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/metrics"
)

// Outcome labels for DecisionTrace.Outcome, matching the serving runtime's
// Result taxonomy.
const (
	OutcomeServed   = "served"
	OutcomeDegraded = "degraded"
	OutcomeMissed   = "missed"
	OutcomeRejected = "rejected"
)

// Outcomes lists every outcome label, in severity order.
var Outcomes = []string{OutcomeServed, OutcomeDegraded, OutcomeMissed, OutcomeRejected}

// Cache-outcome labels for DecisionTrace.Cache, matching the result
// cache's lookup taxonomy (internal/rcache): a hit is served from the
// cache without dispatch, a miss runs the ensemble and fills on a clean
// resolve, and a bypass is a query the difficulty gate (or an unkeyable
// feature vector) excluded from caching entirely. Dispatch sites over
// this family are checked exhaustively by the exhaustiveoutcome
// analyzer, exactly like the Outcome* family.
const (
	CacheOutcomeHit    = "hit"
	CacheOutcomeMiss   = "miss"
	CacheOutcomeBypass = "bypass"
)

// CacheOutcomes lists every cache-outcome label.
var CacheOutcomes = []string{CacheOutcomeHit, CacheOutcomeMiss, CacheOutcomeBypass}

// Alternative is one candidate subset the scheduler weighed for a query,
// with its profiled reward at the query's discrepancy score.
type Alternative struct {
	Subset []int   `json:"subset"`
	Reward float64 `json:"reward"`
}

// DecisionTrace is one request's structured decision record: why it got
// the subset it got, what the runtime looked like at decision time, and
// how it resolved. All durations are virtual (unscaled) time; phase
// timestamps are measured since server start. Zero phase values mean the
// request never reached that phase (e.g. a rejected request is never
// committed).
type DecisionTrace struct {
	// ID is the submission sequence number (1-based).
	ID       uint64
	SampleID int
	CameraID int
	// Class is the request's class name (empty for classless configs);
	// Ladder is the degradation-ladder rung the controller sat on when the
	// request was admitted (0 = full service).
	Class  string
	Ladder int
	// Score is the predicted discrepancy score the scheduler planned with.
	Score float64

	// Phase timestamps: queued (arrival) -> scored -> committed ->
	// resolved.
	Queued    time.Duration
	Scored    time.Duration
	Committed time.Duration
	Resolved  time.Duration
	// Deadline is the absolute virtual deadline.
	Deadline time.Duration
	// Latency is Resolved - Queued (set for every outcome, unlike
	// Result.Latency which is zero for misses).
	Latency time.Duration

	// Decision context captured when the coordinator committed the query.
	Subset       []int         // chosen subset (model indices)
	Alternatives []Alternative // top candidate subsets by profiled reward
	QueueDepths  []int         // per-model task-queue occupancy
	// Forming counts tasks per model that replicas had pulled into forming
	// batches at commit time (they have left the queue but not finished).
	Forming []int
	// BusyUntil is each model's earliest replica availability — the
	// capacity signal the scheduler's feasibility checks keyed on.
	BusyUntil []time.Duration
	Blocked   []int // models masked by open breakers / crash windows
	// Drift lists the adaptation layer's active drift signals at commit
	// time ("latency:<k>" per drifting model, "score" for difficulty
	// drift); nil when adaptation is off or no drift is active,
	// preserving the pre-adaptation trace wire format verbatim.
	Drift []string

	// Mitigation events observed while in flight.
	Retries  int
	Hedges   int
	Timeouts int

	// Outcome is one of the Outcome* labels; Served lists the models whose
	// outputs were actually aggregated (a strict subset of Subset for
	// degraded results, empty for misses and rejections).
	Outcome string
	Served  []int
	// Cache is the result-cache outcome for this request — one of the
	// CacheOutcome* labels, or empty when the runtime has no cache
	// configured (preserving the pre-cache trace wire format verbatim).
	Cache string
}

// traceJSON is the wire form of a DecisionTrace: durations in
// microseconds, matching the metrics JSONL convention.
type traceJSON struct {
	ID           uint64        `json:"id"`
	SampleID     int           `json:"sample_id"`
	CameraID     int           `json:"camera_id,omitempty"`
	Class        string        `json:"class,omitempty"`
	Ladder       int           `json:"ladder,omitempty"`
	Score        float64       `json:"score"`
	QueuedUS     int64         `json:"queued_us"`
	ScoredUS     int64         `json:"scored_us,omitempty"`
	CommittedUS  int64         `json:"committed_us,omitempty"`
	ResolvedUS   int64         `json:"resolved_us"`
	DeadlineUS   int64         `json:"deadline_us"`
	LatencyUS    int64         `json:"latency_us"`
	Subset       []int         `json:"subset,omitempty"`
	Alternatives []Alternative `json:"alternatives,omitempty"`
	QueueDepths  []int         `json:"queue_depths,omitempty"`
	Forming      []int         `json:"forming,omitempty"`
	BusyUntilUS  []int64       `json:"busy_until_us,omitempty"`
	Blocked      []int         `json:"blocked,omitempty"`
	Drift        []string      `json:"drift,omitempty"`
	Retries      int           `json:"retries,omitempty"`
	Hedges       int           `json:"hedges,omitempty"`
	Timeouts     int           `json:"timeouts,omitempty"`
	Outcome      string        `json:"outcome"`
	Served       []int         `json:"served,omitempty"`
	Cache        string        `json:"cache,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t DecisionTrace) MarshalJSON() ([]byte, error) {
	w := traceJSON{
		ID:           t.ID,
		SampleID:     t.SampleID,
		CameraID:     t.CameraID,
		Class:        t.Class,
		Ladder:       t.Ladder,
		Score:        t.Score,
		QueuedUS:     t.Queued.Microseconds(),
		ScoredUS:     t.Scored.Microseconds(),
		CommittedUS:  t.Committed.Microseconds(),
		ResolvedUS:   t.Resolved.Microseconds(),
		DeadlineUS:   t.Deadline.Microseconds(),
		LatencyUS:    t.Latency.Microseconds(),
		Subset:       t.Subset,
		Alternatives: t.Alternatives,
		QueueDepths:  t.QueueDepths,
		Forming:      t.Forming,
		Blocked:      t.Blocked,
		Drift:        t.Drift,
		Retries:      t.Retries,
		Hedges:       t.Hedges,
		Timeouts:     t.Timeouts,
		Outcome:      t.Outcome,
		Served:       t.Served,
		Cache:        t.Cache,
	}
	if t.BusyUntil != nil {
		w.BusyUntilUS = make([]int64, len(t.BusyUntil))
		for i, d := range t.BusyUntil {
			w.BusyUntilUS[i] = d.Microseconds()
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *DecisionTrace) UnmarshalJSON(data []byte) error {
	var w traceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*t = DecisionTrace{
		ID:           w.ID,
		SampleID:     w.SampleID,
		CameraID:     w.CameraID,
		Class:        w.Class,
		Ladder:       w.Ladder,
		Score:        w.Score,
		Queued:       time.Duration(w.QueuedUS) * time.Microsecond,
		Scored:       time.Duration(w.ScoredUS) * time.Microsecond,
		Committed:    time.Duration(w.CommittedUS) * time.Microsecond,
		Resolved:     time.Duration(w.ResolvedUS) * time.Microsecond,
		Deadline:     time.Duration(w.DeadlineUS) * time.Microsecond,
		Latency:      time.Duration(w.LatencyUS) * time.Microsecond,
		Subset:       w.Subset,
		Alternatives: w.Alternatives,
		QueueDepths:  w.QueueDepths,
		Forming:      w.Forming,
		Blocked:      w.Blocked,
		Drift:        w.Drift,
		Retries:      w.Retries,
		Hedges:       w.Hedges,
		Timeouts:     w.Timeouts,
		Outcome:      w.Outcome,
		Served:       w.Served,
		Cache:        w.Cache,
	}
	if w.BusyUntilUS != nil {
		t.BusyUntil = make([]time.Duration, len(w.BusyUntilUS))
		for i, us := range w.BusyUntilUS {
			t.BusyUntil[i] = time.Duration(us) * time.Microsecond
		}
	}
	return nil
}

// Record converts the trace to the serving-log Record format (the JSONL
// schema cmd/schemble-analyze consumes). Agreement is zero: the server
// does not score outputs against the full-ensemble reference online.
func (t DecisionTrace) Record() metrics.Record {
	rec := metrics.Record{
		QueryID:  int(t.ID),
		SampleID: t.SampleID,
		CameraID: t.CameraID,
		Class:    t.Class,
		Arrival:  t.Queued,
		Deadline: t.Deadline,
		Subset:   ensemble.Empty,
	}
	// Exhaustive over the taxonomy (enforced by the exhaustiveoutcome
	// analyzer): a new outcome must decide its Record flags here.
	switch t.Outcome {
	case OutcomeServed:
	case OutcomeDegraded:
		rec.Degraded = true
	case OutcomeMissed:
		rec.Missed = true
	case OutcomeRejected:
		rec.Missed = true
		rec.Rejected = true
	}
	if !rec.Missed {
		rec.Done = t.Resolved
	}
	for _, k := range t.Served {
		rec.Subset = rec.Subset.With(k)
	}
	return rec
}

// Ring is a bounded drop-oldest buffer of decision traces. Append takes a
// short mutex and never blocks beyond it, so it is safe to call from the
// serving runtime's event loop; once full, each append overwrites (drops)
// the oldest trace. Counters are exact regardless of drops.
type Ring struct {
	mu sync.Mutex
	//schemble:guardedby mu trace buffer
	buf []DecisionTrace
	//schemble:guardedby mu write cursor
	next int // write position once the buffer is full
	//schemble:guardedby mu append counter
	total uint64
	//schemble:guardedby mu drop counter
	dropped uint64
}

// NewRing builds a ring with the given capacity. Capacity <= 0 stores
// nothing but still counts appends (every append drops).
func NewRing(capacity int) *Ring {
	if capacity < 0 {
		capacity = 0
	}
	return &Ring{buf: make([]DecisionTrace, 0, capacity)}
}

// Append records one trace, dropping the oldest when full.
func (r *Ring) Append(t DecisionTrace) {
	r.mu.Lock()
	r.total++
	switch {
	case cap(r.buf) == 0:
		r.dropped++
	case len(r.buf) < cap(r.buf):
		r.buf = append(r.buf, t)
	default:
		r.buf[r.next] = t
		r.next = (r.next + 1) % cap(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Last returns up to n of the most recent traces in chronological order
// (oldest of the returned slice first).
func (r *Ring) Last(n int) []DecisionTrace {
	if n <= 0 {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > len(r.buf) {
		n = len(r.buf)
	}
	out := make([]DecisionTrace, n)
	// r.next is the oldest element once the buffer wrapped; before that
	// the buffer is already chronological starting at 0.
	start := 0
	if len(r.buf) == cap(r.buf) {
		start = r.next
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+len(r.buf)-n+i)%len(r.buf)]
	}
	return out
}

// Len returns how many traces are currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Counters returns the exact number of traces ever appended and how many
// were dropped (overwritten or unbuffered).
func (r *Ring) Counters() (total, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.dropped
}
