package trace

import (
	"sort"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

// ClassMix is one request class's share of a multi-class trace.
type ClassMix struct {
	// Name labels generated arrivals (Arrival.Class).
	Name string
	// Share is the class's fraction of background traffic; shares are
	// normalized, so they need not sum to 1.
	Share float64
	// Deadline is the class's relative deadline.
	Deadline time.Duration
}

// FlashCrowdConfig configures a flash-crowd trace: a steady multi-class
// background rate with a single crowd event — a ramp up to PeakFactor
// times the background rate, a hold at the peak, and a ramp back down —
// whose extra arrivals all carry CrowdClass (a flash crowd is
// characteristically one kind of traffic, e.g. anonymous read queries
// after a link goes viral, not a uniform scale-up of every tenant).
type FlashCrowdConfig struct {
	// BackgroundRate is the steady aggregate arrival rate (queries per
	// virtual second), split across Classes by Share.
	BackgroundRate float64
	// Classes is the background class mixture; must be non-empty with
	// positive shares and deadlines.
	Classes []ClassMix
	// CrowdClass labels the crowd's extra arrivals; empty means the last
	// class in Classes (conventionally the lowest-priority one).
	CrowdClass string
	// PeakFactor is the crowd's peak aggregate rate as a multiple of
	// BackgroundRate (default 5): at the peak, extra crowd arrivals land
	// at (PeakFactor-1)*BackgroundRate on top of the background.
	PeakFactor float64
	// CrowdStart, RampUp, Hold, RampDown shape the crowd envelope:
	// nothing before CrowdStart, a linear ramp to the peak over RampUp, a
	// plateau for Hold, and a linear decay over RampDown. Defaults:
	// CrowdStart = Horizon/5, RampUp = RampDown = Horizon/10,
	// Hold = Horizon/4.
	CrowdStart, RampUp, Hold, RampDown time.Duration
	// Horizon is the trace length (required).
	Horizon time.Duration
	// Samples is the pool drawn from (uniformly with replacement).
	Samples []*dataset.Sample
	Seed    uint64
}

// crowdEnvelope returns the crowd's rate multiplier in [0,1] at time at:
// 0 outside the event, 1 at the plateau, linear on the ramps.
func crowdEnvelope(at, start, up, hold, down time.Duration) float64 {
	switch {
	case at < start:
		return 0
	case at < start+up:
		return float64(at-start) / float64(up)
	case at < start+up+hold:
		return 1
	case at < start+up+hold+down:
		return 1 - float64(at-start-up-hold)/float64(down)
	}
	return 0
}

// poissonStream appends a homogeneous Poisson stream of the given rate
// over [0, horizon) to out, labeling arrivals with class/deadline.
func poissonStream(out []Arrival, src *rng.Source, rate float64, horizon time.Duration,
	samples []*dataset.Sample, class string, deadline time.Duration) []Arrival {
	if rate <= 0 {
		return out
	}
	var now time.Duration
	for {
		now += time.Duration(src.Exponential(rate) * float64(time.Second))
		if now >= horizon {
			return out
		}
		out = append(out, Arrival{
			SampleIdx: src.Intn(len(samples)),
			At:        now,
			Deadline:  now + deadline,
			Class:     class,
		})
	}
}

// sortArrivals orders arrivals by time, ties broken by class then sample
// index, so merged multi-stream traces are deterministic.
func sortArrivals(a []Arrival) {
	sort.SliceStable(a, func(i, j int) bool {
		if a[i].At != a[j].At {
			return a[i].At < a[j].At
		}
		if a[i].Class != a[j].Class {
			return a[i].Class < a[j].Class
		}
		return a[i].SampleIdx < a[j].SampleIdx
	})
}

// validateMix panics unless every class has a name, positive share and
// positive deadline; returns the share sum.
func validateMix(classes []ClassMix) float64 {
	if len(classes) == 0 {
		panic("trace: no classes")
	}
	sum := 0.0
	for _, c := range classes {
		if c.Name == "" || c.Share <= 0 || c.Deadline <= 0 {
			panic("trace: class needs a name, positive Share and Deadline")
		}
		sum += c.Share
	}
	return sum
}

// FlashCrowd generates the flash-crowd trace. The crowd's extra arrivals
// are produced by thinning a peak-rate Poisson stream against the
// envelope, so the generated process is an exact inhomogeneous Poisson
// process with the ramp/hold/ramp intensity. Deterministic per
// (config, seed).
func FlashCrowd(cfg FlashCrowdConfig) *Trace {
	if cfg.BackgroundRate <= 0 || cfg.Horizon <= 0 || len(cfg.Samples) == 0 {
		panic("trace: bad FlashCrowd config")
	}
	sum := validateMix(cfg.Classes)
	if cfg.PeakFactor <= 1 {
		cfg.PeakFactor = 5
	}
	if cfg.CrowdStart <= 0 {
		cfg.CrowdStart = cfg.Horizon / 5
	}
	if cfg.RampUp <= 0 {
		cfg.RampUp = cfg.Horizon / 10
	}
	if cfg.Hold <= 0 {
		cfg.Hold = cfg.Horizon / 4
	}
	if cfg.RampDown <= 0 {
		cfg.RampDown = cfg.Horizon / 10
	}
	crowdClass := cfg.CrowdClass
	crowdDeadline := cfg.Classes[len(cfg.Classes)-1].Deadline
	if crowdClass == "" {
		crowdClass = cfg.Classes[len(cfg.Classes)-1].Name
	} else {
		for _, c := range cfg.Classes {
			if c.Name == crowdClass {
				crowdDeadline = c.Deadline
			}
		}
	}

	src := rng.New(cfg.Seed ^ 0xf1a5)
	var arrivals []Arrival
	// Steady background, one independent stream per class.
	for _, c := range cfg.Classes {
		arrivals = poissonStream(arrivals, src, cfg.BackgroundRate*c.Share/sum,
			cfg.Horizon, cfg.Samples, c.Name, c.Deadline)
	}
	// Crowd extra: thin a peak-rate stream by the envelope.
	peakExtra := (cfg.PeakFactor - 1) * cfg.BackgroundRate
	var now time.Duration
	for {
		now += time.Duration(src.Exponential(peakExtra) * float64(time.Second))
		if now >= cfg.Horizon {
			break
		}
		keep := src.Float64() < crowdEnvelope(now, cfg.CrowdStart, cfg.RampUp, cfg.Hold, cfg.RampDown)
		if !keep {
			continue
		}
		arrivals = append(arrivals, Arrival{
			SampleIdx: src.Intn(len(cfg.Samples)),
			At:        now,
			Deadline:  now + crowdDeadline,
			Class:     crowdClass,
		})
	}
	sortArrivals(arrivals)
	return &Trace{Arrivals: arrivals, Horizon: cfg.Horizon}
}

// MultiClassBurstConfig configures a correlated multi-class burst trace:
// steady per-class background traffic plus periodic bursts that hit every
// class at the same instant (the correlated-failure shape — a shared
// upstream hiccup releases queued traffic from all tenants at once,
// unlike FlashCrowd's single-class crowd).
type MultiClassBurstConfig struct {
	// BackgroundRate is the steady aggregate rate, split by Share.
	BackgroundRate float64
	// Classes is the class mixture; burst sizes are split by Share too.
	Classes []ClassMix
	// BurstSize is the total number of simultaneous arrivals per burst,
	// distributed across classes proportionally to Share (largest
	// remainders rounding, so every burst sums exactly to BurstSize).
	BurstSize int
	// Period is the burst spacing (required).
	Period time.Duration
	// Jitter perturbs each burst instant uniformly in ±Jitter/2 (default
	// 0: perfectly periodic).
	Jitter time.Duration
	// Horizon is the trace length (required).
	Horizon time.Duration
	Samples []*dataset.Sample
	Seed    uint64
}

// MultiClassBurst generates the correlated burst trace. Deterministic per
// (config, seed).
func MultiClassBurst(cfg MultiClassBurstConfig) *Trace {
	if cfg.BackgroundRate <= 0 || cfg.Horizon <= 0 || cfg.Period <= 0 ||
		cfg.BurstSize <= 0 || len(cfg.Samples) == 0 {
		panic("trace: bad MultiClassBurst config")
	}
	sum := validateMix(cfg.Classes)
	src := rng.New(cfg.Seed ^ 0xb057)
	var arrivals []Arrival
	for _, c := range cfg.Classes {
		arrivals = poissonStream(arrivals, src, cfg.BackgroundRate*c.Share/sum,
			cfg.Horizon, cfg.Samples, c.Name, c.Deadline)
	}
	// Split BurstSize across classes by share with largest-remainder
	// rounding (ties to the earlier class), so per-burst counts are fixed
	// and sum exactly to BurstSize.
	counts := make([]int, len(cfg.Classes))
	type rem struct {
		i    int
		frac float64
	}
	rems := make([]rem, len(cfg.Classes))
	total := 0
	for i, c := range cfg.Classes {
		exact := float64(cfg.BurstSize) * c.Share / sum
		counts[i] = int(exact)
		rems[i] = rem{i, exact - float64(counts[i])}
		total += counts[i]
	}
	sort.SliceStable(rems, func(a, b int) bool { return rems[a].frac > rems[b].frac })
	for k := 0; total < cfg.BurstSize; k++ {
		counts[rems[k%len(rems)].i]++
		total++
	}
	for at := cfg.Period; at < cfg.Horizon; at += cfg.Period {
		burstAt := at
		if cfg.Jitter > 0 {
			burstAt += time.Duration(src.Uniform(-float64(cfg.Jitter)/2, float64(cfg.Jitter)/2))
			if burstAt < 0 {
				burstAt = 0
			}
			if burstAt >= cfg.Horizon {
				continue
			}
		}
		for i, c := range cfg.Classes {
			for n := 0; n < counts[i]; n++ {
				arrivals = append(arrivals, Arrival{
					SampleIdx: src.Intn(len(cfg.Samples)),
					At:        burstAt,
					Deadline:  burstAt + c.Deadline,
					Class:     c.Name,
				})
			}
		}
	}
	sortArrivals(arrivals)
	return &Trace{Arrivals: arrivals, Horizon: cfg.Horizon}
}
