package trace

import (
	"math"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

// ZipfianConfig configures a repeat-heavy trace whose sample popularity
// follows a Zipf law: rank r (after a seeded shuffle of the pool) is
// drawn with probability proportional to 1/(r+V)^S. This is the
// millions-of-users shape the result cache is built for — a small head
// of samples dominates traffic while the tail stays cold.
type ZipfianConfig struct {
	// RatePerSec is the mean arrival rate.
	RatePerSec float64
	// Spacing, when positive, replaces the Poisson gaps with a fixed
	// inter-arrival interval — the deterministic pacing the sim<->serve
	// equivalence tests need.
	Spacing time.Duration
	// N is the number of arrivals to generate.
	N int
	// Samples is the pool; popularity ranks are assigned by a seeded
	// permutation of it.
	Samples []*dataset.Sample
	// Deadline assigns relative deadlines.
	Deadline DeadlinePolicy
	// S is the Zipf exponent (skew; default 1.1 — higher concentrates
	// more traffic on the head). V offsets the rank (default 1).
	S    float64
	V    float64
	Seed uint64
}

// Zipfian generates a Zipf-popularity trace: repeated queries over a
// shuffled rank order, with Poisson or fixed-interval arrival times.
func Zipfian(cfg ZipfianConfig) *Trace {
	if (cfg.RatePerSec <= 0 && cfg.Spacing <= 0) || cfg.N <= 0 || len(cfg.Samples) == 0 {
		panic("trace: bad Zipfian config")
	}
	if cfg.S <= 0 {
		cfg.S = 1.1
	}
	if cfg.V <= 0 {
		cfg.V = 1
	}
	src := rng.New(cfg.Seed ^ 0x21bf)
	// rank[r] is the sample index holding popularity rank r; cum[r] is the
	// cumulative (unnormalized) Zipf mass through rank r.
	rank := src.Perm(len(cfg.Samples))
	cum := make([]float64, len(rank))
	total := 0.0
	for r := range rank {
		total += 1 / math.Pow(float64(r)+cfg.V, cfg.S)
		cum[r] = total
	}
	t := &Trace{}
	var now time.Duration
	for i := 0; i < cfg.N; i++ {
		if cfg.Spacing > 0 {
			now += cfg.Spacing
		} else {
			now += time.Duration(src.Exponential(cfg.RatePerSec) * float64(time.Second))
		}
		// Invert the cumulative mass by linear scan: the head ranks carry
		// almost all of it, so the expected scan length is short.
		u := src.Float64() * total
		r := len(cum) - 1
		for j, c := range cum {
			if u <= c {
				r = j
				break
			}
		}
		idx := rank[r]
		t.Arrivals = append(t.Arrivals, Arrival{
			SampleIdx: idx,
			At:        now,
			Deadline:  now + cfg.Deadline.Relative(cfg.Samples[idx], src),
		})
	}
	t.Horizon = now
	return t
}
