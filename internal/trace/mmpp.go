package trace

import (
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

// MMPPConfig configures a Markov-modulated Poisson process trace: arrivals
// follow a Poisson process whose rate switches between states of a
// continuous-time Markov chain. MMPP captures the abrupt load shifts of
// real query streams better than a fixed-rate Poisson process and is the
// standard burstiness model in the serving literature; the abl-traffic
// study uses it to check that Schemble's advantage is not an artifact of
// the diurnal trace's specific shape.
type MMPPConfig struct {
	// Rates are the per-state arrival rates (queries/second).
	Rates []float64
	// MeanHold is the mean sojourn time in each state; defaults to 2s for
	// every state.
	MeanHold []time.Duration
	// N is the number of arrivals to generate.
	N int
	// Samples is the pool drawn from.
	Samples []*dataset.Sample
	// Deadline assigns relative deadlines.
	Deadline DeadlinePolicy
	Seed     uint64
}

// MMPP generates a Markov-modulated Poisson trace. State transitions are
// uniform over the other states.
func MMPP(cfg MMPPConfig) *Trace {
	if len(cfg.Rates) == 0 || cfg.N <= 0 || len(cfg.Samples) == 0 {
		panic("trace: bad MMPP config")
	}
	hold := cfg.MeanHold
	if hold == nil {
		hold = make([]time.Duration, len(cfg.Rates))
		for i := range hold {
			hold[i] = 2 * time.Second
		}
	}
	if len(hold) != len(cfg.Rates) {
		panic("trace: MeanHold length mismatch")
	}
	src := rng.New(cfg.Seed ^ 0x3333)
	t := &Trace{}
	state := 0
	var now time.Duration
	stateEnd := time.Duration(src.Exponential(1/hold[state].Seconds()) * float64(time.Second))
	for len(t.Arrivals) < cfg.N {
		gap := time.Duration(src.Exponential(cfg.Rates[state]) * float64(time.Second))
		next := now + gap
		// Cross state boundaries before the next arrival lands.
		for next >= stateEnd {
			// Jump to a uniformly random other state (or stay when there
			// is only one).
			if len(cfg.Rates) > 1 {
				j := src.Intn(len(cfg.Rates) - 1)
				if j >= state {
					j++
				}
				state = j
			}
			// Restart the arrival gap from the boundary under the new
			// rate (memorylessness makes this exact).
			now = stateEnd
			stateEnd = now + time.Duration(src.Exponential(1/hold[state].Seconds())*float64(time.Second))
			gap = time.Duration(src.Exponential(cfg.Rates[state]) * float64(time.Second))
			next = now + gap
		}
		now = next
		idx := src.Intn(len(cfg.Samples))
		t.Arrivals = append(t.Arrivals, Arrival{
			SampleIdx: idx,
			At:        now,
			Deadline:  now + cfg.Deadline.Relative(cfg.Samples[idx], src),
		})
	}
	t.Horizon = now
	return t
}

// SpikeConfig configures a worst-case spike trace: steady background
// traffic interrupted by instantaneous bursts of Burst queries arriving
// simultaneously every Period.
type SpikeConfig struct {
	BackgroundRate float64
	Burst          int
	Period         time.Duration
	N              int
	Samples        []*dataset.Sample
	Deadline       DeadlinePolicy
	Seed           uint64
}

// Spikes generates the spike trace.
func Spikes(cfg SpikeConfig) *Trace {
	if cfg.N <= 0 || len(cfg.Samples) == 0 || cfg.Period <= 0 {
		panic("trace: bad Spike config")
	}
	src := rng.New(cfg.Seed ^ 0x5b1c)
	t := &Trace{}
	var now time.Duration
	nextSpike := cfg.Period
	add := func(at time.Duration) {
		idx := src.Intn(len(cfg.Samples))
		t.Arrivals = append(t.Arrivals, Arrival{
			SampleIdx: idx,
			At:        at,
			Deadline:  at + cfg.Deadline.Relative(cfg.Samples[idx], src),
		})
	}
	for len(t.Arrivals) < cfg.N {
		gap := time.Duration(src.Exponential(cfg.BackgroundRate) * float64(time.Second))
		next := now + gap
		if next >= nextSpike {
			for i := 0; i < cfg.Burst && len(t.Arrivals) < cfg.N; i++ {
				add(nextSpike)
			}
			now = nextSpike
			nextSpike += cfg.Period
			continue
		}
		now = next
		add(now)
	}
	t.Horizon = now
	return t
}
