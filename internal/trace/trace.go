// Package trace generates query arrival traces: homogeneous Poisson traffic
// (vehicle counting, image retrieval) and the diurnal bursty one-day trace
// standing in for the paper's recorded bank Q&A workload (light traffic
// overnight, a ~30x burst through business hours — the Fig. 1a shape).
// Deadline assignment policies (constant; per-camera uniform) live here too.
package trace

import (
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

// Arrival is one query arrival: which sample arrives, when, and its
// absolute deadline. Class optionally tags the arrival with a request
// class name (empty = classless / the runtime's default class).
type Arrival struct {
	SampleIdx int
	At        time.Duration
	Deadline  time.Duration
	Class     string
}

// Trace is an ordered arrival sequence.
type Trace struct {
	Arrivals []Arrival
	Horizon  time.Duration
}

// N returns the number of arrivals.
func (t *Trace) N() int { return len(t.Arrivals) }

// DeadlinePolicy assigns a relative deadline to an arriving sample.
type DeadlinePolicy interface {
	Relative(s *dataset.Sample, src *rng.Source) time.Duration
}

// ConstantDeadline assigns every query the same relative deadline (the text
// matching and image retrieval setting).
type ConstantDeadline time.Duration

// Relative implements DeadlinePolicy.
func (c ConstantDeadline) Relative(*dataset.Sample, *rng.Source) time.Duration {
	return time.Duration(c)
}

// CameraDeadline assigns each camera a deadline drawn once from
// Uniform[Min, Max]; all frames from that camera share it (the vehicle
// counting setting: "deadlines for each camera are sampled randomly from
// the uniform distribution").
type CameraDeadline struct {
	Min, Max time.Duration
	perCam   map[int]time.Duration
	src      *rng.Source
}

// NewCameraDeadline builds the per-camera policy with its own seeded
// source.
func NewCameraDeadline(min, max time.Duration, seed uint64) *CameraDeadline {
	return &CameraDeadline{Min: min, Max: max,
		perCam: make(map[int]time.Duration), src: rng.New(seed)}
}

// Relative implements DeadlinePolicy.
func (c *CameraDeadline) Relative(s *dataset.Sample, _ *rng.Source) time.Duration {
	if d, ok := c.perCam[s.CameraID]; ok {
		return d
	}
	d := time.Duration(c.src.Uniform(float64(c.Min), float64(c.Max)))
	c.perCam[s.CameraID] = d
	return d
}

// PoissonConfig configures a constant-rate Poisson trace.
type PoissonConfig struct {
	// RatePerSec is the mean arrival rate.
	RatePerSec float64
	// N is the number of arrivals to generate.
	N int
	// Samples is the pool drawn from (uniformly with replacement).
	Samples []*dataset.Sample
	// Deadline assigns relative deadlines.
	Deadline DeadlinePolicy
	Seed     uint64
}

// Poisson generates a constant-rate Poisson trace.
func Poisson(cfg PoissonConfig) *Trace {
	if cfg.RatePerSec <= 0 || cfg.N <= 0 || len(cfg.Samples) == 0 {
		panic("trace: bad Poisson config")
	}
	src := rng.New(cfg.Seed ^ 0x9015)
	t := &Trace{}
	var now time.Duration
	for i := 0; i < cfg.N; i++ {
		gap := src.Exponential(cfg.RatePerSec) // seconds
		now += time.Duration(gap * float64(time.Second))
		idx := src.Intn(len(cfg.Samples))
		t.Arrivals = append(t.Arrivals, Arrival{
			SampleIdx: idx,
			At:        now,
			Deadline:  now + cfg.Deadline.Relative(cfg.Samples[idx], src),
		})
	}
	t.Horizon = now
	return t
}

// OneDayConfig configures the diurnal bursty trace.
type OneDayConfig struct {
	// Samples is the pool drawn from.
	Samples []*dataset.Sample
	// Deadline assigns relative deadlines (constant in the paper).
	Deadline DeadlinePolicy
	// HourSeconds compresses one wall-clock hour into this many virtual
	// seconds (default 30, giving ~5k queries/day at the default rates).
	HourSeconds float64
	// BaseRate is the overnight arrival rate in queries per virtual
	// second (default 0.7); the busy window multiplies it by up to ~30x,
	// pushing the peak to roughly twice the full ensemble's service
	// capacity — the regime where the paper's Fig. 1a shows ~45% misses.
	BaseRate float64
	Seed     uint64
}

// hourMultipliers is the diurnal shape: indices are hours 0..23. The curve
// mirrors Fig. 1a — quiet night, morning ramp, heavy 10-18h plateau with a
// 14-16h peak about 30x the overnight rate, evening decline.
var hourMultipliers = [24]float64{
	1, 1, 1, 1, 1, 1, 1.2, 1.8, // 0-7h: light
	3, 6, // 8-9h: ramp
	14, 18, 22, 24, 30, 30, 24, 20, 14, // 10-18h: burst, peak 14-16h
	8, 5, 3, 2, 1.5, // 19-23h: decline
}

// OneDay generates the compressed one-day bursty trace.
func OneDay(cfg OneDayConfig) *Trace {
	if len(cfg.Samples) == 0 {
		panic("trace: no samples")
	}
	if cfg.HourSeconds <= 0 {
		cfg.HourSeconds = 30
	}
	if cfg.BaseRate <= 0 {
		cfg.BaseRate = 0.7
	}
	src := rng.New(cfg.Seed ^ 0xda71)
	t := &Trace{}
	hour := time.Duration(cfg.HourSeconds * float64(time.Second))
	for h := 0; h < 24; h++ {
		rate := cfg.BaseRate * hourMultipliers[h]
		start := time.Duration(h) * hour
		now := start
		for {
			gap := src.Exponential(rate)
			now += time.Duration(gap * float64(time.Second))
			if now >= start+hour {
				break
			}
			idx := src.Intn(len(cfg.Samples))
			t.Arrivals = append(t.Arrivals, Arrival{
				SampleIdx: idx,
				At:        now,
				Deadline:  now + cfg.Deadline.Relative(cfg.Samples[idx], src),
			})
		}
	}
	t.Horizon = 24 * hour
	return t
}

// Hour returns which simulated hour (0..23) the arrival time falls in,
// given the trace's compression factor.
func Hour(at time.Duration, hourSeconds float64) int {
	h := int(at / time.Duration(hourSeconds*float64(time.Second)))
	if h > 23 {
		h = 23
	}
	return h
}

// Window returns the sub-trace with arrivals in [from, to), preserving
// absolute times.
func (t *Trace) Window(from, to time.Duration) *Trace {
	out := &Trace{Horizon: t.Horizon}
	for _, a := range t.Arrivals {
		if a.At >= from && a.At < to {
			out.Arrivals = append(out.Arrivals, a)
		}
	}
	return out
}
