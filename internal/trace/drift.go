package trace

import (
	"hash/fnv"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

// Stream derives an independent seeded sub-stream from a base seed and a
// label. Generators that draw several random quantities (arrival gaps,
// sample picks, deadlines) must give each its own labeled stream:
// sharing one rng.Source couples the quantities — swapping a constant
// deadline policy for a random one would silently shift every subsequent
// gap draw, changing the whole trace rather than just the deadlines (the
// historical failure mode of Poisson-style generators, pinned by the
// stream-independence regression test). Two labels never collide in
// practice: the label is hashed (FNV-1a) and mixed into the seed through
// a splitmix-style multiply, so the derived states are decorrelated even
// for adjacent seeds.
func Stream(seed uint64, label string) *rng.Source {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	x := (seed + 0x9e3779b97f4a7c15) ^ (h.Sum64() * 0xbf58476d1ce4e5b9)
	return rng.New(x)
}

// LatencyDrift is a deterministic service-time drift schedule: the
// multiplier applied to model k's drawn latency at virtual time at. It
// is pure test/soak infrastructure (like fault injection): both engines
// evaluate it with their own virtual clock at task start, so the same
// schedule produces the same effective latencies in sim and serve. A nil
// LatencyDrift means no drift.
type LatencyDrift func(model int, at time.Duration) float64

// RampDrift linearly interpolates the multiplier from `from` before
// start to `to` after end, across every model — the slow-burn profile
// shift (thermal throttling, co-tenant pressure) the drift soak uses.
func RampDrift(start, end time.Duration, from, to float64) LatencyDrift {
	return func(_ int, at time.Duration) float64 {
		switch {
		case at <= start:
			return from
		case at >= end:
			return to
		default:
			frac := float64(at-start) / float64(end-start)
			return from + (to-from)*frac
		}
	}
}

// StepDrift switches the multiplier from before to after at the given
// instant, across every model. Piecewise-constant, so it stays
// bit-stable under the small wall-clock jitter of the concurrent
// runtime — the shape the adapt-on equivalence test relies on.
func StepDrift(at time.Duration, before, after float64) LatencyDrift {
	return func(_ int, t time.Duration) float64 {
		if t < at {
			return before
		}
		return after
	}
}

// ModelDrift restricts a drift schedule to model k; every other model
// keeps multiplier 1.
func ModelDrift(k int, d LatencyDrift) LatencyDrift {
	return func(model int, at time.Duration) float64 {
		if model != k {
			return 1
		}
		return d(model, at)
	}
}

// DifficultyShiftConfig configures a drifting-difficulty trace: arrivals
// draw from an easy pool early and shift linearly toward a hard pool
// between ShiftStart and ShiftEnd — the workload-mix drift that stales a
// frozen difficulty-score calibration.
type DifficultyShiftConfig struct {
	// RatePerSec is the mean Poisson arrival rate; Spacing, when
	// positive, replaces it with fixed inter-arrival gaps (for
	// deterministic equivalence traces).
	RatePerSec float64
	Spacing    time.Duration
	// N is the number of arrivals.
	N int
	// Samples is the serving pool Arrival.SampleIdx indexes into;
	// EasyIdx/HardIdx are index pools (into Samples) for the two mix
	// components.
	Samples []*dataset.Sample
	EasyIdx []int
	HardIdx []int
	// ShiftStart/ShiftEnd bound the linear mix shift: P(hard) is 0
	// before ShiftStart and 1 after ShiftEnd.
	ShiftStart time.Duration
	ShiftEnd   time.Duration
	// Deadline assigns relative deadlines.
	Deadline DeadlinePolicy
	Seed     uint64
}

// DifficultyShift generates the drifting-mix trace. Gap, mix and
// deadline draws come from three independent Stream sub-streams, so
// composing this generator with any deadline policy (or changing the
// policy) never perturbs arrival times or sample picks.
func DifficultyShift(cfg DifficultyShiftConfig) *Trace {
	if (cfg.RatePerSec <= 0 && cfg.Spacing <= 0) || cfg.N <= 0 ||
		len(cfg.EasyIdx) == 0 || len(cfg.HardIdx) == 0 || len(cfg.Samples) == 0 {
		panic("trace: bad DifficultyShift config")
	}
	gaps := Stream(cfg.Seed, "difficulty-shift/gaps")
	mix := Stream(cfg.Seed, "difficulty-shift/mix")
	dl := Stream(cfg.Seed, "difficulty-shift/deadline")
	t := &Trace{}
	var now time.Duration
	for i := 0; i < cfg.N; i++ {
		if cfg.Spacing > 0 {
			now += cfg.Spacing
		} else {
			now += time.Duration(gaps.Exponential(cfg.RatePerSec) * float64(time.Second))
		}
		var pHard float64
		switch {
		case now <= cfg.ShiftStart:
			pHard = 0
		case now >= cfg.ShiftEnd:
			pHard = 1
		default:
			pHard = float64(now-cfg.ShiftStart) / float64(cfg.ShiftEnd-cfg.ShiftStart)
		}
		pool := cfg.EasyIdx
		if mix.Bool(pHard) {
			pool = cfg.HardIdx
		}
		idx := pool[mix.Intn(len(pool))]
		t.Arrivals = append(t.Arrivals, Arrival{
			SampleIdx: idx,
			At:        now,
			Deadline:  now + cfg.Deadline.Relative(cfg.Samples[idx], dl),
		})
	}
	t.Horizon = now
	return t
}
