package trace

import (
	"math"
	"testing"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

func pool(n int) []*dataset.Sample {
	ds := dataset.VehicleCounting(dataset.Config{N: n, Seed: 1})
	return ds.Samples
}

func TestPoissonBasics(t *testing.T) {
	tr := Poisson(PoissonConfig{
		RatePerSec: 50, N: 5000, Samples: pool(100),
		Deadline: ConstantDeadline(100 * time.Millisecond), Seed: 2,
	})
	if tr.N() != 5000 {
		t.Fatalf("N = %d", tr.N())
	}
	var prev time.Duration
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("arrivals not sorted")
		}
		if a.Deadline != a.At+100*time.Millisecond {
			t.Fatal("constant deadline wrong")
		}
		if a.SampleIdx < 0 || a.SampleIdx >= 100 {
			t.Fatalf("sample idx %d", a.SampleIdx)
		}
		prev = a.At
	}
	// Empirical rate within 5% of nominal.
	rate := float64(tr.N()) / tr.Horizon.Seconds()
	if math.Abs(rate-50) > 2.5 {
		t.Errorf("empirical rate = %v, want ~50", rate)
	}
}

func TestPoissonDeterminism(t *testing.T) {
	cfg := PoissonConfig{RatePerSec: 10, N: 100, Samples: pool(50),
		Deadline: ConstantDeadline(time.Second), Seed: 3}
	a, b := Poisson(cfg), Poisson(cfg)
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestOneDayShape(t *testing.T) {
	tr := OneDay(OneDayConfig{
		Samples:  pool(200),
		Deadline: ConstantDeadline(100 * time.Millisecond),
		Seed:     4,
	})
	if tr.N() < 1000 {
		t.Fatalf("one-day trace too small: %d", tr.N())
	}
	// Count arrivals per simulated hour; the burst hours must dominate.
	perHour := make([]int, 24)
	for _, a := range tr.Arrivals {
		perHour[Hour(a.At, 30)]++
	}
	night := perHour[2]
	peak := perHour[14]
	if night == 0 || peak == 0 {
		t.Fatal("empty hours in trace")
	}
	if ratio := float64(peak) / float64(night); ratio < 15 {
		t.Errorf("peak/night ratio = %v, want >= 15 (the ~30x burst)", ratio)
	}
	// Arrivals must remain sorted across hour boundaries.
	var prev time.Duration
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("one-day arrivals not sorted")
		}
		prev = a.At
	}
}

func TestCameraDeadline(t *testing.T) {
	p := NewCameraDeadline(100*time.Millisecond, 300*time.Millisecond, 5)
	samples := pool(500)
	src := rng.New(6)
	seen := map[int]time.Duration{}
	for _, s := range samples {
		d := p.Relative(s, src)
		if d < 100*time.Millisecond || d > 300*time.Millisecond {
			t.Fatalf("deadline %v out of range", d)
		}
		if prev, ok := seen[s.CameraID]; ok && prev != d {
			t.Fatalf("camera %d deadline changed: %v vs %v", s.CameraID, prev, d)
		}
		seen[s.CameraID] = d
	}
	if len(seen) < 10 {
		t.Errorf("only %d cameras seen", len(seen))
	}
	distinct := map[time.Duration]bool{}
	for _, d := range seen {
		distinct[d] = true
	}
	if len(distinct) < 5 {
		t.Errorf("camera deadlines not diverse: %d distinct", len(distinct))
	}
}

func TestWindow(t *testing.T) {
	tr := Poisson(PoissonConfig{RatePerSec: 100, N: 1000, Samples: pool(50),
		Deadline: ConstantDeadline(time.Second), Seed: 7})
	mid := tr.Horizon / 2
	w := tr.Window(mid, tr.Horizon)
	if w.N() == 0 || w.N() == tr.N() {
		t.Fatalf("window size %d of %d", w.N(), tr.N())
	}
	for _, a := range w.Arrivals {
		if a.At < mid {
			t.Fatal("window contains early arrival")
		}
	}
}

func TestHourClamp(t *testing.T) {
	if Hour(500*time.Hour, 8) != 23 {
		t.Error("Hour should clamp to 23")
	}
	if Hour(0, 8) != 0 {
		t.Error("Hour(0) should be 0")
	}
}
