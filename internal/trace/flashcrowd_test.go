package trace

import (
	"testing"
	"time"
)

func flashMix() []ClassMix {
	return []ClassMix{
		{Name: "gold", Share: 0.2, Deadline: 300 * time.Millisecond},
		{Name: "silver", Share: 0.3, Deadline: 300 * time.Millisecond},
		{Name: "bronze", Share: 0.5, Deadline: 500 * time.Millisecond},
	}
}

func TestFlashCrowdShape(t *testing.T) {
	cfg := FlashCrowdConfig{
		BackgroundRate: 20,
		Classes:        flashMix(),
		PeakFactor:     5,
		Horizon:        60 * time.Second,
		CrowdStart:     15 * time.Second,
		RampUp:         5 * time.Second,
		Hold:           15 * time.Second,
		RampDown:       5 * time.Second,
		Samples:        pool(100),
		Seed:           7,
	}
	tr := FlashCrowd(cfg)
	var prev time.Duration
	perClass := map[string]int{}
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = a.At
		if a.Class == "" {
			t.Fatal("unlabeled arrival")
		}
		perClass[a.Class]++
		if a.Deadline <= a.At {
			t.Fatal("deadline before arrival")
		}
	}
	if len(perClass) != 3 {
		t.Fatalf("classes seen: %v, want 3", perClass)
	}
	// The crowd defaults to the last (lowest) class, so bronze dominates.
	if perClass["bronze"] < perClass["gold"]*3 {
		t.Errorf("crowd should swell bronze: %v", perClass)
	}
	// Rate during the plateau ~5x the pre-crowd rate.
	count := func(from, to time.Duration) float64 {
		n := 0
		for _, a := range tr.Arrivals {
			if a.At >= from && a.At < to {
				n++
			}
		}
		return float64(n) / (to - from).Seconds()
	}
	quiet := count(0, 15*time.Second)
	peak := count(20*time.Second, 35*time.Second)
	if ratio := peak / quiet; ratio < 3.5 || ratio > 6.5 {
		t.Errorf("peak/quiet = %.2f, want ~5", ratio)
	}
	// After the crowd fully decays, the rate returns to background.
	tail := count(45*time.Second, 60*time.Second)
	if tail > quiet*1.5 {
		t.Errorf("tail rate %.1f did not return to background %.1f", tail, quiet)
	}
}

func TestFlashCrowdDeterminism(t *testing.T) {
	cfg := FlashCrowdConfig{
		BackgroundRate: 10, Classes: flashMix(),
		Horizon: 20 * time.Second, Samples: pool(50), Seed: 9,
	}
	a, b := FlashCrowd(cfg), FlashCrowd(cfg)
	if a.N() != b.N() || a.N() == 0 {
		t.Fatalf("N mismatch: %d vs %d", a.N(), b.N())
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("FlashCrowd not deterministic")
		}
	}
	// A different seed produces a different trace.
	cfg.Seed = 10
	c := FlashCrowd(cfg)
	same := c.N() == a.N()
	if same {
		for i := range a.Arrivals {
			if a.Arrivals[i] != c.Arrivals[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFlashCrowdExplicitCrowdClass(t *testing.T) {
	tr := FlashCrowd(FlashCrowdConfig{
		BackgroundRate: 10, Classes: flashMix(), CrowdClass: "silver",
		PeakFactor: 8, Horizon: 30 * time.Second, Samples: pool(50), Seed: 11,
	})
	perClass := map[string]int{}
	for _, a := range tr.Arrivals {
		perClass[a.Class]++
	}
	if perClass["silver"] < perClass["bronze"] {
		t.Errorf("CrowdClass=silver should dominate: %v", perClass)
	}
}

func TestMultiClassBurst(t *testing.T) {
	tr := MultiClassBurst(MultiClassBurstConfig{
		BackgroundRate: 5,
		Classes:        flashMix(),
		BurstSize:      40,
		Period:         5 * time.Second,
		Horizon:        30 * time.Second,
		Samples:        pool(50),
		Seed:           13,
	})
	var prev time.Duration
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = a.At
	}
	// Bursts at 5s,10s,...,25s: every burst carries exactly BurstSize
	// arrivals split 8/12/20 by share, all classes simultaneously.
	counts := map[time.Duration]map[string]int{}
	for _, a := range tr.Arrivals {
		if counts[a.At] == nil {
			counts[a.At] = map[string]int{}
		}
		counts[a.At][a.Class]++
	}
	bursts := 0
	for _, byClass := range counts {
		tot := 0
		for _, n := range byClass {
			tot += n
		}
		if tot >= 40 {
			bursts++
			if byClass["gold"] < 8 || byClass["silver"] < 12 || byClass["bronze"] < 20 {
				t.Errorf("burst split %v, want >= 8/12/20", byClass)
			}
		}
	}
	if bursts != 5 {
		t.Errorf("found %d full bursts, want 5", bursts)
	}

	// Determinism.
	cfg := MultiClassBurstConfig{
		BackgroundRate: 5, Classes: flashMix(), BurstSize: 10,
		Period: 2 * time.Second, Jitter: time.Second,
		Horizon: 20 * time.Second, Samples: pool(50), Seed: 14,
	}
	a, b := MultiClassBurst(cfg), MultiClassBurst(cfg)
	if a.N() != b.N() {
		t.Fatal("not deterministic")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("MultiClassBurst not deterministic")
		}
	}
}

func TestFlashCrowdPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no rate":    func() { FlashCrowd(FlashCrowdConfig{Classes: flashMix(), Horizon: time.Second, Samples: pool(5)}) },
		"no classes": func() { FlashCrowd(FlashCrowdConfig{BackgroundRate: 1, Horizon: time.Second, Samples: pool(5)}) },
		"bad share": func() {
			FlashCrowd(FlashCrowdConfig{BackgroundRate: 1, Horizon: time.Second, Samples: pool(5),
				Classes: []ClassMix{{Name: "x", Share: 0, Deadline: time.Second}}})
		},
		"burst no period": func() {
			MultiClassBurst(MultiClassBurstConfig{BackgroundRate: 1, Classes: flashMix(),
				BurstSize: 5, Horizon: time.Second, Samples: pool(5)})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
