package trace

import (
	"testing"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/rng"
)

// drawnDeadline is a deadline policy that consumes the generator's
// deadline sub-stream on every arrival — the maximally stream-hungry
// shape the isolation regression test swaps in.
type drawnDeadline struct{ min, max time.Duration }

func (d drawnDeadline) Relative(_ *dataset.Sample, src *rng.Source) time.Duration {
	return time.Duration(src.Uniform(float64(d.min), float64(d.max)))
}

func TestStreamDerivation(t *testing.T) {
	a1 := Stream(7, "gaps")
	a2 := Stream(7, "gaps")
	b := Stream(7, "mix")
	c := Stream(8, "gaps")
	var sameAsA, sameAsB, sameAsC int
	for i := 0; i < 64; i++ {
		v := a1.Uint64()
		if v == a2.Uint64() {
			sameAsA++
		}
		if v == b.Uint64() {
			sameAsB++
		}
		if v == c.Uint64() {
			sameAsC++
		}
	}
	if sameAsA != 64 {
		t.Fatalf("same seed+label reproduced only %d/64 draws", sameAsA)
	}
	if sameAsB != 0 {
		t.Fatalf("different labels collided on %d/64 draws", sameAsB)
	}
	if sameAsC != 0 {
		t.Fatalf("adjacent seeds collided on %d/64 draws", sameAsC)
	}
}

func shiftCfg(dl DeadlinePolicy) DifficultyShiftConfig {
	samples := pool(90)
	easy := make([]int, 30)
	hard := make([]int, 30)
	for i := range easy {
		easy[i] = i
		hard[i] = 60 + i
	}
	return DifficultyShiftConfig{
		RatePerSec: 100, N: 2000, Samples: samples,
		EasyIdx: easy, HardIdx: hard,
		ShiftStart: 5 * time.Second, ShiftEnd: 15 * time.Second,
		Deadline: dl, Seed: 11,
	}
}

// TestDifficultyShiftStreamIsolation is the stream-independence
// regression test: swapping the deadline policy for one that consumes
// random draws on every arrival must leave the arrival times and sample
// picks byte-identical, because gaps, mix, and deadlines come from
// independent labeled sub-streams. (The historical failure mode — one
// shared source — would shift every gap after the first deadline draw.)
func TestDifficultyShiftStreamIsolation(t *testing.T) {
	a := DifficultyShift(shiftCfg(ConstantDeadline(100 * time.Millisecond)))
	b := DifficultyShift(shiftCfg(drawnDeadline{min: 50 * time.Millisecond, max: 400 * time.Millisecond}))
	if a.N() != b.N() {
		t.Fatalf("arrival counts diverged: %d vs %d", a.N(), b.N())
	}
	deadlinesDiffer := false
	for i := range a.Arrivals {
		if a.Arrivals[i].At != b.Arrivals[i].At {
			t.Fatalf("arrival %d time diverged under a deadline-policy swap: %v vs %v",
				i, a.Arrivals[i].At, b.Arrivals[i].At)
		}
		if a.Arrivals[i].SampleIdx != b.Arrivals[i].SampleIdx {
			t.Fatalf("arrival %d sample pick diverged under a deadline-policy swap: %d vs %d",
				i, a.Arrivals[i].SampleIdx, b.Arrivals[i].SampleIdx)
		}
		if a.Arrivals[i].Deadline != b.Arrivals[i].Deadline {
			deadlinesDiffer = true
		}
	}
	if !deadlinesDiffer {
		t.Fatal("deadline policies produced identical deadlines; the swap tested nothing")
	}
}

func TestDifficultyShiftMixShift(t *testing.T) {
	cfg := shiftCfg(ConstantDeadline(100 * time.Millisecond))
	tr := DifficultyShift(cfg)
	isHard := func(idx int) bool { return idx >= 60 }
	for _, a := range tr.Arrivals {
		if a.At <= cfg.ShiftStart && isHard(a.SampleIdx) {
			t.Fatalf("hard sample %d arrived at %v, before the shift starts", a.SampleIdx, a.At)
		}
		if a.At >= cfg.ShiftEnd && !isHard(a.SampleIdx) {
			t.Fatalf("easy sample %d arrived at %v, after the shift completes", a.SampleIdx, a.At)
		}
	}
	// Determinism: same config, same trace.
	tr2 := DifficultyShift(cfg)
	for i := range tr.Arrivals {
		if tr.Arrivals[i] != tr2.Arrivals[i] {
			t.Fatalf("arrival %d not deterministic: %+v vs %+v", i, tr.Arrivals[i], tr2.Arrivals[i])
		}
	}
}

func TestDifficultyShiftFixedSpacing(t *testing.T) {
	cfg := shiftCfg(ConstantDeadline(100 * time.Millisecond))
	cfg.RatePerSec = 0
	cfg.Spacing = 10 * time.Millisecond
	cfg.N = 100
	tr := DifficultyShift(cfg)
	for i, a := range tr.Arrivals {
		want := time.Duration(i+1) * 10 * time.Millisecond
		if a.At != want {
			t.Fatalf("arrival %d at %v, want exact spacing %v", i, a.At, want)
		}
	}
}

func TestDriftSchedules(t *testing.T) {
	ramp := RampDrift(10*time.Second, 20*time.Second, 1, 3)
	if got := ramp(0, 5*time.Second); got != 1 {
		t.Fatalf("ramp before start = %v, want 1", got)
	}
	if got := ramp(0, 25*time.Second); got != 3 {
		t.Fatalf("ramp after end = %v, want 3", got)
	}
	if got := ramp(0, 15*time.Second); got != 2 {
		t.Fatalf("ramp midpoint = %v, want 2", got)
	}

	step := StepDrift(10*time.Second, 1, 2.5)
	if got := step(0, 10*time.Second-time.Nanosecond); got != 1 {
		t.Fatalf("step before threshold = %v, want 1", got)
	}
	if got := step(0, 10*time.Second); got != 2.5 {
		t.Fatalf("step at threshold = %v, want 2.5", got)
	}

	only1 := ModelDrift(1, step)
	if got := only1(0, 20*time.Second); got != 1 {
		t.Fatalf("ModelDrift leaked onto model 0: %v", got)
	}
	if got := only1(1, 20*time.Second); got != 2.5 {
		t.Fatalf("ModelDrift on model 1 = %v, want 2.5", got)
	}
}

func TestDifficultyShiftPanics(t *testing.T) {
	bad := []func(*DifficultyShiftConfig){
		func(c *DifficultyShiftConfig) { c.RatePerSec = 0; c.Spacing = 0 },
		func(c *DifficultyShiftConfig) { c.N = 0 },
		func(c *DifficultyShiftConfig) { c.EasyIdx = nil },
		func(c *DifficultyShiftConfig) { c.HardIdx = nil },
		func(c *DifficultyShiftConfig) { c.Samples = nil },
	}
	for i, mutate := range bad {
		cfg := shiftCfg(ConstantDeadline(time.Second))
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			DifficultyShift(cfg)
		}()
	}
}
