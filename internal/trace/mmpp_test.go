package trace

import (
	"testing"
	"time"
)

func TestMMPPBasics(t *testing.T) {
	tr := MMPP(MMPPConfig{
		Rates:    []float64{5, 80},
		N:        4000,
		Samples:  pool(100),
		Deadline: ConstantDeadline(100 * time.Millisecond),
		Seed:     1,
	})
	if tr.N() != 4000 {
		t.Fatalf("N = %d", tr.N())
	}
	var prev time.Duration
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("MMPP arrivals not sorted")
		}
		prev = a.At
	}
	// Burstiness: the variance of per-second counts must exceed the mean
	// substantially (index of dispersion > 1 distinguishes MMPP from a
	// plain Poisson process).
	secs := int(tr.Horizon/time.Second) + 1
	counts := make([]float64, secs)
	for _, a := range tr.Arrivals {
		counts[int(a.At/time.Second)]++
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	var variance float64
	for _, c := range counts {
		variance += (c - mean) * (c - mean)
	}
	variance /= float64(len(counts))
	if variance < 2*mean {
		t.Errorf("index of dispersion %.2f, want >> 1 for MMPP", variance/mean)
	}
}

func TestMMPPDeterminism(t *testing.T) {
	cfg := MMPPConfig{
		Rates: []float64{10, 50}, N: 500, Samples: pool(50),
		Deadline: ConstantDeadline(time.Second), Seed: 2,
	}
	a, b := MMPP(cfg), MMPP(cfg)
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatal("MMPP not deterministic")
		}
	}
}

func TestMMPPSingleStateIsPoissonLike(t *testing.T) {
	tr := MMPP(MMPPConfig{
		Rates: []float64{40}, N: 4000, Samples: pool(50),
		Deadline: ConstantDeadline(time.Second), Seed: 3,
	})
	rate := float64(tr.N()) / tr.Horizon.Seconds()
	if rate < 35 || rate > 45 {
		t.Errorf("single-state MMPP rate = %v, want ~40", rate)
	}
}

func TestSpikes(t *testing.T) {
	tr := Spikes(SpikeConfig{
		BackgroundRate: 2,
		Burst:          50,
		Period:         2 * time.Second,
		N:              500,
		Samples:        pool(50),
		Deadline:       ConstantDeadline(200 * time.Millisecond),
		Seed:           4,
	})
	if tr.N() != 500 {
		t.Fatalf("N = %d", tr.N())
	}
	// Count simultaneous arrivals at spike instants.
	counts := map[time.Duration]int{}
	for _, a := range tr.Arrivals {
		counts[a.At]++
	}
	spikes := 0
	for _, c := range counts {
		if c == 50 {
			spikes++
		}
	}
	if spikes < 3 {
		t.Errorf("only %d full spikes found", spikes)
	}
	var prev time.Duration
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("spike arrivals not sorted")
		}
		prev = a.At
	}
}

func TestMMPPPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"no rates":   func() { MMPP(MMPPConfig{N: 10, Samples: pool(10)}) },
		"bad spikes": func() { Spikes(SpikeConfig{N: 10, Samples: pool(10)}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
