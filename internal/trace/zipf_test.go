package trace

import (
	"testing"
	"time"
)

func TestZipfianBasics(t *testing.T) {
	tr := Zipfian(ZipfianConfig{
		RatePerSec: 50, N: 5000, Samples: pool(200),
		Deadline: ConstantDeadline(100 * time.Millisecond), Seed: 3,
	})
	if tr.N() != 5000 {
		t.Fatalf("N = %d", tr.N())
	}
	counts := map[int]int{}
	var prev time.Duration
	for _, a := range tr.Arrivals {
		if a.At < prev {
			t.Fatal("arrivals not sorted")
		}
		if a.SampleIdx < 0 || a.SampleIdx >= 200 {
			t.Fatalf("sample idx %d", a.SampleIdx)
		}
		if a.Deadline != a.At+100*time.Millisecond {
			t.Fatal("constant deadline wrong")
		}
		counts[a.SampleIdx]++
		prev = a.At
	}
	// Zipf skew: the most popular sample must dominate the median one and
	// the head must cover a large share of traffic.
	max, distinct, headShare := 0, 0, 0
	for _, c := range counts {
		distinct++
		if c > max {
			max = c
		}
	}
	for _, c := range counts {
		if c >= max/4 {
			headShare += c
		}
	}
	if max < tr.N()/50 {
		t.Errorf("top sample only %d/%d arrivals; not Zipf-skewed", max, tr.N())
	}
	if distinct < 20 {
		t.Errorf("only %d distinct samples; tail missing", distinct)
	}
}

func TestZipfianFixedSpacing(t *testing.T) {
	tr := Zipfian(ZipfianConfig{
		Spacing: 200 * time.Millisecond, N: 100, Samples: pool(50),
		Deadline: ConstantDeadline(time.Second), Seed: 4,
	})
	for i, a := range tr.Arrivals {
		want := time.Duration(i+1) * 200 * time.Millisecond
		if a.At != want {
			t.Fatalf("arrival %d at %v, want %v", i, a.At, want)
		}
	}
}

func TestZipfianDeterminism(t *testing.T) {
	cfg := ZipfianConfig{RatePerSec: 20, N: 500, Samples: pool(64),
		Deadline: ConstantDeadline(time.Second), Seed: 9}
	a, b := Zipfian(cfg), Zipfian(cfg)
	if a.N() != b.N() {
		t.Fatal("lengths differ")
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}
