package metrics

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"schemble/internal/ensemble"
)

const ms = time.Millisecond

func TestSummarize(t *testing.T) {
	recs := []Record{
		{Arrival: 0, Done: 50 * ms, Agreement: 1, Subset: ensemble.Full(2)},
		{Arrival: 10 * ms, Done: 110 * ms, Agreement: 0, Subset: ensemble.Single(0)},
		{Arrival: 20 * ms, Missed: true},
		{Arrival: 30 * ms, Done: 40 * ms, Agreement: 1, Subset: ensemble.Single(1)},
	}
	s := Summarize(recs)
	if s.N != 4 || s.Missed != 1 {
		t.Fatalf("N=%d missed=%d", s.N, s.Missed)
	}
	if math.Abs(s.Accuracy-0.5) > 1e-12 { // 2 agreements over 4 queries
		t.Errorf("Accuracy = %v", s.Accuracy)
	}
	if math.Abs(s.DMR-0.25) > 1e-12 {
		t.Errorf("DMR = %v", s.DMR)
	}
	if math.Abs(s.Processed-2.0/3) > 1e-12 {
		t.Errorf("Processed = %v", s.Processed)
	}
	// Latencies: 50, 100, 10ms -> mean 53.33ms, max 100ms.
	if s.LatMax != 100*ms {
		t.Errorf("LatMax = %v", s.LatMax)
	}
	total := 160 * ms
	wantMean := total / 3
	if d := s.LatMean - wantMean; d > time.Microsecond || d < -time.Microsecond {
		t.Errorf("LatMean = %v, want %v", s.LatMean, wantMean)
	}
	if math.Abs(s.MeanSubsetSize-4.0/3) > 1e-12 {
		t.Errorf("MeanSubsetSize = %v", s.MeanSubsetSize)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Accuracy != 0 || s.DMR != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeAllMissed(t *testing.T) {
	recs := []Record{{Missed: true}, {Missed: true}}
	s := Summarize(recs)
	if s.DMR != 1 || s.Accuracy != 0 || s.LatMean != 0 {
		t.Errorf("all-missed summary = %+v", s)
	}
}

func TestRecordLatency(t *testing.T) {
	r := Record{Arrival: 10 * ms, Done: 35 * ms}
	if r.Latency() != 25*ms {
		t.Errorf("Latency = %v", r.Latency())
	}
	if (Record{Missed: true}).Latency() != 0 {
		t.Error("missed latency should be 0")
	}
}

func TestObjective(t *testing.T) {
	// c = 100*acc - lambda*lat(s)
	got := Objective(0.9, 2*time.Second, 5)
	if math.Abs(got-80) > 1e-9 {
		t.Errorf("Objective = %v, want 80", got)
	}
	// Higher lambda penalizes latency more.
	if Objective(0.9, 2*time.Second, 10) >= got {
		t.Error("lambda should penalize latency")
	}
}

func TestSegment(t *testing.T) {
	recs := []Record{
		{Arrival: 5 * ms, Done: 10 * ms, Agreement: 1},
		{Arrival: 15 * ms, Missed: true},
		{Arrival: 25 * ms, Done: 30 * ms, Agreement: 1},
	}
	// Horizon is an exact multiple of width: exactly 3 windows, no spurious
	// empty trailing one.
	segs := Segment(recs, 10*ms, 30*ms)
	if len(segs) != 3 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].N != 1 || segs[0].Accuracy != 1 {
		t.Errorf("segment 0 = %+v", segs[0])
	}
	if segs[1].N != 1 || segs[1].DMR != 1 {
		t.Errorf("segment 1 = %+v", segs[1])
	}
	if segs[2].N != 1 {
		t.Errorf("segment 2 = %+v", segs[2])
	}
}

func TestSegmentBucketCount(t *testing.T) {
	cases := []struct {
		name    string
		width   time.Duration
		horizon time.Duration
		want    int
	}{
		{"exact multiple", 10 * ms, 30 * ms, 3},
		{"non-multiple rounds up", 10 * ms, 35 * ms, 4},
		{"single window", 10 * ms, 10 * ms, 1},
		{"horizon shorter than width", 10 * ms, 7 * ms, 1},
		{"zero horizon still yields one window", 10 * ms, 0, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			segs := Segment(nil, tc.width, tc.horizon)
			if len(segs) != tc.want {
				t.Errorf("Segment(width=%v, horizon=%v) = %d windows, want %d",
					tc.width, tc.horizon, len(segs), tc.want)
			}
		})
	}
	// Arrivals at or past the horizon still land in the last window.
	segs := Segment([]Record{{Arrival: 30 * ms, Missed: true}}, 10*ms, 30*ms)
	if len(segs) != 3 || segs[2].N != 1 {
		t.Errorf("late arrival not clamped into last window: %+v", segs)
	}
}

func TestSummarizeTaxonomy(t *testing.T) {
	recs := []Record{
		{Arrival: 0, Done: 10 * ms, Agreement: 1, Subset: ensemble.Full(2)},
		{Arrival: 0, Done: 20 * ms, Agreement: 0.5, Degraded: true, Subset: ensemble.Single(0)},
		{Arrival: 0, Missed: true},
		{Arrival: 0, Missed: true, Rejected: true},
	}
	s := Summarize(recs)
	if s.N != 4 || s.Missed != 1 || s.Rejected != 1 || s.Degraded != 1 {
		t.Fatalf("counts = %+v", s)
	}
	// Rejections are load shedding, not scheduler misses: DMR counts only
	// the genuine deadline miss.
	if math.Abs(s.DMR-0.25) > 1e-12 {
		t.Errorf("DMR = %v, want 0.25", s.DMR)
	}
	if math.Abs(s.RejectedRate-0.25) > 1e-12 {
		t.Errorf("RejectedRate = %v, want 0.25", s.RejectedRate)
	}
	if math.Abs(s.DegradedRate-0.25) > 1e-12 {
		t.Errorf("DegradedRate = %v, want 0.25", s.DegradedRate)
	}
	// Accuracy counts missed and rejected as zero agreement; Processed
	// averages only the two completed queries (degraded included).
	if math.Abs(s.Accuracy-1.5/4) > 1e-12 {
		t.Errorf("Accuracy = %v, want 0.375", s.Accuracy)
	}
	if math.Abs(s.Processed-0.75) > 1e-12 {
		t.Errorf("Processed = %v, want 0.75", s.Processed)
	}
	if math.Abs(s.MeanSubsetSize-1.5) > 1e-12 {
		t.Errorf("MeanSubsetSize = %v, want 1.5", s.MeanSubsetSize)
	}
}

func TestSegmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero width did not panic")
		}
	}()
	Segment(nil, 0, time.Second)
}

func TestSubsetHistogram(t *testing.T) {
	recs := []Record{
		{Subset: ensemble.Single(0)},
		{Subset: ensemble.Single(0)},
		{Subset: ensemble.Full(2)},
		{Missed: true, Subset: ensemble.Empty},
	}
	h := SubsetHistogram(recs)
	if h[ensemble.Single(0)] != 2 || h[ensemble.Full(2)] != 1 {
		t.Errorf("histogram = %v", h)
	}
	if _, ok := h[ensemble.Empty]; ok {
		t.Error("missed queries must not be counted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := []Record{
		{QueryID: 0, SampleID: 17, CameraID: 3, Arrival: 5 * ms,
			Deadline: 105 * ms, Done: 80 * ms, Agreement: 1,
			Subset: ensemble.Single(0).With(2)},
		{QueryID: 1, SampleID: 4, Arrival: 6 * ms, Deadline: 106 * ms, Missed: true},
		{QueryID: 2, SampleID: 9, Arrival: 7 * ms, Deadline: 107 * ms,
			Missed: true, Rejected: true},
		{QueryID: 3, SampleID: 2, Arrival: 8 * ms, Deadline: 108 * ms,
			Done: 90 * ms, Degraded: true, Agreement: 0.5,
			Subset: ensemble.Single(1)},
	}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("garbage line not rejected")
	}
	recs, err := ReadJSONL(strings.NewReader("\n\n"))
	if err != nil || len(recs) != 0 {
		t.Errorf("blank lines should be skipped: %v %d", err, len(recs))
	}
}
