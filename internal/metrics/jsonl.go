package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"schemble/internal/ensemble"
)

// recordJSON is the wire form of a Record: durations in microseconds, the
// subset as a model-index list.
type recordJSON struct {
	QueryID    int     `json:"query_id"`
	SampleID   int     `json:"sample_id"`
	CameraID   int     `json:"camera_id,omitempty"`
	ArrivalUS  int64   `json:"arrival_us"`
	DeadlineUS int64   `json:"deadline_us"`
	DoneUS     int64   `json:"done_us,omitempty"`
	Missed     bool    `json:"missed"`
	Rejected   bool    `json:"rejected,omitempty"`
	Degraded   bool    `json:"degraded,omitempty"`
	Agreement  float64 `json:"agreement"`
	Subset     []int   `json:"subset,omitempty"`
	Class      string  `json:"class,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (r Record) MarshalJSON() ([]byte, error) {
	return json.Marshal(recordJSON{
		QueryID:    r.QueryID,
		SampleID:   r.SampleID,
		CameraID:   r.CameraID,
		ArrivalUS:  r.Arrival.Microseconds(),
		DeadlineUS: r.Deadline.Microseconds(),
		DoneUS:     r.Done.Microseconds(),
		Missed:     r.Missed,
		Rejected:   r.Rejected,
		Degraded:   r.Degraded,
		Agreement:  r.Agreement,
		Subset:     r.Subset.Models(),
		Class:      r.Class,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (r *Record) UnmarshalJSON(data []byte) error {
	var w recordJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	r.QueryID = w.QueryID
	r.SampleID = w.SampleID
	r.CameraID = w.CameraID
	r.Arrival = time.Duration(w.ArrivalUS) * time.Microsecond
	r.Deadline = time.Duration(w.DeadlineUS) * time.Microsecond
	r.Done = time.Duration(w.DoneUS) * time.Microsecond
	r.Missed = w.Missed
	r.Rejected = w.Rejected
	r.Degraded = w.Degraded
	r.Agreement = w.Agreement
	r.Class = w.Class
	r.Subset = ensemble.Empty
	for _, k := range w.Subset {
		r.Subset = r.Subset.With(k)
	}
	return nil
}

// WriteJSONL streams records to w as one JSON object per line — the
// serving-session log format cmd/schemble-analyze consumes.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(recs[i]); err != nil {
			return fmt.Errorf("metrics: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL loads records written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: read: %w", err)
	}
	return recs, nil
}
