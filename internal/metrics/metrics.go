// Package metrics aggregates per-query serving records into the measures
// the paper reports: accuracy (missed queries count as incorrect), deadline
// miss rate, processed accuracy, latency mean/P95/max, the
// accuracy-latency tradeoff objective c = 100*Acc - lambda*Latency, and
// per-time-segment breakdowns.
package metrics

import (
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/mathx"
)

// Record is one query's serving outcome.
type Record struct {
	QueryID  int
	SampleID int
	CameraID int

	Arrival  time.Duration
	Deadline time.Duration
	// Done is the completion time; zero and Missed=true when never
	// completed.
	Done   time.Duration
	Missed bool
	// Rejected marks queries the runtime shed at admission (saturation,
	// drain, shutdown) rather than losing to the deadline; Rejected implies
	// Missed. Degraded marks queries answered in time from a partial
	// subset. Both default false for simulator records, which predate the
	// runtime taxonomy.
	Rejected bool
	Degraded bool
	// Cached marks queries answered from the result cache without any
	// model execution; Subset names the models that produced the cached
	// answer. Cached queries count as served.
	Cached bool

	// Agreement is the query's agreement with the full ensemble in [0,1]
	// (0 when missed).
	Agreement float64
	// Subset is the executed model subset (Empty when missed).
	Subset ensemble.Subset
	// Class is the query's request-class name; empty for classless runs.
	Class string
}

// Latency returns the query's response time (0 when missed).
func (r Record) Latency() time.Duration {
	if r.Missed {
		return 0
	}
	return r.Done - r.Arrival
}

// Summary aggregates records.
type Summary struct {
	N int
	// Missed counts deadline misses (excluding rejections); Rejected counts
	// admission-shed queries; Degraded counts in-time partial-subset
	// answers (also included in the completed-query aggregates).
	Missed   int
	Rejected int
	Degraded int

	Accuracy float64 // mean agreement with missed/rejected = 0
	// DMR is the deadline miss rate over non-rejected queries' outcomes:
	// Missed / N. Rejections are reported separately as RejectedRate so
	// load shedding is not misread as scheduler misses.
	DMR          float64
	RejectedRate float64
	DegradedRate float64
	Processed    float64 // mean agreement over completed queries only

	LatMean time.Duration // over completed queries
	LatP95  time.Duration
	LatMax  time.Duration

	// MeanSubsetSize is the average executed subset size over completed
	// queries (a resource-usage diagnostic).
	MeanSubsetSize float64
}

// Summarize aggregates recs into a Summary. An empty slice yields the zero
// Summary.
func Summarize(recs []Record) Summary {
	var s Summary
	s.N = len(recs)
	if s.N == 0 {
		return s
	}
	var accSum, procSum, sizeSum float64
	var lats []float64
	for _, r := range recs {
		if r.Rejected {
			s.Rejected++
			continue
		}
		if r.Missed {
			s.Missed++
			continue
		}
		if r.Degraded {
			s.Degraded++
		}
		accSum += r.Agreement
		procSum += r.Agreement
		sizeSum += float64(r.Subset.Size())
		lats = append(lats, float64(r.Latency()))
	}
	s.Accuracy = accSum / float64(s.N)
	s.DMR = float64(s.Missed) / float64(s.N)
	s.RejectedRate = float64(s.Rejected) / float64(s.N)
	s.DegradedRate = float64(s.Degraded) / float64(s.N)
	done := s.N - s.Missed - s.Rejected
	if done > 0 {
		s.Processed = procSum / float64(done)
		s.MeanSubsetSize = sizeSum / float64(done)
		s.LatMean = time.Duration(mathx.Mean(lats))
		s.LatP95 = time.Duration(mathx.Percentile(lats, 95))
		s.LatMax = time.Duration(mathx.Percentile(lats, 100))
	}
	return s
}

// Objective is the paper's weighted tradeoff c = 100*Acc - lambda*Latency
// (latency in seconds); larger is better (Fig. 11).
func Objective(acc float64, lat time.Duration, lambda float64) float64 {
	return 100*acc - lambda*lat.Seconds()
}

// Segment groups records into consecutive windows of the given width (by
// arrival time) and summarizes each. Windows with no arrivals yield zero
// summaries, so callers can plot continuous time axes.
func Segment(recs []Record, width, horizon time.Duration) []Summary {
	if width <= 0 {
		panic("metrics: non-positive segment width")
	}
	// ceil(horizon/width) windows cover [0, horizon); an extra trailing
	// window only exists when the horizon spills past the last full one.
	n := int(horizon / width)
	if n == 0 || horizon%width != 0 {
		n++
	}
	buckets := make([][]Record, n)
	for _, r := range recs {
		b := int(r.Arrival / width)
		if b >= n {
			b = n - 1
		}
		buckets[b] = append(buckets[b], r)
	}
	out := make([]Summary, n)
	for i, b := range buckets {
		out[i] = Summarize(b)
	}
	return out
}

// SubsetHistogram counts how often each subset was executed.
func SubsetHistogram(recs []Record) map[ensemble.Subset]int {
	h := make(map[ensemble.Subset]int)
	for _, r := range recs {
		if !r.Missed {
			h[r.Subset]++
		}
	}
	return h
}
