package qos

import (
	"math"
	"testing"
	"time"

	"schemble/internal/ensemble"
	"schemble/internal/rng"
)

func threeClasses() []Class {
	return []Class{
		{Name: "gold", Priority: 2, Deadline: 300 * time.Millisecond, Weight: 1},
		{Name: "silver", Priority: 1, Deadline: 300 * time.Millisecond, Weight: 1},
		{Name: "bronze", Priority: 0, Deadline: 300 * time.Millisecond, Weight: 1},
	}
}

func TestNewValidation(t *testing.T) {
	mustPanic := func(name string, classes []Class) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		New(Config{Classes: classes})
	}
	mustPanic("empty name", []Class{{Name: "", Priority: 0, Deadline: time.Second}})
	mustPanic("dup name", []Class{
		{Name: "a", Priority: 0, Deadline: time.Second},
		{Name: "a", Priority: 1, Deadline: time.Second},
	})
	mustPanic("zero deadline", []Class{{Name: "a", Priority: 0}})
}

func TestClassIndexAndRanks(t *testing.T) {
	c := New(Config{Classes: threeClasses()})
	if got := c.Classes(); got != 3 {
		t.Fatalf("Classes() = %d, want 3", got)
	}
	gold, silver, bronze := c.ClassIndex("gold"), c.ClassIndex("silver"), c.ClassIndex("bronze")
	if gold != 0 || silver != 1 || bronze != 2 {
		t.Fatalf("indices = %d,%d,%d, want 0,1,2", gold, silver, bronze)
	}
	// Unknown and empty names map to the lowest-priority class.
	if got := c.ClassIndex("platinum"); got != bronze {
		t.Errorf("unknown class -> %d, want bronze (%d)", got, bronze)
	}
	if got := c.ClassIndex(""); got != bronze {
		t.Errorf("empty class -> %d, want bronze (%d)", got, bronze)
	}
	if c.Rank(bronze) != 0 || c.Rank(silver) != 1 || c.Rank(gold) != 2 {
		t.Errorf("ranks = %d,%d,%d, want 0,1,2 for bronze,silver,gold",
			c.Rank(bronze), c.Rank(silver), c.Rank(gold))
	}
	// Priority ties break by declaration order: earlier declaration wins.
	tied := New(Config{Classes: []Class{
		{Name: "first", Priority: 1, Deadline: time.Second},
		{Name: "second", Priority: 1, Deadline: time.Second},
	}})
	if tied.Rank(0) <= tied.Rank(1) {
		t.Errorf("declaration-order tie-break: first rank %d, second rank %d", tied.Rank(0), tied.Rank(1))
	}
}

func TestClasslessAlwaysAdmits(t *testing.T) {
	c := New(Config{})
	if c.ClassIndex("anything") != -1 {
		t.Fatal("classless ClassIndex should be -1")
	}
	// Even under enormous observed load, classless controllers admit.
	for i := 0; i < 50; i++ {
		c.Observe(time.Duration(i)*100*time.Millisecond, 10_000, 1)
	}
	if !c.Admit(5*time.Second, 0) {
		t.Fatal("classless controller rejected a request")
	}
	if c.Ladder() != 0 {
		t.Fatalf("classless ladder = %d, want 0", c.Ladder())
	}
	if c.Load() <= 1 {
		t.Fatalf("load should reflect the huge backlog, got %g", c.Load())
	}
}

// TestLadderMonotoneByPriority pins the ladder→level mapping: at every
// rung, a higher-priority class is never at a worse level than a
// lower-priority one, the lowest class degrades first, and the top class
// never reaches LevelShed.
func TestLadderMonotoneByPriority(t *testing.T) {
	c := New(Config{Classes: threeClasses()})
	gold, silver, bronze := 0, 1, 2
	now := time.Duration(0)
	prev := []Level{LevelFull, LevelFull, LevelFull}
	for rung := 0; ; rung++ {
		if c.Ladder() != rung {
			t.Fatalf("ladder = %d, want %d", c.Ladder(), rung)
		}
		lg, ls, lb := c.Level(gold), c.Level(silver), c.Level(bronze)
		if lg > ls || ls > lb {
			t.Fatalf("rung %d: levels not priority-monotone: gold=%v silver=%v bronze=%v", rung, lg, ls, lb)
		}
		if lg >= LevelShed {
			t.Fatalf("rung %d: top class reached shed", rung)
		}
		if lg < prev[0] || ls < prev[1] || lb < prev[2] {
			t.Fatalf("rung %d: level regressed while climbing", rung)
		}
		prev = []Level{lg, ls, lb}
		// Drive the load far above the next rung's threshold and wait out
		// the dwell; the ladder must move exactly one rung per transition.
		before := c.Ladder()
		for i := 0; i < 10; i++ {
			now += 300 * time.Millisecond
			c.Observe(now, 10_000, 1)
			if d := c.Ladder() - before; d > 1 {
				t.Fatalf("ladder jumped %d rungs in one window", d)
			}
			if c.Ladder() > before {
				break
			}
		}
		if c.Ladder() == before {
			// Saturated at the top rung.
			if lb != LevelShed || lg != LevelGreedy {
				t.Fatalf("top rung %d: bronze=%v gold=%v, want shed/greedy", before, lb, lg)
			}
			break
		}
	}
	// Recovery unwinds one rung at a time back to zero.
	for c.Ladder() > 0 {
		before := c.Ladder()
		for i := 0; i < 50 && c.Ladder() == before; i++ {
			now += 300 * time.Millisecond
			c.Observe(now, 0, 0)
		}
		if c.Ladder() != before-1 {
			t.Fatalf("recovery: ladder %d -> %d, want one rung down", before, c.Ladder())
		}
	}
}

// TestHysteresisNoFlap parks the load exactly on a rung's engage boundary
// and verifies the ladder makes at most one transition: the release
// threshold sits strictly below the engage threshold, so a steady
// boundary load cannot flap the ladder.
func TestHysteresisNoFlap(t *testing.T) {
	tun := Tuning{Capacity: 10, Target: 500 * time.Millisecond}.withDefaults()
	c := New(Config{Classes: threeClasses(), Tuning: tun})
	// backlog such that raw load == LadderBase exactly: raw =
	// (backlog/capacity)/target + slack.
	backlog := int(tun.LadderBase * tun.Capacity * tun.Target.Seconds()) // = 5
	transitions := 0
	last := c.Ladder()
	now := time.Duration(0)
	for i := 0; i < 2000; i++ {
		now += 50 * time.Millisecond
		c.Observe(now, backlog, 0)
		if l := c.Ladder(); l != last {
			transitions++
			last = l
		}
	}
	if transitions > 1 {
		t.Fatalf("ladder flapped: %d transitions at a steady boundary load", transitions)
	}
	// And at a load parked exactly on rung 1's release threshold, same story.
	c2 := New(Config{Classes: threeClasses(), Tuning: tun})
	downLoad := tun.LadderBase * tun.DownFactor
	backlogDown := int(downLoad * tun.Capacity * tun.Target.Seconds())
	transitions, last, now = 0, c2.Ladder(), 0
	for i := 0; i < 2000; i++ {
		now += 50 * time.Millisecond
		c2.Observe(now, backlogDown, 0)
		if l := c2.Ladder(); l != last {
			transitions++
			last = l
		}
	}
	if transitions > 1 {
		t.Fatalf("ladder flapped at release boundary: %d transitions", transitions)
	}
}

// TestRetryAfterGrowsWithBacklog is the satellite regression: the
// Retry-After hint must be monotone in the observed backlog, not a
// constant.
func TestRetryAfterGrowsWithBacklog(t *testing.T) {
	tun := Tuning{Capacity: 10}
	prev := time.Duration(-1)
	grew := false
	for _, backlog := range []int{0, 10, 50, 200, 1000} {
		c := New(Config{Classes: threeClasses(), Tuning: tun})
		now := time.Duration(0)
		for i := 0; i < 20; i++ {
			now += 100 * time.Millisecond
			c.Observe(now, backlog, 0)
		}
		ra := c.RetryAfter()
		if ra < prev {
			t.Fatalf("RetryAfter shrank: backlog %d -> %v (prev %v)", backlog, ra, prev)
		}
		if ra > prev && prev >= 0 {
			grew = true
		}
		prev = ra
	}
	if !grew {
		t.Fatal("RetryAfter never grew as backlog climbed 0 -> 1000")
	}
}

// TestAdmissionPropertySeeds is the 1000-seed property test: under
// randomized class configs, loads and arrival orders, admission is (a)
// priority-monotone — a higher-priority class's admission rate is never
// materially worse than a lower-priority class's under identical offered
// load — and (b) starvation-free — every non-shed class keeps a positive
// admission rate even when higher classes offer unbounded load.
func TestAdmissionPropertySeeds(t *testing.T) {
	const seeds = 1000
	for seed := uint64(1); seed <= seeds; seed++ {
		r := rng.New(seed)
		nClasses := 2 + r.Intn(3) // 2..4
		classes := make([]Class, nClasses)
		prios := r.Perm(nClasses)
		for i := range classes {
			classes[i] = Class{
				Name:     string(rune('a' + i)),
				Priority: prios[i],
				Deadline: 200 * time.Millisecond,
				Weight:   1, // identical weights: admission-rate comparison is pure priority
			}
		}
		capacity := 5 + r.Float64()*45 // 5..50 req/s
		c := New(Config{Classes: classes, Tuning: Tuning{Capacity: capacity}})

		// Offer identical per-class load at 2-6x the controller's capacity
		// while reporting a heavy backlog, so the token buckets bind.
		over := 2 + r.Float64()*4
		perClassRate := capacity * over / float64(nClasses)
		horizon := 5 * time.Second
		backlog := int(capacity * 2) // raw load ≈ 4 with default target

		type stat struct{ offered, admitted int }
		stats := make([]stat, nClasses)
		// Identical offered load: one Poisson arrival process, with every
		// arrival offered to all classes simultaneously — lowest priority
		// first, so lower classes get first crack at the shared pool
		// (adversarial to the monotonicity claim).
		order := make([]int, 0, nClasses)
		for rank := 0; rank < nClasses; rank++ {
			for i := 0; i < nClasses; i++ {
				if c.Rank(i) == rank {
					order = append(order, i)
				}
			}
		}
		at, lastObs := time.Duration(0), time.Duration(0)
		for {
			at += time.Duration(r.Exponential(perClassRate) * float64(time.Second))
			if at > horizon {
				break
			}
			for lastObs+50*time.Millisecond <= at {
				lastObs += 50 * time.Millisecond
				c.Observe(lastObs, backlog, 0.5)
			}
			for _, i := range order {
				stats[i].offered++
				if c.Admit(at, i) {
					stats[i].admitted++
				}
			}
		}

		rate := func(i int) float64 {
			if stats[i].offered == 0 {
				return 1
			}
			return float64(stats[i].admitted) / float64(stats[i].offered)
		}
		_, ladder, snaps := c.Snapshot()
		for i := 0; i < nClasses; i++ {
			for j := 0; j < nClasses; j++ {
				if c.Rank(i) > c.Rank(j) && rate(i)+0.02 < rate(j) {
					t.Fatalf("seed %d: priority inversion: class %s (rank %d) rate %.3f < class %s (rank %d) rate %.3f",
						seed, classes[i].Name, c.Rank(i), rate(i), classes[j].Name, c.Rank(j), rate(j))
				}
			}
			// Starvation-freedom: any class not shed by the ladder that saw
			// meaningful traffic keeps a positive admission rate.
			if snaps[i].Level != LevelShed && stats[i].offered > 20 && stats[i].admitted == 0 {
				t.Fatalf("seed %d: class %s starved (0/%d admitted, level %v, ladder %d)",
					seed, classes[i].Name, stats[i].offered, snaps[i].Level, ladder)
			}
		}
	}
}

// TestAdmitShedsLowestFirst drives overload directly and checks the shed
// counters concentrate on the lowest-priority classes.
func TestAdmitShedsLowestFirst(t *testing.T) {
	c := New(Config{Classes: threeClasses(), Tuning: Tuning{Capacity: 10}})
	now := time.Duration(0)
	// Saturate: heavy backlog for 3 virtual seconds while all classes
	// offer 5x their share.
	for step := 0; step < 600; step++ {
		now += 5 * time.Millisecond
		if step%10 == 0 {
			c.Observe(now, 200, 1)
		}
		for cls := 0; cls < 3; cls++ {
			if step%2 == cls%2 {
				c.Admit(now, cls)
			}
		}
	}
	_, _, snaps := c.Snapshot()
	shedRate := func(i int) float64 {
		tot := snaps[i].Admitted + snaps[i].Shed
		if tot == 0 {
			return 0
		}
		return float64(snaps[i].Shed) / float64(tot)
	}
	// gold=idx0 (highest), bronze=idx2 (lowest).
	if shedRate(0) > shedRate(2) {
		t.Fatalf("gold shed rate %.3f > bronze %.3f", shedRate(0), shedRate(2))
	}
	if snaps[2].Shed == 0 {
		t.Fatal("overload shed nothing from the lowest class")
	}
}

func TestSubsetCapAndTruncate(t *testing.T) {
	if SubsetCap(LevelFull, 3) != 3 || SubsetCap(LevelShed, 3) != 3 {
		t.Error("full/shed levels must not cap")
	}
	if got := SubsetCap(LevelCapped, 3); got != 2 {
		t.Errorf("capped cap(3) = %d, want 2", got)
	}
	if got := SubsetCap(LevelGreedy, 3); got != 1 {
		t.Errorf("greedy cap(3) = %d, want 1", got)
	}
	exec := []time.Duration{20 * time.Millisecond, 80 * time.Millisecond, 90 * time.Millisecond}
	full := ensemble.Empty.With(0).With(1).With(2)
	got := TruncateSubset(full, 2, exec)
	want := ensemble.Empty.With(0).With(1)
	if got != want {
		t.Errorf("truncate to 2 = %v, want cheapest two %v", got, want)
	}
	if got := TruncateSubset(full, 1, exec); got != ensemble.Empty.With(0) {
		t.Errorf("truncate to 1 = %v, want cheapest model", got)
	}
	// No-op when already within cap, and cap<=0 means uncapped.
	if got := TruncateSubset(want, 2, exec); got != want {
		t.Errorf("truncate no-op changed subset: %v", got)
	}
	if got := TruncateSubset(full, 0, exec); got != full {
		t.Errorf("cap 0 should be uncapped, got %v", got)
	}
}

func TestLevelStrings(t *testing.T) {
	for l, want := range map[Level]string{
		LevelFull: "full", LevelCapped: "capped", LevelGreedy: "greedy", LevelShed: "shed",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), want)
		}
	}
	if LadderName(0) != "full-service" || LadderName(2) != "degrade-2" {
		t.Errorf("LadderName wrong: %q %q", LadderName(0), LadderName(2))
	}
}

// TestDeterministicReplay pins that the controller is a pure function of
// its call sequence: two controllers fed the same virtual-time calls
// agree on every decision.
func TestDeterministicReplay(t *testing.T) {
	mk := func() *Controller {
		return New(Config{Classes: threeClasses(), Tuning: Tuning{Capacity: 8}})
	}
	a, b := mk(), mk()
	r := rng.New(42)
	now := time.Duration(0)
	for i := 0; i < 5000; i++ {
		now += time.Duration(r.Exponential(100) * float64(time.Second))
		switch r.Intn(3) {
		case 0:
			c := r.Intn(3)
			if a.Admit(now, c) != b.Admit(now, c) {
				t.Fatalf("step %d: Admit diverged", i)
			}
		case 1:
			bl := r.Intn(100)
			sl := r.Float64()
			a.Observe(now, bl, sl)
			b.Observe(now, bl, sl)
		case 2:
			if a.Ladder() != b.Ladder() || a.Load() != b.Load() {
				t.Fatalf("step %d: state diverged", i)
			}
		}
	}
}

// TestRetryAfterExtremeLoad is the overflow regression: with a tiny
// capacity and an astronomically large backlog the load*Target product
// exceeds int64 nanoseconds, and the naive conversion wrapped negative —
// an overloaded server telling clients to retry immediately. The hint
// must stay clamped to [Target, maxRetryAfter] at every load.
func TestRetryAfterExtremeLoad(t *testing.T) {
	c := New(Config{Classes: threeClasses(), Tuning: Tuning{Capacity: 1e-9}})
	now := time.Duration(0)
	for i := 0; i < 50; i++ {
		now += 100 * time.Millisecond
		c.Observe(now, math.MaxInt32, 1)
	}
	if load := c.Load(); load < 1e12 {
		t.Fatalf("load = %g; fixture failed to reach an overflowing regime", load)
	}
	ra := c.RetryAfter()
	if ra <= 0 {
		t.Fatalf("RetryAfter = %v under extreme load; overflow wrapped negative", ra)
	}
	if ra != maxRetryAfter {
		t.Errorf("RetryAfter = %v, want the %v cap", ra, maxRetryAfter)
	}
}

// TestRetryAfterIdleAndNaN pins the two degenerate regimes: an idle
// controller (load 0, or never observed) hints exactly one Target, and a
// NaN load — unreachable through the public API, but guarded so a future
// estimator bug degrades to the cap instead of a negative header.
func TestRetryAfterIdleAndNaN(t *testing.T) {
	c := New(Config{Classes: threeClasses(), Tuning: Tuning{Capacity: 10}})
	if got := c.RetryAfter(); got != c.tun.Target {
		t.Errorf("unobserved RetryAfter = %v, want Target %v", got, c.tun.Target)
	}
	c.Observe(100*time.Millisecond, 0, 0)
	if got := c.RetryAfter(); got != c.tun.Target {
		t.Errorf("idle RetryAfter = %v, want Target %v", got, c.tun.Target)
	}
	c.mu.Lock()
	c.load = math.NaN()
	c.mu.Unlock()
	if got := c.RetryAfter(); got != maxRetryAfter {
		t.Errorf("NaN-load RetryAfter = %v, want the %v cap", got, maxRetryAfter)
	}
}

// TestRetryAfterMonotoneThroughCap sweeps loads across twelve orders of
// magnitude: the hint must be non-decreasing all the way into the cap.
func TestRetryAfterMonotoneThroughCap(t *testing.T) {
	prev := time.Duration(-1)
	for exp := 0; exp <= 12; exp++ {
		c := New(Config{Classes: threeClasses(), Tuning: Tuning{Capacity: 10}})
		c.mu.Lock()
		c.load = math.Pow(10, float64(exp))
		c.seen = true
		c.mu.Unlock()
		ra := c.RetryAfter()
		if ra < prev {
			t.Fatalf("RetryAfter shrank at load 1e%d: %v (prev %v)", exp, ra, prev)
		}
		if ra <= 0 || ra > maxRetryAfter {
			t.Fatalf("RetryAfter = %v at load 1e%d, outside (0, %v]", ra, exp, maxRetryAfter)
		}
		prev = ra
	}
}
