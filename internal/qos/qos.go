// Package qos is the overload-control core shared by the concurrent
// serving runtime (internal/serve) and the discrete-event simulator
// (internal/sim): multi-class admission control, a load estimator, and a
// degradation ladder. Keeping it engine-agnostic — all methods take the
// caller's virtual clock, nothing here reads the wall clock or draws
// randomness — is what lets sim<->serve equivalence tests pin both
// engines to the same overload semantics.
//
// The model: requests belong to classes (tenant/priority tiers), each
// with a priority, a default deadline, and a weighted share of the
// runtime's estimated service capacity. A load estimator smooths the
// backlog (buffered + queued + forming work, in seconds of service) and
// the scheduler's slack into a single pressure figure. From that figure a
// hysteresis-guarded degradation ladder assigns every class a service
// level — full, capped, greedy, or shed — always degrading the
// lowest-priority classes first and restoring them last. Admission is
// enforced by per-class token buckets refilled at the class's weighted
// share of capacity, with surplus tokens spilling into a shared pool that
// higher-priority classes can drain deeper than lower ones, so borrowing
// never starves a class of its reserved share and shedding always draws
// from the lowest priorities (or over-quota traffic) first — never at
// random.
package qos

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"schemble/internal/ensemble"
)

// Class is one request class (a tenant or priority tier).
type Class struct {
	// Name identifies the class in APIs, stats and metrics labels.
	Name string
	// Priority orders protection under overload: higher-priority classes
	// degrade later and shed last. Ties are broken by declaration order
	// (earlier declaration = higher effective priority).
	Priority int
	// Deadline is the class's default relative deadline, used when a
	// request does not carry an explicit one.
	Deadline time.Duration
	// Weight is the class's share of admission capacity relative to the
	// other classes' weights; non-positive means 1.
	Weight float64
}

// Level is a class's current service level on the degradation ladder.
type Level uint8

const (
	// LevelFull plans the class with the configured scheduler, uncapped.
	LevelFull Level = iota
	// LevelCapped keeps the configured scheduler but caps the subset size,
	// trading accuracy for capacity; results are marked Degraded.
	LevelCapped
	// LevelGreedy switches the class to the cheap greedy planner with a
	// single-model cap; results are marked Degraded.
	LevelGreedy
	// LevelShed rejects the class's new requests at admission.
	LevelShed
)

// String names the level for stats and metrics.
func (l Level) String() string {
	switch l {
	case LevelFull:
		return "full"
	case LevelCapped:
		return "capped"
	case LevelGreedy:
		return "greedy"
	case LevelShed:
		return "shed"
	}
	return fmt.Sprintf("level-%d", uint8(l))
}

// Tuning are the admission controller's knobs. The zero value means
// defaults everywhere, which is what production configs should start
// from.
type Tuning struct {
	// Capacity is the estimated sustainable service rate in requests per
	// virtual second. 0 means the caller's estimate (engines derive it
	// from profiled latencies and replica counts).
	Capacity float64
	// Target is the backlog — expressed as virtual seconds of queued
	// service work — regarded as full utilization: load 1.0 means "about
	// Target seconds of work is waiting". Default 500ms.
	Target time.Duration
	// Tau is the load EWMA's time constant; observations older than a few
	// Tau stop mattering. Default 200ms.
	Tau time.Duration
	// GateLoad is the smoothed load below which admission is
	// unconditional (token buckets only bind under overload). Default 1.
	GateLoad float64
	// LadderBase and LadderStep place the degradation ladder's rungs:
	// step s engages when load >= LadderBase + s*LadderStep. Defaults 1
	// and 0.5.
	LadderBase, LadderStep float64
	// DownFactor scales a rung's engage threshold into its release
	// threshold (hysteresis): step s disengages only when load falls
	// below (LadderBase + (s-1)*LadderStep) * DownFactor. Default 0.7.
	DownFactor float64
	// Dwell is the minimum virtual time between ladder transitions, so a
	// load hovering exactly on a rung cannot flap the ladder. Default
	// 250ms.
	Dwell time.Duration
	// Burst sizes each class's token bucket as this many seconds of its
	// reserved rate. Default 1s.
	Burst time.Duration
}

// Config configures a Controller.
type Config struct {
	// Classes declares the request classes. Empty means classless: the
	// load estimator still runs (for load-derived Retry-After hints) but
	// every admission decision is "admit" and the ladder stays at zero.
	Classes []Class
	Tuning  Tuning
}

// withDefaults resolves zero tuning fields.
func (t Tuning) withDefaults() Tuning {
	if t.Capacity <= 0 {
		t.Capacity = 1
	}
	if t.Target <= 0 {
		t.Target = 500 * time.Millisecond
	}
	if t.Tau <= 0 {
		t.Tau = 200 * time.Millisecond
	}
	if t.GateLoad <= 0 {
		t.GateLoad = 1
	}
	if t.LadderBase <= 0 {
		t.LadderBase = 1
	}
	if t.LadderStep <= 0 {
		t.LadderStep = 0.5
	}
	if t.DownFactor <= 0 || t.DownFactor >= 1 {
		t.DownFactor = 0.7
	}
	if t.Dwell <= 0 {
		t.Dwell = 250 * time.Millisecond
	}
	if t.Burst <= 0 {
		t.Burst = time.Second
	}
	return t
}

// classState is one class's admission bookkeeping.
type classState struct {
	cls  Class
	rank int // 0 = lowest priority; C-1 = highest
	// rate is the class's reserved refill rate (tokens per virtual
	// second); burst caps the bucket.
	rate, burst float64
	// floor is how many pool tokens must remain untouched when this class
	// borrows — the cumulative reserve of every higher-priority class, so
	// borrowing can never exhaust what higher tiers may need next.
	floor  float64
	tokens float64

	admitted, shed uint64
}

// Controller is the shared overload-control state machine. All methods
// are safe for concurrent use; every method takes (or derives from) the
// caller's virtual clock, so a (Config, call-sequence) pair replays
// bit-identically.
type Controller struct {
	mu  sync.Mutex
	tun Tuning

	// classes' per-class token buckets and shed counters mutate under mu;
	// the cls/rank/rate/floor configuration is written once in New.
	//schemble:guardedby mu token buckets and counters mutate under mu
	classes []classState
	byName  map[string]int
	// defaultIdx is the class unnamed/unknown requests map to: the
	// lowest-priority class (untagged traffic never lands in a protected
	// tier).
	defaultIdx int

	load     float64       //schemble:guardedby mu smoothed load estimate
	seen     bool          //schemble:guardedby mu first-observation latch
	lastObs  time.Duration //schemble:guardedby mu estimator clock
	slack    float64       //schemble:guardedby mu latest deadline-slack sample
	ladder   int           //schemble:guardedby mu degradation rung
	maxRung  int
	sinceLad time.Duration //schemble:guardedby mu ladder dwell clock

	lastRefill time.Duration //schemble:guardedby mu bucket refill clock
	pool       float64       //schemble:guardedby mu shared borrow pool
	poolCap    float64
}

// New builds a controller. Classes must have unique non-empty names and
// positive deadlines; an empty class list builds a classless controller
// (load estimation only).
func New(cfg Config) *Controller {
	tun := cfg.Tuning.withDefaults()
	c := &Controller{
		tun:    tun,
		byName: make(map[string]int, len(cfg.Classes)),
	}
	if len(cfg.Classes) == 0 {
		return c
	}
	sumW := 0.0
	for i, cl := range cfg.Classes {
		if cl.Name == "" {
			panic("qos: class name must be non-empty")
		}
		if _, dup := c.byName[cl.Name]; dup {
			panic("qos: duplicate class name " + cl.Name)
		}
		if cl.Deadline <= 0 {
			panic("qos: class " + cl.Name + " needs a positive Deadline")
		}
		if cl.Weight <= 0 {
			cl.Weight = 1
		}
		c.byName[cl.Name] = i
		c.classes = append(c.classes, classState{cls: cl})
		sumW += cl.Weight
	}
	// Rank by priority ascending, declaration order breaking ties (the
	// earlier-declared class outranks the later one, so its index sorts
	// later in this ascending order).
	idx := make([]int, len(c.classes))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		//schemble:guardedby-ok comparator runs inline inside New before the controller is published
		pa, pb := c.classes[idx[a]].cls.Priority, c.classes[idx[b]].cls.Priority
		if pa != pb {
			return pa < pb
		}
		return idx[a] > idx[b]
	})
	for rank, i := range idx {
		c.classes[i].rank = rank
	}
	burstS := tun.Burst.Seconds()
	for i := range c.classes {
		cs := &c.classes[i]
		cs.rate = tun.Capacity * cs.cls.Weight / sumW
		cs.burst = cs.rate * burstS
		if cs.burst < 1 {
			cs.burst = 1
		}
		cs.tokens = cs.burst // start full: a cold start admits a burst
	}
	// Pool floors: each class leaves half a burst's worth of room for
	// every strictly-higher-priority class, so the borrowing tier is
	// priority-monotone by construction (the top class drains the pool to
	// zero; the bottom class only skims the surplus).
	for i := range c.classes {
		cs := &c.classes[i]
		for j := range c.classes {
			if c.classes[j].rank > cs.rank {
				cs.floor += c.classes[j].burst / 2
			}
		}
	}
	c.poolCap = tun.Capacity * burstS
	if c.poolCap < 1 {
		c.poolCap = 1
	}
	c.defaultIdx = idx[0]
	// Top ladder rung: the highest-priority class degrades at most to
	// LevelGreedy — admission-shedding it is never the controller's call
	// (hard saturation is the runtime's queue-rejection job).
	c.maxRung = len(c.classes) - 1 + int(LevelGreedy)
	return c
}

// Classes reports how many classes are configured (0 = classless).
//
//schemble:guardedby-ok the classes slice header and class config are immutable after New; only element counters mutate under mu
func (c *Controller) Classes() int { return len(c.classes) }

// Class returns class i's declaration.
//
//schemble:guardedby-ok cls is written once in New and never mutated; no lock needed for this immutable read
func (c *Controller) Class(i int) Class { return c.classes[i].cls }

// ClassIndex maps a class name to its index. Unknown or empty names map
// to the lowest-priority class; a classless controller returns -1.
func (c *Controller) ClassIndex(name string) int {
	//schemble:guardedby-ok slice header is immutable after New; len is safe without the lock
	if len(c.classes) == 0 {
		return -1
	}
	if i, ok := c.byName[name]; ok {
		return i
	}
	return c.defaultIdx
}

// Rank returns class i's priority rank (0 = lowest priority).
//
//schemble:guardedby-ok rank is written once in New and never mutated; no lock needed for this immutable read
func (c *Controller) Rank(i int) int { return c.classes[i].rank }

// Observe feeds the load estimator one measurement: backlog is the count
// of requests waiting anywhere in the engine (buffer + model queues +
// forming batches), and slack is the fraction of the last planning pass's
// buffer the scheduler could not place (0 = everything planned). now is
// the caller's virtual clock.
func (c *Controller) Observe(now time.Duration, backlog int, slack float64) {
	if slack < 0 {
		slack = 0
	} else if slack > 1 {
		slack = 1
	}
	raw := (float64(backlog)/c.tun.Capacity)/c.tun.Target.Seconds() + slack
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.seen {
		c.load = raw
		c.seen = true
		c.lastObs = now
		c.sinceLad = now
	} else {
		dt := now - c.lastObs
		if dt < 0 {
			dt = 0
		}
		c.lastObs = now
		w := 1 - math.Exp(-dt.Seconds()/c.tun.Tau.Seconds())
		c.load += w * (raw - c.load)
	}
	c.slack = slack
	c.stepLadderLocked(now)
}

// stepLadderLocked moves the ladder at most one rung, honoring hysteresis
// (release thresholds sit below engage thresholds) and the minimum dwell
// time, so a steady load parked exactly on a rung boundary can never flap
// the ladder.
func (c *Controller) stepLadderLocked(now time.Duration) {
	if len(c.classes) == 0 {
		return
	}
	if now-c.sinceLad < c.tun.Dwell {
		return
	}
	up := c.tun.LadderBase + float64(c.ladder)*c.tun.LadderStep
	if c.ladder < c.maxRung && c.load >= up {
		c.ladder++
		c.sinceLad = now
		return
	}
	if c.ladder > 0 {
		down := (c.tun.LadderBase + float64(c.ladder-1)*c.tun.LadderStep) * c.tun.DownFactor
		if c.load < down {
			c.ladder--
			c.sinceLad = now
		}
	}
}

// Load returns the smoothed pressure estimate: ~0 idle, 1 at the target
// backlog, and climbing without bound as the backlog grows.
func (c *Controller) Load() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.load
}

// Ladder returns the current ladder rung (0 = full service for all).
func (c *Controller) Ladder() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ladder
}

// LadderName names rung s for stats and metrics.
func LadderName(s int) string {
	if s == 0 {
		return "full-service"
	}
	return fmt.Sprintf("degrade-%d", s)
}

// levelAtLocked is the ladder→class mapping: rung s puts the class ranked
// r (0 = lowest) at level min(s-r, LevelShed) — the bottom class degrades
// first and sheds first, each higher class trails one rung behind, and
// restoration unwinds in exactly the reverse order.
func (c *Controller) levelAtLocked(i int) Level {
	d := c.ladder - c.classes[i].rank
	if d <= 0 {
		return LevelFull
	}
	if d >= int(LevelShed) {
		return LevelShed
	}
	return Level(d)
}

// Level returns class i's current service level.
func (c *Controller) Level(i int) Level {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.levelAtLocked(i)
}

// refillLocked advances the token buckets to now: every class accrues its
// reserved rate, overflow beyond its burst spills into the shared pool.
func (c *Controller) refillLocked(now time.Duration) {
	dt := now - c.lastRefill
	if dt <= 0 {
		return
	}
	c.lastRefill = now
	sec := dt.Seconds()
	for i := range c.classes {
		cs := &c.classes[i]
		cs.tokens += cs.rate * sec
		if cs.tokens > cs.burst {
			c.pool += cs.tokens - cs.burst
			cs.tokens = cs.burst
		}
	}
	if c.pool > c.poolCap {
		c.pool = c.poolCap
	}
}

// Admit decides whether a class-i request arriving at virtual time now
// may enter the engine. Classless controllers always admit. Under the
// gate load everything is admitted (buckets refill meanwhile, so the
// overload transition starts with full bursts); above it, a request needs
// a token from its class's reserved bucket or from the shared surplus
// pool — where lower-priority classes must leave the higher tiers'
// headroom untouched. A class at LevelShed on the ladder is rejected
// outright.
func (c *Controller) Admit(now time.Duration, i int) bool {
	if len(c.classes) == 0 {
		return true
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refillLocked(now)
	cs := &c.classes[i]
	if c.levelAtLocked(i) == LevelShed {
		cs.shed++
		return false
	}
	if c.load < c.tun.GateLoad {
		cs.admitted++
		return true
	}
	if cs.tokens >= 1 {
		cs.tokens--
		cs.admitted++
		return true
	}
	if c.pool-cs.floor >= 1 {
		c.pool--
		cs.admitted++
		return true
	}
	cs.shed++
	return false
}

// maxRetryAfter caps the back-off hint: past an hour the estimate carries
// no information a client could act on, and capping in float space keeps
// the load*Target product from overflowing time.Duration's int64 range
// under extreme backlogs.
const maxRetryAfter = time.Hour

// RetryAfter derives a back-off hint from the load estimate: roughly how
// long (virtual time) until the smoothed backlog drains, clamped to
// [Target, maxRetryAfter]. Callers convert to wall time and round up to
// whole seconds for the HTTP header.
func (c *Controller) RetryAfter() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.load * float64(c.tun.Target)
	// Compare before converting: a huge or NaN product would wrap or
	// poison the int64 conversion, turning an overload hint negative.
	if math.IsNaN(f) || f > float64(maxRetryAfter) {
		return maxRetryAfter
	}
	d := time.Duration(f)
	if d < c.tun.Target {
		d = c.tun.Target
	}
	return d
}

// ClassSnapshot is one class's point-in-time admission state.
type ClassSnapshot struct {
	Name     string
	Priority int
	Weight   float64
	// Level is the class's current service level on the ladder.
	Level Level
	// Admitted and Shed count this controller's admission decisions.
	Admitted, Shed uint64
	// Tokens is the reserved bucket's current fill; Rate its refill rate
	// (requests per virtual second).
	Tokens, Rate float64
}

// Snapshot captures the controller's admission state: smoothed load,
// ladder rung, and per-class levels/counters, in declaration order.
func (c *Controller) Snapshot() (load float64, ladder int, classes []ClassSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	classes = make([]ClassSnapshot, len(c.classes))
	for i := range c.classes {
		cs := &c.classes[i]
		classes[i] = ClassSnapshot{
			Name:     cs.cls.Name,
			Priority: cs.cls.Priority,
			Weight:   cs.cls.Weight,
			Level:    c.levelAtLocked(i),
			Admitted: cs.admitted,
			Shed:     cs.shed,
			Tokens:   cs.tokens,
			Rate:     cs.rate,
		}
	}
	return c.load, c.ladder, classes
}

// SubsetCap is the per-level subset-size cap both engines apply to
// degraded plans: capped classes run at most half the ensemble (rounded
// up), greedy classes a single model, everything else uncapped.
func SubsetCap(l Level, m int) int {
	switch l {
	case LevelCapped:
		return (m + 1) / 2
	case LevelGreedy:
		return 1
	}
	return m
}

// TruncateSubset enforces a subset-size cap on a planned subset, keeping
// the cap cheapest models (by expected execution time, ties by index) so
// a degraded plan frees the most contended capacity. Both engines share
// this rule, keeping the sim<->serve equivalence exact under degraded
// ladder states.
func TruncateSubset(sub ensemble.Subset, cap int, exec []time.Duration) ensemble.Subset {
	if cap <= 0 || sub.Size() <= cap {
		return sub
	}
	models := sub.Models()
	sort.SliceStable(models, func(a, b int) bool {
		return exec[models[a]] < exec[models[b]]
	})
	out := ensemble.Empty
	for _, k := range models[:cap] {
		out = out.With(k)
	}
	return out
}
