// Package profiling builds the bridge between discrepancy scores and
// scheduling rewards (Section V-D): historical samples are divided into
// bins by score, and the mean agreement of every model subset with the full
// ensemble is measured per bin. The resulting table U(bin, subset) is the
// scheduler's utility function. For large ensembles, where measuring all
// 2^m-1 subsets is too expensive, Eq. 3's marginal-reward recursion
// estimates rewards of subsets larger than two from singleton and pair
// measurements.
package profiling

import (
	"fmt"
	"sort"

	"schemble/internal/ensemble"
)

// Profile is the per-bin subset reward table.
type Profile struct {
	M    int
	Bins int
	// Edges are the bin boundaries over scores: bin b covers
	// (Edges[b-1], Edges[b]]; len(Edges) == Bins-1.
	Edges []float64
	// U[b][s] is the mean agreement of subset s (bitmask index) with the
	// full ensemble among bin-b samples; U[b][0] is unused.
	U [][]float64
	// Counts[b] is the number of samples profiled into bin b.
	Counts []int
}

// Config controls Build.
type Config struct {
	M    int
	Bins int // default 10
	// Smoothing is the pseudo-count of the hierarchical shrinkage prior:
	// each bin's subset reward is the posterior mean
	// (sum + Smoothing*globalMean) / (count + Smoothing), which keeps
	// sparse bins from saturating at exactly 0 or 1 on finite samples.
	// Defaults to 25; set negative to disable.
	Smoothing float64
}

// Build profiles rewards from historical data: scores[i] is sample i's
// discrepancy score; agree(i, s) is the agreement of subset s with the full
// ensemble on sample i (precomputed outputs make this cheap). Bin edges are
// score quantiles so every bin holds comparable mass — important because
// the score distribution concentrates near zero.
func Build(cfg Config, scores []float64, agree func(i int, s ensemble.Subset) float64) *Profile {
	if len(scores) == 0 {
		panic("profiling: no samples")
	}
	if cfg.Bins <= 0 {
		cfg.Bins = 10
	}
	if cfg.M <= 0 || cfg.M > ensemble.MaxModels {
		panic("profiling: bad ensemble size")
	}
	p := &Profile{M: cfg.M, Bins: cfg.Bins}

	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	for b := 1; b < cfg.Bins; b++ {
		q := float64(b) / float64(cfg.Bins)
		p.Edges = append(p.Edges, sorted[int(q*float64(len(sorted)-1))])
	}

	nSubsets := 1 << uint(cfg.M)
	p.U = make([][]float64, cfg.Bins)
	p.Counts = make([]int, cfg.Bins)
	for b := range p.U {
		p.U[b] = make([]float64, nSubsets)
	}
	global := make([]float64, nSubsets)
	for i, sc := range scores {
		b := p.Bin(sc)
		p.Counts[b]++
		for s := ensemble.Subset(1); int(s) < nSubsets; s++ {
			a := agree(i, s)
			p.U[b][s] += a
			global[s] += a
		}
	}
	for s := 1; s < nSubsets; s++ {
		global[s] /= float64(len(scores))
	}
	smoothing := cfg.Smoothing
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if smoothing == 0 {
		smoothing = 25
	}
	if smoothing < 0 {
		smoothing = 0
	}
	for b := range p.U {
		if p.Counts[b] == 0 {
			continue
		}
		n := float64(p.Counts[b])
		for s := 1; s < nSubsets; s++ {
			p.U[b][s] = (p.U[b][s] + smoothing*global[s]) / (n + smoothing)
		}
	}
	p.fillEmptyBins()
	p.enforceMonotone()
	return p
}

// fillEmptyBins copies the nearest non-empty bin's rewards into empty bins.
func (p *Profile) fillEmptyBins() {
	for b := range p.U {
		if p.Counts[b] > 0 {
			continue
		}
		for d := 1; d < p.Bins; d++ {
			if b-d >= 0 && p.Counts[b-d] > 0 {
				copy(p.U[b], p.U[b-d])
				break
			}
			if b+d < p.Bins && p.Counts[b+d] > 0 {
				copy(p.U[b], p.U[b+d])
				break
			}
		}
	}
}

// enforceMonotone nudges the table so supersets never reward less than
// their subsets — the diminishing-marginal-utility assumption (Assumption 1)
// the scheduler's analysis relies on; sampling noise in sparse bins can
// otherwise violate it.
func (p *Profile) enforceMonotone() {
	nSubsets := 1 << uint(p.M)
	for b := range p.U {
		// Process subsets in ascending popcount order so each superset
		// sees finalized subset values.
		order := make([]int, 0, nSubsets-1)
		for s := 1; s < nSubsets; s++ {
			order = append(order, s)
		}
		sort.Slice(order, func(i, j int) bool {
			return ensemble.Subset(order[i]).Size() < ensemble.Subset(order[j]).Size()
		})
		for _, s := range order {
			sub := ensemble.Subset(s)
			for k := 0; k < p.M; k++ {
				if !sub.Contains(k) {
					continue
				}
				smaller := sub.Without(k)
				if smaller == ensemble.Empty {
					continue
				}
				if p.U[b][s] < p.U[b][smaller] {
					p.U[b][s] = p.U[b][smaller]
				}
			}
		}
	}
}

// Bin maps a score to its bin index.
func (p *Profile) Bin(score float64) int {
	b := sort.SearchFloat64s(p.Edges, score)
	if b >= p.Bins {
		b = p.Bins - 1
	}
	return b
}

// Reward returns U(bin(score), s). The empty subset earns 0.
func (p *Profile) Reward(score float64, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	return p.U[p.Bin(score)][s]
}

// RewardBin returns U(b, s) by bin index.
func (p *Profile) RewardBin(b int, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	return p.U[b][s]
}

// BestSubsetWithin returns the subset drawn from allowed with the highest
// reward for score; ties prefer smaller subsets (cheaper execution).
func (p *Profile) BestSubsetWithin(score float64, allowed []ensemble.Subset) ensemble.Subset {
	best := ensemble.Empty
	bestR := -1.0
	for _, s := range allowed {
		r := p.Reward(score, s)
		//schemble:floateq-ok deterministic tie-break: an exact reward tie prefers the smaller subset
		if r > bestR || (r == bestR && s.Size() < best.Size()) {
			best, bestR = s, r
		}
	}
	return best
}

// String summarizes the profile.
func (p *Profile) String() string {
	return fmt.Sprintf("profile{m=%d bins=%d}", p.M, p.Bins)
}
