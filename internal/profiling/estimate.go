package profiling

import (
	"sort"

	"schemble/internal/ensemble"
)

// Estimator implements Eq. 3: for ensembles too large to profile
// exhaustively, rewards of subsets of size > 2 are estimated from singleton
// and pair measurements via the diminishing-marginal-reward recursion
//
//	U(b, {m1..mk+1}) = U(b, {m1..mk})
//	                 + gamma_k * (1/k) * sum_q [U(b,{mq,mk+1}) - U(b,{mq})]
//
// with models sorted by accuracy. Gamma factors are either supplied or fit
// against a handful of measured larger subsets (FitGammas).
type Estimator struct {
	p *Profile
	// order[k] is the model index with the k-th highest singleton reward
	// (averaged over bins), the paper's "sorted by accuracy".
	order []int
	// gammas[k] applies when extending a size-k prefix (k >= 2);
	// gammas[0], gammas[1] are unused.
	gammas []float64
}

// DefaultGammas returns geometric diminishing factors gamma_k = 0.6^(k-1),
// a serviceable prior when no larger subsets were profiled.
func DefaultGammas(m int) []float64 {
	g := make([]float64, m)
	v := 0.6
	for k := 2; k < m; k++ {
		g[k] = v
		v *= 0.6
	}
	return g
}

// NewEstimator builds an estimator over a profile that has (at least)
// singleton and pair rewards measured. gammas may come from DefaultGammas
// or FitGammas.
func NewEstimator(p *Profile, gammas []float64) *Estimator {
	e := &Estimator{p: p, gammas: gammas}
	// Rank models by mean singleton reward.
	mean := make([]float64, p.M)
	for k := 0; k < p.M; k++ {
		var s float64
		for b := 0; b < p.Bins; b++ {
			s += p.U[b][ensemble.Single(k)]
		}
		mean[k] = s / float64(p.Bins)
	}
	e.order = make([]int, p.M)
	for i := range e.order {
		e.order[i] = i
	}
	sort.Slice(e.order, func(a, b int) bool { return mean[e.order[a]] > mean[e.order[b]] })
	return e
}

// Reward estimates U(b, s). Subsets of size <= 2 read the measured table
// directly; larger subsets apply the recursion.
func (e *Estimator) Reward(b int, s ensemble.Subset) float64 {
	if s == ensemble.Empty {
		return 0
	}
	if s.Size() <= 2 {
		return e.p.U[b][s]
	}
	// Order the subset's models by global accuracy rank.
	var members []int
	for _, k := range e.order {
		if s.Contains(k) {
			members = append(members, k)
		}
	}
	cur := ensemble.Single(members[0])
	u := e.p.U[b][cur]
	for k := 1; k < len(members); k++ {
		next := members[k]
		var marginal float64
		for q := 0; q < k; q++ {
			pair := ensemble.Single(members[q]).With(next)
			marginal += e.p.U[b][pair] - e.p.U[b][ensemble.Single(members[q])]
		}
		marginal /= float64(k)
		gamma := 1.0
		if k >= 2 {
			if k < len(e.gammas) {
				gamma = e.gammas[k]
			} else {
				gamma = e.gammas[len(e.gammas)-1]
			}
		}
		u += gamma * marginal
		cur = cur.With(next)
	}
	if u > 1 {
		u = 1
	}
	return u
}

// RewarderFor adapts the estimator to the scheduler's Rewarder interface
// over the profile's bin edges: rewards of small subsets come from the
// measured table, larger subsets from the Eq. 3 recursion. This is how a
// large ensemble (profiling only singletons and pairs) plugs into the DP
// scheduler.
type estimatorRewarder struct {
	p *Profile
	e *Estimator
}

// RewarderFor returns a score-indexed reward function backed by est.
func RewarderFor(p *Profile, est *Estimator) interface {
	Reward(score float64, s ensemble.Subset) float64
} {
	return estimatorRewarder{p, est}
}

// Reward implements core.Rewarder.
func (r estimatorRewarder) Reward(score float64, s ensemble.Subset) float64 {
	return r.e.Reward(r.p.Bin(score), s)
}

// FitGammas fits the per-size diminishing factors against a fully measured
// profile by least squares: for each prefix size k >= 2 it chooses the
// gamma_k minimizing the squared error between the recursion's prediction
// and the measured reward of the corresponding (k+1)-subsets, across bins.
func FitGammas(p *Profile) []float64 {
	e := NewEstimator(p, make([]float64, p.M)) // gammas filled below
	gammas := make([]float64, p.M)
	for k := 2; k < p.M; k++ {
		var num, den float64
		for b := 0; b < p.Bins; b++ {
			for _, s := range ensemble.SubsetsOfSize(p.M, k+1) {
				// Order members by accuracy and split prefix/last.
				var members []int
				for _, mi := range e.order {
					if s.Contains(mi) {
						members = append(members, mi)
					}
				}
				last := members[k]
				prefix := ensemble.Empty
				for _, mi := range members[:k] {
					prefix = prefix.With(mi)
				}
				// Measured prefix value (exact from the table) and the
				// marginal term of Eq. 3.
				uPrefix := p.U[b][prefix]
				var marginal float64
				for q := 0; q < k; q++ {
					pair := ensemble.Single(members[q]).With(last)
					marginal += p.U[b][pair] - p.U[b][ensemble.Single(members[q])]
				}
				marginal /= float64(k)
				target := p.U[b][s] - uPrefix
				num += marginal * target
				den += marginal * marginal
			}
		}
		if den > 0 {
			g := num / den
			if g < 0 {
				g = 0
			}
			if g > 1 {
				g = 1
			}
			gammas[k] = g
		} else {
			gammas[k] = 0.6
		}
	}
	return gammas
}
