package profiling

import (
	"math"
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/model"
)

// tmFixture builds scores and an agreement oracle over a text-matching set.
func tmFixture(t *testing.T, n int, seed uint64) ([]float64, func(int, ensemble.Subset) float64, *ensemble.Ensemble) {
	t.Helper()
	ds := dataset.TextMatching(dataset.Config{N: n, Seed: seed})
	models := model.TextMatchingModels(seed + 50)
	e := ensemble.New(dataset.Classification, models, &ensemble.Average{}, nil)
	scorer := ensemble.NewScorer(ds)
	var all [][]model.Output
	var ens []model.Output
	for _, s := range ds.Samples {
		outs := e.Outputs(s)
		all = append(all, outs)
		ens = append(ens, e.Predict(outs, e.FullSubset()))
	}
	dsc := discrepancy.Fit(discrepancy.FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = dsc.Score(all[i], ens[i])
	}
	agree := func(i int, s ensemble.Subset) float64 {
		return scorer.Score(e.Predict(all[i], s), ens[i])
	}
	return scores, agree, e
}

func TestBuildBasics(t *testing.T) {
	scores, agree, e := tmFixture(t, 2000, 1)
	p := Build(Config{M: e.M(), Bins: 10}, scores, agree)
	if p.Bins != 10 || len(p.Edges) != 9 {
		t.Fatalf("bins %d edges %d", p.Bins, len(p.Edges))
	}
	total := 0
	for _, c := range p.Counts {
		total += c
	}
	if total != 2000 {
		t.Errorf("counts sum to %d", total)
	}
	full := e.FullSubset()
	for b := 0; b < p.Bins; b++ {
		if got := p.RewardBin(b, full); math.Abs(got-1) > 1e-9 {
			t.Errorf("full subset reward in bin %d = %v, want 1", b, got)
		}
		for s := ensemble.Subset(1); s <= full; s++ {
			r := p.RewardBin(b, s)
			if r < 0 || r > 1 {
				t.Fatalf("reward out of range: %v", r)
			}
		}
	}
}

func TestMonotoneInSubsetSize(t *testing.T) {
	scores, agree, e := tmFixture(t, 2000, 2)
	p := Build(Config{M: e.M(), Bins: 8}, scores, agree)
	for b := 0; b < p.Bins; b++ {
		for _, s := range ensemble.AllSubsets(e.M()) {
			for k := 0; k < e.M(); k++ {
				if s.Contains(k) || p.RewardBin(b, s.With(k)) >= p.RewardBin(b, s)-1e-12 {
					continue
				}
				t.Fatalf("bin %d: U(%v) > U(%v)", b, s, s.With(k))
			}
		}
	}
}

func TestEasyBinsRewardSmallSubsetsHighly(t *testing.T) {
	// Fig. 4b: on low-score bins even single models agree with the
	// ensemble; on high-score bins they don't.
	scores, agree, e := tmFixture(t, 4000, 3)
	p := Build(Config{M: e.M(), Bins: 10}, scores, agree)
	weakest := ensemble.Single(0)
	lowBin := p.RewardBin(0, weakest)
	highBin := p.RewardBin(p.Bins-1, weakest)
	if lowBin < highBin+0.1 {
		t.Errorf("single-model reward: easy bin %v vs hard bin %v — difficulty has no bite", lowBin, highBin)
	}
	if lowBin < 0.85 {
		t.Errorf("easy-bin single-model reward = %v, want high", lowBin)
	}
}

func TestBinAssignment(t *testing.T) {
	p := &Profile{Bins: 3, Edges: []float64{0.3, 0.6}}
	cases := []struct {
		score float64
		bin   int
	}{{0.0, 0}, {0.3, 0}, {0.31, 1}, {0.6, 1}, {0.61, 2}, {5, 2}}
	for _, c := range cases {
		if got := p.Bin(c.score); got != c.bin {
			t.Errorf("Bin(%v) = %d, want %d", c.score, got, c.bin)
		}
	}
}

func TestEmptySubsetRewardIsZero(t *testing.T) {
	scores, agree, e := tmFixture(t, 500, 4)
	p := Build(Config{M: e.M(), Bins: 5}, scores, agree)
	if p.Reward(0.2, ensemble.Empty) != 0 {
		t.Error("empty subset must earn 0")
	}
}

func TestBestSubsetWithin(t *testing.T) {
	scores, agree, e := tmFixture(t, 1500, 5)
	p := Build(Config{M: e.M(), Bins: 6}, scores, agree)
	all := ensemble.AllSubsets(e.M())
	best := p.BestSubsetWithin(0.05, all)
	if best == ensemble.Empty {
		t.Fatal("no best subset")
	}
	// The best must actually attain the maximum reward.
	for _, s := range all {
		if p.Reward(0.05, s) > p.Reward(0.05, best)+1e-12 {
			t.Fatalf("subset %v beats reported best %v", s, best)
		}
	}
}

// sixModelFixture builds a 6-model classification ensemble (the CIFAR100
// analogue of Fig. 5 / Fig. 20a).
func sixModelFixture(t *testing.T, n int) ([]float64, func(int, ensemble.Subset) float64, *ensemble.Ensemble) {
	t.Helper()
	ds := dataset.TextMatching(dataset.Config{N: n, Seed: 60})
	skills := []float64{0.70, 0.76, 0.80, 0.84, 0.87, 0.90}
	var models []model.Model
	for i, sk := range skills {
		models = append(models, model.NewSynthetic(model.SyntheticConfig{
			Name: "m", Task: dataset.Classification, Classes: 2,
			Skill: sk, Seed: uint64(700 + i),
		}))
	}
	e := ensemble.New(dataset.Classification, models, &ensemble.Average{}, nil)
	scorer := ensemble.NewScorer(ds)
	var all [][]model.Output
	var ens []model.Output
	for _, s := range ds.Samples {
		outs := e.Outputs(s)
		all = append(all, outs)
		ens = append(ens, e.Predict(outs, e.FullSubset()))
	}
	dsc := discrepancy.Fit(discrepancy.FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	scores := make([]float64, n)
	for i := range scores {
		scores[i] = dsc.Score(all[i], ens[i])
	}
	agree := func(i int, s ensemble.Subset) float64 {
		return scorer.Score(e.Predict(all[i], s), ens[i])
	}
	return scores, agree, e
}

func TestEstimatorApproximatesMeasured(t *testing.T) {
	scores, agree, e := sixModelFixture(t, 2500)
	p := Build(Config{M: e.M(), Bins: 6}, scores, agree)
	gammas := FitGammas(p)
	est := NewEstimator(p, gammas)

	var sse float64
	var count int
	for b := 0; b < p.Bins; b++ {
		for _, s := range ensemble.AllSubsets(e.M()) {
			if s.Size() < 3 {
				continue
			}
			d := est.Reward(b, s) - p.RewardBin(b, s)
			sse += d * d
			count++
		}
	}
	mse := sse / float64(count)
	// The paper reports MSE < 1.6e-4; simulated data is noisier, but the
	// estimate must still be tight.
	if mse > 0.01 {
		t.Errorf("estimation MSE = %v, want <= 0.01", mse)
	}
}

func TestEstimatorExactForSmallSubsets(t *testing.T) {
	scores, agree, e := tmFixture(t, 1000, 7)
	p := Build(Config{M: e.M(), Bins: 5}, scores, agree)
	est := NewEstimator(p, DefaultGammas(e.M()))
	for b := 0; b < p.Bins; b++ {
		for _, s := range ensemble.AllSubsets(e.M()) {
			if s.Size() > 2 {
				continue
			}
			if est.Reward(b, s) != p.RewardBin(b, s) {
				t.Fatalf("size<=2 estimate differs from measurement for %v", s)
			}
		}
	}
	if est.Reward(0, ensemble.Empty) != 0 {
		t.Error("empty estimate should be 0")
	}
}

func TestFitGammasInRange(t *testing.T) {
	scores, agree, e := sixModelFixture(t, 1500)
	p := Build(Config{M: e.M(), Bins: 5}, scores, agree)
	for k, g := range FitGammas(p) {
		if g < 0 || g > 1 {
			t.Errorf("gamma[%d] = %v out of [0,1]", k, g)
		}
	}
}

func TestDefaultGammasGeometric(t *testing.T) {
	g := DefaultGammas(5)
	if math.Abs(g[2]-0.6) > 1e-12 || math.Abs(g[3]-0.36) > 1e-12 {
		t.Errorf("default gammas = %v", g)
	}
}

func TestRewarderForLargeEnsembles(t *testing.T) {
	scores, agree, e := sixModelFixture(t, 1500)
	p := Build(Config{M: e.M(), Bins: 5}, scores, agree)
	est := NewEstimator(p, FitGammas(p))
	r := RewarderFor(p, est)
	// Small subsets match the measured table exactly.
	for _, s := range ensemble.SubsetsOfSize(e.M(), 2) {
		if r.Reward(0.3, s) != p.Reward(0.3, s) {
			t.Fatalf("pair reward mismatch for %v", s)
		}
	}
	// Large subsets are estimated, in range, and at least as good as the
	// best measured pair they contain.
	full := ensemble.Full(e.M())
	got := r.Reward(0.3, full)
	if got < 0 || got > 1 {
		t.Fatalf("estimated reward out of range: %v", got)
	}
	if r.Reward(0.3, ensemble.Empty) != 0 {
		t.Error("empty reward should be 0")
	}
}
