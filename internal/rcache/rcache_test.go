package rcache

import (
	"sync"
	"testing"
	"time"

	"schemble/internal/cluster"
	"schemble/internal/model"
	"schemble/internal/obsv"
	"schemble/internal/rng"
)

// modKeyer keys on the integer part of the first feature, modulo mod.
type modKeyer struct{ mod int }

func (m modKeyer) Key(f []float64) (int, bool) {
	if len(f) == 0 {
		return 0, false
	}
	return int(f[0]) % m.mod, true
}

func val(id int) Value {
	return Value{Output: model.Output{Value: float64(id)}}
}

func TestDisabledConfig(t *testing.T) {
	if (Config{}).Enabled() {
		t.Error("zero Config reports enabled")
	}
	if c := New(Config{}); c != nil {
		t.Error("New(zero Config) != nil")
	}
}

func TestHitMissBypass(t *testing.T) {
	c := New(Config{Keyer: modKeyer{8}, DifficultyMax: 0.5})
	f := []float64{3}

	if _, _, out := c.Lookup(0, f, 0.9); out != obsv.CacheOutcomeBypass {
		t.Fatalf("hard query outcome = %q, want bypass", out)
	}
	v, key, out := c.Lookup(0, f, 0.1)
	if out != obsv.CacheOutcomeMiss || key != 3 {
		t.Fatalf("cold lookup = (%v, %d, %q), want miss on key 3", v, key, out)
	}
	c.Fill(0, key, val(42))
	v, _, out = c.Lookup(time.Second, f, 0.1)
	if out != obsv.CacheOutcomeHit || v.Output.Value != 42 {
		t.Fatalf("warm lookup = (%v, %q), want hit with value 42", v, out)
	}
	// Unkeyable features bypass even when easy.
	if _, _, out := c.Lookup(0, nil, 0.1); out != obsv.CacheOutcomeBypass {
		t.Fatalf("unkeyable outcome = %q, want bypass", out)
	}

	s := c.Snapshot()
	if s.Hits != 1 || s.Misses != 1 || s.Bypasses != 2 || s.Fills != 1 {
		t.Errorf("snapshot = %+v, want 1 hit / 1 miss / 2 bypasses / 1 fill", s)
	}
	if s.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", s.HitRate)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Config{Keyer: modKeyer{8}, TTL: 10 * time.Second, DifficultyMax: 1})
	f := []float64{1}
	c.Fill(0, 1, val(7))
	if _, _, out := c.Lookup(5*time.Second, f, 0); out != obsv.CacheOutcomeHit {
		t.Fatalf("within TTL = %q, want hit", out)
	}
	if _, _, out := c.Lookup(11*time.Second, f, 0); out != obsv.CacheOutcomeMiss {
		t.Fatalf("past TTL = %q, want miss", out)
	}
	if s := c.Snapshot(); s.Expirations != 1 || s.Entries != 0 {
		t.Errorf("snapshot = %+v, want 1 expiration, 0 entries", s)
	}
	// Refill restarts the staleness clock.
	c.Fill(12*time.Second, 1, val(8))
	if v, _, out := c.Lookup(21*time.Second, f, 0); out != obsv.CacheOutcomeHit || v.Output.Value != 8 {
		t.Fatalf("refilled lookup = (%v, %q), want hit with value 8", v, out)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Keyer: modKeyer{16}, Capacity: 2, DifficultyMax: 1})
	c.Fill(0, 1, val(1))
	c.Fill(0, 2, val(2))
	// Touch key 1 so key 2 becomes the LRU victim.
	if _, _, out := c.Lookup(0, []float64{1}, 0); out != obsv.CacheOutcomeHit {
		t.Fatal("expected hit on key 1")
	}
	c.Fill(0, 3, val(3))
	if s := c.Snapshot(); s.Evictions != 1 || s.Entries != 2 {
		t.Fatalf("snapshot = %+v, want 1 eviction, 2 entries", s)
	}
	if _, _, out := c.Lookup(0, []float64{2}, 0); out != obsv.CacheOutcomeMiss {
		t.Error("evicted key 2 still present")
	}
	for _, k := range []float64{1, 3} {
		if _, _, out := c.Lookup(0, []float64{k}, 0); out != obsv.CacheOutcomeHit {
			t.Errorf("key %v evicted, want retained", k)
		}
	}
}

func TestCentroidKeyer(t *testing.T) {
	src := rng.New(1)
	points := [][]float64{{0, 0}, {0.1, 0}, {10, 10}, {10.1, 10}}
	km, err := cluster.Fit(points, 2, 20, src)
	if err != nil {
		t.Fatal(err)
	}
	ck := CentroidKeyer{KM: km}
	a, ok := ck.Key([]float64{0.05, 0})
	if !ok {
		t.Fatal("in-space vector unkeyable")
	}
	b, ok := ck.Key([]float64{10.05, 10})
	if !ok || a == b {
		t.Fatalf("distinct regions share key %d", a)
	}
	// Dimension mismatches and nil models must degrade to bypass, never
	// panic or alias.
	if _, ok := ck.Key([]float64{1}); ok {
		t.Error("dim-mismatched vector keyed")
	}
	if _, ok := (CentroidKeyer{}).Key([]float64{0, 0}); ok {
		t.Error("nil model keyed")
	}
}

// TestDeterministicReplay pins the qos-style contract: the same
// (Config, call-sequence) yields identical outcomes and counters.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]string, Snapshot) {
		c := New(Config{Keyer: modKeyer{4}, Capacity: 3, TTL: 8 * time.Second, DifficultyMax: 0.6})
		var outs []string
		for i := 0; i < 200; i++ {
			now := time.Duration(i) * 100 * time.Millisecond
			f := []float64{float64(i % 7)}
			score := float64(i%10) / 10
			_, key, out := c.Lookup(now, f, score)
			outs = append(outs, out)
			if out == obsv.CacheOutcomeMiss && i%3 != 0 {
				c.Fill(now, key, val(i))
			}
		}
		return outs, c.Snapshot()
	}
	o1, s1 := run()
	o2, s2 := run()
	if s1 != s2 {
		t.Fatalf("snapshots differ: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("outcome %d differs: %q vs %q", i, o1[i], o2[i])
		}
	}
}

// TestAccountingExactlyOnce hammers the cache from many goroutines under
// -race and checks that every Lookup lands in exactly one outcome
// counter and fills never exceed misses.
func TestAccountingExactlyOnce(t *testing.T) {
	c := New(Config{Keyer: modKeyer{32}, Capacity: 16, TTL: time.Minute, DifficultyMax: 0.5})
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				now := time.Duration(i) * time.Millisecond
				f := []float64{float64((w*perWorker + i) % 40)}
				score := float64(i%4) / 4
				_, key, out := c.Lookup(now, f, score)
				if out == obsv.CacheOutcomeMiss {
					c.Fill(now, key, val(i))
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Snapshot()
	if got := s.Hits + s.Misses + s.Bypasses; got != workers*perWorker {
		t.Errorf("hits+misses+bypasses = %d, want %d (exactly-once)", got, workers*perWorker)
	}
	if s.Fills > s.Misses {
		t.Errorf("fills %d > misses %d", s.Fills, s.Misses)
	}
	if s.Entries > 16 {
		t.Errorf("entries %d exceed capacity 16", s.Entries)
	}
}
