// Package rcache implements a deterministic, difficulty-gated result
// cache over the ensemble's feature space. Queries are keyed by k-means
// centroid assignment (internal/cluster): at millions of users queries
// repeat, and two queries mapping to the same competence region are close
// enough that the easy ones — as judged by the discrepancy predictor's
// difficulty score — can share a cached answer. Hard queries always run
// the ensemble: the difficulty threshold is the admission gate that
// bounds the quality cost of approximate sharing.
//
// The cache is engine-agnostic in the internal/qos mold: every method
// takes the caller's clock, and there is no wall time, randomness, or
// goroutine inside, so the concurrent runtime (internal/serve, wall time
// scaled to virtual) and the discrete-event simulator (internal/sim,
// pure virtual time) share this implementation verbatim and a fixed
// (Config, call-sequence) replays bit-identically. Eviction is LRU on
// the call order, staleness is bounded by a virtual-time TTL checked at
// lookup, and capacity is a hard bound enforced at fill.
package rcache

import (
	"sync"
	"time"

	"schemble/internal/cluster"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/obsv"
)

// Keyer maps a query's feature vector to a discrete cache key. The
// second result reports whether the vector is keyable at all; false
// (wrong feature space, empty model) forces a bypass, because a key that
// aliases across feature spaces would serve unrelated answers.
type Keyer interface {
	Key(features []float64) (key int, ok bool)
}

// CentroidKeyer keys queries by nearest-centroid assignment on a fitted
// k-means model. The key space is [0, KM.K()).
type CentroidKeyer struct {
	KM *cluster.KMeans
}

// Key implements Keyer. Dimension-mismatched vectors are unkeyable
// rather than a panic: the cache must degrade to bypass, not take the
// serving path down.
func (ck CentroidKeyer) Key(features []float64) (int, bool) {
	if ck.KM == nil || ck.KM.K() == 0 || len(features) != ck.KM.Dim() {
		return 0, false
	}
	return ck.KM.Assign(features), true
}

// Config configures a Cache. The zero value disables caching entirely
// (New returns nil), which is the bit-identity guarantee: an unconfigured
// runtime takes exactly the pre-cache code paths.
type Config struct {
	// Keyer derives cache keys from feature vectors; nil disables the
	// cache.
	Keyer Keyer
	// Capacity bounds the number of live entries; the least recently
	// used entry is evicted to make room. Default 1024.
	Capacity int
	// TTL bounds staleness in virtual time: an entry older than TTL at
	// lookup is expired (counted, removed, and treated as a miss).
	// 0 means entries never expire.
	TTL time.Duration
	// DifficultyMax is the admission gate: only queries whose difficulty
	// score is at or below it are cacheable. Harder queries bypass the
	// cache in both directions — they are never served from it and never
	// fill it.
	DifficultyMax float64
}

// Enabled reports whether this configuration turns the cache on.
func (c Config) Enabled() bool { return c.Keyer != nil }

// Value is one cached ensemble answer: the aggregated output and the
// subset that produced it (reported to clients so a cached result is
// attributable like a computed one).
type Value struct {
	Output model.Output
	Subset ensemble.Subset
}

type entry struct {
	key        int
	val        Value
	filledAt   time.Duration
	prev, next *entry
}

// Cache is the shared cache instance. Safe for concurrent use; all
// ordering-relevant state advances only on Lookup/Fill calls.
type Cache struct {
	mu  sync.Mutex
	cfg Config
	//schemble:guardedby mu live entry table
	entries map[int]*entry
	//schemble:guardedby mu LRU list links
	head, tail *entry // LRU order; head is most recently used

	//schemble:guardedby mu lookup outcome counters
	hits, misses, bypasses uint64
	//schemble:guardedby mu store/eviction counters
	fills, evicts, expiries uint64
}

// New returns a cache for cfg, or nil when cfg does not enable one.
func New(cfg Config) *Cache {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = 1024
	}
	return &Cache{cfg: cfg, entries: make(map[int]*entry)}
}

// Lookup consults the cache for a query with the given features and
// difficulty score at virtual time now. It returns the cached value on a
// hit, the cache key (valid on hit and miss; -1 on bypass), and the
// obsv.CacheOutcome* label. Exactly one of hit/miss/bypass is counted
// per call. A miss means the query is cacheable: the caller should Fill
// the returned key once the query resolves cleanly.
func (c *Cache) Lookup(now time.Duration, features []float64, score float64) (Value, int, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if score > c.cfg.DifficultyMax {
		c.bypasses++
		return Value{}, -1, obsv.CacheOutcomeBypass
	}
	key, ok := c.cfg.Keyer.Key(features)
	if !ok {
		c.bypasses++
		return Value{}, -1, obsv.CacheOutcomeBypass
	}
	e := c.entries[key]
	if e == nil {
		c.misses++
		return Value{}, key, obsv.CacheOutcomeMiss
	}
	if c.cfg.TTL > 0 && now-e.filledAt > c.cfg.TTL {
		c.unlinkLocked(e)
		delete(c.entries, key)
		c.expiries++
		c.misses++
		return Value{}, key, obsv.CacheOutcomeMiss
	}
	c.touchLocked(e)
	c.hits++
	return e.val, key, obsv.CacheOutcomeHit
}

// Fill stores the resolved value for key at virtual time now, evicting
// the least recently used entry if the cache is full. Refilling an
// existing key refreshes its value and TTL clock.
func (c *Cache) Fill(now time.Duration, key int, v Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.entries[key]; e != nil {
		e.val, e.filledAt = v, now
		c.touchLocked(e)
		c.fills++
		return
	}
	if len(c.entries) >= c.cfg.Capacity {
		lru := c.tail
		c.unlinkLocked(lru)
		delete(c.entries, lru.key)
		c.evicts++
	}
	e := &entry{key: key, val: v, filledAt: now}
	c.entries[key] = e
	c.pushFrontLocked(e)
	c.fills++
}

// touchLocked moves e to the front of the LRU list. Callers hold c.mu.
func (c *Cache) touchLocked(e *entry) {
	if c.head == e {
		return
	}
	c.unlinkLocked(e)
	c.pushFrontLocked(e)
}

func (c *Cache) pushFrontLocked(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Snapshot is a point-in-time view of the cache counters.
type Snapshot struct {
	Entries  int
	Capacity int
	// Lookup outcomes; Hits+Misses+Bypasses equals the number of Lookup
	// calls (exactly-once accounting).
	Hits     uint64
	Misses   uint64
	Bypasses uint64
	// Fills counts stores (inserts and refreshes); Evictions counts
	// capacity evictions; Expirations counts TTL removals at lookup.
	Fills       uint64
	Evictions   uint64
	Expirations uint64
	// HitRate is Hits/(Hits+Misses), 0 before any keyed lookup.
	// Bypasses are excluded: the gate is a policy choice, not a cache
	// failure.
	HitRate float64
}

// Snapshot returns the current counters.
func (c *Cache) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		Entries:     len(c.entries),
		Capacity:    c.cfg.Capacity,
		Hits:        c.hits,
		Misses:      c.misses,
		Bypasses:    c.bypasses,
		Fills:       c.fills,
		Evictions:   c.evicts,
		Expirations: c.expiries,
	}
	if keyed := s.Hits + s.Misses; keyed > 0 {
		s.HitRate = float64(s.Hits) / float64(keyed)
	}
	return s
}
