package discrepancy

import (
	"sync"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/nn"
	"schemble/internal/rng"
)

// Predictor is the lightweight two-headed network that estimates a query's
// discrepancy score from its observable features before any base model has
// run (Section V-C). The first head reproduces the original task (its
// output is discarded at inference time but, per the paper, training it
// jointly improves the difficulty head); the second head regresses the
// discrepancy score.
type Predictor struct {
	// mu serializes forward passes: nn.Net reuses scratch buffers and is
	// not safe for concurrent use, while serving runtimes score queries
	// from many goroutines.
	mu  sync.Mutex
	net *nn.Net
	// InferCost is the simulated per-query latency of running the
	// predictor; it is charged by the serving runtimes (the paper measures
	// it at ~6.5% of the ensemble's runtime, Fig. 13).
	InferCost time.Duration
	// MemoryBytes is the predictor's simulated footprint.
	MemoryBytes int64
}

// PredictorConfig controls TrainPredictor.
type PredictorConfig struct {
	Task    dataset.Task
	Classes int // classification
	Hidden  []int
	Epochs  int
	// Lambda is the joint-loss weight on the difficulty head (Eq. 2);
	// the paper uses 0.2.
	Lambda float64
	Seed   uint64
	// InferCost and MemoryMB configure the simulated serving cost;
	// defaults: 3ms, 25MB.
	InferCost time.Duration
	MemoryMB  int64
}

// TrainPredictor fits a predictor on samples with per-sample discrepancy
// targets (in [0,1]) and task targets. taskTargets[i] is the task head's
// training target: a one-hot class vector for classification (the ensemble's
// prediction, per the paper's convention) or a single normalized value for
// regression/retrieval.
func TrainPredictor(cfg PredictorConfig, samples []*dataset.Sample, scores []float64, taskTargets [][]float64) *Predictor {
	if len(samples) == 0 || len(samples) != len(scores) || len(samples) != len(taskTargets) {
		panic("discrepancy: empty or mismatched predictor training data")
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.Lambda == 0 {
		cfg.Lambda = 0.2
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 150
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{48, 24}
	}
	if cfg.InferCost == 0 {
		cfg.InferCost = 3 * time.Millisecond
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 25
	}

	taskOut := len(taskTargets[0])
	var taskAct nn.Activation
	var loss nn.Loss
	switch cfg.Task {
	case dataset.Classification:
		taskAct, loss = nn.Softmax, nn.CE
	default:
		taskAct, loss = nn.Identity, nn.MSE
	}
	net := nn.NewNet(nn.Config{
		Spec:    nn.Spec{In: len(samples[0].Features), Hidden: cfg.Hidden},
		TaskOut: taskOut, TaskAct: taskAct,
		WithHead2: true,
	}, rng.New(cfg.Seed+0xd15c))

	ds := nn.Dataset{Dis: scores, Y: taskTargets}
	for _, s := range samples {
		ds.X = append(ds.X, s.Features)
	}
	net.Train(nn.TrainConfig{
		Loss: loss, Epochs: cfg.Epochs, BatchSize: 32, LR: 0.01,
		Optimizer: nn.Adam, Lambda: cfg.Lambda, Seed: cfg.Seed,
	}, ds)
	return &Predictor{
		net:         net,
		InferCost:   cfg.InferCost,
		MemoryBytes: cfg.MemoryMB << 20,
	}
}

// Predict estimates the discrepancy score of s in [0,1]. It is safe for
// concurrent use.
func (p *Predictor) Predict(s *dataset.Sample) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.net.PredictScore(s.Features)
}

// NumParams reports the predictor's parameter count (for the overhead
// study, Fig. 13).
func (p *Predictor) NumParams() int { return p.net.NumParams() }

// ConstantPredictor assigns the same score to every query; it implements
// the Schemble(t) ablation of Exp-3 (no difficulty information, scheduler
// only).
type ConstantPredictor struct {
	Value float64
}

// Predict returns the fixed score.
func (c *ConstantPredictor) Predict(*dataset.Sample) float64 { return c.Value }

// OraclePredictor returns precomputed true scores by sample ID; it bounds
// what the learned predictor could achieve (Schemble*(Oracle), Fig. 16).
type OraclePredictor struct {
	Scores map[int]float64
}

// Predict returns the stored score for s (0 when unknown).
func (o *OraclePredictor) Predict(s *dataset.Sample) float64 { return o.Scores[s.ID] }

// ScoreEstimator is the interface the serving pipeline consumes: anything
// that maps a sample to a difficulty estimate in [0,1].
type ScoreEstimator interface {
	Predict(s *dataset.Sample) float64
}

var (
	_ ScoreEstimator = (*Predictor)(nil)
	_ ScoreEstimator = (*ConstantPredictor)(nil)
	_ ScoreEstimator = (*OraclePredictor)(nil)
)

// RestorePredictor rebuilds a predictor from weights serialized with
// nn.Net.MarshalBinary plus its serving-cost parameters.
func RestorePredictor(data []byte, inferCost time.Duration, memoryBytes int64) (*Predictor, error) {
	net, err := nn.RestoreNet(data)
	if err != nil {
		return nil, err
	}
	return &Predictor{net: net, InferCost: inferCost, MemoryBytes: memoryBytes}, nil
}

// MarshalBinary serializes the predictor's network weights.
func (p *Predictor) MarshalBinary() ([]byte, error) { return p.net.MarshalBinary() }
