// Package discrepancy implements Section V of the paper: the discrepancy
// score — a difficulty measure for heterogeneous deep ensembles — and the
// lightweight two-headed network that predicts it for unseen queries.
//
// The score of a sample (Eq. 1) is the mean, over base models, of the
// *normalized* distance between each base model's (temperature-calibrated)
// output and the full ensemble's output: JS divergence for classification,
// Euclidean distance for regression and retrieval. Normalization is the
// per-model empirical CDF of distances observed on historical data, which
// puts every model's distances on the same [0,1] scale and thereby damps
// the influence of weak models — the paper's fix for what plain ensemble
// agreement gets wrong.
package discrepancy

import (
	"sort"

	"schemble/internal/calib"
	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// ECDF is an empirical cumulative distribution function over a sample of
// values; Value maps a new observation to its rank fraction in [0,1].
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from values (which it copies and sorts). It panics
// on an empty sample.
func NewECDF(values []float64) *ECDF {
	if len(values) == 0 {
		panic("discrepancy: empty ECDF sample")
	}
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Value returns the fraction of the sample that is <= x.
func (e *ECDF) Value(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, x)
	// Advance past equal values so ties count as <=.
	//schemble:floateq-ok tie scan over stored values: x is compared against the exact floats the ECDF was built from
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// Distance returns the task-appropriate distance between a base model's
// output and the ensemble's output: JS divergence for classification,
// Euclidean (absolute) distance for regression, Euclidean distance between
// embeddings for retrieval.
func Distance(task dataset.Task, base, ens model.Output) float64 {
	switch task {
	case dataset.Classification:
		return mathx.JS(base.Probs, ens.Probs)
	case dataset.Regression:
		d := base.Value - ens.Value
		if d < 0 {
			d = -d
		}
		return d
	case dataset.Retrieval:
		return mathx.Euclidean(base.Embedding, ens.Embedding)
	default:
		panic("discrepancy: unknown task")
	}
}

// Scorer computes discrepancy scores for full inference results. Build one
// with Fit.
type Scorer struct {
	Task dataset.Task
	// Calibrators holds one temperature scaler per base model
	// (classification only; nil entries mean identity).
	Calibrators []*calib.Scaler
	// Norms holds one distance ECDF per base model.
	Norms []*ECDF
}

// calibrated returns the k-th output with temperature scaling applied.
func (sc *Scorer) calibrated(k int, out model.Output) model.Output {
	if sc.Task != dataset.Classification || sc.Calibrators == nil || sc.Calibrators[k] == nil {
		return out
	}
	return model.Output{Probs: sc.Calibrators[k].Apply(out.Probs)}
}

// rawDistances returns the per-model distances d(f_k(x), E(x)) after
// calibration.
func (sc *Scorer) rawDistances(outs []model.Output, ens model.Output) []float64 {
	ds := make([]float64, len(outs))
	for k := range outs {
		ds[k] = Distance(sc.Task, sc.calibrated(k, outs[k]), ens)
	}
	return ds
}

// Score computes the discrepancy score (Eq. 1) for one sample's full
// outputs and ensemble output.
func (sc *Scorer) Score(outs []model.Output, ens model.Output) float64 {
	ds := sc.rawDistances(outs, ens)
	var s float64
	for k, d := range ds {
		s += sc.Norms[k].Value(d)
	}
	return s / float64(len(ds))
}

// FitConfig controls Fit.
type FitConfig struct {
	Task dataset.Task
	// Calibrate fits per-model temperature scalers before computing
	// distances (classification only). The paper applies temperature
	// scaling; abl-calib turns it off.
	Calibrate bool
}

// Fit builds a Scorer from historical full inference results: allOuts[i]
// holds every base model's output on sample i, ensOuts[i] the full
// ensemble's. For calibration, the ensemble's argmax serves as the label —
// the paper's ground-truth convention.
func Fit(cfg FitConfig, allOuts [][]model.Output, ensOuts []model.Output) *Scorer {
	if len(allOuts) == 0 || len(allOuts) != len(ensOuts) {
		panic("discrepancy: empty or mismatched fit data")
	}
	m := len(allOuts[0])
	sc := &Scorer{Task: cfg.Task}
	if cfg.Calibrate && cfg.Task == dataset.Classification {
		sc.Calibrators = make([]*calib.Scaler, m)
		labels := make([]int, len(ensOuts))
		for i, e := range ensOuts {
			labels[i] = mathx.ArgMax(e.Probs)
		}
		probs := make([][]float64, len(allOuts))
		for k := 0; k < m; k++ {
			for i := range allOuts {
				probs[i] = allOuts[i][k].Probs
			}
			sc.Calibrators[k] = calib.Fit(probs, labels)
		}
	}
	// Per-model distance ECDFs, computed through the same distance path
	// Score uses (including the calibrated reference).
	perModel := make([][]float64, m)
	for k := range perModel {
		perModel[k] = make([]float64, len(allOuts))
	}
	for i := range allOuts {
		ds := sc.rawDistances(allOuts[i], ensOuts[i])
		for k, d := range ds {
			perModel[k][i] = d
		}
	}
	sc.Norms = make([]*ECDF, m)
	for k := 0; k < m; k++ {
		sc.Norms[k] = NewECDF(perModel[k])
	}
	return sc
}

// EnsembleAgreement is the prior difficulty metric the paper compares
// against (Carlini et al.): the mean pairwise symmetric KL divergence
// between base-model outputs, with no calibration and no per-model
// normalization. For regression it is the mean pairwise absolute
// difference, for retrieval the mean pairwise embedding distance.
func EnsembleAgreement(task dataset.Task, outs []model.Output) float64 {
	m := len(outs)
	if m < 2 {
		return 0
	}
	var s float64
	var n int
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			switch task {
			case dataset.Classification:
				s += mathx.SymKL(outs[i].Probs, outs[j].Probs)
			case dataset.Regression:
				d := outs[i].Value - outs[j].Value
				if d < 0 {
					d = -d
				}
				s += d
			case dataset.Retrieval:
				s += mathx.Euclidean(outs[i].Embedding, outs[j].Embedding)
			}
			n++
		}
	}
	return s / float64(n)
}

// Sample returns a copy of the ECDF's sorted sample (for serialization).
func (e *ECDF) Sample() []float64 {
	return append([]float64(nil), e.sorted...)
}
