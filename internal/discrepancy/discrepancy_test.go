package discrepancy

import (
	"math"
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// fixture precomputes outputs and ensemble outputs for a text-matching set.
func fixture(n int, seed uint64) ([]*dataset.Sample, [][]model.Output, []model.Output) {
	ds := dataset.TextMatching(dataset.Config{N: n, Seed: seed})
	models := model.TextMatchingModels(seed + 100)
	e := ensemble.New(dataset.Classification, models, &ensemble.Average{}, nil)
	var all [][]model.Output
	var ens []model.Output
	for _, s := range ds.Samples {
		outs := e.Outputs(s)
		all = append(all, outs)
		ens = append(ens, e.Predict(outs, e.FullSubset()))
	}
	return ds.Samples, all, ens
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.Value(c.x); got != c.want {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("empty ECDF did not panic")
		}
	}()
	NewECDF(nil)
}

func TestDistanceByTask(t *testing.T) {
	a := model.Output{Probs: []float64{0.9, 0.1}}
	b := model.Output{Probs: []float64{0.9, 0.1}}
	if d := Distance(dataset.Classification, a, b); d > 1e-9 {
		t.Errorf("identical outputs distance = %v", d)
	}
	if d := Distance(dataset.Regression, model.Output{Value: 3}, model.Output{Value: 7}); d != 4 {
		t.Errorf("regression distance = %v", d)
	}
	d := Distance(dataset.Retrieval,
		model.Output{Embedding: []float64{1, 0}},
		model.Output{Embedding: []float64{0, 1}})
	if math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Errorf("retrieval distance = %v", d)
	}
}

func TestScoreInUnitInterval(t *testing.T) {
	samples, all, ens := fixture(500, 1)
	sc := Fit(FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	for i := range samples {
		s := sc.Score(all[i], ens[i])
		if s < 0 || s > 1 {
			t.Fatalf("score out of [0,1]: %v", s)
		}
	}
}

func TestScoreTracksLatentDifficulty(t *testing.T) {
	samples, all, ens := fixture(3000, 2)
	sc := Fit(FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	var scores, difficulty []float64
	for i, s := range samples {
		scores = append(scores, sc.Score(all[i], ens[i]))
		difficulty = append(difficulty, s.Difficulty)
	}
	if r := mathx.Pearson(scores, difficulty); r < 0.4 {
		t.Errorf("discrepancy vs latent difficulty correlation = %v, want >= 0.4", r)
	}
}

func TestEasySamplesAgreeWithEnsemble(t *testing.T) {
	// The core claim behind the score: subsets on low-score samples agree
	// with the full ensemble far more often than on high-score samples.
	samples, all, ens := fixture(4000, 3)
	sc := Fit(FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	agree := func(k int, i int) bool {
		return mathx.ArgMax(all[i][k].Probs) == mathx.ArgMax(ens[i].Probs)
	}
	var easyAgree, easyN, hardAgree, hardN float64
	for i := range samples {
		s := sc.Score(all[i], ens[i])
		a := 0.0
		if agree(0, i) { // weakest single model vs ensemble
			a = 1
		}
		if s < 0.3 {
			easyAgree += a
			easyN++
		} else if s > 0.7 {
			hardAgree += a
			hardN++
		}
	}
	if easyN == 0 || hardN == 0 {
		t.Fatal("score distribution degenerate")
	}
	if easyAgree/easyN <= hardAgree/hardN+0.15 {
		t.Errorf("easy agreement %v should exceed hard agreement %v by a margin",
			easyAgree/easyN, hardAgree/hardN)
	}
}

func TestRegressionScorer(t *testing.T) {
	ds := dataset.VehicleCounting(dataset.Config{N: 800, Seed: 4})
	models := model.VehicleCountingModels(5)
	e := ensemble.New(dataset.Regression, models, &ensemble.Average{}, nil)
	var all [][]model.Output
	var ens []model.Output
	for _, s := range ds.Samples {
		outs := e.Outputs(s)
		all = append(all, outs)
		ens = append(ens, e.Predict(outs, e.FullSubset()))
	}
	sc := Fit(FitConfig{Task: dataset.Regression}, all, ens)
	var scores, difficulty []float64
	for i, s := range ds.Samples {
		v := sc.Score(all[i], ens[i])
		if v < 0 || v > 1 {
			t.Fatalf("score out of range: %v", v)
		}
		scores = append(scores, v)
		difficulty = append(difficulty, s.Difficulty)
	}
	if r := mathx.Pearson(scores, difficulty); r < 0.3 {
		t.Errorf("regression score correlation = %v", r)
	}
}

func TestEnsembleAgreementMetric(t *testing.T) {
	same := []model.Output{
		{Probs: []float64{0.9, 0.1}},
		{Probs: []float64{0.9, 0.1}},
	}
	diff := []model.Output{
		{Probs: []float64{0.9, 0.1}},
		{Probs: []float64{0.1, 0.9}},
	}
	if a := EnsembleAgreement(dataset.Classification, same); a > 1e-9 {
		t.Errorf("identical outputs agreement score = %v", a)
	}
	if a := EnsembleAgreement(dataset.Classification, diff); a <= 0 {
		t.Errorf("disagreeing outputs agreement score = %v", a)
	}
	if a := EnsembleAgreement(dataset.Classification, same[:1]); a != 0 {
		t.Errorf("single model agreement = %v, want 0", a)
	}
}

func TestPredictorLearnsScores(t *testing.T) {
	samples, all, ens := fixture(2500, 6)
	sc := Fit(FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	scores := make([]float64, len(samples))
	targets := make([][]float64, len(samples))
	for i := range samples {
		scores[i] = sc.Score(all[i], ens[i])
		oneHot := make([]float64, 2)
		oneHot[mathx.ArgMax(ens[i].Probs)] = 1
		targets[i] = oneHot
	}
	train := 2000
	p := TrainPredictor(PredictorConfig{
		Task: dataset.Classification, Classes: 2, Seed: 6,
	}, samples[:train], scores[:train], targets[:train])

	var pred, truth []float64
	for i := train; i < len(samples); i++ {
		pred = append(pred, p.Predict(samples[i]))
		truth = append(truth, scores[i])
	}
	if r := mathx.Pearson(pred, truth); r < 0.4 {
		t.Errorf("held-out predictor correlation = %v, want >= 0.4", r)
	}
	if p.NumParams() <= 0 {
		t.Error("predictor has no parameters")
	}
	if p.InferCost <= 0 || p.MemoryBytes <= 0 {
		t.Error("predictor cost model unset")
	}
}

func TestConstantAndOraclePredictors(t *testing.T) {
	samples, _, _ := fixture(10, 7)
	c := &ConstantPredictor{Value: 0.5}
	if c.Predict(samples[0]) != 0.5 {
		t.Error("constant predictor")
	}
	o := &OraclePredictor{Scores: map[int]float64{samples[3].ID: 0.9}}
	if o.Predict(samples[3]) != 0.9 || o.Predict(samples[4]) != 0 {
		t.Error("oracle predictor")
	}
}

func TestCalibrationChangesScores(t *testing.T) {
	// abl-calib: with heterogeneous overconfidence, calibrated scores must
	// differ from uncalibrated ones.
	_, all, ens := fixture(600, 8)
	withCal := Fit(FitConfig{Task: dataset.Classification, Calibrate: true}, all, ens)
	noCal := Fit(FitConfig{Task: dataset.Classification, Calibrate: false}, all, ens)
	diff := 0
	for i := range all {
		if math.Abs(withCal.Score(all[i], ens[i])-noCal.Score(all[i], ens[i])) > 1e-6 {
			diff++
		}
	}
	if diff < len(all)/4 {
		t.Errorf("calibration changed only %d/%d scores", diff, len(all))
	}
}
