// Package serve is the real-time concurrent counterpart of the discrete
// event simulator: a pool of replica worker goroutines per deployed base
// model (Config.Replicas; one each by default) sharing that model's task
// queue, a coordinator goroutine that owns the query buffer and runs the
// scheduler against per-replica capacity (core.Capacity), and
// channel-based task dispatch. Replicas can additionally micro-batch
// queued tasks (Config.Batching): a replica drains its queue up to
// MaxBatch tasks — lingering briefly for stragglers — and executes the
// batch as one unit whose duration follows the model's batch latency
// curve. Model execution is simulated by sleeping for the model's
// (scaled) latency, so examples can replay a trace in compressed
// wall-clock time while exercising the same scheduling logic the paper
// deploys. With every replica count at 1 and batching off, the runtime is
// bit-identical to the original single-worker design.
//
// Lifecycle: New -> Start(ctx) -> Submit()... -> Drain/Stop. Every request
// moves through an explicit state machine
//
//	submitted -> scored -> buffered -> committed -> resolved
//
// and resolves exactly once: with its aggregated output, as a deadline
// miss, or as an explicit rejection (Result.Rejected) when the runtime is
// saturated, draining, or stopped. Backpressure is bounded and visible:
// Submit rejects instead of blocking when the event loop is full, and
// dispatch rejects instead of leaking when a model's task queue is full.
// Stop abandons committed work; Drain finishes it first.
//
// The runtime also survives an unreliable substrate. Config.Faults (or
// FaultsPerModel) injects deterministic transient errors, stragglers and
// replica crashes via model.Faulty; Config.Tolerance opts into the
// mitigations: bounded retries with jittered backoff, hedged re-issue of
// straggling attempts, per-task deadline timeouts, a per-model circuit
// breaker the scheduler consults so subsets avoid failing models, and
// partial-ensemble degradation — a request whose deadline arrives with at
// least one (but not all) subset outputs resolves with Result.Degraded
// instead of missing. Both configs default to off, in which case the
// runtime behaves exactly like the fault-free original; a panicking
// Predict is always contained (the task fails, the worker survives).
package serve

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"schemble/internal/adapt"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/obsv"
	"schemble/internal/qos"
	"schemble/internal/rcache"
	"schemble/internal/rng"
	"schemble/internal/trace"
)

// ErrNotStarted is returned by Drain when Start was never called.
var ErrNotStarted = errors.New("serve: server not started")

// blockHorizon is how far into the future an open-breaker (or crashed)
// model's availability is pushed when the scheduler is consulted: far
// enough that no deadline-feasible plan can include it.
const blockHorizon = time.Hour

// Config configures a Server.
type Config struct {
	Ensemble *ensemble.Ensemble
	// Scheduler and Rewarder drive subset selection (the Schemble path).
	Scheduler core.Scheduler
	Rewarder  core.Rewarder
	// Estimator predicts discrepancy scores; nil scores everything 0.5.
	Estimator discrepancy.ScoreEstimator
	// TimeScale compresses simulated model latencies: 0.1 runs 10x faster
	// than real time. Defaults to 1.
	TimeScale float64
	// QueueDepth bounds each model's task channel (default 1024). When a
	// model's queue is full at dispatch time the request is rejected; when
	// the event loop is full Submit rejects up front.
	QueueDepth int
	// Replicas[k] is how many worker goroutines serve model k from its
	// shared task queue (the model's replica pool). Missing or
	// non-positive entries mean one replica. The scheduler sees every
	// replica's availability (core.Capacity), so adding replicas widens
	// the set of deadline-feasible plans instead of merely draining the
	// queue faster.
	Replicas []int
	// Batching opts the replica pools into adaptive micro-batching; the
	// zero value disables it. See BatchConfig.
	Batching BatchConfig
	Seed     uint64

	// Faults injects deterministic failures into every model's task
	// execution (zero value: no injection). Durations are virtual, like
	// model latencies.
	Faults model.FaultConfig
	// FaultsPerModel, when entry k is in range, replaces Faults for model
	// k — e.g. to crash only one replica in a test.
	FaultsPerModel []model.FaultConfig
	// Tolerance opts into the fault-tolerant execution layer. The zero
	// value disables every mitigation and leaves the runtime bit-identical
	// to the fault-free worker loop; see DefaultTolerance.
	Tolerance ToleranceConfig

	// Obs opts into request-level observability: decision traces in a
	// bounded ring buffer plus per-outcome latency histograms. The zero
	// value disables every hook and keeps the hot path bit-identical
	// (observability never draws from the runtime's RNG).
	Obs obsv.Config

	// Classes declares the request classes (tenant/priority tiers) and
	// switches the runtime into classed mode: SubmitClass selects a class
	// per request, class deadlines back requests submitted without one,
	// and under overload the admission controller sheds and degrades the
	// lowest-priority classes first (see qos). Empty (the default) keeps
	// the runtime classless and bit-identical to the pre-class design —
	// only the load estimator runs, feeding RetryAfterSeconds.
	Classes []Class
	// Admission tunes the overload controller; the zero value means
	// defaults, with service capacity derived from the deployed models'
	// mean latencies and replica counts.
	Admission AdmissionConfig

	// Cache opts into the difficulty-gated result cache (internal/rcache):
	// easy queries (score at or below the configured threshold) whose
	// centroid key holds a fresh entry resolve immediately from the cache
	// — a zero-cost plan that never reaches the scheduler — and cacheable
	// misses fill the entry when they resolve cleanly. The zero value
	// disables caching and keeps every request on the pre-cache code
	// paths bit-identically.
	Cache rcache.Config

	// Adapt opts into the online-adaptation layer (internal/adapt): live
	// per-model/per-replica latency quantile sketches feed the
	// scheduler's cost vector and the hedging threshold instead of the
	// frozen profiling numbers, a windowed detector emits drift events,
	// and the discrepancy predictor is incrementally recalibrated from
	// served outcomes. The zero value disables adaptation and keeps
	// every request on the frozen-profile code paths bit-identically.
	Adapt adapt.Config

	// Drift injects a deterministic service-time drift schedule
	// (test/soak infrastructure, like Faults): each attempt's drawn
	// latency is multiplied by Drift(model, virtualNow). nil means no
	// drift.
	Drift trace.LatencyDrift
}

// Result is the outcome of one request.
type Result struct {
	Output model.Output
	// Subset names the models whose outputs were aggregated into Output —
	// for degraded results, the models that actually completed.
	Subset ensemble.Subset
	// Missed is true when no output was produced in time (deadline miss,
	// all tasks failed, shutdown, or rejection).
	Missed bool
	// Rejected is true when the runtime explicitly refused the request —
	// event-loop or model-queue saturation, draining, or already stopped —
	// rather than failing to meet its deadline. Rejected implies Missed.
	Rejected bool
	// Degraded is true when the request was served (Missed is false) with
	// reduced quality: from a non-empty strict subset of its committed
	// models (the rest failed or were still running at the deadline), or
	// from a plan the degradation ladder capped because the request's
	// class was above full service at commit time. Degraded results
	// always carry at least one real model output.
	Degraded bool
	// Cached is true when the result was served from the result cache
	// without dispatching any model work; Subset names the models that
	// produced the cached answer.
	Cached  bool
	Latency time.Duration
}

// reqState is a request's lifecycle stage. Transitions are guarded by the
// request mutex and move strictly forward; stateResolved is terminal and
// reachable from every stage.
type reqState uint8

const (
	stateSubmitted reqState = iota // accepted by Submit
	stateScored                    // difficulty score attached
	stateBuffered                  // waiting in the coordinator's buffer
	stateCommitted                 // subset locked, tasks dispatched
	stateResolved                  // Result delivered exactly once
)

// request tracks one in-flight query.
type request struct {
	sample   *dataset.Sample
	arrived  time.Time
	deadline time.Time
	score    float64
	// rawScore is the predictor's uncalibrated score (equal to score
	// when adaptation is off); the recalibration reservoir pairs it with
	// the observed discrepancy on clean full-ensemble resolves.
	rawScore float64

	// class is the request's class index (-1 when the runtime is
	// classless); level is the degradation-ladder service level the
	// request was committed at (written under mu at commit time — a
	// committed level above LevelFull marks the result Degraded).
	class int
	level qos.Level

	// cacheable marks a request whose cache lookup missed (written in
	// SubmitClass before the request is shared, so resolve's fill-back
	// read is ordered by the event-channel send); cacheKey is the entry
	// it fills on a clean resolve.
	cacheable bool
	cacheKey  int

	mu sync.Mutex
	//schemble:guardedby mu lifecycle state machine
	state reqState
	//schemble:guardedby mu per-model output slots
	outs []model.Output
	//schemble:guardedby mu outstanding task count
	remaining int
	// ok is the mask of models whose task succeeded; failed counts tasks
	// that failed permanently (retries exhausted, crash, timeout, panic).
	//schemble:guardedby mu success mask
	ok ensemble.Subset
	//schemble:guardedby mu permanent-failure count
	failed int
	//schemble:guardedby mu committed subset
	subset ensemble.Subset
	done   chan Result

	// tr is the request's decision trace, nil when observability is off.
	// Creation-time fields are written before the request is shared,
	// commit- and resolve-time fields under mu; the mitigation counters are
	// atomics because workers bump them while the coordinator may resolve.
	tr          *obsv.DecisionTrace
	obsRetries  atomic.Uint32
	obsHedges   atomic.Uint32
	obsTimeouts atomic.Uint32
}

// advance moves the lifecycle forward; it never regresses and never leaves
// the terminal resolved state.
func (r *request) advance(to reqState) {
	r.mu.Lock()
	if r.state < to && r.state != stateResolved {
		r.state = to
	}
	r.mu.Unlock()
}

func (r *request) isResolved() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stateResolved
}

// modelCounters are one model's fault and mitigation counters, written by
// the model's worker goroutine and read by Stats.
type modelCounters struct {
	executed   atomic.Uint64 // tasks whose attempt chain ran
	failures   atomic.Uint64 // tasks that failed permanently
	transient  atomic.Uint64 // transient faults observed
	stragglers atomic.Uint64 // straggling attempts observed
	crashes    atomic.Uint64 // attempts hitting a dead/crashing replica
	timeouts   atomic.Uint64 // attempts abandoned at the request deadline
	panics     atomic.Uint64 // Predict panics contained
	retries    atomic.Uint64 // retry attempts issued
	hedges     atomic.Uint64 // hedge attempts issued
	hedgeWins  atomic.Uint64 // hedge attempts that finished first
}

// replicaCounters are one replica's health counters. busy is the batch
// size the replica is currently executing (0 = idle, 1 = a single task);
// executed/failures break the model's totals down per replica so the
// tolerance layer's effects are attributable to individual replicas.
type replicaCounters struct {
	busy     atomic.Int32
	executed atomic.Uint64
	failures atomic.Uint64
}

// Server is a running ensemble-serving instance.
type Server struct {
	cfg    Config
	tol    ToleranceConfig
	scale  float64
	taskCh []chan *task
	events chan event
	wg     sync.WaitGroup

	// replicas[k] is model k's resolved replica-pool size (>= 1);
	// maxBatch is the resolved micro-batch cap (1 = batching off).
	replicas []int
	maxBatch int

	// faulty[k] is model k's fault injector (nil when injection is off).
	faulty []*model.Faulty
	mstats []modelCounters
	// rstats[k][r] is replica r of model k's counters; forming[k] counts
	// tasks pulled off model k's queue into a forming or executing batch
	// whose completion event has not been sent yet (queue-depth gauges
	// exclude them, so QueueDepth[k]+Forming[k] counts every outstanding
	// task exactly once); batchHist[k][b-1] counts executed batches of
	// size b (nil when batching is off).
	rstats    [][]replicaCounters
	forming   []atomic.Int64
	batchHist [][]atomic.Uint64

	// breakerMu guards the per-model circuit breakers, which the
	// coordinator mutates and Stats snapshots.
	breakerMu sync.Mutex
	//schemble:guardedby breakerMu per-model circuit breakers
	breakers []breakerState

	// lifeMu guards the lifecycle fields so Submit racing Start, Drain or
	// Stop observes a consistent (ctx, draining) pair.
	lifeMu sync.Mutex
	//schemble:guardedby lifeMu lifecycle context
	ctx context.Context
	//schemble:guardedby lifeMu lifecycle cancel hook
	cancel context.CancelFunc
	//schemble:guardedby lifeMu drain latch
	draining bool
	//schemble:guardedby lifeMu serving epoch start
	start time.Time

	//schemble:guardedby srcMu deterministic RNG is not itself concurrency-safe
	src   *rng.Source
	srcMu sync.Mutex

	// obs collects decision traces and latency histograms; nil (all hooks
	// skipped) unless Config.Obs enables it. reqSeq numbers submissions for
	// trace IDs.
	obs    *obsv.Observer
	reqSeq atomic.Uint64

	// qosCtl is the overload controller: load estimator, degradation
	// ladder, and (in classed mode) per-class admission. Always non-nil;
	// classless configs get an estimator-only controller that admits
	// everything. classStats holds per-class outcome counters (nil when
	// classless); degradedSched plans LevelGreedy classes with a cheap
	// greedy planner — a dedicated instance, since scheduler scratch is
	// not shareable with cfg.Scheduler.
	qosCtl        *qos.Controller
	classStats    []classCounters
	degradedSched *core.Greedy

	// cache is the shared result cache, nil when Config.Cache is the zero
	// value (caching off).
	cache *rcache.Cache

	// adapt is the online-adaptation engine, nil when Config.Adapt is
	// the zero value (adaptation off); baseExec is the frozen planning
	// cost vector the coordinator copies its working exec slice from.
	adapt    *adapt.Engine
	baseExec []time.Duration

	// Health counters behind the Stats snapshot. buffered/inflight mirror
	// the coordinator's private structures.
	nSubmitted atomic.Uint64
	nServed    atomic.Uint64
	nDegraded  atomic.Uint64
	nMissed    atomic.Uint64
	nRejected  atomic.Uint64
	nBuffered  atomic.Int64
	nInflight  atomic.Int64
}

type task struct {
	req *request
	k   int
}

type evKind int

const (
	evSubmit evKind = iota
	evTaskDone
	evDeadline
	evDrain
)

type event struct {
	kind evKind
	req  *request
	k    int
	// done marks the evTaskDone that completed its request's last task.
	done bool
	// ran marks evTaskDone events whose task actually executed (as opposed
	// to being skipped because the request had already resolved); failed
	// marks executed tasks that failed permanently.
	ran    bool
	failed bool
}

// ModelHealth is one model's fault-tolerance snapshot inside Stats.
type ModelHealth struct {
	Name string
	// Breaker is "closed", "open" or "half-open"; "off" when the breaker
	// is disabled.
	Breaker             string
	ConsecutiveFailures int
	BreakerTrips        uint64
	// Down is true while the (injected) replica sits in a crash-recovery
	// window.
	Down     bool
	Executed uint64
	Failures uint64
	// Fault observations.
	Transient  uint64
	Stragglers uint64
	Crashes    uint64
	Timeouts   uint64
	Panics     uint64
	// Mitigations taken.
	Retries   uint64
	Hedges    uint64
	HedgeWins uint64
	// ReplicaExecuted[r] / ReplicaFailures[r] break Executed and Failures
	// down by replica, so a single sick replica is visible inside an
	// otherwise healthy pool.
	ReplicaExecuted []uint64
	ReplicaFailures []uint64
}

// Stats is a point-in-time health snapshot of the runtime.
type Stats struct {
	Submitted uint64 // requests accepted by Submit
	Served    uint64 // resolved with the full subset's output in time
	Degraded  uint64 // served in time from a partial subset
	Missed    uint64 // resolved as deadline misses (or abandoned on Stop)
	Rejected  uint64 // explicitly rejected (saturation, drain, stopped)
	Resolved  uint64 // Served + Degraded + Missed + Rejected
	Buffered  int    // awaiting scheduling in the coordinator's buffer
	InFlight  int    // committed, not all tasks finished
	// QueueDepth[k] is model k's task-channel occupancy. Tasks a replica
	// has pulled into a forming batch are counted in Forming, never here.
	QueueDepth []int
	// Replicas[k] is model k's replica-pool size.
	Replicas []int
	// Forming[k] counts tasks pulled off model k's queue into a forming
	// or executing batch whose completion has not been reported yet;
	// QueueDepth[k]+Forming[k] counts each outstanding task exactly once.
	Forming []int
	// ReplicaBusy[k][r] is the batch size replica r of model k is
	// executing right now (0 = idle).
	ReplicaBusy [][]int
	// BatchSizes[k][b-1] counts batches of size b executed by model k's
	// replicas; nil when batching is disabled.
	BatchSizes [][]uint64
	// Models[k] is model k's fault/mitigation health.
	Models   []ModelHealth
	Draining bool

	// Load is the overload controller's smoothed pressure estimate (~0
	// idle, 1 at the target backlog); Ladder is the degradation ladder's
	// current rung and LadderState its name ("full-service",
	// "degrade-N"). Classes holds per-class outcome counters and SLO
	// attainment, in declaration order; nil when the runtime is
	// classless.
	Load        float64
	Ladder      int
	LadderState string
	Classes     []ClassStats

	// Cache is the result cache's counter snapshot; nil when caching is
	// off.
	Cache *rcache.Snapshot

	// Adapt is the online-adaptation engine's snapshot (live quantiles,
	// inflation factors, drift events, recalibration counters); nil when
	// adaptation is off.
	Adapt *adapt.Snapshot
}

// Healthy reports whether every model is schedulable: no breaker open and
// no replica inside a crash-recovery window.
func (st Stats) Healthy() bool {
	for _, m := range st.Models {
		if m.Breaker == "open" || m.Down {
			return false
		}
	}
	return true
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.Ensemble == nil || cfg.Scheduler == nil || cfg.Rewarder == nil {
		panic("serve: Ensemble, Scheduler and Rewarder are required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	m := len(cfg.Ensemble.Models)
	maxBatch := 1
	if cfg.Batching.enabled() {
		maxBatch = cfg.Batching.MaxBatch
		if maxBatch > maxBatchCap {
			maxBatch = maxBatchCap
		}
	}
	s := &Server{
		cfg:      cfg,
		tol:      cfg.Tolerance.withDefaults(),
		scale:    cfg.TimeScale,
		maxBatch: maxBatch,
		events:   make(chan event, 4*cfg.QueueDepth),
		src:      rng.New(cfg.Seed ^ 0x5e7e),
		obs:      obsv.NewObserver(cfg.Obs),
		cache:    rcache.New(cfg.Cache),
		mstats:   make([]modelCounters, m),
		breakers: make([]breakerState, m),
		replicas: make([]int, m),
		rstats:   make([][]replicaCounters, m),
		forming:  make([]atomic.Int64, m),
	}
	for k := range s.replicas {
		r := 1
		if k < len(cfg.Replicas) && cfg.Replicas[k] > 1 {
			r = cfg.Replicas[k]
		}
		s.replicas[k] = r
		s.rstats[k] = make([]replicaCounters, r)
	}
	adm := cfg.Admission
	if adm.Capacity <= 0 {
		adm.Capacity = bottleneckCapacity(cfg.Ensemble, s.replicas)
	}
	s.qosCtl = qos.New(qos.Config{Classes: cfg.Classes, Tuning: adm})
	if len(cfg.Classes) > 0 {
		s.classStats = make([]classCounters, len(cfg.Classes))
		s.degradedSched = &core.Greedy{Order: core.EDF}
	}
	if maxBatch > 1 {
		s.batchHist = make([][]atomic.Uint64, m)
		for k := range s.batchHist {
			s.batchHist[k] = make([]atomic.Uint64, maxBatch)
		}
	}
	for range cfg.Ensemble.Models {
		s.taskCh = append(s.taskCh, make(chan *task, cfg.QueueDepth))
	}
	// Frozen planning cost vector: mean latency with 10% headroom so
	// latency jitter does not turn feasible-looking plans into deadline
	// misses. With batching on, a task's capacity cost is the amortized
	// per-item share of a full batch, so the scheduler sees the
	// throughput gain. The coordinator copies its working exec slice
	// from this; with adaptation on, adapt.ExecInto rescales it by the
	// live inflation factor each planning pass.
	profiled := make([]time.Duration, m)
	s.baseExec = make([]time.Duration, m)
	for k, md := range cfg.Ensemble.Models {
		profiled[k] = md.MeanLatency()
		e := time.Duration(float64(md.MeanLatency()) * 1.1)
		if maxBatch > 1 {
			e = cfg.Batching.curve(k).Amortized(e, maxBatch)
		}
		s.baseExec[k] = e
	}
	s.adapt = adapt.New(cfg.Adapt, profiled, s.baseExec, s.replicas)
	for k, md := range cfg.Ensemble.Models {
		fc := cfg.Faults
		if k < len(cfg.FaultsPerModel) {
			fc = cfg.FaultsPerModel[k]
		}
		if !fc.Enabled() {
			continue
		}
		// Faulty.Attempt gets wall-clock nows but virtual latencies, so
		// CrashMTBF stays virtual while the recovery window is scaled to
		// wall time here.
		if fc.CrashRecovery <= 0 {
			fc.CrashRecovery = 2 * time.Second
		}
		fc.CrashRecovery = time.Duration(float64(fc.CrashRecovery) * s.scale)
		fc.Seed = fc.Seed*0x9e3779b97f4a7c15 + uint64(k) + 1
		if s.faulty == nil {
			s.faulty = make([]*model.Faulty, m)
		}
		s.faulty[k] = model.NewFaulty(md, fc)
	}
	return s
}

// bottleneckCapacity estimates the fleet's sustainable full-ensemble
// service rate in requests per virtual second: the slowest model's pool
// throughput, min over k of replicas[k] / meanLatency[k]. This is the
// admission controller's default Capacity; an explicit
// AdmissionConfig.Capacity overrides it.
func bottleneckCapacity(e *ensemble.Ensemble, replicas []int) float64 {
	capacity := 0.0
	for k, md := range e.Models {
		lat := md.MeanLatency().Seconds()
		if lat <= 0 {
			continue
		}
		c := float64(replicas[k]) / lat
		if capacity <= 0 || c < capacity {
			capacity = c
		}
	}
	if capacity <= 0 {
		capacity = 1
	}
	return capacity
}

// Start launches the workers and the coordinator. It returns immediately;
// cancel the context, or call Drain or Stop, to shut down.
func (s *Server) Start(ctx context.Context) {
	s.lifeMu.Lock()
	if s.ctx != nil {
		s.lifeMu.Unlock()
		panic("serve: Start called twice")
	}
	ctx, cancel := context.WithCancel(ctx)
	s.ctx, s.cancel = ctx, cancel
	//schemble:wallclock virtual time is anchored to the wall clock once, at Start; every virtual timestamp derives from this instant
	s.start = time.Now()
	s.lifeMu.Unlock()
	for k := range s.taskCh {
		for r := 0; r < s.replicas[k]; r++ {
			k, r := k, r
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.worker(ctx, k, r)
			}()
		}
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.coordinate(ctx)
	}()
}

// Stop shuts the server down immediately and waits for goroutines to exit.
// Committed work is abandoned; every unresolved request resolves as
// missed. Safe to call repeatedly and after Drain.
func (s *Server) Stop() {
	s.cancelRuntime()
	s.wg.Wait()
}

// Drain stops accepting new work and lets committed requests finish before
// shutting down: buffered-but-uncommitted requests resolve as missed, new
// Submits resolve as rejected, and the runtime exits once the last
// committed request resolves. Drain returns nil when the runtime has fully
// stopped; if ctx is cancelled first it falls back to an immediate Stop
// and returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.lifeMu.Lock()
	sctx := s.ctx
	already := s.draining
	s.draining = true
	s.lifeMu.Unlock()
	if sctx == nil {
		return ErrNotStarted
	}
	if !already {
		select {
		case s.events <- event{kind: evDrain}:
		case <-sctx.Done():
		}
	}
	stopped := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(stopped)
	}()
	select {
	case <-stopped:
		return nil
	case <-ctx.Done():
		s.cancelRuntime()
		<-stopped
		return ctx.Err()
	}
}

func (s *Server) cancelRuntime() {
	s.lifeMu.Lock()
	cancel := s.cancel
	s.lifeMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stats returns a point-in-time health snapshot. Counters are monotonic;
// Buffered, InFlight and QueueDepth are instantaneous gauges.
func (s *Server) Stats() Stats {
	s.lifeMu.Lock()
	draining := s.draining
	s.lifeMu.Unlock()
	st := Stats{
		Submitted:   s.nSubmitted.Load(),
		Served:      s.nServed.Load(),
		Degraded:    s.nDegraded.Load(),
		Missed:      s.nMissed.Load(),
		Rejected:    s.nRejected.Load(),
		Buffered:    int(s.nBuffered.Load()),
		InFlight:    int(s.nInflight.Load()),
		QueueDepth:  make([]int, len(s.taskCh)),
		Replicas:    append([]int(nil), s.replicas...),
		Forming:     make([]int, len(s.taskCh)),
		ReplicaBusy: make([][]int, len(s.taskCh)),
		Models:      make([]ModelHealth, len(s.taskCh)),
		Draining:    draining,
	}
	st.Resolved = st.Served + st.Degraded + st.Missed + st.Rejected
	load, ladder, snaps := s.qosCtl.Snapshot()
	st.Load = load
	st.Ladder = ladder
	st.LadderState = qos.LadderName(ladder)
	if s.classStats != nil {
		st.Classes = s.classStatsFrom(snaps)
	}
	if s.cache != nil {
		cs := s.cache.Snapshot()
		st.Cache = &cs
	}
	if s.adapt != nil {
		st.Adapt = s.adapt.Snapshot()
	}
	for k, ch := range s.taskCh {
		st.QueueDepth[k] = len(ch)
		st.Forming[k] = int(s.forming[k].Load())
		busy := make([]int, s.replicas[k])
		for r := range busy {
			busy[r] = int(s.rstats[k][r].busy.Load())
		}
		st.ReplicaBusy[k] = busy
	}
	if s.batchHist != nil {
		st.BatchSizes = make([][]uint64, len(s.taskCh))
		for k := range s.batchHist {
			sizes := make([]uint64, s.maxBatch)
			for b := range sizes {
				sizes[b] = s.batchHist[k][b].Load()
			}
			st.BatchSizes[k] = sizes
		}
	}
	//schemble:wallclock health snapshot: crash-recovery windows are wall-clock scheduled by the fault injector
	wallNow := time.Now()
	s.breakerMu.Lock()
	for k := range st.Models {
		c := &s.mstats[k]
		mh := ModelHealth{
			Name:       s.cfg.Ensemble.Models[k].Name(),
			Breaker:    "off",
			Executed:   c.executed.Load(),
			Failures:   c.failures.Load(),
			Transient:  c.transient.Load(),
			Stragglers: c.stragglers.Load(),
			Crashes:    c.crashes.Load(),
			Timeouts:   c.timeouts.Load(),
			Panics:     c.panics.Load(),
			Retries:    c.retries.Load(),
			Hedges:     c.hedges.Load(),
			HedgeWins:  c.hedgeWins.Load(),
		}
		mh.ReplicaExecuted = make([]uint64, s.replicas[k])
		mh.ReplicaFailures = make([]uint64, s.replicas[k])
		for r := range mh.ReplicaExecuted {
			mh.ReplicaExecuted[r] = s.rstats[k][r].executed.Load()
			mh.ReplicaFailures[r] = s.rstats[k][r].failures.Load()
		}
		if s.tol.BreakerThreshold > 0 {
			b := s.breakers[k]
			mh.Breaker = breakerName(b.state)
			mh.ConsecutiveFailures = b.consec
			mh.BreakerTrips = b.trips
		}
		if s.faulty != nil && s.faulty[k] != nil {
			mh.Down = s.faulty[k].Down(wallNow)
		}
		st.Models[k] = mh
	}
	s.breakerMu.Unlock()
	return st
}

// Observer exposes the server's observability collector (nil when
// Config.Obs is disabled): decision traces via Last, counters and latency
// histograms via Snapshot.
func (s *Server) Observer() *obsv.Observer { return s.obs }

// maxTraceAlternatives bounds how many candidate subsets a decision trace
// records.
const maxTraceAlternatives = 4

// alternatives ranks every candidate subset by its profiled reward at the
// query's discrepancy score and returns the top few — the options the DP
// scheduler weighed the chosen subset against. Only called with
// observability enabled.
func (s *Server) alternatives(score float64) []obsv.Alternative {
	subs := ensemble.AllSubsets(s.cfg.Ensemble.M())
	alts := make([]obsv.Alternative, len(subs))
	for i, sub := range subs {
		alts[i] = obsv.Alternative{Subset: sub.Models(), Reward: s.cfg.Rewarder.Reward(score, sub)}
	}
	sort.SliceStable(alts, func(i, j int) bool { return alts[i].Reward > alts[j].Reward })
	if len(alts) > maxTraceAlternatives {
		alts = alts[:maxTraceAlternatives]
	}
	return alts
}

// Submit enqueues a query with a relative deadline and returns the channel
// its Result will arrive on. Start must have been called first. The
// returned channel always receives exactly one Result: immediately (with
// Rejected set) when the event loop is saturated or the server is draining
// or stopped, otherwise when the request completes, misses its deadline,
// or the runtime shuts down. In classed mode the request lands in the
// lowest-priority class (the untagged-traffic default).
func (s *Server) Submit(sample *dataset.Sample, deadline time.Duration) <-chan Result {
	return s.SubmitClass(sample, deadline, "")
}

// SubmitClass is Submit with an explicit request class (by name; unknown
// or empty names map to the lowest-priority class). A non-positive
// deadline means the class's configured default deadline. Under overload
// the admission controller may reject the request up front (Rejected set,
// shed from the lowest-priority / over-quota classes first — never at
// random); classless servers ignore the class entirely.
func (s *Server) SubmitClass(sample *dataset.Sample, deadline time.Duration, class string) <-chan Result {
	s.lifeMu.Lock()
	ctx, draining := s.ctx, s.draining
	s.lifeMu.Unlock()
	if ctx == nil {
		panic("serve: Submit before Start")
	}
	ci := s.qosCtl.ClassIndex(class)
	if ci >= 0 && deadline <= 0 {
		deadline = s.qosCtl.Class(ci).Deadline
	}
	//schemble:wallclock arrival is wall-anchored; deadlines and virtual timestamps are derived from it via the configured TimeScale
	now := time.Now()
	req := &request{
		sample:   sample,
		arrived:  now,
		deadline: now.Add(time.Duration(float64(deadline) * s.scale)),
		class:    ci,
		done:     make(chan Result, 1),
	}
	if s.obs != nil {
		queued := time.Duration(float64(now.Sub(s.start)) / s.scale)
		req.tr = &obsv.DecisionTrace{
			ID:       s.reqSeq.Add(1),
			SampleID: sample.ID,
			CameraID: sample.CameraID,
			Queued:   queued,
			Deadline: queued + deadline,
		}
		if ci >= 0 {
			req.tr.Class = s.qosCtl.Class(ci).Name
			req.tr.Ladder = s.qosCtl.Ladder()
		}
	}
	s.nSubmitted.Add(1)
	if ci >= 0 {
		s.classStats[ci].submitted.Add(1)
	}
	if draining || ctx.Err() != nil {
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	if ci >= 0 && !s.qosCtl.Admit(time.Duration(float64(now.Sub(s.start))/s.scale), ci) {
		// Admission-controlled shed: an explicit rejection decided by
		// class quota and ladder state, before any scoring work.
		s.classStats[ci].shed.Add(1)
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	req.score = 0.5
	if s.cfg.Estimator != nil {
		req.score = s.cfg.Estimator.Predict(sample)
	}
	req.rawScore = req.score
	if s.adapt != nil {
		//schemble:wallclock converts a wall instant to virtual time against the Start anchor
		vnow := time.Duration(float64(time.Since(s.start)) / s.scale)
		s.adapt.ObserveScore(vnow, req.rawScore)
		req.score = s.adapt.Calibrate(req.rawScore)
	}
	req.advance(stateScored)
	if req.tr != nil {
		req.tr.Score = req.score
		//schemble:wallclock converts a wall instant to virtual time against the Start anchor
		req.tr.Scored = time.Duration(float64(time.Since(s.start)) / s.scale)
	}
	if s.cache != nil {
		//schemble:wallclock converts a wall instant to virtual time against the Start anchor
		vnow := time.Duration(float64(time.Since(s.start)) / s.scale)
		v, key, outcome := s.cache.Lookup(vnow, sample.Features, req.score)
		if req.tr != nil {
			req.tr.Cache = outcome
		}
		// Exhaustive over the cache taxonomy (enforced by the
		// exhaustiveoutcome analyzer): a new cache outcome must decide its
		// scheduling consequence here.
		switch outcome {
		case obsv.CacheOutcomeHit:
			// Zero-cost plan: the cached answer resolves immediately,
			// skipping the buffer, the scheduler, dispatch, and the
			// deadline timer entirely.
			s.resolve(req, Result{
				Output: v.Output,
				Subset: v.Subset,
				Cached: true,
				//schemble:wallclock latency is the wall-clock distance from arrival, descaled to virtual time
				Latency: time.Duration(float64(time.Since(req.arrived)) / s.scale),
			})
			return req.done
		case obsv.CacheOutcomeMiss:
			// Cacheable: fill the entry when the request resolves cleanly.
			req.cacheable, req.cacheKey = true, key
		case obsv.CacheOutcomeBypass:
			// Too hard (or unkeyable): the ensemble always runs.
		}
	}
	select {
	case s.events <- event{kind: evSubmit, req: req}:
	default:
		// Event loop saturated: reject explicitly instead of blocking the
		// caller or dropping the request on the floor.
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	if ctx.Err() != nil {
		// Raced shutdown: the coordinator's drain sweep may already be
		// past; resolve directly rather than leaving the caller to the
		// deadline-timer fallback. resolve's exactly-once guarantee makes
		// the duplicate path harmless.
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	// The timer turns the deadline into an event so the coordinator can
	// resolve never-scheduled requests. Delivery is lossless: the timer
	// goroutine blocks until the coordinator takes the event, and falls
	// back to resolving directly once the runtime is shutting down.
	//schemble:wallclock deadline timers fire in wall time; the deadline itself was derived from the virtual budget at Submit
	time.AfterFunc(time.Until(req.deadline), func() {
		if req.isResolved() {
			return
		}
		select {
		case s.events <- event{kind: evDeadline, req: req}:
		case <-ctx.Done():
			s.resolve(req, Result{Missed: true})
		}
	})
	return req.done
}

// worker is replica r of model k: it pulls tasks off the model's shared
// queue and executes them serially — one at a time, or as micro-batches
// when batching is enabled. Tasks whose request already resolved
// (rejected, direct-deadline, degraded, or shutdown) are skipped but
// still reported, so the coordinator's backlog accounting stays truthful.
// A task whose attempt chain fails permanently is reported as failed
// rather than killing the worker, so one bad input or fault window can
// never strand the replica.
func (s *Server) worker(ctx context.Context, k, r int) {
	m := s.cfg.Ensemble.Models[k]
	var inj *model.Faulty
	if s.faulty != nil {
		inj = s.faulty[k]
	}
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-s.taskCh[k]:
			if s.maxBatch > 1 {
				if !s.runBatch(ctx, m, inj, k, r, s.formBatch(ctx, k, t)) {
					return
				}
				continue
			}
			if !s.runTask(ctx, m, inj, k, r, t) {
				return
			}
		}
	}
}

// runTask executes one unbatched task on replica r of model k and reports
// its completion event. Returns false when the runtime context was
// cancelled and the worker must exit.
func (s *Server) runTask(ctx context.Context, m model.Model, inj *model.Faulty, k, r int, t *task) bool {
	s.forming[k].Add(1)
	defer s.forming[k].Add(-1)
	var done, ran, failed bool
	if !t.req.isResolved() {
		ran = true
		rc := &s.rstats[k][r]
		rc.busy.Store(1)
		out, vlat, ok, alive := s.execute(ctx, m, inj, k, t.req)
		rc.busy.Store(0)
		if !alive {
			return false
		}
		s.mstats[k].executed.Add(1)
		rc.executed.Add(1)
		if !ok {
			s.mstats[k].failures.Add(1)
			rc.failures.Add(1)
			failed = true
		} else if s.adapt != nil {
			//schemble:wallclock observation is timestamped at completion in virtual time against the Start anchor
			vnow := time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the workers launch; reads are ordered by goroutine creation
			s.adapt.ObserveLatency(vnow, k, r, vlat)
		}
		t.req.mu.Lock()
		if t.req.state != stateResolved {
			t.req.remaining--
			if ok {
				t.req.outs[k] = out
				t.req.ok = t.req.ok.With(k)
			} else {
				t.req.failed++
			}
			done = t.req.remaining == 0
		}
		t.req.mu.Unlock()
	}
	select {
	case s.events <- event{kind: evTaskDone, req: t.req, k: k, done: done, ran: ran, failed: failed}:
	case <-ctx.Done():
		return false
	}
	return true
}

// execute runs one task's attempt chain for model k: draw the injected
// fault, sleep the (scaled, possibly straggling) latency with optional
// hedging and deadline cutoff, run Predict panic-safely, and retry failed
// attempts with jittered exponential backoff while the budget lasts. ok
// reports whether an output was produced; alive is false when the runtime
// context was cancelled mid-attempt (the worker must exit silently, as
// before). vlat is the winning attempt's virtual service time — the
// sample the adaptation layer's latency sketches ingest.
func (s *Server) execute(ctx context.Context, m model.Model, inj *model.Faulty, k int, r *request) (out model.Output, vlat time.Duration, ok, alive bool) {
	c := &s.mstats[k]
	for attempt := 0; ; attempt++ {
		s.srcMu.Lock()
		lat := m.SampleLatency(s.src)
		s.srcMu.Unlock()
		if s.cfg.Drift != nil {
			//schemble:wallclock the drift schedule is evaluated at the attempt's virtual start time
			vnow := time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the workers launch; reads are ordered by goroutine creation
			lat = time.Duration(float64(lat) * s.cfg.Drift(k, vnow))
		}
		dec := model.Decision{Kind: model.FaultNone, LatencyFactor: 1}
		if inj != nil {
			//schemble:wallclock fault injection decides transient/crash windows in wall time, matching model.Faulty's schedule
			dec = inj.Attempt(time.Now(), lat)
		}
		if dec.Kind == model.FaultCrash || dec.Kind == model.FaultTransient {
			if dec.Kind == model.FaultCrash {
				c.crashes.Add(1)
			} else {
				c.transient.Add(1)
			}
			retry, alive := s.backoff(ctx, r, attempt)
			if !alive {
				return out, 0, false, false
			}
			if retry {
				c.retries.Add(1)
				if s.obs != nil {
					r.obsRetries.Add(1)
				}
				continue
			}
			return out, 0, false, true
		}
		d := time.Duration(float64(lat) * dec.LatencyFactor * s.scale)
		// The winning attempt's virtual service time: the primary's
		// (possibly straggling) draw unless the hedge wins below.
		vlat = time.Duration(float64(lat) * dec.LatencyFactor)
		primary := time.NewTimer(d)
		var hedge, cutoff *time.Timer
		var hedgeC, cutoffC <-chan time.Time
		var hlat time.Duration
		if dec.Kind == model.FaultStraggler {
			c.stragglers.Add(1)
			if s.tol.HedgeFactor > 0 {
				// Hedge: re-issue the attempt after HedgeFactor mean
				// latencies; the fresh (non-straggling) attempt races the
				// straggler and the first to finish wins. Outputs are
				// deterministic, so the winner only decides latency.
				s.srcMu.Lock()
				hlat = m.SampleLatency(s.src)
				s.srcMu.Unlock()
				if s.cfg.Drift != nil {
					//schemble:wallclock the drift schedule is evaluated at the attempt's virtual start time
					vnow := time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the workers launch; reads are ordered by goroutine creation
					hlat = time.Duration(float64(hlat) * s.cfg.Drift(k, vnow))
				}
				// The hedging threshold consumes the live inflation factor:
				// under drift the frozen mean would fire hedges on every
				// (now-normal) slow attempt.
				mean := float64(m.MeanLatency())
				if s.adapt != nil {
					mean *= s.adapt.Inflation(k)
				}
				hd := time.Duration((s.tol.HedgeFactor*mean + float64(hlat)) * s.scale)
				if hd < d {
					hedge = time.NewTimer(hd)
					hedgeC = hedge.C
					c.hedges.Add(1)
					if s.obs != nil {
						r.obsHedges.Add(1)
					}
				}
			}
		}
		stop := func() {
			primary.Stop()
			if hedge != nil {
				hedge.Stop()
			}
			if cutoff != nil {
				cutoff.Stop()
			}
		}
		if s.tol.TaskTimeout {
			//schemble:wallclock per-attempt timeout budget is the wall-clock distance to the request deadline
			until := time.Until(r.deadline)
			if until <= 0 {
				stop()
				c.timeouts.Add(1)
				if s.obs != nil {
					r.obsTimeouts.Add(1)
				}
				return out, 0, false, true
			}
			if until < d {
				cutoff = time.NewTimer(until)
				cutoffC = cutoff.C
			}
		}
		select {
		case <-ctx.Done():
			stop()
			return out, 0, false, false
		case <-primary.C:
			stop()
		case <-hedgeC:
			c.hedgeWins.Add(1)
			// The fresh attempt won the race: its own draw is the
			// observed service time, not the straggler's.
			vlat = hlat
			stop()
		case <-cutoffC:
			// The deadline arrived mid-attempt: abandon it instead of
			// occupying the worker past the point of usefulness.
			stop()
			c.timeouts.Add(1)
			if s.obs != nil {
				r.obsTimeouts.Add(1)
			}
			return out, 0, false, true
		}
		if out, ok = s.safePredict(m, k, r.sample); ok {
			return out, vlat, true, true
		}
		// Predict panicked: contained by safePredict; treat like a
		// transient fault.
		retry, alive := s.backoff(ctx, r, attempt)
		if !alive {
			return out, 0, false, false
		}
		if retry {
			c.retries.Add(1)
			if s.obs != nil {
				r.obsRetries.Add(1)
			}
			continue
		}
		return out, 0, false, true
	}
}

// backoff decides whether a failed attempt may retry, sleeping the
// jittered exponential backoff first. alive is false when the runtime
// context was cancelled during the sleep.
func (s *Server) backoff(ctx context.Context, r *request, attempt int) (retry, alive bool) {
	return s.backoffUntil(ctx, r.deadline, attempt)
}

// backoffUntil is backoff against an explicit deadline — for batches, the
// latest live deadline in the batch.
func (s *Server) backoffUntil(ctx context.Context, deadline time.Time, attempt int) (retry, alive bool) {
	if attempt >= s.tol.MaxRetries {
		return false, true
	}
	base := s.tol.RetryBackoff
	s.srcMu.Lock()
	jit := time.Duration(s.src.Float64() * float64(base))
	s.srcMu.Unlock()
	d := time.Duration(float64(base<<uint(attempt)+jit) * s.scale)
	//schemble:wallclock retry budget check: backoff is only worth paying if it still fits before the wall-clock deadline
	if s.tol.TaskTimeout && time.Now().Add(d).After(deadline) {
		// No budget left to retry inside the deadline.
		return false, true
	}
	t := time.NewTimer(d)
	select {
	case <-ctx.Done():
		t.Stop()
		return false, false
	case <-t.C:
		return true, true
	}
}

// safePredict runs m.Predict, converting a panic into a failed attempt so
// one bad input can never kill the model's worker goroutine and strand its
// task queue.
func (s *Server) safePredict(m model.Model, k int, sample *dataset.Sample) (out model.Output, ok bool) {
	defer func() {
		if rec := recover(); rec != nil {
			s.mstats[k].panics.Add(1)
			ok = false
		}
	}()
	return m.Predict(sample), true
}

// coordinate owns the buffer and the scheduler.
func (s *Server) coordinate(ctx context.Context) {
	var buffer []*request
	m := s.cfg.Ensemble.M()
	exec := make([]time.Duration, m)
	copy(exec, s.baseExec)
	// busyUntil[k][r] approximates, in unscaled virtual time since start,
	// when replica r of model k drains the work committed to it;
	// pending[k] counts dispatched-but-unfinished tasks so completions can
	// re-anchor the estimate on reality (mirroring sim.onTaskDone) instead
	// of accumulating jitter.
	busyUntil := make([][]time.Duration, m)
	for k := range busyUntil {
		busyUntil[k] = make([]time.Duration, s.replicas[k])
	}
	pending := make([]int, m)
	// inflight tracks committed-but-unfinished requests so shutdown can
	// resolve them and drain knows when it is done.
	inflight := make(map[*request]bool)
	draining := false

	now := func() time.Duration {
		//schemble:wallclock converts a wall instant to virtual time against the Start anchor
		return time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before this goroutine launches; reads are ordered by goroutine creation
	}
	syncGauges := func() {
		s.nBuffered.Store(int64(len(buffer)))
		s.nInflight.Store(int64(len(inflight)))
	}
	latency := func(r *request) time.Duration {
		//schemble:wallclock latency is the wall-clock distance from arrival, descaled to virtual time
		return time.Duration(float64(time.Since(r.arrived)) / s.scale)
	}

	// lastSlack is the fraction of the previous planning pass's buffer the
	// scheduler left unplaced — the controller's "capacity exhausted"
	// signal alongside the raw backlog.
	lastSlack := 0.0

	dispatch := func() {
		// Shed requests that resolved while buffered (direct deadline
		// delivery during saturation).
		live := buffer[:0]
		for _, r := range buffer {
			if !r.isResolved() {
				live = append(live, r)
			}
		}
		buffer = live
		t := now()
		// Feed the overload controller: outstanding work everywhere in the
		// engine (buffer + model queues + forming batches) plus the last
		// pass's scheduler slack. The estimate drives admission and
		// Retry-After only — never the plan — so classless results are
		// untouched.
		backlog := len(buffer)
		for k := range s.taskCh {
			backlog += len(s.taskCh[k]) + int(s.forming[k].Load())
		}
		s.qosCtl.Observe(t, backlog, lastSlack)
		if s.adapt != nil {
			// Refresh the planning cost vector from the live quantile
			// sketches so the whole pass sees one consistent cost view.
			s.adapt.ExecInto(exec)
		}
		if len(buffer) == 0 {
			syncGauges()
			return
		}
		// Health consultation: models behind an open breaker or inside a
		// crash-recovery window are pushed beyond any feasible deadline so
		// the scheduler plans subsets around them.
		blocked := s.breakerBlocked(t)
		if s.faulty != nil {
			//schemble:wallclock crash-recovery windows are wall-clock scheduled by the fault injector
			wallNow := time.Now()
			for k, f := range s.faulty {
				if f != nil && f.Down(wallNow) {
					blocked = blocked.With(k)
				}
			}
		}
		mkAvail := func() core.Capacity {
			avail := core.Capacity(busyUntil)
			if blocked != ensemble.Empty {
				avail = append(core.Capacity(nil), busyUntil...)
				for _, k := range blocked.Models() {
					slots := make([]time.Duration, len(busyUntil[k]))
					for i := range slots {
						slots[i] = t + blockHorizon
					}
					avail[k] = slots
				}
			}
			return avail
		}
		mkInfos := func(idx []int) []core.QueryInfo {
			infos := make([]core.QueryInfo, len(idx))
			for pi, bi := range idx {
				r := buffer[bi]
				infos[pi] = core.QueryInfo{
					ID: pi,
					//schemble:guardedby-ok start is written once in Start before the coordinator launches; reads are ordered by goroutine creation
					Arrival: time.Duration(float64(r.arrived.Sub(s.start)) / s.scale),
					//schemble:guardedby-ok start is written once in Start before the coordinator launches; reads are ordered by goroutine creation
					Deadline: time.Duration(float64(r.deadline.Sub(s.start)) / s.scale),
					Score:    r.score,
				}
			}
			return infos
		}
		// removed marks requests that left the buffer this pass (committed
		// or rejected); everything else stays buffered.
		removed := make(map[*request]bool)
		commitGroup := func(idx []int, lvls []qos.Level, plan core.Plan) {
			for pi, bi := range idx {
				r := buffer[bi]
				// Unhealthy models are stripped even if the scheduler chose
				// them; a subset emptied by the mask stays buffered.
				sub := plan.Subset(pi) &^ blocked
				if sub == ensemble.Empty {
					continue
				}
				if lvls != nil && lvls[pi] > qos.LevelFull {
					// Degradation ladder: cap the planned subset to the
					// class's service level, keeping the cheapest models.
					sub = qos.TruncateSubset(sub, qos.SubsetCap(lvls[pi], m), exec)
				}
				// Commit only when at least one chosen model has a free
				// replica.
				free := false
			freeScan:
				for _, k := range sub.Models() {
					for _, slot := range busyUntil[k] {
						if slot <= t {
							free = true
							break freeScan
						}
					}
				}
				if !free {
					continue
				}
				// A saturated task queue means dispatch would leak: reject
				// explicitly before committing anything. The coordinator is
				// the channels' only sender, so this pre-flight check cannot
				// race another producer.
				saturated := false
				for _, k := range sub.Models() {
					if len(s.taskCh[k]) == cap(s.taskCh[k]) {
						saturated = true
						break
					}
				}
				if saturated {
					removed[r] = true
					s.resolve(r, Result{Missed: true, Rejected: true})
					continue
				}
				r.mu.Lock()
				if r.state == stateResolved {
					r.mu.Unlock()
					removed[r] = true
					continue
				}
				r.subset = sub
				r.remaining = sub.Size()
				r.outs = make([]model.Output, m)
				r.state = stateCommitted
				if lvls != nil {
					r.level = lvls[pi]
				}
				if r.tr != nil {
					// Decision context: what the runtime looked like when the
					// subset was locked in.
					r.tr.Committed = t
					r.tr.Subset = sub.Models()
					r.tr.Alternatives = s.alternatives(r.score)
					depths := make([]int, len(s.taskCh))
					forming := make([]int, len(s.taskCh))
					for k, ch := range s.taskCh {
						depths[k] = len(ch)
						forming[k] = int(s.forming[k].Load())
					}
					r.tr.QueueDepths = depths
					r.tr.Forming = forming
					// Per-model earliest replica availability: the capacity
					// signal the scheduler keyed its feasibility checks on.
					bu := make([]time.Duration, m)
					for k, slots := range busyUntil {
						bu[k] = minSlot(slots)
					}
					r.tr.BusyUntil = bu
					r.tr.Blocked = blocked.Models()
					if s.adapt != nil {
						r.tr.Drift = s.adapt.ActiveDrift()
					}
				}
				r.mu.Unlock()
				removed[r] = true
				inflight[r] = true
				for _, k := range sub.Models() {
					// The task lands on the earliest-available replica slot,
					// exactly the assumption the scheduler's capacity model
					// (core.Capacity) made when it judged feasibility.
					slot := 0
					for i, v := range busyUntil[k] {
						if v < busyUntil[k][slot] {
							slot = i
						}
					}
					start := busyUntil[k][slot]
					if start < t {
						start = t
					}
					select {
					case s.taskCh[k] <- &task{req: r, k: k}:
						busyUntil[k][slot] = start + exec[k]
						pending[k]++
					default:
						// Unreachable given the pre-flight check; if it ever
						// happens, roll back instead of leaking: busyUntil is
						// untouched for this model, inflight forgets the
						// request, it resolves as rejected, and workers skip
						// its already-queued sibling tasks.
						delete(inflight, r)
						s.resolve(r, Result{Missed: true, Rejected: true})
					}
				}
			}
		}
		if s.classStats == nil {
			// Classless: one plan over the whole buffer with the configured
			// scheduler — exactly the pre-class runtime.
			idx := make([]int, len(buffer))
			for i := range idx {
				idx[i] = i
			}
			commitGroup(idx, nil, s.cfg.Scheduler.Schedule(t, mkInfos(idx), mkAvail(), exec, s.cfg.Rewarder))
		} else {
			// Classed: partition the buffer by the ladder's current service
			// level. Full and capped classes keep the configured scheduler;
			// greedy-level classes are planned afterwards — against whatever
			// capacity the protected tiers left behind — with the cheap
			// greedy planner. Requests whose class climbed to shed after
			// they were admitted are clamped to greedy: admission decisions
			// are not retroactive.
			var mainIdx, degIdx []int
			var mainLvl, degLvl []qos.Level
			for i, r := range buffer {
				lvl := s.qosCtl.Level(r.class)
				if lvl > qos.LevelGreedy {
					lvl = qos.LevelGreedy
				}
				if lvl == qos.LevelGreedy {
					degIdx = append(degIdx, i)
					degLvl = append(degLvl, lvl)
				} else {
					mainIdx = append(mainIdx, i)
					mainLvl = append(mainLvl, lvl)
				}
			}
			if len(mainIdx) > 0 {
				commitGroup(mainIdx, mainLvl,
					s.cfg.Scheduler.Schedule(t, mkInfos(mainIdx), mkAvail(), exec, s.cfg.Rewarder))
			}
			if len(degIdx) > 0 {
				commitGroup(degIdx, degLvl,
					s.degradedSched.Schedule(t, mkInfos(degIdx), mkAvail(), exec, s.cfg.Rewarder))
			}
		}
		planned := len(buffer)
		kept := buffer[:0]
		for _, r := range buffer {
			if !removed[r] {
				kept = append(kept, r)
			}
		}
		buffer = kept
		if planned > 0 {
			lastSlack = float64(len(buffer)) / float64(planned)
		}
		syncGauges()
	}

	shutdown := func() {
		for _, r := range buffer {
			s.resolve(r, Result{Missed: true})
		}
		buffer = nil
		//schemble:maporder-ok each in-flight request resolves independently to its own channel; no ordered output derives from this sweep
		for r := range inflight {
			s.resolve(r, Result{Missed: true})
			delete(inflight, r)
		}
		syncGauges()
		// Drain events that raced with shutdown so their requests still
		// resolve. Blocked deadline timers resolve themselves via
		// ctx.Done.
		for {
			select {
			case e := <-s.events:
				if e.kind == evSubmit {
					s.resolve(e.req, Result{Missed: true, Rejected: true})
				}
			default:
				return
			}
		}
	}

	for {
		select {
		case <-ctx.Done():
			shutdown()
			return
		case e := <-s.events:
			switch e.kind {
			case evSubmit:
				if draining {
					s.resolve(e.req, Result{Missed: true, Rejected: true})
					break
				}
				e.req.advance(stateBuffered)
				buffer = append(buffer, e.req)
				syncGauges()
			case evTaskDone:
				if e.ran {
					s.breakerRecord(e.k, !e.failed, now())
				}
				if pending[e.k] > 0 {
					pending[e.k]--
				}
				// Re-anchor the backlog estimate on the actual completion
				// time so latency jitter cannot accumulate drift: the
				// pending tasks are assumed spread evenly over the pool,
				// replica i finishing after (pending+i)/R more tasks (the
				// slot estimates sum to pending, preserving total
				// capacity; with one replica this is the scalar
				// now + pending*exec).
				R := len(busyUntil[e.k])
				anchor := now()
				for i := range busyUntil[e.k] {
					busyUntil[e.k][i] = anchor + time.Duration((pending[e.k]+i)/R)*exec[e.k]
				}
				if e.done {
					r := e.req
					delete(inflight, r)
					syncGauges()
					r.mu.Lock()
					outs, okMask, sub, nfailed, lvl := r.outs, r.ok, r.subset, r.failed, r.level
					r.mu.Unlock()
					if okMask == ensemble.Empty {
						// Every task failed permanently: nothing to
						// aggregate.
						s.resolve(r, Result{Subset: sub, Missed: true, Latency: latency(r)})
					} else {
						out := s.cfg.Ensemble.Predict(outs, okMask)
						//schemble:wallclock lateness is judged against the wall-clock deadline set at Submit
						late := time.Now().After(r.deadline)
						if s.adapt != nil && !late && nfailed == 0 &&
							lvl == qos.LevelFull && okMask == ensemble.Full(m) {
							// Clean full-ensemble resolve: pair the raw score
							// with the observed discrepancy for the
							// recalibration reservoir (mirrors sim).
							s.adapt.ObserveOutcome(now(), r.rawScore, outs, out)
						}
						s.resolve(r, Result{
							Output: out,
							Subset: okMask,
							Missed: late,
							// Degraded: some committed tasks failed, or the
							// degradation ladder served the class a reduced
							// plan (level above full).
							Degraded: !late && (nfailed > 0 || lvl > qos.LevelFull),
							Latency:  latency(r),
						})
					}
				}
			case evDeadline:
				r := e.req
				r.mu.Lock()
				started := r.state >= stateCommitted
				committed := r.state == stateCommitted
				outs, okMask, sub := r.outs, r.ok, r.subset
				r.mu.Unlock()
				switch {
				case !started:
					// Never committed: drop from the buffer and miss.
					for i, b := range buffer {
						if b == r {
							buffer = append(buffer[:i], buffer[i+1:]...)
							break
						}
					}
					s.resolve(r, Result{Missed: true})
					syncGauges()
				case committed && s.tol.Degrade && okMask != ensemble.Empty && okMask != sub:
					// Partial-ensemble degradation: the deadline arrived
					// with some but not all subset outputs. Aggregate what
					// completed and serve it degraded instead of missing.
					// Still-running sibling tasks observe the resolved
					// state and are skipped; exactly-once holds. (Writes
					// to outs land on indices outside okMask, so the
					// aggregation below never races them.)
					out := s.cfg.Ensemble.Predict(outs, okMask)
					delete(inflight, r)
					s.resolve(r, Result{
						Output:   out,
						Subset:   okMask,
						Degraded: true,
						Latency:  latency(r),
					})
					syncGauges()
				}
			case evDrain:
				draining = true
				// Uncommitted work cannot finish under drain: resolve it
				// now. Committed work runs to completion.
				for _, r := range buffer {
					s.resolve(r, Result{Missed: true})
				}
				buffer = nil
				syncGauges()
			}
			if draining {
				if len(inflight) == 0 {
					// Last committed request resolved: complete the drain.
					s.cancelRuntime()
				}
				continue
			}
			dispatch()
		}
	}
}

// minSlot returns the earliest availability among a model's replica
// slots.
func minSlot(slots []time.Duration) time.Duration {
	mn := slots[0]
	for _, v := range slots[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// resolve delivers a result exactly once; entering stateResolved is the
// only transition allowed from any stage, so late task completions,
// deadline timers and shutdown sweeps cannot double-deliver.
func (s *Server) resolve(r *request, res Result) {
	r.mu.Lock()
	if r.state == stateResolved {
		r.mu.Unlock()
		return
	}
	r.state = stateResolved
	var trace *obsv.DecisionTrace
	if r.tr != nil {
		// Finalize the trace while holding the mutex that guarded its
		// commit-time fields, then hand a copy to the observer outside the
		// lock.
		t := r.tr
		//schemble:wallclock converts the resolution instant to virtual time against the Start anchor
		t.Resolved = time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the coordinator launches; reads are ordered by goroutine creation
		t.Latency = t.Resolved - t.Queued
		t.Retries = int(r.obsRetries.Load())
		t.Hedges = int(r.obsHedges.Load())
		t.Timeouts = int(r.obsTimeouts.Load())
		switch {
		case res.Rejected:
			t.Outcome = obsv.OutcomeRejected
		case res.Missed:
			t.Outcome = obsv.OutcomeMissed
		case res.Degraded:
			t.Outcome = obsv.OutcomeDegraded
		default:
			t.Outcome = obsv.OutcomeServed
		}
		if !res.Missed {
			t.Served = res.Subset.Models()
		}
		c := *t
		trace = &c
	}
	r.mu.Unlock()
	if s.cache != nil && r.cacheable && !res.Missed && !res.Degraded {
		// Clean full-quality resolve of a cacheable miss: fill the entry
		// so the next query in this centroid region hits.
		//schemble:wallclock converts the resolution instant to virtual time against the Start anchor
		vnow := time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the coordinator launches; reads are ordered by goroutine creation
		s.cache.Fill(vnow, r.cacheKey, rcache.Value{Output: res.Output, Subset: res.Subset})
	}
	switch {
	case res.Rejected:
		s.nRejected.Add(1)
	case res.Missed:
		s.nMissed.Add(1)
	case res.Degraded:
		s.nDegraded.Add(1)
	default:
		s.nServed.Add(1)
	}
	if r.class >= 0 && s.classStats != nil {
		cc := &s.classStats[r.class]
		switch {
		case res.Rejected:
			cc.rejected.Add(1)
		case res.Missed:
			cc.missed.Add(1)
		case res.Degraded:
			cc.degraded.Add(1)
		default:
			cc.served.Add(1)
		}
	}
	if trace != nil {
		s.obs.Done(*trace)
	}
	r.done <- res
}
