// Package serve is the real-time concurrent counterpart of the discrete
// event simulator: one worker goroutine per deployed base model, a
// coordinator goroutine that owns the query buffer and runs the scheduler,
// and channel-based task dispatch. Model execution is simulated by
// sleeping for the model's (scaled) latency, so examples can replay a
// trace in compressed wall-clock time while exercising the same scheduling
// logic the paper deploys.
//
// Lifecycle: New -> Start(ctx) -> Submit()... -> Drain/Stop. Every request
// moves through an explicit state machine
//
//	submitted -> scored -> buffered -> committed -> resolved
//
// and resolves exactly once: with its aggregated output, as a deadline
// miss, or as an explicit rejection (Result.Rejected) when the runtime is
// saturated, draining, or stopped. Backpressure is bounded and visible:
// Submit rejects instead of blocking when the event loop is full, and
// dispatch rejects instead of leaking when a model's task queue is full.
// Stop abandons committed work; Drain finishes it first.
package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/rng"
)

// ErrNotStarted is returned by Drain when Start was never called.
var ErrNotStarted = errors.New("serve: server not started")

// Config configures a Server.
type Config struct {
	Ensemble *ensemble.Ensemble
	// Scheduler and Rewarder drive subset selection (the Schemble path).
	Scheduler core.Scheduler
	Rewarder  core.Rewarder
	// Estimator predicts discrepancy scores; nil scores everything 0.5.
	Estimator discrepancy.ScoreEstimator
	// TimeScale compresses simulated model latencies: 0.1 runs 10x faster
	// than real time. Defaults to 1.
	TimeScale float64
	// QueueDepth bounds each model's task channel (default 1024). When a
	// model's queue is full at dispatch time the request is rejected; when
	// the event loop is full Submit rejects up front.
	QueueDepth int
	Seed       uint64
}

// Result is the outcome of one request.
type Result struct {
	Output model.Output
	Subset ensemble.Subset
	// Missed is true when no output was produced in time (deadline miss,
	// shutdown, or rejection).
	Missed bool
	// Rejected is true when the runtime explicitly refused the request —
	// event-loop or model-queue saturation, draining, or already stopped —
	// rather than failing to meet its deadline. Rejected implies Missed.
	Rejected bool
	Latency  time.Duration
}

// reqState is a request's lifecycle stage. Transitions are guarded by the
// request mutex and move strictly forward; stateResolved is terminal and
// reachable from every stage.
type reqState uint8

const (
	stateSubmitted reqState = iota // accepted by Submit
	stateScored                    // difficulty score attached
	stateBuffered                  // waiting in the coordinator's buffer
	stateCommitted                 // subset locked, tasks dispatched
	stateResolved                  // Result delivered exactly once
)

// request tracks one in-flight query.
type request struct {
	sample   *dataset.Sample
	arrived  time.Time
	deadline time.Time
	score    float64

	mu        sync.Mutex
	state     reqState
	outs      []model.Output
	remaining int
	subset    ensemble.Subset
	done      chan Result
}

// advance moves the lifecycle forward; it never regresses and never leaves
// the terminal resolved state.
func (r *request) advance(to reqState) {
	r.mu.Lock()
	if r.state < to && r.state != stateResolved {
		r.state = to
	}
	r.mu.Unlock()
}

func (r *request) isResolved() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state == stateResolved
}

// Server is a running ensemble-serving instance.
type Server struct {
	cfg    Config
	scale  float64
	taskCh []chan *task
	events chan event
	wg     sync.WaitGroup

	// lifeMu guards the lifecycle fields so Submit racing Start, Drain or
	// Stop observes a consistent (ctx, draining) pair.
	lifeMu   sync.Mutex
	ctx      context.Context
	cancel   context.CancelFunc
	draining bool
	start    time.Time

	src   *rng.Source
	srcMu sync.Mutex

	// Health counters behind the Stats snapshot. buffered/inflight mirror
	// the coordinator's private structures.
	nSubmitted atomic.Uint64
	nServed    atomic.Uint64
	nMissed    atomic.Uint64
	nRejected  atomic.Uint64
	nBuffered  atomic.Int64
	nInflight  atomic.Int64
}

type task struct {
	req *request
	k   int
}

type evKind int

const (
	evSubmit evKind = iota
	evTaskDone
	evDeadline
	evDrain
)

type event struct {
	kind evKind
	req  *request
	k    int
	// done marks the evTaskDone that completed its request's last task.
	done bool
}

// Stats is a point-in-time health snapshot of the runtime.
type Stats struct {
	Submitted uint64 // requests accepted by Submit
	Served    uint64 // resolved with an aggregated output in time
	Missed    uint64 // resolved as deadline misses (or abandoned on Stop)
	Rejected  uint64 // explicitly rejected (saturation, drain, stopped)
	Resolved  uint64 // Served + Missed + Rejected
	Buffered  int    // awaiting scheduling in the coordinator's buffer
	InFlight  int    // committed, not all tasks finished
	// QueueDepth[k] is model k's task-channel occupancy.
	QueueDepth []int
	Draining   bool
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.Ensemble == nil || cfg.Scheduler == nil || cfg.Rewarder == nil {
		panic("serve: Ensemble, Scheduler and Rewarder are required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Server{
		cfg:    cfg,
		scale:  cfg.TimeScale,
		events: make(chan event, 4*cfg.QueueDepth),
		src:    rng.New(cfg.Seed ^ 0x5e7e),
	}
	for range cfg.Ensemble.Models {
		s.taskCh = append(s.taskCh, make(chan *task, cfg.QueueDepth))
	}
	return s
}

// Start launches the workers and the coordinator. It returns immediately;
// cancel the context, or call Drain or Stop, to shut down.
func (s *Server) Start(ctx context.Context) {
	s.lifeMu.Lock()
	if s.ctx != nil {
		s.lifeMu.Unlock()
		panic("serve: Start called twice")
	}
	ctx, cancel := context.WithCancel(ctx)
	s.ctx, s.cancel = ctx, cancel
	s.start = time.Now()
	s.lifeMu.Unlock()
	for k := range s.taskCh {
		k := k
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker(ctx, k)
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.coordinate(ctx)
	}()
}

// Stop shuts the server down immediately and waits for goroutines to exit.
// Committed work is abandoned; every unresolved request resolves as
// missed. Safe to call repeatedly and after Drain.
func (s *Server) Stop() {
	s.cancelRuntime()
	s.wg.Wait()
}

// Drain stops accepting new work and lets committed requests finish before
// shutting down: buffered-but-uncommitted requests resolve as missed, new
// Submits resolve as rejected, and the runtime exits once the last
// committed request resolves. Drain returns nil when the runtime has fully
// stopped; if ctx is cancelled first it falls back to an immediate Stop
// and returns ctx.Err().
func (s *Server) Drain(ctx context.Context) error {
	s.lifeMu.Lock()
	sctx := s.ctx
	already := s.draining
	s.draining = true
	s.lifeMu.Unlock()
	if sctx == nil {
		return ErrNotStarted
	}
	if !already {
		select {
		case s.events <- event{kind: evDrain}:
		case <-sctx.Done():
		}
	}
	stopped := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(stopped)
	}()
	select {
	case <-stopped:
		return nil
	case <-ctx.Done():
		s.cancelRuntime()
		<-stopped
		return ctx.Err()
	}
}

func (s *Server) cancelRuntime() {
	s.lifeMu.Lock()
	cancel := s.cancel
	s.lifeMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Stats returns a point-in-time health snapshot. Counters are monotonic;
// Buffered, InFlight and QueueDepth are instantaneous gauges.
func (s *Server) Stats() Stats {
	s.lifeMu.Lock()
	draining := s.draining
	s.lifeMu.Unlock()
	st := Stats{
		Submitted:  s.nSubmitted.Load(),
		Served:     s.nServed.Load(),
		Missed:     s.nMissed.Load(),
		Rejected:   s.nRejected.Load(),
		Buffered:   int(s.nBuffered.Load()),
		InFlight:   int(s.nInflight.Load()),
		QueueDepth: make([]int, len(s.taskCh)),
		Draining:   draining,
	}
	st.Resolved = st.Served + st.Missed + st.Rejected
	for k, ch := range s.taskCh {
		st.QueueDepth[k] = len(ch)
	}
	return st
}

// Submit enqueues a query with a relative deadline and returns the channel
// its Result will arrive on. Start must have been called first. The
// returned channel always receives exactly one Result: immediately (with
// Rejected set) when the event loop is saturated or the server is draining
// or stopped, otherwise when the request completes, misses its deadline,
// or the runtime shuts down.
func (s *Server) Submit(sample *dataset.Sample, deadline time.Duration) <-chan Result {
	s.lifeMu.Lock()
	ctx, draining := s.ctx, s.draining
	s.lifeMu.Unlock()
	if ctx == nil {
		panic("serve: Submit before Start")
	}
	now := time.Now()
	req := &request{
		sample:   sample,
		arrived:  now,
		deadline: now.Add(time.Duration(float64(deadline) * s.scale)),
		done:     make(chan Result, 1),
	}
	s.nSubmitted.Add(1)
	if draining || ctx.Err() != nil {
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	req.score = 0.5
	if s.cfg.Estimator != nil {
		req.score = s.cfg.Estimator.Predict(sample)
	}
	req.advance(stateScored)
	select {
	case s.events <- event{kind: evSubmit, req: req}:
	default:
		// Event loop saturated: reject explicitly instead of blocking the
		// caller or dropping the request on the floor.
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	if ctx.Err() != nil {
		// Raced shutdown: the coordinator's drain sweep may already be
		// past; resolve directly rather than leaving the caller to the
		// deadline-timer fallback. resolve's exactly-once guarantee makes
		// the duplicate path harmless.
		s.resolve(req, Result{Missed: true, Rejected: true})
		return req.done
	}
	// The timer turns the deadline into an event so the coordinator can
	// resolve never-scheduled requests. Delivery is lossless: the timer
	// goroutine blocks until the coordinator takes the event, and falls
	// back to resolving directly once the runtime is shutting down.
	time.AfterFunc(time.Until(req.deadline), func() {
		if req.isResolved() {
			return
		}
		select {
		case s.events <- event{kind: evDeadline, req: req}:
		case <-ctx.Done():
			s.resolve(req, Result{Missed: true})
		}
	})
	return req.done
}

// worker executes tasks for model k serially, sleeping for the scaled
// latency, then reports completion. Tasks whose request already resolved
// (rejected, direct-deadline, or shutdown) are skipped but still reported,
// so the coordinator's backlog accounting stays truthful.
func (s *Server) worker(ctx context.Context, k int) {
	m := s.cfg.Ensemble.Models[k]
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-s.taskCh[k]:
			var done bool
			if !t.req.isResolved() {
				s.srcMu.Lock()
				lat := m.SampleLatency(s.src)
				s.srcMu.Unlock()
				timer := time.NewTimer(time.Duration(float64(lat) * s.scale))
				select {
				case <-ctx.Done():
					timer.Stop()
					return
				case <-timer.C:
				}
				out := m.Predict(t.req.sample)
				t.req.mu.Lock()
				if t.req.state != stateResolved {
					t.req.outs[k] = out
					t.req.remaining--
					done = t.req.remaining == 0
				}
				t.req.mu.Unlock()
			}
			select {
			case s.events <- event{kind: evTaskDone, req: t.req, k: k, done: done}:
			case <-ctx.Done():
				return
			}
		}
	}
}

// coordinate owns the buffer and the scheduler.
func (s *Server) coordinate(ctx context.Context) {
	var buffer []*request
	m := s.cfg.Ensemble.M()
	exec := make([]time.Duration, m)
	for k, md := range s.cfg.Ensemble.Models {
		// Plan with 10% headroom so latency jitter does not turn
		// feasible-looking plans into deadline misses.
		exec[k] = time.Duration(float64(md.MeanLatency()) * 1.1)
	}
	// busyUntil approximates, in unscaled virtual time since start, when
	// each model drains its queue; pending[k] counts dispatched-but-
	// unfinished tasks so completions can re-anchor the estimate on
	// reality (mirroring sim.onTaskDone) instead of accumulating jitter.
	busyUntil := make([]time.Duration, m)
	pending := make([]int, m)
	// inflight tracks committed-but-unfinished requests so shutdown can
	// resolve them and drain knows when it is done.
	inflight := make(map[*request]bool)
	draining := false

	now := func() time.Duration {
		return time.Duration(float64(time.Since(s.start)) / s.scale)
	}
	syncGauges := func() {
		s.nBuffered.Store(int64(len(buffer)))
		s.nInflight.Store(int64(len(inflight)))
	}

	dispatch := func() {
		// Shed requests that resolved while buffered (direct deadline
		// delivery during saturation).
		live := buffer[:0]
		for _, r := range buffer {
			if !r.isResolved() {
				live = append(live, r)
			}
		}
		buffer = live
		if len(buffer) == 0 {
			syncGauges()
			return
		}
		t := now()
		infos := make([]core.QueryInfo, len(buffer))
		for i, r := range buffer {
			infos[i] = core.QueryInfo{
				ID:       i,
				Arrival:  time.Duration(float64(r.arrived.Sub(s.start)) / s.scale),
				Deadline: time.Duration(float64(r.deadline.Sub(s.start)) / s.scale),
				Score:    r.score,
			}
		}
		plan := s.cfg.Scheduler.Schedule(t, infos, busyUntil, exec, s.cfg.Rewarder)
		var kept []*request
		for i, r := range buffer {
			sub := plan.Subset(i)
			if sub == ensemble.Empty {
				kept = append(kept, r)
				continue
			}
			// Commit only when at least one chosen model is free.
			free := false
			for _, k := range sub.Models() {
				if busyUntil[k] <= t {
					free = true
					break
				}
			}
			if !free {
				kept = append(kept, r)
				continue
			}
			// A saturated task queue means dispatch would leak: reject
			// explicitly before committing anything. The coordinator is
			// the channels' only sender, so this pre-flight check cannot
			// race another producer.
			saturated := false
			for _, k := range sub.Models() {
				if len(s.taskCh[k]) == cap(s.taskCh[k]) {
					saturated = true
					break
				}
			}
			if saturated {
				s.resolve(r, Result{Missed: true, Rejected: true})
				continue
			}
			r.mu.Lock()
			if r.state == stateResolved {
				r.mu.Unlock()
				continue
			}
			r.subset = sub
			r.remaining = sub.Size()
			r.outs = make([]model.Output, m)
			r.state = stateCommitted
			r.mu.Unlock()
			inflight[r] = true
			for _, k := range sub.Models() {
				start := busyUntil[k]
				if start < t {
					start = t
				}
				select {
				case s.taskCh[k] <- &task{req: r, k: k}:
					busyUntil[k] = start + exec[k]
					pending[k]++
				default:
					// Unreachable given the pre-flight check; if it ever
					// happens, roll back instead of leaking: busyUntil is
					// untouched for this model, inflight forgets the
					// request, it resolves as rejected, and workers skip
					// its already-queued sibling tasks.
					delete(inflight, r)
					s.resolve(r, Result{Missed: true, Rejected: true})
				}
			}
		}
		buffer = kept
		syncGauges()
	}

	shutdown := func() {
		for _, r := range buffer {
			s.resolve(r, Result{Missed: true})
		}
		buffer = nil
		for r := range inflight {
			s.resolve(r, Result{Missed: true})
			delete(inflight, r)
		}
		syncGauges()
		// Drain events that raced with shutdown so their requests still
		// resolve. Blocked deadline timers resolve themselves via
		// ctx.Done.
		for {
			select {
			case e := <-s.events:
				if e.kind == evSubmit {
					s.resolve(e.req, Result{Missed: true, Rejected: true})
				}
			default:
				return
			}
		}
	}

	for {
		select {
		case <-ctx.Done():
			shutdown()
			return
		case e := <-s.events:
			switch e.kind {
			case evSubmit:
				if draining {
					s.resolve(e.req, Result{Missed: true, Rejected: true})
					break
				}
				e.req.advance(stateBuffered)
				buffer = append(buffer, e.req)
				syncGauges()
			case evTaskDone:
				if pending[e.k] > 0 {
					pending[e.k]--
				}
				// Re-anchor the backlog estimate on the actual completion
				// time so latency jitter cannot accumulate drift.
				busyUntil[e.k] = now() + time.Duration(pending[e.k])*exec[e.k]
				if e.done {
					r := e.req
					delete(inflight, r)
					syncGauges()
					r.mu.Lock()
					outs, sub := r.outs, r.subset
					r.mu.Unlock()
					out := s.cfg.Ensemble.Predict(outs, sub)
					late := time.Now().After(r.deadline)
					s.resolve(r, Result{
						Output:  out,
						Subset:  sub,
						Missed:  late,
						Latency: time.Duration(float64(time.Since(r.arrived)) / s.scale),
					})
				}
			case evDeadline:
				r := e.req
				r.mu.Lock()
				started := r.state >= stateCommitted
				r.mu.Unlock()
				if !started {
					// Never committed: drop from the buffer and miss.
					for i, b := range buffer {
						if b == r {
							buffer = append(buffer[:i], buffer[i+1:]...)
							break
						}
					}
					s.resolve(r, Result{Missed: true})
					syncGauges()
				}
			case evDrain:
				draining = true
				// Uncommitted work cannot finish under drain: resolve it
				// now. Committed work runs to completion.
				for _, r := range buffer {
					s.resolve(r, Result{Missed: true})
				}
				buffer = nil
				syncGauges()
			}
			if draining {
				if len(inflight) == 0 {
					// Last committed request resolved: complete the drain.
					s.cancelRuntime()
				}
				continue
			}
			dispatch()
		}
	}
}

// resolve delivers a result exactly once; entering stateResolved is the
// only transition allowed from any stage, so late task completions,
// deadline timers and shutdown sweeps cannot double-deliver.
func (s *Server) resolve(r *request, res Result) {
	r.mu.Lock()
	if r.state == stateResolved {
		r.mu.Unlock()
		return
	}
	r.state = stateResolved
	r.mu.Unlock()
	switch {
	case res.Rejected:
		s.nRejected.Add(1)
	case res.Missed:
		s.nMissed.Add(1)
	default:
		s.nServed.Add(1)
	}
	r.done <- res
}
