// Package serve is the real-time concurrent counterpart of the discrete
// event simulator: one worker goroutine per deployed base model, a
// coordinator goroutine that owns the query buffer and runs the scheduler,
// and channel-based task dispatch. Model execution is simulated by
// sleeping for the model's (scaled) latency, so examples can replay a
// trace in compressed wall-clock time while exercising the same scheduling
// logic the paper deploys.
//
// Lifecycle: New -> Start(ctx) -> Submit()... -> Stop. Every submitted
// request resolves exactly once: with its aggregated output, or as a miss.
package serve

import (
	"context"
	"sync"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/rng"
)

// Config configures a Server.
type Config struct {
	Ensemble *ensemble.Ensemble
	// Scheduler and Rewarder drive subset selection (the Schemble path).
	Scheduler core.Scheduler
	Rewarder  core.Rewarder
	// Estimator predicts discrepancy scores; nil scores everything 0.5.
	Estimator discrepancy.ScoreEstimator
	// TimeScale compresses simulated model latencies: 0.1 runs 10x faster
	// than real time. Defaults to 1.
	TimeScale float64
	// QueueDepth bounds each model's task channel (default 1024).
	QueueDepth int
	Seed       uint64
}

// Result is the outcome of one request.
type Result struct {
	Output  model.Output
	Subset  ensemble.Subset
	Missed  bool
	Latency time.Duration
}

// request tracks one in-flight query.
type request struct {
	sample   *dataset.Sample
	arrived  time.Time
	deadline time.Time
	score    float64

	mu        sync.Mutex
	outs      []model.Output
	remaining int
	subset    ensemble.Subset
	resolved  bool
	done      chan Result
}

// Server is a running ensemble-serving instance.
type Server struct {
	cfg    Config
	scale  float64
	taskCh []chan *task
	events chan event
	wg     sync.WaitGroup
	ctx    context.Context
	cancel context.CancelFunc
	start  time.Time
	src    *rng.Source
	srcMu  sync.Mutex
}

type task struct {
	req *request
	k   int
}

type evKind int

const (
	evSubmit evKind = iota
	evTaskDone
	evDeadline
)

type event struct {
	kind evKind
	req  *request
	k    int
}

// New builds a server.
func New(cfg Config) *Server {
	if cfg.Ensemble == nil || cfg.Scheduler == nil || cfg.Rewarder == nil {
		panic("serve: Ensemble, Scheduler and Rewarder are required")
	}
	if cfg.TimeScale <= 0 {
		cfg.TimeScale = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	s := &Server{
		cfg:    cfg,
		scale:  cfg.TimeScale,
		events: make(chan event, 4*cfg.QueueDepth),
		src:    rng.New(cfg.Seed ^ 0x5e7e),
	}
	for range cfg.Ensemble.Models {
		s.taskCh = append(s.taskCh, make(chan *task, cfg.QueueDepth))
	}
	return s
}

// Start launches the workers and the coordinator. It returns immediately;
// cancel the context or call Stop to shut down.
func (s *Server) Start(ctx context.Context) {
	ctx, s.cancel = context.WithCancel(ctx)
	s.ctx = ctx
	s.start = time.Now()
	for k := range s.taskCh {
		k := k
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.worker(ctx, k)
		}()
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.coordinate(ctx)
	}()
}

// Stop shuts the server down and waits for goroutines to exit. In-flight
// requests resolve as missed.
func (s *Server) Stop() {
	if s.cancel != nil {
		s.cancel()
	}
	s.wg.Wait()
}

// Submit enqueues a query with a relative deadline and returns the channel
// its Result will arrive on. Start must have been called first.
func (s *Server) Submit(sample *dataset.Sample, deadline time.Duration) <-chan Result {
	if s.ctx == nil {
		panic("serve: Submit before Start")
	}
	now := time.Now()
	score := 0.5
	if s.cfg.Estimator != nil {
		score = s.cfg.Estimator.Predict(sample)
	}
	req := &request{
		sample:   sample,
		arrived:  now,
		deadline: now.Add(time.Duration(float64(deadline) * s.scale)),
		score:    score,
		done:     make(chan Result, 1),
	}
	select {
	case s.events <- event{kind: evSubmit, req: req}:
	case <-s.ctx.Done():
		s.resolve(req, Result{Missed: true})
		return req.done
	}
	// A timer turns the deadline into an event so the coordinator can
	// resolve never-scheduled requests.
	time.AfterFunc(time.Until(req.deadline), func() {
		select {
		case s.events <- event{kind: evDeadline, req: req}:
		default:
		}
	})
	return req.done
}

// worker executes tasks for model k serially, sleeping for the scaled
// latency, then reports completion.
func (s *Server) worker(ctx context.Context, k int) {
	m := s.cfg.Ensemble.Models[k]
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-s.taskCh[k]:
			s.srcMu.Lock()
			lat := m.SampleLatency(s.src)
			s.srcMu.Unlock()
			timer := time.NewTimer(time.Duration(float64(lat) * s.scale))
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
			out := m.Predict(t.req.sample)
			t.req.mu.Lock()
			t.req.outs[k] = out
			t.req.remaining--
			finished := t.req.remaining == 0
			t.req.mu.Unlock()
			if finished {
				select {
				case s.events <- event{kind: evTaskDone, req: t.req, k: k}:
				case <-ctx.Done():
					return
				}
			}
		}
	}
}

// coordinate owns the buffer and the scheduler.
func (s *Server) coordinate(ctx context.Context) {
	var buffer []*request
	m := s.cfg.Ensemble.M()
	exec := make([]time.Duration, m)
	for k, md := range s.cfg.Ensemble.Models {
		// Plan with 10% headroom so latency jitter does not turn
		// feasible-looking plans into deadline misses.
		exec[k] = time.Duration(float64(md.MeanLatency()) * 1.1)
	}
	// busyUntil approximates, in unscaled virtual time since start, when
	// each model drains its queue.
	busyUntil := make([]time.Duration, m)
	// inflight tracks committed-but-unfinished requests so shutdown can
	// resolve them.
	inflight := make(map[*request]bool)

	now := func() time.Duration {
		return time.Duration(float64(time.Since(s.start)) / s.scale)
	}

	dispatch := func() {
		if len(buffer) == 0 {
			return
		}
		t := now()
		infos := make([]core.QueryInfo, len(buffer))
		for i, r := range buffer {
			infos[i] = core.QueryInfo{
				ID:       i,
				Arrival:  time.Duration(float64(r.arrived.Sub(s.start)) / s.scale),
				Deadline: time.Duration(float64(r.deadline.Sub(s.start)) / s.scale),
				Score:    r.score,
			}
		}
		plan := s.cfg.Scheduler.Schedule(t, infos, busyUntil, exec, s.cfg.Rewarder)
		var kept []*request
		for i, r := range buffer {
			sub := plan.Subset(i)
			if sub == ensemble.Empty {
				kept = append(kept, r)
				continue
			}
			// Commit only when at least one chosen model is free.
			free := false
			for _, k := range sub.Models() {
				if busyUntil[k] <= t {
					free = true
					break
				}
			}
			if !free {
				kept = append(kept, r)
				continue
			}
			r.mu.Lock()
			r.subset = sub
			r.remaining = sub.Size()
			r.outs = make([]model.Output, m)
			r.mu.Unlock()
			inflight[r] = true
			for _, k := range sub.Models() {
				start := busyUntil[k]
				if start < t {
					start = t
				}
				busyUntil[k] = start + exec[k]
				select {
				case s.taskCh[k] <- &task{req: r, k: k}:
				default:
					// Queue overflow: treat as missed.
					s.resolve(r, Result{Missed: true})
				}
			}
		}
		buffer = kept
	}

	for {
		select {
		case <-ctx.Done():
			for _, r := range buffer {
				s.resolve(r, Result{Missed: true})
			}
			for r := range inflight {
				s.resolve(r, Result{Missed: true})
			}
			// Drain events that raced with shutdown so their requests
			// still resolve.
			for {
				select {
				case e := <-s.events:
					if e.kind == evSubmit {
						s.resolve(e.req, Result{Missed: true})
					}
				default:
					return
				}
			}
		case e := <-s.events:
			switch e.kind {
			case evSubmit:
				buffer = append(buffer, e.req)
			case evTaskDone:
				r := e.req
				delete(inflight, r)
				r.mu.Lock()
				outs, sub := r.outs, r.subset
				r.mu.Unlock()
				out := s.cfg.Ensemble.Predict(outs, sub)
				late := time.Now().After(r.deadline)
				s.resolve(r, Result{
					Output:  out,
					Subset:  sub,
					Missed:  late,
					Latency: time.Duration(float64(time.Since(r.arrived)) / s.scale),
				})
			case evDeadline:
				r := e.req
				r.mu.Lock()
				started := r.subset != ensemble.Empty
				r.mu.Unlock()
				if !started {
					// Never scheduled: drop from the buffer and miss.
					for i, b := range buffer {
						if b == r {
							buffer = append(buffer[:i], buffer[i+1:]...)
							break
						}
					}
					s.resolve(r, Result{Missed: true})
				}
			}
			dispatch()
		}
	}
}

// resolve delivers a result exactly once.
func (s *Server) resolve(r *request, res Result) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.resolved {
		return
	}
	r.resolved = true
	r.done <- res
}
