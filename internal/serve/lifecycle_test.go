package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/testutil"
)

// assertNoSecondResult fails the test if a resolved request's channel
// holds a second value — which would mean the exactly-once guarantee
// broke.
func assertNoSecondResult(t *testing.T, i int, ch <-chan Result) {
	t.Helper()
	select {
	case r := <-ch:
		t.Fatalf("request %d resolved twice (second result: %+v)", i, r)
	default:
	}
}

// TestServeStressExactlyOnce hammers the server with concurrent Submits
// while Stop races mid-flight, and asserts every done channel receives
// exactly one Result. Run with -race to exercise the lifecycle
// synchronization.
func TestServeStressExactlyOnce(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	s.Start(context.Background())

	const (
		submitters = 8
		perSub     = 15
	)
	chans := make(chan (<-chan Result), submitters*perSub)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				idx := (w*perSub + i) % len(a.Serve)
				chans <- s.Submit(a.Serve[idx], 200*time.Millisecond)
			}
		}()
	}
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		// Let some work commit first; on timeout stop anyway — the
		// assertions below hold for any commit/stop interleaving.
		testutil.Wait(time.Second, func() bool {
			st := s.Stats()
			return st.InFlight > 0 || st.Resolved > 0
		})
		s.Stop()
	}()
	wg.Wait()
	<-stopped
	close(chans)

	var results []<-chan Result
	i := 0
	for ch := range chans {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
		results = append(results, ch)
		i++
	}
	// Give late deadline timers time to fire, then confirm nothing
	// double-delivered.
	//schemble:sleep-ok negative check: waits for a double-delivery that must NOT happen, so there is no condition to poll
	time.Sleep(100 * time.Millisecond)
	for i, ch := range results {
		assertNoSecondResult(t, i, ch)
	}
	st := s.Stats()
	if st.Submitted != submitters*perSub {
		t.Errorf("Submitted = %d, want %d", st.Submitted, submitters*perSub)
	}
	if st.Resolved != st.Submitted {
		t.Errorf("Resolved = %d, want every submitted request resolved (%d)",
			st.Resolved, st.Submitted)
	}
	if st.Buffered != 0 || st.InFlight != 0 {
		t.Errorf("post-shutdown backlog: buffered=%d inflight=%d, want 0/0",
			st.Buffered, st.InFlight)
	}
}

// TestServeTinyQueueOverflow floods a QueueDepth=1 server: saturation must
// surface as explicit rejections, never as hangs or leaks, and the server
// must keep serving afterwards.
func TestServeTinyQueueOverflow(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:   a.Ensemble,
		Scheduler:  &core.DP{Delta: 0.01},
		Rewarder:   a.Profile,
		Estimator:  a.Predictor,
		TimeScale:  0.1,
		QueueDepth: 1,
		Seed:       1,
	})
	s.Start(context.Background())
	defer s.Stop()

	const n = 60
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = s.Submit(a.Serve[i%len(a.Serve)], 300*time.Millisecond)
	}
	rejected := 0
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Rejected {
				rejected++
				if !r.Missed {
					t.Errorf("request %d rejected but not missed", i)
				}
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved under overflow", i)
		}
	}
	if rejected == 0 {
		t.Error("tiny-queue burst produced no explicit rejections")
	}
	st := s.Stats()
	if st.Resolved != n {
		t.Errorf("Resolved = %d, want %d", st.Resolved, n)
	}
	if st.Rejected == 0 {
		t.Error("stats recorded no rejections")
	}
	// The runtime must remain healthy: an uncontended request afterwards
	// is served, not rejected.
	testutil.Poll(t, 5*time.Second, "burst backlog cleared", func() bool {
		st := s.Stats()
		return st.Buffered == 0 && st.InFlight == 0
	})
	select {
	case r := <-s.Submit(a.Serve[0], time.Second):
		if r.Rejected {
			t.Error("uncontended post-burst request was rejected")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-burst request never resolved")
	}
}

// TestServeDrainFinishesCommitted verifies graceful drain: committed work
// runs to completion, uncommitted work resolves as missed, new Submits are
// rejected, and Drain returns once the runtime has stopped.
func TestServeDrainFinishesCommitted(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	s.Start(context.Background())

	const n = 10
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = s.Submit(a.Serve[i], 2*time.Second)
	}
	testutil.Poll(t, 5*time.Second, "coordinator committed work", func() bool {
		st := s.Stats()
		return st.InFlight > 0 || st.Resolved > 0
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	served := 0
	for i, ch := range chans {
		select {
		case r := <-ch:
			if !r.Missed {
				served++
				if r.Subset.Size() == 0 {
					t.Errorf("request %d served without a subset", i)
				}
			}
		default:
			t.Fatalf("request %d unresolved after Drain returned", i)
		}
	}
	if served == 0 {
		t.Error("drain finished no committed work")
	}
	st := s.Stats()
	if !st.Draining {
		t.Error("Stats().Draining = false after Drain")
	}
	if st.InFlight != 0 || st.Buffered != 0 {
		t.Errorf("post-drain backlog: buffered=%d inflight=%d", st.Buffered, st.InFlight)
	}
	// Submits after drain resolve immediately as rejected.
	select {
	case r := <-s.Submit(a.Serve[0], time.Second):
		if !r.Rejected {
			t.Error("post-drain Submit not rejected")
		}
	case <-time.After(time.Second):
		t.Fatal("post-drain Submit never resolved")
	}
	s.Stop() // idempotent after Drain
}

// TestServeDrainNotStarted covers the error path.
func TestServeDrainNotStarted(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	if err := s.Drain(context.Background()); err != ErrNotStarted {
		t.Fatalf("Drain before Start = %v, want ErrNotStarted", err)
	}
}

// TestServeStatsSnapshot checks the counter identities on a quiet run.
func TestServeStatsSnapshot(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	s.Start(context.Background())
	defer s.Stop()

	const n = 5
	for i := 0; i < n; i++ {
		<-s.Submit(a.Serve[i], time.Second)
	}
	st := s.Stats()
	if st.Submitted != n || st.Resolved != n {
		t.Errorf("submitted=%d resolved=%d, want %d/%d", st.Submitted, st.Resolved, n, n)
	}
	if st.Served+st.Degraded+st.Missed+st.Rejected != st.Resolved {
		t.Errorf("counter identity broken: %+v", st)
	}
	if len(st.QueueDepth) != a.Ensemble.M() {
		t.Errorf("QueueDepth has %d entries, want %d", len(st.QueueDepth), a.Ensemble.M())
	}
	if st.Draining {
		t.Error("Draining true on a running server")
	}
}

// TestServeSubmitRacesStart exercises the Submit-vs-Start publication path
// under -race: Submit must either panic cleanly (not started) or work.
func TestServeSubmitRacesStart(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // "Submit before Start" is acceptable
		<-s.Submit(a.Serve[0], time.Second)
	}()
	s.Start(context.Background())
	wg.Wait()
	s.Stop()
}
