package serve

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"schemble/internal/adapt"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// TestServeAdaptBitIdenticalWhenOff pins the zero-config guarantee with a
// twin pair: a server with no Adapt config and one whose engine is on but
// inert (MinSamples at the uint64 ceiling pins every inflation factor at
// exactly 1; a nil Scorer keeps the calibration map at identity) must
// produce bit-identical Results request for request — the engine observes
// everything and changes nothing.
func TestServeAdaptBitIdenticalWhenOff(t *testing.T) {
	a := artifacts(t)
	plain := newServer(t, a)
	if plain.Stats().Adapt != nil {
		t.Fatal("zero-value Adapt config built an engine")
	}
	inert := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		Adapt:     adapt.Config{Enable: true, MinSamples: math.MaxUint64},
	})
	plain.Start(context.Background())
	defer plain.Stop()
	inert.Start(context.Background())
	defer inert.Stop()

	const n = 25
	for i := 0; i < n; i++ {
		rp := <-plain.Submit(a.Serve[i], time.Second)
		ri := <-inert.Submit(a.Serve[i], time.Second)
		if rp.Missed != ri.Missed {
			t.Fatalf("request %d missed diverged: plain=%v inert=%v", i, rp.Missed, ri.Missed)
		}
		if rp.Subset != ri.Subset {
			t.Fatalf("request %d subset diverged: %v vs %v",
				i, rp.Subset.Models(), ri.Subset.Models())
		}
		if !reflect.DeepEqual(rp.Output, ri.Output) {
			t.Fatalf("request %d output not bit-identical with an inert adapt engine", i)
		}
	}
	snap := inert.Stats().Adapt
	if snap == nil {
		t.Fatal("enabled engine exported no snapshot")
	}
	var samples uint64
	for k, m := range snap.Models {
		samples += m.Samples
		if m.Inflation != 1 {
			t.Errorf("model %d inflation = %v, want exactly 1 below MinSamples", k, m.Inflation)
		}
	}
	if samples == 0 {
		t.Error("inert engine observed no latencies; the twin test exercised nothing")
	}
	if snap.RecalEpochs != 0 || snap.RecalActive {
		t.Errorf("recalibration ran with a nil Scorer: epochs=%d active=%v",
			snap.RecalEpochs, snap.RecalActive)
	}
}

// adaptEquivModels is a near-deterministic zoo for the adapt-on
// equivalence test: with Jitter at 1e-12 every sampled latency truncates
// to within 1ns of the mean, so the two engines' independent latency RNG
// streams cannot push the shared adaptation state apart (sketch bucket
// counts — and therefore inflation factors — depend only on which tasks
// ran). Latencies are small so every arrival meets an idle fleet at the
// test's spacing.
func adaptEquivModels(seed uint64) []model.Model {
	cfg := []struct {
		name  string
		skill float64
		lat   time.Duration
	}{
		{"fast", 0.70, 10 * time.Millisecond},
		{"mid", 0.87, 40 * time.Millisecond},
		{"strong", 0.89, 45 * time.Millisecond},
	}
	ms := make([]model.Model, len(cfg))
	for i, c := range cfg {
		ms[i] = model.NewSynthetic(model.SyntheticConfig{
			Name: c.name, Task: dataset.Classification, Classes: 2,
			Skill: c.skill, Latency: c.lat, Jitter: 1e-12,
			OverConf: 2.0, Seed: seed + uint64(i) + 1,
		})
	}
	return ms
}

// TestSimServeEquivalenceAdapt extends the cross-engine contract to the
// online-adaptation layer: on a seeded trace whose service times step to
// 2x mid-run (a drift boundary placed in an arrival gap, so wall-clock
// jitter cannot move a task across it), both engines run the shared
// adapt.Engine — live inflation feeding the DP cost model, the drift
// detector, and one recalibration epoch — and must still commit every
// query to the same subset with the same outcome, and agree on the
// engine's full observable state: per-model sample counts, inflation
// factors, drift-event counts, and recalibration counters. Every detector
// window, drift step, and recal epoch boundary is placed mid-gap, at
// least 100ms of virtual time from any observation, so the runtime's
// pacing jitter cannot flip a window assignment the simulator made at
// exact virtual instants.
func TestSimServeEquivalenceAdapt(t *testing.T) {
	seed := uint64(55)
	ds := dataset.TextMatching(dataset.Config{N: 1200, Seed: seed})
	a := pipeline.Build(pipeline.Config{
		Dataset: ds, Models: adaptEquivModels(seed),
		PredictorEpochs: 25, Seed: seed,
	})

	const (
		spacing = 600 * time.Millisecond
		n       = 24
	)
	// Mostly roomy budgets (full ensemble stays feasible across the drift
	// step) with tight 30ms arrivals sprinkled in: pre-drift those plan
	// around exec≈11ms, post-drift inflation pushes exec toward ~25ms —
	// still feasible, still single-model, so the plan shape differs from
	// the roomy ones in both engines.
	budget := func(i int) time.Duration {
		if i%5 == 3 {
			return 30 * time.Millisecond
		}
		return 300 * time.Millisecond
	}
	tr := &trace.Trace{}
	for i := 0; i < n; i++ {
		at := time.Duration(i+1) * spacing
		tr.Arrivals = append(tr.Arrivals, trace.Arrival{
			SampleIdx: i, At: at, Deadline: at + budget(i),
		})
	}
	// Step at 6.9s: between arrival 11 (6.6s, completions by ~6.69s) and
	// arrival 12 (7.2s).
	drift := trace.StepDrift(6900*time.Millisecond, 1, 2)
	adaptCfg := adapt.Config{
		Enable:        true,
		MinSamples:    4,
		DriftWindow:   1500 * time.Millisecond, // arrival gaps hit 1.2s or 1.8s, never near 1.5s
		DriftMinCount: 2,
		LatencyBand:   0.45, // mixed windows mean 1+k/n, never within 0.05 of 1.45
		Scorer:        a.DisScorer,
		RecalEpoch:    7650 * time.Millisecond, // one refit, boundary mid-gap at 7.65s
		RecalMinPairs: 8,
		RecalBins:     8,
	}

	recs, _, simSnap := sim.RunAdapt(sim.Config{
		Ensemble:  a.Ensemble,
		Refs:      a.Refs,
		Scorer:    a.Scorer,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		Drift:     drift,
		Adapt:     adaptCfg,
		Seed:      1,
	}, tr, a.Serve)
	if simSnap == nil {
		t.Fatal("simulator returned no adapt snapshot")
	}
	if simSnap.LatencyEvents == 0 {
		t.Fatal("fixture fired no latency drift events; the drift step lost its point")
	}
	if simSnap.RecalSwaps == 0 {
		t.Fatal("fixture landed no recalibration swap; the epoch boundary lost its point")
	}

	const scale = 0.25
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: scale,
		Seed:      1,
		Adapt:     adaptCfg,
		Drift:     drift,
	})
	s.Start(context.Background())
	defer s.Stop()
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		//schemble:sleep-ok trace pacing: the equivalence contract requires each arrival (and so each detector window and recal epoch) to land in the same virtual-time gap as in the simulated trace
		time.Sleep(time.Duration(float64(spacing) * scale))
		chans[i] = s.Submit(a.Serve[i], budget(i))
	}
	for i := range chans {
		var res Result
		select {
		case res = <-chans[i]:
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d never resolved in the runtime", i)
		}
		rec := recs[i]
		if res.Subset != rec.Subset {
			t.Errorf("query %d (budget %v): runtime subset %v, simulator subset %v",
				i, budget(i), res.Subset.Models(), rec.Subset.Models())
		}
		if res.Missed != rec.Missed {
			t.Errorf("query %d (budget %v): runtime missed=%v, simulator missed=%v",
				i, budget(i), res.Missed, rec.Missed)
		}
	}

	snap := s.Stats().Adapt
	if snap == nil {
		t.Fatal("runtime exported no adapt snapshot")
	}
	if snap.LatencyEvents != simSnap.LatencyEvents || snap.ScoreEvents != simSnap.ScoreEvents {
		t.Errorf("drift event counts diverged: runtime %d/%d, simulator %d/%d (latency/score)",
			snap.LatencyEvents, snap.ScoreEvents, simSnap.LatencyEvents, simSnap.ScoreEvents)
	}
	if snap.RecalEpochs != simSnap.RecalEpochs || snap.RecalSwaps != simSnap.RecalSwaps ||
		snap.RecalPairs != simSnap.RecalPairs {
		t.Errorf("recal counters diverged: runtime %d/%d/%d, simulator %d/%d/%d (epochs/swaps/pairs)",
			snap.RecalEpochs, snap.RecalSwaps, snap.RecalPairs,
			simSnap.RecalEpochs, simSnap.RecalSwaps, simSnap.RecalPairs)
	}
	if len(snap.Models) != len(simSnap.Models) {
		t.Fatalf("model counts diverged: %d vs %d", len(snap.Models), len(simSnap.Models))
	}
	inflated := false
	for k := range snap.Models {
		sm, im := snap.Models[k], simSnap.Models[k]
		if sm.Samples != im.Samples {
			t.Errorf("model %d sample counts diverged: runtime %d, simulator %d",
				k, sm.Samples, im.Samples)
		}
		if math.Abs(sm.Inflation-im.Inflation) > 1e-9 {
			t.Errorf("model %d inflation diverged: runtime %v, simulator %v",
				k, sm.Inflation, im.Inflation)
		}
		if sm.Inflation > 1.3 {
			inflated = true
		}
	}
	if !inflated {
		t.Error("no model's inflation tracked the 2x drift step; adaptation never engaged")
	}
}
