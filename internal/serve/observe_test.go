package serve

import (
	"context"
	"reflect"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/obsv"
)

// newObsServer builds a fault-free server with observability enabled,
// otherwise identical to newServer.
func newObsServer(t *testing.T, obs obsv.Config) *Server {
	t.Helper()
	a := artifacts(t)
	return New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		Obs:       obs,
	})
}

// TestServeObservabilityBitIdentical extends the determinism guarantee to
// the new hooks: a twin pair of seeded servers — one with observability
// off (zero-value config), one with tracing on — must produce identical
// Results request for request, because the observability path never draws
// from the runtime's RNG. Requests are submitted sequentially so subset
// selection is deterministic.
func TestServeObservabilityBitIdentical(t *testing.T) {
	a := artifacts(t)
	plain := newServer(t, a)
	if plain.Observer() != nil {
		t.Fatal("zero-value Obs config built an observer")
	}
	traced := newObsServer(t, obsv.Config{TraceBuffer: 256})
	if traced.Observer() == nil {
		t.Fatal("TraceBuffer > 0 did not build an observer")
	}
	plain.Start(context.Background())
	defer plain.Stop()
	traced.Start(context.Background())
	defer traced.Stop()

	const n = 25
	for i := 0; i < n; i++ {
		rp := <-plain.Submit(a.Serve[i], time.Second)
		rt := <-traced.Submit(a.Serve[i], time.Second)
		if rp.Missed || rt.Missed {
			// An uncontended sequential request missing would be a runtime
			// bug, not a determinism difference.
			t.Fatalf("request %d missed: plain=%v traced=%v", i, rp.Missed, rt.Missed)
		}
		if rp.Subset != rt.Subset {
			t.Fatalf("request %d subset diverged: %v vs %v",
				i, rp.Subset.Models(), rt.Subset.Models())
		}
		if !reflect.DeepEqual(rp.Output, rt.Output) {
			t.Fatalf("request %d output not bit-identical with tracing on", i)
		}
	}
	// The traced twin recorded one trace per request, outcomes matching.
	traces := traced.Observer().Last(n)
	if len(traces) != n {
		t.Fatalf("recorded %d traces, want %d", len(traces), n)
	}
	for i, tr := range traces {
		if tr.ID != uint64(i+1) {
			t.Errorf("trace %d ID = %d", i, tr.ID)
		}
		if tr.Outcome != obsv.OutcomeServed {
			t.Errorf("trace %d outcome = %q", i, tr.Outcome)
		}
	}
	snap := traced.Observer().Snapshot()
	if snap.TracesTotal != n || snap.TracesDropped != 0 {
		t.Errorf("trace counters = %d/%d", snap.TracesTotal, snap.TracesDropped)
	}
	if snap.Latency[obsv.OutcomeServed].Count != n {
		t.Errorf("served latency histogram count = %d, want %d",
			snap.Latency[obsv.OutcomeServed].Count, n)
	}
}

// TestDecisionTraceCapture checks one request's trace carries the full
// decision context: score, phase timestamps in order, the committed
// subset with ranked alternatives, and per-model runtime state.
func TestDecisionTraceCapture(t *testing.T) {
	a := artifacts(t)
	s := newObsServer(t, obsv.Config{TraceBuffer: 16})
	s.Start(context.Background())
	defer s.Stop()

	sample := a.Serve[7]
	res := <-s.Submit(sample, time.Second)
	if res.Missed {
		t.Fatal("uncontended request missed")
	}
	traces := s.Observer().Last(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	tr := traces[0]
	if tr.ID != 1 || tr.SampleID != sample.ID {
		t.Errorf("identity = id %d sample %d", tr.ID, tr.SampleID)
	}
	if want := a.Predictor.Predict(sample); tr.Score != want {
		t.Errorf("score = %v, want %v", tr.Score, want)
	}
	// Phases move strictly forward; the deadline sits one virtual second
	// past arrival.
	if !(tr.Queued <= tr.Scored && tr.Scored <= tr.Committed && tr.Committed <= tr.Resolved) {
		t.Errorf("phases out of order: queued=%v scored=%v committed=%v resolved=%v",
			tr.Queued, tr.Scored, tr.Committed, tr.Resolved)
	}
	if tr.Deadline != tr.Queued+time.Second {
		t.Errorf("deadline = %v, want queued+1s", tr.Deadline)
	}
	if tr.Latency <= 0 || tr.Latency != tr.Resolved-tr.Queued {
		t.Errorf("latency = %v (resolved-queued = %v)", tr.Latency, tr.Resolved-tr.Queued)
	}
	// Decision context: committed subset matches the result, alternatives
	// are ranked by reward, runtime state covers every model.
	if !reflect.DeepEqual(tr.Subset, res.Subset.Models()) {
		t.Errorf("trace subset %v != result subset %v", tr.Subset, res.Subset.Models())
	}
	if !reflect.DeepEqual(tr.Served, res.Subset.Models()) {
		t.Errorf("served %v != result subset %v", tr.Served, res.Subset.Models())
	}
	if len(tr.Alternatives) == 0 || len(tr.Alternatives) > maxTraceAlternatives {
		t.Fatalf("alternatives = %d", len(tr.Alternatives))
	}
	for i := 1; i < len(tr.Alternatives); i++ {
		if tr.Alternatives[i].Reward > tr.Alternatives[i-1].Reward {
			t.Errorf("alternatives not ranked: %+v", tr.Alternatives)
		}
	}
	m := a.Ensemble.M()
	if len(tr.QueueDepths) != m || len(tr.BusyUntil) != m {
		t.Errorf("runtime state sized %d/%d, want %d", len(tr.QueueDepths), len(tr.BusyUntil), m)
	}
	if len(tr.Blocked) != 0 {
		t.Errorf("fault-free run blocked models %v", tr.Blocked)
	}
	if tr.Retries != 0 || tr.Hedges != 0 || tr.Timeouts != 0 {
		t.Errorf("fault-free run recorded mitigations: %+v", tr)
	}
	if tr.Outcome != obsv.OutcomeServed {
		t.Errorf("outcome = %q", tr.Outcome)
	}
}

// TestRejectedTraceOutcome checks a shed request still produces a trace,
// labeled rejected, with no commit-phase context.
func TestRejectedTraceOutcome(t *testing.T) {
	a := artifacts(t)
	s := newObsServer(t, obsv.Config{TraceBuffer: 16})
	s.Start(context.Background())
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	res := <-s.Submit(a.Serve[0], time.Second)
	if !res.Rejected {
		t.Fatal("post-drain submit not rejected")
	}
	traces := s.Observer().Last(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces", len(traces))
	}
	tr := traces[0]
	if tr.Outcome != obsv.OutcomeRejected {
		t.Errorf("outcome = %q", tr.Outcome)
	}
	if tr.Committed != 0 || len(tr.Subset) != 0 || len(tr.Served) != 0 {
		t.Errorf("rejected trace carries commit context: %+v", tr)
	}
}

// TestTraceSinkReceivesAll wires a sink and checks every resolved request
// reaches it even with the ring disabled.
func TestTraceSinkReceivesAll(t *testing.T) {
	a := artifacts(t)
	var got []obsv.DecisionTrace
	ch := make(chan obsv.DecisionTrace, 16)
	s := newObsServer(t, obsv.Config{Sink: func(tr obsv.DecisionTrace) { ch <- tr }})
	s.Start(context.Background())
	defer s.Stop()
	const n = 5
	for i := 0; i < n; i++ {
		<-s.Submit(a.Serve[i], time.Second)
	}
	for i := 0; i < n; i++ {
		got = append(got, <-ch)
	}
	for i, tr := range got {
		if tr.ID != uint64(i+1) || tr.SampleID != a.Serve[i].ID {
			t.Errorf("sink trace %d = id %d sample %d", i, tr.ID, tr.SampleID)
		}
	}
	// Sink-only config buffers nothing.
	if traces := s.Observer().Last(10); len(traces) != 0 {
		t.Errorf("ring holds %d traces with TraceBuffer = 0", len(traces))
	}
}
