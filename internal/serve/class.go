package serve

import (
	"sync/atomic"
	"time"

	"schemble/internal/qos"
)

// Class is one request class (a tenant or priority tier); see qos.Class.
// Configure classes via Config.Classes and select one per request with
// SubmitClass (or the X-Schemble-Class header over HTTP).
type Class = qos.Class

// AdmissionConfig tunes the overload controller shared with the
// simulator; the zero value means defaults. See qos.Tuning.
type AdmissionConfig = qos.Tuning

// classCounters are one class's outcome counters, written by Submit and
// resolve and read by Stats.
type classCounters struct {
	submitted atomic.Uint64
	served    atomic.Uint64
	degraded  atomic.Uint64
	missed    atomic.Uint64
	rejected  atomic.Uint64
	// shed counts rejections decided by the admission controller (a
	// subset of rejected; the rest are saturation/drain rejections).
	shed atomic.Uint64
}

// ClassStats is one class's slice of the Stats snapshot.
type ClassStats struct {
	Name     string
	Priority int
	Weight   float64
	// Level is the class's current degradation-ladder service level:
	// "full", "capped", "greedy" or "shed".
	Level string
	// Outcome counters (Submitted = Served+Degraded+Missed+Rejected once
	// everything in flight resolves). Shed counts admission-controller
	// rejections, a subset of Rejected.
	Submitted uint64
	Served    uint64
	Degraded  uint64
	Missed    uint64
	Rejected  uint64
	Shed      uint64
	// SLOAttainment is the fraction of completed outcomes that met the
	// deadline: (Served+Degraded) / (Served+Degraded+Missed). Rejections
	// are excluded — shed load is reported as Shed/Rejected, not as SLO
	// failure. 1 when nothing has completed.
	SLOAttainment float64
}

// classStatsFrom assembles the per-class Stats slice from the admission
// controller's snapshot and the server's outcome counters.
func (s *Server) classStatsFrom(snaps []qos.ClassSnapshot) []ClassStats {
	out := make([]ClassStats, len(snaps))
	for i, snap := range snaps {
		cc := &s.classStats[i]
		cs := ClassStats{
			Name:          snap.Name,
			Priority:      snap.Priority,
			Weight:        snap.Weight,
			Level:         snap.Level.String(),
			Submitted:     cc.submitted.Load(),
			Served:        cc.served.Load(),
			Degraded:      cc.degraded.Load(),
			Missed:        cc.missed.Load(),
			Rejected:      cc.rejected.Load(),
			Shed:          cc.shed.Load(),
			SLOAttainment: 1,
		}
		if done := cs.Served + cs.Degraded + cs.Missed; done > 0 {
			cs.SLOAttainment = float64(cs.Served+cs.Degraded) / float64(done)
		}
		out[i] = cs
	}
	return out
}

// Classed reports whether the runtime was configured with request
// classes (so requests without an explicit deadline can inherit a class
// default).
func (s *Server) Classed() bool { return s.classStats != nil }

// Load returns the overload controller's smoothed pressure estimate
// (~0 idle, 1 at the target backlog, unbounded above).
func (s *Server) Load() float64 { return s.qosCtl.Load() }

// RetryAfterSeconds derives the Retry-After hint for 503 responses from
// the load estimator: roughly how many wall-clock seconds until the
// smoothed backlog drains, never less than 1. Monotone in the observed
// load, so clients back off harder the deeper the overload.
func (s *Server) RetryAfterSeconds() int {
	wall := time.Duration(float64(s.qosCtl.RetryAfter()) * s.scale)
	secs := int((wall + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}
