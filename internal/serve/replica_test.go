package serve

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/testutil"
)

// bottleneckRewarder models a profile where acceptable accuracy requires
// the heavyweight model: subsets without it earn nothing, so every served
// request must cross the slow model and throughput is capped by that
// model's replica capacity. This isolates the replica-pool effect the
// scaling test measures.
type bottleneckRewarder struct{ slow int }

func (b bottleneckRewarder) Reward(score float64, s ensemble.Subset) float64 {
	if !s.Contains(b.slow) {
		return 0
	}
	return 0.5 + 0.5*float64(s.Size())/3
}

// slowEnsemble is a three-model fleet whose third member dominates the
// latency budget — the shape where one slow model caps throughput until
// it gets replicas.
func slowEnsemble(seed uint64) *ensemble.Ensemble {
	models := []model.Model{
		model.NewSynthetic(model.SyntheticConfig{
			Name: "fast-a", Task: dataset.Classification, Classes: 2,
			Skill: 0.7, Latency: 20 * time.Millisecond, Jitter: 0.02, Seed: seed + 1,
		}),
		model.NewSynthetic(model.SyntheticConfig{
			Name: "fast-b", Task: dataset.Classification, Classes: 2,
			Skill: 0.75, Latency: 30 * time.Millisecond, Jitter: 0.02, Seed: seed + 2,
		}),
		model.NewSynthetic(model.SyntheticConfig{
			Name: "slow", Task: dataset.Classification, Classes: 2,
			Skill: 0.9, Latency: 200 * time.Millisecond, Jitter: 0.02, Seed: seed + 3,
		}),
	}
	return ensemble.New(dataset.Classification, models, &ensemble.Average{}, nil)
}

func poolSamples(n int) []*dataset.Sample {
	out := make([]*dataset.Sample, n)
	for i := range out {
		out[i] = &dataset.Sample{ID: i, Features: []float64{float64(i)}, Difficulty: 0.3}
	}
	return out
}

// TestServeReplicasSingleBitIdentical pins the compatibility guarantee of
// the replica-pool refactor: a server configured with an explicit
// one-replica pool per model and batching disabled must produce Results
// bit-identical to the zero-config server, request for request — the
// replica machinery may not perturb scheduling, RNG draws, or outputs.
func TestServeReplicasSingleBitIdentical(t *testing.T) {
	a := artifacts(t)
	plain := newServer(t, a)
	pooled := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		Replicas:  []int{1, 1, 1},
		Batching:  BatchConfig{}, // explicitly off
	})
	plain.Start(context.Background())
	defer plain.Stop()
	pooled.Start(context.Background())
	defer pooled.Stop()

	const n = 25
	for i := 0; i < n; i++ {
		rp := <-plain.Submit(a.Serve[i], time.Second)
		rr := <-pooled.Submit(a.Serve[i], time.Second)
		if rp.Missed || rr.Missed {
			t.Fatalf("request %d missed: plain=%v pooled=%v", i, rp.Missed, rr.Missed)
		}
		if rp.Subset != rr.Subset {
			t.Fatalf("request %d subset diverged: %v vs %v",
				i, rp.Subset.Models(), rr.Subset.Models())
		}
		if !reflect.DeepEqual(rp.Output, rr.Output) {
			t.Fatalf("request %d output not bit-identical under single-replica pools", i)
		}
		if rp.Degraded != rr.Degraded || rp.Rejected != rr.Rejected {
			t.Fatalf("request %d outcome flags diverged", i)
		}
	}
	st := pooled.Stats()
	for k, r := range st.Replicas {
		if r != 1 {
			t.Errorf("model %d replica count = %d, want 1", k, r)
		}
	}
	if st.BatchSizes != nil {
		t.Error("batch histogram allocated with batching disabled")
	}
}

// runBottleneckLoad drives one saturating workload against a server whose
// throughput is capped by the slow model and reports (served, missed,
// rejected, virtual elapsed).
func runBottleneckLoad(t *testing.T, replicas []int) (served, missed, rejected uint64, elapsed time.Duration) {
	t.Helper()
	const scale = 0.05
	s := New(Config{
		Ensemble:  slowEnsemble(11),
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  bottleneckRewarder{slow: 2},
		TimeScale: scale,
		Seed:      3,
		Replicas:  replicas,
	})
	s.Start(context.Background())
	defer s.Stop()

	samples := poolSamples(60)
	start := time.Now()
	chans := make([]<-chan Result, len(samples))
	for i, smp := range samples {
		chans[i] = s.Submit(smp, 500*time.Millisecond)
		// Arrival pacing at ~3x the single-replica service rate of the slow
		// model (200ms virtual -> 10ms wall at 0.05; one arrival every
		// ~3.3ms wall = 66ms virtual), so a lone slow replica saturates
		// while four keep up.
		//schemble:sleep-ok arrival pacing: the offered load must exceed single-replica capacity for the scaling measurement to mean anything
		time.Sleep(3300 * time.Microsecond)
	}
	for i, ch := range chans {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	elapsed = time.Duration(float64(time.Since(start)) / scale)
	st := s.Stats()
	return st.Served + st.Degraded, st.Missed, st.Rejected, elapsed
}

// TestServeReplicaPoolThroughput is the scaling acceptance test: giving
// the slowest model four replicas must at least double served requests
// per virtual second on an identical saturating workload, without
// worsening the deadline-miss rate.
func TestServeReplicaPoolThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement needs the full workload")
	}
	served1, missed1, rej1, elapsed1 := runBottleneckLoad(t, nil)
	served4, missed4, rej4, elapsed4 := runBottleneckLoad(t, []int{1, 1, 4})

	rate1 := float64(served1) / elapsed1.Seconds()
	rate4 := float64(served4) / elapsed4.Seconds()
	t.Logf("R=1: served=%d missed=%d rejected=%d rate=%.2f/vs", served1, missed1, rej1, rate1)
	t.Logf("R=4: served=%d missed=%d rejected=%d rate=%.2f/vs", served4, missed4, rej4, rate4)
	if served1 == 0 {
		t.Fatal("baseline served nothing; workload is miscalibrated")
	}
	if rate4 < 2*rate1 {
		t.Errorf("replica scaling: %.2f served/vs with R=4 vs %.2f with R=1, want >= 2x", rate4, rate1)
	}
	dmr := func(missed, served, rejected uint64) float64 {
		resolved := missed + served
		if resolved == 0 {
			return 0
		}
		return float64(missed) / float64(resolved)
	}
	if d4, d1 := dmr(missed4, served4, rej4), dmr(missed1, served1, rej1); d4 > d1 {
		t.Errorf("DMR rose with replicas: %.3f (R=4) vs %.3f (R=1)", d4, d1)
	}
}

// TestServeBatchingFormsBatches pins the micro-batching path end to end: a
// burst against a batching pool must execute real multi-task batches
// (visible in the batch-size histogram), still resolve every request, and
// leave the queue-depth/forming accounting at exactly zero once quiescent.
func TestServeBatchingFormsBatches(t *testing.T) {
	s := New(Config{
		Ensemble:  slowEnsemble(7),
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  bottleneckRewarder{slow: 2},
		TimeScale: 0.05,
		Seed:      5,
		Replicas:  []int{1, 1, 2},
		Batching:  BatchConfig{MaxBatch: 4, MaxLinger: 40 * time.Millisecond},
	})
	s.Start(context.Background())
	defer s.Stop()

	samples := poolSamples(40)
	chans := make([]<-chan Result, len(samples))
	for i, smp := range samples {
		chans[i] = s.Submit(smp, 2*time.Second)
	}
	served := 0
	for i, ch := range chans {
		select {
		case r := <-ch:
			if !r.Missed {
				served++
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	if served == 0 {
		t.Fatal("batching burst served nothing")
	}
	st := s.Stats()
	if st.BatchSizes == nil {
		t.Fatal("batching enabled but no batch histogram")
	}
	multi := uint64(0)
	for _, sizes := range st.BatchSizes {
		for b, c := range sizes {
			if b >= 1 { // index b counts batches of size b+1
				multi += c
			}
		}
	}
	if multi == 0 {
		t.Error("burst of 40 executed no batch larger than one task")
	}
	// Quiescent accounting: every pulled task was reported back, nothing
	// double-counted or stranded.
	testutil.Poll(t, 5*time.Second, "queues and forming gauges drain to zero", func() bool {
		st := s.Stats()
		for k := range st.QueueDepth {
			if st.QueueDepth[k] != 0 || st.Forming[k] != 0 {
				return false
			}
		}
		return true
	})
}

// TestServeDrainWaitsForFormingBatch is the drain/batch regression test:
// requests whose tasks sit inside a forming (lingering) batch are still
// committed in-flight work, so Drain must wait for the batch to execute
// and the requests to serve — not cut them off mid-linger.
func TestServeDrainWaitsForFormingBatch(t *testing.T) {
	s := New(Config{
		Ensemble:  slowEnsemble(9),
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  bottleneckRewarder{slow: 2},
		TimeScale: 0.1,
		Seed:      8,
		Replicas:  []int{1, 1, 1},
		// A long linger window relative to model latencies: the drain
		// overlaps the forming batch with high probability.
		Batching: BatchConfig{MaxBatch: 8, MaxLinger: 300 * time.Millisecond},
	})
	s.Start(context.Background())

	const n = 6
	chans := make([]<-chan Result, n)
	for i, smp := range poolSamples(n) {
		chans[i] = s.Submit(smp, 6*time.Second)
	}
	// Wait until every request is either committed (in-flight) or already
	// resolved — drain only promises to finish *committed* work, so the
	// test must not race the coordinator's buffer. With the long linger the
	// last commits sit in a forming batch when Drain lands.
	testutil.Poll(t, 5*time.Second, "all requests committed", func() bool {
		st := s.Stats()
		return st.Buffered == 0 && st.InFlight > 0 &&
			st.Resolved+uint64(st.InFlight) == uint64(n)
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Missed {
				t.Errorf("request %d missed: drain abandoned a committed batch", i)
			}
		default:
			t.Fatalf("request %d unresolved after Drain returned", i)
		}
	}
	st := s.Stats()
	for k := range st.QueueDepth {
		if st.QueueDepth[k] != 0 || st.Forming[k] != 0 {
			t.Errorf("model %d accounting dirty after drain: depth=%d forming=%d",
				k, st.QueueDepth[k], st.Forming[k])
		}
	}
}

// TestServeStopMidLingerReleasesFormingGauge pins the forming-gauge leak
// fix: a worker killed while its batch lingers (or executes) must release
// every forming count it holds, so Stats never reports ghost tasks after
// shutdown.
func TestServeStopMidLingerReleasesFormingGauge(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s := New(Config{
		Ensemble:  slowEnsemble(13),
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  bottleneckRewarder{slow: 2},
		TimeScale: 0.1,
		Seed:      2,
		Batching:  BatchConfig{MaxBatch: 8, MaxLinger: 5 * time.Second},
	})
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)

	ch := s.Submit(poolSamples(1)[0], 10*time.Second)
	// The single task is pulled into a batch that lingers far beyond the
	// test horizon waiting for companions.
	testutil.Poll(t, 5*time.Second, "task pulled into a forming batch", func() bool {
		st := s.Stats()
		for k := range st.Forming {
			if st.Forming[k] > 0 {
				return true
			}
		}
		return false
	})
	cancel()
	s.Stop()
	<-ch
	st := s.Stats()
	for k := range st.Forming {
		if st.Forming[k] != 0 {
			t.Errorf("model %d forming gauge stuck at %d after Stop", k, st.Forming[k])
		}
	}
	testutil.Wait(5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline })
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutine leak: %d running, baseline %d", g, baseline)
	}
}
