package serve

import (
	"context"
	"time"

	"schemble/internal/model"
)

// maxBatchCap bounds MaxBatch so the per-size histogram and the linger
// loop stay small; no realistic micro-batch exceeds it.
const maxBatchCap = 256

// BatchConfig opts a server's replica pools into adaptive micro-batching.
// A replica that picks a task off its model's queue keeps draining the
// queue — waiting up to MaxLinger (virtual time) for stragglers once the
// queue runs dry — until it holds MaxBatch tasks, then executes the whole
// batch as one unit whose duration follows the model's BatchCurve.
// Batching trades per-item latency for throughput; the coordinator plans
// with the amortized per-item cost Curve.Amortized(exec, MaxBatch) so the
// scheduler sees the trade-off. The zero value (MaxBatch <= 1) disables
// batching and keeps the runtime bit-identical to the single-task worker
// loop.
type BatchConfig struct {
	// MaxBatch is the largest batch one replica executes at once; <= 1
	// disables batching, values above maxBatchCap are clamped.
	MaxBatch int
	// MaxLinger is the longest a forming batch waits for more tasks once
	// the queue is empty, in virtual (unscaled) time. 0 means a batch
	// executes immediately with whatever the queue held.
	MaxLinger time.Duration
	// Curve is the batch latency curve; the zero value uses
	// model.DefaultBatchMarginal.
	Curve model.BatchCurve
	// CurvePerModel[k], when its Marginal is set, overrides Curve for
	// model k (heterogeneous batching efficiency across architectures).
	CurvePerModel []model.BatchCurve
}

// enabled reports whether batching is on after clamping.
func (b BatchConfig) enabled() bool { return b.MaxBatch > 1 }

// curve resolves model k's batch latency curve.
func (b BatchConfig) curve(k int) model.BatchCurve {
	if k < len(b.CurvePerModel) {
		//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
		if b.CurvePerModel[k].Marginal != 0 {
			return b.CurvePerModel[k]
		}
	}
	return b.Curve
}

// formBatch drains model k's queue into a micro-batch seeded with t: an
// immediate non-blocking sweep first, then a linger window (MaxLinger,
// scaled to wall time) while the batch is below capacity. Every pulled
// task is counted in the forming gauge so queue-depth accounting never
// loses (or double-counts) a task that left the channel but has not been
// reported yet. On cancellation the partial batch is returned; the caller
// notices ctx and exits, and shutdown resolves the affected requests.
func (s *Server) formBatch(ctx context.Context, k int, t *task) []*task {
	s.forming[k].Add(1)
	batch := []*task{t}
	for len(batch) < s.maxBatch {
		select {
		case t2 := <-s.taskCh[k]:
			s.forming[k].Add(1)
			batch = append(batch, t2)
			continue
		default:
		}
		break
	}
	if len(batch) >= s.maxBatch || s.cfg.Batching.MaxLinger <= 0 {
		return batch
	}
	linger := time.NewTimer(time.Duration(float64(s.cfg.Batching.MaxLinger) * s.scale))
	defer linger.Stop()
	for len(batch) < s.maxBatch {
		select {
		case t2 := <-s.taskCh[k]:
			s.forming[k].Add(1)
			batch = append(batch, t2)
		case <-linger.C:
			return batch
		case <-ctx.Done():
			return batch
		}
	}
	return batch
}

// runBatch executes one formed micro-batch on replica r of model k and
// reports every task's completion event. Tasks whose request already
// resolved are reported without executing, exactly like the single-task
// path. Returns false when the runtime context was cancelled and the
// worker must exit.
func (s *Server) runBatch(ctx context.Context, m model.Model, inj *model.Faulty, k, r int, batch []*task) bool {
	// Every batch member holds one forming count (taken in formBatch).
	// Counts are released as each completion event is sent; the deferred
	// sweep releases the rest on early exits (cancellation mid-execution
	// or mid-report), so a dying worker can never strand the gauge above
	// zero.
	reported := 0
	defer func() {
		if reported < len(batch) {
			s.forming[k].Add(int64(reported - len(batch)))
		}
	}()
	live := make([]*task, 0, len(batch))
	for _, t := range batch {
		if !t.req.isResolved() {
			live = append(live, t)
		}
	}
	// taskOK[i] is whether live[i] produced an output; taskDone[i] marks
	// the task that completed its request's last outstanding model (it
	// must be decided inside the same critical section as the remaining
	// decrement, or a sibling task on another model could observe zero
	// concurrently and two events would both claim completion).
	taskOK := make([]bool, len(live))
	taskDone := make([]bool, len(live))
	if n := len(live); n > 0 {
		rc := &s.rstats[k][r]
		rc.busy.Store(int32(n))
		vlat, ok, alive := s.executeBatch(ctx, m, inj, k, live)
		rc.busy.Store(0)
		if !alive {
			return false
		}
		s.batchHist[k][n-1].Add(1)
		s.mstats[k].executed.Add(uint64(n))
		rc.executed.Add(uint64(n))
		if ok && s.adapt != nil {
			//schemble:wallclock observation is timestamped at completion in virtual time against the Start anchor
			vnow := time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the workers launch; reads are ordered by goroutine creation
			for range live {
				s.adapt.ObserveLatency(vnow, k, r, vlat)
			}
		}
		for i, t := range live {
			out := model.Output{}
			tok := false
			if ok {
				// The batch kernel ran: materialize each task's output,
				// containing per-sample Predict panics so one bad input
				// fails only its own task.
				out, tok = s.safePredict(m, k, t.req.sample)
			}
			taskOK[i] = tok
			if !tok {
				s.mstats[k].failures.Add(1)
				rc.failures.Add(1)
			}
			t.req.mu.Lock()
			if t.req.state != stateResolved {
				t.req.remaining--
				if tok {
					t.req.outs[k] = out
					t.req.ok = t.req.ok.With(k)
				} else {
					t.req.failed++
				}
				taskDone[i] = t.req.remaining == 0
			}
			t.req.mu.Unlock()
		}
	}
	// Report every task — executed, failed, or skipped — so the
	// coordinator's backlog and breaker accounting stays truthful.
	li := 0
	for _, t := range batch {
		ran, failed, done := false, false, false
		if li < len(live) && live[li] == t {
			ran, failed, done = true, !taskOK[li], taskDone[li]
			li++
		}
		select {
		case s.events <- event{kind: evTaskDone, req: t.req, k: k, done: done, ran: ran, failed: failed}:
			s.forming[k].Add(-1)
			reported++
		case <-ctx.Done():
			return false
		}
	}
	return true
}

// executeBatch runs the batch-wide attempt chain: one latency draw
// stretched by the model's batch curve, one injected-fault decision (the
// batch is a single kernel invocation, so a transient fault or crash
// fails the whole batch and a straggler stretches it), a deadline cutoff
// at the latest live deadline, and retries with jittered backoff.
// Hedging never applies to batches — re-issuing a whole batch would
// double the fleet's work for one straggler. ok reports whether the
// kernel ran to completion; alive is false when the runtime context was
// cancelled mid-attempt.
func (s *Server) executeBatch(ctx context.Context, m model.Model, inj *model.Faulty, k int, live []*task) (vlat time.Duration, ok, alive bool) {
	c := &s.mstats[k]
	n := len(live)
	curve := s.cfg.Batching.curve(k)
	deadline := live[0].req.deadline
	for _, t := range live[1:] {
		if t.req.deadline.After(deadline) {
			deadline = t.req.deadline
		}
	}
	obsTimeout := func() {
		c.timeouts.Add(uint64(n))
		if s.obs != nil {
			for _, t := range live {
				t.req.obsTimeouts.Add(1)
			}
		}
	}
	for attempt := 0; ; attempt++ {
		s.srcMu.Lock()
		lat := m.SampleLatency(s.src)
		s.srcMu.Unlock()
		if s.cfg.Drift != nil {
			//schemble:wallclock the drift schedule is evaluated at the batch's virtual start time
			vnow := time.Duration(float64(time.Since(s.start)) / s.scale) //schemble:guardedby-ok start is written once in Start before the workers launch; reads are ordered by goroutine creation
			lat = time.Duration(float64(lat) * s.cfg.Drift(k, vnow))
		}
		lat = curve.Latency(lat, n)
		dec := model.Decision{Kind: model.FaultNone, LatencyFactor: 1}
		if inj != nil {
			//schemble:wallclock fault injection decides transient/crash windows in wall time, matching model.Faulty's schedule
			dec = inj.Attempt(time.Now(), lat)
		}
		if dec.Kind == model.FaultCrash || dec.Kind == model.FaultTransient {
			if dec.Kind == model.FaultCrash {
				c.crashes.Add(1)
			} else {
				c.transient.Add(1)
			}
			retry, alive := s.backoffUntil(ctx, deadline, attempt)
			if !alive {
				return 0, false, false
			}
			if retry {
				c.retries.Add(1)
				if s.obs != nil {
					for _, t := range live {
						t.req.obsRetries.Add(1)
					}
				}
				continue
			}
			return 0, false, true
		}
		if dec.Kind == model.FaultStraggler {
			c.stragglers.Add(1)
		}
		d := time.Duration(float64(lat) * dec.LatencyFactor * s.scale)
		primary := time.NewTimer(d)
		var cutoff *time.Timer
		var cutoffC <-chan time.Time
		stop := func() {
			primary.Stop()
			if cutoff != nil {
				cutoff.Stop()
			}
		}
		if s.tol.TaskTimeout {
			//schemble:wallclock the batch's timeout budget is the wall-clock distance to the latest live deadline
			until := time.Until(deadline)
			if until <= 0 {
				stop()
				obsTimeout()
				return 0, false, true
			}
			if until < d {
				cutoff = time.NewTimer(until)
				cutoffC = cutoff.C
			}
		}
		select {
		case <-ctx.Done():
			stop()
			return 0, false, false
		case <-primary.C:
			stop()
			// The batch's virtual service time: each member task observes
			// the full batch duration (mirrors sim's per-task events).
			return time.Duration(float64(lat) * dec.LatencyFactor), true, true
		case <-cutoffC:
			// Every live deadline has passed mid-batch: abandon the kernel
			// instead of occupying the replica past usefulness.
			stop()
			obsTimeout()
			return 0, false, true
		}
	}
}
