package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/model"
	"schemble/internal/pipeline"
)

var (
	artOnce sync.Once
	art     *pipeline.Artifacts
)

func artifacts(t *testing.T) *pipeline.Artifacts {
	t.Helper()
	artOnce.Do(func() {
		ds := dataset.TextMatching(dataset.Config{N: 1200, Seed: 55})
		art = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.TextMatchingModels(55),
			PredictorEpochs: 25, Seed: 55,
		})
	})
	return art
}

func newServer(t *testing.T, a *pipeline.Artifacts) *Server {
	t.Helper()
	return New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1, // 10x faster than "real" model latencies
		Seed:      1,
	})
}

func TestServeLightLoad(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	s.Start(context.Background())
	defer s.Stop()

	const n = 40
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = s.Submit(a.Serve[i], 600*time.Millisecond)
		//schemble:sleep-ok arrival pacing: light spacing at 10x time-scale keeps the queue shallow so most requests are servable
		time.Sleep(25 * time.Millisecond)
	}
	missed, agree := 0, 0
	for i, ch := range chans {
		select {
		case r := <-ch:
			if r.Missed {
				missed++
				continue
			}
			if mathx.ArgMax(r.Output.Probs) == mathx.ArgMax(a.Refs[a.Serve[i].ID].Probs) {
				agree++
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	if missed > n/10 {
		t.Errorf("light load missed %d/%d", missed, n)
	}
	done := n - missed
	if done > 0 && float64(agree)/float64(done) < 0.9 {
		t.Errorf("agreement %d/%d too low", agree, done)
	}
}

func TestServeOverloadSheds(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	s.Start(context.Background())
	defer s.Stop()

	// Submit a large burst at once with a tight deadline: some must miss,
	// but every request must resolve.
	const n = 120
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = s.Submit(a.Serve[i%len(a.Serve)], 150*time.Millisecond)
	}
	resolved := 0
	for i, ch := range chans {
		select {
		case <-ch:
			resolved++
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	if resolved != n {
		t.Errorf("resolved %d/%d", resolved, n)
	}
}

func TestServeStopResolvesInFlight(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)

	ch := s.Submit(a.Serve[0], 10*time.Second)
	cancel()
	s.Stop()
	select {
	case <-ch:
		// Resolved (either served before cancel or missed on shutdown).
	case <-time.After(2 * time.Second):
		t.Fatal("request not resolved on shutdown")
	}
}

func TestServeSubsetAdaptsToBurst(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.5, // gentle compression: wall overheads stay small in virtual time
		Seed:      1,
	})
	s.Start(context.Background())
	defer s.Stop()

	// Burst: mean executed subset size should drop below the full size.
	const n = 40
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = s.Submit(a.Serve[i%len(a.Serve)], 600*time.Millisecond)
	}
	var sizeSum, done int
	for _, ch := range chans {
		r := <-ch
		if !r.Missed {
			sizeSum += r.Subset.Size()
			done++
		}
	}
	if done == 0 {
		t.Fatal("nothing served")
	}
	if mean := float64(sizeSum) / float64(done); mean > 2.7 {
		t.Errorf("burst mean subset size = %v, expected shedding below full ensemble", mean)
	}
}

func TestNewValidation(t *testing.T) {
	a := artifacts(t)
	defer func() {
		if recover() == nil {
			t.Error("missing scheduler did not panic")
		}
	}()
	New(Config{Ensemble: a.Ensemble})
}

func TestEnsembleSubsetRecorded(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a)
	s.Start(context.Background())
	defer s.Stop()
	r := <-s.Submit(a.Serve[0], time.Second)
	if r.Missed {
		t.Fatal("uncontended request missed")
	}
	if r.Subset == ensemble.Empty {
		t.Error("no subset recorded")
	}
	if r.Latency <= 0 {
		t.Error("no latency recorded")
	}
}
