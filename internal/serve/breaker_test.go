package serve

import (
	"testing"
	"time"

	"schemble/internal/ensemble"
)

// TestBreakerTransitions drives the closed -> open -> half-open state
// machine directly (virtual clock, no runtime) through a full
// fail/cooldown/probe-fail/cooldown/probe-succeed cycle.
func TestBreakerTransitions(t *testing.T) {
	s := &Server{
		tol:      ToleranceConfig{BreakerThreshold: 3, BreakerCooldown: 100 * time.Millisecond},
		breakers: make([]breakerState, 2),
	}
	if got := s.breakerBlocked(0); got != ensemble.Empty {
		t.Fatalf("fresh breakers blocked %v", got)
	}
	// Two failures then a success: the consecutive counter resets.
	s.breakerRecord(0, false, 0)
	s.breakerRecord(0, false, 0)
	s.breakerRecord(0, true, 0)
	s.breakerRecord(0, false, 0)
	s.breakerRecord(0, false, 0)
	if got := s.breakerBlocked(time.Millisecond); got != ensemble.Empty {
		t.Fatalf("breaker opened below threshold: %v", got)
	}
	// Third consecutive failure opens it.
	s.breakerRecord(0, false, time.Millisecond)
	if got := s.breakerBlocked(10 * time.Millisecond); !got.Contains(0) {
		t.Fatal("breaker not open after threshold consecutive failures")
	}
	if got := s.breakerBlocked(10 * time.Millisecond); got.Contains(1) {
		t.Fatal("unrelated model blocked")
	}
	if s.breakers[0].trips != 1 {
		t.Errorf("trips = %d, want 1", s.breakers[0].trips)
	}
	// Cooldown elapses: half-open, schedulable again for a probe.
	if got := s.breakerBlocked(150 * time.Millisecond); got != ensemble.Empty {
		t.Fatal("still blocked after cooldown")
	}
	if s.breakers[0].state != breakerHalfOpen {
		t.Fatalf("state = %s, want half-open", breakerName(s.breakers[0].state))
	}
	// Probe fails: re-open, restart cooldown, count the trip.
	s.breakerRecord(0, false, 150*time.Millisecond)
	if got := s.breakerBlocked(200 * time.Millisecond); !got.Contains(0) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if s.breakers[0].trips != 2 {
		t.Errorf("trips = %d, want 2 after failed probe", s.breakers[0].trips)
	}
	// Second cooldown, successful probe: closed.
	if got := s.breakerBlocked(300 * time.Millisecond); got != ensemble.Empty {
		t.Fatal("still blocked after second cooldown")
	}
	s.breakerRecord(0, true, 300*time.Millisecond)
	if s.breakers[0].state != breakerClosed {
		t.Fatalf("state = %s after successful probe, want closed", breakerName(s.breakers[0].state))
	}
	if got := s.breakerBlocked(310 * time.Millisecond); got != ensemble.Empty {
		t.Fatalf("closed breaker blocked %v", got)
	}
}

// TestBreakerDisabled: threshold 0 records nothing and blocks nothing.
func TestBreakerDisabled(t *testing.T) {
	s := &Server{tol: ToleranceConfig{}, breakers: make([]breakerState, 1)}
	for i := 0; i < 10; i++ {
		s.breakerRecord(0, false, 0)
	}
	if got := s.breakerBlocked(time.Hour); got != ensemble.Empty {
		t.Fatalf("disabled breaker blocked %v", got)
	}
	if s.breakers[0].state != breakerClosed || s.breakers[0].consec != 0 {
		t.Errorf("disabled breaker mutated: %+v", s.breakers[0])
	}
}
