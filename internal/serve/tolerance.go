package serve

import (
	"time"

	"schemble/internal/ensemble"
)

// ToleranceConfig configures the fault-tolerant execution layer. Every
// mechanism is opt-in: the zero value disables all of them, and the
// runtime's behaviour is then bit-identical to the fault-free worker loop.
// DefaultTolerance returns a configuration with every mechanism on.
//
// All durations are in virtual (unscaled) time, like model latencies; the
// runtime applies Config.TimeScale itself.
type ToleranceConfig struct {
	// MaxRetries bounds how many times a failed attempt (transient error,
	// crash, panic) is retried before the task fails permanently. 0
	// disables retries.
	MaxRetries int
	// RetryBackoff is the base backoff before a retry; the delay doubles
	// per attempt and carries uniform jitter in [0, base). Defaults to
	// 4ms when retries are enabled.
	RetryBackoff time.Duration
	// HedgeFactor > 0 hedges straggling attempts: once an attempt is known
	// to straggle, a hedge attempt is issued after HedgeFactor × the
	// model's mean latency, and the first to finish wins. 0 disables
	// hedging.
	HedgeFactor float64
	// BreakerThreshold > 0 opens a model's circuit breaker after that many
	// consecutive task failures; the scheduler then avoids the model until
	// a half-open probe succeeds. 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before allowing a
	// half-open probe. Defaults to 200ms when the breaker is enabled.
	BreakerCooldown time.Duration
	// TaskTimeout caps each attempt at its request's deadline: an attempt
	// that cannot finish in time is abandoned and counted as a timeout
	// fault instead of occupying the worker past the point of usefulness.
	TaskTimeout bool
	// Degrade resolves a committed request at its deadline with whatever
	// subset outputs have completed (≥1), flagged Result.Degraded, instead
	// of letting it run to a late deadline miss.
	Degrade bool
}

// DefaultTolerance enables every mitigation with production defaults.
func DefaultTolerance() ToleranceConfig {
	return ToleranceConfig{
		MaxRetries:       2,
		RetryBackoff:     4 * time.Millisecond,
		HedgeFactor:      1.5,
		BreakerThreshold: 5,
		BreakerCooldown:  200 * time.Millisecond,
		TaskTimeout:      true,
		Degrade:          true,
	}
}

// withDefaults fills dependent parameters of enabled mechanisms.
func (c ToleranceConfig) withDefaults() ToleranceConfig {
	if c.MaxRetries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 4 * time.Millisecond
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 200 * time.Millisecond
	}
	return c
}

// Breaker states. A breaker is per model: closed (healthy), open (failing;
// the scheduler avoids it), half-open (probing recovery).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// breakerName renders a breaker state for health reports.
func breakerName(state int) string {
	switch state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-model circuit breaker over task outcomes. Timestamps
// are virtual durations since server start (the coordinator's clock). The
// coordinator both records outcomes and reads the blocked mask, but Stats
// snapshots race it, hence the state lives behind the Server's breakerMu.
//
// closed: outcomes tracked; BreakerThreshold consecutive failures → open.
// open: blocked from scheduling until the cooldown elapses → half-open.
// half-open: schedulable; the first recorded outcome decides — success →
// closed, failure → open again. (Several probes may be committed inside
// one half-open window; any recorded failure re-opens.)
type breakerState struct {
	state    int
	consec   int           // consecutive failures while closed
	openedAt time.Duration // virtual time the breaker last opened
	trips    uint64        // times the breaker opened
}

// record folds one task outcome into model k's breaker.
func (s *Server) breakerRecord(k int, ok bool, now time.Duration) {
	if s.tol.BreakerThreshold <= 0 {
		return
	}
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	b := &s.breakers[k]
	switch {
	case ok:
		if b.state != breakerClosed {
			b.state = breakerClosed
		}
		b.consec = 0
	case b.state == breakerClosed:
		b.consec++
		if b.consec >= s.tol.BreakerThreshold {
			b.state = breakerOpen
			b.openedAt = now
			b.trips++
		}
	default:
		// Failure while open or half-open: (re-)open and restart the
		// cooldown. A failed half-open probe counts as a fresh trip.
		if b.state == breakerHalfOpen {
			b.trips++
		}
		b.state = breakerOpen
		b.openedAt = now
		b.consec = s.tol.BreakerThreshold
	}
}

// breakerBlocked returns the mask of models the scheduler must avoid at
// virtual time now, transitioning open breakers whose cooldown elapsed to
// half-open (which unblocks them for a probe).
func (s *Server) breakerBlocked(now time.Duration) ensemble.Subset {
	if s.tol.BreakerThreshold <= 0 {
		return ensemble.Empty
	}
	s.breakerMu.Lock()
	defer s.breakerMu.Unlock()
	var blocked ensemble.Subset
	for k := range s.breakers {
		b := &s.breakers[k]
		if b.state == breakerOpen {
			if now-b.openedAt >= s.tol.BreakerCooldown {
				b.state = breakerHalfOpen
			} else {
				blocked = blocked.With(k)
			}
		}
	}
	return blocked
}
