package serve

import (
	"context"
	"reflect"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/pipeline"
	"schemble/internal/trace"
)

func testClasses() []Class {
	return []Class{
		{Name: "gold", Priority: 2, Deadline: 400 * time.Millisecond, Weight: 3},
		{Name: "silver", Priority: 1, Deadline: 400 * time.Millisecond, Weight: 2},
		{Name: "bronze", Priority: 0, Deadline: 600 * time.Millisecond, Weight: 1},
	}
}

func testClassMix() []trace.ClassMix {
	return []trace.ClassMix{
		{Name: "gold", Share: 0.2, Deadline: 400 * time.Millisecond},
		{Name: "silver", Share: 0.3, Deadline: 400 * time.Millisecond},
		{Name: "bronze", Share: 0.5, Deadline: 600 * time.Millisecond},
	}
}

func newClassedServer(t *testing.T, a *pipeline.Artifacts, scale float64) *Server {
	t.Helper()
	return New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: scale,
		Classes:   testClasses(),
		Seed:      1,
	})
}

// replayTrace submits every arrival of a classed trace at its (scaled)
// instant and waits for every outcome — exactly once per request.
func replayTrace(t *testing.T, s *Server, a *pipeline.Artifacts, tr *trace.Trace, scale float64) []Result {
	t.Helper()
	chans := make([]<-chan Result, len(tr.Arrivals))
	start := time.Now()
	for i, arr := range tr.Arrivals {
		if wait := time.Duration(float64(arr.At)*scale) - time.Since(start); wait > 0 {
			//schemble:sleep-ok trace pacing: arrivals must land at their seeded instants
			time.Sleep(wait)
		}
		chans[i] = s.SubmitClass(a.Serve[arr.SampleIdx], arr.Deadline-arr.At, arr.Class)
	}
	out := make([]Result, len(chans))
	for i, ch := range chans {
		select {
		case out[i] = <-ch:
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d never resolved (lost request)", i)
		}
	}
	return out
}

type classAgg struct{ submitted, rejected, missed, degraded, served int }

func aggregateByClass(tr *trace.Trace, res []Result) map[string]*classAgg {
	byClass := map[string]*classAgg{}
	for i, arr := range tr.Arrivals {
		cs := byClass[arr.Class]
		if cs == nil {
			cs = &classAgg{}
			byClass[arr.Class] = cs
		}
		cs.submitted++
		switch {
		case res[i].Rejected:
			cs.rejected++
		case res[i].Missed:
			cs.missed++
		case res[i].Degraded:
			cs.degraded++
		default:
			cs.served++
		}
	}
	return byClass
}

// TestServeFlashCrowdSoak is the overload-survival lock: a seeded flash
// crowd at 5x the fleet's bottleneck capacity hits the classed concurrent
// runtime. The run must (a) resolve every request exactly once — no lost
// or double-resolved requests even while shedding hard; (b) shed
// lowest-priority classes first; and (c) keep the gold class's
// deadline-miss rate within 2x of an uncrowded baseline run.
func TestServeFlashCrowdSoak(t *testing.T) {
	a := artifacts(t)
	// 5x compression (not more): the suite's packages run in parallel
	// under -race, and tighter wall-clock deadlines turn CPU contention
	// into spurious misses — at 10x the gold-DMR gate flaked once the
	// suite grew enough neighbors.
	const scale = 0.2
	const horizon = 20 * time.Second
	// Baseline: pure background at ~1x capacity (the crowd never starts
	// inside the horizon, so only background arrivals materialize).
	base := trace.FlashCrowd(trace.FlashCrowdConfig{
		BackgroundRate: 11, Classes: testClassMix(),
		CrowdStart: horizon, RampUp: time.Second, Hold: time.Second, RampDown: time.Second,
		Horizon: horizon, Samples: a.Serve, Seed: 5,
	})
	// Crowd: same background plus a bronze-labeled crowd peaking at 5x.
	crowd := trace.FlashCrowd(trace.FlashCrowdConfig{
		BackgroundRate: 11, Classes: testClassMix(), PeakFactor: 5,
		CrowdStart: 4 * time.Second, RampUp: 2 * time.Second,
		Hold: 8 * time.Second, RampDown: 2 * time.Second,
		Horizon: horizon, Samples: a.Serve, Seed: 5,
	})

	run := func(tr *trace.Trace) (map[string]*classAgg, Stats) {
		s := newClassedServer(t, a, scale)
		s.Start(context.Background())
		defer s.Stop()
		res := replayTrace(t, s, a, tr, scale)
		return aggregateByClass(tr, res), s.Stats()
	}
	baseAgg, baseStats := run(base)
	crowdAgg, crowdStats := run(crowd)

	// Exactly-once accounting on both runs: every submission resolved, and
	// the outcome taxonomy partitions them.
	for name, st := range map[string]Stats{"baseline": baseStats, "crowd": crowdStats} {
		if st.Resolved != st.Submitted {
			t.Errorf("%s: resolved %d of %d submitted", name, st.Resolved, st.Submitted)
		}
		if st.Served+st.Degraded+st.Missed+st.Rejected != st.Resolved {
			t.Errorf("%s: outcomes %d+%d+%d+%d do not partition %d resolved",
				name, st.Served, st.Degraded, st.Missed, st.Rejected, st.Resolved)
		}
		for _, cs := range st.Classes {
			if cs.Served+cs.Degraded+cs.Missed+cs.Rejected != cs.Submitted {
				t.Errorf("%s class %s: outcomes do not partition %d submitted",
					name, cs.Name, cs.Submitted)
			}
		}
	}

	shedRate := func(m map[string]*classAgg, name string) float64 {
		return float64(m[name].rejected) / float64(m[name].submitted)
	}
	dmr := func(m map[string]*classAgg, name string) float64 {
		cs := m[name]
		accepted := cs.submitted - cs.rejected
		if accepted == 0 {
			return 0
		}
		return float64(cs.missed) / float64(accepted)
	}
	// The crowd must overload the fleet enough to shed, and the shedding
	// must be priority-ordered (small tolerance absorbs arrival noise).
	if shedRate(crowdAgg, "bronze") == 0 {
		t.Error("5x flash crowd shed nothing")
	}
	if shedRate(crowdAgg, "gold") > shedRate(crowdAgg, "silver")+0.05 ||
		shedRate(crowdAgg, "silver") > shedRate(crowdAgg, "bronze")+0.05 {
		t.Errorf("shedding not priority-ordered: gold %.3f silver %.3f bronze %.3f",
			shedRate(crowdAgg, "gold"), shedRate(crowdAgg, "silver"), shedRate(crowdAgg, "bronze"))
	}
	// Top-class survival: gold's deadline-miss rate under the crowd stays
	// within 2x of the uncrowded baseline (plus a 3% absolute floor so a
	// zero-miss baseline does not demand a zero-miss crowd, and wall-clock
	// pacing noise under a loaded CI machine cannot flake the gate).
	baseDMR, crowdDMR := dmr(baseAgg, "gold"), dmr(crowdAgg, "gold")
	if crowdDMR > 2*baseDMR+0.03 {
		t.Errorf("gold miss rate %.3f under crowd vs %.3f baseline (want <= 2x + 0.03)",
			crowdDMR, baseDMR)
	}
	// The crowd run must have climbed the ladder at some point; by the end
	// (load drained) per-class levels may have recovered, but the counters
	// prove degradation engaged: bronze lost more than gold did.
	if crowdStats.Load < 0 {
		t.Error("negative load estimate")
	}
}

// TestServeClasslessAdmissionBitIdentical is the compatibility lock: with
// Classes unset, the admission controller, ladder and per-class machinery
// must be completely inert — a twin server with explicit (non-zero)
// admission tuning but no classes produces bit-identical results to the
// plain zero-config runtime, request for request.
func TestServeClasslessAdmissionBitIdentical(t *testing.T) {
	a := artifacts(t)
	plain := newServer(t, a)
	tuned := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Admission: AdmissionConfig{Capacity: 2, Target: 50 * time.Millisecond},
		Seed:      1,
	})
	plain.Start(context.Background())
	defer plain.Stop()
	tuned.Start(context.Background())
	defer tuned.Stop()

	for i := 0; i < 25; i++ {
		rp := <-plain.Submit(a.Serve[i], time.Second)
		// SubmitClass with an empty class on a classless deployment is the
		// same code path as Submit.
		rt := <-tuned.SubmitClass(a.Serve[i], time.Second, "")
		if rp.Missed || rt.Missed || rp.Rejected || rt.Rejected {
			t.Fatalf("request %d: uncontended request missed/rejected (plain %+v tuned %+v)",
				i, rp.Missed, rt.Missed)
		}
		if rp.Subset != rt.Subset {
			t.Fatalf("request %d subset diverged: %v vs %v",
				i, rp.Subset.Models(), rt.Subset.Models())
		}
		if !reflect.DeepEqual(rp.Output, rt.Output) {
			t.Fatalf("request %d output not bit-identical with admission tuning set", i)
		}
	}
	st := tuned.Stats()
	if len(st.Classes) != 0 {
		t.Errorf("classless runtime reports %d classes", len(st.Classes))
	}
	if st.Ladder != 0 || st.LadderState != "full-service" {
		t.Errorf("classless runtime climbed the ladder: rung %d (%s)", st.Ladder, st.LadderState)
	}
}

// TestServeRetryAfterIdleFloor pins the Retry-After floor: an idle
// runtime advises the minimum 1s backoff, never 0.
func TestServeRetryAfterIdleFloor(t *testing.T) {
	a := artifacts(t)
	s := newClassedServer(t, a, 0.1)
	if got := s.RetryAfterSeconds(); got != 1 {
		t.Errorf("idle RetryAfterSeconds = %d, want 1", got)
	}
	if s.Load() < 0 {
		t.Errorf("idle load = %f, want >= 0", s.Load())
	}
}
