package serve

import (
	"context"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/testutil"
)

// chaosFaults turns on all three fault modes at rates that exercise every
// mitigation without drowning the run.
func chaosFaults() model.FaultConfig {
	return model.FaultConfig{
		TransientRate:   0.08,
		StragglerRate:   0.08,
		StragglerFactor: 12,
		CrashMTBF:       2 * time.Second,
		CrashRecovery:   300 * time.Millisecond,
		Seed:            99,
	}
}

// TestChaosFaultInjectionStress is the acceptance chaos run: ≥500 requests
// through a server with transient errors, stragglers and crashes all
// enabled, under -race (see make chaos). Every request must resolve
// exactly once, none may be lost, degraded results must carry real
// outputs, and no output may ever differ from the deterministic
// aggregation of its reported subset.
func TestChaosFaultInjectionStress(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.05,
		Seed:      1,
		Faults:    chaosFaults(),
		Tolerance: DefaultTolerance(),
	})
	s.Start(context.Background())
	defer s.Stop()

	const (
		n          = 500
		submitters = 5
	)
	chans := make([]<-chan Result, n)
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < n; i += submitters {
				chans[i] = s.Submit(a.Serve[i%len(a.Serve)], time.Second)
				//schemble:sleep-ok arrival pacing: the gap shapes the workload so commits, retries, and hedges overlap in flight
				time.Sleep(6 * time.Millisecond)
			}
		}()
	}
	wg.Wait()

	var served, degraded, missed, rejected int
	for i, ch := range chans {
		select {
		case r := <-ch:
			switch {
			case r.Rejected:
				rejected++
			case r.Missed:
				missed++
			default:
				if r.Degraded {
					degraded++
				} else {
					served++
				}
				// Degraded or not, a served result must aggregate ≥1 real
				// model output, and faults must never corrupt outputs:
				// the result is bit-identical to deterministically
				// re-running the reported subset.
				if r.Subset == ensemble.Empty {
					t.Errorf("request %d served with empty subset", i)
					continue
				}
				want := a.Ensemble.PredictSubset(a.Serve[i%len(a.Serve)], r.Subset)
				if !reflect.DeepEqual(r.Output, want) {
					t.Errorf("request %d output differs from deterministic subset aggregate", i)
				}
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	// Exactly once: give late timers a beat, then check no channel holds a
	// second result.
	//schemble:sleep-ok negative check: waits for a double-delivery that must NOT happen, so there is no condition to poll
	time.Sleep(100 * time.Millisecond)
	for i, ch := range chans {
		assertNoSecondResult(t, i, ch)
	}
	st := s.Stats()
	if st.Submitted != n {
		t.Errorf("Submitted = %d, want %d", st.Submitted, n)
	}
	if st.Resolved != n {
		t.Errorf("lost requests: resolved=%d submitted=%d", st.Resolved, n)
	}
	if st.Served+st.Degraded+st.Missed+st.Rejected != st.Resolved {
		t.Errorf("counter identity broken: %+v", st)
	}
	var faults uint64
	for _, m := range st.Models {
		faults += m.Transient + m.Stragglers + m.Crashes + m.Timeouts
	}
	if faults == 0 {
		t.Error("chaos run observed no faults")
	}
	t.Logf("chaos: served=%d degraded=%d missed=%d rejected=%d faults=%d",
		served, degraded, missed, rejected, faults)
}

// TestServeNoFaultsBitIdentical pins the opt-in guarantee: with zero fault
// and tolerance configs the runtime serves outputs bit-identical to the
// deterministic fault-free prediction path, never degrades, and touches no
// fault machinery.
func TestServeNoFaultsBitIdentical(t *testing.T) {
	a := artifacts(t)
	s := newServer(t, a) // zero Faults / Tolerance
	s.Start(context.Background())
	defer s.Stop()

	for i := 0; i < 30; i++ {
		r := <-s.Submit(a.Serve[i], time.Second)
		if r.Degraded {
			t.Fatalf("request %d degraded with injection off", i)
		}
		if r.Missed {
			continue
		}
		want := a.Ensemble.PredictSubset(a.Serve[i], r.Subset)
		if !reflect.DeepEqual(r.Output, want) {
			t.Fatalf("request %d output not bit-identical to subset aggregate", i)
		}
	}
	st := s.Stats()
	if st.Degraded != 0 {
		t.Errorf("Degraded = %d with injection off", st.Degraded)
	}
	for k, m := range st.Models {
		if m.Breaker != "off" {
			t.Errorf("model %d breaker %q, want off", k, m.Breaker)
		}
		if m.Transient+m.Stragglers+m.Crashes+m.Timeouts+m.Panics+
			m.Retries+m.Hedges+m.HedgeWins+m.Failures != 0 {
			t.Errorf("model %d fault counters non-zero with injection off: %+v", k, m)
		}
	}
}

// TestServeDegradedPartialEnsemble forces one model to straggle far past
// every deadline: requests whose subset includes it must still be served —
// degraded, from the models that completed — instead of missing.
func TestServeDegradedPartialEnsemble(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		FaultsPerModel: []model.FaultConfig{
			{}, {}, {StragglerRate: 1, StragglerFactor: 100, Seed: 5},
		},
		Tolerance: ToleranceConfig{TaskTimeout: true, Degrade: true},
	})
	s.Start(context.Background())
	defer s.Stop()

	degraded := 0
	for i := 0; i < 20; i++ {
		select {
		case r := <-s.Submit(a.Serve[i], 600*time.Millisecond):
			if !r.Degraded {
				continue
			}
			degraded++
			if r.Missed {
				t.Errorf("request %d both Degraded and Missed", i)
			}
			if r.Subset == ensemble.Empty || r.Output.Probs == nil {
				t.Errorf("degraded request %d carries no real output", i)
			}
			if r.Subset.Contains(2) {
				t.Errorf("degraded request %d includes the permanently straggling model", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	if degraded == 0 {
		t.Error("no request degraded despite a permanently straggling model")
	}
}

// TestServeBreakerAvoidsFailingModel: a model that always fails must trip
// its breaker, after which scheduled subsets avoid it entirely.
func TestServeBreakerAvoidsFailingModel(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		FaultsPerModel: []model.FaultConfig{
			{TransientRate: 1, Seed: 9}, {}, {},
		},
		// Cooldown far beyond the test horizon so the breaker stays open.
		Tolerance: ToleranceConfig{BreakerThreshold: 3, BreakerCooldown: time.Hour, Degrade: true},
	})
	s.Start(context.Background())
	defer s.Stop()

	const n = 30
	for i := 0; i < n; i++ {
		select {
		case r := <-s.Submit(a.Serve[i], time.Second):
			if i >= n-10 && !r.Missed && r.Subset.Contains(0) {
				t.Errorf("request %d scheduled onto the broken model after warmup", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	st := s.Stats()
	if st.Models[0].Breaker != "open" {
		t.Errorf("model 0 breaker = %q, want open", st.Models[0].Breaker)
	}
	if st.Models[0].BreakerTrips == 0 {
		t.Error("no breaker trips recorded")
	}
	if st.Healthy() {
		t.Error("Stats.Healthy() true with an open breaker")
	}
	if st.Models[0].Transient == 0 {
		t.Error("no transient faults counted on the failing model")
	}
}

// TestServeHedgeRescuesStragglers: with every attempt straggling 50x,
// hedged re-issue must win the race and keep requests inside their
// deadlines.
func TestServeHedgeRescuesStragglers(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		Faults:    model.FaultConfig{StragglerRate: 1, StragglerFactor: 50, Seed: 3},
		Tolerance: ToleranceConfig{HedgeFactor: 1},
	})
	s.Start(context.Background())
	defer s.Stop()

	servedInTime := 0
	for i := 0; i < 10; i++ {
		select {
		case r := <-s.Submit(a.Serve[i], 2*time.Second):
			if !r.Missed {
				servedInTime++
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never resolved", i)
		}
	}
	if servedInTime < 8 {
		t.Errorf("only %d/10 served in time with hedging on", servedInTime)
	}
	st := s.Stats()
	var hedges, wins uint64
	for _, m := range st.Models {
		hedges += m.Hedges
		wins += m.HedgeWins
	}
	if hedges == 0 || wins == 0 {
		t.Errorf("hedging not exercised: hedges=%d wins=%d", hedges, wins)
	}
}

// panicModel always panics in Predict: the satellite bugfix regression —
// a panicking model must fail its task, not its worker.
type panicModel struct{ model.Model }

func (panicModel) Predict(*dataset.Sample) model.Output { panic("synthetic model failure") }

// sizeRewarder prefers larger subsets (rewards stay in [0,1] for the DP's
// quantization), so the broken model keeps being chosen.
type sizeRewarder struct{}

func (sizeRewarder) Reward(_ float64, s ensemble.Subset) float64 {
	return float64(s.Size()) / ensemble.MaxModels
}

func TestServePanicFailsTaskNotWorker(t *testing.T) {
	a := artifacts(t)
	models := model.TextMatchingModels(55)
	models[0] = panicModel{models[0]}
	s := New(Config{
		Ensemble:  ensemble.New(dataset.Classification, models, &ensemble.Average{}, nil),
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  sizeRewarder{},
		TimeScale: 0.1,
		Seed:      1,
	})
	s.Start(context.Background())
	defer s.Stop()

	// If the panic killed the worker, its queue would strand and later
	// requests would hang until their deadlines.
	for i := 0; i < 5; i++ {
		select {
		case r := <-s.Submit(a.Serve[i], time.Second):
			if r.Rejected {
				t.Fatalf("request %d rejected", i)
			}
			if r.Subset.Contains(0) {
				t.Errorf("request %d output claims the panicking model contributed", i)
			}
			if !r.Missed && r.Output.Probs == nil {
				t.Errorf("request %d served without output", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d hung — did the panic kill the worker?", i)
		}
	}
	st := s.Stats()
	if st.Models[0].Panics == 0 {
		t.Error("panics not counted as faults")
	}
	if st.Models[0].Failures == 0 {
		t.Error("panicking tasks not recorded as failures")
	}
}

// TestServeDrainUnderFaultsNoLeaks drains while injected faults, retries
// and hedges are in flight: committed work must still resolve exactly
// once, and every runtime goroutine (workers, coordinator, timers) must be
// gone afterwards.
func TestServeDrainUnderFaultsNoLeaks(t *testing.T) {
	a := artifacts(t)
	baseline := runtime.NumGoroutine()

	// Under chaos faults an unlucky early crash can black out the whole
	// batch — every request misses before anything serves — which makes the
	// "drain finishes committed work" half of this scenario vacuous rather
	// than wrong. Retry with a fresh server and seed when that happens
	// instead of flaking; the exactly-once and lossless-resolution
	// invariants are asserted on every attempt either way.
	served := false
	for seed := uint64(2); seed < 6 && !served; seed++ {
		served = drainUnderFaultsOnce(t, a, seed)
	}
	if !served {
		t.Error("drain finished no committed work under faults on any attempt")
	}

	// All runtime goroutines (workers, coordinator, deadline timers) must
	// unwind back to the pre-Start baseline.
	testutil.Wait(5*time.Second, func() bool { return runtime.NumGoroutine() <= baseline })
	if g := runtime.NumGoroutine(); g > baseline {
		t.Errorf("goroutine leak: %d running, baseline %d", g, baseline)
	}
}

// drainUnderFaultsOnce runs one submit→drain round and reports whether any
// request was served (fully or degraded) — i.e. whether the drain had real
// committed work to finish.
func drainUnderFaultsOnce(t *testing.T, a *pipeline.Artifacts, seed uint64) bool {
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		// A laxer compression than the other chaos tests: at 0.1 the 800ms
		// virtual deadline is 80ms of wall clock, which race-detector
		// scheduling noise alone can eat, blacking out the whole batch.
		TimeScale: 0.3,
		Seed:      seed,
		Faults:    chaosFaults(),
		Tolerance: DefaultTolerance(),
	})
	s.Start(context.Background())
	defer s.Stop()

	const n = 40
	chans := make([]<-chan Result, n)
	for i := 0; i < n; i++ {
		chans[i] = s.Submit(a.Serve[i], 800*time.Millisecond)
	}
	// Wait for the first served result before draining, so the drain has
	// both finished and still-committed work to account for; a fixed sleep
	// here flaked under race-detector load when no request beat its
	// (wall-clock tiny) deadline before the drain started. Proceed on
	// timeout: the drain assertions below hold either way.
	testutil.Wait(5*time.Second, func() bool {
		st := s.Stats()
		return st.Served+st.Degraded > 0
	})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	finished := 0
	for i, ch := range chans {
		select {
		case r := <-ch:
			if !r.Missed {
				finished++
			}
		default:
			t.Fatalf("request %d unresolved after Drain returned", i)
		}
	}
	// Exactly once, even with retries/hedges racing the drain.
	//schemble:sleep-ok negative check: waits for a double-delivery that must NOT happen, so there is no condition to poll
	time.Sleep(150 * time.Millisecond)
	for i, ch := range chans {
		assertNoSecondResult(t, i, ch)
	}
	if st := s.Stats(); st.Resolved != n {
		t.Errorf("resolved %d/%d under drain", st.Resolved, n)
	}
	return finished > 0
}
