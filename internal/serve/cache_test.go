package serve

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"schemble/internal/cluster"
	"schemble/internal/core"
	"schemble/internal/obsv"
	"schemble/internal/pipeline"
	"schemble/internal/rcache"
	"schemble/internal/rng"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// testKeyer fits a small centroid keyer on the serving pool's feature
// space.
func testKeyer(t *testing.T, a *pipeline.Artifacts, k int) rcache.CentroidKeyer {
	t.Helper()
	points := make([][]float64, len(a.Serve))
	for i, s := range a.Serve {
		points[i] = s.Features
	}
	km, err := cluster.Fit(points, k, 30, rng.New(99))
	if err != nil {
		t.Fatal(err)
	}
	return rcache.CentroidKeyer{KM: km}
}

func newCacheServer(t *testing.T, a *pipeline.Artifacts, cc rcache.Config) *Server {
	t.Helper()
	return New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		Cache:     cc,
	})
}

// TestServeCacheBitIdenticalWhenOff pins the zero-config guarantee with a
// twin pair: a server with no cache configured and one whose cache is on
// but gated shut (negative difficulty threshold — every lookup is a
// bypass) must produce bit-identical Results request for request, because
// a bypass never touches planning, dispatch, or the RNG.
func TestServeCacheBitIdenticalWhenOff(t *testing.T) {
	a := artifacts(t)
	plain := newServer(t, a)
	if plain.Stats().Cache != nil {
		t.Fatal("zero-value Cache config built a cache")
	}
	gated := newCacheServer(t, a, rcache.Config{Keyer: testKeyer(t, a, 4), DifficultyMax: -1})
	plain.Start(context.Background())
	defer plain.Stop()
	gated.Start(context.Background())
	defer gated.Stop()

	const n = 25
	for i := 0; i < n; i++ {
		rp := <-plain.Submit(a.Serve[i], time.Second)
		rg := <-gated.Submit(a.Serve[i], time.Second)
		if rp.Missed || rg.Missed {
			t.Fatalf("request %d missed: plain=%v gated=%v", i, rp.Missed, rg.Missed)
		}
		if rg.Cached {
			t.Fatalf("request %d served from a fully gated cache", i)
		}
		if rp.Subset != rg.Subset {
			t.Fatalf("request %d subset diverged: %v vs %v",
				i, rp.Subset.Models(), rg.Subset.Models())
		}
		if !reflect.DeepEqual(rp.Output, rg.Output) {
			t.Fatalf("request %d output not bit-identical with the cache gated shut", i)
		}
	}
	cs := gated.Stats().Cache
	if cs == nil || cs.Bypasses != n || cs.Hits+cs.Misses+cs.Fills != 0 {
		t.Errorf("gated cache counters = %+v, want %d bypasses and nothing else", cs, n)
	}
}

// TestServeCacheHitFlow drives one miss-fill-hit cycle end to end: the
// first request for a sample runs the ensemble and fills its centroid
// entry, the second resolves from the cache with the same subset and
// output, and both the stats surface and the decision trace record the
// outcomes.
func TestServeCacheHitFlow(t *testing.T) {
	a := artifacts(t)
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: 0.1,
		Seed:      1,
		Obs:       obsv.Config{TraceBuffer: 8},
		Cache:     rcache.Config{Keyer: testKeyer(t, a, 64), DifficultyMax: 1},
	})
	s.Start(context.Background())
	defer s.Stop()

	first := <-s.Submit(a.Serve[0], time.Second)
	if first.Missed || first.Cached {
		t.Fatalf("first request: missed=%v cached=%v, want clean uncached serve",
			first.Missed, first.Cached)
	}
	second := <-s.Submit(a.Serve[0], time.Second)
	if !second.Cached || second.Missed {
		t.Fatalf("second request: missed=%v cached=%v, want a cache hit",
			second.Missed, second.Cached)
	}
	if second.Subset != first.Subset {
		t.Errorf("cached subset %v differs from computed %v",
			second.Subset.Models(), first.Subset.Models())
	}
	if !reflect.DeepEqual(second.Output, first.Output) {
		t.Error("cached output differs from the computed one")
	}

	cs := s.Stats().Cache
	if cs == nil || cs.Hits != 1 || cs.Misses != 1 || cs.Fills != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 1 miss / 1 fill", cs)
	}
	if cs != nil && cs.HitRate != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", cs.HitRate)
	}
	traces := s.Observer().Last(2)
	if len(traces) != 2 {
		t.Fatalf("recorded %d traces, want 2", len(traces))
	}
	if traces[0].Cache != obsv.CacheOutcomeMiss || traces[1].Cache != obsv.CacheOutcomeHit {
		t.Errorf("trace cache outcomes = %q, %q; want miss then hit",
			traces[0].Cache, traces[1].Cache)
	}
	if traces[1].Outcome != obsv.OutcomeServed {
		t.Errorf("hit trace outcome = %q, want served", traces[1].Outcome)
	}
}

// TestServeCacheAccountingConcurrent submits from many goroutines under
// -race: every admitted request must land in exactly one cache-outcome
// counter, and fills can never exceed misses.
func TestServeCacheAccountingConcurrent(t *testing.T) {
	a := artifacts(t)
	s := newCacheServer(t, a, rcache.Config{Keyer: testKeyer(t, a, 16), DifficultyMax: 1})
	s.Start(context.Background())
	defer s.Stop()

	const n = 48
	results := make(chan Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results <- <-s.Submit(a.Serve[i%12], 2*time.Second)
		}(i)
	}
	wg.Wait()
	close(results)
	for r := range results {
		if r.Rejected {
			t.Fatal("light concurrent load was rejected; accounting check void")
		}
	}
	cs := s.Stats().Cache
	if cs == nil {
		t.Fatal("no cache snapshot")
	}
	if got := cs.Hits + cs.Misses + cs.Bypasses; got != n {
		t.Errorf("hits+misses+bypasses = %d, want %d (exactly-once)", got, n)
	}
	if cs.Fills > cs.Misses {
		t.Errorf("fills %d > misses %d", cs.Fills, cs.Misses)
	}
}

// TestSimServeEquivalenceCached extends the cross-engine contract to the
// result cache: on a seeded Zipf repeat-query trace with deterministic
// spacing, both engines share the rcache implementation and must agree
// per query on subset, outcome, and whether the answer came from the
// cache — and on the aggregate hit/miss/bypass counters.
func TestSimServeEquivalenceCached(t *testing.T) {
	a := artifacts(t)
	keyer := testKeyer(t, a, 4)
	cacheCfg := rcache.Config{Keyer: keyer, Capacity: 64, DifficultyMax: 1}
	const spacing = 400 * time.Millisecond
	pool := a.Serve[:10]
	ztr := trace.Zipfian(trace.ZipfianConfig{
		Spacing: spacing, N: 18, Samples: pool,
		Deadline: trace.ConstantDeadline(300 * time.Millisecond), Seed: 5,
	})

	recs, snap := sim.RunStats(sim.Config{
		Ensemble:  a.Ensemble,
		Refs:      a.Refs,
		Scorer:    a.Scorer,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		Cache:     cacheCfg,
		Seed:      1,
	}, ztr, pool)
	if snap.Hits == 0 {
		t.Fatal("fixture produced no simulator cache hits; the Zipf trace lost its point")
	}

	const scale = 0.2
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: scale,
		Seed:      1,
		Cache:     cacheCfg,
	})
	s.Start(context.Background())
	defer s.Stop()
	chans := make([]<-chan Result, ztr.N())
	for i, arr := range ztr.Arrivals {
		chans[i] = s.Submit(pool[arr.SampleIdx], arr.Deadline-arr.At)
		//schemble:sleep-ok trace pacing: the equivalence contract requires each arrival to meet the same cache and fleet state as in the simulated trace
		time.Sleep(time.Duration(float64(spacing) * scale))
	}
	for i := range chans {
		var res Result
		select {
		case res = <-chans[i]:
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d never resolved in the runtime", i)
		}
		rec := recs[i]
		if res.Cached != rec.Cached {
			t.Errorf("query %d: runtime cached=%v, simulator cached=%v", i, res.Cached, rec.Cached)
		}
		if res.Subset != rec.Subset {
			t.Errorf("query %d: runtime subset %v, simulator subset %v",
				i, res.Subset.Models(), rec.Subset.Models())
		}
		if res.Missed != rec.Missed {
			t.Errorf("query %d: runtime missed=%v, simulator missed=%v", i, res.Missed, rec.Missed)
		}
	}
	cs := s.Stats().Cache
	if cs == nil {
		t.Fatal("no runtime cache snapshot")
	}
	if cs.Hits != snap.Hits || cs.Misses != snap.Misses || cs.Bypasses != snap.Bypasses {
		t.Errorf("counter divergence: runtime %d/%d/%d, simulator %d/%d/%d (hits/misses/bypasses)",
			cs.Hits, cs.Misses, cs.Bypasses, snap.Hits, snap.Misses, snap.Bypasses)
	}
}
