package serve

import (
	"context"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/qos"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// TestSimServeEquivalence cross-validates the two execution engines: the
// discrete-event simulator and the live concurrent runtime, given the
// same fitted pipeline, the same seeded trace, single replicas, no
// batching, and no faults, must commit every query to the same model
// subset and produce the same outcome (served vs missed) per query. The
// trace spaces arrivals so each query is planned against an idle fleet —
// the regime where a scheduling decision depends only on (score,
// deadline, exec), not on wall-clock jitter — and mixes deadline budgets
// that exercise full-ensemble, single-model, and infeasible plans. Budgets
// sit far from subset-feasibility boundaries (22/88/99ms at 10% headroom)
// so the runtime's microsecond-scale planning delays cannot flip a
// decision the simulator made at exact virtual instants.
func TestSimServeEquivalence(t *testing.T) {
	a := artifacts(t)
	const spacing = 400 * time.Millisecond
	budgets := []time.Duration{
		300 * time.Millisecond, 60 * time.Millisecond, 300 * time.Millisecond, 10 * time.Millisecond, 300 * time.Millisecond, 60 * time.Millisecond,
		300 * time.Millisecond, 300 * time.Millisecond, 10 * time.Millisecond, 60 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond,
	}
	tr := &trace.Trace{}
	for i, b := range budgets {
		at := time.Duration(i) * spacing
		tr.Arrivals = append(tr.Arrivals, trace.Arrival{
			SampleIdx: i, At: at, Deadline: at + b,
		})
	}

	recs := sim.Run(sim.Config{
		Ensemble:  a.Ensemble,
		Refs:      a.Refs,
		Scorer:    a.Scorer,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		Seed:      1,
	}, tr, a.Serve)

	const scale = 0.2
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: scale,
		Seed:      1,
	})
	s.Start(context.Background())
	defer s.Stop()
	chans := make([]<-chan Result, len(budgets))
	for i, b := range budgets {
		chans[i] = s.Submit(a.Serve[i], b)
		//schemble:sleep-ok trace pacing: the equivalence contract requires each arrival to meet an idle fleet, exactly as in the simulated trace
		time.Sleep(time.Duration(float64(spacing) * scale))
	}

	simMissed, serveMissed := 0, 0
	for i := range budgets {
		var res Result
		select {
		case res = <-chans[i]:
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d never resolved in the runtime", i)
		}
		rec := recs[i]
		if res.Subset != rec.Subset {
			t.Errorf("query %d (budget %v): runtime subset %v, simulator subset %v",
				i, budgets[i], res.Subset.Models(), rec.Subset.Models())
		}
		if res.Missed != rec.Missed {
			t.Errorf("query %d (budget %v): runtime missed=%v, simulator missed=%v",
				i, budgets[i], res.Missed, rec.Missed)
		}
		if rec.Missed {
			simMissed++
		}
		if res.Missed {
			serveMissed++
		}
	}
	// The trace is calibrated so the 10ms budgets (and only those) are
	// infeasible; if either engine misses anything else, the fixture has
	// drifted and the comparison above lost its meaning.
	if want := 2; simMissed != want || serveMissed != want {
		t.Errorf("missed counts: sim=%d serve=%d, want %d each (the infeasible budgets)",
			simMissed, serveMissed, want)
	}
	st := s.Stats()
	if st.Degraded != 0 || st.Rejected != 0 {
		t.Errorf("faultless equivalence run produced degraded=%d rejected=%d",
			st.Degraded, st.Rejected)
	}
}

// TestSimServeEquivalenceClassed extends the cross-engine contract to
// classed traces: both engines share the internal/qos controller, so
// given the same classes, the same spaced arrivals (far below the
// admission gate — no shedding, ladder at full service) and deadlines
// inherited from each class, they must default deadlines identically and
// commit every query to the same subset with the same outcome.
func TestSimServeEquivalenceClassed(t *testing.T) {
	a := artifacts(t)
	classes := []qos.Class{
		{Name: "slow", Priority: 2, Deadline: 300 * time.Millisecond, Weight: 2},
		{Name: "mid", Priority: 1, Deadline: 60 * time.Millisecond, Weight: 1},
		{Name: "tight", Priority: 0, Deadline: 10 * time.Millisecond, Weight: 1},
	}
	const spacing = 400 * time.Millisecond
	names := []string{
		"slow", "mid", "slow", "tight", "slow", "mid",
		"slow", "slow", "tight", "mid", "slow", "slow",
	}
	tr := &trace.Trace{}
	for i, name := range names {
		// No trace deadline: both engines must apply the class default.
		tr.Arrivals = append(tr.Arrivals, trace.Arrival{
			SampleIdx: i, At: time.Duration(i) * spacing, Class: name,
		})
	}

	recs := sim.Run(sim.Config{
		Ensemble:  a.Ensemble,
		Refs:      a.Refs,
		Scorer:    a.Scorer,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		Classes:   classes,
		Seed:      1,
	}, tr, a.Serve)

	const scale = 0.2
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: scale,
		Classes:   classes,
		Seed:      1,
	})
	s.Start(context.Background())
	defer s.Stop()
	chans := make([]<-chan Result, len(names))
	for i, name := range names {
		// Zero deadline: the runtime must fall back to the class default,
		// exactly as the simulator did.
		chans[i] = s.SubmitClass(a.Serve[i], 0, name)
		//schemble:sleep-ok trace pacing: the equivalence contract requires each arrival to meet an idle fleet, exactly as in the simulated trace
		time.Sleep(time.Duration(float64(spacing) * scale))
	}

	for i := range names {
		var res Result
		select {
		case res = <-chans[i]:
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d never resolved in the runtime", i)
		}
		rec := recs[i]
		if rec.Class != names[i] {
			t.Errorf("query %d: simulator recorded class %q, want %q", i, rec.Class, names[i])
		}
		if res.Subset != rec.Subset {
			t.Errorf("query %d (class %s): runtime subset %v, simulator subset %v",
				i, names[i], res.Subset.Models(), rec.Subset.Models())
		}
		if res.Missed != rec.Missed {
			t.Errorf("query %d (class %s): runtime missed=%v, simulator missed=%v",
				i, names[i], res.Missed, rec.Missed)
		}
		// The tight class's 10ms default is infeasible for every subset;
		// both engines must agree it misses, and only it.
		if want := names[i] == "tight"; rec.Missed != want {
			t.Errorf("query %d (class %s): simulator missed=%v, fixture expects %v",
				i, names[i], rec.Missed, want)
		}
	}
	st := s.Stats()
	if st.Rejected != 0 {
		t.Errorf("spaced classed run shed %d requests", st.Rejected)
	}
}
