package serve

import (
	"context"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/sim"
	"schemble/internal/trace"
)

// TestSimServeEquivalence cross-validates the two execution engines: the
// discrete-event simulator and the live concurrent runtime, given the
// same fitted pipeline, the same seeded trace, single replicas, no
// batching, and no faults, must commit every query to the same model
// subset and produce the same outcome (served vs missed) per query. The
// trace spaces arrivals so each query is planned against an idle fleet —
// the regime where a scheduling decision depends only on (score,
// deadline, exec), not on wall-clock jitter — and mixes deadline budgets
// that exercise full-ensemble, single-model, and infeasible plans. Budgets
// sit far from subset-feasibility boundaries (22/88/99ms at 10% headroom)
// so the runtime's microsecond-scale planning delays cannot flip a
// decision the simulator made at exact virtual instants.
func TestSimServeEquivalence(t *testing.T) {
	a := artifacts(t)
	const spacing = 400 * time.Millisecond
	budgets := []time.Duration{
		300 * time.Millisecond, 60 * time.Millisecond, 300 * time.Millisecond, 10 * time.Millisecond, 300 * time.Millisecond, 60 * time.Millisecond,
		300 * time.Millisecond, 300 * time.Millisecond, 10 * time.Millisecond, 60 * time.Millisecond, 300 * time.Millisecond, 300 * time.Millisecond,
	}
	tr := &trace.Trace{}
	for i, b := range budgets {
		at := time.Duration(i) * spacing
		tr.Arrivals = append(tr.Arrivals, trace.Arrival{
			SampleIdx: i, At: at, Deadline: at + b,
		})
	}

	recs := sim.Run(sim.Config{
		Ensemble:  a.Ensemble,
		Refs:      a.Refs,
		Scorer:    a.Scorer,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		Seed:      1,
	}, tr, a.Serve)

	const scale = 0.2
	s := New(Config{
		Ensemble:  a.Ensemble,
		Scheduler: &core.DP{Delta: 0.01},
		Rewarder:  a.Profile,
		Estimator: a.Predictor,
		TimeScale: scale,
		Seed:      1,
	})
	s.Start(context.Background())
	defer s.Stop()
	chans := make([]<-chan Result, len(budgets))
	for i, b := range budgets {
		chans[i] = s.Submit(a.Serve[i], b)
		//schemble:sleep-ok trace pacing: the equivalence contract requires each arrival to meet an idle fleet, exactly as in the simulated trace
		time.Sleep(time.Duration(float64(spacing) * scale))
	}

	simMissed, serveMissed := 0, 0
	for i := range budgets {
		var res Result
		select {
		case res = <-chans[i]:
		case <-time.After(10 * time.Second):
			t.Fatalf("query %d never resolved in the runtime", i)
		}
		rec := recs[i]
		if res.Subset != rec.Subset {
			t.Errorf("query %d (budget %v): runtime subset %v, simulator subset %v",
				i, budgets[i], res.Subset.Models(), rec.Subset.Models())
		}
		if res.Missed != rec.Missed {
			t.Errorf("query %d (budget %v): runtime missed=%v, simulator missed=%v",
				i, budgets[i], res.Missed, rec.Missed)
		}
		if rec.Missed {
			simMissed++
		}
		if res.Missed {
			serveMissed++
		}
	}
	// The trace is calibrated so the 10ms budgets (and only those) are
	// infeasible; if either engine misses anything else, the fixture has
	// drifted and the comparison above lost its meaning.
	if want := 2; simMissed != want || serveMissed != want {
		t.Errorf("missed counts: sim=%d serve=%d, want %d each (the infeasible budgets)",
			simMissed, serveMissed, want)
	}
	st := s.Stats()
	if st.Degraded != 0 || st.Rejected != 0 {
		t.Errorf("faultless equivalence run produced degraded=%d rejected=%d",
			st.Degraded, st.Rejected)
	}
}
