// Package model defines the base-model abstraction Schemble schedules over,
// plus the Synthetic implementation that stands in for real DNNs.
//
// A Synthetic model never inspects raw inputs; its behaviour on a sample is
// a deterministic function of (model identity, sample identity, latent
// difficulty), which reproduces the observable properties the paper's
// mechanisms depend on:
//
//   - heterogeneous accuracy: model skill s_k vs sample difficulty h gives
//     P(correct) = sigmoid(kappa * (s_k - h) + b);
//   - correlated errors: a shared per-sample noise term makes base models
//     agree more than independence would predict, so ensembling gains are
//     realistic and the discrepancy score carries signal;
//   - miscalibration: reported confidences are sharpened by an
//     overconfidence factor, so temperature scaling (calib) matters;
//   - heterogeneous cost: per-model constant latency plus bounded jitter,
//     and a memory footprint used by the static baseline's replica packing.
//
// Determinism matters: profiling, scheduling and serving must all observe
// the *same* output for the same (model, sample) pair, exactly as a real
// deployed network would produce. Outputs are therefore derived from a
// counter-free hash of the two identities.
package model

import (
	"fmt"
	"math"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/rng"
)

// Output is a base model's (or ensemble's) prediction for one sample.
// Exactly one group of fields is populated depending on the task.
type Output struct {
	// Probs is the class distribution (classification).
	Probs []float64
	// Value is the point estimate (regression).
	Value float64
	// Embedding is the query embedding used for ranking (retrieval).
	Embedding []float64
}

// Clone deep-copies the output.
func (o Output) Clone() Output {
	cp := Output{Value: o.Value}
	if o.Probs != nil {
		cp.Probs = append([]float64(nil), o.Probs...)
	}
	if o.Embedding != nil {
		cp.Embedding = append([]float64(nil), o.Embedding...)
	}
	return cp
}

// Model is a deployable base model.
type Model interface {
	// Name identifies the model ("bert", "yolov5", ...).
	Name() string
	// Predict returns the model's output on s. Implementations must be
	// deterministic: the same sample always yields the same output.
	Predict(s *dataset.Sample) Output
	// MeanLatency is the model's average inference time.
	MeanLatency() time.Duration
	// SampleLatency draws one inference time (mean + bounded jitter).
	SampleLatency(src *rng.Source) time.Duration
	// Memory is the deployed footprint in bytes, used for replica packing.
	Memory() int64
	// Skill is the model's intrinsic quality in [0,1].
	Skill() float64
}

// Synthetic simulates one deep model. Construct with NewSynthetic.
type Synthetic struct {
	name    string
	task    dataset.Task
	classes int
	embDim  int

	skill     float64       // intrinsic quality in [0,1]
	latency   time.Duration // mean inference time
	jitter    float64       // latency jitter fraction (e.g. 0.08)
	memory    int64         // bytes
	overConf  float64       // >1 sharpens reported probabilities (miscalibration)
	seed      uint64        // identity for deterministic outputs
	sharedRho float64       // weight of the shared per-sample noise (error correlation)
	kappa     float64       // difficulty sensitivity
	bias      float64       // base accuracy offset
	noise     float64       // regression noise scale
}

// SyntheticConfig configures NewSynthetic. Zero values get sensible
// defaults (documented inline).
type SyntheticConfig struct {
	Name     string
	Task     dataset.Task
	Classes  int     // classification; default 2
	EmbDim   int     // retrieval; default 16
	Skill    float64 // [0,1]; default 0.8
	Latency  time.Duration
	Jitter   float64 // fraction of latency; default 0.06
	MemoryMB int64   // default 500
	OverConf float64 // default 2.2 (typical DNN overconfidence)
	Seed     uint64

	// SharedRho in [0,1] controls error correlation across models on the
	// same sample (default 0.55).
	SharedRho float64
	// Kappa scales difficulty sensitivity (default 6).
	Kappa float64
	// Bias shifts base accuracy (default 1.2).
	Bias float64
	// Noise scales regression error (default 1.5).
	Noise float64
}

// NewSynthetic builds a synthetic model.
func NewSynthetic(cfg SyntheticConfig) *Synthetic {
	m := &Synthetic{
		name:      cfg.Name,
		task:      cfg.Task,
		classes:   cfg.Classes,
		embDim:    cfg.EmbDim,
		skill:     cfg.Skill,
		latency:   cfg.Latency,
		jitter:    cfg.Jitter,
		memory:    cfg.MemoryMB * 1 << 20,
		overConf:  cfg.OverConf,
		seed:      cfg.Seed,
		sharedRho: cfg.SharedRho,
		kappa:     cfg.Kappa,
		bias:      cfg.Bias,
		noise:     cfg.Noise,
	}
	if m.classes <= 0 {
		m.classes = 2
	}
	if m.embDim <= 0 {
		m.embDim = 16
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.skill == 0 {
		m.skill = 0.8
	}
	if m.latency == 0 {
		m.latency = 50 * time.Millisecond
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.jitter == 0 {
		m.jitter = 0.06
	}
	if m.memory == 0 {
		m.memory = 500 << 20
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.overConf == 0 {
		m.overConf = 2.2
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.sharedRho == 0 {
		m.sharedRho = 0.55
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.kappa == 0 {
		m.kappa = 6
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.bias == 0 {
		m.bias = 0.3
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if m.noise == 0 {
		m.noise = 1.5
	}
	return m
}

// Name implements Model.
func (m *Synthetic) Name() string { return m.name }

// Skill implements Model.
func (m *Synthetic) Skill() float64 { return m.skill }

// MeanLatency implements Model.
func (m *Synthetic) MeanLatency() time.Duration { return m.latency }

// SampleLatency implements Model: mean latency plus truncated-normal jitter
// (never less than half the mean).
func (m *Synthetic) SampleLatency(src *rng.Source) time.Duration {
	f := 1 + m.jitter*src.Normal(0, 1)
	if f < 0.5 {
		f = 0.5
	}
	return time.Duration(float64(m.latency) * f)
}

// Memory implements Model.
func (m *Synthetic) Memory() int64 { return m.memory }

// sampleSource returns the deterministic RNG for this (model, sample) pair.
func (m *Synthetic) sampleSource(s *dataset.Sample) *rng.Source {
	return rng.New(m.seed*0x9e3779b97f4a7c15 + uint64(s.ID)*0x2545f4914f6cdd1d + 0x1234)
}

// sharedSource returns the RNG shared by all models for this sample; it
// drives the correlated component of model errors.
func sharedSource(s *dataset.Sample) *rng.Source {
	return rng.New(uint64(s.ID)*0xda942042e4dd58b5 + 0x77)
}

// Predict implements Model.
func (m *Synthetic) Predict(s *dataset.Sample) Output {
	switch m.task {
	case dataset.Classification:
		return m.predictClass(s)
	case dataset.Regression:
		return m.predictValue(s)
	case dataset.Retrieval:
		return m.predictEmbedding(s)
	default:
		panic(fmt.Sprintf("model: unknown task %v", m.task))
	}
}

// predictClass draws correctness from sigmoid(kappa*(skill-h)+bias+noise)
// and emits a (miscalibrated) probability vector peaked at the predicted
// class.
func (m *Synthetic) predictClass(s *dataset.Sample) Output {
	src := m.sampleSource(s)
	shared := sharedSource(s)
	z := m.sharedRho*shared.Normal(0, 1) + (1-m.sharedRho)*src.Normal(0, 1)
	margin := m.kappa*(m.skill-s.Difficulty) + m.bias + 1.1*z
	pCorrect := mathx.Sigmoid(margin)
	correct := src.Bool(pCorrect)
	pred := s.Label
	if !correct {
		// Pick a wrong class deterministically.
		pred = src.Intn(m.classes - 1)
		if pred >= s.Label {
			pred++
		}
	}
	// Confidence grows with |margin|; miscalibrate by sharpening.
	conf := 0.5 + 0.5*mathx.Sigmoid(0.8*margin)
	conf = mathx.Clamp(conf, 1/float64(m.classes)+0.05, 0.995)
	probs := make([]float64, m.classes)
	rest := (1 - conf) / float64(m.classes-1)
	for c := range probs {
		probs[c] = rest
	}
	probs[pred] = conf
	// Sharpen: p^overConf renormalized (equivalent to T = 1/overConf).
	for c := range probs {
		probs[c] = math.Pow(probs[c], m.overConf)
	}
	mathx.Normalize(probs)
	return Output{Probs: probs}
}

// predictValue estimates the regression target with noise scaled by
// difficulty and (inverse) skill.
func (m *Synthetic) predictValue(s *dataset.Sample) Output {
	src := m.sampleSource(s)
	shared := sharedSource(s)
	z := m.sharedRho*shared.Normal(0, 1) + (1-m.sharedRho)*src.Normal(0, 1)
	scale := m.noise * (1 - 0.75*m.skill) * (0.4 + 1.8*s.Difficulty)
	v := s.Value + scale*z
	if v < 0 {
		v = 0
	}
	return Output{Value: v}
}

// predictEmbedding perturbs the true query embedding with difficulty- and
// skill-dependent noise and renormalizes.
func (m *Synthetic) predictEmbedding(s *dataset.Sample) Output {
	src := m.sampleSource(s)
	shared := sharedSource(s)
	emb := make([]float64, len(s.Embedding))
	scale := (1 - 0.8*m.skill) * (0.2 + 2.8*s.Difficulty)
	for d := range emb {
		z := m.sharedRho*shared.Normal(0, 1) + (1-m.sharedRho)*src.Normal(0, 1)
		emb[d] = s.Embedding[d] + scale*z
	}
	n := mathx.Norm2(emb)
	if n > 0 {
		for d := range emb {
			emb[d] /= n
		}
	}
	return Output{Embedding: emb}
}
