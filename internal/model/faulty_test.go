package model

import (
	"testing"
	"time"

	"schemble/internal/dataset"
)

func TestFaultyDisabledNeverFaults(t *testing.T) {
	f := NewFaulty(TextMatchingModels(1)[0], FaultConfig{})
	if (FaultConfig{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
	now := time.Now()
	for i := 0; i < 1000; i++ {
		if d := f.Attempt(now, 50*time.Millisecond); d.Kind != FaultNone || d.LatencyFactor != 1 {
			t.Fatalf("zero config injected %+v on attempt %d", d, i)
		}
	}
	if f.Down(now) {
		t.Error("zero config replica reported down")
	}
}

func TestFaultyPredictDelegates(t *testing.T) {
	base := TextMatchingModels(3)[1]
	f := NewFaulty(base, FaultConfig{TransientRate: 0.5, Seed: 11})
	s := &dataset.Sample{ID: 17, Label: 1, Difficulty: 0.4}
	a, b := f.Predict(s), base.Predict(s)
	if len(a.Probs) != len(b.Probs) {
		t.Fatalf("prob dims differ: %d vs %d", len(a.Probs), len(b.Probs))
	}
	for i := range a.Probs {
		if a.Probs[i] != b.Probs[i] {
			t.Fatalf("Faulty corrupted prediction: %v vs %v", a.Probs, b.Probs)
		}
	}
	if f.Name() != base.Name() || f.MeanLatency() != base.MeanLatency() {
		t.Error("Faulty does not delegate Model metadata")
	}
}

// TestFaultyDeterministic: two wrappers with the same seed produce the
// same fault sequence for the same attempt sequence.
func TestFaultyDeterministic(t *testing.T) {
	mk := func() *Faulty {
		return NewFaulty(TextMatchingModels(2)[1], FaultConfig{
			TransientRate: 0.3, StragglerRate: 0.2, StragglerFactor: 4,
			CrashMTBF: 500 * time.Millisecond, CrashRecovery: 40 * time.Millisecond,
			Seed: 42,
		})
	}
	a, b := mk(), mk()
	base := time.Now()
	seen := map[FaultKind]int{}
	for i := 0; i < 500; i++ {
		now := base.Add(time.Duration(i) * time.Millisecond)
		da := a.Attempt(now, 50*time.Millisecond)
		db := b.Attempt(now, 50*time.Millisecond)
		if da != db {
			t.Fatalf("attempt %d diverged: %+v vs %+v", i, da, db)
		}
		seen[da.Kind]++
	}
	for _, k := range []FaultKind{FaultNone, FaultTransient, FaultStraggler, FaultCrash} {
		if seen[k] == 0 {
			t.Errorf("fault kind %v never drawn in 500 attempts", k)
		}
	}
}

func TestFaultyCrashRecoveryWindow(t *testing.T) {
	f := NewFaulty(TextMatchingModels(4)[0], FaultConfig{
		CrashMTBF: time.Millisecond, CrashRecovery: time.Second, Seed: 7,
	})
	base := time.Now()
	var crashed time.Time
	for i := 0; i < 200; i++ {
		now := base.Add(time.Duration(i) * time.Microsecond)
		if f.Attempt(now, 50*time.Millisecond).Kind == FaultCrash {
			crashed = now
			break
		}
	}
	if crashed.IsZero() {
		t.Fatal("never crashed at clamped p=0.9")
	}
	// Attempts inside the window fail with FaultCrash without drawing.
	if k := f.Attempt(crashed.Add(500*time.Millisecond), time.Millisecond).Kind; k != FaultCrash {
		t.Errorf("attempt on dead replica = %v, want crash", k)
	}
	if !f.Down(crashed.Add(999 * time.Millisecond)) {
		t.Error("replica up inside recovery window")
	}
	if f.Down(crashed.Add(1001 * time.Millisecond)) {
		t.Error("replica still down after recovery window")
	}
}

func TestFaultyDefaults(t *testing.T) {
	f := NewFaulty(TextMatchingModels(5)[0], FaultConfig{StragglerRate: 0.1})
	cfg := f.Config()
	if cfg.StragglerFactor != 8 {
		t.Errorf("StragglerFactor default = %v, want 8", cfg.StragglerFactor)
	}
	if cfg.CrashRecovery != 2*time.Second {
		t.Errorf("CrashRecovery default = %v, want 2s", cfg.CrashRecovery)
	}
}
