package model

import (
	"time"

	"schemble/internal/dataset"
)

// The zoo mirrors the paper's three deployed ensembles. Latencies preserve
// the paper's relative magnitudes (the ensemble is bottlenecked by its
// slowest member; the lightweight model is several times faster), skills
// preserve the accuracy ordering of Fig. 1b, and memory footprints drive
// the static baseline's replica packing.

// TextMatchingModels returns the bank Q&A ensemble's base models:
// BiLSTM (fast, weakest), RoBERTa and BERT (slow, strong).
func TextMatchingModels(seed uint64) []Model {
	return []Model{
		NewSynthetic(SyntheticConfig{
			Name: "bilstm", Task: dataset.Classification, Classes: 2,
			Skill: 0.70, Latency: 20 * time.Millisecond, MemoryMB: 180,
			OverConf: 1.8, Seed: seed + 1,
		}),
		NewSynthetic(SyntheticConfig{
			Name: "roberta", Task: dataset.Classification, Classes: 2,
			Skill: 0.87, Latency: 80 * time.Millisecond, MemoryMB: 1200,
			OverConf: 2.4, Seed: seed + 2,
		}),
		NewSynthetic(SyntheticConfig{
			Name: "bert", Task: dataset.Classification, Classes: 2,
			Skill: 0.89, Latency: 90 * time.Millisecond, MemoryMB: 1100,
			OverConf: 2.6, Seed: seed + 3,
		}),
	}
}

// VehicleCountingModels returns the UA-DETRAC detector ensemble:
// YOLOv5 (fast), EfficientDet-0, YOLOX (strong).
func VehicleCountingModels(seed uint64) []Model {
	// Lower error correlation and higher noise than the classification
	// zoo: detector counts diverge substantially on cluttered frames, so
	// single detectors disagree with the ensemble often enough that
	// static selection cannot trivially match it.
	return []Model{
		NewSynthetic(SyntheticConfig{
			Name: "yolov5", Task: dataset.Regression,
			Skill: 0.78, Latency: 25 * time.Millisecond, MemoryMB: 250,
			SharedRho: 0.3, Noise: 2.2, Seed: seed + 11,
		}),
		NewSynthetic(SyntheticConfig{
			Name: "efficientdet0", Task: dataset.Regression,
			Skill: 0.84, Latency: 45 * time.Millisecond, MemoryMB: 350,
			SharedRho: 0.3, Noise: 2.2, Seed: seed + 12,
		}),
		NewSynthetic(SyntheticConfig{
			Name: "yolox", Task: dataset.Regression,
			Skill: 0.88, Latency: 55 * time.Millisecond, MemoryMB: 450,
			SharedRho: 0.3, Noise: 2.2, Seed: seed + 13,
		}),
	}
}

// ImageRetrievalModels returns the two-architecture DELG ensemble.
func ImageRetrievalModels(seed uint64, embDim int) []Model {
	return []Model{
		NewSynthetic(SyntheticConfig{
			Name: "delg-r50", Task: dataset.Retrieval, EmbDim: embDim,
			Skill: 0.76, Latency: 60 * time.Millisecond, MemoryMB: 900,
			Seed: seed + 21,
		}),
		NewSynthetic(SyntheticConfig{
			Name: "delg-r101", Task: dataset.Retrieval, EmbDim: embDim,
			Skill: 0.90, Latency: 110 * time.Millisecond, MemoryMB: 1500,
			Seed: seed + 22,
		}),
	}
}
