package model

import "time"

// DefaultBatchMarginal is the incremental cost of one extra batched item
// as a fraction of the single-item latency, used when a BatchCurve is left
// at its zero value. It matches the simulator's historical default.
const DefaultBatchMarginal = 0.15

// BatchCurve models how one replica's execution time grows with the
// micro-batch size b:
//
//	T(b) = T(1) · (1 + (b−1)·Marginal)
//
// i.e. a fixed cost (weight loads, kernel launch, pre/post-processing)
// paid once per batch plus a linear per-item term. Writing α = 1−Marginal
// this is the familiar fixed-fraction form T(b) = T(1)·(α + (1−α)·b): the
// amortized per-item cost T(b)/b falls from T(1) at b=1 toward
// Marginal·T(1) for large b, which is the throughput side of the
// latency/throughput trade-off a batching scheduler has to weigh.
type BatchCurve struct {
	// Marginal is each additional item's incremental cost as a fraction of
	// the single-item latency, in (0, 1]. 0 means DefaultBatchMarginal;
	// 1 means batching amortizes nothing.
	Marginal float64
}

// marginal resolves the zero-value default and clamps to (0, 1].
func (c BatchCurve) marginal() float64 {
	m := c.Marginal
	if m <= 0 {
		return DefaultBatchMarginal
	}
	if m > 1 {
		return 1
	}
	return m
}

// Latency is the wall time a batch of b items occupies a replica when a
// single item would take base.
func (c BatchCurve) Latency(base time.Duration, b int) time.Duration {
	if b <= 1 {
		return base
	}
	return time.Duration(float64(base) * (1 + float64(b-1)*c.marginal()))
}

// Amortized is the per-item capacity cost of running batches of b:
// Latency(base, b)/b. Schedulers planning over a batching fleet use it as
// the effective execution time of one task.
func (c BatchCurve) Amortized(base time.Duration, b int) time.Duration {
	if b <= 1 {
		return base
	}
	return time.Duration(float64(base) * (1 + float64(b-1)*c.marginal()) / float64(b))
}
