package model

import (
	"math"
	"testing"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/rng"
)

func TestPredictDeterminism(t *testing.T) {
	ds := dataset.TextMatching(dataset.Config{N: 50, Seed: 1})
	m := TextMatchingModels(7)[0]
	for _, s := range ds.Samples {
		a := m.Predict(s)
		b := m.Predict(s)
		for c := range a.Probs {
			if a.Probs[c] != b.Probs[c] {
				t.Fatal("Predict is not deterministic")
			}
		}
	}
}

func TestClassificationOutputsAreDistributions(t *testing.T) {
	ds := dataset.TextMatching(dataset.Config{N: 200, Seed: 2})
	for _, m := range TextMatchingModels(3) {
		for _, s := range ds.Samples {
			out := m.Predict(s)
			if len(out.Probs) != 2 {
				t.Fatalf("probs len = %d", len(out.Probs))
			}
			var sum float64
			for _, p := range out.Probs {
				if p < 0 || p > 1 {
					t.Fatalf("prob out of range: %v", p)
				}
				sum += p
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("probs sum to %v", sum)
			}
		}
	}
}

// accuracy measures agreement with the dataset's true labels.
func accuracy(m Model, samples []*dataset.Sample) float64 {
	correct := 0
	for _, s := range samples {
		if mathx.ArgMax(m.Predict(s).Probs) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

func TestSkillOrderingHolds(t *testing.T) {
	ds := dataset.TextMatching(dataset.Config{N: 4000, Seed: 3})
	models := TextMatchingModels(5)
	accs := make([]float64, len(models))
	for i, m := range models {
		accs[i] = accuracy(m, ds.Samples)
	}
	// bilstm < roberta <= bert, and all clearly above chance.
	if !(accs[0] < accs[1] && accs[1] <= accs[2]+0.02) {
		t.Errorf("accuracy ordering violated: %v", accs)
	}
	if accs[0] < 0.6 || accs[2] > 0.99 {
		t.Errorf("accuracies implausible: %v", accs)
	}
}

func TestHardSamplesAreHarder(t *testing.T) {
	ds := dataset.TextMatching(dataset.Config{N: 6000, Seed: 4})
	m := TextMatchingModels(5)[2]
	var easy, hard []*dataset.Sample
	for _, s := range ds.Samples {
		if s.Difficulty < 0.15 {
			easy = append(easy, s)
		} else if s.Difficulty > 0.6 {
			hard = append(hard, s)
		}
	}
	accEasy, accHard := accuracy(m, easy), accuracy(m, hard)
	if accEasy-accHard < 0.1 {
		t.Errorf("difficulty has no bite: easy=%v hard=%v", accEasy, accHard)
	}
}

func TestErrorsAreCorrelated(t *testing.T) {
	// Shared noise must make two models agree more than independent coin
	// flips of the same accuracies would.
	ds := dataset.TextMatching(dataset.Config{N: 6000, Seed: 5})
	models := TextMatchingModels(5)
	a, b := models[1], models[2]
	var accA, accB, agree float64
	for _, s := range ds.Samples {
		pa := mathx.ArgMax(a.Predict(s).Probs) == s.Label
		pb := mathx.ArgMax(b.Predict(s).Probs) == s.Label
		if pa {
			accA++
		}
		if pb {
			accB++
		}
		if pa == pb {
			agree++
		}
	}
	n := float64(len(ds.Samples))
	accA, accB, agree = accA/n, accB/n, agree/n
	independent := accA*accB + (1-accA)*(1-accB)
	if agree <= independent+0.01 {
		t.Errorf("agreement %v not above independence baseline %v", agree, independent)
	}
}

func TestRegressionModels(t *testing.T) {
	ds := dataset.VehicleCounting(dataset.Config{N: 3000, Seed: 6})
	models := VehicleCountingModels(7)
	rmse := func(m Model) float64 {
		var s float64
		for _, smp := range ds.Samples {
			d := m.Predict(smp).Value - smp.Value
			s += d * d
		}
		return math.Sqrt(s / float64(len(ds.Samples)))
	}
	errs := make([]float64, len(models))
	for i, m := range models {
		errs[i] = rmse(m)
		if errs[i] <= 0 {
			t.Fatalf("model %s has zero error — too easy", m.Name())
		}
	}
	// Higher skill => lower RMSE.
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Errorf("regression error ordering violated: %v", errs)
	}
	for _, s := range ds.Samples[:200] {
		if models[0].Predict(s).Value < 0 {
			t.Fatal("negative count prediction")
		}
	}
}

func TestRetrievalModels(t *testing.T) {
	ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
		Config: dataset.Config{N: 300, Seed: 8}, GallerySize: 200, EmbDim: 8})
	models := ImageRetrievalModels(9, 8)
	cos := func(m Model) float64 {
		var s float64
		for _, smp := range ds.Samples {
			s += mathx.CosineSim(m.Predict(smp).Embedding, smp.Embedding)
		}
		return s / float64(len(ds.Samples))
	}
	c0, c1 := cos(models[0]), cos(models[1])
	if !(c1 > c0 && c0 > 0.3) {
		t.Errorf("retrieval embedding quality ordering violated: %v vs %v", c0, c1)
	}
	for _, s := range ds.Samples[:50] {
		e := models[0].Predict(s).Embedding
		if math.Abs(mathx.Norm2(e)-1) > 1e-9 {
			t.Fatal("predicted embedding not unit norm")
		}
	}
}

func TestLatencyModel(t *testing.T) {
	m := TextMatchingModels(1)[2]
	if m.MeanLatency() != 90*time.Millisecond {
		t.Errorf("bert latency = %v", m.MeanLatency())
	}
	src := rng.New(10)
	var total time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		l := m.SampleLatency(src)
		if l < m.MeanLatency()/2 {
			t.Fatalf("latency %v below floor", l)
		}
		total += l
	}
	avg := total / n
	if avg < 85*time.Millisecond || avg > 95*time.Millisecond {
		t.Errorf("mean sampled latency = %v, want ~90ms", avg)
	}
}

func TestMemoryAndSkillAccessors(t *testing.T) {
	models := TextMatchingModels(1)
	if models[0].Memory() >= models[1].Memory() {
		t.Error("bilstm should be smaller than roberta")
	}
	if models[0].Skill() >= models[2].Skill() {
		t.Error("bilstm should have lower skill than bert")
	}
	for _, m := range models {
		if m.Name() == "" {
			t.Error("model must have a name")
		}
	}
}

func TestZooEnsembleSizes(t *testing.T) {
	if n := len(TextMatchingModels(1)); n != 3 {
		t.Errorf("text matching ensemble size = %d, want 3", n)
	}
	if n := len(VehicleCountingModels(1)); n != 3 {
		t.Errorf("vehicle counting ensemble size = %d, want 3", n)
	}
	if n := len(ImageRetrievalModels(1, 16)); n != 2 {
		t.Errorf("image retrieval ensemble size = %d, want 2", n)
	}
}
