// Faulty decorates a Model with seeded, deterministic failure modes so the
// serving layers can be exercised against an unreliable substrate without
// touching the models themselves. Three fault classes cover the failure
// taxonomy real ensemble-serving fleets see:
//
//   - transient error: the attempt fails immediately (connection reset,
//     OOM-killed batch, CUDA error) but the replica stays healthy;
//   - straggler: the attempt completes, but its latency is multiplied by a
//     heavy tail factor (noisy neighbour, GC pause, thermal throttle);
//   - crash: the replica dies and stays dead for a recovery window; every
//     attempt inside the window fails instantly.
//
// Prediction itself is never corrupted: a Faulty model that completes an
// attempt returns exactly the wrapped model's deterministic output, so
// fault injection is opt-in and orthogonal to accuracy. All draws come
// from a private seeded rng.Source, which makes the fault sequence a pure
// function of (seed, attempt order).
package model

import (
	"sync"
	"time"

	"schemble/internal/rng"
)

// FaultKind classifies the outcome drawn for one execution attempt.
type FaultKind int

const (
	// FaultNone means the attempt proceeds normally.
	FaultNone FaultKind = iota
	// FaultTransient means the attempt fails immediately; retrying may
	// succeed.
	FaultTransient
	// FaultStraggler means the attempt completes with its latency
	// multiplied by the configured tail factor.
	FaultStraggler
	// FaultCrash means the replica is dead: this attempt (and every
	// attempt until the recovery window elapses) fails instantly.
	FaultCrash
)

// String renders the fault kind for logs and health reports.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultTransient:
		return "transient"
	case FaultStraggler:
		return "straggler"
	case FaultCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// FaultConfig configures a Faulty wrapper. The zero value injects nothing.
type FaultConfig struct {
	// TransientRate is the probability an attempt fails transiently.
	TransientRate float64
	// StragglerRate is the probability an attempt straggles.
	StragglerRate float64
	// StragglerFactor multiplies a straggling attempt's latency
	// (default 8).
	StragglerFactor float64
	// CrashMTBF is the mean time between replica crashes, expressed in the
	// same time base as the latency passed to Attempt; 0 disables crashes.
	// Each attempt crashes with probability lat/CrashMTBF.
	CrashMTBF time.Duration
	// CrashRecovery is how long a crashed replica stays dead, expressed in
	// the time base of the `now` passed to Attempt (default 2s).
	CrashRecovery time.Duration
	// Seed drives the private fault stream.
	Seed uint64
}

// Enabled reports whether any fault mode is active.
func (c FaultConfig) Enabled() bool {
	return c.TransientRate > 0 || c.StragglerRate > 0 || c.CrashMTBF > 0
}

// withDefaults fills unset tail/recovery parameters.
func (c FaultConfig) withDefaults() FaultConfig {
	if c.StragglerFactor <= 1 {
		c.StragglerFactor = 8
	}
	if c.CrashRecovery <= 0 {
		c.CrashRecovery = 2 * time.Second
	}
	return c
}

// Decision is the injected fault for one execution attempt.
type Decision struct {
	Kind FaultKind
	// LatencyFactor multiplies the attempt's fault-free latency; it is 1
	// unless Kind is FaultStraggler.
	LatencyFactor float64
}

// Faulty wraps a Model with deterministic fault injection. It implements
// Model by pure delegation — Predict stays deterministic and correct — and
// exposes Attempt for execution layers that want to draw per-attempt fault
// outcomes. Safe for concurrent use.
type Faulty struct {
	Model
	cfg FaultConfig

	mu        sync.Mutex
	src       *rng.Source
	downUntil time.Time
}

// NewFaulty wraps m with the given fault configuration.
func NewFaulty(m Model, cfg FaultConfig) *Faulty {
	cfg = cfg.withDefaults()
	return &Faulty{Model: m, cfg: cfg, src: rng.New(cfg.Seed ^ 0xfa017)}
}

// Config returns the (defaulted) fault configuration.
func (f *Faulty) Config() FaultConfig { return f.cfg }

// Down reports whether the replica is inside a crash-recovery window.
func (f *Faulty) Down(now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return now.Before(f.downUntil)
}

// Attempt draws the fault outcome for one execution attempt starting at
// now whose fault-free latency would be lat. A dead replica fails with
// FaultCrash without consuming a draw, so the fault stream stays a
// deterministic function of the executed-attempt sequence.
func (f *Faulty) Attempt(now time.Time, lat time.Duration) Decision {
	f.mu.Lock()
	defer f.mu.Unlock()
	if now.Before(f.downUntil) {
		return Decision{Kind: FaultCrash, LatencyFactor: 1}
	}
	if f.cfg.CrashMTBF > 0 {
		p := float64(lat) / float64(f.cfg.CrashMTBF)
		if p > 0.9 {
			p = 0.9
		}
		if f.src.Bool(p) {
			f.downUntil = now.Add(f.cfg.CrashRecovery)
			return Decision{Kind: FaultCrash, LatencyFactor: 1}
		}
	}
	if f.cfg.TransientRate > 0 && f.src.Bool(f.cfg.TransientRate) {
		return Decision{Kind: FaultTransient, LatencyFactor: 1}
	}
	if f.cfg.StragglerRate > 0 && f.src.Bool(f.cfg.StragglerRate) {
		return Decision{Kind: FaultStraggler, LatencyFactor: f.cfg.StragglerFactor}
	}
	return Decision{Kind: FaultNone, LatencyFactor: 1}
}
