package adapt

import (
	"encoding/binary"
	"testing"
	"time"
)

// FuzzSketch drives the quantile sketch with arbitrary byte-derived
// duration streams (including negative, zero, and out-of-range values)
// and asserts its structural invariants: count bookkeeping, quantile
// monotonicity in q, quantile-in-range for any non-empty sketch, and
// exact merge algebra against an incrementally built twin. The seed
// corpus under testdata/fuzz pins the boundary shapes (empty, underflow,
// overflow, bucket edges, mixed signs); `make fuzz` extends it with a
// short randomized burst.
func FuzzSketch(f *testing.F) {
	seed := func(vals ...int64) []byte {
		b := make([]byte, 8*len(vals))
		for i, v := range vals {
			binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
		}
		return b
	}
	f.Add([]byte{})
	f.Add(seed(0))
	f.Add(seed(-1, 1))
	f.Add(seed(int64(time.Millisecond), int64(time.Second), int64(time.Minute)))
	f.Add(seed(sketchMinNS-1, sketchMinNS, sketchMinNS+1))
	f.Add(seed(1<<62, -1<<62, 49_999, 50_000))
	f.Add(seed(100_000, 122_000, 148_840, 181_584))

	f.Fuzz(func(t *testing.T, data []byte) {
		var s, a, b Sketch
		var n uint64
		for i := 0; i+8 <= len(data) && i < 8*4096; i += 8 {
			d := time.Duration(binary.LittleEndian.Uint64(data[i:]))
			s.Insert(d)
			// Split the identical stream across two sketches to merge back.
			if n%2 == 0 {
				a.Insert(d)
			} else {
				b.Insert(d)
			}
			n++
		}
		if s.Count() != n {
			t.Fatalf("Count() = %d after %d inserts", s.Count(), n)
		}
		if n == 0 {
			if got := s.Quantile(0.5); got != 0 {
				t.Fatalf("empty Quantile = %v, want 0", got)
			}
			if got := s.Mean(); got != 0 {
				t.Fatalf("empty Mean = %v, want 0", got)
			}
			return
		}
		// Quantile must be monotone in q (including out-of-range q, which
		// clamps) and always within the sketch's representable range.
		maxHi, _ := bucketBounds(sketchSlots - 1)
		prev := time.Duration(-1)
		for _, q := range []float64{-1, 0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 2} {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("Quantile(%v) = %v < previous %v: not monotone", q, got, prev)
			}
			prev = got
			if got < 0 || float64(got) > maxHi {
				t.Fatalf("Quantile(%v) = %v outside representable range [0, %v]", q, got, time.Duration(maxHi))
			}
		}
		// Merging the split streams reconstructs the reference exactly, in
		// either order.
		ab, ba := a, b
		ab.Merge(&b)
		ba.Merge(&a)
		if ab != s || ba != s {
			t.Fatal("merge of split streams does not reconstruct the reference sketch")
		}
		// Reset returns to the zero value.
		ab.Reset()
		if ab != (Sketch{}) {
			t.Fatal("Reset did not zero the sketch")
		}
	})
}
