// Package adapt is the online-adaptation layer: drift-tolerant latency
// profiles kept as mergeable quantile sketches, a windowed drift detector
// over observed-vs-profiled latency and over the difficulty-score
// distribution, and incremental recalibration of the discrepancy
// predictor from served outcomes.
//
// The package follows the engine-agnostic qos/rcache pattern: every
// method takes the caller's virtual clock, there are no goroutines, no
// timers, no wall-clock reads and no RNG (enforced by the enginepure
// analyzer), so the concurrent runtime (serve) and the event simulator
// (sim) share it verbatim and the sim<->serve equivalence tests extend
// to adaptation. Package-level state is absent by construction; all
// state lives in an Engine guarded by one mutex.
package adapt

import (
	"math"
	"time"
)

// The sketch is a fixed-size histogram over geometrically growing
// latency buckets. Merging two sketches is element-wise uint64 counter
// addition, which makes Merge exactly commutative and associative — the
// property that lets per-replica sketches fold into per-model views (and
// fleet-level views, eventually) without any ordering concerns. The
// price is a bounded relative value error: a reported quantile lies in
// the same bucket as the true order statistic of the inserted multiset,
// so it is within a factor sketchGrowth of it (for values inside the
// covered range). With growth 1.22 over 64 buckets the sketch covers
// 50µs .. ~13s — comfortably around any model service time this system
// schedules — in a few hundred bytes with zero allocation on insert,
// merge and query.
const (
	// sketchBuckets is the number of geometric buckets between the
	// underflow and overflow slots.
	sketchBuckets = 64
	// sketchSlots = underflow + buckets + overflow.
	sketchSlots = sketchBuckets + 2
	// sketchMinNS is the upper bound of the underflow bucket in
	// nanoseconds (50µs).
	sketchMinNS = 50e3
	// sketchGrowth is the per-bucket geometric growth factor; it is also
	// the sketch's relative value-error bound for in-range data.
	sketchGrowth = 1.22
)

// Sketch is a fixed-size mergeable quantile sketch over durations. The
// zero value is an empty sketch ready for use. Sketch is a plain value
// with no internal pointers, so embedding arrays of sketches costs no
// allocations; it carries no lock — the owning Engine serializes access.
type Sketch struct {
	counts [sketchSlots]uint64
	n      uint64
	// sum accumulates inserted nanoseconds with wrapping uint64
	// arithmetic (wrapping keeps Merge exactly associative even under
	// adversarial fuzz inputs; Mean is only meaningful in sane ranges).
	sum uint64
}

// bucketOf maps a duration to its slot. Negative and sub-range values
// land in the underflow slot, values past the covered range in the
// overflow slot. The mapping is monotone in d, which is what the
// quantile error-bound argument needs — exact boundary placement under
// float rounding is irrelevant.
func bucketOf(d time.Duration) int {
	v := float64(d)
	if v < sketchMinNS {
		return 0
	}
	idx := 1 + int(math.Log(v/sketchMinNS)/math.Log(sketchGrowth))
	if idx > sketchBuckets {
		return sketchBuckets + 1
	}
	return idx
}

// bucketBounds returns slot i's value range in nanoseconds. The
// underflow slot spans [0, sketchMinNS); the overflow slot is degenerate
// at the top of the covered range so overflow quantiles report the
// largest representable bound rather than inventing a value.
func bucketBounds(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return 0, sketchMinNS
	case i > sketchBuckets:
		b := sketchMinNS * math.Pow(sketchGrowth, sketchBuckets)
		return b, b
	default:
		lo = sketchMinNS * math.Pow(sketchGrowth, float64(i-1))
		return lo, lo * sketchGrowth
	}
}

// Insert adds one observation. Never allocates.
func (s *Sketch) Insert(d time.Duration) {
	s.counts[bucketOf(d)]++
	s.n++
	if d > 0 {
		s.sum += uint64(d)
	}
}

// Merge folds o into s: element-wise counter addition, so for any
// sketches a, b, c built from disjoint streams, merge order never
// changes the result (commutative and associative exactly, not just
// approximately). Never allocates.
func (s *Sketch) Merge(o *Sketch) {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
	}
	s.n += o.n
	s.sum += o.sum
}

// Count reports the number of inserted observations.
func (s *Sketch) Count() uint64 { return s.n }

// Mean reports the arithmetic mean of inserted observations (0 when
// empty). Exact up to uint64 wrap-around of the running sum.
func (s *Sketch) Mean() time.Duration {
	if s.n == 0 {
		return 0
	}
	return time.Duration(s.sum / s.n)
}

// Quantile returns an estimate of the q-quantile (rank ceil(q*n), at
// least 1) of the inserted multiset. The returned value lies in the same
// bucket as the true order statistic, linearly interpolated by rank
// position within the bucket, so it is monotone non-decreasing in q and
// within a factor sketchGrowth of the true value for in-range data.
// Returns 0 on an empty sketch. Never allocates.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.n {
		rank = s.n
	}
	var cum uint64
	for i := 0; i < sketchSlots; i++ {
		c := s.counts[i]
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(i)
			frac := float64(rank-cum) / float64(c)
			return time.Duration(lo + (hi-lo)*frac)
		}
		cum += c
	}
	// Unreachable: rank <= n and the counts sum to n.
	lo, _ := bucketBounds(sketchSlots - 1)
	return time.Duration(lo)
}

// Reset empties the sketch in place.
func (s *Sketch) Reset() {
	*s = Sketch{}
}
