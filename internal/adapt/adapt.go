package adapt

import (
	"strconv"
	"sync"
	"time"

	"schemble/internal/model"
)

// OutcomeScorer computes the true discrepancy score of a served sample
// from the full ensemble's outputs. *discrepancy.Scorer satisfies it;
// the indirection keeps adapt free of a discrepancy dependency (and the
// import graph acyclic: discrepancy trains predictors, adapt only
// recalibrates them).
type OutcomeScorer interface {
	Score(outs []model.Output, ens model.Output) float64
}

// Config configures an Engine. The zero value disables adaptation
// entirely: New returns nil and the runtimes stay bit-identical to an
// adaptation-free build (the twin-server test pins this).
type Config struct {
	// Enable turns the engine on. All other fields default sensibly.
	Enable bool

	// CostQuantile is the live latency quantile the cost model plans
	// against (default 0.9). The frozen profiling numbers are means; a
	// high quantile makes the planner pessimistic exactly when observed
	// latency spreads or shifts.
	CostQuantile float64
	// MinSamples is the per-model observation count below which
	// Inflation stays 1 (default 32): a cold sketch must not perturb
	// planning.
	MinSamples uint64
	// MaxInflation / MinInflation clamp the inflation factor (defaults
	// 8 and 0.25) so a pathological sketch can never starve or flood the
	// planner.
	MaxInflation float64
	MinInflation float64

	// DriftWindow is the detector window length in virtual time
	// (default 2s); DriftMinCount the minimum observations for a window
	// to be judged (default 8); DriftPatience the consecutive
	// out-of-band (or in-band) windows required to flip the hysteretic
	// state machine (default 2).
	DriftWindow   time.Duration
	DriftMinCount int
	DriftPatience int
	// LatencyBand is the tolerated relative deviation of the windowed
	// mean latency from the profiled mean before a window counts as
	// drifted (default 0.5, i.e. ±50%).
	LatencyBand float64
	// ScoreBand is the tolerated absolute deviation of the windowed mean
	// raw difficulty score from the baseline (default 0.15).
	ScoreBand float64
	// BaselineScore anchors the score-drift detector; 0 self-calibrates
	// from the first closed window.
	BaselineScore float64
	// EventBuffer bounds the retained drift-event ring (default 64).
	EventBuffer int

	// Scorer computes true discrepancy scores from full-ensemble
	// outcomes; nil disables recalibration (the detector and profiles
	// still run).
	Scorer OutcomeScorer
	// RecalEpoch is the virtual-time refit period (default 5s; refits
	// also require Scorer). RecalReservoir bounds the (raw, observed)
	// pair ring (default 512); RecalBins the calibration-map resolution
	// (default 16); RecalMinPairs the support needed before a refit is
	// attempted (default 64); RecalHysteresis the mean absolute knot
	// delta below which a candidate map is discarded (default 0.02).
	RecalEpoch      time.Duration
	RecalReservoir  int
	RecalBins       int
	RecalMinPairs   int
	RecalHysteresis float64
}

// Enabled reports whether the config asks for an engine.
func (c Config) Enabled() bool { return c.Enable }

// withDefaults resolves zero fields to their documented defaults.
func (c Config) withDefaults() Config {
	//schemble:floateq-ok zero-value config sentinels: fields are set verbatim by callers, never computed
	if c.CostQuantile == 0 {
		c.CostQuantile = 0.9
	}
	if c.MinSamples == 0 {
		c.MinSamples = 32
	}
	//schemble:floateq-ok zero-value config sentinel
	if c.MaxInflation == 0 {
		c.MaxInflation = 8
	}
	//schemble:floateq-ok zero-value config sentinel
	if c.MinInflation == 0 {
		c.MinInflation = 0.25
	}
	if c.DriftWindow == 0 {
		c.DriftWindow = 2 * time.Second
	}
	if c.DriftMinCount == 0 {
		c.DriftMinCount = 8
	}
	if c.DriftPatience == 0 {
		c.DriftPatience = 2
	}
	//schemble:floateq-ok zero-value config sentinel
	if c.LatencyBand == 0 {
		c.LatencyBand = 0.5
	}
	//schemble:floateq-ok zero-value config sentinel
	if c.ScoreBand == 0 {
		c.ScoreBand = 0.15
	}
	if c.EventBuffer == 0 {
		c.EventBuffer = 64
	}
	if c.RecalEpoch == 0 {
		c.RecalEpoch = 5 * time.Second
	}
	if c.RecalReservoir == 0 {
		c.RecalReservoir = 512
	}
	if c.RecalBins == 0 {
		c.RecalBins = 16
	}
	if c.RecalMinPairs == 0 {
		c.RecalMinPairs = 64
	}
	//schemble:floateq-ok zero-value config sentinel
	if c.RecalHysteresis == 0 {
		c.RecalHysteresis = 0.02
	}
	return c
}

// Engine is the online-adaptation state for one deployment: per-replica
// latency sketches folded into per-model views, the drift detector, and
// the recalibration reservoir. All methods are safe for concurrent use;
// observation and query paths never allocate (refits at epoch
// boundaries may).
type Engine struct {
	cfg Config

	mu sync.Mutex
	//schemble:guardedby mu
	perModel []Sketch
	//schemble:guardedby mu
	perReplica [][]Sketch
	//schemble:guardedby mu
	det detector
	//schemble:guardedby mu
	rec recal

	// profiled[k] is model k's frozen profiling mean, the drift and
	// inflation reference; base[k] the engine's planning cost at that
	// mean (profiled plus the engine's margin). Both immutable after New.
	profiled []time.Duration
	base     []time.Duration
}

// New builds an engine for a fleet of len(profiled) models where model k
// runs replicas[k] replicas. profiled carries the frozen profiling mean
// latencies, base the engine's planning cost vector at those means
// (ExecInto scales base, preserving whatever margin the engine bakes
// in). Returns nil when the config is disabled, so a nil-check is the
// only branch adaptation adds to a zero-config runtime.
func New(cfg Config, profiled, base []time.Duration, replicas []int) *Engine {
	if !cfg.Enabled() {
		return nil
	}
	cfg = cfg.withDefaults()
	m := len(profiled)
	e := &Engine{
		cfg:      cfg,
		perModel: make([]Sketch, m),
		profiled: append([]time.Duration(nil), profiled...),
		base:     append([]time.Duration(nil), base...),
	}
	e.perReplica = make([][]Sketch, m)
	for k := 0; k < m; k++ {
		r := 1
		if k < len(replicas) && replicas[k] > 1 {
			r = replicas[k]
		}
		e.perReplica[k] = make([]Sketch, r)
	}
	e.det = detector{
		latWin:   make([]window, m),
		latState: make([]driftState, m),
		events:   make([]DriftEvent, cfg.EventBuffer),
	}
	e.rec = recal{
		pairs:     make([]pair, cfg.RecalReservoir),
		binSum:    make([]float64, cfg.RecalBins),
		binCnt:    make([]int, cfg.RecalBins),
		nextY:     make([]float64, cfg.RecalBins),
		nextEpoch: cfg.RecalEpoch,
	}
	return e
}

// ObserveLatency folds one completed task execution into model k's
// (replica r's) sketch and the latency drift detector. now and lat are
// virtual time. Never allocates.
func (e *Engine) ObserveLatency(now time.Duration, k, r int, lat time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k < 0 || k >= len(e.perModel) {
		return
	}
	e.perModel[k].Insert(lat)
	if r >= 0 && r < len(e.perReplica[k]) {
		e.perReplica[k][r].Insert(lat)
	}
	w := &e.det.latWin[k]
	if w.started && now-w.start >= e.cfg.DriftWindow {
		if w.n >= e.cfg.DriftMinCount && e.profiled[k] > 0 {
			ratio := w.sum / float64(w.n) / float64(e.profiled[k])
			out := ratio > 1+e.cfg.LatencyBand || ratio < 1-e.cfg.LatencyBand
			if e.det.latState[k].observe(out, e.cfg.DriftPatience) {
				e.det.push(DriftEvent{At: now, Kind: DriftLatency, Model: k,
					Enter: e.det.latState[k].active, Value: ratio})
			}
		}
		w.started = false
	}
	if !w.started {
		*w = window{started: true, start: now}
	}
	w.sum += float64(lat)
	w.n++
}

// ObserveScore folds one raw (pre-calibration) difficulty score into the
// score-drift detector. Never allocates.
func (e *Engine) ObserveScore(now time.Duration, raw float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := &e.det.scoreWin
	if w.started && now-w.start >= e.cfg.DriftWindow {
		if w.n >= e.cfg.DriftMinCount {
			mean := w.sum / float64(w.n)
			if !e.det.baselineSet {
				// Self-calibrate the reference from the first full window
				// when the config left it unset; that window itself is
				// never judged.
				//schemble:floateq-ok zero-value config sentinel
				if e.cfg.BaselineScore == 0 {
					e.det.baseline = mean
				} else {
					e.det.baseline = e.cfg.BaselineScore
				}
				e.det.baselineSet = true
			} else {
				delta := mean - e.det.baseline
				out := delta > e.cfg.ScoreBand || delta < -e.cfg.ScoreBand
				if e.det.scoreState.observe(out, e.cfg.DriftPatience) {
					e.det.push(DriftEvent{At: now, Kind: DriftScore, Model: -1,
						Enter: e.det.scoreState.active, Value: mean})
				}
			}
		}
		w.started = false
	}
	if !w.started {
		*w = window{started: true, start: now}
	}
	w.sum += raw
	w.n++
}

// Calibrate maps a raw difficulty score through the active calibration
// map (identity until the first accepted refit). Never allocates.
func (e *Engine) Calibrate(raw float64) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rec.calibrate(raw)
}

// ObserveOutcome feeds one cleanly served full-ensemble outcome into the
// recalibration reservoir: raw is the predictor's uncalibrated score,
// outs the per-model outputs and ens the aggregated output. Callers must
// only report outcomes where every ensemble member produced an output —
// partial subsets would bias the observed discrepancy. At virtual-time
// epoch boundaries the reservoir is refit and the calibration map
// swapped in atomically (the refit may allocate; it is off the planning
// hot path by construction).
func (e *Engine) ObserveOutcome(now time.Duration, raw float64, outs []model.Output, ens model.Output) {
	if e.cfg.Scorer == nil {
		return
	}
	obs := e.cfg.Scorer.Score(outs, ens)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec.add(pair{raw: raw, obs: obs})
	if now >= e.rec.nextEpoch {
		e.rec.refit(e.cfg.RecalMinPairs, e.cfg.RecalHysteresis)
		for now >= e.rec.nextEpoch {
			e.rec.nextEpoch += e.cfg.RecalEpoch
		}
	}
}

// Inflation reports model k's current cost inflation factor: the live
// CostQuantile latency over the frozen profiled mean, clamped to the
// configured band, or exactly 1 while the sketch is cold. Callers hold
// no lock. Never allocates.
func (e *Engine) Inflation(k int) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inflationLocked(k)
}

// inflationLocked is Inflation's body; callers hold e.mu.
func (e *Engine) inflationLocked(k int) float64 {
	if k < 0 || k >= len(e.perModel) {
		return 1
	}
	s := &e.perModel[k]
	if s.Count() < e.cfg.MinSamples || e.profiled[k] <= 0 {
		return 1
	}
	infl := float64(s.Quantile(e.cfg.CostQuantile)) / float64(e.profiled[k])
	if infl > e.cfg.MaxInflation {
		infl = e.cfg.MaxInflation
	}
	if infl < e.cfg.MinInflation {
		infl = e.cfg.MinInflation
	}
	return infl
}

// Quantile reports model k's live q-quantile latency (0 while empty).
func (e *Engine) Quantile(k int, q float64) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	if k < 0 || k >= len(e.perModel) {
		return 0
	}
	return e.perModel[k].Quantile(q)
}

// ExecInto writes the live planning cost vector into exec: the engine's
// frozen base cost per model scaled by the current inflation factor.
// exec must have length len(profiled); extra entries are left untouched.
// This is the narrow interface the scheduler's cost model consumes
// (core.ExecSource); it never allocates, keeping the planning hot path
// at zero allocations per decision. Satisfies core.ExecSource.
func (e *Engine) ExecInto(exec []time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for k := 0; k < len(e.base) && k < len(exec); k++ {
		exec[k] = time.Duration(float64(e.base[k]) * e.inflationLocked(k))
	}
}

// ActiveDrift returns the currently active drift conditions as trace
// labels ("latency:<model>", "score"), or nil when none are active.
// Allocates only when drift is active; intended for decision-trace
// enrichment, not the planning path.
func (e *Engine) ActiveDrift() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var out []string
	for k := range e.det.latState {
		if e.det.latState[k].active {
			out = append(out, DriftLatency+":"+strconv.Itoa(k))
		}
	}
	if e.det.scoreState.active {
		out = append(out, DriftScore)
	}
	return out
}

// Snapshot is a point-in-time export of the engine for /v1/stats and the
// drift soak report.
type Snapshot struct {
	Models        []ModelAdapt `json:"models"`
	ScoreDrift    bool         `json:"score_drift"`
	BaselineScore float64      `json:"baseline_score"`
	LatencyEvents uint64       `json:"latency_events"`
	ScoreEvents   uint64       `json:"score_events"`
	// Events are the most recent drift transitions, oldest first.
	Events []DriftEvent `json:"events,omitempty"`
	// RecalEpochs counts refits attempted, RecalSwaps refits accepted
	// past the hysteresis guard; RecalPairs is the reservoir occupancy
	// and RecalActive whether a non-identity calibration map is live.
	RecalEpochs uint64 `json:"recal_epochs"`
	RecalSwaps  uint64 `json:"recal_swaps"`
	RecalPairs  int    `json:"recal_pairs"`
	RecalActive bool   `json:"recal_active"`
}

// ModelAdapt is one model's live profile view.
type ModelAdapt struct {
	Samples      uint64        `json:"samples"`
	Mean         time.Duration `json:"mean"`
	P50          time.Duration `json:"p50"`
	P90          time.Duration `json:"p90"`
	P99          time.Duration `json:"p99"`
	ProfiledMean time.Duration `json:"profiled_mean"`
	Inflation    float64       `json:"inflation"`
	Drift        bool          `json:"drift"`
	// ReplicaSamples breaks Samples down by replica for real pools.
	ReplicaSamples []uint64 `json:"replica_samples,omitempty"`
}

// Snapshot exports the engine's current state. Safe for concurrent use;
// allocates (it is a reporting surface, not a planning one).
func (e *Engine) Snapshot() *Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := &Snapshot{
		Models:        make([]ModelAdapt, len(e.perModel)),
		ScoreDrift:    e.det.scoreState.active,
		BaselineScore: e.det.baseline,
		LatencyEvents: e.det.latencyEvents,
		ScoreEvents:   e.det.scoreEvents,
		Events:        e.det.recent(),
		RecalEpochs:   e.rec.epochs,
		RecalSwaps:    e.rec.swaps,
		RecalPairs:    e.rec.filled,
		RecalActive:   e.rec.knotY != nil,
	}
	for k := range e.perModel {
		s := &e.perModel[k]
		ma := ModelAdapt{
			Samples:      s.Count(),
			Mean:         s.Mean(),
			P50:          s.Quantile(0.5),
			P90:          s.Quantile(0.9),
			P99:          s.Quantile(0.99),
			ProfiledMean: e.profiled[k],
			Inflation:    e.inflationLocked(k),
			Drift:        e.det.latState[k].active,
		}
		if len(e.perReplica[k]) > 1 {
			ma.ReplicaSamples = make([]uint64, len(e.perReplica[k]))
			for r := range e.perReplica[k] {
				ma.ReplicaSamples[r] = e.perReplica[k][r].Count()
			}
		}
		snap.Models[k] = ma
	}
	return snap
}
