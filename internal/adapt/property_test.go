package adapt

import (
	"math"
	"sort"
	"testing"
	"time"

	"schemble/internal/rng"
)

// propertyCases is the number of deterministic seeded instances each
// property below is checked against. The generator is seed-indexed (not
// testing/quick), so a failure reproduces exactly by seed.
const propertyCases = 1000

// genDurations draws n durations log-uniformly across the sketch's
// covered range (with margin away from both ends so the rank-error bound
// applies cleanly).
func genDurations(src *rng.Source, n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		// 100µs .. ~5s, log-uniform.
		e := src.Uniform(math.Log(100e3), math.Log(5e9))
		out[i] = time.Duration(math.Exp(e))
	}
	return out
}

// TestSketchQuantileMonotoneAndBounded pins the sketch's two contract
// properties over 1000 seeded multisets: Quantile is monotone
// non-decreasing in q, and for in-range data the estimate lies within a
// factor sketchGrowth of the true order statistic at rank ceil(q*n).
func TestSketchQuantileMonotoneAndBounded(t *testing.T) {
	qs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}
	const tol = sketchGrowth * (1 + 1e-9)
	for seed := uint64(0); seed < propertyCases; seed++ {
		src := rng.New(seed)
		vals := genDurations(src, 1+src.Intn(200))
		var s Sketch
		for _, v := range vals {
			s.Insert(v)
		}
		if s.Count() != uint64(len(vals)) {
			t.Fatalf("seed %d: count %d != %d", seed, s.Count(), len(vals))
		}
		sorted := append([]time.Duration(nil), vals...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		prev := time.Duration(-1)
		for _, q := range qs {
			got := s.Quantile(q)
			if got < prev {
				t.Fatalf("seed %d: Quantile(%v)=%v < Quantile at lower q %v (not monotone)",
					seed, q, got, prev)
			}
			prev = got
			rank := int(math.Ceil(q * float64(len(sorted))))
			if rank < 1 {
				rank = 1
			}
			truth := sorted[rank-1]
			ratio := float64(got) / float64(truth)
			if ratio > tol || ratio < 1/tol {
				t.Fatalf("seed %d: Quantile(%v)=%v vs true order statistic %v (ratio %.4f beyond factor %v)",
					seed, q, got, truth, ratio, sketchGrowth)
			}
		}
	}
}

// TestSketchMergeCommutativeAssociative pins exact merge algebra: the
// sketch is a counter vector, so merge order can never change the result
// — the property that lets per-replica sketches fold into per-model (and
// fleet-level) views without ordering concerns.
func TestSketchMergeCommutativeAssociative(t *testing.T) {
	for seed := uint64(0); seed < propertyCases; seed++ {
		src := rng.New(seed)
		var a, b, c Sketch
		for _, v := range genDurations(src, 1+src.Intn(60)) {
			a.Insert(v)
		}
		for _, v := range genDurations(src, 1+src.Intn(60)) {
			b.Insert(v)
		}
		for _, v := range genDurations(src, 1+src.Intn(60)) {
			c.Insert(v)
		}

		ab, ba := a, b
		ab.Merge(&b)
		ba.Merge(&a)
		if ab != ba {
			t.Fatalf("seed %d: merge not commutative", seed)
		}

		left := a // (a+b)+c
		left.Merge(&b)
		left.Merge(&c)
		bc := b // a+(b+c)
		bc.Merge(&c)
		right := a
		right.Merge(&bc)
		if left != right {
			t.Fatalf("seed %d: merge not associative", seed)
		}
	}
}

// genPairs draws a pseudo-random (raw, observed) outcome stream with a
// monotone-ish underlying relation plus noise — the regime recalibration
// actually sees.
func genPairs(src *rng.Source, n int) []pair {
	out := make([]pair, n)
	for i := range out {
		raw := src.Float64()
		obs := 0.2 + 0.6*raw + src.Uniform(-0.1, 0.1)
		if obs < 0 {
			obs = 0
		}
		if obs > 1 {
			obs = 1
		}
		out[i] = pair{raw: raw, obs: obs}
	}
	return out
}

// newTestRecal builds a recal sized like a (small) production one.
func newTestRecal(reservoir, bins int, epoch time.Duration) recal {
	return recal{
		pairs:     make([]pair, reservoir),
		binSum:    make([]float64, bins),
		binCnt:    make([]int, bins),
		nextY:     make([]float64, bins),
		nextEpoch: epoch,
	}
}

// TestRecalDeterministicAndMonotone pins three recalibration properties
// over 1000 seeded outcome streams: (1) determinism — two reservoirs fed
// the identical stream refit to byte-identical maps; (2) monotonicity —
// the fitted map never inverts the difficulty ordering (PAV); (3)
// hysteresis — an immediate second refit over the same data never swaps.
func TestRecalDeterministicAndMonotone(t *testing.T) {
	for seed := uint64(0); seed < propertyCases; seed++ {
		src := rng.New(seed)
		ps := genPairs(src, 64+src.Intn(300))
		r1 := newTestRecal(256, 16, time.Second)
		r2 := newTestRecal(256, 16, time.Second)
		for _, p := range ps {
			r1.add(p)
			r2.add(p)
		}
		s1 := r1.refit(64, 0.02)
		s2 := r2.refit(64, 0.02)
		if s1 != s2 {
			t.Fatalf("seed %d: refit outcomes disagree (%v vs %v)", seed, s1, s2)
		}
		if !s1 {
			t.Fatalf("seed %d: first refit with full support did not swap", seed)
		}
		for i := range r1.knotY {
			if r1.knotY[i] != r2.knotY[i] {
				t.Fatalf("seed %d: knot %d differs: %v vs %v (refit not deterministic)",
					seed, i, r1.knotY[i], r2.knotY[i])
			}
		}
		for i := 1; i < len(r1.knotY); i++ {
			if r1.knotY[i] < r1.knotY[i-1] {
				t.Fatalf("seed %d: knots not monotone at %d: %v < %v",
					seed, i, r1.knotY[i], r1.knotY[i-1])
			}
		}
		// Calibrate must be monotone in raw and clamped to the knot range.
		prev := math.Inf(-1)
		for _, raw := range []float64{-0.5, 0, 0.1, 0.3, 0.5, 0.7, 0.9, 1, 1.5} {
			got := r1.calibrate(raw)
			if got < prev {
				t.Fatalf("seed %d: calibrate(%v)=%v not monotone", seed, raw, got)
			}
			prev = got
		}
		// Same data again: the candidate equals the active map, so the
		// hysteresis guard must keep it.
		if r1.refit(64, 0.02) {
			t.Fatalf("seed %d: identical-data refit swapped past hysteresis", seed)
		}
	}
}

// TestDetectorNoFlapStationary pins the no-flap property over 1000
// seeded stationary workloads: latencies jittering strictly inside the
// tolerance band (±30% of profiled against a ±50% band) and raw scores
// jittering inside the score band (0.5±0.05 against a ±0.15 band) can
// never move a window mean out of band, so the detector must emit zero
// drift events and leave every signal inactive — regardless of arrival
// spacing, window phase, or jitter realization.
func TestDetectorNoFlapStationary(t *testing.T) {
	profiled := []time.Duration{40 * time.Millisecond, 90 * time.Millisecond}
	for seed := uint64(0); seed < propertyCases; seed++ {
		src := rng.New(seed)
		e := New(Config{
			Enable:        true,
			DriftWindow:   100 * time.Millisecond,
			DriftMinCount: 4,
			DriftPatience: 2,
			MinSamples:    1,
		}, profiled, profiled, nil)
		now := time.Duration(0)
		n := 200 + src.Intn(400)
		for i := 0; i < n; i++ {
			now += time.Duration(src.Uniform(1e6, 30e6)) // 1..30ms spacing
			k := src.Intn(len(profiled))
			lat := time.Duration(float64(profiled[k]) * src.Uniform(0.7, 1.3))
			e.ObserveLatency(now, k, 0, lat)
			e.ObserveScore(now, src.Uniform(0.45, 0.55))
		}
		snap := e.Snapshot()
		if snap.LatencyEvents != 0 || snap.ScoreEvents != 0 {
			t.Fatalf("seed %d: stationary stream produced drift events (latency %d, score %d)",
				seed, snap.LatencyEvents, snap.ScoreEvents)
		}
		if snap.ScoreDrift {
			t.Fatalf("seed %d: score drift active on a stationary stream", seed)
		}
		for k, m := range snap.Models {
			if m.Drift {
				t.Fatalf("seed %d: latency drift active on model %d on a stationary stream", seed, k)
			}
		}
		if got := e.ActiveDrift(); got != nil {
			t.Fatalf("seed %d: ActiveDrift() = %v, want nil", seed, got)
		}
	}
}
