package adapt

import "time"

// Drift event kinds. A typed event is emitted when a detector's state
// machine transitions — never per sample — so a stationary workload
// produces zero events (the no-flap property the test suite pins).
const (
	// DriftLatency marks a per-model latency shift: the windowed mean of
	// observed task latencies left (or re-entered) the tolerance band
	// around the frozen profiling mean.
	DriftLatency = "latency"
	// DriftScore marks a difficulty-mix shift: the windowed mean of raw
	// difficulty scores left (or re-entered) the band around the
	// baseline score distribution.
	DriftScore = "score"
)

// DriftEvent is one detector transition, recorded in virtual time so
// serve and sim produce comparable event streams.
type DriftEvent struct {
	// At is the virtual time of the window close that triggered the
	// transition.
	At time.Duration `json:"at"`
	// Kind is DriftLatency or DriftScore.
	Kind string `json:"kind"`
	// Model is the model index for latency events, -1 for score events.
	Model int `json:"model"`
	// Enter is true when drift was detected, false when the signal
	// returned to the tolerance band.
	Enter bool `json:"enter"`
	// Value is the windowed statistic that crossed: the observed/profiled
	// mean-latency ratio for latency events, the windowed mean raw score
	// for score events.
	Value float64 `json:"value"`
}

// window accumulates one detector window in virtual time. Windows are
// anchored at the first observation after the previous close rather
// than on a global grid: the detector then never closes an empty
// window, and window boundaries are a deterministic function of the
// observation stream alone — the property the sim<->serve equivalence
// test relies on.
type window struct {
	started bool
	start   time.Duration
	sum     float64
	n       int
}

// driftState is one detector's hysteretic state machine. A transition
// requires patience consecutive out-of-band (or back-in-band) windows:
// one noisy window flips nothing, so the detector cannot flap on
// boundary-straddling workloads. run counts consecutive windows that
// disagree with the current state.
type driftState struct {
	active bool
	run    int
}

// observe folds one closed window verdict into the state machine and
// reports whether the state flipped.
func (d *driftState) observe(out bool, patience int) bool {
	if out == d.active {
		d.run = 0
		return false
	}
	d.run++
	if d.run < patience {
		return false
	}
	d.active = out
	d.run = 0
	return true
}

// detector holds both drift signals and the bounded event ring. It is
// embedded in Engine and shares its mutex.
type detector struct {
	// latWin/latState track per-model observed-vs-profiled latency.
	latWin   []window
	latState []driftState
	// scoreWin/scoreState track the difficulty-score distribution.
	scoreWin   window
	scoreState driftState
	// baseline is the reference mean raw score; self-calibrated from the
	// first closed window when the config leaves it unset.
	baseline    float64
	baselineSet bool

	// events is a preallocated drop-oldest ring (head is the next write
	// slot, filled the live count) so event emission never allocates on
	// the observation path.
	events []DriftEvent
	head   int
	filled int
	// latencyEvents/scoreEvents are lifetime transition counters by
	// kind, exported through the snapshot and /v1/metrics.
	latencyEvents uint64
	scoreEvents   uint64
}

// push records one transition event into the ring.
func (d *detector) push(ev DriftEvent) {
	if ev.Kind == DriftLatency {
		d.latencyEvents++
	} else {
		d.scoreEvents++
	}
	if len(d.events) == 0 {
		return
	}
	d.events[d.head] = ev
	d.head = (d.head + 1) % len(d.events)
	if d.filled < len(d.events) {
		d.filled++
	}
}

// recent appends the ring's events, oldest first, to a fresh slice.
func (d *detector) recent() []DriftEvent {
	if d.filled == 0 {
		return nil
	}
	out := make([]DriftEvent, 0, d.filled)
	start := (d.head - d.filled + len(d.events)) % len(d.events)
	for i := 0; i < d.filled; i++ {
		out = append(out, d.events[(start+i)%len(d.events)])
	}
	return out
}
