package adapt

import (
	"testing"
	"time"

	"schemble/internal/model"
)

// valueScorer is a stub OutcomeScorer that reads the observed score the
// test encoded into the first model output's Value field.
type valueScorer struct{}

func (valueScorer) Score(outs []model.Output, _ model.Output) float64 { return outs[0].Value }

func TestNewDisabledIsNil(t *testing.T) {
	if e := New(Config{}, []time.Duration{time.Millisecond}, []time.Duration{time.Millisecond}, nil); e != nil {
		t.Fatalf("New with zero config = %v, want nil", e)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero Config reports Enabled")
	}
}

func TestInflationColdThenTracks(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond}
	e := New(Config{Enable: true, MinSamples: 8, CostQuantile: 0.9}, profiled, profiled, nil)
	if got := e.Inflation(0); got != 1 {
		t.Fatalf("cold inflation = %v, want exactly 1", got)
	}
	// Below MinSamples the factor must stay pinned at 1 even though the
	// observations are far from profiled.
	now := time.Duration(0)
	for i := 0; i < 7; i++ {
		now += time.Millisecond
		e.ObserveLatency(now, 0, 0, 30*time.Millisecond)
	}
	if got := e.Inflation(0); got != 1 {
		t.Fatalf("inflation below MinSamples = %v, want exactly 1", got)
	}
	now += time.Millisecond
	e.ObserveLatency(now, 0, 0, 30*time.Millisecond)
	got := e.Inflation(0)
	if got < 2.0 || got > 4.0 {
		t.Fatalf("inflation after 8x 3x-profiled observations = %v, want near 3 (within sketch error)", got)
	}
	// Out-of-range model indices degrade to the neutral factor.
	if e.Inflation(-1) != 1 || e.Inflation(5) != 1 {
		t.Fatal("out-of-range model index did not report inflation 1")
	}
}

func TestInflationClamped(t *testing.T) {
	profiled := []time.Duration{time.Millisecond}
	e := New(Config{Enable: true, MinSamples: 1, MaxInflation: 2, MinInflation: 0.5}, profiled, profiled, nil)
	e.ObserveLatency(time.Millisecond, 0, 0, 100*time.Millisecond)
	if got := e.Inflation(0); got != 2 {
		t.Fatalf("inflation = %v, want clamped to MaxInflation 2", got)
	}
	e2 := New(Config{Enable: true, MinSamples: 1, MaxInflation: 2, MinInflation: 0.5},
		[]time.Duration{time.Second}, []time.Duration{time.Second}, nil)
	e2.ObserveLatency(time.Millisecond, 0, 0, time.Millisecond)
	if got := e2.Inflation(0); got != 0.5 {
		t.Fatalf("inflation = %v, want clamped to MinInflation 0.5", got)
	}
}

func TestExecIntoScalesBase(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	base := []time.Duration{11 * time.Millisecond, 22 * time.Millisecond}
	e := New(Config{Enable: true, MinSamples: 4}, profiled, base, nil)
	exec := make([]time.Duration, 2)
	e.ExecInto(exec)
	if exec[0] != base[0] || exec[1] != base[1] {
		t.Fatalf("cold ExecInto = %v, want base %v unchanged", exec, base)
	}
	now := time.Duration(0)
	for i := 0; i < 16; i++ {
		now += time.Millisecond
		e.ObserveLatency(now, 1, 0, 60*time.Millisecond) // 3x profiled on model 1
	}
	e.ExecInto(exec)
	if exec[0] != base[0] {
		t.Fatalf("exec[0] = %v, want untouched base %v (model 0 never observed)", exec[0], base[0])
	}
	want := time.Duration(float64(base[1]) * e.Inflation(1))
	if exec[1] != want {
		t.Fatalf("exec[1] = %v, want base*inflation = %v", exec[1], want)
	}
	if exec[1] <= base[1] {
		t.Fatalf("exec[1] = %v did not inflate above base %v", exec[1], base[1])
	}
}

// feedWindows pushes enough spaced observations through model k to close
// cnt detector windows at the given latency.
func feedWindows(e *Engine, now *time.Duration, k int, lat time.Duration, cnt int) {
	for w := 0; w < cnt; w++ {
		for i := 0; i < 10; i++ {
			*now += 15 * time.Millisecond
			e.ObserveLatency(*now, k, 0, lat)
		}
	}
}

func TestLatencyDriftEnterAndExit(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond}
	e := New(Config{
		Enable: true, DriftWindow: 100 * time.Millisecond,
		DriftMinCount: 4, DriftPatience: 2, MinSamples: 1,
	}, profiled, profiled, nil)
	now := time.Duration(0)
	feedWindows(e, &now, 0, 10*time.Millisecond, 4)
	if len(e.ActiveDrift()) != 0 {
		t.Fatal("drift active before any shift")
	}
	// Sustained 2x latency: patience 2 means the first out-of-band window
	// must not flip, the second must.
	feedWindows(e, &now, 0, 20*time.Millisecond, 6)
	got := e.ActiveDrift()
	if len(got) != 1 || got[0] != "latency:0" {
		t.Fatalf("ActiveDrift = %v, want [latency:0]", got)
	}
	snap := e.Snapshot()
	if snap.LatencyEvents != 1 {
		t.Fatalf("LatencyEvents = %d, want 1 (enter only)", snap.LatencyEvents)
	}
	if len(snap.Events) != 1 || !snap.Events[0].Enter || snap.Events[0].Kind != DriftLatency || snap.Events[0].Model != 0 {
		t.Fatalf("Events = %+v, want one latency enter event for model 0", snap.Events)
	}
	if snap.Events[0].Value < 1.5 {
		t.Fatalf("enter event ratio = %v, want near 2", snap.Events[0].Value)
	}
	if !snap.Models[0].Drift {
		t.Fatal("snapshot does not mark model 0 drifted")
	}
	// Recovery back to profiled: the exit transition is an event too.
	feedWindows(e, &now, 0, 10*time.Millisecond, 6)
	if len(e.ActiveDrift()) != 0 {
		t.Fatal("drift still active after recovery")
	}
	snap = e.Snapshot()
	if snap.LatencyEvents != 2 {
		t.Fatalf("LatencyEvents = %d, want 2 (enter + exit)", snap.LatencyEvents)
	}
	last := snap.Events[len(snap.Events)-1]
	if last.Enter {
		t.Fatalf("last event = %+v, want an exit transition", last)
	}
}

func TestScoreDriftSelfCalibratedBaseline(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond}
	e := New(Config{
		Enable: true, DriftWindow: 100 * time.Millisecond,
		DriftMinCount: 4, DriftPatience: 2,
	}, profiled, profiled, nil)
	now := time.Duration(0)
	feed := func(score float64, windows int) {
		for w := 0; w < windows; w++ {
			for i := 0; i < 10; i++ {
				now += 15 * time.Millisecond
				e.ObserveScore(now, score)
			}
		}
	}
	feed(0.3, 4) // first closed window self-calibrates the baseline
	snap := e.Snapshot()
	if snap.BaselineScore != 0.3 {
		t.Fatalf("self-calibrated baseline = %v, want 0.3", snap.BaselineScore)
	}
	if snap.ScoreEvents != 0 || snap.ScoreDrift {
		t.Fatal("score drift flagged under a stationary mix")
	}
	feed(0.7, 6) // mean shifts by 0.4 >> default band 0.15
	snap = e.Snapshot()
	if !snap.ScoreDrift {
		t.Fatal("score drift not flagged after the mix shifted")
	}
	if snap.ScoreEvents != 1 {
		t.Fatalf("ScoreEvents = %d, want 1", snap.ScoreEvents)
	}
	got := e.ActiveDrift()
	if len(got) != 1 || got[0] != DriftScore {
		t.Fatalf("ActiveDrift = %v, want [score]", got)
	}
}

func TestObserveOutcomeRecalibrates(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond}
	e := New(Config{
		Enable: true, Scorer: valueScorer{},
		RecalEpoch: time.Second, RecalMinPairs: 16, RecalBins: 8,
	}, profiled, profiled, nil)
	if got := e.Calibrate(0.42); got != 0.42 {
		t.Fatalf("Calibrate before any refit = %v, want identity", got)
	}
	// The predictor under-scores by half: raw = obs/2. After a refit the
	// calibration map must lift raw scores back toward the observed ones.
	now := time.Duration(0)
	outs := []model.Output{{}}
	for i := 0; i < 64; i++ {
		now += 20 * time.Millisecond
		raw := float64(i%10) / 10
		obs := 2 * raw
		if obs > 1 {
			obs = 1
		}
		outs[0].Value = obs
		e.ObserveOutcome(now, raw, outs, model.Output{})
	}
	snap := e.Snapshot()
	if snap.RecalEpochs == 0 || snap.RecalSwaps == 0 || !snap.RecalActive {
		t.Fatalf("no refit landed: epochs=%d swaps=%d active=%v",
			snap.RecalEpochs, snap.RecalSwaps, snap.RecalActive)
	}
	if snap.RecalPairs != 64 {
		t.Fatalf("RecalPairs = %d, want 64", snap.RecalPairs)
	}
	lifted := e.Calibrate(0.3)
	if lifted <= 0.35 {
		t.Fatalf("Calibrate(0.3) = %v after refit, want lifted toward observed 0.6", lifted)
	}
	// Nil scorer: outcomes must be ignored entirely.
	e2 := New(Config{Enable: true}, profiled, profiled, nil)
	e2.ObserveOutcome(10*time.Second, 0.5, outs, model.Output{})
	if snap := e2.Snapshot(); snap.RecalEpochs != 0 || snap.RecalPairs != 0 {
		t.Fatal("outcome observed despite nil Scorer")
	}
}

func TestSnapshotReplicaBreakdown(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond}
	e := New(Config{Enable: true}, profiled, profiled, []int{1, 3})
	e.ObserveLatency(time.Millisecond, 1, 0, 10*time.Millisecond)
	e.ObserveLatency(2*time.Millisecond, 1, 2, 10*time.Millisecond)
	e.ObserveLatency(3*time.Millisecond, 1, 2, 10*time.Millisecond)
	snap := e.Snapshot()
	if snap.Models[0].ReplicaSamples != nil {
		t.Fatal("single-replica model exported a replica breakdown")
	}
	got := snap.Models[1].ReplicaSamples
	if len(got) != 3 || got[0] != 1 || got[1] != 0 || got[2] != 2 {
		t.Fatalf("ReplicaSamples = %v, want [1 0 2]", got)
	}
	if snap.Models[1].Samples != 3 {
		t.Fatalf("Samples = %d, want 3", snap.Models[1].Samples)
	}
}

// TestObservationPathsZeroAlloc pins the engine's hot-path allocation
// contract: every per-task observation and every planning-side query is
// allocation-free (refits at epoch boundaries are exempt and excluded).
func TestObservationPathsZeroAlloc(t *testing.T) {
	profiled := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	e := New(Config{Enable: true, MinSamples: 1, Scorer: valueScorer{},
		RecalEpoch: time.Hour}, profiled, profiled, []int{2, 2})
	exec := make([]time.Duration, 2)
	outs := []model.Output{{Value: 0.5}}
	now := time.Duration(0)
	cases := []struct {
		name string
		fn   func()
	}{
		{"ObserveLatency", func() { now += time.Millisecond; e.ObserveLatency(now, 0, 1, 12*time.Millisecond) }},
		{"ObserveScore", func() { now += time.Millisecond; e.ObserveScore(now, 0.4) }},
		{"ObserveOutcome", func() { e.ObserveOutcome(time.Millisecond, 0.4, outs, model.Output{}) }},
		{"Calibrate", func() { _ = e.Calibrate(0.4) }},
		{"Inflation", func() { _ = e.Inflation(0) }},
		{"ExecInto", func() { e.ExecInto(exec) }},
		{"ActiveDriftQuiet", func() { _ = e.ActiveDrift() }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(200, tc.fn); n != 0 {
			t.Errorf("%s allocates %.1f/op, want 0", tc.name, n)
		}
	}
}
