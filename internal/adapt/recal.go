package adapt

import (
	"math"
	"time"
)

// pair is one recalibration observation: the predictor's raw difficulty
// score for a sample and the true discrepancy score computed from the
// full ensemble's outputs once the sample was served by every model.
type pair struct {
	raw, obs float64
}

// recal incrementally recalibrates the discrepancy predictor from
// served outcomes. Pairs accumulate in a bounded ring reservoir (ring,
// not random-replacement, so the package needs no RNG and the refit is
// a deterministic function of the completion stream — the property the
// recalibration-determinism test pins). At virtual-time epoch
// boundaries the reservoir is refit into a monotone piecewise-linear
// map raw -> expected observed score, and the new map replaces the
// active one atomically under the engine mutex — but only when it
// differs from the active map by more than the hysteresis threshold, so
// back-to-back refits over near-identical data cannot flap the
// scheduler's score inputs. A genuine reversal of drift still swaps
// back: the guard compares maps, not directions.
type recal struct {
	pairs  []pair
	head   int
	filled int

	// binSum/binCnt are scratch for refit, allocated once.
	binSum []float64
	binCnt []int

	// knotX/knotY is the active calibration map (nil until the first
	// accepted refit); nextY is the double-buffered candidate so a refit
	// that loses to hysteresis allocates nothing.
	knotX []float64
	knotY []float64
	nextY []float64

	// nextEpoch is the next virtual-time refit boundary.
	nextEpoch time.Duration
	// epochs counts refits attempted, swaps refits accepted past the
	// hysteresis guard.
	epochs uint64
	swaps  uint64
}

// add appends one pair to the ring reservoir, dropping the oldest when
// full. Never allocates.
func (r *recal) add(p pair) {
	if len(r.pairs) == 0 {
		return
	}
	r.pairs[r.head] = p
	r.head = (r.head + 1) % len(r.pairs)
	if r.filled < len(r.pairs) {
		r.filled++
	}
}

// refit rebuilds the candidate calibration map from the reservoir and
// swaps it in when it clears the hysteresis threshold. minPairs gates
// refits on sample support; hyst is the mean absolute knot delta below
// which the active map is kept. Returns true when the candidate was
// swapped in.
func (r *recal) refit(minPairs int, hyst float64) bool {
	r.epochs++
	if r.filled < minPairs {
		return false
	}
	bins := len(r.binSum)
	for i := 0; i < bins; i++ {
		r.binSum[i] = 0
		r.binCnt[i] = 0
	}
	// Bin pairs by raw score over [0,1] in reservoir order (oldest
	// first): float accumulation order is fixed, so the same completion
	// stream yields a byte-identical map.
	start := (r.head - r.filled + len(r.pairs)) % len(r.pairs)
	for i := 0; i < r.filled; i++ {
		p := r.pairs[(start+i)%len(r.pairs)]
		b := int(p.raw * float64(bins))
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		r.binSum[b] += p.obs
		r.binCnt[b]++
	}
	// Per-bin means; empty bins inherit the nearest populated neighbor
	// below (or the first populated bin's mean at the low end) so the
	// map is total over [0,1].
	first := -1
	for i := 0; i < bins; i++ {
		if r.binCnt[i] > 0 {
			r.nextY[i] = r.binSum[i] / float64(r.binCnt[i])
			if first < 0 {
				first = i
			}
		} else if i > 0 {
			r.nextY[i] = r.nextY[i-1]
		} else {
			r.nextY[i] = 0
		}
	}
	if first < 0 {
		return false
	}
	for i := 0; i < first; i++ {
		r.nextY[i] = r.nextY[first]
	}
	// Pool adjacent violators: calibration must be monotone
	// non-decreasing or the scheduler's difficulty ordering would invert
	// between neighboring scores. Weights are bin counts (empty bins
	// carry weight 0 and just follow their pool).
	pav(r.nextY, r.binCnt)
	// Hysteresis: keep the active map unless the candidate moved enough
	// to matter. The first refit always swaps (there is nothing active).
	if r.knotY != nil {
		var delta float64
		for i := range r.nextY {
			delta += math.Abs(r.nextY[i] - r.knotY[i])
		}
		if delta/float64(bins) <= hyst {
			return false
		}
	} else {
		r.knotY = make([]float64, bins)
	}
	r.knotY, r.nextY = r.nextY, r.knotY
	r.swaps++
	return true
}

// pav enforces monotone non-decreasing y by pooling adjacent violators,
// weighting each knot by its bin count (minimum 1 so fill-forward knots
// still participate). In place, no allocation beyond the fixed scratch
// the caller owns.
func pav(y []float64, cnt []int) {
	n := len(y)
	// poolEnd[i] marks the end of the pool starting at i; walk left to
	// right merging any pool whose mean undercuts its predecessor's.
	for i := 1; i < n; i++ {
		if y[i] >= y[i-1] {
			continue
		}
		// Merge backwards until monotone. Track (weighted mean, weight)
		// of the merged pool and splat it over the covered range.
		lo := i - 1
		w := float64(weight(cnt, i))
		mean := y[i]
		for {
			wl := float64(weight(cnt, lo))
			mean = (mean*w + y[lo]*wl) / (w + wl)
			w += wl
			if lo == 0 || y[lo-1] <= mean {
				break
			}
			lo--
		}
		for j := lo; j <= i; j++ {
			y[j] = mean
		}
	}
}

// weight is a bin's PAV weight: its sample count, floored at 1.
func weight(cnt []int, i int) int {
	if cnt[i] > 0 {
		return cnt[i]
	}
	return 1
}

// calibrate applies the active map to a raw score: piecewise-linear
// interpolation between bin-center knots, clamped to the end knots
// outside [first, last]. Identity until a refit has been accepted.
// Never allocates.
func (r *recal) calibrate(raw float64) float64 {
	if r.knotY == nil {
		return raw
	}
	bins := len(r.knotY)
	// Knot i sits at the center of bin i: x_i = (i + 0.5) / bins.
	pos := raw*float64(bins) - 0.5
	if pos <= 0 {
		return r.knotY[0]
	}
	if pos >= float64(bins-1) {
		return r.knotY[bins-1]
	}
	i := int(pos)
	frac := pos - float64(i)
	return r.knotY[i] + (r.knotY[i+1]-r.knotY[i])*frac
}
