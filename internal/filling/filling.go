// Package filling handles missing base-model outputs when only a subset of
// an ensemble was executed (Section VII of the paper). Voting and averaging
// aggregators handle absence natively (exclusion / reweighting, implemented
// in package ensemble); stacking needs concrete values, which the KNN
// filler supplies by searching a bank of historical *full* inference
// records for the nearest neighbours of the observed partial output and
// imputing the unobserved entries with their distance-weighted average.
package filling

import (
	"math"
	"sort"

	"schemble/internal/ensemble"
	"schemble/internal/model"
)

// Record is one historical full-inference result: every base model's output
// on some past sample.
type Record struct {
	Outputs []model.Output
}

// KNN fills missing classification outputs from a bank of historical full
// records. It implements ensemble.Filler.
type KNN struct {
	K    int
	bank []Record
	m    int
}

// NewKNN builds a filler over the historical bank. k defaults to 10 (the
// paper shows robustness across 1..100). It panics when the bank is empty.
func NewKNN(k int, bank []Record) *KNN {
	if len(bank) == 0 {
		panic("filling: empty history bank")
	}
	if k <= 0 {
		k = 10
	}
	return &KNN{K: k, bank: bank, m: len(bank[0].Outputs)}
}

// Name implements ensemble.Filler.
func (f *KNN) Name() string { return "knn" }

// distance compares the observed (present) outputs of a query against the
// same coordinates of a historical record.
func distance(outs []model.Output, rec Record, present ensemble.Subset) float64 {
	var d float64
	for k := range outs {
		if !present.Contains(k) {
			continue
		}
		for c, p := range outs[k].Probs {
			diff := p - rec.Outputs[k].Probs[c]
			d += diff * diff
		}
	}
	return math.Sqrt(d)
}

// Fill implements ensemble.Filler: missing outputs become the
// distance-weighted average of the K nearest historical records.
func (f *KNN) Fill(outs []model.Output, present ensemble.Subset) []model.Output {
	type cand struct {
		idx  int
		dist float64
	}
	cands := make([]cand, len(f.bank))
	for i := range f.bank {
		cands[i] = cand{i, distance(outs, f.bank[i], present)}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].dist < cands[b].dist })
	k := f.K
	if k > len(cands) {
		k = len(cands)
	}
	top := cands[:k]

	filled := make([]model.Output, len(outs))
	for mi := range outs {
		if present.Contains(mi) {
			filled[mi] = outs[mi]
			continue
		}
		dim := len(f.bank[0].Outputs[mi].Probs)
		probs := make([]float64, dim)
		var totalW float64
		for _, c := range top {
			w := 1 / (c.dist + 1e-6)
			totalW += w
			for ci, p := range f.bank[c.idx].Outputs[mi].Probs {
				probs[ci] += w * p
			}
		}
		for ci := range probs {
			probs[ci] /= totalW
		}
		filled[mi] = model.Output{Probs: probs}
	}
	return filled
}

// Uniform fills missing classification outputs with the uniform
// distribution — the trivial baseline the KNN filler is compared against in
// the abl-fill ablation.
type Uniform struct {
	Classes int
}

// Name implements ensemble.Filler.
func (u *Uniform) Name() string { return "uniform" }

// Fill implements ensemble.Filler.
func (u *Uniform) Fill(outs []model.Output, present ensemble.Subset) []model.Output {
	filled := make([]model.Output, len(outs))
	flat := make([]float64, u.Classes)
	for c := range flat {
		flat[c] = 1 / float64(u.Classes)
	}
	for k := range outs {
		if present.Contains(k) {
			filled[k] = outs[k]
		} else {
			filled[k] = model.Output{Probs: append([]float64(nil), flat...)}
		}
	}
	return filled
}

// MeanOfPresent fills missing outputs with the mean of the executed ones —
// a second ablation baseline that, unlike Uniform, at least carries the
// query's signal.
type MeanOfPresent struct{}

// Name implements ensemble.Filler.
func (MeanOfPresent) Name() string { return "mean-of-present" }

// Fill implements ensemble.Filler.
func (MeanOfPresent) Fill(outs []model.Output, present ensemble.Subset) []model.Output {
	var dim, n int
	for k := range outs {
		if present.Contains(k) {
			dim = len(outs[k].Probs)
			n++
		}
	}
	mean := make([]float64, dim)
	for k := range outs {
		if present.Contains(k) {
			for c, p := range outs[k].Probs {
				mean[c] += p
			}
		}
	}
	for c := range mean {
		mean[c] /= float64(n)
	}
	filled := make([]model.Output, len(outs))
	for k := range outs {
		if present.Contains(k) {
			filled[k] = outs[k]
		} else {
			filled[k] = model.Output{Probs: append([]float64(nil), mean...)}
		}
	}
	return filled
}

// BankFromOutputs wraps precomputed full base-model outputs (one row per
// historical sample) into the record bank the KNN filler searches.
func BankFromOutputs(all [][]model.Output) []Record {
	recs := make([]Record, len(all))
	for i, outs := range all {
		recs[i] = Record{Outputs: outs}
	}
	return recs
}
