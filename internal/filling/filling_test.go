package filling

import (
	"math"
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/model"
)

// buildBank precomputes full outputs on a small text-matching dataset.
func buildBank(t *testing.T, n int) ([]Record, []model.Model, *dataset.Dataset) {
	t.Helper()
	ds := dataset.TextMatching(dataset.Config{N: n, Seed: 20})
	models := model.TextMatchingModels(21)
	var all [][]model.Output
	for _, s := range ds.Samples {
		outs := make([]model.Output, len(models))
		for k, m := range models {
			outs[k] = m.Predict(s)
		}
		all = append(all, outs)
	}
	return BankFromOutputs(all), models, ds
}

func TestKNNPreservesPresent(t *testing.T) {
	bank, models, ds := buildBank(t, 200)
	f := NewKNN(5, bank)
	s := ds.Samples[0]
	outs := []model.Output{models[0].Predict(s), {}, {}}
	present := ensemble.Single(0)
	filled := f.Fill(outs, present)
	for c := range outs[0].Probs {
		if filled[0].Probs[c] != outs[0].Probs[c] {
			t.Fatal("KNN modified a present output")
		}
	}
	for k := 1; k < 3; k++ {
		if len(filled[k].Probs) != 2 {
			t.Fatalf("model %d not filled", k)
		}
		var sum float64
		for _, p := range filled[k].Probs {
			if p < 0 || p > 1 {
				t.Fatalf("filled prob out of range: %v", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("filled probs sum to %v", sum)
		}
	}
}

func TestKNNExactMatchRecovers(t *testing.T) {
	// When the partial output exactly matches a bank record, k=1 filling
	// must return that record's missing outputs.
	bank, _, _ := buildBank(t, 100)
	f := NewKNN(1, bank)
	rec := bank[17]
	outs := []model.Output{rec.Outputs[0], {}, {}}
	filled := f.Fill(outs, ensemble.Single(0))
	for k := 1; k < 3; k++ {
		for c := range rec.Outputs[k].Probs {
			if math.Abs(filled[k].Probs[c]-rec.Outputs[k].Probs[c]) > 1e-6 {
				t.Fatalf("k=1 exact match did not recover record output (model %d)", k)
			}
		}
	}
}

func TestKNNIsBetterThanUniform(t *testing.T) {
	// Imputation error of KNN must beat the uniform filler on average.
	bank, models, ds := buildBank(t, 400)
	f := NewKNN(10, bank[:300])
	u := &Uniform{Classes: 2}
	var errKNN, errUni float64
	n := 0
	for _, s := range ds.Samples[300:] {
		truth := make([]model.Output, len(models))
		for k, m := range models {
			truth[k] = m.Predict(s)
		}
		outs := []model.Output{truth[0], {}, {}}
		present := ensemble.Single(0)
		fk := f.Fill(outs, present)
		fu := u.Fill(outs, present)
		for k := 1; k < 3; k++ {
			for c := range truth[k].Probs {
				dk := fk[k].Probs[c] - truth[k].Probs[c]
				du := fu[k].Probs[c] - truth[k].Probs[c]
				errKNN += dk * dk
				errUni += du * du
			}
		}
		n++
	}
	if errKNN >= errUni {
		t.Errorf("KNN imputation error %v not better than uniform %v", errKNN, errUni)
	}
}

func TestUniformFiller(t *testing.T) {
	u := &Uniform{Classes: 2}
	outs := []model.Output{{Probs: []float64{0.9, 0.1}}, {}}
	filled := u.Fill(outs, ensemble.Single(0))
	if filled[1].Probs[0] != 0.5 || filled[1].Probs[1] != 0.5 {
		t.Errorf("uniform fill = %v", filled[1].Probs)
	}
	if filled[0].Probs[0] != 0.9 {
		t.Error("uniform filler modified present output")
	}
}

func TestMeanOfPresentFiller(t *testing.T) {
	f := MeanOfPresent{}
	outs := []model.Output{
		{Probs: []float64{0.8, 0.2}},
		{Probs: []float64{0.6, 0.4}},
		{},
	}
	filled := f.Fill(outs, ensemble.Full(2)) // models 0,1 present
	if math.Abs(filled[2].Probs[0]-0.7) > 1e-12 {
		t.Errorf("mean fill = %v, want 0.7", filled[2].Probs[0])
	}
}

func TestKNNDefaultsAndPanics(t *testing.T) {
	bank, _, _ := buildBank(t, 20)
	f := NewKNN(0, bank)
	if f.K != 10 {
		t.Errorf("default K = %d, want 10", f.K)
	}
	// K larger than the bank clamps instead of panicking.
	big := NewKNN(1000, bank)
	outs := []model.Output{bank[0].Outputs[0], {}, {}}
	big.Fill(outs, ensemble.Single(0))

	defer func() {
		if recover() == nil {
			t.Error("empty bank did not panic")
		}
	}()
	NewKNN(5, nil)
}
