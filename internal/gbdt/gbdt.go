// Package gbdt implements gradient-boosted regression trees from scratch.
// It stands in for XGBoost as the stacking aggregation module of the text
// matching ensemble: depth-limited CART regression trees fit to gradients,
// with squared-error mode for regression and logistic mode for binary
// classification.
package gbdt

import (
	"math"
	"sort"

	"schemble/internal/mathx"
)

// Objective selects the boosting loss.
type Objective int

// Supported objectives.
const (
	// SquaredError boosts toward the raw targets; Predict returns the
	// accumulated score directly.
	SquaredError Objective = iota
	// Logistic boosts log-odds for binary targets in {0,1}; Predict
	// returns a probability.
	Logistic
)

// Config controls training.
type Config struct {
	Objective    Objective
	NumTrees     int
	MaxDepth     int
	LearningRate float64
	// MinSamplesLeaf bounds leaf size; defaults to 2.
	MinSamplesLeaf int
}

func (c *Config) fill() {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 2
	}
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature     int
	threshold   float64
	value       float64
	left, right *node
}

func (n *node) predict(x []float64) float64 {
	for n.feature >= 0 {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// Model is a trained boosted ensemble.
type Model struct {
	cfg   Config
	base  float64
	trees []*node
}

// Train fits a boosted tree model on xs/ys. For Logistic, ys must be 0/1.
func Train(cfg Config, xs [][]float64, ys []float64) *Model {
	cfg.fill()
	if len(xs) == 0 || len(xs) != len(ys) {
		panic("gbdt: empty or mismatched training data")
	}
	m := &Model{cfg: cfg}
	// Initial score: mean for squared error, log-odds of the base rate for
	// logistic.
	switch cfg.Objective {
	case SquaredError:
		m.base = mathx.Mean(ys)
	case Logistic:
		p := mathx.Clamp(mathx.Mean(ys), 1e-6, 1-1e-6)
		m.base = math.Log(p / (1 - p))
	}
	scores := make([]float64, len(ys))
	for i := range scores {
		scores[i] = m.base
	}
	grad := make([]float64, len(ys))
	idx := make([]int, len(ys))
	for i := range idx {
		idx[i] = i
	}
	for t := 0; t < cfg.NumTrees; t++ {
		// Negative gradient (residual) of the loss.
		switch cfg.Objective {
		case SquaredError:
			for i := range ys {
				grad[i] = ys[i] - scores[i]
			}
		case Logistic:
			for i := range ys {
				grad[i] = ys[i] - mathx.Sigmoid(scores[i])
			}
		}
		tree := buildTree(cfg, xs, grad, idx, cfg.MaxDepth)
		m.trees = append(m.trees, tree)
		for i := range scores {
			scores[i] += cfg.LearningRate * tree.predict(xs[i])
		}
	}
	return m
}

// buildTree fits one regression tree to targets over rows idx.
func buildTree(cfg Config, xs [][]float64, targets []float64, idx []int, depth int) *node {
	leafValue := func(rows []int) float64 {
		var s float64
		for _, r := range rows {
			s += targets[r]
		}
		return s / float64(len(rows))
	}
	if depth == 0 || len(idx) < 2*cfg.MinSamplesLeaf {
		return &node{feature: -1, value: leafValue(idx)}
	}
	feature, threshold, gain := bestSplit(cfg, xs, targets, idx)
	if gain <= 1e-12 {
		return &node{feature: -1, value: leafValue(idx)}
	}
	var left, right []int
	for _, r := range idx {
		if xs[r][feature] <= threshold {
			left = append(left, r)
		} else {
			right = append(right, r)
		}
	}
	if len(left) < cfg.MinSamplesLeaf || len(right) < cfg.MinSamplesLeaf {
		return &node{feature: -1, value: leafValue(idx)}
	}
	return &node{
		feature:   feature,
		threshold: threshold,
		left:      buildTree(cfg, xs, targets, left, depth-1),
		right:     buildTree(cfg, xs, targets, right, depth-1),
	}
}

// bestSplit scans all features for the variance-reducing split with the
// largest gain. Returns gain <= 0 when no valid split exists.
func bestSplit(cfg Config, xs [][]float64, targets []float64, idx []int) (feature int, threshold, gain float64) {
	nf := len(xs[idx[0]])
	var totalSum, totalSq float64
	for _, r := range idx {
		totalSum += targets[r]
		totalSq += targets[r] * targets[r]
	}
	n := float64(len(idx))
	parentSSE := totalSq - totalSum*totalSum/n

	feature = -1
	type pair struct{ x, y float64 }
	pairs := make([]pair, len(idx))
	for f := 0; f < nf; f++ {
		for i, r := range idx {
			pairs[i] = pair{xs[r][f], targets[r]}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].x < pairs[j].x })
		var leftSum, leftSq float64
		for i := 0; i < len(pairs)-1; i++ {
			leftSum += pairs[i].y
			leftSq += pairs[i].y * pairs[i].y
			//schemble:floateq-ok duplicate scan over stored feature values after sorting: a split threshold cannot separate bit-identical values
			if pairs[i].x == pairs[i+1].x {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < cfg.MinSamplesLeaf || int(nr) < cfg.MinSamplesLeaf {
				continue
			}
			rightSum := totalSum - leftSum
			rightSq := totalSq - leftSq
			sse := (leftSq - leftSum*leftSum/nl) + (rightSq - rightSum*rightSum/nr)
			if g := parentSSE - sse; g > gain {
				gain = g
				feature = f
				threshold = 0.5 * (pairs[i].x + pairs[i+1].x)
			}
		}
	}
	return feature, threshold, gain
}

// Score returns the raw boosted score for x (log-odds under Logistic).
func (m *Model) Score(x []float64) float64 {
	s := m.base
	for _, t := range m.trees {
		s += m.cfg.LearningRate * t.predict(x)
	}
	return s
}

// Predict returns the model's prediction: the raw score for SquaredError,
// a probability for Logistic.
func (m *Model) Predict(x []float64) float64 {
	s := m.Score(x)
	if m.cfg.Objective == Logistic {
		return mathx.Sigmoid(s)
	}
	return s
}

// NumTrees reports how many trees were fit.
func (m *Model) NumTrees() int { return len(m.trees) }
