package gbdt

import (
	"math"
	"testing"

	"schemble/internal/rng"
)

func TestRegressionFitsNonlinear(t *testing.T) {
	src := rng.New(1)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 500; i++ {
		x := src.Uniform(-3, 3)
		xs = append(xs, []float64{x})
		ys = append(ys, math.Sin(x)+0.1*src.Normal(0, 1))
	}
	m := Train(Config{Objective: SquaredError, NumTrees: 200, MaxDepth: 3, LearningRate: 0.1}, xs, ys)
	var sse float64
	for i := 0; i < 100; i++ {
		x := -3 + 6*float64(i)/99
		d := m.Predict([]float64{x}) - math.Sin(x)
		sse += d * d
	}
	if rmse := math.Sqrt(sse / 100); rmse > 0.15 {
		t.Errorf("sin RMSE = %v, want < 0.15", rmse)
	}
}

func TestLogisticSeparates(t *testing.T) {
	src := rng.New(2)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 400; i++ {
		x1 := src.Normal(0, 1)
		x2 := src.Normal(0, 1)
		label := 0.0
		// XOR-like pattern: needs tree interactions, linear can't do it.
		if (x1 > 0) != (x2 > 0) {
			label = 1
		}
		xs = append(xs, []float64{x1, x2})
		ys = append(ys, label)
	}
	m := Train(Config{Objective: Logistic, NumTrees: 100, MaxDepth: 3, LearningRate: 0.2}, xs, ys)
	correct := 0
	for i := range xs {
		p := m.Predict(xs[i])
		if (p > 0.5) == (ys[i] == 1) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Errorf("XOR accuracy = %v, want >= 0.95", acc)
	}
}

func TestLogisticOutputsProbabilities(t *testing.T) {
	src := rng.New(3)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := src.Normal(0, 1)
		xs = append(xs, []float64{x})
		label := 0.0
		if x > 0 {
			label = 1
		}
		ys = append(ys, label)
	}
	m := Train(Config{Objective: Logistic, NumTrees: 30}, xs, ys)
	for _, x := range xs {
		p := m.Predict(x)
		if p < 0 || p > 1 {
			t.Fatalf("probability out of range: %v", p)
		}
	}
}

func TestConstantTarget(t *testing.T) {
	xs := [][]float64{{1}, {2}, {3}, {4}}
	ys := []float64{5, 5, 5, 5}
	m := Train(Config{Objective: SquaredError, NumTrees: 10}, xs, ys)
	if got := m.Predict([]float64{2.5}); math.Abs(got-5) > 1e-9 {
		t.Errorf("constant prediction = %v, want 5", got)
	}
}

func TestDeterminism(t *testing.T) {
	src := rng.New(4)
	var xs [][]float64
	var ys []float64
	for i := 0; i < 50; i++ {
		x := src.Normal(0, 1)
		xs = append(xs, []float64{x, x * x})
		ys = append(ys, x*2+1)
	}
	a := Train(Config{NumTrees: 20}, xs, ys)
	b := Train(Config{NumTrees: 20}, xs, ys)
	for i := 0; i < 10; i++ {
		x := []float64{float64(i), float64(i * i)}
		if a.Predict(x) != b.Predict(x) {
			t.Fatal("training not deterministic")
		}
	}
}

func TestNumTreesAndPanics(t *testing.T) {
	m := Train(Config{NumTrees: 7}, [][]float64{{0}, {1}, {2}, {3}}, []float64{0, 1, 2, 3})
	if m.NumTrees() != 7 {
		t.Errorf("NumTrees = %d, want 7", m.NumTrees())
	}
	defer func() {
		if recover() == nil {
			t.Error("empty training set did not panic")
		}
	}()
	Train(Config{}, nil, nil)
}

func TestDepthOneIsStump(t *testing.T) {
	// Depth-1 trees can fit a single-threshold step function exactly.
	var xs [][]float64
	var ys []float64
	for i := 0; i < 100; i++ {
		x := float64(i)
		xs = append(xs, []float64{x})
		if x < 50 {
			ys = append(ys, 0)
		} else {
			ys = append(ys, 10)
		}
	}
	m := Train(Config{Objective: SquaredError, NumTrees: 50, MaxDepth: 1, LearningRate: 0.5}, xs, ys)
	if p := m.Predict([]float64{10}); math.Abs(p) > 0.5 {
		t.Errorf("low side = %v, want ~0", p)
	}
	if p := m.Predict([]float64{90}); math.Abs(p-10) > 0.5 {
		t.Errorf("high side = %v, want ~10", p)
	}
}
