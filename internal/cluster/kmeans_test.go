package cluster

import (
	"errors"
	"testing"

	"schemble/internal/rng"
)

// blobs generates n points around each of the given centers.
func blobs(src *rng.Source, centers [][]float64, n int, spread float64) ([][]float64, []int) {
	var points [][]float64
	var labels []int
	for c, center := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(center))
			for d := range p {
				p[d] = src.Normal(center[d], spread)
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

// mustFit is the test helper for inputs that must fit cleanly.
func mustFit(t *testing.T, points [][]float64, k, maxIter int, src *rng.Source) *KMeans {
	t.Helper()
	km, err := Fit(points, k, maxIter, src)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	return km
}

func TestSeparatesBlobs(t *testing.T) {
	src := rng.New(1)
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	points, labels := blobs(src, centers, 100, 0.8)
	km := mustFit(t, points, 3, 50, src)

	// Every ground-truth blob should map (almost) entirely to one cluster.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		total := 0
		for i, p := range points {
			if labels[i] != c {
				continue
			}
			counts[km.Assign(p)]++
			total++
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		if purity := float64(best) / float64(total); purity < 0.98 {
			t.Errorf("blob %d purity = %v, want >= 0.98", c, purity)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	src := rng.New(2)
	points, _ := blobs(src, [][]float64{{0, 0}, {5, 5}}, 100, 1.0)
	i1 := mustFit(t, points, 1, 30, rng.New(3)).Inertia(points)
	i2 := mustFit(t, points, 2, 30, rng.New(3)).Inertia(points)
	i4 := mustFit(t, points, 4, 30, rng.New(3)).Inertia(points)
	if !(i1 > i2 && i2 >= i4) {
		t.Errorf("inertia not decreasing: k1=%v k2=%v k4=%v", i1, i2, i4)
	}
}

func TestKGreaterThanPoints(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	km := mustFit(t, points, 10, 10, rng.New(4))
	if km.K() != 3 {
		t.Errorf("K = %d, want 3", km.K())
	}
	if km.Inertia(points) != 0 {
		t.Errorf("inertia = %v, want 0", km.Inertia(points))
	}
}

func TestAssignNearest(t *testing.T) {
	km := &KMeans{Centroids: [][]float64{{0, 0}, {10, 10}}}
	if c := km.Assign([]float64{1, 1}); c != 0 {
		t.Errorf("Assign near origin = %d, want 0", c)
	}
	if c := km.Assign([]float64{9, 9}); c != 1 {
		t.Errorf("Assign near (10,10) = %d, want 1", c)
	}
}

func TestDeterminism(t *testing.T) {
	src := rng.New(5)
	points, _ := blobs(src, [][]float64{{0, 0}, {6, 6}}, 50, 1.0)
	a := mustFit(t, points, 2, 30, rng.New(6))
	b := mustFit(t, points, 2, 30, rng.New(6))
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatal("k-means not deterministic under fixed seed")
			}
		}
	}
}

// TestDegenerateInput pins the replacement of the old panics: empty input
// is a typed error, out-of-range k is clamped, and dimension mismatches
// are rejected at the Fit boundary.
func TestDegenerateInput(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	tests := []struct {
		name    string
		points  [][]float64
		k       int
		wantErr bool
		wantK   int
	}{
		{name: "nil points", points: nil, k: 2, wantErr: true},
		{name: "empty points", points: [][]float64{}, k: 2, wantErr: true},
		{name: "k=0 clamps to 1", points: pts, k: 0, wantK: 1},
		{name: "negative k clamps to 1", points: pts, k: -7, wantK: 1},
		{name: "k beyond points clamps", points: pts, k: 10, wantK: 3},
		{name: "single point", points: [][]float64{{4}}, k: 3, wantK: 1},
		{name: "dim mismatch", points: [][]float64{{0, 0}, {1}}, k: 1, wantErr: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			km, err := Fit(tc.points, tc.k, 10, rng.New(9))
			if tc.wantErr {
				if err == nil {
					t.Fatalf("Fit(%s) err = nil, want error", tc.name)
				}
				if len(tc.points) == 0 && !errors.Is(err, ErrNoPoints) {
					t.Errorf("empty input err = %v, want ErrNoPoints", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Fit: %v", err)
			}
			if km.K() != tc.wantK {
				t.Errorf("K = %d, want %d", km.K(), tc.wantK)
			}
			for _, p := range tc.points {
				if c := km.Assign(p); c < 0 || c >= km.K() {
					t.Errorf("Assign(%v) = %d out of range [0,%d)", p, c, km.K())
				}
			}
		})
	}
}

// TestDuplicatePointsDistinctCentroids pins the seedPlusPlus fix: when
// the input holds fewer distinct points than k, Fit returns fewer,
// pairwise-distinct centroids instead of duplicating one.
func TestDuplicatePointsDistinctCentroids(t *testing.T) {
	var points [][]float64
	for i := 0; i < 5; i++ {
		points = append(points, []float64{1, 2})
		points = append(points, []float64{3, 4})
	}
	for _, k := range []int{2, 3, 4, 20} {
		km := mustFit(t, points, k, 10, rng.New(11))
		if km.K() > 2 {
			t.Fatalf("k=%d: K = %d, want <= 2 (only 2 distinct points)", k, km.K())
		}
		for i := 0; i < km.K(); i++ {
			for j := i + 1; j < km.K(); j++ {
				if samePoint(km.Centroids[i], km.Centroids[j]) {
					t.Errorf("k=%d: centroids %d and %d are duplicates: %v", k, i, j, km.Centroids[i])
				}
			}
		}
		// Assign must stay within the reduced k.
		for _, p := range points {
			if c := km.Assign(p); c < 0 || c >= km.K() {
				t.Errorf("k=%d: Assign(%v) = %d out of range [0,%d)", k, p, c, km.K())
			}
		}
	}
}

// TestAllIdenticalPoints is the fully degenerate duplicate case: one
// distinct point, any k.
func TestAllIdenticalPoints(t *testing.T) {
	points := [][]float64{{7, 7}, {7, 7}, {7, 7}, {7, 7}}
	km := mustFit(t, points, 3, 10, rng.New(12))
	if km.K() != 1 {
		t.Errorf("K = %d, want 1", km.K())
	}
	if km.Inertia(points) != 0 {
		t.Errorf("inertia = %v, want 0", km.Inertia(points))
	}
}

// TestAssignDimMismatchPanics pins the sqDist mislabeling fix: a point
// from a different feature space must fail loudly, never silently map to
// a centroid (cache keys must not alias across feature spaces).
func TestAssignDimMismatchPanics(t *testing.T) {
	km := mustFit(t, [][]float64{{0, 0}, {10, 10}}, 2, 10, rng.New(13))
	for name, p := range map[string][]float64{
		"short": {1},
		"long":  {1, 2, 3},
		"empty": {},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Assign(%s dim) did not panic", name)
				}
			}()
			km.Assign(p)
		}()
	}
}
