package cluster

import (
	"testing"

	"schemble/internal/rng"
)

// blobs generates n points around each of the given centers.
func blobs(src *rng.Source, centers [][]float64, n int, spread float64) ([][]float64, []int) {
	var points [][]float64
	var labels []int
	for c, center := range centers {
		for i := 0; i < n; i++ {
			p := make([]float64, len(center))
			for d := range p {
				p[d] = src.Normal(center[d], spread)
			}
			points = append(points, p)
			labels = append(labels, c)
		}
	}
	return points, labels
}

func TestSeparatesBlobs(t *testing.T) {
	src := rng.New(1)
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	points, labels := blobs(src, centers, 100, 0.8)
	km := Fit(points, 3, 50, src)

	// Every ground-truth blob should map (almost) entirely to one cluster.
	for c := 0; c < 3; c++ {
		counts := map[int]int{}
		total := 0
		for i, p := range points {
			if labels[i] != c {
				continue
			}
			counts[km.Assign(p)]++
			total++
		}
		best := 0
		for _, v := range counts {
			if v > best {
				best = v
			}
		}
		if purity := float64(best) / float64(total); purity < 0.98 {
			t.Errorf("blob %d purity = %v, want >= 0.98", c, purity)
		}
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	src := rng.New(2)
	points, _ := blobs(src, [][]float64{{0, 0}, {5, 5}}, 100, 1.0)
	i1 := Fit(points, 1, 30, rng.New(3)).Inertia(points)
	i2 := Fit(points, 2, 30, rng.New(3)).Inertia(points)
	i4 := Fit(points, 4, 30, rng.New(3)).Inertia(points)
	if !(i1 > i2 && i2 >= i4) {
		t.Errorf("inertia not decreasing: k1=%v k2=%v k4=%v", i1, i2, i4)
	}
}

func TestKGreaterThanPoints(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	km := Fit(points, 10, 10, rng.New(4))
	if km.K() != 3 {
		t.Errorf("K = %d, want 3", km.K())
	}
	if km.Inertia(points) != 0 {
		t.Errorf("inertia = %v, want 0", km.Inertia(points))
	}
}

func TestAssignNearest(t *testing.T) {
	km := &KMeans{Centroids: [][]float64{{0, 0}, {10, 10}}}
	if c := km.Assign([]float64{1, 1}); c != 0 {
		t.Errorf("Assign near origin = %d, want 0", c)
	}
	if c := km.Assign([]float64{9, 9}); c != 1 {
		t.Errorf("Assign near (10,10) = %d, want 1", c)
	}
}

func TestDeterminism(t *testing.T) {
	src := rng.New(5)
	points, _ := blobs(src, [][]float64{{0, 0}, {6, 6}}, 50, 1.0)
	a := Fit(points, 2, 30, rng.New(6))
	b := Fit(points, 2, 30, rng.New(6))
	for i := range a.Centroids {
		for d := range a.Centroids[i] {
			if a.Centroids[i][d] != b.Centroids[i][d] {
				t.Fatal("k-means not deterministic under fixed seed")
			}
		}
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"k=0":       func() { Fit([][]float64{{1}}, 0, 10, rng.New(1)) },
		"no points": func() { Fit(nil, 2, 10, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
