// Package cluster provides k-means clustering with k-means++ seeding. The
// DES baseline (dynamic ensemble selection) uses it to partition the input
// space into competence regions, as the DES literature prescribes.
package cluster

import (
	"math"

	"schemble/internal/rng"
)

// KMeans holds fitted cluster centroids.
type KMeans struct {
	Centroids [][]float64
}

// Fit runs k-means with k-means++ initialization on points, for at most
// maxIter Lloyd iterations (20 if maxIter <= 0). It panics when k <= 0 or
// points is empty; when k >= len(points) every point becomes its own
// centroid.
func Fit(points [][]float64, k, maxIter int, src *rng.Source) *KMeans {
	if k <= 0 {
		panic("cluster: k must be positive")
	}
	if len(points) == 0 {
		panic("cluster: no points")
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	if k >= len(points) {
		km := &KMeans{}
		for _, p := range points {
			km.Centroids = append(km.Centroids, append([]float64(nil), p...))
		}
		return km
	}
	dim := len(points[0])
	centroids := seedPlusPlus(points, k, src)
	assign := make([]int, len(points))
	counts := make([]int, k)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			c := nearest(centroids, p)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centroids {
			counts[c] = 0
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centroids[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], points[src.Intn(len(points))])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	return &KMeans{Centroids: centroids}
}

// seedPlusPlus picks k initial centroids with D^2 weighting.
func seedPlusPlus(points [][]float64, k int, src *rng.Source) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[src.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := sqDist(p, centroids[nearest(centroids, p)])
			d2[i] = d
			total += d
		}
		var pick int
		//schemble:floateq-ok total sums non-negative distances; it is exactly 0 only when every point coincides with a centroid
		if total == 0 {
			pick = src.Intn(len(points))
		} else {
			r := src.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if cum >= r {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func nearest(centroids [][]float64, p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := sqDist(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Assign returns the index of the centroid closest to p.
func (km *KMeans) Assign(p []float64) int { return nearest(km.Centroids, p) }

// K returns the number of clusters.
func (km *KMeans) K() int { return len(km.Centroids) }

// Inertia returns the total within-cluster squared distance of points.
func (km *KMeans) Inertia(points [][]float64) float64 {
	var s float64
	for _, p := range points {
		s += sqDist(p, km.Centroids[km.Assign(p)])
	}
	return s
}
