// Package cluster provides k-means clustering with k-means++ seeding. The
// DES baseline (dynamic ensemble selection) uses it to partition the input
// space into competence regions, and internal/rcache keys its result cache
// on centroid assignments — which is why Fit must never emit duplicate
// centroids and Assign must never silently mislabel a point from a
// different feature space.
package cluster

import (
	"errors"
	"fmt"
	"math"

	"schemble/internal/rng"
)

// ErrNoPoints is returned by Fit when the input is empty: there is nothing
// to seed a centroid from.
var ErrNoPoints = errors.New("cluster: no points")

// KMeans holds fitted cluster centroids.
type KMeans struct {
	Centroids [][]float64
}

// Fit runs k-means with k-means++ initialization on points, for at most
// maxIter Lloyd iterations (20 if maxIter <= 0). k is clamped to
// [1, len(points)]; an empty input returns ErrNoPoints and a
// dimension-mismatched point returns an error naming the offender. The
// fitted model may hold fewer than k centroids when the input has fewer
// than k distinct points — centroids are always pairwise distinct, so
// K() and Assign stay consistent with the reduced count.
func Fit(points [][]float64, k, maxIter int, src *rng.Source) (*KMeans, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if k < 1 {
		k = 1
	}
	if k > len(points) {
		k = len(points)
	}
	if maxIter <= 0 {
		maxIter = 20
	}
	if k == len(points) {
		// Every distinct point becomes its own centroid; duplicates
		// collapse so no two centroids alias the same cache key.
		km := &KMeans{}
		for _, p := range points {
			dup := false
			for _, c := range km.Centroids {
				if samePoint(c, p) {
					dup = true
					break
				}
			}
			if !dup {
				km.Centroids = append(km.Centroids, append([]float64(nil), p...))
			}
		}
		return km, nil
	}
	centroids := seedPlusPlus(points, k, src)
	assign := make([]int, len(points))
	counts := make([]int, len(centroids))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			c := nearest(centroids, p)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centroids {
			counts[c] = 0
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centroids[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centroids[c], points[src.Intn(len(points))])
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	return &KMeans{Centroids: centroids}, nil
}

// seedPlusPlus picks up to k initial centroids with D^2 weighting. When
// every remaining point coincides with an existing centroid it stops
// early and returns fewer, pairwise-distinct centroids rather than
// re-picking an already-chosen point.
func seedPlusPlus(points [][]float64, k int, src *rng.Source) [][]float64 {
	centroids := make([][]float64, 0, k)
	first := points[src.Intn(len(points))]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			d := sqDist(p, centroids[nearest(centroids, p)])
			d2[i] = d
			total += d
		}
		//schemble:floateq-ok total sums non-negative distances; it is exactly 0 only when every point coincides with a centroid
		if total == 0 {
			break
		}
		r := src.Float64() * total
		pick := -1
		var cum float64
		for i, d := range d2 {
			if d <= 0 {
				// Zero-distance points duplicate an existing centroid;
				// they carry no weight and must never be picked (r may be
				// exactly 0).
				continue
			}
			cum += d
			if cum >= r {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Float round-off left cum just under r: take the farthest point.
			best := 0.0
			for i, d := range d2 {
				if d > best {
					best, pick = d, i
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[pick]...))
	}
	return centroids
}

// samePoint reports exact coordinate equality.
func samePoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		//schemble:floateq-ok duplicate-centroid detection: only bitwise-equal points collapse into one centroid
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func nearest(centroids [][]float64, p []float64) int {
	best, bestD := 0, math.Inf(1)
	for c, cent := range centroids {
		if d := sqDist(p, cent); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

// Assign returns the index of the centroid closest to p. It panics when
// p's dimensionality differs from the fitted space: sqDist ranges over
// the shorter vector, so a mismatched point would be silently mislabeled
// — and, used as a cache key, would alias across feature spaces.
func (km *KMeans) Assign(p []float64) int {
	if len(p) != km.Dim() {
		panic(fmt.Sprintf("cluster: Assign called with dim %d, fitted dim is %d", len(p), km.Dim()))
	}
	return nearest(km.Centroids, p)
}

// K returns the number of clusters.
func (km *KMeans) K() int { return len(km.Centroids) }

// Dim returns the dimensionality of the fitted feature space (0 for an
// empty model).
func (km *KMeans) Dim() int {
	if len(km.Centroids) == 0 {
		return 0
	}
	return len(km.Centroids[0])
}

// Inertia returns the total within-cluster squared distance of points.
func (km *KMeans) Inertia(points [][]float64) float64 {
	var s float64
	for _, p := range points {
		s += sqDist(p, km.Centroids[km.Assign(p)])
	}
	return s
}
