package ensemble

import (
	"math"
	"sort"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// Scorer measures how well a (possibly partial-subset) prediction agrees
// with a reference output — in this repository the reference is always the
// full ensemble's output, per the paper's evaluation convention. Scores are
// in [0,1]: binary agreement for classification and regression, average
// precision for retrieval (so a set mean is the mAP).
type Scorer struct {
	Task dataset.Task
	// Tol is the regression agreement tolerance.
	Tol float64
	// Gallery is the retrieval corpus; TopK reference items form the
	// relevant set (default 10).
	Gallery [][]float64
	TopK    int
}

// NewScorer builds the scorer matching ds.
func NewScorer(ds *dataset.Dataset) *Scorer {
	return &Scorer{Task: ds.Task, Tol: ds.Tol, Gallery: ds.Gallery, TopK: 10}
}

// Score returns the agreement of pred with ref.
func (sc *Scorer) Score(pred, ref model.Output) float64 {
	switch sc.Task {
	case dataset.Classification:
		if mathx.ArgMax(pred.Probs) == mathx.ArgMax(ref.Probs) {
			return 1
		}
		return 0
	case dataset.Regression:
		tol := sc.Tol
		//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
		if tol == 0 {
			tol = 1
		}
		if math.Abs(pred.Value-ref.Value) <= tol {
			return 1
		}
		return 0
	case dataset.Retrieval:
		return sc.averagePrecision(pred.Embedding, ref.Embedding)
	default:
		panic("ensemble: unknown task")
	}
}

// Rank returns gallery indices sorted by descending cosine similarity to
// emb.
func (sc *Scorer) Rank(emb []float64) []int {
	idx := make([]int, len(sc.Gallery))
	sims := make([]float64, len(sc.Gallery))
	for i, g := range sc.Gallery {
		idx[i] = i
		sims[i] = mathx.CosineSim(emb, g)
	}
	sort.Slice(idx, func(a, b int) bool { return sims[idx[a]] > sims[idx[b]] })
	return idx
}

// averagePrecision treats the reference embedding's top-K gallery items as
// the relevant set and computes the AP of the predicted embedding's
// ranking over it.
func (sc *Scorer) averagePrecision(pred, ref []float64) float64 {
	k := sc.TopK
	if k <= 0 {
		k = 10
	}
	if k > len(sc.Gallery) {
		k = len(sc.Gallery)
	}
	refRank := sc.Rank(ref)
	relevant := make(map[int]bool, k)
	for _, g := range refRank[:k] {
		relevant[g] = true
	}
	predRank := sc.Rank(pred)
	var hits, sum float64
	for pos, g := range predRank {
		if relevant[g] {
			hits++
			sum += hits / float64(pos+1)
		}
		if int(hits) == k {
			break
		}
	}
	return sum / float64(k)
}

// MeanScore returns the average agreement of preds against refs; for
// retrieval this is the mAP.
func (sc *Scorer) MeanScore(preds, refs []model.Output) float64 {
	if len(preds) != len(refs) {
		panic("ensemble: MeanScore length mismatch")
	}
	var s float64
	for i := range preds {
		s += sc.Score(preds[i], refs[i])
	}
	return s / float64(len(preds))
}
