package ensemble

import (
	"math"
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

func TestMedianBasic(t *testing.T) {
	md := &Median{}
	outs := []model.Output{{Value: 1}, {Value: 100}, {Value: 3}}
	got := md.Aggregate(dataset.Regression, outs, Full(3)).Value
	if got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	// An outlier moves the mean but not the median.
	avg := (&Average{}).Aggregate(dataset.Regression, outs, Full(3)).Value
	if avg <= got {
		t.Errorf("outlier should inflate the mean (%v) above the median (%v)", avg, got)
	}
}

func TestMedianSubsetAndWeights(t *testing.T) {
	md := &Median{Weights: []float64{1, 1, 10}}
	outs := []model.Output{{Value: 1}, {Value: 2}, {Value: 9}}
	// Model 2's weight dominates: weighted median lands on 9.
	if got := md.Aggregate(dataset.Regression, outs, Full(3)).Value; got != 9 {
		t.Errorf("weighted median = %v, want 9", got)
	}
	// Dropping model 2 reverts to the small values.
	if got := md.Aggregate(dataset.Regression, outs, Full(2)).Value; got > 2 {
		t.Errorf("subset median = %v", got)
	}
	// Singleton median is the value itself.
	if got := md.Aggregate(dataset.Regression, outs, Single(1)).Value; got != 2 {
		t.Errorf("singleton median = %v", got)
	}
}

func TestMedianPanics(t *testing.T) {
	md := &Median{}
	for name, f := range map[string]func(){
		"wrong task": func() {
			md.Aggregate(dataset.Classification, []model.Output{{Probs: []float64{1, 0}}}, Single(0))
		},
		"empty": func() { md.Aggregate(dataset.Regression, []model.Output{{Value: 1}}, Empty) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRankFusionAgreesWithEmbeddingOnCleanInput(t *testing.T) {
	ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
		Config: dataset.Config{N: 50, Seed: 33}, GallerySize: 200, EmbDim: 8})
	rf := &RankFusion{Gallery: ds.Gallery}
	sc := NewScorer(ds)
	// Fusing two copies of the true embedding must rank (nearly) like the
	// true embedding itself.
	var apSum float64
	for _, s := range ds.Samples[:20] {
		outs := []model.Output{
			{Embedding: s.Embedding},
			{Embedding: s.Embedding},
		}
		fused := rf.Aggregate(dataset.Retrieval, outs, Full(2))
		if math.Abs(mathx.Norm2(fused.Embedding)-1) > 1e-9 {
			t.Fatal("fused embedding not unit norm")
		}
		apSum += sc.Score(fused, model.Output{Embedding: s.Embedding})
	}
	if ap := apSum / 20; ap < 0.8 {
		t.Errorf("clean-input RRF mAP = %v, want high", ap)
	}
}

func TestRankFusionBeatsWorstModel(t *testing.T) {
	ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
		Config: dataset.Config{N: 120, Seed: 34}, GallerySize: 250, EmbDim: 8})
	models := model.ImageRetrievalModels(35, 8)
	rf := &RankFusion{Gallery: ds.Gallery}
	sc := NewScorer(ds)
	var fusedAP, weakAP float64
	for _, s := range ds.Samples {
		outs := []model.Output{models[0].Predict(s), models[1].Predict(s)}
		ref := model.Output{Embedding: s.Embedding}
		fused := rf.Aggregate(dataset.Retrieval, outs, Full(2))
		fusedAP += sc.Score(fused, ref)
		weakAP += sc.Score(outs[0], ref)
	}
	if fusedAP <= weakAP {
		t.Errorf("RRF fusion (%v) should beat the weak model alone (%v)", fusedAP, weakAP)
	}
}

func TestRankFusionSubset(t *testing.T) {
	ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
		Config: dataset.Config{N: 10, Seed: 36}, GallerySize: 100, EmbDim: 8})
	rf := &RankFusion{Gallery: ds.Gallery}
	s := ds.Samples[0]
	outs := []model.Output{
		{Embedding: s.Embedding},
		{Embedding: ds.Samples[1].Embedding}, // unrelated
	}
	// Fusing only model 0 must ignore model 1's embedding entirely.
	only0 := rf.Aggregate(dataset.Retrieval, outs, Single(0))
	both := rf.Aggregate(dataset.Retrieval, outs, Full(2))
	if mathx.CosineSim(only0.Embedding, s.Embedding) <=
		mathx.CosineSim(both.Embedding, s.Embedding)-1e-9 {
		t.Error("restricting to the clean model should not hurt similarity")
	}
}

func TestRankFusionPanics(t *testing.T) {
	rf := &RankFusion{}
	defer func() {
		if recover() == nil {
			t.Error("missing gallery did not panic")
		}
	}()
	rf.Aggregate(dataset.Retrieval, []model.Output{{Embedding: []float64{1}}}, Single(0))
}
