package ensemble

import (
	"sort"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// Median aggregates regression outputs by their (weighted) median — more
// robust to a single wildly-wrong detector than averaging, which matters
// for count regression where occlusion can make one model double-count.
// Missing models simply drop out of the median.
type Median struct {
	Weights []float64
}

// Name implements Aggregator.
func (md *Median) Name() string { return "median" }

func (md *Median) weightOf(k int) float64 {
	if md.Weights == nil {
		return 1
	}
	return md.Weights[k]
}

// Aggregate implements Aggregator.
func (md *Median) Aggregate(task dataset.Task, outs []model.Output, present Subset) model.Output {
	if task != dataset.Regression {
		panic("ensemble: Median supports regression only")
	}
	type wv struct{ v, w float64 }
	var vals []wv
	var totalW float64
	for k := range outs {
		if !present.Contains(k) {
			continue
		}
		w := md.weightOf(k)
		vals = append(vals, wv{outs[k].Value, w})
		totalW += w
	}
	if len(vals) == 0 {
		panic("ensemble: median over empty subset")
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
	// Weighted median: smallest value whose cumulative weight reaches
	// half the total.
	var cum float64
	for _, x := range vals {
		cum += x.w
		if cum >= totalW/2 {
			return model.Output{Value: x.v}
		}
	}
	return model.Output{Value: vals[len(vals)-1].v}
}

// RankFusion aggregates retrieval outputs by reciprocal-rank fusion over a
// shared gallery instead of averaging embeddings: each present model ranks
// the gallery, items earn 1/(K + rank) from every model, and the fused
// "embedding" is the weighted centroid of the top-fused gallery items.
// RRF is the standard late-fusion alternative the retrieval literature
// recommends when embedding spaces are not perfectly aligned.
type RankFusion struct {
	// Gallery is the corpus all models rank.
	Gallery [][]float64
	// K is the RRF smoothing constant (default 60, the literature's
	// standard value).
	K int
	// TopM is how many fused items form the output centroid (default 10).
	TopM int
}

// Name implements Aggregator.
func (rf *RankFusion) Name() string { return "rankfusion" }

// Aggregate implements Aggregator.
func (rf *RankFusion) Aggregate(task dataset.Task, outs []model.Output, present Subset) model.Output {
	if task != dataset.Retrieval {
		panic("ensemble: RankFusion supports retrieval only")
	}
	if len(rf.Gallery) == 0 {
		panic("ensemble: RankFusion requires a gallery")
	}
	k := rf.K
	if k <= 0 {
		k = 60
	}
	topM := rf.TopM
	if topM <= 0 {
		topM = 10
	}
	if topM > len(rf.Gallery) {
		topM = len(rf.Gallery)
	}
	scores := make([]float64, len(rf.Gallery))
	idx := make([]int, len(rf.Gallery))
	sims := make([]float64, len(rf.Gallery))
	for mi := range outs {
		if !present.Contains(mi) {
			continue
		}
		emb := outs[mi].Embedding
		for g := range rf.Gallery {
			idx[g] = g
			sims[g] = mathx.CosineSim(emb, rf.Gallery[g])
		}
		sort.Slice(idx, func(a, b int) bool { return sims[idx[a]] > sims[idx[b]] })
		for rank, g := range idx {
			scores[g] += 1 / float64(k+rank+1)
		}
	}
	// Fused output: score-weighted centroid of the top fused items,
	// renormalized — comparable to an embedding for downstream AP.
	order := make([]int, len(rf.Gallery))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	dim := len(rf.Gallery[0])
	emb := make([]float64, dim)
	for _, g := range order[:topM] {
		w := scores[g]
		for d := 0; d < dim; d++ {
			emb[d] += w * rf.Gallery[g][d]
		}
	}
	if n := mathx.Norm2(emb); n > 0 {
		for d := range emb {
			emb[d] /= n
		}
	}
	return model.Output{Embedding: emb}
}
