package ensemble

import (
	"math"
	"testing"
	"testing/quick"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

func TestSubsetBasics(t *testing.T) {
	s := Single(0).With(2)
	if !s.Contains(0) || s.Contains(1) || !s.Contains(2) {
		t.Fatalf("membership wrong: %v", s)
	}
	if s.Size() != 2 {
		t.Errorf("Size = %d", s.Size())
	}
	if got := s.String(); got != "{0,2}" {
		t.Errorf("String = %q", got)
	}
	if s.Without(0) != Single(2) {
		t.Error("Without failed")
	}
	if !Single(1).IsSubsetOf(Full(3)) || Full(3).IsSubsetOf(Single(1)) {
		t.Error("IsSubsetOf wrong")
	}
	models := Full(3).Models()
	if len(models) != 3 || models[0] != 0 || models[2] != 2 {
		t.Errorf("Models = %v", models)
	}
}

func TestAllSubsets(t *testing.T) {
	subs := AllSubsets(3)
	if len(subs) != 7 {
		t.Fatalf("len = %d, want 7", len(subs))
	}
	seen := map[Subset]bool{}
	for _, s := range subs {
		if s == Empty {
			t.Fatal("AllSubsets contains the empty set")
		}
		seen[s] = true
	}
	if len(seen) != 7 {
		t.Error("duplicate subsets")
	}
	if got := len(SubsetsOfSize(4, 2)); got != 6 {
		t.Errorf("SubsetsOfSize(4,2) = %d, want 6", got)
	}
}

func TestSubsetProperties(t *testing.T) {
	f := func(raw uint16, k uint8) bool {
		s := Subset(raw)
		idx := int(k % MaxModels)
		return s.With(idx).Contains(idx) &&
			!s.Without(idx).Contains(idx) &&
			s.With(idx).Size() >= s.Size() &&
			s.IsSubsetOf(s.With(idx))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newTMEnsemble(agg Aggregator) (*Ensemble, *dataset.Dataset) {
	ds := dataset.TextMatching(dataset.Config{N: 800, Seed: 10})
	models := model.TextMatchingModels(11)
	return New(dataset.Classification, models, agg, nil), ds
}

func TestAverageClassification(t *testing.T) {
	e, ds := newTMEnsemble(&Average{})
	s := ds.Samples[0]
	out := e.PredictFull(s)
	if len(out.Probs) != 2 {
		t.Fatalf("probs len %d", len(out.Probs))
	}
	var sum float64
	for _, p := range out.Probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probs sum %v", sum)
	}
	// Averaging over a singleton equals the single model's output.
	single := e.PredictSubset(s, Single(1))
	want := e.Models[1].Predict(s)
	for c := range want.Probs {
		if math.Abs(single.Probs[c]-want.Probs[c]) > 1e-12 {
			t.Errorf("singleton average differs at class %d", c)
		}
	}
}

func TestEnsembleBeatsBaseModels(t *testing.T) {
	e, ds := newTMEnsemble(&Average{})
	correctFull, correctBest := 0, 0
	best := e.Models[2] // bert, strongest
	for _, s := range ds.Samples {
		if mathx.ArgMax(e.PredictFull(s).Probs) == s.Label {
			correctFull++
		}
		if mathx.ArgMax(best.Predict(s).Probs) == s.Label {
			correctBest++
		}
	}
	if correctFull <= correctBest-8 {
		t.Errorf("ensemble (%d) should be at least near the best base model (%d)",
			correctFull, correctBest)
	}
}

func TestVote(t *testing.T) {
	v := &Vote{}
	outs := []model.Output{
		{Probs: []float64{0.9, 0.1}},
		{Probs: []float64{0.8, 0.2}},
		{Probs: []float64{0.3, 0.7}},
	}
	out := v.Aggregate(dataset.Classification, outs, Full(3))
	if mathx.ArgMax(out.Probs) != 0 {
		t.Errorf("majority should be class 0: %v", out.Probs)
	}
	// Missing model 0: the two remaining split 1-1; summed probability
	// tie-break favors class 1 (0.2+0.7 > 0.8+0.3 is false -> class 0).
	out = v.Aggregate(dataset.Classification, outs, Full(3).Without(0))
	if mathx.ArgMax(out.Probs) != 0 {
		t.Errorf("tie-break should favor class 0: %v", out.Probs)
	}
}

func TestAverageRegression(t *testing.T) {
	agg := &Average{Weights: []float64{1, 3}}
	outs := []model.Output{{Value: 2}, {Value: 6}}
	got := agg.Aggregate(dataset.Regression, outs, Full(2)).Value
	if math.Abs(got-5) > 1e-12 { // (1*2+3*6)/4
		t.Errorf("weighted regression mean = %v, want 5", got)
	}
	// Dropping model 1 renormalizes onto model 0.
	got = agg.Aggregate(dataset.Regression, outs, Single(0)).Value
	if got != 2 {
		t.Errorf("renormalized mean = %v, want 2", got)
	}
}

func TestAverageRetrieval(t *testing.T) {
	agg := &Average{}
	outs := []model.Output{
		{Embedding: []float64{1, 0}},
		{Embedding: []float64{0, 1}},
	}
	emb := agg.Aggregate(dataset.Retrieval, outs, Full(2)).Embedding
	if math.Abs(mathx.Norm2(emb)-1) > 1e-9 {
		t.Errorf("aggregated embedding not unit norm: %v", emb)
	}
	if math.Abs(emb[0]-emb[1]) > 1e-9 {
		t.Errorf("should be diagonal: %v", emb)
	}
}

type constMeta struct{ p float64 }

func (c constMeta) Predict([]float64) float64 { return c.p }

type zeroFiller struct{}

func (zeroFiller) Name() string { return "zero" }
func (zeroFiller) Fill(outs []model.Output, present Subset) []model.Output {
	filled := make([]model.Output, len(outs))
	for k := range outs {
		if present.Contains(k) {
			filled[k] = outs[k]
		} else {
			filled[k] = model.Output{Probs: []float64{0.5, 0.5}}
		}
	}
	return filled
}

func TestStacking(t *testing.T) {
	st := &Stacking{Meta: constMeta{0.8}, Fill: zeroFiller{}, M: 3, Classes: 2}
	outs := []model.Output{
		{Probs: []float64{0.9, 0.1}},
		{Probs: []float64{0.8, 0.2}},
		{Probs: []float64{0.3, 0.7}},
	}
	out := st.Aggregate(dataset.Classification, outs, Full(3))
	if math.Abs(out.Probs[1]-0.8) > 1e-12 {
		t.Errorf("stacking P(1) = %v", out.Probs[1])
	}
	// Partial subset goes through the filler without panicking.
	out = st.Aggregate(dataset.Classification, outs, Single(0))
	if math.Abs(out.Probs[0]-0.2) > 1e-12 {
		t.Errorf("stacking P(0) = %v", out.Probs[0])
	}
	if got := st.Features(outs); len(got) != 6 {
		t.Errorf("feature len = %d, want 6", len(got))
	}
}

func TestStackingPartialWithoutFillerPanics(t *testing.T) {
	st := &Stacking{Meta: constMeta{0.5}, M: 2, Classes: 2}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	st.Aggregate(dataset.Classification,
		[]model.Output{{Probs: []float64{1, 0}}, {}}, Single(0))
}

func TestScorerClassification(t *testing.T) {
	sc := &Scorer{Task: dataset.Classification}
	a := model.Output{Probs: []float64{0.6, 0.4}}
	b := model.Output{Probs: []float64{0.9, 0.1}}
	c := model.Output{Probs: []float64{0.2, 0.8}}
	if sc.Score(a, b) != 1 || sc.Score(a, c) != 0 {
		t.Error("classification agreement wrong")
	}
}

func TestScorerRegression(t *testing.T) {
	sc := &Scorer{Task: dataset.Regression, Tol: 1}
	if sc.Score(model.Output{Value: 5}, model.Output{Value: 5.9}) != 1 {
		t.Error("within tolerance should agree")
	}
	if sc.Score(model.Output{Value: 5}, model.Output{Value: 7}) != 0 {
		t.Error("outside tolerance should disagree")
	}
}

func TestScorerRetrievalPerfectAndNoisy(t *testing.T) {
	ds := dataset.ImageRetrieval(dataset.RetrievalConfig{
		Config: dataset.Config{N: 30, Seed: 12}, GallerySize: 120, EmbDim: 8})
	sc := NewScorer(ds)
	ref := ds.Samples[0].Embedding
	if ap := sc.Score(model.Output{Embedding: ref}, model.Output{Embedding: ref}); math.Abs(ap-1) > 1e-9 {
		t.Errorf("identical embeddings AP = %v, want 1", ap)
	}
	// A heavily perturbed embedding should rank worse.
	noisy := append([]float64(nil), ref...)
	for d := range noisy {
		noisy[d] = -noisy[d]
	}
	if ap := sc.Score(model.Output{Embedding: noisy}, model.Output{Embedding: ref}); ap > 0.5 {
		t.Errorf("opposite embedding AP = %v, want low", ap)
	}
}

func TestMeanScore(t *testing.T) {
	sc := &Scorer{Task: dataset.Classification}
	preds := []model.Output{
		{Probs: []float64{0.9, 0.1}},
		{Probs: []float64{0.1, 0.9}},
	}
	refs := []model.Output{
		{Probs: []float64{0.8, 0.2}},
		{Probs: []float64{0.9, 0.1}},
	}
	if got := sc.MeanScore(preds, refs); got != 0.5 {
		t.Errorf("MeanScore = %v, want 0.5", got)
	}
}

func TestPredictEmptyPanics(t *testing.T) {
	e, ds := newTMEnsemble(&Average{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic on empty subset")
		}
	}()
	e.PredictSubset(ds.Samples[0], Empty)
}
