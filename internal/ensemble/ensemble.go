package ensemble

import (
	"fmt"

	"schemble/internal/dataset"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// Aggregator combines the outputs of a subset of base models into the
// ensemble's final output. outs has one entry per base model; only entries
// whose index is in present are valid. Implementations must tolerate any
// non-empty present set (that is what the missing-value-filling module
// guarantees them).
type Aggregator interface {
	Name() string
	Aggregate(task dataset.Task, outs []model.Output, present Subset) model.Output
}

// Ensemble is a deep ensemble: base models plus an aggregation module.
type Ensemble struct {
	Task    dataset.Task
	Models  []model.Model
	Agg     Aggregator
	Weights []float64 // per-model aggregation weights; nil means uniform
}

// New builds an ensemble over models with the given aggregator. Weights may
// be nil for uniform weighting.
func New(task dataset.Task, models []model.Model, agg Aggregator, weights []float64) *Ensemble {
	if len(models) == 0 || len(models) > MaxModels {
		panic("ensemble: unsupported ensemble size")
	}
	if weights != nil && len(weights) != len(models) {
		panic("ensemble: weights length mismatch")
	}
	return &Ensemble{Task: task, Models: models, Agg: agg, Weights: weights}
}

// M returns the ensemble size.
func (e *Ensemble) M() int { return len(e.Models) }

// FullSubset returns the subset containing every base model.
func (e *Ensemble) FullSubset() Subset { return Full(e.M()) }

// Outputs runs every base model on s and returns their outputs, indexed by
// model.
func (e *Ensemble) Outputs(s *dataset.Sample) []model.Output {
	outs := make([]model.Output, e.M())
	for k, m := range e.Models {
		outs[k] = m.Predict(s)
	}
	return outs
}

// OutputsSubset runs only the models in sub; other entries are zero.
func (e *Ensemble) OutputsSubset(s *dataset.Sample, sub Subset) []model.Output {
	outs := make([]model.Output, e.M())
	for k, m := range e.Models {
		if sub.Contains(k) {
			outs[k] = m.Predict(s)
		}
	}
	return outs
}

// Predict aggregates the given base outputs over the present subset.
func (e *Ensemble) Predict(outs []model.Output, present Subset) model.Output {
	if present == Empty {
		panic("ensemble: cannot aggregate the empty subset")
	}
	return e.Agg.Aggregate(e.Task, outs, present)
}

// PredictFull runs the complete ensemble on s.
func (e *Ensemble) PredictFull(s *dataset.Sample) model.Output {
	return e.Predict(e.Outputs(s), e.FullSubset())
}

// PredictSubset runs only the models in sub on s and aggregates them.
func (e *Ensemble) PredictSubset(s *dataset.Sample, sub Subset) model.Output {
	return e.Predict(e.OutputsSubset(s, sub), sub)
}

// Average is the (weighted) averaging aggregator: mean of probability
// vectors for classification, mean of point estimates for regression, and
// renormalized mean embedding for retrieval. Missing models' weights are
// redistributed over the present ones, which is exactly the paper's
// "set the weights of the missing outputs to 0 and reweight" rule.
type Average struct {
	// Weights mirror Ensemble.Weights; nil means uniform.
	Weights []float64
}

// Name implements Aggregator.
func (a *Average) Name() string { return "average" }

func (a *Average) weightOf(k int) float64 {
	if a.Weights == nil {
		return 1
	}
	return a.Weights[k]
}

// Aggregate implements Aggregator.
func (a *Average) Aggregate(task dataset.Task, outs []model.Output, present Subset) model.Output {
	var totalW float64
	for k := range outs {
		if present.Contains(k) {
			totalW += a.weightOf(k)
		}
	}
	//schemble:floateq-ok weights are set verbatim and non-negative; their sum is exactly 0 only when every weight is
	if totalW == 0 {
		panic("ensemble: aggregate over empty or zero-weight subset")
	}
	switch task {
	case dataset.Classification:
		var dim int
		for k := range outs {
			if present.Contains(k) {
				dim = len(outs[k].Probs)
				break
			}
		}
		probs := make([]float64, dim)
		for k := range outs {
			if !present.Contains(k) {
				continue
			}
			w := a.weightOf(k) / totalW
			for c, p := range outs[k].Probs {
				probs[c] += w * p
			}
		}
		return model.Output{Probs: probs}
	case dataset.Regression:
		var v float64
		for k := range outs {
			if present.Contains(k) {
				v += a.weightOf(k) / totalW * outs[k].Value
			}
		}
		return model.Output{Value: v}
	case dataset.Retrieval:
		var dim int
		for k := range outs {
			if present.Contains(k) {
				dim = len(outs[k].Embedding)
				break
			}
		}
		emb := make([]float64, dim)
		for k := range outs {
			if !present.Contains(k) {
				continue
			}
			w := a.weightOf(k) / totalW
			for d, x := range outs[k].Embedding {
				emb[d] += w * x
			}
		}
		if n := mathx.Norm2(emb); n > 0 {
			for d := range emb {
				emb[d] /= n
			}
		}
		return model.Output{Embedding: emb}
	default:
		panic(fmt.Sprintf("ensemble: unknown task %v", task))
	}
}

// Vote is the (weighted) majority-vote aggregator for classification.
// Missing models simply do not vote (the paper's rule for voting
// aggregation). The output distribution is the normalized vote histogram,
// with summed probabilities breaking ties.
type Vote struct {
	Weights []float64
}

// Name implements Aggregator.
func (v *Vote) Name() string { return "vote" }

func (v *Vote) weightOf(k int) float64 {
	if v.Weights == nil {
		return 1
	}
	return v.Weights[k]
}

// Aggregate implements Aggregator.
func (v *Vote) Aggregate(task dataset.Task, outs []model.Output, present Subset) model.Output {
	if task != dataset.Classification {
		panic("ensemble: Vote supports classification only")
	}
	var dim int
	for k := range outs {
		if present.Contains(k) {
			dim = len(outs[k].Probs)
			break
		}
	}
	votes := make([]float64, dim)
	probSum := make([]float64, dim)
	for k := range outs {
		if !present.Contains(k) {
			continue
		}
		w := v.weightOf(k)
		votes[mathx.ArgMax(outs[k].Probs)] += w
		for c, p := range outs[k].Probs {
			probSum[c] += w * p
		}
	}
	// Tie-break by summed probability: nudge votes by a sub-vote epsilon.
	for c := range votes {
		votes[c] += 1e-6 * probSum[c]
	}
	mathx.Normalize(votes)
	return model.Output{Probs: votes}
}

// Filler fills the outputs of models outside the executed subset so that a
// structure-agnostic aggregator (stacking) can run. Implementations must
// leave executed outputs untouched.
type Filler interface {
	Name() string
	// Fill returns a complete output vector given the partial outs.
	Fill(outs []model.Output, present Subset) []model.Output
}

// Stacking aggregates by feeding the concatenated base-model class
// probabilities through a trained meta-classifier (the XGBoost analogue in
// the paper's text matching deployment). Because the meta-classifier has a
// fixed input layout, missing outputs must be filled first.
type Stacking struct {
	// Meta scores the concatenated probability features; for binary
	// classification it returns P(class 1).
	Meta interface {
		Predict(x []float64) float64
	}
	// Fill provides values for non-executed models (typically the KNN
	// filler). Required whenever partial subsets are aggregated.
	Fill Filler
	// M is the ensemble size, Classes the task's class count.
	M, Classes int
}

// Name implements Aggregator.
func (st *Stacking) Name() string { return "stacking" }

// Features flattens base outputs into the meta-classifier's input layout.
func (st *Stacking) Features(outs []model.Output) []float64 {
	x := make([]float64, 0, st.M*st.Classes)
	for k := 0; k < st.M; k++ {
		x = append(x, outs[k].Probs...)
	}
	return x
}

// Aggregate implements Aggregator (binary classification only).
func (st *Stacking) Aggregate(task dataset.Task, outs []model.Output, present Subset) model.Output {
	if task != dataset.Classification || st.Classes != 2 {
		panic("ensemble: Stacking supports binary classification only")
	}
	if present != Full(st.M) {
		if st.Fill == nil {
			panic("ensemble: Stacking over a partial subset requires a Filler")
		}
		outs = st.Fill.Fill(outs, present)
	}
	p1 := mathx.Clamp(st.Meta.Predict(st.Features(outs)), 0, 1)
	return model.Output{Probs: []float64{1 - p1, p1}}
}
