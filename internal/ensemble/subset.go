// Package ensemble assembles base models into a deep ensemble: model-subset
// bitmasks, aggregation modules (voting, weighted averaging, stacking), full
// and partial prediction, and the agreement scoring that treats the full
// ensemble's output as ground truth (the paper's evaluation convention).
package ensemble

import (
	"math/bits"
	"strconv"
	"strings"
)

// Subset is a set of base-model indices encoded as a bitmask; bit k set
// means model k participates. The deep-ensemble sizes in the paper are
// tiny (2-6), so 16 bits is plenty.
type Subset uint16

// MaxModels is the largest supported ensemble size.
const MaxModels = 16

// Empty is the subset containing no models (i.e. "skip this query").
const Empty Subset = 0

// Single returns the subset containing only model k.
func Single(k int) Subset {
	if k < 0 || k >= MaxModels {
		panic("ensemble: model index out of range")
	}
	return 1 << uint(k)
}

// Full returns the subset of all m models.
func Full(m int) Subset {
	if m < 0 || m > MaxModels {
		panic("ensemble: ensemble size out of range")
	}
	return Subset(1<<uint(m)) - 1
}

// Contains reports whether model k is in s.
func (s Subset) Contains(k int) bool { return s&(1<<uint(k)) != 0 }

// With returns s with model k added.
func (s Subset) With(k int) Subset { return s | Single(k) }

// Without returns s with model k removed.
func (s Subset) Without(k int) Subset { return s &^ Single(k) }

// Size returns the number of models in s.
func (s Subset) Size() int { return bits.OnesCount16(uint16(s)) }

// Models returns the sorted indices of the models in s.
func (s Subset) Models() []int {
	out := make([]int, 0, s.Size())
	for k := 0; k < MaxModels; k++ {
		if s.Contains(k) {
			out = append(out, k)
		}
	}
	return out
}

// IsSubsetOf reports whether every model in s is also in t.
func (s Subset) IsSubsetOf(t Subset) bool { return s&^t == 0 }

// String renders the subset as "{0,2}".
func (s Subset) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for _, k := range s.Models() {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(k))
		first = false
	}
	b.WriteByte('}')
	return b.String()
}

// AllSubsets returns every non-empty subset of m models, ordered by
// ascending bitmask value.
func AllSubsets(m int) []Subset {
	full := int(Full(m))
	out := make([]Subset, 0, full)
	for s := 1; s <= full; s++ {
		out = append(out, Subset(s))
	}
	return out
}

// SubsetsOfSize returns all subsets of m models with exactly size members.
func SubsetsOfSize(m, size int) []Subset {
	var out []Subset
	for _, s := range AllSubsets(m) {
		if s.Size() == size {
			out = append(out, s)
		}
	}
	return out
}
