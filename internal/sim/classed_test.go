package sim

import (
	"testing"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/qos"
	"schemble/internal/trace"
)

func simClasses() []qos.Class {
	return []qos.Class{
		{Name: "gold", Priority: 2, Deadline: 400 * time.Millisecond, Weight: 3},
		{Name: "silver", Priority: 1, Deadline: 400 * time.Millisecond, Weight: 2},
		{Name: "bronze", Priority: 0, Deadline: 600 * time.Millisecond, Weight: 1},
	}
}

func simClassMix() []trace.ClassMix {
	return []trace.ClassMix{
		{Name: "gold", Share: 0.2, Deadline: 400 * time.Millisecond},
		{Name: "silver", Share: 0.3, Deadline: 400 * time.Millisecond},
		{Name: "bronze", Share: 0.5, Deadline: 600 * time.Millisecond},
	}
}

// TestSimClassedFlashCrowd drives a 5x flash crowd through the classed
// simulator: the admission controller must shed strictly lowest-priority
// first, every record must carry its class label, and the gold class must
// keep its deadline-miss rate near zero while the crowd rages.
func TestSimClassedFlashCrowd(t *testing.T) {
	a := artifacts(t)
	// Bottleneck capacity with single replicas is ~11 q/s; the crowd peaks
	// at 5x the background.
	tr := trace.FlashCrowd(trace.FlashCrowdConfig{
		BackgroundRate: 11,
		Classes:        simClassMix(),
		PeakFactor:     5,
		Horizon:        40 * time.Second,
		Samples:        a.Serve,
		Seed:           3,
	})
	cfg := schembleConfig(a)
	cfg.Classes = simClasses()
	recs := Run(cfg, tr, a.Serve)

	type agg struct{ submitted, rejected, missed int }
	byClass := map[string]*agg{}
	for _, c := range simClasses() {
		byClass[c.Name] = &agg{}
	}
	for _, r := range recs {
		cs := byClass[r.Class]
		if cs == nil {
			t.Fatalf("record carries unknown class %q", r.Class)
		}
		cs.submitted++
		if r.Rejected {
			cs.rejected++
		} else if r.Missed {
			cs.missed++
		}
	}
	shedRate := func(name string) float64 {
		cs := byClass[name]
		return float64(cs.rejected) / float64(cs.submitted)
	}
	dmr := func(name string) float64 {
		cs := byClass[name]
		return float64(cs.missed) / float64(cs.submitted-cs.rejected)
	}
	// The crowd overloads the fleet, so someone must be shed — and the
	// shedding must be priority-ordered.
	if shedRate("bronze") == 0 {
		t.Fatal("5x flash crowd shed nothing")
	}
	if shedRate("gold") > shedRate("silver")+0.02 || shedRate("silver") > shedRate("bronze")+0.02 {
		t.Errorf("shedding not priority-ordered: gold %.3f silver %.3f bronze %.3f",
			shedRate("gold"), shedRate("silver"), shedRate("bronze"))
	}
	if d := dmr("gold"); d > 0.05 {
		t.Errorf("gold deadline-miss rate %.3f under crowd, want near zero", d)
	}

	// Determinism: the classed path must replay bit-identically.
	again := Run(cfg, tr, a.Serve)
	if len(again) != len(recs) {
		t.Fatal("classed replay changed record count")
	}
	for i := range recs {
		if recs[i] != again[i] {
			t.Fatalf("classed replay diverged at record %d", i)
		}
	}
}

// TestSimClassedUnknownClassDefaults maps unlabeled and unknown arrivals
// to the lowest-priority class and applies that class's default deadline
// when the trace does not set one.
func TestSimClassedUnknownClassDefaults(t *testing.T) {
	a := artifacts(t)
	tr := &trace.Trace{Horizon: 4 * time.Second}
	// Zero trace deadlines: the class default must apply.
	tr.Arrivals = []trace.Arrival{
		{SampleIdx: 0, At: 100 * time.Millisecond, Class: "gold"},
		{SampleIdx: 1, At: 600 * time.Millisecond, Class: "no-such-class"},
		{SampleIdx: 2, At: 1100 * time.Millisecond},
	}
	cfg := schembleConfig(a)
	cfg.Classes = simClasses()
	recs := Run(cfg, tr, a.Serve)
	if recs[0].Class != "gold" || recs[0].Deadline != 500*time.Millisecond {
		t.Errorf("gold arrival: class %q deadline %v", recs[0].Class, recs[0].Deadline)
	}
	// Unknown and empty names land in the default (lowest-priority) class.
	for _, i := range []int{1, 2} {
		if recs[i].Class != "bronze" {
			t.Errorf("arrival %d: class %q, want bronze", i, recs[i].Class)
		}
		if got := recs[i].Deadline - recs[i].Arrival; got != 600*time.Millisecond {
			t.Errorf("arrival %d: relative deadline %v, want class default 600ms", i, got)
		}
	}
	for i, r := range recs {
		if r.Missed {
			t.Errorf("uncontended classed arrival %d missed", i)
		}
	}
}

// TestSimClassedRequiresBufferedMode locks the immediate-mode guard.
func TestSimClassedRequiresBufferedMode(t *testing.T) {
	a := artifacts(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Classes with Select did not panic")
		}
	}()
	full := a.Ensemble.FullSubset()
	Run(Config{
		Ensemble: a.Ensemble,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Select:   func(*dataset.Sample) ensemble.Subset { return full },
		Classes:  simClasses(),
		Seed:     1,
	}, &trace.Trace{Horizon: time.Second}, a.Serve)
}
