// Package sim is the discrete-event serving simulator: virtual clock, one
// serial task queue per deployed model instance, a central query buffer for
// the Schemble family, deadline tracking, and per-query outcome records.
//
// Two selection modes cover every baseline in the paper:
//
//   - immediate mode (Original, Static, DES, Gating): a Select function
//     picks the model subset the moment a query arrives; tasks are enqueued
//     to the chosen servers' FIFO queues right away. With rejection enabled
//     the query is rejected up front when its estimated completion exceeds
//     its deadline.
//
//   - buffered mode (Schemble, Schemble(ea), Schemble(t), scheduler
//     ablations): arriving queries wait in the query buffer; a core.Scheduler
//     re-plans whenever a query becomes ready or a model goes idle, and
//     tasks are dispatched to idle models per plan in EDF order. The
//     discrepancy predictor's latency and the scheduler's own compute cost
//     are charged in virtual time.
//
// Determinism: all latency jitter comes from a seeded rng.Source and the
// event heap breaks time ties by sequence number, so a (Config, Trace) pair
// always produces identical records.
package sim

import (
	"container/heap"
	"time"

	"schemble/internal/adapt"
	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/obsv"
	"schemble/internal/qos"
	"schemble/internal/rcache"
	"schemble/internal/rng"
	"schemble/internal/trace"
)

// Config configures one simulation run.
type Config struct {
	// Ensemble supplies the model types and the aggregator.
	Ensemble *ensemble.Ensemble
	// Replicas[j] is how many server instances of model type j are
	// deployed; nil means one each (the standard deployment). The static
	// baseline uses replicas to harness memory freed by dropped models;
	// buffered mode exposes every replica's backlog to the scheduler as a
	// core.Capacity and enqueues each committed task on the
	// least-backlogged replica of its type.
	Replicas []int
	// Refs[sampleID] is the full ensemble's output per sample — the
	// ground-truth reference.
	Refs []model.Output
	// Scorer measures agreement of served outputs against Refs.
	Scorer *ensemble.Scorer

	// Select enables immediate mode: it maps an arriving sample to the
	// model-type subset to execute. Exactly one of Select / Scheduler must
	// be set.
	Select func(s *dataset.Sample) ensemble.Subset

	// Scheduler + Rewarder + Estimator enable buffered mode.
	Scheduler core.Scheduler
	Rewarder  core.Rewarder
	Estimator discrepancy.ScoreEstimator
	// ScoreDelay is the predictor's inference latency: a buffered query
	// becomes schedulable only ScoreDelay after arrival.
	ScoreDelay time.Duration
	// SchedOverhead maps the buffer length at a planning event to the
	// scheduler's own compute time, charged before dispatch (Exp-4/Exp-8:
	// small delta makes planning itself slow). nil means free.
	SchedOverhead func(buffered int) time.Duration

	// ForceProcess disables rejection (Exp-2): immediate mode enqueues
	// unconditionally; buffered queries that the scheduler keeps skipping
	// fall back to the fastest single model once their deadline passes,
	// and late completions are not counted as misses.
	ForceProcess bool

	// EstimateMargin pads the execution-time estimates used for admission
	// and scheduling feasibility (0.1 = plan with 10% headroom), so
	// latency jitter does not turn feasible-looking plans into misses.
	// Negative disables; zero means the 0.1 default.
	EstimateMargin float64

	// FastFirst enables the paper's Exp-5 optimization: when a query
	// arrives to an empty buffer and an idle fastest model, it bypasses
	// the predictor and the scheduler entirely and runs on the fastest
	// model immediately — eliminating the extra waiting time at the cost
	// of single-model accuracy on those queries.
	FastFirst bool

	// BatchSize lets each model execute up to this many queued tasks as
	// one batch (1 or 0 disables). Batch latency follows model.BatchCurve:
	// base * (1 + (n-1)*BatchMarginal) — throughput rises, per-item
	// latency rises with it — the classic serving alternative to
	// per-query scheduling that the abl-batch study contrasts with
	// Schemble under deadlines.
	BatchSize int
	// BatchMarginal is the per-extra-item latency fraction (default
	// model.DefaultBatchMarginal).
	BatchMarginal float64

	// Classes mirrors serve.Config.Classes: request classes with
	// priorities, default deadlines and admission weights. Arrivals are
	// mapped to classes by trace.Arrival.Class (unknown/empty names land
	// in the lowest-priority class); under overload the shared qos
	// controller sheds and degrades the lowest classes first, exactly as
	// the concurrent runtime does. Classed mode requires buffered mode.
	Classes []qos.Class
	// Admission tunes the overload controller (defaults like serve:
	// capacity derived from mean latencies and replica counts).
	Admission qos.Tuning

	// Cache mirrors serve.Config.Cache: the difficulty-gated result cache
	// (internal/rcache) with identical lookup/fill semantics — a hit
	// finishes the query at arrival without dispatch, a cacheable miss
	// fills the entry on a clean full-quality completion. The zero value
	// disables caching. Cached mode requires buffered mode.
	Cache rcache.Config

	// Adapt mirrors serve.Config.Adapt: the online-adaptation layer
	// (internal/adapt) — live latency quantile profiles feeding the
	// scheduler's cost vector, drift detection, and incremental
	// recalibration of the discrepancy predictor. The zero value
	// disables adaptation and keeps runs bit-identical. Requires
	// buffered mode.
	Adapt adapt.Config

	// Drift injects a deterministic service-time drift schedule
	// (test/soak infrastructure, like fault injection in serve): each
	// task's drawn latency is multiplied by Drift(model, now) at start.
	// nil means no drift.
	Drift trace.LatencyDrift

	Seed uint64
}

// event kinds.
type evKind int

const (
	evArrival evKind = iota
	evReady
	evTaskDone
	evDeadline
	evPlan
)

type event struct {
	at   time.Duration
	seq  int
	kind evKind
	// payload
	arrIdx int
	q      *query
	server int
	// dur is the task's effective (drifted, batched) service time, fed
	// to the adaptation layer when the task completes.
	dur time.Duration
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type query struct {
	id       int
	sample   *dataset.Sample
	arrival  time.Duration
	deadline time.Duration
	score    float64
	// rawScore is the predictor's uncalibrated score (equal to score
	// when adaptation is off); the recalibration reservoir pairs it with
	// the observed discrepancy.
	rawScore float64
	// class is the query's class index (-1 classless); level is the
	// ladder service level it was committed at.
	class int
	level qos.Level

	committed bool
	subset    ensemble.Subset
	remaining int
	outs      []model.Output
	finished  bool

	// cacheable marks a query whose cache lookup missed; cacheKey is the
	// entry it fills on a clean completion.
	cacheable bool
	cacheKey  int
}

type task struct {
	q       *query
	typeIdx int
}

type server struct {
	typeIdx int
	// replica is this server's index within its model type's pool.
	replica int
	// busyUntil is when the in-flight task (if any) finishes.
	busyUntil time.Duration
	running   bool
	queue     []*task
	// backlogEnd estimates when everything currently queued finishes
	// (mean latencies); used for admission estimates and as the
	// scheduler's availability signal.
	backlogEnd time.Duration
}

// sim is one run's mutable state.
type sim struct {
	cfg     Config
	samples []*dataset.Sample
	events  eventHeap
	seq     int
	now     time.Duration

	servers []*server
	// byType[j] lists server indices of model type j.
	byType [][]int
	exec   []time.Duration // mean exec per model type

	buffer      []*query
	planPending bool
	batch       model.BatchCurve

	src     *rng.Source
	records []metrics.Record
	tr      *trace.Trace

	// qosCtl is the overload controller shared (by construction, not by
	// instance) with the serve runtime; always non-nil, estimator-only
	// when Classes is empty. degradedSched plans greedy-level classes;
	// lastSlack is the previous pass's unplanned-buffer fraction.
	qosCtl        *qos.Controller
	degradedSched *core.Greedy
	lastSlack     float64

	// cache is the result cache, nil when Config.Cache is the zero value.
	cache *rcache.Cache
	// adapt is the online-adaptation engine, nil when Config.Adapt is
	// the zero value.
	adapt *adapt.Engine
}

// Run simulates the trace against the configured pipeline and returns one
// record per arrival, ordered by query ID (= trace order).
func Run(cfg Config, tr *trace.Trace, samples []*dataset.Sample) []metrics.Record {
	records, _ := RunStats(cfg, tr, samples)
	return records
}

// RunStats is Run plus the result cache's counter snapshot (zero when
// caching is off) so soaks and tests can report hit rates without
// re-deriving them from records.
func RunStats(cfg Config, tr *trace.Trace, samples []*dataset.Sample) ([]metrics.Record, rcache.Snapshot) {
	records, cacheSnap, _ := RunAdapt(cfg, tr, samples)
	return records, cacheSnap
}

// RunAdapt is RunStats plus the online-adaptation engine's final
// snapshot (nil when adaptation is off) so the drift soak can report
// inflation factors, drift events and recalibration counters.
func RunAdapt(cfg Config, tr *trace.Trace, samples []*dataset.Sample) ([]metrics.Record, rcache.Snapshot, *adapt.Snapshot) {
	if (cfg.Select == nil) == (cfg.Scheduler == nil) {
		panic("sim: exactly one of Select / Scheduler must be set")
	}
	if cfg.Scheduler != nil && cfg.Rewarder == nil {
		panic("sim: buffered mode needs a Rewarder")
	}
	if len(cfg.Classes) > 0 && cfg.Scheduler == nil {
		panic("sim: Classes require buffered mode")
	}
	if cfg.Cache.Enabled() && cfg.Scheduler == nil {
		panic("sim: Cache requires buffered mode")
	}
	if cfg.Adapt.Enabled() && cfg.Scheduler == nil {
		panic("sim: Adapt requires buffered mode")
	}
	s := &sim{
		cfg:     cfg,
		samples: samples,
		src:     rng.New(cfg.Seed ^ 0x51ba),
		tr:      tr,
		records: make([]metrics.Record, tr.N()),
		batch:   model.BatchCurve{Marginal: cfg.BatchMarginal},
		cache:   rcache.New(cfg.Cache),
	}
	m := cfg.Ensemble.M()
	replicas := cfg.Replicas
	if replicas == nil {
		replicas = make([]int, m)
		for j := range replicas {
			replicas[j] = 1
		}
	}
	margin := cfg.EstimateMargin
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if margin == 0 {
		margin = 0.1
	}
	if margin < 0 {
		margin = 0
	}
	s.byType = make([][]int, m)
	s.exec = make([]time.Duration, m)
	profiled := make([]time.Duration, m)
	for j := 0; j < m; j++ {
		profiled[j] = cfg.Ensemble.Models[j].MeanLatency()
		s.exec[j] = time.Duration(float64(profiled[j]) * (1 + margin))
		for r := 0; r < replicas[j]; r++ {
			s.byType[j] = append(s.byType[j], len(s.servers))
			s.servers = append(s.servers, &server{typeIdx: j, replica: r})
		}
	}
	// The engine copies profiled/exec, so later ExecInto refreshes of
	// s.exec never corrupt the frozen baseline.
	s.adapt = adapt.New(cfg.Adapt, profiled, s.exec, replicas)
	adm := cfg.Admission
	if adm.Capacity <= 0 {
		// Mirror serve.bottleneckCapacity: the slowest pool's throughput.
		for j := 0; j < m; j++ {
			lat := cfg.Ensemble.Models[j].MeanLatency().Seconds()
			if lat <= 0 {
				continue
			}
			c := float64(replicas[j]) / lat
			if adm.Capacity <= 0 || c < adm.Capacity {
				adm.Capacity = c
			}
		}
		if adm.Capacity <= 0 {
			adm.Capacity = 1
		}
	}
	s.qosCtl = qos.New(qos.Config{Classes: cfg.Classes, Tuning: adm})
	if len(cfg.Classes) > 0 {
		s.degradedSched = &core.Greedy{Order: core.EDF}
	}
	for i := range tr.Arrivals {
		s.push(&event{at: tr.Arrivals[i].At, kind: evArrival, arrIdx: i})
	}
	for len(s.events) > 0 {
		e := heap.Pop(&s.events).(*event)
		s.now = e.at
		s.handle(e)
	}
	var snap rcache.Snapshot
	if s.cache != nil {
		snap = s.cache.Snapshot()
	}
	var asnap *adapt.Snapshot
	if s.adapt != nil {
		asnap = s.adapt.Snapshot()
	}
	return s.records, snap, asnap
}

func (s *sim) push(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *sim) handle(e *event) {
	switch e.kind {
	case evArrival:
		s.onArrival(e.arrIdx)
	case evReady:
		// Guard against double commitment: when a query's deadline falls
		// before arrival+ScoreDelay, onDeadline has already handled it
		// (ForceProcess commits it to the fastest model); re-buffering it
		// here would let the scheduler commit it a second time,
		// re-enqueueing tasks and resetting remaining/outs. A query whose
		// deadline already passed without ForceProcess can only miss, so
		// it never enters the buffer either.
		if e.q.committed || e.q.finished {
			break
		}
		if !s.cfg.ForceProcess && e.q.deadline <= s.now {
			break
		}
		s.buffer = append(s.buffer, e.q)
		s.schedulePlan()
	case evTaskDone:
		if s.adapt != nil {
			// Observe before resolving, mirroring serve: the worker
			// records its latency before the coordinator processes the
			// completion (and possibly refits at an epoch boundary).
			sv := s.servers[e.server]
			s.adapt.ObserveLatency(s.now, sv.typeIdx, sv.replica, e.dur)
		}
		s.finishTask(e.q)
		s.onTaskDone(e.server)
	case evDeadline:
		s.onDeadline(e.q)
	case evPlan:
		s.planPending = false
		s.planAndDispatch()
	}
}

// onArrival admits a new query in the appropriate mode.
func (s *sim) onArrival(arrIdx int) {
	a := s.tr.Arrivals[arrIdx]
	q := &query{
		id:       arrIdx,
		sample:   s.samples[a.SampleIdx],
		arrival:  a.At,
		deadline: a.Deadline,
		class:    s.qosCtl.ClassIndex(a.Class),
	}
	var className string
	if q.class >= 0 {
		cls := s.qosCtl.Class(q.class)
		className = cls.Name
		if q.deadline <= q.arrival {
			// Per-class default deadline, mirroring serve.SubmitClass.
			q.deadline = q.arrival + cls.Deadline
		}
	}
	s.records[q.id] = metrics.Record{
		QueryID:  q.id,
		SampleID: q.sample.ID,
		CameraID: q.sample.CameraID,
		Arrival:  q.arrival,
		Deadline: q.deadline,
		Missed:   true, // flipped on successful completion
		Class:    className,
	}
	if s.cfg.Select != nil {
		s.immediateAdmit(q)
		return
	}
	// Admission control at arrival, before any scoring work — mirroring
	// serve.SubmitClass. A shed query records an explicit rejection.
	if q.class >= 0 && !s.qosCtl.Admit(s.now, q.class) {
		s.records[q.id].Rejected = true
		return
	}
	// Fast path (Exp-5): empty buffer + an idle replica of the fastest
	// model -> bypass scoring and scheduling, dispatch now.
	if s.cfg.FastFirst && len(s.buffer) == 0 {
		fastest := 0
		for j := 1; j < s.cfg.Ensemble.M(); j++ {
			if s.exec[j] < s.exec[fastest] {
				fastest = j
			}
		}
		if s.anyIdle(fastest) {
			s.commit(q, ensemble.Single(fastest))
			return
		}
	}
	// Buffered mode: the query becomes schedulable once the discrepancy
	// predictor has scored it.
	if s.cfg.Estimator != nil {
		q.score = s.cfg.Estimator.Predict(q.sample)
		q.rawScore = q.score
		if s.adapt != nil {
			// Feed the raw score to the drift detector, then plan (and
			// gate the cache) on the recalibrated score — mirroring
			// serve.SubmitClass exactly.
			s.adapt.ObserveScore(s.now, q.rawScore)
			q.score = s.adapt.Calibrate(q.rawScore)
		}
	}
	if s.cache != nil {
		v, key, outcome := s.cache.Lookup(s.now, q.sample.Features, q.score)
		// Exhaustive over the cache taxonomy (enforced by the
		// exhaustiveoutcome analyzer), mirroring serve.SubmitClass.
		switch outcome {
		case obsv.CacheOutcomeHit:
			// Zero-cost plan: the query finishes at arrival from the
			// cached answer; no ready/deadline events are ever pushed.
			q.finished = true
			rec := &s.records[q.id]
			rec.Done = s.now
			rec.Subset = v.Subset
			rec.Missed = false
			rec.Cached = true
			rec.Agreement = s.cfg.Scorer.Score(v.Output, s.cfg.Refs[q.sample.ID])
			return
		case obsv.CacheOutcomeMiss:
			q.cacheable, q.cacheKey = true, key
		case obsv.CacheOutcomeBypass:
			// Too hard (or unkeyable): the ensemble always runs.
		}
	}
	s.push(&event{at: s.now + s.cfg.ScoreDelay, kind: evReady, q: q})
	s.push(&event{at: q.deadline, kind: evDeadline, q: q})
}

// immediateAdmit implements the arrival path of the immediate-selection
// baselines.
func (s *sim) immediateAdmit(q *query) {
	sub := s.cfg.Select(q.sample)
	if sub == ensemble.Empty {
		return // policy rejected outright; record stays missed
	}
	// Choose the least-backlogged replica per selected type and estimate
	// completion.
	chosen := make([]int, 0, sub.Size())
	var est time.Duration
	for _, j := range sub.Models() {
		best := s.leastBacklogged(j)
		sv := s.servers[best]
		start := sv.backlogEnd
		if start < s.now {
			start = s.now
		}
		finish := start + s.exec[j]
		if finish > est {
			est = finish
		}
		chosen = append(chosen, best)
	}
	if !s.cfg.ForceProcess && est > q.deadline {
		return // rejected: estimated completion exceeds the deadline
	}
	q.committed = true
	q.subset = sub
	q.remaining = len(chosen)
	q.outs = make([]model.Output, s.cfg.Ensemble.M())
	for _, si := range chosen {
		s.enqueue(si, &task{q: q, typeIdx: s.servers[si].typeIdx})
	}
}

// enqueue appends a task to a server's FIFO queue and starts it if idle.
// With batching enabled the backlog estimate uses the amortized per-item
// cost, so admission does not over-reject.
func (s *sim) enqueue(si int, t *task) {
	sv := s.servers[si]
	start := sv.backlogEnd
	if start < s.now {
		start = s.now
	}
	cost := s.exec[sv.typeIdx]
	if b := s.cfg.BatchSize; b > 1 {
		cost = s.batch.Amortized(cost, b)
	}
	sv.backlogEnd = start + cost
	sv.queue = append(sv.queue, t)
	s.maybeStart(si)
}

// maybeStart begins the next queued task (or batch) when the server is
// idle.
func (s *sim) maybeStart(si int) {
	sv := s.servers[si]
	if sv.running || len(sv.queue) == 0 {
		return
	}
	n := 1
	if s.cfg.BatchSize > 1 {
		n = s.cfg.BatchSize
		if n > len(sv.queue) {
			n = len(sv.queue)
		}
	}
	batch := sv.queue[:n]
	sv.queue = sv.queue[n:]
	dur := s.cfg.Ensemble.Models[sv.typeIdx].SampleLatency(s.src)
	if s.cfg.Drift != nil {
		dur = time.Duration(float64(dur) * s.cfg.Drift(sv.typeIdx, s.now))
	}
	dur = s.batch.Latency(dur, n)
	sv.running = true
	sv.busyUntil = s.now + dur
	for _, t := range batch {
		// The model's output is materialized when the batch completes.
		t.q.outs[sv.typeIdx] = s.cfg.Ensemble.Models[sv.typeIdx].Predict(t.q.sample)
		s.push(&event{at: sv.busyUntil, kind: evTaskDone, server: si, q: t.q, dur: dur})
	}
}

// onTaskDone advances the server's queue after its in-flight task finished.
func (s *sim) onTaskDone(si int) {
	sv := s.servers[si]
	sv.running = false
	// Re-anchor the backlog estimate on the actual completion time so
	// latency jitter cannot accumulate drift.
	sv.backlogEnd = s.now + time.Duration(len(sv.queue))*s.exec[sv.typeIdx]
	s.maybeStart(si)
	if s.cfg.Scheduler != nil {
		s.schedulePlan()
	}
}

// finishTask is invoked from handle for evTaskDone before queue advance.
func (s *sim) finishTask(q *query) {
	q.remaining--
	if q.remaining > 0 || q.finished {
		return
	}
	q.finished = true
	rec := &s.records[q.id]
	rec.Done = s.now
	rec.Subset = q.subset
	late := s.now > q.deadline
	if late && !s.cfg.ForceProcess {
		// Completed after the deadline: counts as a miss.
		return
	}
	rec.Missed = false
	// A ladder-capped plan is reduced-quality service, mirroring
	// serve's Result.Degraded.
	rec.Degraded = q.level > qos.LevelFull
	out := s.cfg.Ensemble.Predict(q.outs, q.subset)
	rec.Agreement = s.cfg.Scorer.Score(out, s.cfg.Refs[q.sample.ID])
	if s.adapt != nil && !late && !rec.Degraded &&
		q.subset == ensemble.Full(s.cfg.Ensemble.M()) {
		// Clean full-ensemble completion: the true discrepancy score is
		// computable, so feed the recalibration reservoir — mirroring
		// the serve coordinator's done branch.
		s.adapt.ObserveOutcome(s.now, q.rawScore, q.outs, out)
	}
	if s.cache != nil && q.cacheable && !rec.Degraded {
		// Clean full-quality completion of a cacheable miss: fill the
		// entry, mirroring serve.resolve.
		s.cache.Fill(s.now, q.cacheKey, rcache.Value{Output: out, Subset: q.subset})
	}
}

// schedulePlan coalesces planning requests: at most one pending evPlan.
func (s *sim) schedulePlan() {
	if s.planPending || len(s.buffer) == 0 {
		return
	}
	var overhead time.Duration
	if s.cfg.SchedOverhead != nil {
		overhead = s.cfg.SchedOverhead(len(s.buffer))
	}
	s.planPending = true
	s.push(&event{at: s.now + overhead, kind: evPlan})
}

// planAndDispatch runs the scheduler over the buffer and commits queries to
// idle servers in EDF order.
func (s *sim) planAndDispatch() {
	// Feed the overload controller (backlog + previous pass's slack)
	// before planning, mirroring the serve coordinator's dispatch.
	backlog := len(s.buffer)
	for _, sv := range s.servers {
		backlog += len(sv.queue)
		if sv.running {
			backlog++
		}
	}
	s.qosCtl.Observe(s.now, backlog, s.lastSlack)
	if s.adapt != nil {
		// Refresh the live cost vector before planning: the scheduler,
		// ladder truncation and backlog re-anchoring below all read
		// s.exec, so the whole pass plans against one consistent view.
		s.adapt.ExecInto(s.exec)
	}
	if len(s.buffer) == 0 {
		return
	}
	m := s.cfg.Ensemble.M()
	mkAvail := func() core.Capacity {
		avail := make(core.Capacity, m)
		for j := 0; j < m; j++ {
			slots := make([]time.Duration, len(s.byType[j]))
			for i, si := range s.byType[j] {
				slots[i] = s.servers[si].backlogEnd
			}
			avail[j] = slots
		}
		return avail
	}
	mkInfos := func(group []*query) []core.QueryInfo {
		infos := make([]core.QueryInfo, len(group))
		for i, q := range group {
			infos[i] = core.QueryInfo{
				ID: q.id, Arrival: q.arrival, Deadline: q.deadline, Score: q.score,
			}
		}
		return infos
	}
	committed := map[int]bool{}
	// dispatchGroup walks a planned group in EDF order; a query commits as
	// soon as one of its planned models has an idle replica (its other
	// tasks queue behind busy replicas, the paper's per-model task
	// buffer). lvl caps committed subsets per the degradation ladder.
	dispatchGroup := func(group []*query, lvl map[int]qos.Level, plan core.Plan) {
		order := make([]*query, len(group))
		copy(order, group)
		sortQueriesEDF(order)
		for _, q := range order {
			if q.committed || q.finished {
				// Defensive: a committed query must never be re-dispatched.
				committed[q.id] = true
				continue
			}
			sub := plan.Subset(q.id)
			if sub == ensemble.Empty {
				continue
			}
			if l := lvl[q.id]; l > qos.LevelFull {
				sub = qos.TruncateSubset(sub, qos.SubsetCap(l, m), s.exec)
			}
			anyIdle := false
			for _, j := range sub.Models() {
				if s.anyIdle(j) {
					anyIdle = true
					break
				}
			}
			if !anyIdle {
				continue
			}
			q.level = lvl[q.id]
			s.commit(q, sub)
			committed[q.id] = true
		}
	}
	if s.degradedSched == nil {
		// Classless: one plan over the whole buffer, as before.
		dispatchGroup(s.buffer, nil,
			s.cfg.Scheduler.Schedule(s.now, mkInfos(s.buffer), mkAvail(), s.exec, s.cfg.Rewarder))
	} else {
		// Classed: full/capped classes keep the configured scheduler;
		// greedy-level classes are planned afterwards against the capacity
		// the protected tiers left behind — mirroring the serve
		// coordinator. Shed-level buffered queries clamp to greedy
		// (admission is not retroactive).
		var main, deg []*query
		mainLvl, degLvl := map[int]qos.Level{}, map[int]qos.Level{}
		for _, q := range s.buffer {
			lvl := s.qosCtl.Level(q.class)
			if lvl > qos.LevelGreedy {
				lvl = qos.LevelGreedy
			}
			if lvl == qos.LevelGreedy {
				deg = append(deg, q)
				degLvl[q.id] = lvl
			} else {
				main = append(main, q)
				mainLvl[q.id] = lvl
			}
		}
		if len(main) > 0 {
			dispatchGroup(main, mainLvl,
				s.cfg.Scheduler.Schedule(s.now, mkInfos(main), mkAvail(), s.exec, s.cfg.Rewarder))
		}
		if len(deg) > 0 {
			dispatchGroup(deg, degLvl,
				s.degradedSched.Schedule(s.now, mkInfos(deg), mkAvail(), s.exec, s.cfg.Rewarder))
		}
	}
	s.lastSlack = float64(len(s.buffer)-len(committed)) / float64(len(s.buffer))
	if len(committed) > 0 {
		s.buffer = filterQueries(s.buffer, func(q *query) bool { return !committed[q.id] })
		// Committing may have left other planned queries adjacent to idle
		// servers; re-plan cheaply at the same instant.
		s.schedulePlan()
	}
}

// commit locks a buffered query onto a subset and enqueues its tasks.
// Committing is idempotent-by-refusal: a second commit would re-enqueue
// tasks and reset remaining/outs, so it is rejected outright.
func (s *sim) commit(q *query, sub ensemble.Subset) {
	if q.committed {
		return
	}
	q.committed = true
	q.subset = sub
	q.remaining = sub.Size()
	q.outs = make([]model.Output, s.cfg.Ensemble.M())
	for _, j := range sub.Models() {
		s.enqueue(s.leastBacklogged(j), &task{q: q, typeIdx: j})
	}
}

// leastBacklogged returns the replica of model type j whose backlog ends
// earliest, ties broken by deployment order (the replica-pool analogue of
// "the model's queue").
func (s *sim) leastBacklogged(j int) int {
	best := -1
	for _, si := range s.byType[j] {
		if best < 0 || s.servers[si].backlogEnd < s.servers[best].backlogEnd {
			best = si
		}
	}
	return best
}

// anyIdle reports whether any replica of model type j is idle with an
// empty queue.
func (s *sim) anyIdle(j int) bool {
	for _, si := range s.byType[j] {
		sv := s.servers[si]
		if !sv.running && len(sv.queue) == 0 {
			return true
		}
	}
	return false
}

// onDeadline handles a buffered query's deadline passing uncommitted.
func (s *sim) onDeadline(q *query) {
	if q.committed || q.finished {
		return
	}
	s.buffer = filterQueries(s.buffer, func(x *query) bool { return x != q })
	if s.cfg.ForceProcess {
		// Fall back to the fastest single model; latency is recorded,
		// the query is not counted as missed.
		fastest := 0
		for j := 1; j < s.cfg.Ensemble.M(); j++ {
			if s.exec[j] < s.exec[fastest] {
				fastest = j
			}
		}
		s.commit(q, ensemble.Single(fastest))
	}
	// Otherwise the record simply stays missed.
}

func sortQueriesEDF(qs []*query) {
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0; j-- {
			a, b := qs[j-1], qs[j]
			if b.deadline < a.deadline ||
				(b.deadline == a.deadline && b.id < a.id) {
				qs[j-1], qs[j] = qs[j], qs[j-1]
			} else {
				break
			}
		}
	}
}

func filterQueries(qs []*query, keep func(*query) bool) []*query {
	out := qs[:0]
	for _, q := range qs {
		if keep(q) {
			out = append(out, q)
		}
	}
	return out
}
