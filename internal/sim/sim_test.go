package sim

import (
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/metrics"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/policy"
	"schemble/internal/trace"
)

var (
	artOnce sync.Once
	art     *pipeline.Artifacts
)

func artifacts(t *testing.T) *pipeline.Artifacts {
	t.Helper()
	artOnce.Do(func() {
		ds := dataset.TextMatching(dataset.Config{N: 2500, Seed: 99})
		art = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.TextMatchingModels(99),
			PredictorEpochs: 30, Seed: 99,
		})
	})
	return art
}

func poissonTrace(a *pipeline.Artifacts, rate float64, n int, deadline time.Duration, seed uint64) *trace.Trace {
	return trace.Poisson(trace.PoissonConfig{
		RatePerSec: rate, N: n, Samples: a.Serve,
		Deadline: trace.ConstantDeadline(deadline), Seed: seed,
	})
}

func originalConfig(a *pipeline.Artifacts) Config {
	return Config{
		Ensemble: a.Ensemble,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Select:   policy.Original(a.Ensemble.M()),
		Seed:     1,
	}
}

func schembleConfig(a *pipeline.Artifacts) Config {
	return Config{
		Ensemble:   a.Ensemble,
		Refs:       a.Refs,
		Scorer:     a.Scorer,
		Scheduler:  &core.DP{Delta: 0.01},
		Rewarder:   a.Profile,
		Estimator:  a.Predictor,
		ScoreDelay: a.Predictor.InferCost,
		Seed:       1,
	}
}

func TestOriginalLightLoadNoMisses(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 5, 400, 400*time.Millisecond, 2)
	recs := Run(originalConfig(a), tr, a.Serve)
	s := metrics.Summarize(recs)
	if s.DMR > 0.03 {
		t.Errorf("light-load DMR = %v, want ~0", s.DMR)
	}
	// Original executes the full ensemble, so agreement with itself is 1.
	if s.Processed < 0.999 {
		t.Errorf("original processed accuracy = %v, want 1", s.Processed)
	}
	for _, r := range recs {
		if !r.Missed && r.Subset != a.Ensemble.FullSubset() {
			t.Fatal("original served a partial subset")
		}
	}
}

func TestOriginalOverloadMissesHard(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 40, 800, 150*time.Millisecond, 3)
	s := metrics.Summarize(Run(originalConfig(a), tr, a.Serve))
	if s.DMR < 0.3 {
		t.Errorf("overload DMR = %v, want high (queue blocking)", s.DMR)
	}
}

func TestSchembleBeatsOriginalUnderLoad(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 40, 1200, 150*time.Millisecond, 4)
	orig := metrics.Summarize(Run(originalConfig(a), tr, a.Serve))
	sch := metrics.Summarize(Run(schembleConfig(a), tr, a.Serve))
	if sch.DMR >= orig.DMR {
		t.Errorf("Schemble DMR %v not below Original %v", sch.DMR, orig.DMR)
	}
	if sch.Accuracy <= orig.Accuracy {
		t.Errorf("Schemble accuracy %v not above Original %v", sch.Accuracy, orig.Accuracy)
	}
	// The headline claim is a dramatic improvement, not a nudge.
	if orig.DMR > 0 && sch.DMR > orig.DMR/2 {
		t.Errorf("Schemble DMR %v should be far below Original %v", sch.DMR, orig.DMR)
	}
}

func TestSchembleAdaptsSubsetSizeToLoad(t *testing.T) {
	a := artifacts(t)
	light := metrics.Summarize(Run(schembleConfig(a),
		poissonTrace(a, 4, 300, 300*time.Millisecond, 5), a.Serve))
	heavy := metrics.Summarize(Run(schembleConfig(a),
		poissonTrace(a, 45, 900, 150*time.Millisecond, 5), a.Serve))
	if light.MeanSubsetSize <= heavy.MeanSubsetSize {
		t.Errorf("subset size should shrink under load: light %v vs heavy %v",
			light.MeanSubsetSize, heavy.MeanSubsetSize)
	}
	if light.MeanSubsetSize < 2.5 {
		t.Errorf("light-load subset size = %v, want near full ensemble", light.MeanSubsetSize)
	}
}

func TestDeterminism(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 30, 400, 150*time.Millisecond, 6)
	r1 := Run(schembleConfig(a), tr, a.Serve)
	r2 := Run(schembleConfig(a), tr, a.Serve)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("records differ at %d: %+v vs %+v", i, r1[i], r2[i])
		}
	}
}

func TestRecordsMatchTrace(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 20, 250, 200*time.Millisecond, 7)
	recs := Run(originalConfig(a), tr, a.Serve)
	if len(recs) != tr.N() {
		t.Fatalf("records %d, trace %d", len(recs), tr.N())
	}
	for i, r := range recs {
		if r.QueryID != i {
			t.Fatal("records not in trace order")
		}
		if r.Arrival != tr.Arrivals[i].At || r.Deadline != tr.Arrivals[i].Deadline {
			t.Fatal("record timestamps do not match trace")
		}
		if !r.Missed && (r.Done < r.Arrival || r.Done > r.Deadline) {
			t.Fatalf("completed query %d outside [arrival, deadline]: %+v", i, r)
		}
	}
}

func TestForceProcessCompletesEverything(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 40, 600, 150*time.Millisecond, 8)

	ocfg := originalConfig(a)
	ocfg.ForceProcess = true
	orig := Run(ocfg, tr, a.Serve)
	for i, r := range orig {
		if r.Missed {
			t.Fatalf("forced original left query %d unprocessed", i)
		}
	}
	scfg := schembleConfig(a)
	scfg.ForceProcess = true
	sch := Run(scfg, tr, a.Serve)
	for i, r := range sch {
		if r.Missed {
			t.Fatalf("forced schemble left query %d unprocessed", i)
		}
	}
	so, ss := metrics.Summarize(orig), metrics.Summarize(sch)
	// Table II: Original's forced latency explodes under load; Schemble's
	// stays near service time.
	if ss.LatMean >= so.LatMean {
		t.Errorf("forced latency: schemble %v should beat original %v", ss.LatMean, so.LatMean)
	}
	if ss.Processed < 0.85 {
		t.Errorf("forced schemble accuracy = %v, want high", ss.Processed)
	}
}

func TestStaticWithReplicas(t *testing.T) {
	a := artifacts(t)
	plan := a.StaticPlan(40)
	cfg := Config{
		Ensemble: a.Ensemble,
		Replicas: plan.Replicas,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Select:   plan.Select(),
		Seed:     1,
	}
	tr := poissonTrace(a, 40, 800, 150*time.Millisecond, 9)
	s := metrics.Summarize(Run(cfg, tr, a.Serve))
	orig := metrics.Summarize(Run(originalConfig(a), tr, a.Serve))
	if s.DMR >= orig.DMR {
		t.Errorf("static DMR %v should beat original %v under load", s.DMR, orig.DMR)
	}
	if s.Processed < 0.8 {
		t.Errorf("static processed accuracy = %v", s.Processed)
	}
}

func TestBufferedGreedyRuns(t *testing.T) {
	a := artifacts(t)
	cfg := schembleConfig(a)
	cfg.Scheduler = &core.Greedy{Order: core.EDF}
	tr := poissonTrace(a, 35, 500, 150*time.Millisecond, 10)
	s := metrics.Summarize(Run(cfg, tr, a.Serve))
	if s.N != 500 {
		t.Fatalf("N = %d", s.N)
	}
	if s.DMR > 0.6 {
		t.Errorf("greedy+EDF DMR = %v, unexpectedly bad", s.DMR)
	}
}

func TestSchedOverheadHurts(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 40, 700, 130*time.Millisecond, 11)
	fast := schembleConfig(a)
	slow := schembleConfig(a)
	slow.SchedOverhead = func(buffered int) time.Duration {
		return 40 * time.Millisecond // pathological planning cost
	}
	sFast := metrics.Summarize(Run(fast, tr, a.Serve))
	sSlow := metrics.Summarize(Run(slow, tr, a.Serve))
	if sSlow.DMR <= sFast.DMR {
		t.Errorf("scheduling overhead should raise DMR: %v vs %v", sSlow.DMR, sFast.DMR)
	}
}

func TestConfigValidation(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 5, 10, time.Second, 12)
	mustPanic := func(name string, cfg Config) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		Run(cfg, tr, a.Serve)
	}
	both := originalConfig(a)
	both.Scheduler = &core.DP{}
	mustPanic("both modes", both)
	neither := originalConfig(a)
	neither.Select = nil
	mustPanic("no mode", neither)
	noReward := schembleConfig(a)
	noReward.Rewarder = nil
	mustPanic("no rewarder", noReward)
}

func TestCompletedLateCountsMissed(t *testing.T) {
	// A tiny deadline that admission estimates (mean latency) accept but
	// jitter can push past the deadline: completed-late queries must be
	// recorded as missed in rejection mode.
	a := artifacts(t)
	// Deadline exactly at bert's mean latency: ~half of singleton-bert
	// runs exceed it.
	tr := poissonTrace(a, 1, 100, 90*time.Millisecond, 13)
	cfg := Config{
		Ensemble: a.Ensemble,
		Refs:     a.Refs,
		Scorer:   a.Scorer,
		Select: func(*dataset.Sample) ensemble.Subset {
			return ensemble.Single(2) // bert, 90ms mean
		},
		EstimateMargin: -1, // no planning headroom: expose jitter misses
		Seed:           2,
	}
	s := metrics.Summarize(Run(cfg, tr, a.Serve))
	if s.Missed == 0 {
		t.Error("expected some jitter-induced misses")
	}
	if s.Missed == s.N {
		t.Error("expected some completions too")
	}
}

func TestFastFirstBypassesPredictorWait(t *testing.T) {
	a := artifacts(t)
	// Light traffic with generous deadlines: every query finds an idle
	// system, so with FastFirst all of them run on the fastest model.
	tr := poissonTrace(a, 2, 200, 500*time.Millisecond, 14)
	cfg := schembleConfig(a)
	cfg.FastFirst = true
	recs := Run(cfg, tr, a.Serve)
	fastCount := 0
	for _, r := range recs {
		if r.Missed {
			continue
		}
		if r.Subset == ensemble.Single(0) {
			fastCount++
		}
	}
	if fastCount < 150 {
		t.Errorf("only %d/200 queries took the fast path", fastCount)
	}
	// Latency of fast-path queries excludes the predictor wait.
	s := metrics.Summarize(recs)
	if s.LatMean > 35*time.Millisecond {
		t.Errorf("fast-path mean latency %v, want ~bilstm latency", s.LatMean)
	}
}

func TestFastFirstStillSchedulesUnderLoad(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 45, 600, 150*time.Millisecond, 15)
	cfg := schembleConfig(a)
	cfg.FastFirst = true
	s := metrics.Summarize(Run(cfg, tr, a.Serve))
	// Under a burst the buffer is non-empty, so the scheduler still runs
	// and keeps the DMR manageable.
	if s.DMR > 0.3 {
		t.Errorf("fast-first burst DMR = %v", s.DMR)
	}
}

func TestBatchingIncreasesThroughputButStretchesLatency(t *testing.T) {
	a := artifacts(t)
	// Force-process everything so latency (not rejection) is observable.
	base := originalConfig(a)
	base.ForceProcess = true
	batched := originalConfig(a)
	batched.ForceProcess = true
	batched.BatchSize = 8

	tr := poissonTrace(a, 30, 600, 150*time.Millisecond, 21)
	sPlain := metrics.Summarize(Run(base, tr, a.Serve))
	sBatch := metrics.Summarize(Run(batched, tr, a.Serve))

	// At 30 q/s the unbatched ensemble (capacity ~11 q/s) builds an
	// unbounded queue; batch 8 sustains the load, so its mean latency is
	// far smaller even though each batch runs longer than one task.
	if sBatch.LatMean >= sPlain.LatMean {
		t.Errorf("batched mean latency %v should be far below unbatched %v under overload",
			sBatch.LatMean, sPlain.LatMean)
	}
	// But the floor is the stretched batch duration: no batched query can
	// beat a solo run of the slowest model.
	if sBatch.LatMean < 90*time.Millisecond {
		t.Errorf("batched mean latency %v below the solo service time — batching model broken", sBatch.LatMean)
	}
}

func TestBatchSizeOneMatchesDefault(t *testing.T) {
	a := artifacts(t)
	tr := poissonTrace(a, 20, 300, 200*time.Millisecond, 22)
	plain := Run(originalConfig(a), tr, a.Serve)
	one := originalConfig(a)
	one.BatchSize = 1
	withOne := Run(one, tr, a.Serve)
	for i := range plain {
		if plain[i] != withOne[i] {
			t.Fatal("BatchSize=1 should be identical to no batching")
		}
	}
}

// fullPlanScheduler unconditionally assigns the full ensemble to every
// buffered query — even past-deadline ones — to expose double-commit bugs
// the feasibility-aware DP scheduler would mask.
type fullPlanScheduler struct{ m int }

func (f fullPlanScheduler) Name() string { return "test-full-plan" }

func (f fullPlanScheduler) Schedule(now time.Duration, qs []core.QueryInfo,
	avail core.Capacity, exec []time.Duration, r core.Rewarder) core.Plan {
	as := make(map[int]ensemble.Subset, len(qs))
	for _, q := range qs {
		as[q.ID] = ensemble.Full(f.m)
	}
	return core.Plan{Assignments: as}
}

// TestForceProcessEarlyDeadlineCommitsOnce is the regression test for the
// evReady/evDeadline ordering bug: a query whose deadline falls before
// arrival+ScoreDelay is force-committed to the fastest model by
// onDeadline; the later evReady must NOT re-buffer it, or the scheduler
// commits it a second time (re-enqueueing tasks and resetting
// remaining/outs), recording an oversized subset.
func TestForceProcessEarlyDeadlineCommitsOnce(t *testing.T) {
	a := artifacts(t)
	tr := &trace.Trace{Arrivals: []trace.Arrival{
		{SampleIdx: 0, At: 0, Deadline: time.Millisecond},
	}}
	cfg := Config{
		Ensemble:     a.Ensemble,
		Refs:         a.Refs,
		Scorer:       a.Scorer,
		Scheduler:    fullPlanScheduler{m: a.Ensemble.M()},
		Rewarder:     a.Profile,
		Estimator:    a.Predictor,
		ScoreDelay:   5 * time.Millisecond, // ready strictly after the deadline
		ForceProcess: true,
		Seed:         1,
	}
	recs := Run(cfg, tr, a.Serve)
	rec := recs[0]
	if rec.Missed {
		t.Fatal("ForceProcess query recorded as missed")
	}
	if rec.Subset.Size() != 1 {
		t.Errorf("early-deadline query committed twice: subset %v, want the single fastest model",
			rec.Subset.Models())
	}
	if rec.Done <= 0 {
		t.Error("no completion time recorded")
	}
}
