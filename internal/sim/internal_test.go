package sim

import (
	"container/heap"
	"testing"
	"time"
)

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	push := func(at time.Duration, seq int) {
		heap.Push(&h, &event{at: at, seq: seq})
	}
	push(30*time.Millisecond, 2)
	push(10*time.Millisecond, 5)
	push(30*time.Millisecond, 1) // same time, earlier seq
	push(20*time.Millisecond, 3)

	var got []int
	for h.Len() > 0 {
		got = append(got, heap.Pop(&h).(*event).seq)
	}
	want := []int{5, 3, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestSortQueriesEDF(t *testing.T) {
	qs := []*query{
		{id: 3, deadline: 100 * time.Millisecond},
		{id: 1, deadline: 50 * time.Millisecond},
		{id: 2, deadline: 100 * time.Millisecond},
	}
	sortQueriesEDF(qs)
	wantIDs := []int{1, 2, 3} // earliest deadline first; ties by id
	for i, q := range qs {
		if q.id != wantIDs[i] {
			t.Fatalf("order %v, want %v", ids(qs), wantIDs)
		}
	}
}

func ids(qs []*query) []int {
	out := make([]int, len(qs))
	for i, q := range qs {
		out[i] = q.id
	}
	return out
}

func TestFilterQueries(t *testing.T) {
	qs := []*query{{id: 1}, {id: 2}, {id: 3}}
	kept := filterQueries(qs, func(q *query) bool { return q.id != 2 })
	if len(kept) != 2 || kept[0].id != 1 || kept[1].id != 3 {
		t.Fatalf("filter result %v", ids(kept))
	}
	none := filterQueries(kept, func(*query) bool { return false })
	if len(none) != 0 {
		t.Fatal("filter-all left residue")
	}
}
