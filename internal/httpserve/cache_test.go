package httpserve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"schemble/internal/cluster"
	"schemble/internal/core"
	"schemble/internal/rcache"
	"schemble/internal/rng"
	"schemble/internal/serve"
)

// startCachedServer spins up the HTTP stack over a runtime with the result
// cache enabled and every query admitted.
func startCachedServer(t *testing.T) (*Client, string) {
	t.Helper()
	a := artifacts(t)
	points := make([][]float64, len(a.Serve))
	for i, s := range a.Serve {
		points[i] = s.Features
	}
	km, err := cluster.Fit(points, 64, 30, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	h := New(Config{
		Server: serve.New(serve.Config{
			Ensemble:  a.Ensemble,
			Scheduler: &core.DP{Delta: 0.01},
			Rewarder:  a.Profile,
			Estimator: a.Predictor,
			TimeScale: 0.05,
			Seed:      1,
			Cache:     rcache.Config{Keyer: rcache.CentroidKeyer{KM: km}, DifficultyMax: 1},
		}),
		Estimator: a.Predictor,
		Pool:      a.Serve,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return NewClient(ts.URL), ts.URL
}

// TestCacheSurfaces drives a miss-then-hit pair through HTTP and checks
// both the /v1/stats JSON object and the /v1/metrics exposition report it.
func TestCacheSurfaces(t *testing.T) {
	c, url := startCachedServer(t)
	a := artifacts(t)
	for i := 0; i < 2; i++ {
		resp, err := c.Predict(a.Serve[0].ID, 500*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Missed {
			t.Fatalf("request %d missed", i)
		}
		if want := i == 1; resp.Cached != want {
			t.Errorf("request %d cached = %v, want %v", i, resp.Cached, want)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Runtime.Cache
	if cs == nil {
		t.Fatal("stats omit the cache object on a cached deployment")
	}
	if cs.Hits != 1 || cs.Misses != 1 || cs.Fills != 1 || cs.HitRate != 0.5 {
		t.Errorf("cache stats = %+v, want 1 hit / 1 miss / 1 fill", cs)
	}

	res, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`schemble_cache_requests_total{result="hit"} 1`,
		`schemble_cache_requests_total{result="miss"} 1`,
		`schemble_cache_requests_total{result="bypass"} 0`,
		`schemble_cache_fills_total 1`,
		`schemble_cache_entries 1`,
		`schemble_cache_hit_rate 0.5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCacheSurfacesOmittedWhenOff pins the cacheless wire format: no cache
// object in stats, no cache series in metrics.
func TestCacheSurfacesOmittedWhenOff(t *testing.T) {
	c, _, a := startServer(t)
	if _, err := c.Predict(a.Serve[0].ID, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Runtime.Cache != nil {
		t.Errorf("cacheless deployment reports cache stats: %+v", st.Runtime.Cache)
	}
}
