package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"schemble/internal/testutil"

	"schemble/internal/core"
	"schemble/internal/metrics"
	"schemble/internal/obsv"
	"schemble/internal/pipeline"
	"schemble/internal/serve"
)

// startObsServer spins up the HTTP stack over a runtime with decision
// tracing enabled.
func startObsServer(t *testing.T) (*Client, *Handler, *pipeline.Artifacts) {
	t.Helper()
	a := artifacts(t)
	h := New(Config{
		Server: serve.New(serve.Config{
			Ensemble:  a.Ensemble,
			Scheduler: &core.DP{Delta: 0.01},
			Rewarder:  a.Profile,
			Estimator: a.Predictor,
			TimeScale: 0.05,
			Seed:      1,
			Obs:       obsv.Config{TraceBuffer: 256},
		}),
		Estimator: a.Predictor,
		Pool:      a.Serve,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return NewClient(ts.URL), h, a
}

// TestPredictRejectedReturns503 drains the runtime so every new request is
// shed, then checks shedding is visible on the wire: HTTP 503 with a
// Retry-After hint and a JSON body carrying Rejected, which the typed
// client surfaces without error. The decision trace converts to a
// serving-log record whose summary reports RejectedRate, not DMR.
func TestPredictRejectedReturns503(t *testing.T) {
	c, h, a := startObsServer(t)
	if err := h.srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Raw request first: status code and headers.
	body, _ := json.Marshal(PredictRequest{SampleID: a.Serve[0].ID, DeadlineMS: 500})
	r, err := c.HTTPClient.Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After hint")
	}
	var pr PredictResponse
	if err := json.NewDecoder(r.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Rejected || !pr.Missed {
		t.Errorf("503 body = %+v, want rejected+missed", pr)
	}
	// Typed client: a shed request is data, not an error.
	resp, err := c.Predict(a.Serve[1].ID, 500*time.Millisecond)
	if err != nil {
		t.Fatalf("client treats 503 as transport error: %v", err)
	}
	if !resp.Rejected {
		t.Errorf("client response = %+v, want rejected", resp)
	}
	// Taxonomy end to end: traces -> serving-log records -> Summary.
	tr, err := c.Traces(10)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled || len(tr.Traces) != 2 {
		t.Fatalf("trace response = enabled=%v n=%d", tr.Enabled, len(tr.Traces))
	}
	recs := make([]metrics.Record, len(tr.Traces))
	for i, d := range tr.Traces {
		recs[i] = d.Record()
	}
	sum := metrics.Summarize(recs)
	if sum.RejectedRate != 1 || sum.DMR != 0 {
		t.Errorf("RejectedRate=%v DMR=%v, want 1/0", sum.RejectedRate, sum.DMR)
	}
}

// TestPredictClientDisconnect checks a canceled request leaves the handler
// without writing a response, while the outcome is still recorded once the
// runtime resolves it.
func TestPredictClientDisconnect(t *testing.T) {
	_, h, a := startObsServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone when the handler runs
	body, _ := json.Marshal(PredictRequest{SampleID: a.Serve[0].ID, DeadlineMS: 1000})
	req := httptest.NewRequest(http.MethodPost, "/v1/predict", bytes.NewReader(body)).WithContext(ctx)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if rw.Body.Len() != 0 {
		t.Errorf("handler wrote %q to a dead connection", rw.Body.String())
	}
	// The request still resolves inside the runtime and lands in the
	// handler's counters, flagged canceled.
	testutil.Poll(t, 5*time.Second, "canceled request recorded", func() bool {
		h.mux.Lock()
		st := h.st
		h.mux.Unlock()
		return st.canceled == 1 && st.served+st.degraded+st.missed+st.rejected == 1
	})
}

// promLine matches one Prometheus text-format sample line:
// name{labels} value — enough of the 0.0.4 grammar to catch malformed
// output without an external parser.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

// checkPromText validates every line of an exposition and returns the
// sample lines.
func checkPromText(t *testing.T, text string) []string {
	t.Helper()
	var samples []string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
			continue
		}
		samples = append(samples, line)
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	c, _, a := startObsServer(t)
	const n = 5
	for i := 0; i < n; i++ {
		if _, err := c.Predict(a.Serve[i].ID, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(checkPromText(t, text)) == 0 {
		t.Fatal("empty exposition")
	}
	for _, want := range []string{
		`schemble_submitted_total 5`,
		`schemble_requests_total{outcome="served"}`,
		`schemble_requests_total{outcome="rejected"} 0`,
		`schemble_model_queue_depth{model=`,
		`schemble_traces_total 5`,
		`# TYPE schemble_request_latency_seconds histogram`,
		`schemble_request_latency_seconds_bucket{outcome="served",le="+Inf"} `,
		`schemble_request_latency_seconds_count{outcome="served"} `,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsWithoutObserver checks the exposition degrades gracefully
// when tracing is off: runtime counters render, trace and histogram
// series are absent.
func TestMetricsWithoutObserver(t *testing.T) {
	c, _, a := startServer(t)
	if _, err := c.Predict(a.Serve[0].ID, 500*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	checkPromText(t, text)
	if !strings.Contains(text, "schemble_requests_total") {
		t.Error("runtime counters missing")
	}
	if strings.Contains(text, "schemble_traces_total") ||
		strings.Contains(text, "schemble_request_latency_seconds") {
		t.Error("observer series rendered with observability off")
	}
	// The trace endpoint reports disabled rather than erroring.
	tr, err := c.Traces(5)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Enabled || len(tr.Traces) != 0 {
		t.Errorf("trace response = %+v, want disabled", tr)
	}
}

func TestTraceEndpoint(t *testing.T) {
	c, _, a := startObsServer(t)
	const n = 6
	for i := 0; i < n; i++ {
		if _, err := c.Predict(a.Serve[i].ID, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	tr, err := c.Traces(3)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled || tr.Total != n || tr.Dropped != 0 {
		t.Fatalf("trace counters = %+v", tr)
	}
	if len(tr.Traces) != 3 {
		t.Fatalf("got %d traces, want 3", len(tr.Traces))
	}
	// Chronological order, newest last: IDs 4, 5, 6.
	for i, d := range tr.Traces {
		if d.ID != uint64(n-2+i) {
			t.Errorf("trace %d ID = %d", i, d.ID)
		}
		if d.Outcome == "" || d.Score == 0 && len(d.Subset) == 0 {
			t.Errorf("trace %d lacks decision context: %+v", i, d)
		}
	}
	// Bad query parameter.
	r, err := c.HTTPClient.Get(c.BaseURL + "/v1/trace?last=nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("bad last status = %d", r.StatusCode)
	}
}

// TestConcurrentScrapeUnderLoad drives 200 requests while scrapers hammer
// /v1/metrics and /v1/trace — the -race acceptance check for the whole
// observability path.
func TestConcurrentScrapeUnderLoad(t *testing.T) {
	c, h, a := startObsServer(t)
	const n = 200
	var wg sync.WaitGroup
	loadDone := make(chan struct{})
	errs := make(chan error, n+16)

	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n/8; i++ {
				if _, err := c.Predict(a.Serve[(w*n/8+i)%len(a.Serve)].ID, time.Second); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	var scrapeWG sync.WaitGroup
	for g := 0; g < 2; g++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-loadDone:
					return
				default:
				}
				text, err := c.Metrics()
				if err != nil {
					errs <- err
					return
				}
				if !strings.Contains(text, "schemble_requests_total") {
					errs <- fmt.Errorf("scrape missing outcome counters: %q", text)
					return
				}
				if _, err := c.Traces(32); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(loadDone)
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Everything resolved exactly once, and every resolution traced.
	rt := h.srv.Stats()
	if rt.Resolved != n {
		t.Fatalf("resolved %d, want %d", rt.Resolved, n)
	}
	snap := h.srv.Observer().Snapshot()
	if snap.TracesTotal != n {
		t.Errorf("traces = %d, want %d", snap.TracesTotal, n)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	checkPromText(t, text)
}
