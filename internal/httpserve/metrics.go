package httpserve

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"schemble/internal/obsv"
	"schemble/internal/serve"
)

// TraceResponse is the /v1/trace payload.
type TraceResponse struct {
	// Enabled is false when the runtime was built without a trace buffer;
	// Total/Dropped are the ring's exact lifetime counters.
	Enabled bool                 `json:"enabled"`
	Total   uint64               `json:"total"`
	Dropped uint64               `json:"dropped"`
	Traces  []obsv.DecisionTrace `json:"traces"`
}

// defaultTraceLast bounds /v1/trace responses when ?last is omitted.
const defaultTraceLast = 64

func (h *Handler) handleTrace(w http.ResponseWriter, r *http.Request) {
	last := defaultTraceLast
	if q := r.URL.Query().Get("last"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			http.Error(w, "last must be a positive integer", http.StatusBadRequest)
			return
		}
		last = n
	}
	resp := TraceResponse{Traces: []obsv.DecisionTrace{}}
	if obs := h.srv.Observer(); obs != nil {
		resp.Enabled = true
		snap := obs.Snapshot()
		resp.Total, resp.Dropped = snap.TracesTotal, snap.TracesDropped
		if traces := obs.Last(last); traces != nil {
			resp.Traces = traces
		}
	}
	writeJSON(w, resp)
}

// handleMetrics renders the runtime's counters, gauges and latency
// histograms in the Prometheus text exposition format (version 0.0.4),
// hand-rolled so the server stays dependency-free.
func (h *Handler) handleMetrics(w http.ResponseWriter) {
	var b strings.Builder
	rt := h.srv.Stats()

	writeHeader(&b, "schemble_requests_total", "counter", "Resolved requests by outcome.")
	for _, outcome := range obsv.Outcomes {
		// Exhaustive over the taxonomy (enforced by the
		// exhaustiveoutcome analyzer): a new outcome must pick its
		// Stats counter here to appear in /v1/metrics.
		var v uint64
		switch outcome {
		case obsv.OutcomeServed:
			v = rt.Served
		case obsv.OutcomeDegraded:
			v = rt.Degraded
		case obsv.OutcomeMissed:
			v = rt.Missed
		case obsv.OutcomeRejected:
			v = rt.Rejected
		}
		fmt.Fprintf(&b, "schemble_requests_total{outcome=%q} %d\n", outcome, v)
	}

	writeHeader(&b, "schemble_submitted_total", "counter", "Requests accepted by Submit.")
	fmt.Fprintf(&b, "schemble_submitted_total %d\n", rt.Submitted)

	writeHeader(&b, "schemble_buffered", "gauge", "Requests awaiting scheduling.")
	fmt.Fprintf(&b, "schemble_buffered %d\n", rt.Buffered)
	writeHeader(&b, "schemble_inflight", "gauge", "Committed requests with unfinished tasks.")
	fmt.Fprintf(&b, "schemble_inflight %d\n", rt.InFlight)
	writeHeader(&b, "schemble_draining", "gauge", "1 while the runtime is draining.")
	fmt.Fprintf(&b, "schemble_draining %d\n", boolGauge(rt.Draining))

	writeHeader(&b, "schemble_load", "gauge", "Smoothed overload-controller pressure (~1 at the target backlog).")
	fmt.Fprintf(&b, "schemble_load %g\n", rt.Load)
	writeHeader(&b, "schemble_ladder_state", "gauge", "Degradation-ladder rung (0 = full service).")
	fmt.Fprintf(&b, "schemble_ladder_state %d\n", rt.Ladder)
	writeCacheMetrics(&b, rt)
	writeAdaptMetrics(&b, rt)
	writeClassMetrics(&b, rt)
	writeModelMetrics(&b, rt)
	writeObserverMetrics(&b, h.srv.Observer())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func writeHeader(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func boolGauge(v bool) int {
	if v {
		return 1
	}
	return 0
}

// writeCacheMetrics renders the result-cache counters; cacheless
// deployments render nothing.
func writeCacheMetrics(b *strings.Builder, rt serve.Stats) {
	c := rt.Cache
	if c == nil {
		return
	}
	writeHeader(b, "schemble_cache_requests_total", "counter", "Cache lookups by result.")
	for _, result := range obsv.CacheOutcomes {
		// Exhaustive over the cache taxonomy (enforced by the
		// exhaustiveoutcome analyzer): a new cache outcome must pick its
		// Snapshot counter here to appear in /v1/metrics.
		var v uint64
		switch result {
		case obsv.CacheOutcomeHit:
			v = c.Hits
		case obsv.CacheOutcomeMiss:
			v = c.Misses
		case obsv.CacheOutcomeBypass:
			v = c.Bypasses
		}
		fmt.Fprintf(b, "schemble_cache_requests_total{result=%q} %d\n", result, v)
	}
	writeHeader(b, "schemble_cache_fills_total", "counter", "Entries written on miss resolution.")
	fmt.Fprintf(b, "schemble_cache_fills_total %d\n", c.Fills)
	writeHeader(b, "schemble_cache_evictions_total", "counter", "Entries evicted by LRU capacity pressure.")
	fmt.Fprintf(b, "schemble_cache_evictions_total %d\n", c.Evictions)
	writeHeader(b, "schemble_cache_expirations_total", "counter", "Entries dropped at lookup for exceeding the TTL.")
	fmt.Fprintf(b, "schemble_cache_expirations_total %d\n", c.Expirations)
	writeHeader(b, "schemble_cache_entries", "gauge", "Live cache entries.")
	fmt.Fprintf(b, "schemble_cache_entries %d\n", c.Entries)
	writeHeader(b, "schemble_cache_hit_rate", "gauge", "Hits over hits+misses (bypasses excluded).")
	fmt.Fprintf(b, "schemble_cache_hit_rate %g\n", c.HitRate)
}

// writeAdaptMetrics renders the online-adaptation layer's state: live
// latency quantiles and inflation factors per model, drift detector
// signals, and recalibration counters. Deployments with adaptation off
// render nothing.
func writeAdaptMetrics(b *strings.Builder, rt serve.Stats) {
	a := rt.Adapt
	if a == nil {
		return
	}
	name := func(k int) string {
		if k < len(rt.Models) {
			return rt.Models[k].Name
		}
		return strconv.Itoa(k)
	}
	writeHeader(b, "schemble_adapt_samples_total", "counter", "Latency observations ingested into the live profile, by model.")
	for k := range a.Models {
		fmt.Fprintf(b, "schemble_adapt_samples_total{model=%q} %d\n", name(k), a.Models[k].Samples)
	}
	writeHeader(b, "schemble_adapt_inflation", "gauge", "Live cost-inflation factor (observed quantile over profiled mean) the scheduler plans with, by model.")
	for k := range a.Models {
		fmt.Fprintf(b, "schemble_adapt_inflation{model=%q} %g\n", name(k), a.Models[k].Inflation)
	}
	writeHeader(b, "schemble_adapt_latency_seconds", "gauge", "Live latency profile quantiles (virtual time), by model.")
	for k := range a.Models {
		m := a.Models[k]
		fmt.Fprintf(b, "schemble_adapt_latency_seconds{model=%q,quantile=\"0.5\"} %s\n", name(k), formatSeconds(m.P50.Seconds()))
		fmt.Fprintf(b, "schemble_adapt_latency_seconds{model=%q,quantile=\"0.9\"} %s\n", name(k), formatSeconds(m.P90.Seconds()))
		fmt.Fprintf(b, "schemble_adapt_latency_seconds{model=%q,quantile=\"0.99\"} %s\n", name(k), formatSeconds(m.P99.Seconds()))
	}
	writeHeader(b, "schemble_drift_active", "gauge", "1 while the drift detector flags the signal (per-model latency, global score).")
	for k := range a.Models {
		fmt.Fprintf(b, "schemble_drift_active{signal=\"latency\",model=%q} %d\n", name(k), boolGauge(a.Models[k].Drift))
	}
	fmt.Fprintf(b, "schemble_drift_active{signal=\"score\"} %d\n", boolGauge(a.ScoreDrift))
	writeHeader(b, "schemble_drift_events_total", "counter", "Drift transitions (enter or clear) observed, by signal.")
	fmt.Fprintf(b, "schemble_drift_events_total{signal=\"latency\"} %d\n", a.LatencyEvents)
	fmt.Fprintf(b, "schemble_drift_events_total{signal=\"score\"} %d\n", a.ScoreEvents)
	writeHeader(b, "schemble_adapt_recal_epochs_total", "counter", "Recalibration refits attempted.")
	fmt.Fprintf(b, "schemble_adapt_recal_epochs_total %d\n", a.RecalEpochs)
	writeHeader(b, "schemble_adapt_recal_swaps_total", "counter", "Recalibration refits accepted past the hysteresis guard.")
	fmt.Fprintf(b, "schemble_adapt_recal_swaps_total %d\n", a.RecalSwaps)
	writeHeader(b, "schemble_adapt_recal_pairs", "gauge", "Outcome pairs in the recalibration reservoir.")
	fmt.Fprintf(b, "schemble_adapt_recal_pairs %d\n", a.RecalPairs)
	writeHeader(b, "schemble_adapt_recal_active", "gauge", "1 while a non-identity calibration map is live.")
	fmt.Fprintf(b, "schemble_adapt_recal_active %d\n", boolGauge(a.RecalActive))
}

// writeClassMetrics renders per-class admission/outcome metrics; classless
// deployments render nothing.
func writeClassMetrics(b *strings.Builder, rt serve.Stats) {
	if len(rt.Classes) == 0 {
		return
	}
	writeHeader(b, "schemble_class_requests_total", "counter", "Resolved requests by class and outcome.")
	for _, c := range rt.Classes {
		for _, outcome := range obsv.Outcomes {
			// Exhaustive over the taxonomy (enforced by the
			// exhaustiveoutcome analyzer): a new outcome must pick its
			// per-class counter here to appear in /v1/metrics.
			var v uint64
			switch outcome {
			case obsv.OutcomeServed:
				v = c.Served
			case obsv.OutcomeDegraded:
				v = c.Degraded
			case obsv.OutcomeMissed:
				v = c.Missed
			case obsv.OutcomeRejected:
				v = c.Rejected
			}
			fmt.Fprintf(b, "schemble_class_requests_total{class=%q,outcome=%q} %d\n", c.Name, outcome, v)
		}
	}
	writeHeader(b, "schemble_class_shed_total", "counter", "Requests shed by the admission controller, by class (a subset of rejected).")
	for _, c := range rt.Classes {
		fmt.Fprintf(b, "schemble_class_shed_total{class=%q} %d\n", c.Name, c.Shed)
	}
	writeHeader(b, "schemble_class_slo_attainment", "gauge", "Fraction of completed requests that met the deadline, by class.")
	for _, c := range rt.Classes {
		fmt.Fprintf(b, "schemble_class_slo_attainment{class=%q} %g\n", c.Name, c.SLOAttainment)
	}
	writeHeader(b, "schemble_class_service_level", "gauge", "Degradation level by class (0 full, 1 capped, 2 greedy, 3 shed).")
	for _, c := range rt.Classes {
		var lvl int
		switch c.Level {
		case "full":
			lvl = 0
		case "capped":
			lvl = 1
		case "greedy":
			lvl = 2
		case "shed":
			lvl = 3
		}
		fmt.Fprintf(b, "schemble_class_service_level{class=%q} %d\n", c.Name, lvl)
	}
}

// writeModelMetrics renders per-model health: queue depth gauges, the
// replica-pool gauges, breaker and crash-window state, and the
// fault/mitigation counters.
func writeModelMetrics(b *strings.Builder, rt serve.Stats) {
	writeHeader(b, "schemble_model_queue_depth", "gauge", "Per-model task queue occupancy (excludes tasks pulled into forming batches).")
	for k, m := range rt.Models {
		fmt.Fprintf(b, "schemble_model_queue_depth{model=%q} %d\n", m.Name, rt.QueueDepth[k])
	}
	writeHeader(b, "schemble_model_replicas", "gauge", "Replica-pool size per model.")
	for k, m := range rt.Models {
		fmt.Fprintf(b, "schemble_model_replicas{model=%q} %d\n", m.Name, rt.Replicas[k])
	}
	writeHeader(b, "schemble_model_forming", "gauge", "Tasks pulled off the model's queue into a forming or executing batch.")
	for k, m := range rt.Models {
		fmt.Fprintf(b, "schemble_model_forming{model=%q} %d\n", m.Name, rt.Forming[k])
	}
	writeHeader(b, "schemble_replica_busy", "gauge", "Batch size the replica is executing right now (0 = idle).")
	for k, m := range rt.Models {
		for r, busy := range rt.ReplicaBusy[k] {
			fmt.Fprintf(b, "schemble_replica_busy{model=%q,replica=\"%d\"} %d\n", m.Name, r, busy)
		}
	}
	writeHeader(b, "schemble_replica_executed_total", "counter", "Tasks executed, by replica.")
	for _, m := range rt.Models {
		for r, v := range m.ReplicaExecuted {
			fmt.Fprintf(b, "schemble_replica_executed_total{model=%q,replica=\"%d\"} %d\n", m.Name, r, v)
		}
	}
	writeHeader(b, "schemble_replica_failures_total", "counter", "Tasks failed permanently, by replica.")
	for _, m := range rt.Models {
		for r, v := range m.ReplicaFailures {
			fmt.Fprintf(b, "schemble_replica_failures_total{model=%q,replica=\"%d\"} %d\n", m.Name, r, v)
		}
	}
	if rt.BatchSizes != nil {
		// Cumulative le-buckets over executed batch sizes: the Prometheus
		// histogram shape, rendered from the exact per-size counts.
		writeHeader(b, "schemble_batch_size", "histogram", "Executed micro-batch sizes per model.")
		for k, m := range rt.Models {
			var cum, sum uint64
			for i, c := range rt.BatchSizes[k] {
				cum += c
				sum += uint64(i+1) * c
				fmt.Fprintf(b, "schemble_batch_size_bucket{model=%q,le=\"%d\"} %d\n", m.Name, i+1, cum)
			}
			fmt.Fprintf(b, "schemble_batch_size_bucket{model=%q,le=\"+Inf\"} %d\n", m.Name, cum)
			fmt.Fprintf(b, "schemble_batch_size_sum{model=%q} %d\n", m.Name, sum)
			fmt.Fprintf(b, "schemble_batch_size_count{model=%q} %d\n", m.Name, cum)
		}
	}
	writeHeader(b, "schemble_model_breaker_open", "gauge", "1 while the model's circuit breaker is open.")
	for _, m := range rt.Models {
		fmt.Fprintf(b, "schemble_model_breaker_open{model=%q} %d\n", m.Name, boolGauge(m.Breaker == "open"))
	}
	writeHeader(b, "schemble_model_down", "gauge", "1 while the model replica sits in a crash-recovery window.")
	for _, m := range rt.Models {
		fmt.Fprintf(b, "schemble_model_down{model=%q} %d\n", m.Name, boolGauge(m.Down))
	}
	counters := []struct {
		name, help string
		v          func(serve.ModelHealth) uint64
	}{
		{"executed", "Tasks whose attempt chain ran.", func(m serve.ModelHealth) uint64 { return m.Executed }},
		{"failures", "Tasks that failed permanently.", func(m serve.ModelHealth) uint64 { return m.Failures }},
		{"transient_faults", "Transient faults observed.", func(m serve.ModelHealth) uint64 { return m.Transient }},
		{"stragglers", "Straggling attempts observed.", func(m serve.ModelHealth) uint64 { return m.Stragglers }},
		{"crashes", "Attempts hitting a crashed replica.", func(m serve.ModelHealth) uint64 { return m.Crashes }},
		{"timeouts", "Attempts abandoned at the deadline.", func(m serve.ModelHealth) uint64 { return m.Timeouts }},
		{"retries", "Retry attempts issued.", func(m serve.ModelHealth) uint64 { return m.Retries }},
		{"hedges", "Hedge attempts issued.", func(m serve.ModelHealth) uint64 { return m.Hedges }},
		{"breaker_trips", "Circuit breaker open transitions.", func(m serve.ModelHealth) uint64 { return m.BreakerTrips }},
	}
	for _, c := range counters {
		name := "schemble_model_" + c.name + "_total"
		writeHeader(b, name, "counter", c.help)
		for _, m := range rt.Models {
			fmt.Fprintf(b, "%s{model=%q} %d\n", name, m.Name, c.v(m))
		}
	}
}

// writeObserverMetrics renders trace counters and the per-outcome latency
// histograms; a nil observer (observability disabled) renders nothing.
func writeObserverMetrics(b *strings.Builder, obs *obsv.Observer) {
	if obs == nil {
		return
	}
	snap := obs.Snapshot()
	writeHeader(b, "schemble_traces_total", "counter", "Decision traces recorded.")
	fmt.Fprintf(b, "schemble_traces_total %d\n", snap.TracesTotal)
	writeHeader(b, "schemble_traces_dropped_total", "counter", "Decision traces evicted from the ring buffer.")
	fmt.Fprintf(b, "schemble_traces_dropped_total %d\n", snap.TracesDropped)

	writeHeader(b, "schemble_request_latency_seconds", "histogram",
		"End-to-end request latency (virtual time) by outcome.")
	labels := make([]string, 0, len(snap.Latency))
	for outcome := range snap.Latency {
		labels = append(labels, outcome)
	}
	sort.Strings(labels)
	for _, outcome := range labels {
		hs := snap.Latency[outcome]
		var cum uint64
		for i, bound := range hs.Bounds {
			cum += hs.Counts[i]
			fmt.Fprintf(b, "schemble_request_latency_seconds_bucket{outcome=%q,le=%q} %d\n",
				outcome, formatSeconds(bound.Seconds()), cum)
		}
		fmt.Fprintf(b, "schemble_request_latency_seconds_bucket{outcome=%q,le=\"+Inf\"} %d\n",
			outcome, hs.Count)
		fmt.Fprintf(b, "schemble_request_latency_seconds_sum{outcome=%q} %s\n",
			outcome, formatSeconds(hs.Sum.Seconds()))
		fmt.Fprintf(b, "schemble_request_latency_seconds_count{outcome=%q} %d\n",
			outcome, hs.Count)
	}
}

func formatSeconds(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
