// Package httpserve exposes a fitted Schemble deployment over HTTP with a
// small JSON API, the transport stand-in for the paper's "queries are sent
// to the server through RPC":
//
//	POST /v1/predict    {"sample_id": 17, "deadline_ms": 150}
//	                 -> {"probs": [...], "subset": [0,2], "latency_ms": 93.1}
//	POST /v1/difficulty {"features": [ ... ]}
//	                 -> {"score": 0.34}
//	GET  /v1/stats      -> served/missed counters and mean subset size
//	GET  /v1/health     -> per-model breaker/fault health, "ok"|"degraded"
//	GET  /v1/healthz    -> 200 "ok" (liveness only)
//	GET  /v1/metrics    -> Prometheus text exposition (counters, gauges,
//	                       per-outcome latency histograms)
//	GET  /v1/trace?last=N -> the N most recent decision traces (JSON;
//	                       requires the runtime's trace buffer)
//
// Predict returns 200 for served, degraded and missed outcomes; a request
// the runtime explicitly sheds (saturation, drain) returns 503 with a
// Retry-After hint so load balancers can back off.
//
// Requests reference samples by ID in the deployment's serving pool (the
// simulator owns the inputs; a production system would carry the payload
// itself). The handler drives the concurrent serve.Server underneath, so
// HTTP requests experience real scheduling, queueing and deadlines.
package httpserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"schemble/internal/dataset"
	"schemble/internal/discrepancy"
	"schemble/internal/serve"
)

// PredictRequest asks for one ensemble inference.
type PredictRequest struct {
	// SampleID selects the input from the serving pool.
	SampleID int `json:"sample_id"`
	// DeadlineMS is the relative deadline in (virtual) milliseconds; when
	// omitted and Class names a configured request class, the class's
	// deadline applies.
	DeadlineMS float64 `json:"deadline_ms"`
	// Class selects the request class (admission priority, default
	// deadline). The X-Schemble-Class header overrides it. Unknown or
	// empty names fall back to the configured default class; ignored on
	// classless deployments.
	Class string `json:"class,omitempty"`
}

// PredictResponse is the inference outcome.
type PredictResponse struct {
	Missed bool `json:"missed"`
	// Rejected marks requests the runtime explicitly refused (queue
	// saturation, draining) rather than served late; Rejected implies
	// Missed.
	Rejected bool `json:"rejected,omitempty"`
	// Degraded marks requests served from a partial ensemble: some subset
	// models failed or were still running at the deadline, and the output
	// aggregates the models that completed (listed in Subset).
	Degraded bool `json:"degraded,omitempty"`
	// Cached marks answers served from the result cache without any model
	// execution; Subset names the models that produced the cached answer.
	Cached    bool      `json:"cached,omitempty"`
	Probs     []float64 `json:"probs,omitempty"`
	Value     float64   `json:"value,omitempty"`
	Subset    []int     `json:"subset,omitempty"`
	LatencyMS float64   `json:"latency_ms"`
}

// DifficultyRequest asks for a discrepancy-score estimate from raw
// features.
type DifficultyRequest struct {
	Features []float64 `json:"features"`
}

// DifficultyResponse carries the estimate.
type DifficultyResponse struct {
	Score float64 `json:"score"`
}

// Stats is the running counters snapshot, including the serving runtime's
// own health gauges.
type Stats struct {
	Served         int          `json:"served"`
	Degraded       int          `json:"degraded"`
	Missed         int          `json:"missed"`
	Rejected       int          `json:"rejected"`
	Canceled       int          `json:"canceled,omitempty"`
	MeanSubsetSize float64      `json:"mean_subset_size"`
	MeanLatencyMS  float64      `json:"mean_latency_ms"`
	Runtime        RuntimeStats `json:"runtime"`
}

// RuntimeStats mirrors serve.Stats for the JSON API: lifecycle counters
// plus instantaneous backlog gauges and per-model fault health.
type RuntimeStats struct {
	Submitted  uint64 `json:"submitted"`
	Served     uint64 `json:"served"`
	Degraded   uint64 `json:"degraded"`
	Missed     uint64 `json:"missed"`
	Rejected   uint64 `json:"rejected"`
	Resolved   uint64 `json:"resolved"`
	Buffered   int    `json:"buffered"`
	InFlight   int    `json:"in_flight"`
	QueueDepth []int  `json:"queue_depth"`
	// Replicas[k] is model k's replica-pool size; Forming[k] counts tasks
	// pulled off model k's queue into a forming or executing batch (so
	// QueueDepth[k]+Forming[k] covers every outstanding task exactly
	// once); ReplicaBusy[k][r] is the batch size replica r is executing.
	Replicas    []int   `json:"replicas"`
	Forming     []int   `json:"forming"`
	ReplicaBusy [][]int `json:"replica_busy"`
	// BatchSizes[k][b-1] counts executed batches of size b; omitted when
	// batching is disabled.
	BatchSizes [][]uint64    `json:"batch_sizes,omitempty"`
	Models     []ModelHealth `json:"models"`
	Draining   bool          `json:"draining"`
	// Load is the admission controller's smoothed pressure estimate (~1 at
	// the target backlog); Ladder/LadderState describe the degradation
	// rung; Classes carries per-class outcome counters and SLO attainment
	// (omitted on classless deployments).
	Load        float64      `json:"load"`
	Ladder      int          `json:"ladder"`
	LadderState string       `json:"ladder_state"`
	Classes     []ClassStats `json:"classes,omitempty"`
	// Cache carries the result-cache counters; omitted when no cache is
	// configured.
	Cache *CacheStats `json:"cache,omitempty"`
	// Adapt carries the online-adaptation snapshot (live latency
	// profiles, drift state, recalibration counters); omitted when
	// adaptation is off.
	Adapt *AdaptStats `json:"adapt,omitempty"`
}

// CacheStats mirrors rcache.Snapshot for the JSON API.
type CacheStats struct {
	Entries     int     `json:"entries"`
	Capacity    int     `json:"capacity"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
	Bypasses    uint64  `json:"bypasses"`
	Fills       uint64  `json:"fills"`
	Evictions   uint64  `json:"evictions"`
	Expirations uint64  `json:"expirations"`
	HitRate     float64 `json:"hit_rate"`
}

// AdaptStats mirrors adapt.Snapshot for the JSON API. Durations are
// microseconds, matching the trace wire convention.
type AdaptStats struct {
	Models        []AdaptModelStats `json:"models"`
	ScoreDrift    bool              `json:"score_drift"`
	BaselineScore float64           `json:"baseline_score"`
	LatencyEvents uint64            `json:"latency_events"`
	ScoreEvents   uint64            `json:"score_events"`
	RecalEpochs   uint64            `json:"recal_epochs"`
	RecalSwaps    uint64            `json:"recal_swaps"`
	RecalPairs    int               `json:"recal_pairs"`
	RecalActive   bool              `json:"recal_active"`
}

// AdaptModelStats is one model's live latency profile: observed quantiles
// against the frozen profiling mean, the inflation factor the scheduler's
// cost vector and the hedging threshold consume, and whether the drift
// detector currently flags the model.
type AdaptModelStats struct {
	Name           string  `json:"name"`
	Samples        uint64  `json:"samples"`
	MeanUS         int64   `json:"mean_us"`
	P50US          int64   `json:"p50_us"`
	P90US          int64   `json:"p90_us"`
	P99US          int64   `json:"p99_us"`
	ProfiledMeanUS int64   `json:"profiled_mean_us"`
	Inflation      float64 `json:"inflation"`
	Drift          bool    `json:"drift"`
}

// ClassStats mirrors serve.ClassStats for the JSON API.
type ClassStats struct {
	Name          string  `json:"name"`
	Priority      int     `json:"priority"`
	Weight        float64 `json:"weight"`
	Level         string  `json:"level"`
	Submitted     uint64  `json:"submitted"`
	Served        uint64  `json:"served"`
	Degraded      uint64  `json:"degraded"`
	Missed        uint64  `json:"missed"`
	Rejected      uint64  `json:"rejected"`
	Shed          uint64  `json:"shed"`
	SLOAttainment float64 `json:"slo_attainment"`
}

// ModelHealth mirrors serve.ModelHealth for the JSON API.
type ModelHealth struct {
	Name       string `json:"name"`
	Breaker    string `json:"breaker"`
	ConsecFail int    `json:"consecutive_failures,omitempty"`
	Trips      uint64 `json:"breaker_trips,omitempty"`
	Down       bool   `json:"down,omitempty"`
	Executed   uint64 `json:"executed"`
	Failures   uint64 `json:"failures,omitempty"`
	Transient  uint64 `json:"transient,omitempty"`
	Stragglers uint64 `json:"stragglers,omitempty"`
	Crashes    uint64 `json:"crashes,omitempty"`
	Timeouts   uint64 `json:"timeouts,omitempty"`
	Panics     uint64 `json:"panics,omitempty"`
	Retries    uint64 `json:"retries,omitempty"`
	Hedges     uint64 `json:"hedges,omitempty"`
	HedgeWins  uint64 `json:"hedge_wins,omitempty"`
	// ReplicaExecuted/ReplicaFailures break Executed and Failures down by
	// replica within the model's pool.
	ReplicaExecuted []uint64 `json:"replica_executed,omitempty"`
	ReplicaFailures []uint64 `json:"replica_failures,omitempty"`
}

// HealthResponse is the /v1/health report: "ok" when every model is
// schedulable, "degraded" when a breaker is open or a replica is down.
type HealthResponse struct {
	Status   string        `json:"status"`
	Draining bool          `json:"draining,omitempty"`
	Models   []ModelHealth `json:"models"`
}

// Handler serves the API. Construct with New, wire into any http.Server,
// and Close when done.
type Handler struct {
	srv       *serve.Server
	estimator discrepancy.ScoreEstimator
	pool      []*dataset.Sample
	byID      map[int]*dataset.Sample
	featDim   int
	cancel    context.CancelFunc

	mux sync.Mutex
	st  struct {
		served, degraded, missed, rejected int
		// canceled counts requests whose client disconnected before the
		// runtime resolved them; their outcome is still recorded above.
		canceled int
		sizeSum  int
		latSum   time.Duration
	}
}

// Config configures New.
type Config struct {
	// Server is the started-or-startable concurrent runtime.
	Server *serve.Server
	// Estimator answers /v1/difficulty (optional).
	Estimator discrepancy.ScoreEstimator
	// Pool is the serving pool /v1/predict draws samples from.
	Pool []*dataset.Sample
}

// New builds the handler and starts the underlying server.
func New(cfg Config) *Handler {
	if cfg.Server == nil || len(cfg.Pool) == 0 {
		panic("httpserve: Server and Pool are required")
	}
	h := &Handler{
		srv:       cfg.Server,
		estimator: cfg.Estimator,
		pool:      cfg.Pool,
		byID:      make(map[int]*dataset.Sample, len(cfg.Pool)),
		featDim:   len(cfg.Pool[0].Features),
	}
	for _, s := range cfg.Pool {
		h.byID[s.ID] = s
	}
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.srv.Start(ctx)
	return h
}

// Close drains the underlying server: committed work finishes (bounded by
// a grace period), then the runtime stops.
func (h *Handler) Close() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = h.srv.Drain(ctx)
	h.cancel()
	h.srv.Stop()
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/v1/healthz" && r.Method == http.MethodGet:
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	case r.URL.Path == "/v1/predict" && r.Method == http.MethodPost:
		h.handlePredict(w, r)
	case r.URL.Path == "/v1/difficulty" && r.Method == http.MethodPost:
		h.handleDifficulty(w, r)
	case r.URL.Path == "/v1/stats" && r.Method == http.MethodGet:
		h.handleStats(w)
	case r.URL.Path == "/v1/health" && r.Method == http.MethodGet:
		h.handleHealth(w)
	case r.URL.Path == "/v1/metrics" && r.Method == http.MethodGet:
		h.handleMetrics(w)
	case r.URL.Path == "/v1/trace" && r.Method == http.MethodGet:
		h.handleTrace(w, r)
	default:
		http.Error(w, "not found", http.StatusNotFound)
	}
}

func (h *Handler) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	sample, ok := h.byID[req.SampleID]
	if !ok {
		http.Error(w, fmt.Sprintf("unknown sample id %d", req.SampleID), http.StatusNotFound)
		return
	}
	class := req.Class
	if hd := r.Header.Get("X-Schemble-Class"); hd != "" {
		class = hd
	}
	// A missing deadline is an error only when nothing can default it: on
	// classed deployments even an empty class resolves to the default
	// class and inherits its deadline.
	if req.DeadlineMS < 0 || (req.DeadlineMS <= 0 && class == "" && !h.srv.Classed()) {
		http.Error(w, "deadline_ms must be positive", http.StatusBadRequest)
		return
	}
	deadline := time.Duration(req.DeadlineMS * float64(time.Millisecond))
	ch := h.srv.SubmitClass(sample, deadline, class)
	var res serve.Result
	select {
	case res = <-ch:
	case <-r.Context().Done():
		// Client disconnected mid-flight. The runtime still resolves the
		// request (exactly once), so collect its outcome in the background
		// for truthful accounting — but never write to the dead connection.
		go func() {
			h.recordOutcome(<-ch, true)
		}()
		return
	}
	h.recordOutcome(res, false)

	resp := PredictResponse{
		Missed:    res.Missed,
		Rejected:  res.Rejected,
		Degraded:  res.Degraded,
		Cached:    res.Cached,
		LatencyMS: float64(res.Latency) / float64(time.Millisecond),
	}
	if !res.Missed {
		resp.Probs = res.Output.Probs
		resp.Value = res.Output.Value
		resp.Subset = res.Subset.Models()
	}
	if res.Rejected {
		// Load shedding, not a scheduling miss: tell clients and load
		// balancers to back off and retry elsewhere or later. The hint is
		// derived from the admission controller's load estimate, so it
		// grows with the backlog instead of hammering an overloaded server
		// with fixed 1s retries.
		w.Header().Set("Retry-After", strconv.Itoa(h.srv.RetryAfterSeconds()))
		writeJSONStatus(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, resp)
}

// recordOutcome folds one resolved request into the handler's counters.
// canceled marks requests whose client went away before resolution.
func (h *Handler) recordOutcome(res serve.Result, canceled bool) {
	h.mux.Lock()
	defer h.mux.Unlock()
	if canceled {
		h.st.canceled++
	}
	switch {
	case res.Rejected:
		h.st.rejected++
	case res.Missed:
		h.st.missed++
	case res.Degraded:
		h.st.degraded++
		h.st.sizeSum += res.Subset.Size()
		h.st.latSum += res.Latency
	default:
		h.st.served++
		h.st.sizeSum += res.Subset.Size()
		h.st.latSum += res.Latency
	}
}

func (h *Handler) handleDifficulty(w http.ResponseWriter, r *http.Request) {
	if h.estimator == nil {
		http.Error(w, "no estimator configured", http.StatusNotImplemented)
		return
	}
	var req DifficultyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Features) != h.featDim {
		http.Error(w, fmt.Sprintf("features must have dimension %d", h.featDim), http.StatusBadRequest)
		return
	}
	score := h.estimator.Predict(&dataset.Sample{Features: req.Features})
	writeJSON(w, DifficultyResponse{Score: score})
}

func (h *Handler) handleStats(w http.ResponseWriter) {
	h.mux.Lock()
	st := h.st
	h.mux.Unlock()
	out := Stats{Served: st.served, Degraded: st.degraded, Missed: st.missed,
		Rejected: st.rejected, Canceled: st.canceled}
	if done := st.served + st.degraded; done > 0 {
		out.MeanSubsetSize = float64(st.sizeSum) / float64(done)
		out.MeanLatencyMS = float64(st.latSum) / float64(done) / float64(time.Millisecond)
	}
	rt := h.srv.Stats()
	out.Runtime = RuntimeStats{
		Submitted:   rt.Submitted,
		Served:      rt.Served,
		Degraded:    rt.Degraded,
		Missed:      rt.Missed,
		Rejected:    rt.Rejected,
		Resolved:    rt.Resolved,
		Buffered:    rt.Buffered,
		InFlight:    rt.InFlight,
		QueueDepth:  rt.QueueDepth,
		Replicas:    rt.Replicas,
		Forming:     rt.Forming,
		ReplicaBusy: rt.ReplicaBusy,
		BatchSizes:  rt.BatchSizes,
		Models:      modelHealth(rt),
		Draining:    rt.Draining,
		Load:        rt.Load,
		Ladder:      rt.Ladder,
		LadderState: rt.LadderState,
		Classes:     classStats(rt),
		Cache:       cacheStats(rt),
		Adapt:       adaptStats(rt),
	}
	writeJSON(w, out)
}

// cacheStats converts the runtime's result-cache snapshot to the JSON
// shape; nil when no cache is configured.
func cacheStats(rt serve.Stats) *CacheStats {
	c := rt.Cache
	if c == nil {
		return nil
	}
	return &CacheStats{
		Entries:     c.Entries,
		Capacity:    c.Capacity,
		Hits:        c.Hits,
		Misses:      c.Misses,
		Bypasses:    c.Bypasses,
		Fills:       c.Fills,
		Evictions:   c.Evictions,
		Expirations: c.Expirations,
		HitRate:     c.HitRate,
	}
}

// adaptStats converts the runtime's adaptation snapshot to the JSON
// shape; nil when adaptation is off.
func adaptStats(rt serve.Stats) *AdaptStats {
	a := rt.Adapt
	if a == nil {
		return nil
	}
	out := &AdaptStats{
		Models:        make([]AdaptModelStats, len(a.Models)),
		ScoreDrift:    a.ScoreDrift,
		BaselineScore: a.BaselineScore,
		LatencyEvents: a.LatencyEvents,
		ScoreEvents:   a.ScoreEvents,
		RecalEpochs:   a.RecalEpochs,
		RecalSwaps:    a.RecalSwaps,
		RecalPairs:    a.RecalPairs,
		RecalActive:   a.RecalActive,
	}
	for k, m := range a.Models {
		name := ""
		if k < len(rt.Models) {
			name = rt.Models[k].Name
		}
		out.Models[k] = AdaptModelStats{
			Name:           name,
			Samples:        m.Samples,
			MeanUS:         m.Mean.Microseconds(),
			P50US:          m.P50.Microseconds(),
			P90US:          m.P90.Microseconds(),
			P99US:          m.P99.Microseconds(),
			ProfiledMeanUS: m.ProfiledMean.Microseconds(),
			Inflation:      m.Inflation,
			Drift:          m.Drift,
		}
	}
	return out
}

// classStats converts the runtime's per-class snapshot to the JSON shape.
func classStats(rt serve.Stats) []ClassStats {
	if len(rt.Classes) == 0 {
		return nil
	}
	out := make([]ClassStats, len(rt.Classes))
	for i, c := range rt.Classes {
		out[i] = ClassStats{
			Name:          c.Name,
			Priority:      c.Priority,
			Weight:        c.Weight,
			Level:         c.Level,
			Submitted:     c.Submitted,
			Served:        c.Served,
			Degraded:      c.Degraded,
			Missed:        c.Missed,
			Rejected:      c.Rejected,
			Shed:          c.Shed,
			SLOAttainment: c.SLOAttainment,
		}
	}
	return out
}

// modelHealth converts the runtime's per-model snapshot to the JSON shape.
func modelHealth(rt serve.Stats) []ModelHealth {
	out := make([]ModelHealth, len(rt.Models))
	for k, m := range rt.Models {
		out[k] = ModelHealth{
			Name:       m.Name,
			Breaker:    m.Breaker,
			ConsecFail: m.ConsecutiveFailures,
			Trips:      m.BreakerTrips,
			Down:       m.Down,
			Executed:   m.Executed,
			Failures:   m.Failures,
			Transient:  m.Transient,
			Stragglers: m.Stragglers,
			Crashes:    m.Crashes,
			Timeouts:   m.Timeouts,
			Panics:     m.Panics,
			Retries:    m.Retries,
			Hedges:     m.Hedges,
			HedgeWins:  m.HedgeWins,
		}
		if len(m.ReplicaExecuted) > 1 {
			// Single-replica pools collapse to the model-level counters;
			// only real pools carry the per-replica breakdown.
			out[k].ReplicaExecuted = m.ReplicaExecuted
			out[k].ReplicaFailures = m.ReplicaFailures
		}
	}
	return out
}

// handleHealth reports per-model schedulability: "degraded" while any
// breaker is open or any replica sits in a crash-recovery window. Always
// HTTP 200 — /v1/healthz remains the liveness probe.
func (h *Handler) handleHealth(w http.ResponseWriter) {
	rt := h.srv.Stats()
	status := "ok"
	if !rt.Healthy() {
		status = "degraded"
	}
	writeJSON(w, HealthResponse{
		Status:   status,
		Draining: rt.Draining,
		Models:   modelHealth(rt),
	})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// writeJSONStatus writes a JSON body under a non-200 status code.
func writeJSONStatus(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
