package httpserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/serve"
)

// startClassedServer spins up the HTTP stack over a classed runtime.
func startClassedServer(t *testing.T) (*httptest.Server, *Handler) {
	t.Helper()
	a := artifacts(t)
	h := New(Config{
		Server: serve.New(serve.Config{
			Ensemble:  a.Ensemble,
			Scheduler: &core.DP{Delta: 0.01},
			Rewarder:  a.Profile,
			Estimator: a.Predictor,
			TimeScale: 0.05,
			Classes: []serve.Class{
				{Name: "gold", Priority: 1, Deadline: 400 * time.Millisecond, Weight: 3},
				{Name: "bronze", Priority: 0, Deadline: 600 * time.Millisecond, Weight: 1},
			},
			Seed: 1,
		}),
		Estimator: a.Predictor,
		Pool:      a.Serve,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return ts, h
}

func postPredict(t *testing.T, url string, body string, header string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/predict", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if header != "" {
		req.Header.Set("X-Schemble-Class", header)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestClassedPredictDefaults checks class selection over HTTP: the body's
// class field applies the class deadline when deadline_ms is omitted, and
// the X-Schemble-Class header overrides the body.
func TestClassedPredictDefaults(t *testing.T) {
	ts, h := startClassedServer(t)
	a := artifacts(t)
	id := strconv.Itoa(a.Serve[3].ID)

	// Class in the body, no deadline: the class default applies and the
	// request serves normally.
	resp := postPredict(t, ts.URL, `{"sample_id": `+id+`, "class": "gold"}`, "")
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || pr.Missed {
		t.Fatalf("classed predict: status %d missed=%v", resp.StatusCode, pr.Missed)
	}

	// Header overrides body; an unknown header class falls back to the
	// default class rather than erroring.
	resp = postPredict(t, ts.URL, `{"sample_id": `+id+`, "class": "gold"}`, "no-such-class")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("header-override predict: status %d", resp.StatusCode)
	}

	// No deadline and no class is still an error on classed deployments
	// only when the class resolves nowhere — classless behavior is pinned
	// by TestErrorPaths. Here an empty class with no deadline errors.
	resp = postPredict(t, ts.URL, `{"sample_id": `+id+`}`, "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("classed deployment must default empty class: status %d", resp.StatusCode)
	}

	// Per-class counters surfaced over /v1/stats.
	st := h.srv.Stats()
	if len(st.Classes) != 2 {
		t.Fatalf("runtime reports %d classes", len(st.Classes))
	}
	var raw struct {
		Runtime struct {
			Load        float64      `json:"load"`
			LadderState string       `json:"ladder_state"`
			Classes     []ClassStats `json:"classes"`
		} `json:"runtime"`
	}
	r, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(raw.Runtime.Classes) != 2 || raw.Runtime.LadderState == "" {
		t.Errorf("stats JSON: %d classes, ladder %q", len(raw.Runtime.Classes), raw.Runtime.LadderState)
	}
	var total uint64
	for _, cs := range raw.Runtime.Classes {
		total += cs.Submitted
	}
	if total != 3 {
		t.Errorf("class-submitted total %d, want 3", total)
	}
}

// TestRetryAfterDerivedFromLoad floods a classed deployment far past
// capacity and checks the 503 contract: every shed response carries a
// Retry-After header that is a positive integer, and the header value
// tracks the runtime's load-derived hint rather than a hard-coded "1"
// (the serve-level growth law is pinned by qos.TestRetryAfterGrowsWithBacklog).
func TestRetryAfterDerivedFromLoad(t *testing.T) {
	ts, h := startClassedServer(t)
	a := artifacts(t)

	const n = 300
	var wg sync.WaitGroup
	var mu sync.Mutex
	sheds := 0
	retryAfters := map[string]int{}
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := `{"sample_id": ` + strconv.Itoa(a.Serve[i%50].ID) + `, "class": "bronze"}`
			resp := postPredict(t, ts.URL, body, "")
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusServiceUnavailable {
				return
			}
			ra := resp.Header.Get("Retry-After")
			mu.Lock()
			sheds++
			retryAfters[ra]++
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if sheds == 0 {
		t.Fatalf("%d concurrent bronze requests at 5x+ capacity shed nothing", n)
	}
	for ra, count := range retryAfters {
		secs, err := strconv.Atoi(ra)
		if err != nil || secs < 1 {
			t.Errorf("%d sheds carried invalid Retry-After %q", count, ra)
		}
	}
	// The handler derives the hint from the live estimator.
	if got := h.srv.RetryAfterSeconds(); got < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", got)
	}

	// The flood shows up in the class metrics exposition.
	r, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		"schemble_load ",
		"schemble_ladder_state ",
		`schemble_class_requests_total{class="bronze",outcome="rejected"}`,
		`schemble_class_shed_total{class="bronze"}`,
		`schemble_class_slo_attainment{class="gold"}`,
		`schemble_class_service_level{class="bronze"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/v1/metrics missing %q", want)
		}
	}
}
