package httpserve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Client is a typed client for the Schemble HTTP API.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 30s timeout.
	HTTPClient *http.Client
}

// NewClient builds a client for baseURL.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL:    baseURL,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) post(path string, req, resp interface{}) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("httpserve client: marshal: %w", err)
	}
	r, err := c.HTTPClient.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("httpserve client: %w", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("httpserve client: %s: %s", r.Status, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

func (c *Client) get(path string, resp interface{}) error {
	r, err := c.HTTPClient.Get(c.BaseURL + path)
	if err != nil {
		return fmt.Errorf("httpserve client: %w", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return fmt.Errorf("httpserve client: %s", r.Status)
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// Predict submits one inference request. A 503 from the server (the
// runtime shed the request) is not an error: the response comes back with
// Rejected set so callers can distinguish load shedding from transport
// failures.
func (c *Client) Predict(sampleID int, deadline time.Duration) (PredictResponse, error) {
	body, err := json.Marshal(PredictRequest{
		SampleID:   sampleID,
		DeadlineMS: float64(deadline) / float64(time.Millisecond),
	})
	if err != nil {
		return PredictResponse{}, fmt.Errorf("httpserve client: marshal: %w", err)
	}
	r, err := c.HTTPClient.Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return PredictResponse{}, fmt.Errorf("httpserve client: %w", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK && r.StatusCode != http.StatusServiceUnavailable {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return PredictResponse{}, fmt.Errorf("httpserve client: %s: %s", r.Status, bytes.TrimSpace(msg))
	}
	var resp PredictResponse
	if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
		return PredictResponse{}, fmt.Errorf("httpserve client: decode: %w", err)
	}
	return resp, nil
}

// Difficulty estimates the discrepancy score for raw features.
func (c *Client) Difficulty(features []float64) (float64, error) {
	var resp DifficultyResponse
	err := c.post("/v1/difficulty", DifficultyRequest{Features: features}, &resp)
	return resp.Score, err
}

// Stats fetches the running counters.
func (c *Client) Stats() (Stats, error) {
	var st Stats
	err := c.get("/v1/stats", &st)
	return st, err
}

// Health fetches the per-model fault-health report.
func (c *Client) Health() (HealthResponse, error) {
	var hr HealthResponse
	err := c.get("/v1/health", &hr)
	return hr, err
}

// Traces fetches the last n decision traces.
func (c *Client) Traces(last int) (TraceResponse, error) {
	var tr TraceResponse
	err := c.get(fmt.Sprintf("/v1/trace?last=%d", last), &tr)
	return tr, err
}

// Metrics fetches the raw Prometheus text exposition.
func (c *Client) Metrics() (string, error) {
	r, err := c.HTTPClient.Get(c.BaseURL + "/v1/metrics")
	if err != nil {
		return "", fmt.Errorf("httpserve client: %w", err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return "", fmt.Errorf("httpserve client: %s", r.Status)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return "", fmt.Errorf("httpserve client: %w", err)
	}
	return string(body), nil
}

// Healthy reports whether the server answers its health check.
func (c *Client) Healthy() bool {
	r, err := c.HTTPClient.Get(c.BaseURL + "/v1/healthz")
	if err != nil {
		return false
	}
	r.Body.Close()
	return r.StatusCode == http.StatusOK
}
