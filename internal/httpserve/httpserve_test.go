package httpserve

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/dataset"
	"schemble/internal/model"
	"schemble/internal/pipeline"
	"schemble/internal/serve"
)

var (
	artOnce sync.Once
	art     *pipeline.Artifacts
)

func artifacts(t testing.TB) *pipeline.Artifacts {
	t.Helper()
	artOnce.Do(func() {
		ds := dataset.TextMatching(dataset.Config{N: 900, Seed: 88})
		art = pipeline.Build(pipeline.Config{
			Dataset: ds, Models: model.TextMatchingModels(88),
			PredictorEpochs: 15, Seed: 88,
		})
	})
	return art
}

// startServer spins up the full HTTP stack over an httptest server.
func startServer(t *testing.T) (*Client, *Handler, *pipeline.Artifacts) {
	t.Helper()
	a := artifacts(t)
	h := New(Config{
		Server: serve.New(serve.Config{
			Ensemble:  a.Ensemble,
			Scheduler: &core.DP{Delta: 0.01},
			Rewarder:  a.Profile,
			Estimator: a.Predictor,
			TimeScale: 0.05,
			Seed:      1,
		}),
		Estimator: a.Predictor,
		Pool:      a.Serve,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return NewClient(ts.URL), h, a
}

func TestPredictEndToEnd(t *testing.T) {
	c, _, a := startServer(t)
	if !c.Healthy() {
		t.Fatal("health check failed")
	}
	s := a.Serve[3]
	resp, err := c.Predict(s.ID, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Missed {
		t.Fatal("uncontended request missed")
	}
	if len(resp.Probs) != 2 {
		t.Fatalf("probs = %v", resp.Probs)
	}
	if len(resp.Subset) == 0 {
		t.Error("no subset reported")
	}
	if resp.LatencyMS <= 0 {
		t.Error("no latency reported")
	}
}

func TestDifficultyEndpoint(t *testing.T) {
	c, _, a := startServer(t)
	score, err := c.Difficulty(a.Serve[0].Features)
	if err != nil {
		t.Fatal(err)
	}
	if score < 0 || score > 1 {
		t.Errorf("score out of range: %v", score)
	}
	want := a.Predictor.Predict(a.Serve[0])
	if score != want {
		t.Errorf("endpoint score %v != direct prediction %v", score, want)
	}
	// Wrong dimension is rejected.
	if _, err := c.Difficulty([]float64{1, 2}); err == nil ||
		!strings.Contains(err.Error(), "dimension") {
		t.Errorf("dimension mismatch not rejected: %v", err)
	}
}

func TestStatsAccumulate(t *testing.T) {
	c, _, a := startServer(t)
	for i := 0; i < 5; i++ {
		if _, err := c.Predict(a.Serve[i].ID, 500*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served+st.Missed+st.Rejected != 5 {
		t.Errorf("stats count %d+%d+%d, want 5", st.Served, st.Missed, st.Rejected)
	}
	if st.Served > 0 && (st.MeanSubsetSize < 1 || st.MeanLatencyMS <= 0) {
		t.Errorf("stats incomplete: %+v", st)
	}
	// The runtime snapshot rides along: 5 requests submitted, all
	// resolved, nothing left in flight.
	rt := st.Runtime
	if rt.Submitted != 5 || rt.Resolved != 5 {
		t.Errorf("runtime counters submitted=%d resolved=%d, want 5/5", rt.Submitted, rt.Resolved)
	}
	if rt.Served+rt.Missed+rt.Rejected != rt.Resolved {
		t.Errorf("runtime counter identity broken: %+v", rt)
	}
	if rt.Buffered != 0 || rt.InFlight != 0 || rt.Draining {
		t.Errorf("idle runtime reports backlog: %+v", rt)
	}
	if len(rt.QueueDepth) == 0 {
		t.Error("runtime snapshot missing queue depths")
	}
}

func TestErrorPaths(t *testing.T) {
	c, _, _ := startServer(t)
	if _, err := c.Predict(999999, 100*time.Millisecond); err == nil {
		t.Error("unknown sample not rejected")
	}
	if _, err := c.Predict(0, -5*time.Millisecond); err == nil {
		t.Error("negative deadline not rejected")
	}
	// Unknown path.
	r, err := c.HTTPClient.Get(c.BaseURL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 404 {
		t.Errorf("unknown path status %d", r.StatusCode)
	}
	// Wrong method.
	r, err = c.HTTPClient.Get(c.BaseURL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 404 {
		t.Errorf("GET predict status %d", r.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	c, _, a := startServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Predict(a.Serve[i%10].ID, time.Second); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Served+st.Missed != 20 {
		t.Errorf("served %d + missed %d, want 20", st.Served, st.Missed)
	}
}

// TestHealthEndpoint checks /v1/health on a fault-free server: status ok,
// every model listed, breakers reported "off" (tolerance disabled).
func TestHealthEndpoint(t *testing.T) {
	c, _, a := startServer(t)
	hr, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" {
		t.Errorf("status = %q, want ok", hr.Status)
	}
	if hr.Draining {
		t.Error("fresh server reports draining")
	}
	if len(hr.Models) != a.Ensemble.M() {
		t.Fatalf("health lists %d models, want %d", len(hr.Models), a.Ensemble.M())
	}
	for _, m := range hr.Models {
		if m.Name == "" {
			t.Error("model health entry missing name")
		}
		if m.Breaker != "off" {
			t.Errorf("model %s breaker = %q, want off with tolerance disabled", m.Name, m.Breaker)
		}
		if m.Down || m.Failures != 0 {
			t.Errorf("fault-free model %s reports faults: %+v", m.Name, m)
		}
	}
}

// startChaosServer builds the HTTP stack over a fault-injected runtime with
// the full tolerance suite enabled.
func startChaosServer(t *testing.T) (*Client, *pipeline.Artifacts) {
	t.Helper()
	a := artifacts(t)
	h := New(Config{
		Server: serve.New(serve.Config{
			Ensemble:  a.Ensemble,
			Scheduler: &core.DP{Delta: 0.01},
			Rewarder:  a.Profile,
			Estimator: a.Predictor,
			TimeScale: 0.05,
			Seed:      1,
			Faults: model.FaultConfig{
				TransientRate: 0.25,
				StragglerRate: 0.2,
				CrashMTBF:     4 * time.Second,
				Seed:          7,
			},
			Tolerance: serve.DefaultTolerance(),
		}),
		Estimator: a.Predictor,
		Pool:      a.Serve,
	})
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		h.Close()
	})
	return NewClient(ts.URL), a
}

// TestChaosServerHealthAndStats drives traffic through a fault-injected
// server and checks the degraded counter and per-model fault telemetry
// surface through /v1/stats and /v1/health.
func TestChaosServerHealthAndStats(t *testing.T) {
	c, a := startChaosServer(t)
	for i := 0; i < 40; i++ {
		if _, err := c.Predict(a.Serve[i%len(a.Serve)].ID, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Served + st.Degraded + st.Missed + st.Rejected; got != 40 {
		t.Errorf("handler counters sum to %d, want 40: %+v", got, st)
	}
	rt := st.Runtime
	if rt.Served+rt.Degraded+rt.Missed+rt.Rejected != rt.Resolved {
		t.Errorf("runtime counter identity broken: %+v", rt)
	}
	if uint64(st.Degraded) != rt.Degraded {
		t.Errorf("handler degraded %d != runtime degraded %d", st.Degraded, rt.Degraded)
	}
	if len(rt.Models) != a.Ensemble.M() {
		t.Fatalf("runtime stats list %d models, want %d", len(rt.Models), a.Ensemble.M())
	}
	var faults uint64
	for _, m := range rt.Models {
		faults += m.Transient + m.Stragglers + m.Crashes + m.Timeouts
		if m.Breaker == "off" {
			t.Errorf("model %s breaker off with tolerance enabled", m.Name)
		}
	}
	if faults == 0 {
		t.Error("40 requests at 25%/20% fault rates injected nothing")
	}
	hr, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" && hr.Status != "degraded" {
		t.Errorf("health status = %q", hr.Status)
	}
	if len(hr.Models) != a.Ensemble.M() {
		t.Errorf("health lists %d models, want %d", len(hr.Models), a.Ensemble.M())
	}
}
