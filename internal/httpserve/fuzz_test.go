package httpserve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"schemble/internal/core"
	"schemble/internal/serve"
)

// FuzzHTTPPredict hammers POST /v1/predict with arbitrary bodies against
// a live runtime. The contract under fuzz: the handler never panics and
// never emits a 5xx other than the deliberate 503 load-shed, malformed
// input maps to 4xx, and every 200/503 body is well-formed JSON. The
// handler is shared across iterations, so the fuzzer also exercises the
// runtime with whatever request mixture it invents.
func FuzzHTTPPredict(f *testing.F) {
	a := artifacts(f)
	h := New(Config{
		Server: serve.New(serve.Config{
			Ensemble:  a.Ensemble,
			Scheduler: &core.DP{Delta: 0.01},
			Rewarder:  a.Profile,
			Estimator: a.Predictor,
			TimeScale: 0.05,
			Seed:      42,
			Replicas:  []int{1, 2, 1},
			Batching:  serve.BatchConfig{MaxBatch: 4, MaxLinger: 5 * time.Millisecond},
		}),
		Estimator: a.Predictor,
		Pool:      a.Serve,
	})
	f.Cleanup(h.Close)

	f.Add([]byte(`{"sample_id": 3, "deadline_ms": 150}`))
	f.Add([]byte(`{"sample_id": 0, "deadline_ms": 0.5}`))
	f.Add([]byte(`{"sample_id": -1, "deadline_ms": 100}`))
	f.Add([]byte(`{"sample_id": 999999999, "deadline_ms": 100}`))
	f.Add([]byte(`{"sample_id": 1, "deadline_ms": -7}`))
	f.Add([]byte(`{"sample_id": 2, "deadline_ms": 1e308}`))
	f.Add([]byte(`{"sample_id": "three", "deadline_ms": {}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff\xfe garbage"))

	f.Fuzz(func(t *testing.T, body []byte) {
		// Harness clamp, not handler policy: a parseable body with an
		// enormous deadline is a legal request the runtime would resolve,
		// but an iteration must not wait minutes for it.
		var probe PredictRequest
		if err := json.Unmarshal(body, &probe); err == nil && probe.DeadlineMS > 60_000 {
			t.Skip("deadline beyond the harness budget")
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		req := httptest.NewRequest(http.MethodPost, "/v1/predict",
			strings.NewReader(string(body))).WithContext(ctx)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)

		code := rec.Code
		if code >= 500 && code != http.StatusServiceUnavailable {
			t.Fatalf("body %q: got %d, want only 503 among 5xx", body, code)
		}
		if code == http.StatusOK || code == http.StatusServiceUnavailable {
			var resp PredictResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
				t.Fatalf("body %q: status %d with unparseable response %q: %v",
					body, code, rec.Body.Bytes(), err)
			}
			if code == http.StatusServiceUnavailable && !resp.Rejected {
				t.Fatalf("body %q: 503 without rejected flag", body)
			}
		}
	})
}
