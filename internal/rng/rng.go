// Package rng provides a deterministic, splittable random number generator
// and the sampling distributions the synthetic workloads need (uniform,
// normal, gamma, beta, exponential, Poisson). Every experiment in the
// repository derives its randomness from a seeded rng.Source so results are
// reproducible run to run.
//
// The core generator is splitmix64 feeding xoshiro256**, the combination
// recommended by Blackman & Vigna. Split derives an independent stream from a
// parent, which lets each base model / dataset / trace own its own source
// without coordination.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is not safe for
// concurrent use; Split off a child per goroutine instead.
type Source struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// to seed and to split xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed via splitmix64.
func New(seed uint64) *Source {
	var src Source
	x := seed
	for i := range src.s {
		src.s[i] = splitmix64(&x)
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split returns a new Source whose stream is statistically independent of
// the parent's. The parent advances by one step.
func (r *Source) Split() *Source {
	x := r.Uint64()
	return New(splitmix64(&x))
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *Source) Bool(p float64) bool { return r.Float64() < p }

// Normal returns a draw from N(mean, stddev^2) using the Marsaglia polar
// method.
func (r *Source) Normal(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Exponential returns a draw from Exp(rate); its mean is 1/rate. It panics
// if rate <= 0.
func (r *Source) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exponential with non-positive rate")
	}
	u := r.Float64()
	//schemble:floateq-ok Float64 returns exactly 0 with probability 2^-53 and log(0) is -Inf; redraw on exact zero
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Gamma returns a draw from Gamma(shape, scale) using the Marsaglia-Tsang
// method (with the standard boost for shape < 1). It panics if either
// parameter is non-positive.
func (r *Source) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma with non-positive parameter")
	}
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		u := r.Float64()
		//schemble:floateq-ok Float64 returns exactly 0 with probability 2^-53 and pow(0, 1/a) collapses the draw; redraw on exact zero
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Normal(0, 1)
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return scale * d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return scale * d * v
		}
	}
}

// Beta returns a draw from Beta(a, b) via the gamma ratio.
func (r *Source) Beta(a, b float64) float64 {
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	//schemble:floateq-ok gamma draws are non-negative; the ratio is 0/0 only when both are exactly 0
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Poisson returns a draw from Poisson(lambda). For small lambda it uses
// Knuth's product method; for large lambda the PTRS-like normal
// approximation with rejection is replaced by summing, which is fine for the
// rates this repository uses (lambda < 1e4 per draw is never needed because
// arrivals are generated via exponential gaps).
func (r *Source) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	// Split large lambda into chunks to keep Knuth's method numerically
	// safe. Sum of independent Poissons is Poisson.
	half := lambda / 2
	return r.Poisson(half) + r.Poisson(lambda-half)
}

// Perm returns a random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomly permutes the first n indices using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
