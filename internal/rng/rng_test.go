package rng

import (
	"math"
	"testing"
	"testing/quick"

	"schemble/internal/mathx"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between differently seeded streams", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream should not replicate the parent stream.
	p := New(7)
	p.Uint64() // parent consumed one value during Split
	matches := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			matches++
		}
	}
	if matches > 1 {
		t.Errorf("child correlates with parent: %d matches", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	r := New(11)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Uniform(2, 6)
	}
	if m := mathx.Mean(xs); math.Abs(m-4) > 0.05 {
		t.Errorf("uniform mean = %v, want ~4", m)
	}
	min, max := mathx.MinMax(xs)
	if min < 2 || max >= 6 {
		t.Errorf("uniform range violated: [%v, %v]", min, max)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(5, 2)
	}
	if m := mathx.Mean(xs); math.Abs(m-5) > 0.05 {
		t.Errorf("normal mean = %v, want ~5", m)
	}
	if s := mathx.StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Errorf("normal stddev = %v, want ~2", s)
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(17)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Exponential(4)
	}
	if m := mathx.Mean(xs); math.Abs(m-0.25) > 0.01 {
		t.Errorf("exponential mean = %v, want ~0.25", m)
	}
	for _, x := range xs[:100] {
		if x < 0 {
			t.Fatalf("negative exponential draw %v", x)
		}
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(19)
	for _, tc := range []struct{ shape, scale float64 }{
		{0.5, 1}, {2, 3}, {5, 0.5},
	} {
		n := 60000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Gamma(tc.shape, tc.scale)
		}
		wantMean := tc.shape * tc.scale
		wantVar := tc.shape * tc.scale * tc.scale
		if m := mathx.Mean(xs); math.Abs(m-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("gamma(%v,%v) mean = %v, want ~%v", tc.shape, tc.scale, m, wantMean)
		}
		if v := mathx.Variance(xs); math.Abs(v-wantVar) > 0.1*wantVar+0.05 {
			t.Errorf("gamma(%v,%v) var = %v, want ~%v", tc.shape, tc.scale, v, wantVar)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	r := New(23)
	a, b := 2.0, 5.0
	n := 60000
	xs := make([]float64, n)
	for i := range xs {
		x := r.Beta(a, b)
		if x < 0 || x > 1 {
			t.Fatalf("beta draw out of [0,1]: %v", x)
		}
		xs[i] = x
	}
	wantMean := a / (a + b)
	if m := mathx.Mean(xs); math.Abs(m-wantMean) > 0.01 {
		t.Errorf("beta mean = %v, want ~%v", m, wantMean)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(29)
	for _, lambda := range []float64{0.5, 4, 50} {
		n := 40000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(r.Poisson(lambda))
		}
		if m := mathx.Mean(xs); math.Abs(m-lambda) > 0.05*lambda+0.03 {
			t.Errorf("poisson(%v) mean = %v", lambda, m)
		}
		if v := mathx.Variance(xs); math.Abs(v-lambda) > 0.1*lambda+0.05 {
			t.Errorf("poisson(%v) var = %v", lambda, v)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("non-positive lambda should yield 0")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(31)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("Intn did not hit all buckets: %v", seen)
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestShuffle(t *testing.T) {
	r := New(37)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	wantSum := 0
	for _, v := range orig {
		wantSum += v
	}
	if sum != wantSum {
		t.Errorf("shuffle altered elements: %v", xs)
	}
}
