package nn

import (
	"math"
	"testing"
	"testing/quick"

	"schemble/internal/mathx"
	"schemble/internal/rng"
)

func TestForwardShapes(t *testing.T) {
	src := rng.New(1)
	n := NewNet(Config{
		Spec:    Spec{In: 4, Hidden: []int{8, 6}},
		TaskOut: 3, TaskAct: Softmax,
		WithHead2: true,
	}, src)
	out, dis := n.Forward([]float64{0.1, -0.2, 0.3, 0.5})
	if len(out) != 3 {
		t.Fatalf("task out len = %d", len(out))
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax output sums to %v", sum)
	}
	if dis < 0 || dis > 1 {
		t.Errorf("sigmoid head out of range: %v", dis)
	}
}

func TestNumParams(t *testing.T) {
	src := rng.New(2)
	n := NewNet(Config{
		Spec:    Spec{In: 3, Hidden: []int{5}},
		TaskOut: 2, TaskAct: Softmax,
	}, src)
	// trunk: 3*5+5 = 20; head1: 5*2+2 = 12.
	if got := n.NumParams(); got != 32 {
		t.Errorf("NumParams = %d, want 32", got)
	}
}

// numericalGradCheck verifies backprop against central finite differences
// for a tiny two-headed net.
func TestGradientCheck(t *testing.T) {
	src := rng.New(3)
	n := NewNet(Config{
		Spec:    Spec{In: 3, Hidden: []int{4}, HiddenAct: Tanh},
		TaskOut: 2, TaskAct: Softmax,
		WithHead2: true,
	}, src)
	cfg := TrainConfig{Loss: CE, Lambda: 0.2}
	x := []float64{0.3, -0.7, 0.9}
	y := []float64{1, 0}
	dis := 0.4

	lossAt := func() float64 {
		out, d := n.Forward(x)
		l := cfg.Loss.value(out, y)
		dd := d - dis
		return l + cfg.Lambda*dd*dd
	}

	n.grads.zero()
	n.backwardExample(cfg, x, y, dis)

	check := func(name string, w []float64, dw []float64) {
		const h = 1e-6
		for i := 0; i < len(w); i += 3 { // spot-check every third param
			orig := w[i]
			w[i] = orig + h
			lp := lossAt()
			w[i] = orig - h
			lm := lossAt()
			w[i] = orig
			numeric := (lp - lm) / (2 * h)
			analytic := dw[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Errorf("%s[%d]: numeric %v vs analytic %v", name, i, numeric, analytic)
			}
		}
	}
	check("trunk.W", n.Trunk[0].W, n.grads.trunk[0].dW)
	check("trunk.B", n.Trunk[0].B, n.grads.trunk[0].dB)
	check("head1.W", n.Head1.W, n.grads.head1.dW)
	check("head2.W", n.Head2.W, n.grads.head2.dW)
}

func TestTrainXOR(t *testing.T) {
	src := rng.New(4)
	n := NewNet(Config{
		Spec:    Spec{In: 2, Hidden: []int{8}, HiddenAct: Tanh},
		TaskOut: 1, TaskAct: SigmoidAct,
	}, src)
	ds := Dataset{
		X: [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
		Y: [][]float64{{0}, {1}, {1}, {0}},
	}
	cfg := TrainConfig{Loss: BCE, Epochs: 2000, BatchSize: 4, LR: 0.05, Optimizer: Adam, Seed: 4}
	n.Train(cfg, ds)
	for i, x := range ds.X {
		p := n.Predict(x)[0]
		want := ds.Y[i][0]
		if (want == 1 && p < 0.7) || (want == 0 && p > 0.3) {
			t.Errorf("XOR(%v) = %v, want near %v", x, p, want)
		}
	}
}

func TestTrainMulticlass(t *testing.T) {
	src := rng.New(5)
	data := rng.New(6)
	// Three Gaussian blobs in 2D.
	var xs [][]float64
	var ys [][]float64
	centers := [][]float64{{0, 0}, {4, 0}, {0, 4}}
	for c, center := range centers {
		for i := 0; i < 100; i++ {
			xs = append(xs, []float64{
				data.Normal(center[0], 0.5), data.Normal(center[1], 0.5)})
			y := make([]float64, 3)
			y[c] = 1
			ys = append(ys, y)
		}
	}
	n := NewNet(Config{
		Spec:    Spec{In: 2, Hidden: []int{16}},
		TaskOut: 3, TaskAct: Softmax,
	}, src)
	cfg := TrainConfig{Loss: CE, Epochs: 60, BatchSize: 16, LR: 0.01, Optimizer: Adam, Seed: 5}
	n.Train(cfg, Dataset{X: xs, Y: ys})
	correct := 0
	for i := range xs {
		if mathx.ArgMax(n.Predict(xs[i])) == mathx.ArgMax(ys[i]) {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.95 {
		t.Errorf("blob accuracy = %v, want >= 0.95", acc)
	}
}

func TestTrainJointHeads(t *testing.T) {
	// The difficulty head should learn a monotone function of the input.
	src := rng.New(7)
	data := rng.New(8)
	var xs [][]float64
	var ys [][]float64
	var dis []float64
	for i := 0; i < 400; i++ {
		h := data.Float64()
		xs = append(xs, []float64{h + data.Normal(0, 0.05), data.Float64()})
		label := 0.0
		if h > 0.5 {
			label = 1
		}
		ys = append(ys, []float64{label})
		dis = append(dis, h)
	}
	n := NewNet(Config{
		Spec:    Spec{In: 2, Hidden: []int{16}},
		TaskOut: 1, TaskAct: SigmoidAct,
		WithHead2: true,
	}, src)
	cfg := TrainConfig{Loss: BCE, Epochs: 120, BatchSize: 32, LR: 0.01,
		Optimizer: Adam, Lambda: 0.5, Seed: 7}
	n.Train(cfg, Dataset{X: xs, Y: ys, Dis: dis})

	preds := make([]float64, len(xs))
	for i := range xs {
		preds[i] = n.PredictScore(xs[i])
	}
	if r := mathx.Pearson(preds, dis); r < 0.85 {
		t.Errorf("difficulty head correlation = %v, want >= 0.85", r)
	}
}

func TestTrainDeterminism(t *testing.T) {
	build := func() float64 {
		src := rng.New(9)
		n := NewNet(Config{
			Spec:    Spec{In: 2, Hidden: []int{6}},
			TaskOut: 1, TaskAct: SigmoidAct,
		}, src)
		ds := Dataset{
			X: [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}},
			Y: [][]float64{{0}, {1}, {1}, {0}},
		}
		return n.Train(TrainConfig{Loss: BCE, Epochs: 50, BatchSize: 2, LR: 0.05,
			Optimizer: Adam, Seed: 9}, ds)
	}
	if a, b := build(), build(); a != b {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	src := rng.New(10)
	n := NewNet(Config{
		Spec:    Spec{In: 3, Hidden: []int{5}},
		TaskOut: 2, TaskAct: Softmax,
		WithHead2: true,
	}, src)
	x := []float64{0.5, -0.25, 1}
	wantOut, wantDis := n.Forward(x)
	wantCopy := append([]float64(nil), wantOut...)

	blob, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewNet(Config{
		Spec:    Spec{In: 3, Hidden: []int{5}},
		TaskOut: 2, TaskAct: Softmax,
		WithHead2: true,
	}, rng.New(999))
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	gotOut, gotDis := restored.Forward(x)
	for i := range wantCopy {
		if math.Abs(gotOut[i]-wantCopy[i]) > 1e-15 {
			t.Errorf("out[%d] = %v, want %v", i, gotOut[i], wantCopy[i])
		}
	}
	if gotDis != wantDis {
		t.Errorf("dis = %v, want %v", gotDis, wantDis)
	}
}

func TestLossValues(t *testing.T) {
	if v := MSE.value([]float64{1, 2}, []float64{1, 4}); math.Abs(v-2) > 1e-12 {
		t.Errorf("MSE = %v, want 2", v)
	}
	if v := CE.value([]float64{0.5, 0.5}, []float64{1, 0}); math.Abs(v-math.Log(2)) > 1e-9 {
		t.Errorf("CE = %v, want ln2", v)
	}
	if v := BCE.value([]float64{0.5}, []float64{1}); math.Abs(v-math.Log(2)) > 1e-9 {
		t.Errorf("BCE = %v, want ln2", v)
	}
}

// Property: training on any tiny dataset never produces NaN weights.
func TestTrainNoNaNs(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		data := rng.New(seed + 1)
		n := NewNet(Config{
			Spec:    Spec{In: 2, Hidden: []int{4}},
			TaskOut: 1, TaskAct: SigmoidAct,
			WithHead2: true,
		}, src)
		var xs [][]float64
		var ys [][]float64
		var dis []float64
		for i := 0; i < 16; i++ {
			xs = append(xs, []float64{data.Normal(0, 3), data.Normal(0, 3)})
			ys = append(ys, []float64{float64(data.Intn(2))})
			dis = append(dis, data.Float64())
		}
		n.Train(TrainConfig{Loss: BCE, Epochs: 20, BatchSize: 4, LR: 0.05,
			Optimizer: Adam, Lambda: 0.2, Seed: seed}, Dataset{X: xs, Y: ys, Dis: dis})
		for _, l := range n.Trunk {
			for _, w := range l.W {
				if math.IsNaN(w) || math.IsInf(w, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSGDMomentumTrains(t *testing.T) {
	src := rng.New(11)
	n := NewNet(Config{
		Spec:    Spec{In: 1, Hidden: []int{4}, HiddenAct: Tanh},
		TaskOut: 1, TaskAct: Identity,
	}, src)
	// Fit y = 2x + 1.
	var xs, ys [][]float64
	for i := 0; i < 50; i++ {
		x := float64(i)/25 - 1
		xs = append(xs, []float64{x})
		ys = append(ys, []float64{2*x + 1})
	}
	cfg := TrainConfig{Loss: MSE, Epochs: 500, BatchSize: 10, LR: 0.01,
		Optimizer: SGD, Momentum: 0.9, Seed: 11}
	loss := n.Train(cfg, Dataset{X: xs, Y: ys})
	if loss > 0.01 {
		t.Errorf("SGD final loss = %v, want < 0.01", loss)
	}
}
