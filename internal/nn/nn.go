// Package nn is a small from-scratch neural network library: fully connected
// layers, the usual activations, MSE / binary and categorical cross-entropy
// losses, SGD-with-momentum and Adam optimizers, and a two-headed network
// type implementing the joint loss of Schemble's discrepancy predictor
// (task loss + lambda * MSE on the difficulty head, Eq. 2 of the paper).
//
// It exists because the paper's discrepancy predictor and gating baseline
// are lightweight networks that must actually be *trained* for the
// reproduction to be honest; no external ML dependency is available.
package nn

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"

	"schemble/internal/mathx"
	"schemble/internal/rng"
)

// Activation identifies a nonlinearity applied elementwise after a dense
// layer (Softmax is applied across the layer's outputs).
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Tanh
	SigmoidAct
	Softmax
)

func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	case SigmoidAct:
		return "sigmoid"
	case Softmax:
		return "softmax"
	default:
		return fmt.Sprintf("Activation(%d)", int(a))
	}
}

// apply computes the activation of pre into post (same length).
func (a Activation) apply(post, pre []float64) {
	switch a {
	case Identity:
		copy(post, pre)
	case ReLU:
		for i, v := range pre {
			if v > 0 {
				post[i] = v
			} else {
				post[i] = 0
			}
		}
	case Tanh:
		for i, v := range pre {
			post[i] = math.Tanh(v)
		}
	case SigmoidAct:
		for i, v := range pre {
			post[i] = mathx.Sigmoid(v)
		}
	case Softmax:
		mathx.SoftmaxInto(post, pre)
	default:
		panic("nn: unknown activation")
	}
}

// derivChain multiplies the upstream gradient gOut by the activation's
// Jacobian (diagonal for elementwise activations) and writes the result into
// gPre. post holds the forward activations. Softmax is handled specially and
// only supports being paired with cross-entropy via Net's loss plumbing,
// where the combined gradient (p - y) is supplied directly; in that case the
// caller passes the combined gradient and derivChain is the identity.
func (a Activation) derivChain(gPre, gOut, post []float64, softmaxCombined bool) {
	switch a {
	case Identity:
		copy(gPre, gOut)
	case ReLU:
		for i := range gOut {
			if post[i] > 0 {
				gPre[i] = gOut[i]
			} else {
				gPre[i] = 0
			}
		}
	case Tanh:
		for i := range gOut {
			gPre[i] = gOut[i] * (1 - post[i]*post[i])
		}
	case SigmoidAct:
		for i := range gOut {
			gPre[i] = gOut[i] * post[i] * (1 - post[i])
		}
	case Softmax:
		if softmaxCombined {
			copy(gPre, gOut)
			return
		}
		// Full softmax Jacobian: gPre_i = post_i * (gOut_i - sum_j gOut_j post_j)
		var dot float64
		for j := range gOut {
			dot += gOut[j] * post[j]
		}
		for i := range gOut {
			gPre[i] = post[i] * (gOut[i] - dot)
		}
	default:
		panic("nn: unknown activation")
	}
}

// Layer is one dense layer: out = act(W x + b). Weights are stored row-major
// (W[i*In+j] connects input j to output i).
type Layer struct {
	In, Out int
	Act     Activation
	W       []float64
	B       []float64
}

// NewLayer allocates a layer with He/Xavier-style initialization drawn from
// src (He for ReLU, Xavier otherwise).
func NewLayer(in, out int, act Activation, src *rng.Source) *Layer {
	l := &Layer{In: in, Out: out, Act: act,
		W: make([]float64, in*out), B: make([]float64, out)}
	scale := math.Sqrt(1 / float64(in))
	if act == ReLU {
		scale = math.Sqrt(2 / float64(in))
	}
	for i := range l.W {
		l.W[i] = src.Normal(0, scale)
	}
	return l
}

// forward computes pre = Wx + b and post = act(pre). pre and post must be
// length Out.
func (l *Layer) forward(pre, post, x []float64) {
	for i := 0; i < l.Out; i++ {
		s := l.B[i]
		row := l.W[i*l.In : (i+1)*l.In]
		for j, xj := range x {
			s += row[j] * xj
		}
		pre[i] = s
	}
	l.Act.apply(post, pre)
}

// Spec describes a feed-forward trunk as a sequence of dense layers.
type Spec struct {
	In     int
	Hidden []int
	// HiddenAct applies to every hidden layer; defaults to ReLU.
	HiddenAct Activation
}

// Net is a feed-forward network with one or two output heads sharing a
// trunk. A Net reuses internal scratch buffers and is NOT safe for
// concurrent use; callers serving from multiple goroutines must
// synchronize (discrepancy.Predictor does). Head 1 is the task head (classification or regression); head 2, if
// present, is the scalar discrepancy head trained with MSE. This mirrors the
// architecture in Section V-C of the paper: a shared feature extractor whose
// final hidden representation feeds both outputs.
type Net struct {
	Trunk []*Layer
	Head1 *Layer // task head
	Head2 *Layer // optional difficulty head (Out == 1)

	// scratch buffers, sized at construction; reused across calls.
	pres, posts [][]float64
	h1pre, h1   []float64
	h2pre, h2   []float64
	grads       *netGrads
}

// Config configures NewNet.
type Config struct {
	Spec      Spec
	TaskOut   int        // width of the task head
	TaskAct   Activation // task head activation (Softmax for classification, Identity/SigmoidAct otherwise)
	WithHead2 bool       // attach the scalar difficulty head
	Head2Act  Activation // difficulty head activation; defaults to SigmoidAct
}

// NewNet builds a network from cfg, drawing initial weights from src.
func NewNet(cfg Config, src *rng.Source) *Net {
	if cfg.TaskOut <= 0 {
		panic("nn: TaskOut must be positive")
	}
	hiddenAct := cfg.Spec.HiddenAct
	if hiddenAct == Identity && len(cfg.Spec.Hidden) > 0 {
		hiddenAct = ReLU
	}
	n := &Net{}
	in := cfg.Spec.In
	for _, h := range cfg.Spec.Hidden {
		n.Trunk = append(n.Trunk, NewLayer(in, h, hiddenAct, src))
		in = h
	}
	n.Head1 = NewLayer(in, cfg.TaskOut, cfg.TaskAct, src)
	if cfg.WithHead2 {
		act := cfg.Head2Act
		if act == Identity {
			act = SigmoidAct
		}
		n.Head2 = NewLayer(in, 1, act, src)
	}
	n.allocScratch()
	return n
}

func (n *Net) allocScratch() {
	n.pres = n.pres[:0]
	n.posts = n.posts[:0]
	for _, l := range n.Trunk {
		n.pres = append(n.pres, make([]float64, l.Out))
		n.posts = append(n.posts, make([]float64, l.Out))
	}
	n.h1pre = make([]float64, n.Head1.Out)
	n.h1 = make([]float64, n.Head1.Out)
	if n.Head2 != nil {
		n.h2pre = make([]float64, 1)
		n.h2 = make([]float64, 1)
	}
	n.grads = newNetGrads(n)
}

// trunkOut runs the trunk forward and returns the final hidden activation
// (or x itself when there are no hidden layers).
func (n *Net) trunkOut(x []float64) []float64 {
	h := x
	for i, l := range n.Trunk {
		l.forward(n.pres[i], n.posts[i], h)
		h = n.posts[i]
	}
	return h
}

// Forward runs the network on x and returns the task output and, when the
// difficulty head exists, the predicted discrepancy score. The returned
// slices are owned by the Net and overwritten by the next call; copy them if
// they must persist.
func (n *Net) Forward(x []float64) (task []float64, dis float64) {
	h := n.trunkOut(x)
	n.Head1.forward(n.h1pre, n.h1, h)
	if n.Head2 != nil {
		n.Head2.forward(n.h2pre, n.h2, h)
		dis = n.h2[0]
	}
	return n.h1, dis
}

// Predict returns a copy of the task head's output for x.
func (n *Net) Predict(x []float64) []float64 {
	out, _ := n.Forward(x)
	cp := make([]float64, len(out))
	copy(cp, out)
	return cp
}

// PredictScore returns the difficulty head's output for x; it panics when
// the net has no second head.
func (n *Net) PredictScore(x []float64) float64 {
	if n.Head2 == nil {
		panic("nn: PredictScore on single-headed net")
	}
	_, dis := n.Forward(x)
	return dis
}

// NumParams returns the total number of trainable parameters.
func (n *Net) NumParams() int {
	total := 0
	for _, l := range n.Trunk {
		total += len(l.W) + len(l.B)
	}
	total += len(n.Head1.W) + len(n.Head1.B)
	if n.Head2 != nil {
		total += len(n.Head2.W) + len(n.Head2.B)
	}
	return total
}

// gobNet mirrors Net's persistent state for serialization.
type gobNet struct {
	Trunk []*Layer
	Head1 *Layer
	Head2 *Layer
}

// MarshalBinary serializes the network weights with encoding/gob.
func (n *Net) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(gobNet{n.Trunk, n.Head1, n.Head2}); err != nil {
		return nil, fmt.Errorf("nn: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary restores network weights serialized by MarshalBinary.
func (n *Net) UnmarshalBinary(data []byte) error {
	var g gobNet
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&g); err != nil {
		return fmt.Errorf("nn: decode: %w", err)
	}
	n.Trunk, n.Head1, n.Head2 = g.Trunk, g.Head1, g.Head2
	n.allocScratch()
	return nil
}

// RestoreNet rebuilds a network from MarshalBinary output.
func RestoreNet(data []byte) (*Net, error) {
	n := &Net{}
	if err := n.UnmarshalBinary(data); err != nil {
		return nil, err
	}
	return n, nil
}
