package nn

import (
	"fmt"
	"math"

	"schemble/internal/mathx"
	"schemble/internal/rng"
)

// Loss selects the task-head loss function.
type Loss int

// Supported task losses.
const (
	// MSE pairs with an Identity (or Sigmoid) task head; regression.
	MSE Loss = iota
	// BCE pairs with a SigmoidAct task head; independent binary targets.
	BCE
	// CE pairs with a Softmax task head; one-hot (or soft) targets. The
	// softmax+CE gradient is fused for stability.
	CE
)

func (l Loss) String() string {
	switch l {
	case MSE:
		return "mse"
	case BCE:
		return "bce"
	case CE:
		return "ce"
	default:
		return fmt.Sprintf("Loss(%d)", int(l))
	}
}

// value computes the scalar loss between prediction p and target y.
func (l Loss) value(p, y []float64) float64 {
	switch l {
	case MSE:
		var s float64
		for i := range p {
			d := p[i] - y[i]
			s += d * d
		}
		return s / float64(len(p))
	case BCE:
		var s float64
		for i := range p {
			pi := mathx.Clamp(p[i], mathx.Eps, 1-mathx.Eps)
			s += -(y[i]*math.Log(pi) + (1-y[i])*math.Log(1-pi))
		}
		return s / float64(len(p))
	case CE:
		var s float64
		for i := range p {
			pi := mathx.Clamp(p[i], mathx.Eps, 1)
			s += -y[i] * math.Log(pi)
		}
		return s
	default:
		panic("nn: unknown loss")
	}
}

// headGrad writes the gradient of the loss with respect to the head's
// *pre-activation* into gPre, exploiting fused softmax+CE and sigmoid+BCE
// forms when applicable. post is the head's activation output, act its
// activation.
func (l Loss) headGrad(gPre, post, y []float64, act Activation) {
	switch {
	case l == CE && act == Softmax:
		for i := range post {
			gPre[i] = post[i] - y[i]
		}
	case l == BCE && act == SigmoidAct:
		k := float64(len(post))
		for i := range post {
			gPre[i] = (post[i] - y[i]) / k
		}
	default:
		// Generic: dL/dpost then chain through the activation.
		gOut := make([]float64, len(post))
		switch l {
		case MSE:
			k := float64(len(post))
			for i := range post {
				gOut[i] = 2 * (post[i] - y[i]) / k
			}
		case BCE:
			k := float64(len(post))
			for i := range post {
				pi := mathx.Clamp(post[i], mathx.Eps, 1-mathx.Eps)
				gOut[i] = (pi - y[i]) / (pi * (1 - pi)) / k
			}
		case CE:
			for i := range post {
				pi := mathx.Clamp(post[i], mathx.Eps, 1)
				gOut[i] = -y[i] / pi
			}
		}
		act.derivChain(gPre, gOut, post, false)
	}
}

// layerGrads accumulates parameter gradients for one layer.
type layerGrads struct {
	dW, dB []float64
	// Adam / momentum state.
	mW, vW, mB, vB []float64
}

func newLayerGrads(l *Layer) *layerGrads {
	return &layerGrads{
		dW: make([]float64, len(l.W)), dB: make([]float64, len(l.B)),
		mW: make([]float64, len(l.W)), vW: make([]float64, len(l.W)),
		mB: make([]float64, len(l.B)), vB: make([]float64, len(l.B)),
	}
}

func (g *layerGrads) zero() {
	for i := range g.dW {
		g.dW[i] = 0
	}
	for i := range g.dB {
		g.dB[i] = 0
	}
}

// accumulate adds the gradients of one example: gPre is dL/d(pre), x the
// layer input. Returns nothing; dX, if non-nil, receives dL/dx.
func (g *layerGrads) accumulate(l *Layer, gPre, x, dX []float64) {
	for i := 0; i < l.Out; i++ {
		gi := gPre[i]
		g.dB[i] += gi
		row := g.dW[i*l.In : (i+1)*l.In]
		for j, xj := range x {
			row[j] += gi * xj
		}
	}
	if dX != nil {
		for j := 0; j < l.In; j++ {
			var s float64
			for i := 0; i < l.Out; i++ {
				s += l.W[i*l.In+j] * gPre[i]
			}
			dX[j] = s
		}
	}
}

// netGrads holds the full gradient/optimizer state for a Net.
type netGrads struct {
	trunk        []*layerGrads
	head1, head2 *layerGrads
	// per-layer dL/dx scratch (input-gradient of each trunk layer).
	dxs    [][]float64
	gPre1  []float64
	gPre2  []float64
	gH     []float64 // gradient at the trunk output
	gPreT  [][]float64
	adamT  int // Adam timestep
	inGrad []float64
}

func newNetGrads(n *Net) *netGrads {
	g := &netGrads{head1: newLayerGrads(n.Head1)}
	if n.Head2 != nil {
		g.head2 = newLayerGrads(n.Head2)
	}
	for _, l := range n.Trunk {
		g.trunk = append(g.trunk, newLayerGrads(l))
		g.dxs = append(g.dxs, make([]float64, l.In))
		g.gPreT = append(g.gPreT, make([]float64, l.Out))
	}
	g.gPre1 = make([]float64, n.Head1.Out)
	if n.Head2 != nil {
		g.gPre2 = make([]float64, 1)
	}
	width := n.Head1.In
	g.gH = make([]float64, width)
	return g
}

func (g *netGrads) zero() {
	for _, lg := range g.trunk {
		lg.zero()
	}
	g.head1.zero()
	if g.head2 != nil {
		g.head2.zero()
	}
}

// Optimizer selects the parameter update rule.
type Optimizer int

// Supported optimizers.
const (
	SGD Optimizer = iota
	Adam
)

// TrainConfig controls Train.
type TrainConfig struct {
	Loss      Loss
	Epochs    int
	BatchSize int
	LR        float64
	Optimizer Optimizer
	Momentum  float64 // SGD only
	L2        float64 // weight decay
	// Lambda weights the difficulty head's MSE term (Eq. 2). Ignored for
	// single-headed nets. The paper uses 0.2.
	Lambda float64
	// Silent training has no effect here (no logging), reserved for parity.
	Seed uint64
}

// Dataset is the in-memory training set for Train. Dis may be nil when the
// net has no difficulty head.
type Dataset struct {
	X   [][]float64
	Y   [][]float64
	Dis []float64
}

// backwardExample accumulates the gradients for one example. Returns the
// example's total loss.
func (n *Net) backwardExample(cfg TrainConfig, x, y []float64, dis float64) float64 {
	g := n.grads
	h := n.trunkOut(x)
	n.Head1.forward(n.h1pre, n.h1, h)
	loss := cfg.Loss.value(n.h1, y)
	cfg.Loss.headGrad(g.gPre1, n.h1, y, n.Head1.Act)
	for i := range g.gH {
		g.gH[i] = 0
	}
	g.head1.accumulate(n.Head1, g.gPre1, h, g.gH)

	if n.Head2 != nil {
		n.Head2.forward(n.h2pre, n.h2, h)
		d := n.h2[0] - dis
		loss += cfg.Lambda * d * d
		// d(lambda*(p-t)^2)/dpost = 2*lambda*(p-t); chain through the act.
		gOut := []float64{2 * cfg.Lambda * d}
		n.Head2.Act.derivChain(g.gPre2, gOut, n.h2, false)
		dh := make([]float64, len(h))
		g.head2.accumulate(n.Head2, g.gPre2, h, dh)
		for i := range g.gH {
			g.gH[i] += dh[i]
		}
	}

	// Backprop through the trunk.
	upstream := g.gH
	for i := len(n.Trunk) - 1; i >= 0; i-- {
		l := n.Trunk[i]
		l.Act.derivChain(g.gPreT[i], upstream, n.posts[i], false)
		var in []float64
		if i == 0 {
			in = x
		} else {
			in = n.posts[i-1]
		}
		var dX []float64
		if i > 0 {
			dX = g.dxs[i]
		}
		g.trunk[i].accumulate(l, g.gPreT[i], in, dX)
		upstream = g.dxs[i]
	}
	return loss
}

// step applies one optimizer update using gradients averaged over batchN
// examples.
func (n *Net) step(cfg TrainConfig, batchN int) {
	g := n.grads
	g.adamT++
	inv := 1 / float64(batchN)
	update := func(l *Layer, lg *layerGrads) {
		applyUpdate(cfg, g.adamT, l.W, lg.dW, lg.mW, lg.vW, inv)
		applyUpdate(cfg, g.adamT, l.B, lg.dB, lg.mB, lg.vB, inv)
	}
	for i, l := range n.Trunk {
		update(l, g.trunk[i])
	}
	update(n.Head1, g.head1)
	if n.Head2 != nil {
		update(n.Head2, g.head2)
	}
}

func applyUpdate(cfg TrainConfig, t int, w, dw, m, v []float64, inv float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	switch cfg.Optimizer {
	case SGD:
		for i := range w {
			grad := dw[i]*inv + cfg.L2*w[i]
			m[i] = cfg.Momentum*m[i] + grad
			w[i] -= cfg.LR * m[i]
		}
	case Adam:
		bc1 := 1 - math.Pow(beta1, float64(t))
		bc2 := 1 - math.Pow(beta2, float64(t))
		for i := range w {
			grad := dw[i]*inv + cfg.L2*w[i]
			m[i] = beta1*m[i] + (1-beta1)*grad
			v[i] = beta2*v[i] + (1-beta2)*grad*grad
			w[i] -= cfg.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + eps)
		}
	default:
		panic("nn: unknown optimizer")
	}
}

// Train fits the network on ds and returns the mean training loss of the
// final epoch. Mini-batches are reshuffled every epoch with a generator
// seeded from cfg.Seed, so training is deterministic.
func (n *Net) Train(cfg TrainConfig, ds Dataset) float64 {
	if len(ds.X) == 0 {
		return 0
	}
	if len(ds.X) != len(ds.Y) {
		panic("nn: X/Y length mismatch")
	}
	if n.Head2 != nil && len(ds.Dis) != len(ds.X) {
		panic("nn: two-headed net requires Dis targets")
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	if cfg.LR <= 0 {
		cfg.LR = 0.01
	}
	src := rng.New(cfg.Seed + 0x5eed)
	order := make([]int, len(ds.X))
	for i := range order {
		order[i] = i
	}
	var finalLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		src.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var epochLoss float64
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			n.grads.zero()
			for _, idx := range order[start:end] {
				var dis float64
				if n.Head2 != nil {
					dis = ds.Dis[idx]
				}
				epochLoss += n.backwardExample(cfg, ds.X[idx], ds.Y[idx], dis)
			}
			n.step(cfg, end-start)
		}
		finalLoss = epochLoss / float64(len(order))
	}
	return finalLoss
}

// EvalLoss returns the mean task loss (plus weighted head-2 MSE for
// two-headed nets) over ds without updating parameters.
func (n *Net) EvalLoss(cfg TrainConfig, ds Dataset) float64 {
	if len(ds.X) == 0 {
		return 0
	}
	var total float64
	for i := range ds.X {
		out, dis := n.Forward(ds.X[i])
		total += cfg.Loss.value(out, ds.Y[i])
		if n.Head2 != nil {
			d := dis - ds.Dis[i]
			total += cfg.Lambda * d * d
		}
	}
	return total / float64(len(ds.X))
}
