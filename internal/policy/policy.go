// Package policy implements the paper's baseline selection policies:
//
//   - Original: every query executes the full ensemble;
//   - Static: one subset for all queries, chosen by offline greedy search,
//     with freed memory packed with replicas of the chosen models;
//   - DES: dynamic ensemble selection — k-means regions over input features
//     with per-region per-model competence scores, thresholded per query;
//   - Gating: a trained gate network scores each model's credibility per
//     query; models below the threshold are filtered out.
//
// All of them select at arrival time from query features alone — none sees
// the queue, which is precisely the gap Schemble's scheduler fills.
package policy

import (
	"math"

	"schemble/internal/cluster"
	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/model"
	"schemble/internal/nn"
	"schemble/internal/rng"
)

// Original returns the trivial policy: the full ensemble for every query.
func Original(m int) func(*dataset.Sample) ensemble.Subset {
	full := ensemble.Full(m)
	return func(*dataset.Sample) ensemble.Subset { return full }
}

// StaticPlan is the offline deployment the static baseline chose.
type StaticPlan struct {
	Subset ensemble.Subset
	// Replicas[j] is the number of deployed instances of model type j
	// (zero for dropped models).
	Replicas []int
	// Accuracy is the subset's profiled agreement with the full ensemble.
	Accuracy float64
	// Throughput is the plan's sustainable query rate (queries/second):
	// every query needs one task on each chosen model, so the bottleneck
	// type governs.
	Throughput float64
}

// StaticConfig configures PlanStatic.
type StaticConfig struct {
	// MemoryBudget is the total deployable bytes; defaults to the sum of
	// all base models (the paper's setting: static selection reuses the
	// memory the full deployment occupied).
	MemoryBudget int64
	// TargetRate is the load (queries/second) the plan should sustain.
	TargetRate float64
}

// PlanStatic greedily searches all non-empty subsets: it packs replicas of
// each candidate subset into the memory budget (always growing the
// bottleneck type) and picks the subset maximizing accuracy among plans
// that sustain TargetRate — or, when none does, the best
// accuracy*min(1, throughput/target) compromise.
func PlanStatic(cfg StaticConfig, models []model.Model, subsetAccuracy func(ensemble.Subset) float64) StaticPlan {
	m := len(models)
	budget := cfg.MemoryBudget
	if budget == 0 {
		for _, md := range models {
			budget += md.Memory()
		}
	}
	var best StaticPlan
	bestScore := -1.0
	for _, sub := range ensemble.AllSubsets(m) {
		var used int64
		replicas := make([]int, m)
		fits := true
		for _, j := range sub.Models() {
			used += models[j].Memory()
			replicas[j] = 1
		}
		if used > budget {
			fits = false
		}
		if !fits {
			continue
		}
		// Pack replicas: repeatedly add one instance of the bottleneck
		// type (lowest replicas/latency ratio) while it fits.
		for {
			bottleneck := -1
			var worst float64
			for _, j := range sub.Models() {
				rate := float64(replicas[j]) / models[j].MeanLatency().Seconds()
				if bottleneck < 0 || rate < worst {
					bottleneck, worst = j, rate
				}
			}
			if bottleneck < 0 || used+models[bottleneck].Memory() > budget {
				break
			}
			used += models[bottleneck].Memory()
			replicas[bottleneck]++
		}
		throughput := 0.0
		for i, j := range sub.Models() {
			rate := float64(replicas[j]) / models[j].MeanLatency().Seconds()
			if i == 0 || rate < throughput {
				throughput = rate
			}
		}
		acc := subsetAccuracy(sub)
		score := acc
		if cfg.TargetRate > 0 && throughput < cfg.TargetRate {
			score = acc * throughput / cfg.TargetRate
		}
		if score > bestScore {
			bestScore = score
			best = StaticPlan{Subset: sub, Replicas: replicas,
				Accuracy: acc, Throughput: throughput}
		}
	}
	return best
}

// Select returns the static plan's selection function.
func (p StaticPlan) Select() func(*dataset.Sample) ensemble.Subset {
	return func(*dataset.Sample) ensemble.Subset { return p.Subset }
}

// DES is the dynamic-ensemble-selection baseline: input-space regions from
// k-means, per-region per-model competence (agreement with the full
// ensemble), relative-threshold selection.
type DES struct {
	km *cluster.KMeans
	// competence[region][model]
	competence [][]float64
	// Threshold is relative: model k is selected in region r iff
	// competence[r][k] >= Threshold * max_j competence[r][j]. Default 0.98.
	Threshold float64
}

// DESConfig configures TrainDES.
type DESConfig struct {
	Regions   int // default 8
	Threshold float64
	Seed      uint64
}

// TrainDES fits the regions and competence table. perModelAgree[i][k] is
// the agreement of model k alone with the full ensemble on sample i.
func TrainDES(cfg DESConfig, samples []*dataset.Sample, perModelAgree [][]float64) *DES {
	if len(samples) == 0 || len(samples) != len(perModelAgree) {
		panic("policy: empty or mismatched DES training data")
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 8
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.Threshold == 0 {
		// Deep-model competences are close together; a tight relative
		// threshold makes DES do what the paper observes: "execute the
		// model with the highest accuracy" for most queries.
		cfg.Threshold = 0.995
	}
	points := make([][]float64, len(samples))
	for i, s := range samples {
		points[i] = s.Features
	}
	km, err := cluster.Fit(points, cfg.Regions, 30, rng.New(cfg.Seed^0xde5))
	if err != nil {
		// Unreachable: the empty-samples guard above and the dataset's
		// fixed feature width rule out every Fit error.
		panic("policy: " + err.Error())
	}
	m := len(perModelAgree[0])
	comp := make([][]float64, km.K())
	counts := make([]int, km.K())
	for r := range comp {
		comp[r] = make([]float64, m)
	}
	for i, s := range samples {
		r := km.Assign(s.Features)
		counts[r]++
		for k := 0; k < m; k++ {
			comp[r][k] += perModelAgree[i][k]
		}
	}
	for r := range comp {
		if counts[r] == 0 {
			continue
		}
		for k := range comp[r] {
			comp[r][k] /= float64(counts[r])
		}
	}
	return &DES{km: km, competence: comp, Threshold: cfg.Threshold}
}

// Select implements the per-query selection rule.
func (d *DES) Select(s *dataset.Sample) ensemble.Subset {
	r := d.km.Assign(s.Features)
	comp := d.competence[r]
	best := mathx.ArgMax(comp)
	sub := ensemble.Single(best)
	for k := range comp {
		if k != best && comp[k] >= d.Threshold*comp[best] {
			sub = sub.With(k)
		}
	}
	return sub
}

// Competence exposes the fitted table (for tests and diagnostics).
func (d *DES) Competence() [][]float64 { return d.competence }

// Gating is the gate-network baseline: an MLP scores each base model's
// credibility on the query; models with weights under the threshold are
// filtered out. Deployed gating for latency-sensitive serving thresholds
// weight-per-cost: because the gate cannot discriminate deep models'
// preferences (its weights are nearly constant per model), cost-awareness
// makes it favor the fastest model — exactly the behaviour the paper
// observes ("Gating often executes the fastest model, reducing the miss
// rate but having low accuracy").
type Gating struct {
	net *nn.Net
	// Threshold is relative to the best (cost-adjusted) weight. Default
	// 0.95.
	Threshold float64
	// Latencies enables cost-aware selection: weights are divided by
	// sqrt(latency) before thresholding. nil disables cost adjustment.
	Latencies []float64
}

// GatingConfig configures TrainGating.
type GatingConfig struct {
	Hidden    []int
	Epochs    int
	Threshold float64
	// Latencies (seconds per model) switch on cost-aware thresholding.
	Latencies []float64
	Seed      uint64
}

// TrainGating fits the gate network: sigmoid outputs per model trained with
// BCE against each model's observed agreement with the full ensemble —
// "learning whether each model is correct on the current query", which the
// paper identifies as what gating effectively does.
func TrainGating(cfg GatingConfig, samples []*dataset.Sample, perModelAgree [][]float64) *Gating {
	if len(samples) == 0 || len(samples) != len(perModelAgree) {
		panic("policy: empty or mismatched gating training data")
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{32, 16}
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 60
	}
	//schemble:floateq-ok zero-value config sentinel: the field is set verbatim by callers, never computed
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.95
	}
	m := len(perModelAgree[0])
	net := nn.NewNet(nn.Config{
		Spec:    nn.Spec{In: len(samples[0].Features), Hidden: cfg.Hidden},
		TaskOut: m, TaskAct: nn.SigmoidAct,
	}, rng.New(cfg.Seed^0x6a7e))
	ds := nn.Dataset{}
	for i, s := range samples {
		ds.X = append(ds.X, s.Features)
		ds.Y = append(ds.Y, perModelAgree[i])
	}
	net.Train(nn.TrainConfig{
		Loss: nn.BCE, Epochs: cfg.Epochs, BatchSize: 64, LR: 0.005,
		Optimizer: nn.Adam, Seed: cfg.Seed,
	}, ds)
	return &Gating{net: net, Threshold: cfg.Threshold, Latencies: cfg.Latencies}
}

// Weights returns the gate's per-model weights for s.
func (g *Gating) Weights(s *dataset.Sample) []float64 {
	return g.net.Predict(s.Features)
}

// Select implements the thresholded selection rule (cost-adjusted when
// Latencies is set).
func (g *Gating) Select(s *dataset.Sample) ensemble.Subset {
	w := g.Weights(s)
	if g.Latencies != nil {
		for k := range w {
			w[k] /= math.Sqrt(g.Latencies[k])
		}
	}
	best := mathx.ArgMax(w)
	sub := ensemble.Single(best)
	for k := range w {
		if k != best && w[k] >= g.Threshold*w[best] {
			sub = sub.With(k)
		}
	}
	return sub
}
