package policy

import (
	"testing"

	"schemble/internal/dataset"
	"schemble/internal/ensemble"
	"schemble/internal/mathx"
	"schemble/internal/model"
)

// fixture builds samples and per-model agreement rows.
func fixture(t *testing.T, n int) ([]*dataset.Sample, [][]float64, []model.Model) {
	t.Helper()
	ds := dataset.TextMatching(dataset.Config{N: n, Seed: 31})
	models := model.TextMatchingModels(31)
	e := ensemble.New(dataset.Classification, models, &ensemble.Average{}, nil)
	agree := make([][]float64, n)
	for i, s := range ds.Samples {
		outs := e.Outputs(s)
		ref := e.Predict(outs, e.FullSubset())
		row := make([]float64, len(models))
		for k := range models {
			if mathx.ArgMax(outs[k].Probs) == mathx.ArgMax(ref.Probs) {
				row[k] = 1
			}
		}
		agree[i] = row
	}
	return ds.Samples, agree, models
}

func TestOriginalSelectsFull(t *testing.T) {
	sel := Original(3)
	if got := sel(nil); got != ensemble.Full(3) {
		t.Errorf("Original selected %v", got)
	}
}

func TestPlanStaticRespectsMemory(t *testing.T) {
	_, _, models := fixture(t, 200)
	acc := func(s ensemble.Subset) float64 {
		// Larger subsets more accurate; weak model 0 contributes least.
		return 0.7 + 0.1*float64(s.Size())
	}
	var budget int64
	for _, m := range models {
		budget += m.Memory()
	}
	plan := PlanStatic(StaticConfig{TargetRate: 30}, models, acc)
	if plan.Subset == ensemble.Empty {
		t.Fatal("no plan")
	}
	var used int64
	for j, r := range plan.Replicas {
		used += int64(r) * models[j].Memory()
		if r > 0 && !plan.Subset.Contains(j) {
			t.Errorf("replica of dropped model %d", j)
		}
		if r == 0 && plan.Subset.Contains(j) {
			t.Errorf("chosen model %d has no replica", j)
		}
	}
	if used > budget {
		t.Errorf("memory overflow: %d > %d", used, budget)
	}
	if plan.Throughput <= 0 {
		t.Error("throughput not computed")
	}
}

func TestPlanStaticPrefersAccuracyWhenFeasible(t *testing.T) {
	_, _, models := fixture(t, 100)
	acc := func(s ensemble.Subset) float64 { return float64(s.Size()) / 3 }
	// With a tiny target rate everything sustains the load, so the full
	// subset (max accuracy) should win if it fits in memory.
	plan := PlanStatic(StaticConfig{TargetRate: 0.1}, models, acc)
	if plan.Subset != ensemble.Full(3) {
		t.Errorf("low-load static plan = %v, want full", plan.Subset)
	}
}

func TestPlanStaticTradesAccuracyForThroughput(t *testing.T) {
	_, _, models := fixture(t, 100)
	acc := func(s ensemble.Subset) float64 { return 0.5 + float64(s.Size())/6 }
	low := PlanStatic(StaticConfig{TargetRate: 1}, models, acc)
	high := PlanStatic(StaticConfig{TargetRate: 200}, models, acc)
	if high.Throughput < low.Throughput && high.Subset == low.Subset {
		t.Errorf("high target rate should push toward higher-throughput plans: %v vs %v",
			high.Throughput, low.Throughput)
	}
}

func TestDESSelect(t *testing.T) {
	samples, agree, _ := fixture(t, 1500)
	des := TrainDES(DESConfig{Seed: 1}, samples, agree)
	if len(des.Competence()) == 0 {
		t.Fatal("no competence table")
	}
	for _, s := range samples[:200] {
		sub := des.Select(s)
		if sub == ensemble.Empty {
			t.Fatal("DES selected nothing")
		}
	}
	// Competence must order sensibly on average: strongest model 2 should
	// exceed weakest model 0 in most regions.
	better := 0
	for _, row := range des.Competence() {
		if row[2] >= row[0] {
			better++
		}
	}
	if better < len(des.Competence())/2 {
		t.Errorf("competence ordering wrong in %d/%d regions", better, len(des.Competence()))
	}
}

func TestDESThresholdControlsSize(t *testing.T) {
	samples, agree, _ := fixture(t, 1000)
	tight := TrainDES(DESConfig{Seed: 2, Threshold: 0.999}, samples, agree)
	loose := TrainDES(DESConfig{Seed: 2, Threshold: 0.5}, samples, agree)
	var sizeTight, sizeLoose int
	for _, s := range samples[:300] {
		sizeTight += tight.Select(s).Size()
		sizeLoose += loose.Select(s).Size()
	}
	if sizeLoose <= sizeTight {
		t.Errorf("lower threshold should select more models: %d vs %d", sizeLoose, sizeTight)
	}
}

func TestGating(t *testing.T) {
	samples, agree, _ := fixture(t, 1500)
	g := TrainGating(GatingConfig{Seed: 3, Epochs: 30}, samples, agree)
	for _, s := range samples[:200] {
		sub := g.Select(s)
		if sub == ensemble.Empty {
			t.Fatal("gating selected nothing")
		}
		w := g.Weights(s)
		if len(w) != 3 {
			t.Fatalf("weights len %d", len(w))
		}
		for _, v := range w {
			if v < 0 || v > 1 {
				t.Fatalf("weight out of range: %v", v)
			}
		}
	}
	// The mean weight of the weakest model should be lowest.
	var mean [3]float64
	for _, s := range samples {
		w := g.Weights(s)
		for k := range mean {
			mean[k] += w[k]
		}
	}
	if mean[0] >= mean[2] {
		t.Errorf("gate means do not reflect quality: %v", mean)
	}
}

func TestTrainPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"DES empty":    func() { TrainDES(DESConfig{}, nil, nil) },
		"gating empty": func() { TrainGating(GatingConfig{}, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
