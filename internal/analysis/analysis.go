// Package analysis is a small, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis core: named analyzers that inspect one
// type-checked package at a time and report position-anchored
// diagnostics. It exists because schemble's correctness rests on
// invariants the compiler cannot see — bit-identical replay under seeded
// rng, exactly-once outcome accounting, race-free hot paths — and those
// must be enforced at lint time, before a change that never trips the
// runtime tests lands.
//
// The package adds one facility upstream go/analysis does not have:
// first-class suppression annotations. A diagnostic reported through
// Pass.Report carries the directive that can waive it, and a comment of
// the form
//
//	//schemble:<directive> <justification>
//
// on the same line as the diagnostic (or the line directly above it)
// suppresses the finding. Justifications are mandatory, unknown
// directives are themselves diagnosed, and — when the full suite runs —
// annotations that no longer suppress anything are flagged as stale, so
// escape hatches cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one invariant checker. Unlike upstream
// go/analysis there are no facts or requirements: every schemble
// analyzer is local to a single package, which keeps the driver trivial.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters. It
	// must be a valid identifier.
	Name string
	// Doc is the one-paragraph description shown by schemble-vet -help.
	Doc string
	// Directives lists the //schemble: annotation names this analyzer
	// honors as escape hatches. The runner uses the union across the
	// suite to reject unknown directives.
	Directives []string
	// Run inspects one unit and reports findings via pass.Report.
	Run func(*Pass) error
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Directive names the escape hatch that would have suppressed this
	// finding ("" when the invariant is not waivable).
	Directive string
}

func (d Diagnostic) String() string {
	msg := fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
	if d.Directive != "" {
		msg += " (//schemble:" + d.Directive + " <why> to waive)"
	}
	return msg
}

// A Unit is one type-checked package as the loader produced it: for
// packages with internal tests this is the test-augmented variant (the
// union of library and _test.go files), so analyzers see exactly what
// the test binary compiles.
type Unit struct {
	// Path is the full go list import path, possibly carrying a test
	// variant suffix such as "schemble/internal/sim [schemble/internal/sim.test]".
	Path string
	// Base is Path with any variant suffix stripped.
	Base  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// BasePath strips a go list test-variant suffix from an import path.
func BasePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// A Pass carries one (analyzer, unit) pairing plus the reporting and
// suppression machinery.
type Pass struct {
	Analyzer *Analyzer
	Unit     *Unit

	ann    *annIndex
	report func(Diagnostic)
}

// Fset returns the unit's file set.
func (p *Pass) Fset() *token.FileSet { return p.Unit.Fset }

// TypesInfo returns the unit's type information.
func (p *Pass) TypesInfo() *types.Info { return p.Unit.Info }

// Pkg returns the unit's type-checked package.
func (p *Pass) Pkg() *types.Package { return p.Unit.Pkg }

// IsTestFile reports whether pos falls in a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Unit.Fset.Position(pos).Filename, "_test.go")
}

// Annotation looks up a //schemble:<directive> annotation anchored at
// pos's line (or the line directly above, the standalone form) and
// returns its argument text. Unlike Report's suppression lookup this is
// for DECLARATION directives — annotations an analyzer consumes as
// input, such as guardedby's mutex name — and consuming one marks it
// used, so a declaration its analyzer honors is never reported stale.
// The directive must still appear in the analyzer's Directives list or
// the grammar check will reject it as unknown.
func (p *Pass) Annotation(pos token.Pos, directive string) (arg string, ok bool) {
	an := p.ann.at(p.Unit.Fset.Position(pos), directive)
	if an == nil {
		return "", false
	}
	return an.why, true
}

// Report records a finding at pos unless a matching //schemble:directive
// annotation suppresses it. directive may be empty for non-waivable
// findings.
func (p *Pass) Report(pos token.Pos, directive, format string, args ...interface{}) {
	position := p.Unit.Fset.Position(pos)
	if directive != "" && p.ann.suppress(position, directive) {
		return
	}
	p.report(Diagnostic{
		Pos:       position,
		Analyzer:  p.Analyzer.Name,
		Message:   fmt.Sprintf(format, args...),
		Directive: directive,
	})
}

// Options tunes a Run.
type Options struct {
	// ReportUnused flags valid annotations that suppressed nothing. Only
	// enable it when the full suite runs: with a subset of analyzers an
	// annotation's owner may simply not have executed.
	ReportUnused bool
	// KnownDirectives lists directive names the grammar check accepts in
	// addition to those of the analyzers being run. A driver filtering
	// to a subset of its suite passes the full suite's union here, so an
	// annotation owned by an unselected analyzer is not misreported as
	// unknown.
	KnownDirectives []string
}

// Run executes the analyzers over every unit and returns the surviving
// diagnostics sorted by position. Annotation-grammar violations (unknown
// directive, missing justification, and — under opts.ReportUnused —
// stale annotations) are reported under the pseudo-analyzer
// "annotation".
//
// Units are analyzed concurrently across GOMAXPROCS workers: every unit
// is type-checked read-only state by this point, each Pass is private to
// its (analyzer, unit) pairing, and the final position sort makes the
// output order independent of scheduling.
func Run(units []*Unit, analyzers []*Analyzer, opts Options) ([]Diagnostic, error) {
	known := make(map[string]bool)
	for _, d := range opts.KnownDirectives {
		known[d] = true
	}
	for _, a := range analyzers {
		for _, d := range a.Directives {
			known[d] = true
		}
	}

	var (
		mu       sync.Mutex
		diags    []Diagnostic
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u *Unit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var local []Diagnostic
			collect := func(d Diagnostic) { local = append(local, d) }
			ann := indexAnnotations(u)
			for _, a := range analyzers {
				pass := &Pass{Analyzer: a, Unit: u, ann: ann, report: collect}
				if err := a.Run(pass); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("analyzer %s on %s: %w", a.Name, u.Path, err)
					}
					mu.Unlock()
					return
				}
			}
			for _, an := range ann.all {
				switch {
				case !known[an.name]:
					collect(Diagnostic{
						Pos:      an.pos,
						Analyzer: "annotation",
						Message: fmt.Sprintf("unknown //schemble: directive %q (known: %s)",
							an.name, strings.Join(sortedKeys(known), ", ")),
					})
				case an.why == "":
					collect(Diagnostic{
						Pos:      an.pos,
						Analyzer: "annotation",
						Message:  fmt.Sprintf("//schemble:%s needs a one-line justification after the directive", an.name),
					})
				case opts.ReportUnused && !an.used:
					collect(Diagnostic{
						Pos:      an.pos,
						Analyzer: "annotation",
						Message:  fmt.Sprintf("stale //schemble:%s annotation: it suppresses nothing on this or the next line", an.name),
					})
				}
			}
			mu.Lock()
			diags = append(diags, local...)
			mu.Unlock()
		}(u)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
