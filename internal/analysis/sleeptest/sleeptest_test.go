package sleeptest_test

import (
	"testing"

	"schemble/internal/analysis/sleeptest"
	"schemble/internal/analysis/testkit"
)

func TestSleeptest(t *testing.T) {
	testkit.Run(t, sleeptest.Analyzer, "example.com/pkg")
}
