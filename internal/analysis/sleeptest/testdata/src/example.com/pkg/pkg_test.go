package pkg

import "time"

// settle is the flaky pattern the analyzer exists to catch.
func settle() {
	time.Sleep(time.Millisecond) // want "bare time.Sleep in a test"
}

// pace is load-bearing and waived with a justification.
func pace() {
	//schemble:sleep-ok the pacing interval is itself the thing under test here
	time.Sleep(2 * time.Millisecond)
}
