// Package pkg shows the sleeptest scope: time.Sleep in non-test files
// is none of this analyzer's business.
package pkg

import "time"

// Backoff sleeps in production code; retry backoff is legitimate.
func Backoff() {
	time.Sleep(time.Millisecond)
}
