// Package sleeptest forbids bare time.Sleep in _test.go files. A sleep
// long enough to be reliable is too slow, and a sleep fast enough to be
// quick is flaky under load — the deflaking of
// TestServeDrainUnderFaultsNoLeaks (PR 3) replaced exactly this pattern
// with polling against a deadline. Sleeps that are themselves the thing
// under test (jitter windows, pacing) can be waived with
// //schemble:sleep-ok.
package sleeptest

import (
	"go/ast"

	"schemble/internal/analysis"
)

// Analyzer is the sleeptest analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "sleeptest",
	Doc:        "forbid bare time.Sleep in _test.go files; poll with a deadline instead",
	Directives: []string{"sleep-ok"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		if !pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !analysis.IsPkgFunc(info, call, "time", "Sleep") {
				return true
			}
			pass.Report(call.Pos(), "sleep-ok",
				"bare time.Sleep in a test is flaky under load and slow when safe: poll the condition with a deadline instead")
			return true
		})
	}
	return nil
}
