package load_test

import (
	"go/token"
	"strings"
	"testing"

	"schemble/internal/analysis"
	"schemble/internal/analysis/load"
)

// repoRoot is where go list runs; the loader resolves the module from
// there. Tests execute with the package directory as cwd, two levels
// below internal/.
const repoRoot = "../../.."

// TestLoadTypedUnits loads a slice of the real module and checks the
// invariants every analyzer leans on: parsed files, a complete types.Info,
// and a type-checked *types.Package per unit.
func TestLoadTypedUnits(t *testing.T) {
	units, err := load.Load(repoRoot, "./internal/core", "./internal/qos")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	byBase := make(map[string]*analysis.Unit)
	for _, u := range units {
		if len(u.Files) == 0 {
			t.Errorf("unit %s has no parsed files", u.Path)
		}
		if u.Pkg == nil || !u.Pkg.Complete() {
			t.Errorf("unit %s: package not fully type-checked", u.Path)
		}
		if u.Info == nil || u.Info.Uses == nil || u.Info.Defs == nil || u.Info.Selections == nil {
			t.Errorf("unit %s: types.Info missing maps", u.Path)
		}
		if u.Fset == nil {
			t.Fatalf("unit %s: nil FileSet", u.Path)
		}
		byBase[u.Base] = u
	}
	for _, base := range []string{"schemble/internal/core", "schemble/internal/qos"} {
		if byBase[base] == nil {
			t.Errorf("no unit loaded for %s", base)
		}
	}
}

// TestLoadPrefersAugmentedVariant: a package with internal tests must be
// loaded exactly once, as the test-augmented variant (the union of
// library and _test.go files), never additionally as the bare library.
func TestLoadPrefersAugmentedVariant(t *testing.T) {
	units, err := load.Load(repoRoot, "./internal/core")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var core []*analysis.Unit
	for _, u := range units {
		if u.Base == "schemble/internal/core" {
			core = append(core, u)
		}
	}
	if len(core) != 1 {
		t.Fatalf("want exactly one unit for schemble/internal/core, got %d", len(core))
	}
	u := core[0]
	if !strings.Contains(u.Path, "[") {
		t.Errorf("unit path %q is not the test-augmented variant", u.Path)
	}
	var lib, test bool
	for _, f := range u.Files {
		name := u.Fset.Position(f.Pos()).Filename
		switch {
		case strings.HasSuffix(name, "_test.go"):
			test = true
		default:
			lib = true
		}
	}
	if !lib || !test {
		t.Errorf("augmented unit should mix library and _test.go files (lib=%v test=%v)", lib, test)
	}
}

// TestLoadSkipsSynthesizedTestMain: go list -test emits a synthesized
// <pkg>.test main package; it must never become an analysis unit.
func TestLoadSkipsSynthesizedTestMain(t *testing.T) {
	units, err := load.Load(repoRoot, "./internal/qos")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, u := range units {
		if strings.HasSuffix(u.Path, ".test") {
			t.Errorf("synthesized test main %s leaked into the unit list", u.Path)
		}
	}
}

// TestLoadBadPattern: an unknown pattern must surface go list's error,
// not a silent empty result.
func TestLoadBadPattern(t *testing.T) {
	if _, err := load.Load(repoRoot, "./internal/does-not-exist"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}

// TestListExports: the raw list layer reports export data for compiled
// dependencies, which the gc importer resolves types through.
func TestListExports(t *testing.T) {
	pkgs, err := load.List(repoRoot, "-deps", "-test", "-export", "-json", "./internal/rcache")
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	exports := load.Exports(pkgs)
	for _, dep := range []string{"sync", "schemble/internal/cluster"} {
		if exports[dep] == "" {
			t.Errorf("no export data recorded for dependency %q", dep)
		}
	}
	fset := token.NewFileSet()
	imp := load.GCImporter(fset, exports)
	pkg, err := imp.Import("schemble/internal/cluster")
	if err != nil {
		t.Fatalf("importing cluster from export data: %v", err)
	}
	if pkg.Scope().Lookup("KMeans") == nil {
		t.Error("export data for cluster lacks KMeans")
	}
}
