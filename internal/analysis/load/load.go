// Package load turns Go packages into type-checked analysis.Units
// without golang.org/x/tools: it shells out to `go list -export` for the
// build graph and export data, parses the target packages' sources with
// go/parser, and type-checks them with go/types, resolving standard
// library imports through the compiler's export files via go/importer's
// lookup hook. The result is a fully offline loader — no module proxy,
// no vendored x/tools — that sees exactly the file set the build sees,
// including test-augmented package variants.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"

	"schemble/internal/analysis"
)

// Package is the subset of `go list -json` output the loader needs.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// List runs `go list` in dir with the given arguments and decodes the
// JSON package stream. CGO is disabled so the compiled file set is pure
// Go and identical across machines.
func List(dir string, args ...string) ([]*Package, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*Package
	for {
		p := new(Package)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports maps each listed import path to its export-data file.
func Exports(pkgs []*Package) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// GCImporter resolves import paths to packages by reading the compiler
// export data named in exports. It only yields type information — no
// syntax — which is all dependencies need.
func GCImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// future is the once-computed type-check result for one package. Every
// listed module package gets one up front; forcing a future that is
// already being computed by another goroutine blocks until it is done,
// so each package is parsed and checked exactly once no matter how many
// importers race to it.
type future struct {
	once sync.Once
	u    *analysis.Unit
	err  error
}

// checker type-checks the listed packages concurrently. The FileSet is
// internally synchronized, parser.ParseFile against it is
// goroutine-safe, and completed *types.Package values are immutable, so
// the only state needing a lock is the gc export-data importer's
// package cache.
type checker struct {
	fset    *token.FileSet
	byPath  map[string]*Package
	futures map[string]*future
	gcMu    sync.Mutex
	gcimp   types.Importer
}

// gcImport reads a dependency's export data under the importer lock
// (importer.ForCompiler memoizes into an unsynchronized map).
func (ck *checker) gcImport(path string) (*types.Package, error) {
	ck.gcMu.Lock()
	defer ck.gcMu.Unlock()
	return ck.gcimp.Import(path)
}

// get forces the future for path. stack carries this goroutine's
// in-progress recursion for cycle detection — go list never emits a
// cyclic import graph, but a corrupted listing must fail loudly rather
// than deadlock a re-entrant sync.Once.
func (ck *checker) get(path string, stack []string) (*analysis.Unit, error) {
	f := ck.futures[path]
	if f == nil {
		return nil, fmt.Errorf("package %q not in go list output", path)
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	f.once.Do(func() { f.u, f.err = ck.check(path, append(stack, path)) })
	return f.u, f.err
}

// check parses and type-checks one package, forcing its in-module
// dependencies first (inline, on this goroutine — concurrency comes
// from the top-level fan-out in Load).
func (ck *checker) check(path string, stack []string) (*analysis.Unit, error) {
	p := ck.byPath[path]
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(ck.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	var typeErrs []error
	conf := types.Config{
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Error: func(err error) { typeErrs = append(typeErrs, err) },
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == "unsafe" {
				return types.Unsafe, nil
			}
			// go list resolves an import to its test-augmented
			// variant when this package participates in the same
			// test binary; mirror that resolution.
			resolved := imp
			for _, im := range p.Imports {
				if im == imp || strings.HasPrefix(im, imp+" [") {
					resolved = im
					break
				}
			}
			dep := ck.byPath[resolved]
			if dep != nil && !dep.Standard {
				u, err := ck.get(resolved, stack)
				if err != nil {
					return nil, err
				}
				return u.Pkg, nil
			}
			return ck.gcImport(imp)
		}),
	}
	if p.Module != nil && p.Module.GoVersion != "" {
		conf.GoVersion = "go" + p.Module.GoVersion
	}
	info := NewInfo()
	tpkg, err := conf.Check(analysis.BasePath(path), ck.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &analysis.Unit{
		Path:  path,
		Base:  analysis.BasePath(path),
		Fset:  ck.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}, nil
}

// Load lists the packages matched by patterns in the module rooted near
// dir and returns one type-checked Unit per matched package. Packages
// with internal tests are returned as their test-augmented variant only
// (library + _test.go files, exactly what the test binary compiles), so
// each source file is analyzed once. Synthesized test-main packages are
// skipped.
//
// One `go list` pass supplies the whole build graph; parsing and
// type-checking then fan out across GOMAXPROCS workers, each forcing
// its dependencies' futures inline (a worker never waits on the
// semaphore while holding a slot, so the bound cannot deadlock).
func Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	args := append([]string{"-deps", "-test", "-export", "-json"}, patterns...)
	pkgs, err := List(dir, args...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(pkgs))
	augmented := make(map[string]bool) // base paths that have a test-augmented variant
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.ForTest != "" && analysis.BasePath(p.ImportPath) == p.ForTest {
			augmented[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	ck := &checker{
		fset:    fset,
		byPath:  byPath,
		futures: make(map[string]*future, len(pkgs)),
		gcimp:   GCImporter(fset, Exports(pkgs)),
	}
	for _, p := range pkgs {
		if !p.Standard {
			ck.futures[p.ImportPath] = &future{}
		}
	}

	var targets []*Package
	for _, p := range pkgs {
		if p.Standard || p.DepOnly || p.Module == nil {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test main
		}
		// A package with internal tests appears twice; analyze only the
		// augmented variant so each file is seen once.
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue
		}
		targets = append(targets, p)
	}

	units := make([]*analysis.Unit, len(targets))
	errs := make([]error, len(targets))
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i, p := range targets {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			units[i], errs[i] = ck.get(path, nil)
		}(i, p.ImportPath)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return units, nil
}
