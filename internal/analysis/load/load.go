// Package load turns Go packages into type-checked analysis.Units
// without golang.org/x/tools: it shells out to `go list -export` for the
// build graph and export data, parses the target packages' sources with
// go/parser, and type-checks them with go/types, resolving standard
// library imports through the compiler's export files via go/importer's
// lookup hook. The result is a fully offline loader — no module proxy,
// no vendored x/tools — that sees exactly the file set the build sees,
// including test-augmented package variants.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"schemble/internal/analysis"
)

// Package is the subset of `go list -json` output the loader needs.
type Package struct {
	ImportPath string
	Dir        string
	Name       string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Export     string
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path      string
		GoVersion string
	}
}

// List runs `go list` in dir with the given arguments and decodes the
// JSON package stream. CGO is disabled so the compiled file set is pure
// Go and identical across machines.
func List(dir string, args ...string) ([]*Package, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*Package
	for {
		p := new(Package)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Exports maps each listed import path to its export-data file.
func Exports(pkgs []*Package) map[string]string {
	m := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			m[p.ImportPath] = p.Export
		}
	}
	return m
}

// GCImporter resolves import paths to packages by reading the compiler
// export data named in exports. It only yields type information — no
// syntax — which is all dependencies need.
func GCImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// NewInfo allocates a types.Info with every map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// Load lists the packages matched by patterns in the module rooted near
// dir and returns one type-checked Unit per matched package. Packages
// with internal tests are returned as their test-augmented variant only
// (library + _test.go files, exactly what the test binary compiles), so
// each source file is analyzed once. Synthesized test-main packages are
// skipped.
func Load(dir string, patterns ...string) ([]*analysis.Unit, error) {
	args := append([]string{"-deps", "-test", "-export", "-json"}, patterns...)
	pkgs, err := List(dir, args...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*Package, len(pkgs))
	augmented := make(map[string]bool) // base paths that have a test-augmented variant
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		if p.ForTest != "" && analysis.BasePath(p.ImportPath) == p.ForTest {
			augmented[p.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	exports := Exports(pkgs)
	gcimp := GCImporter(fset, exports)

	checked := make(map[string]*analysis.Unit)
	var check func(path string) (*analysis.Unit, error)
	check = func(path string) (*analysis.Unit, error) {
		if u, ok := checked[path]; ok {
			if u == nil {
				return nil, fmt.Errorf("import cycle through %q", path)
			}
			return u, nil
		}
		checked[path] = nil // cycle guard
		p := byPath[path]
		if p == nil {
			return nil, fmt.Errorf("package %q not in go list output", path)
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, af)
		}
		var typeErrs []error
		conf := types.Config{
			Sizes: types.SizesFor("gc", runtime.GOARCH),
			Error: func(err error) { typeErrs = append(typeErrs, err) },
			Importer: importerFunc(func(imp string) (*types.Package, error) {
				if imp == "unsafe" {
					return types.Unsafe, nil
				}
				// go list resolves an import to its test-augmented
				// variant when this package participates in the same
				// test binary; mirror that resolution.
				resolved := imp
				for _, im := range p.Imports {
					if im == imp || strings.HasPrefix(im, imp+" [") {
						resolved = im
						break
					}
				}
				dep := byPath[resolved]
				if dep != nil && !dep.Standard {
					u, err := check(resolved)
					if err != nil {
						return nil, err
					}
					return u.Pkg, nil
				}
				return gcimp.Import(imp)
			}),
		}
		if p.Module != nil && p.Module.GoVersion != "" {
			conf.GoVersion = "go" + p.Module.GoVersion
		}
		info := NewInfo()
		tpkg, err := conf.Check(analysis.BasePath(path), fset, files, info)
		if len(typeErrs) > 0 {
			return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
		u := &analysis.Unit{
			Path:  path,
			Base:  analysis.BasePath(path),
			Fset:  fset,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		}
		checked[path] = u
		return u, nil
	}

	var units []*analysis.Unit
	for _, p := range pkgs {
		if p.Standard || p.DepOnly || p.Module == nil {
			continue
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // synthesized test main
		}
		// A package with internal tests appears twice; analyze only the
		// augmented variant so each file is seen once.
		if p.ForTest == "" && augmented[p.ImportPath] {
			continue
		}
		u, err := check(p.ImportPath)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}
