package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves the package-level function a call invokes, or nil for
// method calls, conversions, builtins, and calls through variables. It
// sees through parentheses and handles both selector (pkg.F) and
// dot-import (F) forms.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		if info.Selections[fun] != nil {
			return nil // method or field selection, not a package function
		}
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call invokes one of the named
// package-level functions of the package with the given import path.
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}
