// Package annot exercises the framework itself through a synthetic
// analyzer that flags calls to forbidden(): suppression placement in
// both positions, and every annotation-grammar diagnostic.
package annot

func forbidden() {}

// plain is the unsuppressed baseline.
func plain() {
	forbidden() // want "call to forbidden"
}

// sameLine waives the call with an end-of-line annotation.
func sameLine() {
	forbidden() //schemble:call-ok the fixture waives the same-line call
}

// lineAbove waives the call with a standalone annotation.
func lineAbove() {
	//schemble:call-ok the fixture waives the call on the next line
	forbidden()
}

// typo carries a misspelled directive: it suppresses nothing, so both
// the unknown-directive and the underlying diagnostic fire.
func typo() {
	forbidden() /* want "unknown //schemble: directive" "call to forbidden" */ //schemble:callok misspelled directive
}

// bare suppresses the call but is flagged for its missing why.
func bare() {
	forbidden() /* want "needs a one-line justification" */ //schemble:call-ok
}

// Stale: a well-formed annotation with nothing to suppress on its own
// or the next line.
var idle = 1 /* want "stale //schemble:call-ok annotation" */ //schemble:call-ok justified but covering nothing
