package detrand_test

import (
	"testing"

	"schemble/internal/analysis/detrand"
	"schemble/internal/analysis/testkit"
)

func TestDetrandCriticalPackage(t *testing.T) {
	testkit.Run(t, detrand.Analyzer, "schemble/internal/sim")
}

func TestDetrandOutOfScopePackage(t *testing.T) {
	testkit.Run(t, detrand.Analyzer, "example.com/relaxed")
}
