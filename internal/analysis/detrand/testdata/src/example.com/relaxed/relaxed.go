// Package relaxed is outside the determinism-critical set: the same
// constructs detrand flags in schemble/internal/sim are fine here.
package relaxed

import (
	"math/rand"
	"time"
)

func Jitter() time.Duration {
	return time.Duration(rand.Int63n(int64(time.Since(time.Now().Add(-time.Second)))))
}

func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m {
		s += v
	}
	return s
}
