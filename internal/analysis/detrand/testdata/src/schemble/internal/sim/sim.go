// Package sim is a fixture standing in for the real simulator: it sits
// inside the determinism-critical set, so every randomness and
// wall-clock construct below must trip detrand.
package sim

import (
	"math/rand" // want "import of math/rand in determinism-critical package"
	"sort"
	"time"
)

// Draw leaks the globally-seeded generator into simulator output.
func Draw() float64 { return rand.Float64() }

// Elapsed reads the wall clock twice.
func Elapsed() time.Duration {
	start := time.Now()      // want "wall-clock read \\(time.Now\\)"
	return time.Since(start) // want "wall-clock read \\(time.Since\\)"
}

// Anchor is the audited exception: the annotation on the same line
// waives the read.
func Anchor() int64 { return time.Now().UnixNano() } //schemble:wallclock the fixture anchors virtual time to the wall clock exactly once

// Sum folds map values in randomized iteration order.
func Sum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want "map iteration order is randomized"
		s += v
	}
	return s
}

// Keys is the approved sort-keys idiom and must stay clean.
func Keys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
