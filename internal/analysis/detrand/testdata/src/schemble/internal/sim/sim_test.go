package sim

import "time"

// Test files are exempt from detrand (sleeptest governs them): this
// wall-clock read must not be reported.
func measure() time.Duration {
	start := time.Now()
	return time.Since(start)
}
