// Package detrand enforces schemble's determinism contract: inside the
// packages whose outputs must replay bit-identically from a seed (the
// simulator, models, scheduler, and the training/eval pipeline), no code
// may read the wall clock, use the globally-seeded math/rand, or let Go's
// randomized map iteration order feed results. Randomness must flow from
// an injected schemble/internal/rng.Source and time from the virtual
// clock, or replays diverge in ways no unit test reliably catches.
package detrand

import (
	"go/ast"
	"go/types"
	"strconv"

	"schemble/internal/analysis"
)

// criticalPkgs are the packages under the bit-identical-replay contract.
// internal/serve is included for its wall-clock reads: the serving
// runtime legitimately anchors virtual time to the wall clock, but every
// such site must carry an audited //schemble:wallclock annotation.
var criticalPkgs = map[string]bool{
	"schemble/internal/sim":         true,
	"schemble/internal/model":       true,
	"schemble/internal/ensemble":    true,
	"schemble/internal/policy":      true,
	"schemble/internal/nn":          true,
	"schemble/internal/gbdt":        true,
	"schemble/internal/discrepancy": true,
	"schemble/internal/pipeline":    true,
	"schemble/internal/cluster":     true,
	"schemble/internal/filling":     true,
	"schemble/internal/serve":       true,
	"schemble/internal/core":        true,
	"schemble/internal/qos":         true,
	"schemble/internal/rcache":      true,
	"schemble/internal/trace":       true,
	"schemble/internal/adapt":       true,
}

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc: "forbid wall-clock reads, global math/rand, and map-order-dependent " +
		"iteration in determinism-critical packages",
	Directives: []string{"wallclock", "rand-ok", "maporder-ok"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if !criticalPkgs[pass.Unit.Base] {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests may use wall time; sleeptest governs them
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Report(imp.Pos(), "rand-ok",
					"import of %s in determinism-critical package %s: draw from an injected schemble/internal/rng.Source so runs replay bit-identically",
					path, pass.Unit.Base)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if analysis.IsPkgFunc(info, n, "time", "Now", "Since", "Until") {
					pass.Report(n.Pos(), "wallclock",
						"wall-clock read (time.%s) in determinism-critical package %s: use the virtual clock so replays are bit-identical",
						analysis.Callee(info, n).Name(), pass.Unit.Base)
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap && !isSortKeysIdiom(info, n) {
						pass.Report(n.Pos(), "maporder-ok",
							"map iteration order is randomized and can leak into deterministic output: collect and sort the keys first")
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSortKeysIdiom recognizes the approved fix pattern — a loop whose
// whole body appends the range key to a slice (to be sorted before the
// real iteration):
//
//	for k := range m { keys = append(keys, k) }
func isSortKeysIdiom(info *types.Info, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || key.Name == "_" || rng.Value != nil || len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	arg, ok := call.Args[1].(*ast.Ident)
	return ok && info.Uses[arg] == info.Defs[key]
}
