package guardedby_test

import (
	"testing"

	"schemble/internal/analysis/guardedby"
	"schemble/internal/analysis/testkit"
)

func TestGuardedBy(t *testing.T) {
	testkit.Run(t, guardedby.Analyzer, "example.com/ledger")
}
