// Package guardedby mechanizes the "guarded by mu" comments scattered
// through the runtime's struct definitions. A field annotated
//
//	//schemble:guardedby mu   <optional rationale>
//
// declares that every access to it must happen while the named sibling
// mutex is held. The check is intraprocedural and deliberately simple:
// an access is legal when the innermost enclosing function (a) calls
// Lock or RLock on that mutex itself, (b) is named with the *Locked
// suffix — the repo's convention for helpers whose callers hold the
// lock, (c) touches a value it just constructed and has not published
// yet, or (d) initializes the field in a composite literal. Everything
// else is a finding, waivable with //schemble:guardedby-ok and a
// written justification. The analyzer cannot prove the *right* instance
// was locked — like every annotation-driven lock checker it trades that
// precision for zero runtime cost and no false negatives on forgotten
// locks.
package guardedby

import (
	"go/ast"
	"go/types"
	"strings"

	"schemble/internal/analysis"
)

// Analyzer is the guardedby analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "guardedby",
	Doc: "check that fields annotated //schemble:guardedby <mu> are only accessed " +
		"by functions that lock the named mutex (or are *Locked helpers)",
	Directives: []string{"guardedby", "guardedby-ok"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo()

	// Phase 1: collect the declarations. guarded maps each annotated
	// field to its declared mutex field (both as type-checker objects, so
	// matching is name-resolution-exact, not textual).
	guarded := make(map[*types.Var]*types.Var)
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					continue // embedded fields cannot carry the annotation
				}
				arg, ok := pass.Annotation(field.Pos(), "guardedby")
				if !ok {
					continue
				}
				muName, _, _ := strings.Cut(arg, " ")
				mu := findField(st, muName)
				if mu == nil {
					pass.Report(field.Pos(), "",
						"//schemble:guardedby names %q, which is not a field of this struct", muName)
					continue
				}
				muVar, _ := info.Defs[mu].(*types.Var)
				if muVar == nil || !isMutex(muVar.Type()) {
					pass.Report(field.Pos(), "",
						"//schemble:guardedby names %q, which is not a sync.Mutex or sync.RWMutex field", muName)
					continue
				}
				for _, name := range field.Names {
					if fv, _ := info.Defs[name].(*types.Var); fv != nil {
						guarded[fv] = muVar
					}
				}
			}
			return true
		})
	}
	if len(guarded) == 0 {
		return nil
	}

	// Phase 2: judge every access, one function scope at a time.
	for _, f := range pass.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkScope(pass, info, guarded, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// checkScope validates one function body, recursing into nested
// function literals as their own scopes (a lock held where a closure is
// *defined* says nothing about where it *runs*).
func checkScope(pass *analysis.Pass, info *types.Info, guarded map[*types.Var]*types.Var, name string, body *ast.BlockStmt) {
	var (
		locked   = make(map[*types.Var]bool) // mutex fields this scope locks
		fresh    = make(map[types.Object]bool)
		accesses []*ast.SelectorExpr
		nested   []*ast.FuncLit
	)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			nested = append(nested, n)
			return false // its own scope
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					if mv := selectedField(info, sel.X); mv != nil {
						locked[mv] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if isFreshStruct(info, n.Rhs[i]) {
					if obj := info.Defs[id]; obj != nil {
						fresh[obj] = true
					} else if obj := info.Uses[id]; obj != nil {
						fresh[obj] = true
					}
				}
			}
		case *ast.SelectorExpr:
			if fv := fieldOf(info, n); fv != nil {
				if _, isGuarded := guarded[fv]; isGuarded {
					accesses = append(accesses, n)
				}
			}
		}
		return true
	})

	lockedName := strings.HasSuffix(name, "Locked")
	for _, sel := range accesses {
		fv := fieldOf(info, sel)
		mu := guarded[fv]
		if lockedName || locked[mu] {
			continue
		}
		if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok && fresh[info.Uses[base]] {
			continue // value constructed in this scope, not yet published
		}
		pass.Report(sel.Sel.Pos(), "guardedby-ok",
			"access to %s (guarded by %s) in a function that does not lock it: lock %s here, give the function a *Locked suffix if its callers hold the lock, or waive with a justification",
			fv.Name(), mu.Name(), mu.Name())
	}

	for _, lit := range nested {
		checkScope(pass, info, guarded, "", lit.Body)
	}
}

// fieldOf resolves a selector to the struct field it selects, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	// Package-qualified selectors and composite-literal keys resolve
	// through Uses instead.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// selectedField resolves the base of a Lock/RLock call (c.mu in
// c.mu.Lock()) to the mutex field object, or nil for locks on
// non-field mutexes.
func selectedField(info *types.Info, x ast.Expr) *types.Var {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return fieldOf(info, sel)
}

// isMutex reports whether t (or what it points to) is sync.Mutex or
// sync.RWMutex.
func isMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// isFreshStruct reports whether the expression constructs a new struct
// value: a composite literal, its address, or new(T).
func isFreshStruct(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// findField returns the named field's identifier within the struct, or
// nil.
func findField(st *ast.StructType, name string) *ast.Ident {
	if name == "" {
		return nil
	}
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return n
			}
		}
	}
	return nil
}
