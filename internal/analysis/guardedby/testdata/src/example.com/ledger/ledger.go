// Package ledger exercises guardedby: every legal access shape (locked,
// RLocked, *Locked helper, fresh construction, composite literal,
// waiver) stays silent, and every unprotected touch or malformed
// declaration is a finding.
package ledger

import "sync"

// Book is the annotated struct under test.
type Book struct {
	mu sync.RWMutex
	//schemble:guardedby mu protects the running balance
	balance int
	//schemble:guardedby mu protects the entry log alongside balance
	entries []string

	plain int // unannotated, never checked
}

// Bad carries the two malformed declarations.
type Bad struct {
	gate  int
	ok    sync.Mutex
	count int //schemble:guardedby missing names a field that does not exist // want `names "missing", which is not a field of this struct`
	total int //schemble:guardedby gate names a non-mutex sibling // want `names "gate", which is not a sync.Mutex or sync.RWMutex field`
}

// Deposit locks the declared mutex: clean.
func (b *Book) Deposit(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.balance += n
	b.entries = append(b.entries, "deposit")
}

// Balance read-locks: RLock counts.
func (b *Book) Balance() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.balance
}

// resetLocked relies on the naming convention: callers hold b.mu.
func (b *Book) resetLocked() {
	b.balance = 0
	b.entries = nil
}

// Peek races every locked writer.
func (b *Book) Peek() int {
	return b.balance // want "access to balance .guarded by mu. in a function that does not lock it"
}

// Drain races and mutates, and the closure gets its own scope: a lock
// in the enclosing function would not excuse it either.
func (b *Book) Drain() []string {
	out := b.entries // want "access to entries .guarded by mu."
	f := func() {
		b.entries = nil // want "access to entries .guarded by mu."
	}
	f()
	return out
}

// New constructs fresh values: composite-literal keys and writes through
// a not-yet-published local are pre-publication and exempt.
func New() *Book {
	b := &Book{balance: 1, entries: []string{"open"}}
	b.balance = 2
	other := new(Book)
	other.balance = 3
	return b
}

// Audit demonstrates the waiver.
func Audit(b *Book) int {
	return b.balance //schemble:guardedby-ok fixture: single-threaded audit path, no concurrent writer by construction
}

// Touch only uses the unannotated field: never checked.
func (b *Book) Touch() int { return b.plain }
