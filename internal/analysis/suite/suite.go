// Package suite registers schemble's analyzers in one place so the
// schemble-vet binary and the repo-wide regression test agree on what
// "the suite" is.
package suite

import (
	"schemble/internal/analysis"
	"schemble/internal/analysis/ctxhttp"
	"schemble/internal/analysis/detrand"
	"schemble/internal/analysis/exhaustiveoutcome"
	"schemble/internal/analysis/floateq"
	"schemble/internal/analysis/sleeptest"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxhttp.Analyzer,
		detrand.Analyzer,
		exhaustiveoutcome.Analyzer,
		floateq.Analyzer,
		sleeptest.Analyzer,
	}
}
