// Package suite registers schemble's analyzers in one place so the
// schemble-vet binary and the repo-wide regression test agree on what
// "the suite" is.
package suite

import (
	"schemble/internal/analysis"
	"schemble/internal/analysis/atomicmix"
	"schemble/internal/analysis/ctxhttp"
	"schemble/internal/analysis/detrand"
	"schemble/internal/analysis/enginepure"
	"schemble/internal/analysis/exhaustiveoutcome"
	"schemble/internal/analysis/floateq"
	"schemble/internal/analysis/guardedby"
	"schemble/internal/analysis/planown"
	"schemble/internal/analysis/sleeptest"
)

// Analyzers returns the full suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		atomicmix.Analyzer,
		ctxhttp.Analyzer,
		detrand.Analyzer,
		enginepure.Analyzer,
		exhaustiveoutcome.Analyzer,
		floateq.Analyzer,
		guardedby.Analyzer,
		planown.Analyzer,
		sleeptest.Analyzer,
	}
}
