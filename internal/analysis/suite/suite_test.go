package suite_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"schemble/internal/analysis"
	"schemble/internal/analysis/load"
	"schemble/internal/analysis/suite"
)

func TestSuiteShape(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range suite.Analyzers() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if len(a.Directives) == 0 {
			t.Errorf("analyzer %q has no waiver directive", a.Name)
		}
	}
}

// TestRepoIsClean is the lint gate in test form: the full suite over
// the whole module must report nothing, so `go test ./...` alone
// catches a regression even when `make lint` is skipped.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	units, err := load.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(units, suite.Analyzers(), analysis.Options{ReportUnused: true})
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
