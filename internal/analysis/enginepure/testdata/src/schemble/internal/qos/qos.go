// Package qos is a fixture standing in for the real overload
// controller: it sits on the engine-agnostic declared list, so every
// engine-owned construct below must trip enginepure.
package qos

import (
	"errors"
	"fmt"
	"math/rand" // want "import of math/rand in engine-agnostic package"
	"sync"
	"time"
)

// ErrSaturated is the tolerated package-level idiom: a write-once error
// sentinel carries no replayable state.
var ErrSaturated = errors.New("qos: saturated")

// ErrDrained exercises the fmt.Errorf sentinel form.
var ErrDrained = fmt.Errorf("qos: drained")

// lastLoad is exactly the contraband the contract forbids: package
// state shared by every engine in the process.
var lastLoad float64 // want "package-level mutable state \\(var lastLoad\\)"

// seeded is the audited exception: the annotation on the line above
// waives it.
//
//schemble:enginepure-ok fixture: write-once feature table built by init, read-only afterwards
var seeded bool

// Controller is fine: mutexes serialize, they do not decide.
type Controller struct {
	mu   sync.Mutex
	load float64
}

// Observe is clean — virtual time comes in as an argument.
func (c *Controller) Observe(now time.Duration, load float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.load = load
}

// WallObserve reads the wall clock instead of taking the caller's.
func (c *Controller) WallObserve(load float64) {
	_ = time.Now() // want "wall-clock/timer call \\(time.Now\\) in engine-agnostic package"
	c.load = load + rand.Float64()
}

// Refill arms a runtime timer.
func (c *Controller) Refill() {
	time.Sleep(time.Millisecond) // want "wall-clock/timer call \\(time.Sleep\\) in engine-agnostic package"
}

// Fanout owns concurrency that belongs to the engines.
func (c *Controller) Fanout(loads []float64) {
	ch := make(chan float64, len(loads)) // want "channel creation in engine-agnostic package"
	for _, l := range loads {
		go func(l float64) { // want "goroutine launch in engine-agnostic package"
			ch <- l // want "channel send in engine-agnostic package"
		}(l)
	}
	for range loads {
		c.load += <-ch // want "channel receive in engine-agnostic package"
	}
	close(ch) // want "channel close in engine-agnostic package"
}

// Drain exercises select and range-over-channel.
func (c *Controller) Drain(ch chan float64) {
	select { // want "select statement in engine-agnostic package"
	case l := <-ch: // want "channel receive in engine-agnostic package"
		c.load = l
	default:
	}
	for l := range ch { // want "range over a channel in engine-agnostic package"
		c.load = l
	}
}
