// Package engine is off the declared list: engines legitimately own
// goroutines, channels, wall time and package state, so nothing here
// may trip enginepure.
package engine

import (
	"math/rand"
	"time"
)

var bootTime = time.Now()

func Spawn(n int) chan time.Duration {
	ch := make(chan time.Duration, n)
	for i := 0; i < n; i++ {
		go func() {
			time.Sleep(time.Duration(rand.Int63n(int64(time.Millisecond))))
			ch <- time.Since(bootTime)
		}()
	}
	return ch
}
