package enginepure_test

import (
	"testing"

	"schemble/internal/analysis/enginepure"
	"schemble/internal/analysis/testkit"
)

func TestEnginePureListedPackage(t *testing.T) {
	testkit.Run(t, enginepure.Analyzer, "schemble/internal/qos")
}

func TestEnginePureOutOfScopePackage(t *testing.T) {
	testkit.Run(t, enginepure.Analyzer, "example.com/engine")
}
