// Package enginepure mechanizes the engine-agnostic contract that
// internal/qos and internal/rcache established by convention: a package
// shared verbatim by the concurrent serving runtime (internal/serve)
// and the discrete-event simulator (internal/sim) must be a pure state
// machine over the caller's virtual clock. Concretely, inside a package
// on the declared list there may be no goroutine launches, no channel
// operations, no wall-clock or timer reads, no global randomness, and
// no package-level mutable state — any of those would let one engine's
// scheduling or wall time leak into shared decisions and break the
// bit-identical sim<->serve equivalence the paper's reproduction rests
// on. Mutexes are explicitly allowed: they serialize, they do not
// decide.
package enginepure

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"schemble/internal/analysis"
)

// Packages is the declared list of engine-agnostic packages. Growing the
// shared core (the ROADMAP's cluster tier and online adaptation will
// both add engine-agnostic policy code) means adding the new package
// here, not copying the contract into a comment.
var Packages = map[string]bool{
	"schemble/internal/qos":     true,
	"schemble/internal/rcache":  true,
	"schemble/internal/cluster": true,
	"schemble/internal/adapt":   true,
}

// Analyzer is the enginepure analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "enginepure",
	Doc: "forbid goroutines, channel operations, wall-clock/timer reads, global " +
		"randomness, and package-level mutable state in engine-agnostic packages " +
		"shared by serve and sim",
	Directives: []string{"enginepure-ok"},
	Run:        run,
}

// rngImports are the import paths that smuggle randomness into shared
// code; engine-agnostic packages must take injected sources instead.
var rngImports = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
	"crypto/rand":  true,
}

// timeFuncs are the time package entry points that read the wall clock
// or arm runtime timers (timers both read the clock and spawn runtime
// goroutines).
var timeFuncs = []string{"Now", "Since", "Until", "Sleep", "After", "Tick", "NewTimer", "NewTicker", "AfterFunc"}

const directive = "enginepure-ok"

func run(pass *analysis.Pass) error {
	if !Packages[pass.Unit.Base] {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		if pass.IsTestFile(f.Pos()) {
			continue // tests drive the package from an engine's side; they may use engine machinery
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if rngImports[path] {
				pass.Report(imp.Pos(), directive,
					"import of %s in engine-agnostic package %s: randomness must be injected by the engine so sim and serve replay bit-identically",
					path, pass.Unit.Base)
			}
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || isErrSentinel(info, vs) {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" {
						continue
					}
					pass.Report(name.Pos(), directive,
						"package-level mutable state (var %s) in engine-agnostic package %s: shared state must live in instances the engines own and replay",
						name.Name, pass.Unit.Base)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Report(n.Pos(), directive,
					"goroutine launch in engine-agnostic package %s: the engines own all concurrency; shared code must stay single-threaded per call",
					pass.Unit.Base)
			case *ast.SendStmt:
				pass.Report(n.Pos(), directive,
					"channel send in engine-agnostic package %s: shared code must not depend on engine scheduling",
					pass.Unit.Base)
			case *ast.SelectStmt:
				pass.Report(n.Pos(), directive,
					"select statement in engine-agnostic package %s: shared code must not depend on engine scheduling",
					pass.Unit.Base)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Report(n.Pos(), directive,
						"channel receive in engine-agnostic package %s: shared code must not depend on engine scheduling",
						pass.Unit.Base)
				}
			case *ast.RangeStmt:
				if t := info.TypeOf(n.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						pass.Report(n.Pos(), directive,
							"range over a channel in engine-agnostic package %s: shared code must not depend on engine scheduling",
							pass.Unit.Base)
					}
				}
			case *ast.CallExpr:
				if b := builtinName(info, n); b == "make" && len(n.Args) > 0 {
					if t := info.Types[n.Args[0]].Type; t != nil {
						if _, isChan := t.Underlying().(*types.Chan); isChan {
							pass.Report(n.Pos(), directive,
								"channel creation in engine-agnostic package %s: shared code must not depend on engine scheduling",
								pass.Unit.Base)
						}
					}
				} else if b == "close" {
					pass.Report(n.Pos(), directive,
						"channel close in engine-agnostic package %s: shared code must not depend on engine scheduling",
						pass.Unit.Base)
				}
				if analysis.IsPkgFunc(info, n, "time", timeFuncs...) {
					pass.Report(n.Pos(), directive,
						"wall-clock/timer call (time.%s) in engine-agnostic package %s: take the caller's virtual clock so sim and serve share this code verbatim",
						analysis.Callee(info, n).Name(), pass.Unit.Base)
				}
			}
			return true
		})
	}
	return nil
}

// isErrSentinel reports whether every value in the spec is an
// errors.New or fmt.Errorf call — the one package-level var idiom the
// contract tolerates, because sentinel errors are write-once by strong
// convention and carry no replayable state.
func isErrSentinel(info *types.Info, vs *ast.ValueSpec) bool {
	if len(vs.Values) == 0 || len(vs.Values) != len(vs.Names) {
		return false
	}
	for _, v := range vs.Values {
		call, ok := ast.Unparen(v).(*ast.CallExpr)
		if !ok {
			return false
		}
		if !analysis.IsPkgFunc(info, call, "errors", "New") &&
			!analysis.IsPkgFunc(info, call, "fmt", "Errorf") {
			return false
		}
	}
	return true
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
