// Package testkit is the analysistest equivalent for schemble's
// analyzer suite: it loads fixture packages from an analyzer's
// testdata/src/<import-path>/ directory, runs one analyzer over them,
// and matches reported diagnostics against the fixtures' expectations,
// written as trailing comments in the upstream golden format:
//
//	bad() // want "regexp" "second diagnostic on the same line"
//
// Fixture packages may import each other (resolved within testdata/src),
// anything from the standard library, and real schemble packages — the
// latter two resolve through the same `go list -export` data the loader
// uses, so fixtures exercise the analyzers against the genuine types.
package testkit

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"schemble/internal/analysis"
	"schemble/internal/analysis/load"
)

// exportData is built once per test binary: the full module+stdlib
// export map, shared by every fixture load.
var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

func moduleExports() (map[string]string, error) {
	exportOnce.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			exportErr = fmt.Errorf("go env GOMOD: %v", err)
			return
		}
		gomod := strings.TrimSpace(string(out))
		if gomod == "" || gomod == os.DevNull {
			exportErr = fmt.Errorf("testkit requires module mode (go env GOMOD = %q)", gomod)
			return
		}
		pkgs, err := load.List(filepath.Dir(gomod), "-deps", "-test", "-export", "-json", "./...")
		if err != nil {
			exportErr = err
			return
		}
		exportMap = load.Exports(pkgs)
	})
	return exportMap, exportErr
}

// Run loads the fixture package at testdata/src/<pkgPath> (relative to
// the calling test's directory), applies the analyzer with stale
// annotation detection on, and verifies the diagnostics against the
// fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	ld := &loader{
		t:     t,
		fset:  token.NewFileSet(),
		root:  filepath.Join("testdata", "src"),
		units: make(map[string]*analysis.Unit),
	}
	exports, err := moduleExports()
	if err != nil {
		t.Fatalf("loading module export data: %v", err)
	}
	ld.gcimp = load.GCImporter(ld.fset, exports)

	u := ld.unit(pkgPath)
	diags, err := analysis.Run([]*analysis.Unit{u}, []*analysis.Analyzer{a}, analysis.Options{ReportUnused: true})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkgPath, err)
	}
	matchWants(t, ld.fset, u.Files, diags)
}

type loader struct {
	t     *testing.T
	fset  *token.FileSet
	root  string
	gcimp types.Importer
	units map[string]*analysis.Unit
}

func (ld *loader) unit(pkgPath string) *analysis.Unit {
	ld.t.Helper()
	if u, ok := ld.units[pkgPath]; ok {
		if u == nil {
			ld.t.Fatalf("fixture import cycle through %q", pkgPath)
		}
		return u
	}
	ld.units[pkgPath] = nil
	dir := filepath.Join(ld.root, filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		ld.t.Fatalf("fixture package %q: %v", pkgPath, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		ld.t.Fatalf("fixture package %q has no .go files", pkgPath)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			ld.t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	conf := types.Config{
		Sizes: types.SizesFor("gc", runtime.GOARCH),
		Importer: importerFunc(func(imp string) (*types.Package, error) {
			if imp == "unsafe" {
				return types.Unsafe, nil
			}
			// Fixture packages shadow real ones of the same path.
			if st, err := os.Stat(filepath.Join(ld.root, filepath.FromSlash(imp))); err == nil && st.IsDir() {
				return ld.unit(imp).Pkg, nil
			}
			return ld.gcimp.Import(imp)
		}),
	}
	info := load.NewInfo()
	tpkg, err := conf.Check(pkgPath, ld.fset, files, info)
	if err != nil {
		ld.t.Fatalf("type-checking fixture %q: %v", pkgPath, err)
	}
	u := &analysis.Unit{
		Path:  pkgPath,
		Base:  analysis.BasePath(pkgPath),
		Fset:  ld.fset,
		Files: files,
		Pkg:   tpkg,
		Info:  info,
	}
	ld.units[pkgPath] = u
	return u
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRe extracts the expectation comments, in line or block form (the
// block form exists so an expectation can share a line with a trailing
// //schemble: annotation under test). Each quoted string is a regexp
// that must match one diagnostic on the comment's line.
var wantRe = regexp.MustCompile(`(?://|/\*)\s*want\s+(.*)$`)

func matchWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				tail := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(m[1]), "*/"))
				patterns, err := splitQuoted(tail)
				if err != nil {
					t.Errorf("%s: malformed want comment: %v", pos, err)
					continue
				}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}

	unmatched := make(map[key][]string, len(wants))
	for k, v := range wants {
		unmatched[k] = append([]string(nil), v...)
	}
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		patterns := unmatched[k]
		found := -1
		for i, p := range patterns {
			re, err := regexp.Compile(p)
			if err != nil {
				t.Errorf("%s:%d: bad want regexp %q: %v", k.file, k.line, p, err)
				found = i
				break
			}
			if re.MatchString(d.Message) {
				found = i
				break
			}
		}
		if found < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		unmatched[k] = append(patterns[:found], patterns[found+1:]...)
	}
	for k, patterns := range unmatched {
		for _, p := range patterns {
			t.Errorf("%s:%d: no diagnostic matched want %q", k.file, k.line, p)
		}
	}
}

// splitQuoted parses the tail of a want comment: a space-separated list
// of Go-quoted ("...") or raw (`...`) strings.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"', '`':
			end := strings.IndexByte(s[1:], s[0])
			if end < 0 {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			q := s[:end+2]
			u, err := strconv.Unquote(q)
			if err != nil {
				return nil, fmt.Errorf("unquoting %q: %v", q, err)
			}
			out = append(out, u)
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want expectations must be quoted strings, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
