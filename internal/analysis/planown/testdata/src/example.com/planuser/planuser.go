// Package planuser exercises planown against the real core package:
// every escape shape (field store, channel send, composite literal,
// goroutine capture), use-after-re-Schedule staleness, Clone laundering,
// receiver-identity separation, and the waiver.
package planuser

import (
	"time"

	"schemble/internal/core"
	"schemble/internal/ensemble"
)

// keeper is a struct a plan could wrongly escape into.
type keeper struct {
	last core.Plan
	m    map[int]ensemble.Subset
}

var planCh = make(chan core.Plan, 1)

func consume(core.Plan) {}

// fieldStore covers stores outside the local frame, direct and aliased.
func fieldStore(k *keeper, d *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) {
	p := d.Schedule(0, qs, avail, exec, r)
	k.last = p // want "scheduler-owned Plan stored outside the local frame"
	k.last = p.Clone()
	k.m = p.Assignments                        // want "stored outside the local frame"
	k.last = d.Schedule(0, qs, avail, exec, r) // want "stored outside the local frame"
}

// aliasStore taints through an alias chain ending at the raw map.
func aliasStore(k *keeper, d *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) {
	p := d.Schedule(0, qs, avail, exec, r)
	q := p
	a := q.Assignments
	k.m = a // want "stored outside the local frame"
}

// send covers channel sends.
func send(d *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) {
	p := d.Schedule(0, qs, avail, exec, r)
	planCh <- p // want "sent on a channel"
	planCh <- p.Clone()
}

// spawn covers both goroutine shapes.
func spawn(d *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) {
	p := d.Schedule(0, qs, avail, exec, r)
	go consume(p) // want "captured by a go statement"
	go func() {
		_ = p.Subset(0) // want "captured by a goroutine closure"
	}()
	go consume(p.Clone())
}

// retain covers composite-literal retention.
func retain(d *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) []keeper {
	p := d.Schedule(0, qs, avail, exec, r)
	return []keeper{{last: p}} // want "retained in a composite literal"
}

// reuse covers staleness: a second Schedule on the SAME receiver
// invalidates p1, while a different scheduler or a Clone does not.
func reuse(d1, d2 *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) int {
	p1 := d1.Schedule(0, qs, avail, exec, r)
	saved := p1.Clone()
	p2 := d1.Schedule(0, qs, avail, exec, r)
	n := len(p1.Assignments) // want "use of p1 after a subsequent Schedule call on the same scheduler"
	other := d2.Schedule(0, qs, avail, exec, r)
	return n + len(p2.Assignments) + len(saved.Assignments) + len(other.Assignments)
}

// viaInterface checks that interface-typed receivers are tracked too.
func viaInterface(k *keeper, s core.Scheduler, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) {
	p := s.Schedule(0, qs, avail, exec, r)
	p2 := s.Schedule(0, qs, avail, exec, r)
	k.last = p2.Clone()
	_ = p.Subset(1) // want "use of p after a subsequent Schedule call"
}

// waived demonstrates the escape hatch.
func waived(k *keeper, d *core.DP, qs []core.QueryInfo, avail core.Capacity, exec []time.Duration, r core.Rewarder) {
	p := d.Schedule(0, qs, avail, exec, r)
	k.last = p //schemble:planown-ok fixture: keeper is discarded before any further Schedule call
}
