// Package planown mechanizes the Plan ownership audit from the arena
// work: a core.Plan returned by a Scheduler's Schedule method shares its
// Assignments map with the scheduler's internal arena, so the plan is
// valid only until the next Schedule call on the same scheduler and must
// never outlive the caller's frame. The analyzer taints every local
// bound to a Schedule result (and its aliases, including the raw
// .Assignments map) and reports when a tainted value
//
//   - is stored in a struct field, map, or other non-local location,
//   - is retained by a composite literal,
//   - is sent on a channel,
//   - is captured by a go statement, or
//   - is used after a subsequent Schedule call on the same scheduler
//     expression re-used the arena.
//
// core.Plan.Clone() launders ownership: a cloned plan is the caller's to
// keep, so Clone results are never tainted and re-assigning a tainted
// variable from Clone clears its taint. The check is intraprocedural
// and receiver identity is syntactic (the selector chain of the
// receiver expression), so two Schedule calls invalidate each other only
// when they are spelled on the same variable chain; calls through
// unknown receivers (function results, fresh literals) never invalidate
// anything. Waive with //schemble:planown-ok and a justification.
package planown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"schemble/internal/analysis"
)

// Analyzer is the planown analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "planown",
	Doc: "check that scheduler-owned core.Plan values (arena-backed Assignments maps) " +
		"do not escape the caller's frame or outlive the next Schedule call",
	Directives: []string{"planown-ok"},
	Run:        run,
}

const corePath = "schemble/internal/core"

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, info, fd.Body)
			}
		}
	}
	return nil
}

// An event is one ownership-relevant occurrence in a function body.
// Events are replayed in source order, which for a single body matches
// position order.
type event struct {
	pos  token.Pos
	seq  int // collection order, tiebreak for same-pos events
	kind int
	obj  *types.Var // evOwn/evAlias dst, evClear, evUse
	src  *types.Var // evAlias source
	key  string     // evSchedule / evOwn receiver identity
	expr ast.Expr   // evEscape: the escaping expression
	how  string     // evEscape: what happened to it
}

const (
	evSchedule = iota // a Schedule call on receiver key
	evOwn             // obj bound directly to a Schedule result
	evAlias           // obj bound to another (possibly owned) local
	evClear           // obj re-bound to a non-owning value (e.g. Clone)
	evUse             // plain use of a candidate local
	evEscape          // an expression leaves the frame
)

func checkFunc(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt) {
	var events []*event
	add := func(pos token.Pos, e event) {
		e.pos, e.seq = pos, len(events)
		events = append(events, &e)
	}
	skipUse := make(map[*ast.Ident]bool) // lhs idents: binding, not use

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if key, ok := scheduleCall(info, n); ok {
				add(n.Pos(), event{kind: evSchedule, key: key})
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					collectBinding(info, n.Lhs[i], n.Rhs[i], add, skipUse)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					collectBinding(info, n.Names[i], n.Values[i], add, skipUse)
				}
			}
		case *ast.SendStmt:
			collectEscape(info, n.Value, "sent on a channel", add)
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				collectEscape(info, v, "retained in a composite literal", add)
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				collectEscape(info, arg, "captured by a go statement", add)
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v := candidateUse(info, id); v != nil {
							add(id.Pos(), event{kind: evEscape, expr: id, how: "captured by a goroutine closure"})
						}
					}
					return true
				})
			}
		case *ast.Ident:
			if skipUse[n] {
				return true
			}
			if v := candidateUse(info, n); v != nil {
				add(n.Pos(), event{kind: evUse, obj: v})
			}
		}
		return true
	})

	// Replay. cur tracks the live ownership of each local; lastSched the
	// most recent Schedule position per receiver identity.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		return events[i].seq < events[j].seq
	})
	type owned struct {
		key  string
		born token.Pos
	}
	cur := make(map[*types.Var]owned)
	lastSched := make(map[string]token.Pos)
	reported := make(map[token.Pos]bool) // one finding per position

	report := func(pos token.Pos, format string, args ...interface{}) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Report(pos, "planown-ok", format, args...)
	}
	stale := func(o owned) bool {
		return o.key != "" && lastSched[o.key] > o.born
	}
	// ownedExpr resolves an expression's ownership at replay time.
	ownedExpr := func(e ast.Expr) (owned, bool) {
		e = ast.Unparen(e)
		if sel, ok := e.(*ast.SelectorExpr); ok && sel.Sel.Name == "Assignments" {
			e = ast.Unparen(sel.X) // p.Assignments shares p's arena map
		}
		switch e := e.(type) {
		case *ast.CallExpr:
			if key, ok := scheduleCall(info, e); ok {
				return owned{key: key, born: e.Pos()}, true
			}
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				if o, ok := cur[v]; ok {
					return o, true
				}
			}
		}
		return owned{}, false
	}

	for _, e := range events {
		switch e.kind {
		case evSchedule:
			if e.key != "" {
				lastSched[e.key] = e.pos
			}
		case evOwn:
			cur[e.obj] = owned{key: e.key, born: e.pos}
		case evAlias:
			if o, ok := cur[e.src]; ok {
				cur[e.obj] = owned{key: o.key, born: o.born}
			} else {
				delete(cur, e.obj)
			}
		case evClear:
			delete(cur, e.obj)
		case evUse:
			if o, ok := cur[e.obj]; ok && stale(o) {
				report(e.pos, "use of %s after a subsequent Schedule call on the same scheduler: its Assignments map has been reused — Clone() the plan before re-scheduling, or waive with a justification", e.obj.Name())
			}
		case evEscape:
			if _, ok := ownedExpr(e.expr); ok {
				report(e.pos, "scheduler-owned Plan %s: the Assignments map belongs to the scheduler's arena and is reused by the next Schedule call — pass it through Plan.Clone(), or waive with a justification", e.how)
			}
		}
	}
}

// collectBinding classifies one lhs = rhs pair. Ident lhs produce
// ownership-transfer events; any other lhs (field, index, deref) is a
// store outside the local frame and produces an escape check on the rhs.
func collectBinding(info *types.Info, lhs, rhs ast.Expr, add func(token.Pos, event), skipUse map[*ast.Ident]bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		collectEscape(info, rhs, "stored outside the local frame", add)
		return
	}
	skipUse[id] = true
	v := defOrUse(info, id)
	if v == nil || !planLike(v.Type()) {
		return
	}
	switch r := ast.Unparen(stripAssignments(rhs)).(type) {
	case *ast.CallExpr:
		if key, ok := scheduleCall(info, r); ok {
			add(r.Pos(), event{kind: evOwn, obj: v, key: key})
			return
		}
		add(lhs.Pos(), event{kind: evClear, obj: v}) // Clone() and every other call result
	case *ast.Ident:
		if src, ok := info.Uses[r].(*types.Var); ok && planLike(src.Type()) {
			add(lhs.Pos(), event{kind: evAlias, obj: v, src: src})
			return
		}
		add(lhs.Pos(), event{kind: evClear, obj: v})
	default:
		add(lhs.Pos(), event{kind: evClear, obj: v})
	}
}

// collectEscape records an escape check for expr if it could possibly
// be plan-like; ownership is decided at replay time.
func collectEscape(info *types.Info, expr ast.Expr, how string, add func(token.Pos, event)) {
	e := ast.Unparen(stripAssignments(expr))
	switch e := e.(type) {
	case *ast.CallExpr:
		if _, ok := scheduleCall(info, e); !ok {
			return
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); !ok || !planLike(v.Type()) {
			return
		}
	default:
		return
	}
	add(expr.Pos(), event{kind: evEscape, expr: expr, how: how})
}

// stripAssignments unwraps a trailing .Assignments selection: the map
// shares ownership with its plan.
func stripAssignments(e ast.Expr) ast.Expr {
	if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok && sel.Sel.Name == "Assignments" {
		return sel.X
	}
	return e
}

// defOrUse resolves an identifier to the variable it defines or uses.
func defOrUse(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}

// candidateUse reports whether id is a use of a local whose type could
// carry plan ownership (core.Plan or its Assignments map type).
func candidateUse(info *types.Info, id *ast.Ident) *types.Var {
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || !planLike(v.Type()) {
		return nil
	}
	return v
}

// planLike reports whether t is core.Plan, *core.Plan, or a map type
// matching Plan.Assignments.
func planLike(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if isCorePlan(t) {
		return true
	}
	if m, ok := t.Underlying().(*types.Map); ok {
		b, ok := m.Key().(*types.Basic)
		if !ok || b.Kind() != types.Int {
			return false
		}
		if n, ok := m.Elem().(*types.Named); ok {
			return n.Obj().Name() == "Subset" && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Path() == "schemble/internal/ensemble"
		}
	}
	return false
}

func isCorePlan(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return n.Obj().Name() == "Plan" && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == corePath
}

// scheduleCall reports whether call invokes a method named Schedule
// returning exactly one core.Plan, and returns the receiver identity
// key: the selector chain of the receiver expression rooted at a named
// object ("" when the root is not a plain identifier — such calls never
// invalidate other plans).
func scheduleCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false // method values bound to plain identifiers are not tracked
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Schedule" {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 || !isCorePlan(sig.Results().At(0).Type()) {
		return "", false
	}
	return chainKey(info, sel.X), true
}

// chainKey renders a receiver expression as an identity string:
// "obj<pointer>" for identifiers, extended with ".field" per selection.
// Unknown shapes yield "" (no identity).
func chainKey(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			return fmt.Sprintf("obj%p", obj)
		}
	case *ast.SelectorExpr:
		if base := chainKey(info, e.X); base != "" {
			return base + "." + e.Sel.Name
		}
	case *ast.StarExpr:
		return chainKey(info, e.X)
	}
	return ""
}
