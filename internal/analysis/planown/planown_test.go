package planown_test

import (
	"testing"

	"schemble/internal/analysis/planown"
	"schemble/internal/analysis/testkit"
)

func TestPlanOwn(t *testing.T) {
	testkit.Run(t, planown.Analyzer, "example.com/planuser")
}
