package analysis_test

import (
	"go/ast"
	"testing"

	"schemble/internal/analysis"
	"schemble/internal/analysis/testkit"
)

// forbidcall is a minimal analyzer — it flags every call to a function
// literally named "forbidden" — used to exercise the framework's
// suppression lookup and annotation-grammar diagnostics in isolation
// from the real analyzers.
var forbidcall = &analysis.Analyzer{
	Name:       "forbidcall",
	Doc:        "test analyzer: flag calls to forbidden()",
	Directives: []string{"call-ok"},
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Unit.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "forbidden" {
					pass.Report(call.Pos(), "call-ok", "call to forbidden()")
				}
				return true
			})
		}
		return nil
	},
}

func TestSuppressionAndAnnotationGrammar(t *testing.T) {
	testkit.Run(t, forbidcall, "example.com/annot")
}

func TestBasePath(t *testing.T) {
	cases := map[string]string{
		"schemble/internal/sim":                              "schemble/internal/sim",
		"schemble/internal/sim [schemble/internal/sim.test]": "schemble/internal/sim",
		"schemble/internal/sim.test":                         "schemble/internal/sim.test",
	}
	for in, want := range cases {
		if got := analysis.BasePath(in); got != want {
			t.Errorf("BasePath(%q) = %q, want %q", in, got, want)
		}
	}
}
