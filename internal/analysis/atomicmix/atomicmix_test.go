package atomicmix_test

import (
	"testing"

	"schemble/internal/analysis/atomicmix"
	"schemble/internal/analysis/testkit"
)

func TestAtomicMix(t *testing.T) {
	testkit.Run(t, atomicmix.Analyzer, "example.com/counters")
}
