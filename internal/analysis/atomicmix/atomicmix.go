// Package atomicmix enforces the cardinal rule of sync/atomic: a
// memory location is either always accessed atomically or never — one
// plain read racing an atomic.AddUint64 is a data race the compiler
// accepts and the race detector only catches when the interleaving
// actually happens in a test run. The analyzer collects every variable
// and struct field whose address is passed to a sync/atomic operation
// anywhere in the package, then flags every plain (non-atomic) read or
// write of the same location. Typed atomics (atomic.Uint64 and
// friends) need no analyzer — their values are unreachable without the
// method set — and are the recommended fix.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"schemble/internal/analysis"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag plain reads/writes of variables and fields that are accessed via " +
		"sync/atomic elsewhere in the package",
	Directives: []string{"atomic-ok"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo()

	// Pass 1: find every location the package accesses atomically. The
	// identifier inside the &x or &s.f operand is remembered so pass 2
	// does not flag the atomic call's own argument.
	atomicObjs := make(map[*types.Var]bool)
	atomicSites := make(map[*ast.Ident]bool)
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(info, call) || len(call.Args) == 0 {
				return true
			}
			addr, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || addr.Op != token.AND {
				return true
			}
			if id := accessIdent(addr.X); id != nil {
				if v, ok := info.Uses[id].(*types.Var); ok {
					atomicObjs[v] = true
					atomicSites[id] = true
				}
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other use of those locations is a plain access.
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || atomicSites[id] {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok || !atomicObjs[v] {
				return true
			}
			pass.Report(id.Pos(), "atomic-ok",
				"plain access of %s, which is accessed via sync/atomic elsewhere in %s: mixing atomic and plain access is a data race — use the atomic API everywhere or a typed atomic",
				v.Name(), pass.Unit.Base)
			return true
		})
	}
	return nil
}

// isAtomicFunc reports whether the call invokes a sync/atomic
// package-level operation taking an address (Add*, Load*, Store*,
// Swap*, CompareAndSwap*).
func isAtomicFunc(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// accessIdent returns the identifier naming the accessed location: the
// ident itself for plain variables, the selected field for s.f chains.
// Element addresses (&xs[i]) are not tracked — per-element identity is
// beyond object granularity, and the repo's per-element atomics are all
// typed.
func accessIdent(x ast.Expr) *ast.Ident {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x
	case *ast.SelectorExpr:
		return x.Sel
	}
	return nil
}
