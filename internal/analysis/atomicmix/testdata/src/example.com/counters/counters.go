// Package counters exercises atomicmix: the served field is accessed
// via sync/atomic in Inc, so every plain touch of it elsewhere is a
// race, while fully-plain and fully-typed fields stay silent.
package counters

import "sync/atomic"

// Stats mixes one atomic counter with conventional state.
type Stats struct {
	served uint64
	// plain is never accessed atomically; plain access is fine.
	plain uint64
	// typed uses the typed-atomic API, unreachable without methods.
	typed atomic.Uint64
}

// hits is a package-level location accessed both ways.
var hits uint64

// Inc is the atomic side of the mix: these calls establish the
// contract pass 2 enforces, and are themselves clean.
func (s *Stats) Inc() {
	atomic.AddUint64(&s.served, 1)
	atomic.AddUint64(&hits, 1)
	s.typed.Add(1)
	s.plain++
}

// Read races Inc with plain loads.
func (s *Stats) Read() uint64 {
	if s.served > 0 { // want "plain access of served, which is accessed via sync/atomic elsewhere"
		return s.served + hits // want "plain access of served" "plain access of hits"
	}
	return atomic.LoadUint64(&s.served) + s.typed.Load() + s.plain
}

// Reset races Inc with plain stores.
func (s *Stats) Reset() {
	s.served = 0 // want "plain access of served"
	hits = 0     // want "plain access of hits"
	atomic.StoreUint64(&s.served, 0)
}

// Audited is the escape hatch: construction happens before the value
// is published, so the plain write cannot race.
func Audited() *Stats {
	s := new(Stats)
	s.served = 1 //schemble:atomic-ok fixture: pre-publication initialization, no concurrent reader exists yet
	return s
}
