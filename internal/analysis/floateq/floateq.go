// Package floateq flags == and != on floating-point operands outside
// tests and the approved numeric helpers in schemble/internal/mathx.
// Exact float equality is almost always a latent bug in a system whose
// accuracy numbers are compared against a paper's: accumulation order,
// fused multiply-add, and compiler changes all perturb low bits.
// Comparisons should go through mathx (AlmostEqual) or an explicit
// tolerance; genuinely-exact sentinel comparisons can be waived with
// //schemble:floateq-ok.
package floateq

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"schemble/internal/analysis"
)

// mathxPath hosts the approved comparison helpers and is itself exempt.
const mathxPath = "schemble/internal/mathx"

// Analyzer is the floateq analyzer.
var Analyzer = &analysis.Analyzer{
	Name:       "floateq",
	Doc:        "flag ==/!= on floating-point expressions outside tests and mathx",
	Directives: []string{"floateq-ok"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if pass.Unit.Base == mathxPath {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(info.TypeOf(be.X)) && !isFloat(info.TypeOf(be.Y)) {
				return true
			}
			// x != x is the portable NaN test; both-constant comparisons
			// are folded at compile time. Neither can misbehave at run
			// time.
			if sameExpr(be.X, be.Y) || (isConst(info, be.X) && isConst(info, be.Y)) {
				return true
			}
			pass.Report(be.OpPos, "floateq-ok",
				"floating-point %s is brittle (accumulation order and FMA perturb low bits): compare with mathx.AlmostEqual or an explicit tolerance",
				be.Op)
			return true
		})
	}
	return nil
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// sameExpr reports whether two expressions are syntactically identical
// (the x != x NaN idiom).
func sameExpr(a, b ast.Expr) bool {
	var ba, bb bytes.Buffer
	fset := token.NewFileSet()
	if err := printer.Fprint(&ba, fset, a); err != nil {
		return false
	}
	if err := printer.Fprint(&bb, fset, b); err != nil {
		return false
	}
	return ba.String() == bb.String()
}
