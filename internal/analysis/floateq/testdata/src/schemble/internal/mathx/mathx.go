// Package mathx shadows the real helper package: it is the approved
// home for exact float comparison, so nothing here may be flagged.
package mathx

// AlmostEqual is the approved comparison helper; its internal exact
// comparisons are the reason the package is exempt.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
