package metrics

// Test files may compare exactly (asserting a specific computed value
// is often the point): this must not be reported.
func exact(a, b float64) bool {
	return a == b
}
