// Package metrics exercises every floateq path: flagged comparisons,
// the NaN and constant-fold exemptions, and the waiver annotation.
package metrics

// Equal64 is the canonical violation.
func Equal64(a, b float64) bool {
	return a == b // want "floating-point == is brittle"
}

// Differ32 flags != and float32 alike.
func Differ32(a, b float32) bool {
	return a != b // want "floating-point != is brittle"
}

// EqualComplex flags complex operands too.
func EqualComplex(a, b complex128) bool {
	return a == b // want "floating-point == is brittle"
}

// IsNaN is the portable x != x idiom and must stay clean.
func IsNaN(x float64) bool {
	return x != x
}

const eps = 1e-9

// constFold compares two constants: folded at compile time, clean.
func constFold() bool {
	return eps == 1e-9
}

// Unset treats the zero value as a sentinel; the annotation waives the
// exact comparison.
func Unset(x float64) bool {
	//schemble:floateq-ok zero is the fixture's explicit "unset" sentinel, never computed
	return x == 0
}

// ints compares integers and is out of scope entirely.
func ints(a, b int) bool {
	return a == b
}
