package floateq_test

import (
	"testing"

	"schemble/internal/analysis/floateq"
	"schemble/internal/analysis/testkit"
)

func TestFloateq(t *testing.T) {
	testkit.Run(t, floateq.Analyzer, "example.com/metrics")
}

func TestFloateqMathxExempt(t *testing.T) {
	testkit.Run(t, floateq.Analyzer, "schemble/internal/mathx")
}
