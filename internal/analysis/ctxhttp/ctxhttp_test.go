package ctxhttp_test

import (
	"testing"

	"schemble/internal/analysis/ctxhttp"
	"schemble/internal/analysis/testkit"
)

func TestCtxhttp(t *testing.T) {
	testkit.Run(t, ctxhttp.Analyzer, "schemble/internal/httpserve")
}
