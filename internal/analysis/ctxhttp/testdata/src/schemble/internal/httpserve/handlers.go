// Package httpserve shadows the real HTTP layer: every function here
// that receives an *http.Request is a handler scope where fresh and nil
// contexts are forbidden.
package httpserve

import (
	"context"
	"net/http"
)

func doWork(ctx context.Context) {}

func fanout(ctxs ...context.Context) {}

func takesPtr(p *int) {}

func handle(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want "handler mints context.Background"
	_ = ctx
	doWork(nil)         // want "nil passed as context.Context"
	fanout(nil)         // want "nil passed as context.Context"
	takesPtr(nil)       // nil to a non-context parameter is fine
	doWork(r.Context()) // the approved pattern
	go func() {
		_ = context.TODO() // want "handler mints context.TODO"
	}()
}

// startup takes no request: minting a root context is what it is for.
func startup() context.Context {
	return context.Background()
}

// detached is the audited exception: the shutdown path deliberately
// outlives the request.
func detached(w http.ResponseWriter, r *http.Request) {
	doWork(context.Background()) //schemble:ctx-ok the drain path must outlive the request that triggered it
}
