package httpserve

import (
	"context"
	"net/http"
)

// Test files are exempt: tests legitimately mint root contexts.
func drive(r *http.Request) {
	doWork(context.Background())
}
