// Package ctxhttp enforces request-context threading in the HTTP layer:
// inside any schemble/internal/httpserve function that receives an
// *http.Request (and the closures it spawns), contexts must derive from
// r.Context() — not context.Background(), context.TODO(), or a nil
// context — so that a disconnecting client cancels whatever the handler
// is blocked on. PR 3 fixed handlePredict to honor r.Context(); this
// analyzer keeps every future handler honest.
package ctxhttp

import (
	"go/ast"
	"go/types"

	"schemble/internal/analysis"
)

// httpservePath scopes the analyzer to the HTTP serving layer.
const httpservePath = "schemble/internal/httpserve"

// Analyzer is the ctxhttp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxhttp",
	Doc: "HTTP handlers must thread r.Context() into blocking work " +
		"instead of minting fresh or nil contexts",
	Directives: []string{"ctx-ok"},
	Run:        run,
}

func run(pass *analysis.Pass) error {
	if pass.Unit.Base != httpservePath {
		return nil
	}
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			walk(pass, info, fd.Body, hasRequestParam(fn.Type().(*types.Signature)))
		}
	}
	return nil
}

// walk inspects a function body. inHandler is true when the enclosing
// function (or any enclosing closure's parent) receives an
// *http.Request; closures inherit it, and a nested function that itself
// takes a request starts a handler scope of its own.
func walk(pass *analysis.Pass, info *types.Info, body ast.Node, inHandler bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			in := inHandler
			if sig, ok := info.TypeOf(n).(*types.Signature); ok && hasRequestParam(sig) {
				in = true
			}
			walk(pass, info, n.Body, in)
			return false
		case *ast.CallExpr:
			if !inHandler {
				return true
			}
			if analysis.IsPkgFunc(info, n, "context", "Background", "TODO") {
				pass.Report(n.Pos(), "ctx-ok",
					"handler mints %s.%s: derive from r.Context() so a disconnecting client cancels blocking work",
					"context", analysis.Callee(info, n).Name())
			}
			reportNilContextArgs(pass, info, n)
		}
		return true
	})
}

// reportNilContextArgs flags literal nil passed where the callee expects
// a context.Context.
func reportNilContextArgs(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || id.Name != "nil" {
			continue
		}
		if _, isNil := info.Uses[id].(*types.Nil); !isNil {
			continue
		}
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		}
		if pt != nil && isContextType(pt) {
			pass.Report(arg.Pos(), "ctx-ok",
				"nil passed as context.Context: thread r.Context() through instead")
		}
	}
}

func hasRequestParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		ptr, ok := params.At(i).Type().(*types.Pointer)
		if !ok {
			continue
		}
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request" {
				return true
			}
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
