package exhaustiveoutcome_test

import (
	"testing"

	"schemble/internal/analysis/exhaustiveoutcome"
	"schemble/internal/analysis/testkit"
)

func TestExhaustiveOutcome(t *testing.T) {
	testkit.Run(t, exhaustiveoutcome.Analyzer, "schemble/internal/consumer")
}
