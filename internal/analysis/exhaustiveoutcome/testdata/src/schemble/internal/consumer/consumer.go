// Package consumer dispatches on the outcome taxonomy in every shape
// the analyzer inspects: switches, map literals, and string slices.
package consumer

import "schemble/internal/obsv"

// Partial misses two variants.
func Partial(o string) int {
	switch o { // want "switch over the outcome taxonomy is missing OutcomeMissed, OutcomeRejected"
	case obsv.OutcomeServed:
		return 1
	case obsv.OutcomeDegraded:
		return 2
	}
	return 0
}

// Full covers the whole taxonomy and must stay clean.
func Full(o string) bool {
	switch o {
	case obsv.OutcomeServed, obsv.OutcomeDegraded:
		return true
	case obsv.OutcomeMissed, obsv.OutcomeRejected:
		return false
	}
	return false
}

// weights is a dispatch-shaped map literal with a hole.
var weights = map[string]float64{ // want "composite literal over the outcome taxonomy is missing OutcomeRejected"
	obsv.OutcomeServed:   1,
	obsv.OutcomeDegraded: 0.5,
	obsv.OutcomeMissed:   0,
}

// order is a dispatch-shaped slice literal with a hole.
var order = []string{obsv.OutcomeServed, obsv.OutcomeDegraded, obsv.OutcomeMissed} // want "composite literal over the outcome taxonomy is missing OutcomeRejected"

// allOutcomes is complete and must stay clean.
var allOutcomes = []string{obsv.OutcomeServed, obsv.OutcomeDegraded, obsv.OutcomeMissed, obsv.OutcomeRejected}

// servedOnly is deliberately partial; the annotation waives it.
//
//schemble:outcome-ok the fixture tracks only the served outcome by design
var servedOnly = []string{obsv.OutcomeServed}

// trace mentions one outcome as a struct field value — not a dispatch,
// so the literal below is ignored.
type trace struct{ Outcome string }

var seed = trace{Outcome: obsv.OutcomeServed}

// names uses an outcome as a map VALUE, not a key: also not a dispatch.
var names = map[int]string{1: obsv.OutcomeServed}

// classCounters mirrors the serving runtime's per-class outcome counters:
// dispatch sites that pick a class counter by outcome must stay
// exhaustive too.
type classCounters struct {
	served, degraded, missed, rejected uint64
}

// ClassPartial picks a per-class counter but forgets rejections.
func ClassPartial(c *classCounters, o string) uint64 {
	switch o { // want "switch over the outcome taxonomy is missing OutcomeRejected"
	case obsv.OutcomeServed:
		return c.served
	case obsv.OutcomeDegraded:
		return c.degraded
	case obsv.OutcomeMissed:
		return c.missed
	}
	return 0
}

// ClassFull renders one metric line per (class, outcome) pair — the
// /v1/metrics shape — and must stay clean.
func ClassFull(classes []classCounters, outcomes []string) uint64 {
	var total uint64
	for _, c := range classes {
		for _, o := range outcomes {
			switch o {
			case obsv.OutcomeServed:
				total += c.served
			case obsv.OutcomeDegraded:
				total += c.degraded
			case obsv.OutcomeMissed:
				total += c.missed
			case obsv.OutcomeRejected:
				total += c.rejected
			}
		}
	}
	return total
}

// classSheddable is a per-class dispatch literal with a hole: mapping
// each outcome to whether the admission controller may cause it.
var classSheddable = map[string]bool{ // want "composite literal over the outcome taxonomy is missing OutcomeDegraded, OutcomeMissed"
	obsv.OutcomeServed:   false,
	obsv.OutcomeRejected: true,
}

// CachePartial dispatches on the cache family and forgets bypasses: the
// exact bug class the CacheOutcome* family exists to catch, and it must
// only owe its own family's variants, never OutcomeServed etc.
func CachePartial(o string) int {
	switch o { // want "switch over the outcome taxonomy is missing CacheOutcomeBypass"
	case obsv.CacheOutcomeHit:
		return 1
	case obsv.CacheOutcomeMiss:
		return 2
	}
	return 0
}

// CacheFull covers the whole cache family and must stay clean.
func CacheFull(o string) bool {
	switch o {
	case obsv.CacheOutcomeHit:
		return true
	case obsv.CacheOutcomeMiss, obsv.CacheOutcomeBypass:
		return false
	}
	return false
}

// cacheOrder is a dispatch-shaped slice with a hole in the cache family.
var cacheOrder = []string{obsv.CacheOutcomeHit, obsv.CacheOutcomeMiss} // want "composite literal over the outcome taxonomy is missing CacheOutcomeBypass"

// allCacheOutcomes is complete and must stay clean.
var allCacheOutcomes = []string{obsv.CacheOutcomeHit, obsv.CacheOutcomeMiss, obsv.CacheOutcomeBypass}

// mixed dispatches over BOTH families in one literal: each family is
// checked independently, so it owes one variant from each.
var mixed = map[string]int{ // want "composite literal over the outcome taxonomy is missing CacheOutcomeBypass" "composite literal over the outcome taxonomy is missing OutcomeDegraded, OutcomeMissed, OutcomeRejected"
	obsv.OutcomeServed:    1,
	obsv.CacheOutcomeHit:  2,
	obsv.CacheOutcomeMiss: 3,
}
