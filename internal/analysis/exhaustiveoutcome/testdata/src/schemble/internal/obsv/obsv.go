// Package obsv shadows the real taxonomy package for fixture builds.
// The analyzer discovers the variant set from this scope, so the
// constants below define what "exhaustive" means in these tests.
package obsv

// The outcome taxonomy.
const (
	OutcomeServed   = "served"
	OutcomeDegraded = "degraded"
	OutcomeMissed   = "missed"
	OutcomeRejected = "rejected"
)

// OutcomeCount is exported and Outcome-prefixed but not a string
// constant: the taxonomy enumeration must skip it.
const OutcomeCount = 4

// outcomeDraft is unexported and must also be skipped.
const outcomeDraft = "draft"

// The cache-outcome taxonomy: a separate family, checked independently
// of Outcome* — a dispatch over one family never owes the other's
// variants.
const (
	CacheOutcomeHit    = "hit"
	CacheOutcomeMiss   = "miss"
	CacheOutcomeBypass = "bypass"
)

// cacheOutcomeDraft is unexported and must be skipped.
const cacheOutcomeDraft = "draft"
