// Package exhaustiveoutcome enforces exactly-once accounting across the
// request outcome taxonomy (served / degraded / missed / rejected,
// declared as the Outcome* constants in schemble/internal/obsv). Any
// switch or composite literal that dispatches on one taxonomy constant
// must mention all of them: PR 3 fixed, by hand, a metrics path that
// silently skipped an outcome, and this analyzer makes that bug class a
// lint error — adding a fifth outcome will light up every dispatch site
// that does not handle it. A default clause does not count as coverage;
// the point is that new outcomes must be handled deliberately.
package exhaustiveoutcome

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"schemble/internal/analysis"
)

// obsvPath declares the taxonomies. Each variant set is discovered from
// the package's scope (every exported string constant carrying the
// family's prefix), so the analyzer extends itself when a new constant
// lands.
const obsvPath = "schemble/internal/obsv"

// families lists the taxonomy prefixes, longest first so a constant is
// claimed by the most specific family (CacheOutcomeHit belongs to
// CacheOutcome*, never to a hypothetical shorter match). Each family is
// checked for exhaustiveness independently.
var families = []string{"CacheOutcome", "Outcome"}

// Analyzer is the exhaustiveoutcome analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustiveoutcome",
	Doc: "switches and composite literals over an outcome taxonomy " +
		"(Outcome*, CacheOutcome*) must cover every constant of that family",
	Directives: []string{"outcome-ok"},
	Run:        run,
}

// family returns the taxonomy prefix owning the constant name, or "".
func family(name string) string {
	for _, f := range families {
		if strings.HasPrefix(name, f) {
			return f
		}
	}
	return ""
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo()
	for _, f := range pass.Unit.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				checkSwitch(pass, info, n)
			case *ast.CompositeLit:
				checkComposite(pass, info, n)
			}
			return true
		})
	}
	return nil
}

// outcomeConst returns the taxonomy constant an expression names, or nil.
func outcomeConst(info *types.Info, e ast.Expr) *types.Const {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok || c.Pkg() == nil || c.Pkg().Path() != obsvPath || !c.Exported() {
		return nil
	}
	if family(c.Name()) == "" || c.Val().Kind() != constant.String {
		return nil
	}
	return c
}

// taxonomy enumerates every string constant of the reference constant's
// family in the declaring package's scope.
func taxonomy(c *types.Const) []string {
	fam := family(c.Name())
	scope := c.Pkg().Scope()
	var all []string
	for _, name := range scope.Names() {
		o, ok := scope.Lookup(name).(*types.Const)
		if !ok || !o.Exported() || family(name) != fam {
			continue
		}
		if o.Val().Kind() != constant.String {
			continue
		}
		all = append(all, name)
	}
	sort.Strings(all)
	return all
}

func reportMissing(pass *analysis.Pass, pos ast.Node, covered map[string]bool, ref *types.Const, kind string) {
	var missing []string
	for _, name := range taxonomy(ref) {
		if !covered[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Report(pos.Pos(), "outcome-ok",
		"%s over the outcome taxonomy is missing %s: every outcome must be accounted for exactly once",
		kind, strings.Join(missing, ", "))
}

func checkSwitch(pass *analysis.Pass, info *types.Info, sw *ast.SwitchStmt) {
	covered := make(map[string]bool)
	refs := make(map[string]*types.Const)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if c := outcomeConst(info, e); c != nil {
				covered[c.Name()] = true
				refs[family(c.Name())] = c
			}
		}
	}
	for _, ref := range sortedRefs(refs) {
		reportMissing(pass, sw, covered, ref, "switch")
	}
}

// sortedRefs orders one reference constant per family deterministically.
func sortedRefs(refs map[string]*types.Const) []*types.Const {
	fams := make([]string, 0, len(refs))
	for f := range refs {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	out := make([]*types.Const, len(fams))
	for i, f := range fams {
		out[i] = refs[f]
	}
	return out
}

// checkComposite looks at dispatch-shaped literals only: maps keyed by
// outcome constants and string slices/arrays enumerating them. Literals
// that merely mention one outcome as a value (a struct field, a map
// value) are not dispatches and are ignored.
func checkComposite(pass *analysis.Pass, info *types.Info, lit *ast.CompositeLit) {
	t := info.TypeOf(lit)
	if t == nil {
		return
	}
	var keyed bool
	switch u := t.Underlying().(type) {
	case *types.Map:
		keyed = true
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			return
		}
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
			return
		}
	default:
		return
	}
	covered := make(map[string]bool)
	refs := make(map[string]*types.Const)
	for _, el := range lit.Elts {
		e := el
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if !keyed {
				continue // indexed array element, not a taxonomy key
			}
			e = kv.Key
		} else if keyed {
			continue
		}
		if c := outcomeConst(info, e); c != nil {
			covered[c.Name()] = true
			refs[family(c.Name())] = c
		}
	}
	for _, ref := range sortedRefs(refs) {
		reportMissing(pass, lit, covered, ref, "composite literal")
	}
}
