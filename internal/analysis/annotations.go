package analysis

import (
	"go/token"
	"strings"
)

// annotationPrefix introduces a suppression comment. The grammar is
//
//	//schemble:<directive> <one-line justification>
//
// with no space between "//" and "schemble:" (matching the Go
// convention for machine-readable directives, e.g. //go:generate). An
// annotation applies to diagnostics on its own line (end-of-line form)
// or on the line directly below it (standalone form).
const annotationPrefix = "//schemble:"

type annotation struct {
	pos  token.Position
	name string // directive, e.g. "wallclock"
	why  string // justification text, "" when missing
	used bool   // set when it suppressed at least one diagnostic
}

// annIndex holds every //schemble: annotation in a unit, keyed by
// file:line for suppression lookups.
type annIndex struct {
	all []*annotation
	// byLine maps filename -> line -> annotations anchored there.
	byLine map[string]map[int][]*annotation
}

// indexAnnotations scans every comment in the unit. Only line comments
// whose text starts exactly with the prefix count; anything else is an
// ordinary comment.
func indexAnnotations(u *Unit) *annIndex {
	idx := &annIndex{byLine: make(map[string]map[int][]*annotation)}
	for _, f := range u.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, annotationPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, annotationPrefix)
				name, why := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, why = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				an := &annotation{pos: u.Fset.Position(c.Pos()), name: name, why: why}
				idx.all = append(idx.all, an)
				lines := idx.byLine[an.pos.Filename]
				if lines == nil {
					lines = make(map[int][]*annotation)
					idx.byLine[an.pos.Filename] = lines
				}
				lines[an.pos.Line] = append(lines[an.pos.Line], an)
			}
		}
	}
	return idx
}

// suppress reports whether an annotation with the given directive covers
// the position, marking it used. A malformed annotation (missing
// justification) still suppresses — the grammar check will flag the
// annotation itself, and reporting both would be noise.
func (idx *annIndex) suppress(pos token.Position, directive string) bool {
	return idx.at(pos, directive) != nil
}

// at returns an annotation with the given directive covering the
// position (same line, or the line directly above), marking it used;
// nil when none does.
func (idx *annIndex) at(pos token.Position, directive string) *annotation {
	lines := idx.byLine[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, an := range lines[line] {
			if an.name == directive {
				an.used = true
				return an
			}
		}
	}
	return nil
}
