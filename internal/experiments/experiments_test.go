package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"schemble/internal/metrics"
)

var (
	envOnce sync.Once
	testEnv *Env
)

func env(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { testEnv = NewEnv(7, true) })
	return testEnv
}

// cell parses a numeric table cell.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) of %s not numeric: %q", row, col, tab.ID, tab.Rows[row][col])
	}
	return v
}

// findRows returns indices of rows whose given column equals val.
func findRows(tab *Table, col int, val string) []int {
	var out []int
	for i, r := range tab.Rows {
		if col < len(r) && r[col] == val {
			out = append(out, i)
		}
	}
	return out
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != len(All) {
		t.Fatalf("IDs() returned %d, All has %d", len(ids), len(All))
	}
	seen := map[string]bool{}
	for _, s := range All {
		if seen[s.ID] {
			t.Fatalf("duplicate experiment id %s", s.ID)
		}
		seen[s.ID] = true
		if s.Run == nil || s.Title == "" {
			t.Fatalf("experiment %s incomplete", s.ID)
		}
	}
	if _, err := Lookup("fig6"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("Lookup of unknown id should fail")
	}
}

func TestFig1aBurstShape(t *testing.T) {
	tab := Fig1a(env(t))
	if len(tab.Rows) != 24 {
		t.Fatalf("rows = %d, want 24", len(tab.Rows))
	}
	// DMR at the 14h peak must far exceed the 2h night value.
	night := cell(t, tab, 2, 3)
	peak := cell(t, tab, 14, 3)
	if peak < night+10 {
		t.Errorf("peak DMR %v should exceed night DMR %v substantially", peak, night)
	}
	// Traffic shape: peak rate >> night rate.
	if cell(t, tab, 14, 2) < 10*cell(t, tab, 2, 2) {
		t.Errorf("peak rate should dwarf night rate")
	}
}

func TestFig1bOrdering(t *testing.T) {
	tab := Fig1b(env(t))
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	bilstm, bert, ens := cell(t, tab, 0, 1), cell(t, tab, 2, 1), cell(t, tab, 3, 1)
	if !(bilstm < bert && bert <= ens+1.5) {
		t.Errorf("accuracy ordering violated: bilstm=%v bert=%v ensemble=%v", bilstm, bert, ens)
	}
	// Ensemble latency slightly above the slowest base model.
	if lat := cell(t, tab, 3, 2); lat < 90 {
		t.Errorf("ensemble latency %v should exceed the slowest member", lat)
	}
}

func TestFig5DiscrepancyMoreStable(t *testing.T) {
	tab := Fig5(env(t))
	n := len(tab.Rows)
	meanPref := cell(t, tab, n-2, 1)
	dis := cell(t, tab, n-1, 1)
	if dis <= meanPref {
		t.Errorf("discrepancy stability %v should exceed mean preference stability %v", dis, meanPref)
	}
	if dis < 0.5 {
		t.Errorf("discrepancy cross-seed correlation = %v, want strong", dis)
	}
}

func TestTable1Headline(t *testing.T) {
	tab := Table1(env(t))
	if len(tab.Rows) != len(Baselines) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	get := func(name string, col int) float64 {
		rows := findRows(tab, 0, name)
		if len(rows) != 1 {
			t.Fatalf("baseline %s not found", name)
		}
		return cell(t, tab, rows[0], col)
	}
	// Headline: Schemble beats Original dramatically on TM accuracy and
	// DMR, and beats the (ea) variant on accuracy.
	if get("Schemble", 1) <= get("Original", 1) {
		t.Error("Schemble TM accuracy should beat Original")
	}
	if get("Schemble", 2) >= get("Original", 2) {
		t.Error("Schemble TM DMR should be below Original")
	}
	if get("Schemble", 1) < get("Schemble(ea)", 1)-2 {
		t.Error("Schemble should not trail Schemble(ea) on TM accuracy")
	}
	// Across the other two tasks Schemble stays ahead of Original too.
	if get("Schemble", 3) <= get("Original", 3) {
		t.Error("Schemble VC accuracy should beat Original")
	}
	if get("Schemble", 5) <= get("Original", 5) {
		t.Error("Schemble IR mAP should beat Original")
	}
}

func TestTable2ForcedLatency(t *testing.T) {
	tab := Table2(env(t))
	// Text matching rows come first.
	tmRows := findRows(tab, 0, "text matching")
	if len(tmRows) != len(Baselines) {
		t.Fatalf("tm rows = %d", len(tmRows))
	}
	var origMean, schMean float64
	for _, r := range tmRows {
		switch tab.Rows[r][1] {
		case "Original":
			origMean = cell(t, tab, r, 3)
		case "Schemble":
			schMean = cell(t, tab, r, 3)
		}
	}
	if schMean >= origMean {
		t.Errorf("forced mean latency: Schemble %v should be far below Original %v", schMean, origMean)
	}
}

func TestFig12DPBeatsGreedy(t *testing.T) {
	tab := Fig12(env(t))
	// At the loosest deadline, DP(0.01) accuracy should be at least that
	// of every greedy variant.
	last := tab.Rows[len(tab.Rows)-1][0]
	rows := findRows(tab, 0, last)
	accOf := map[string]float64{}
	for _, r := range rows {
		accOf[tab.Rows[r][1]] = cell(t, tab, r, 2)
	}
	dp := accOf["DP(0.01)"]
	for _, g := range []string{"Greedy+FIFO", "Greedy+SJF"} {
		if dp < accOf[g]-1.5 {
			t.Errorf("DP(0.01) acc %v trails %s %v", dp, g, accOf[g])
		}
	}
}

func TestFig16OracleDominates(t *testing.T) {
	tab := Fig16(env(t))
	for i := range tab.Rows {
		random := cell(t, tab, i, 1)
		sch := cell(t, tab, i, 4)
		oracle := cell(t, tab, i, 5)
		if oracle < sch-3 {
			t.Errorf("row %d: oracle %v should not trail Schemble* %v", i, oracle, sch)
		}
		if sch < random-1 {
			t.Errorf("row %d: Schemble* %v should not trail random %v", i, sch, random)
		}
	}
	// At the largest budget Schemble* must clearly beat random.
	last := len(tab.Rows) - 1
	if cell(t, tab, last, 4) <= cell(t, tab, last, 1) {
		t.Error("Schemble* should beat random at generous budgets")
	}
}

func TestFig20aSmallMSE(t *testing.T) {
	tab := Fig20a(env(t))
	for i := range tab.Rows {
		if mse := cell(t, tab, i, 1); mse > 0.01 {
			t.Errorf("size %s: estimation MSE %v too large", tab.Rows[i][0], mse)
		}
	}
}

func TestFig20bRobustToK(t *testing.T) {
	tab := Fig20b(env(t))
	min, max := 101.0, -1.0
	for i := range tab.Rows {
		v := cell(t, tab, i, 1)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min > 6 {
		t.Errorf("stacking accuracy should be robust to k: spread %v", max-min)
	}
	if min < 75 {
		t.Errorf("stacking accuracy %v too low even at worst k", min)
	}
}

func TestAblPrunePlansEquallyGood(t *testing.T) {
	tab := AblPrune(env(t))
	pruned := cell(t, tab, 0, 1)
	unpruned := cell(t, tab, 1, 1)
	if pruned < unpruned-2 {
		t.Errorf("pruned DP accuracy %v should not trail the capped unpruned variant %v", pruned, unpruned)
	}
}

func TestAblBufferSchedulerWins(t *testing.T) {
	tab := AblBuffer(env(t))
	buffered := cell(t, tab, 0, 1)
	immediate := cell(t, tab, 1, 1)
	if buffered < immediate-1 {
		t.Errorf("buffered Schemble %v should not trail immediate selection %v", buffered, immediate)
	}
}

func TestAblCalibNormalizationDominates(t *testing.T) {
	tab := AblCalib(env(t))
	// Rows: (calibrated,ecdf), (calibrated,raw), (uncalib,ecdf), (uncalib,raw).
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	calECDF, calRaw := cell(t, tab, 0, 2), cell(t, tab, 1, 2)
	unECDF, unRaw := cell(t, tab, 2, 2), cell(t, tab, 3, 2)
	if calECDF <= calRaw || unECDF <= unRaw {
		t.Errorf("ECDF normalization should dominate raw distances: %v/%v vs %v/%v",
			calECDF, calRaw, unECDF, unRaw)
	}
	for _, v := range []float64{calECDF, calRaw, unECDF, unRaw} {
		if v <= 0.1 {
			t.Errorf("score variant lost the difficulty signal: %v", v)
		}
	}
}

func TestFig13OverheadSmall(t *testing.T) {
	tab := Fig13(env(t))
	for i := range tab.Rows {
		if latPct := cell(t, tab, i, 3); latPct > 15 {
			t.Errorf("predictor latency share %v%% too large", latPct)
		}
		if memPct := cell(t, tab, i, 6); memPct > 10 {
			t.Errorf("predictor memory share %v%% too large", memPct)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID: "x", Title: "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"hello"},
	}
	tab.AddRow("1", "2")
	out := tab.String()
	for _, want := range []string{"== x: demo ==", "a", "bb", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestDPOverheadModel(t *testing.T) {
	small := DPOverhead(0.1)(16)
	big := DPOverhead(0.001)(16)
	if big <= small {
		t.Errorf("finer delta must cost more: %v vs %v", small, big)
	}
	if big < time.Millisecond {
		t.Errorf("delta=0.001 overhead %v should be substantial", big)
	}
}

func TestRunByID(t *testing.T) {
	tab, err := Run(env(t), "fig4a")
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "fig4a" || len(tab.Rows) == 0 {
		t.Error("Run(fig4a) returned an empty table")
	}
	if _, err := Run(env(t), "bogus"); err == nil {
		t.Error("Run of unknown id should fail")
	}
}

// Smoke-run the remaining registered experiments so every table renders.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("long smoke test")
	}
	e := env(t)
	heavy := map[string]bool{}
	for _, s := range All {
		if heavy[s.ID] {
			continue
		}
		tab := s.Run(e)
		if tab == nil || tab.ID == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
			t.Errorf("experiment %s produced an empty table", s.ID)
		}
	}
	_ = metrics.Summary{}
}

func TestAblFastPathTrimsLatency(t *testing.T) {
	tab := AblFastPath(env(t))
	buffered := cell(t, tab, 0, 2)
	fast := cell(t, tab, 1, 2)
	if fast >= buffered {
		t.Errorf("fast path mean latency %vms should be below buffered %vms", fast, buffered)
	}
	// Accuracy cost of the bypass must be bounded: light traffic means
	// almost everything takes the fast path, so accuracy approaches the
	// fastest model's agreement (~90%), not collapse.
	if acc := cell(t, tab, 1, 1); acc < 80 {
		t.Errorf("fast-path accuracy %v too low", acc)
	}
}

func TestTableJSONAndCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "demo", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	blob, err := tab.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"id":"x"`, `"rows":[["1","2"]]`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("JSON missing %s: %s", want, blob)
		}
	}
	var csvBuf strings.Builder
	if err := tab.FprintCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if csvBuf.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", csvBuf.String())
	}
}

func TestAblBatchSchembleWins(t *testing.T) {
	tab := AblBatch(env(t))
	schemble := cell(t, tab, len(tab.Rows)-1, 1)
	for i := 0; i < len(tab.Rows)-1; i++ {
		if batched := cell(t, tab, i, 1); schemble <= batched {
			t.Errorf("Schemble (%v) should beat %s (%v) under deadlines",
				schemble, tab.Rows[i][0], batched)
		}
	}
}

func TestAblTrafficRobust(t *testing.T) {
	tab := AblTraffic(env(t))
	// Rows alternate Original/Schemble per traffic model.
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		orig := cell(t, tab, i, 2)
		sch := cell(t, tab, i+1, 2)
		if sch <= orig {
			t.Errorf("%s: Schemble acc %v should beat Original %v", tab.Rows[i][0], sch, orig)
		}
	}
}
